/**
 * @file
 * Discover the optimal shared-memory swizzle for an fp8 tile transpose
 * (the Figure 2 workload), execute the conversion on the simulated GPU,
 * and compare bank-conflict wavefronts against the padding heuristic.
 *
 *   $ ./examples/transpose_kernel
 */

#include <cstdio>

#include "codegen/shared_exec.h"
#include "codegen/swizzle.h"
#include "legacy/legacy.h"
#include "triton/encodings.h"

using namespace ll;

int
main()
{
    auto spec = sim::GpuSpec::gh200();
    const triton::Shape shape = {64, 64};

    // Writer: each thread stores 16 consecutive f8 values of a row.
    triton::BlockedEncoding rowEnc;
    rowEnc.sizePerThread = {1, 16};
    rowEnc.threadsPerWarp = {2, 16};
    rowEnc.warpsPerCta = {2, 2};
    rowEnc.order = {1, 0};
    // Reader: each thread loads 16 consecutive values of a column.
    triton::BlockedEncoding colEnc;
    colEnc.sizePerThread = {16, 1};
    colEnc.threadsPerWarp = {16, 2};
    colEnc.warpsPerCta = {2, 2};
    colEnc.order = {0, 1};

    LinearLayout src = rowEnc.toLinearLayout(shape);
    LinearLayout dst = colEnc.toLinearLayout(shape);

    auto swz = codegen::computeOptimalSwizzle(src, dst, 1, spec);
    std::printf("optimal swizzle: vec=%d elems, bank bits=%d, segment "
                "bits=%d\n",
                swz.vecElems(), swz.bankBits, swz.idxBits);
    std::printf("memory layout (offset -> tensor):\n%s\n",
                swz.memLayout.toString().c_str());

    int64_t storeWf = codegen::analyticWavefronts(swz, src, 1, spec);
    int64_t loadWf = codegen::analyticWavefronts(swz, dst, 1, spec);
    std::printf("swizzle wavefronts per access: store=%lld load=%lld\n",
                static_cast<long long>(storeWf),
                static_cast<long long>(loadWf));

    auto padded = legacy::paddedConversionCost(src, dst, shape, 1, spec);
    std::printf("padding heuristic: store=%lld load=%lld wavefronts, "
                "%lld bytes of shared memory (+%lld wasted)\n",
                static_cast<long long>(padded.storeWavefronts),
                static_cast<long long>(padded.loadWavefronts),
                static_cast<long long>(padded.sharedBytes),
                static_cast<long long>(padded.sharedBytes -
                                       int64_t(64) * 64));

    auto resultOr = codegen::executeSharedConversion(swz, src, dst, 1,
                                                     spec);
    if (!resultOr.ok()) {
        std::printf("\nsimulated conversion FAILED: %s\n",
                    resultOr.diag().toString().c_str());
        return 1;
    }
    auto &result = *resultOr;
    std::printf("\nsimulated conversion: %s\n",
                result.correct ? "every element landed correctly"
                               : "FAILED");
    std::printf("measured store wavefronts=%lld transactions=%lld\n",
                static_cast<long long>(result.storeStats.wavefronts),
                static_cast<long long>(result.storeStats.transactions));
    std::printf("measured load  wavefronts=%lld transactions=%lld\n",
                static_cast<long long>(result.loadStats.wavefronts),
                static_cast<long long>(result.loadStats.transactions));
    return result.correct ? 0 : 1;
}
