/**
 * @file
 * Quickstart: build the paper's Layout A (Figure 1a / Table 1) as a
 * linear layout, query it, compose with another layout, and invert it.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "layout/dims.h"
#include "layout/linear_layout.h"
#include "triton/encodings.h"

using namespace ll;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Layout A from the paper: a 16x16 tensor held by 2 warps, each
    //    thread owning a 2x2 register tile; j (dim1) is the fastest dim.
    // ------------------------------------------------------------------
    triton::BlockedEncoding enc;
    enc.sizePerThread = {2, 2};
    enc.threadsPerWarp = {4, 8};
    enc.warpsPerCta = {2, 1};
    enc.order = {1, 0};
    LinearLayout a = enc.toLinearLayout({16, 16});

    std::printf("Layout A as a linear layout:\n%s\n",
                a.toString().c_str());

    // Table 1, last row: register r1 of thread t9 in warp w0 sits at
    // logical location (i, j) = (2, 3).
    auto loc = a.apply(
        {{dims::kReg, 1}, {dims::kLane, 9}, {dims::kWarp, 0}});
    std::printf("r1 of t9/w0 -> (i, j) = (%d, %d)\n", loc[1].second,
                loc[0].second);

    // ------------------------------------------------------------------
    // 2. Analyses: bijectivity, vectorization, broadcast detection.
    // ------------------------------------------------------------------
    std::printf("surjective=%d injective=%d consecutive-elements=%d\n",
                a.isSurjective(), a.isInjective(),
                a.getNumConsecutiveInOut());

    // ------------------------------------------------------------------
    // 3. Inversion: recover hardware indices from tensor coordinates.
    // ------------------------------------------------------------------
    LinearLayout inv = a.invert();
    auto hw = inv.apply({{"dim1", 3}, {"dim0", 2}});
    std::printf("element (2, 3) lives at: ");
    for (const auto &[dim, v] : hw)
        std::printf("%s=%d ", dim.c_str(), v);
    std::printf("\n");

    // ------------------------------------------------------------------
    // 4. Composition with a memory layout: where does each register go
    //    in a swizzled shared-memory buffer?
    // ------------------------------------------------------------------
    LinearLayout shared =
        triton::mmaSwizzledSharedLayout({16, 16}, 4, 1, 4, {1, 0});
    LinearLayout regToOffset = a.compose(shared.invert());
    std::printf("\nregister/lane/warp -> swizzled shared offset:\n%s",
                regToOffset.toString().c_str());
    return 0;
}
