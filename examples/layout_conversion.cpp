/**
 * @file
 * Plan a warp-shuffle layout conversion (Section 5.4), execute it on a
 * simulated warp, and verify that every element reaches the register
 * the destination layout demands — all without touching shared memory.
 *
 *   $ ./examples/layout_conversion
 */

#include <cstdio>

#include "codegen/conversion.h"
#include "triton/encodings.h"

using namespace ll;

int
main()
{
    auto spec = sim::GpuSpec::gh200();
    const triton::Shape shape = {8, 32};

    // Source: each thread owns 8 contiguous elements of a row.
    triton::BlockedEncoding srcEnc;
    srcEnc.sizePerThread = {1, 8};
    srcEnc.threadsPerWarp = {8, 4};
    srcEnc.warpsPerCta = {1, 1};
    srcEnc.order = {1, 0};
    // Destination: each thread owns a column.
    triton::BlockedEncoding dstEnc;
    dstEnc.sizePerThread = {8, 1};
    dstEnc.threadsPerWarp = {1, 32};
    dstEnc.warpsPerCta = {1, 1};
    dstEnc.order = {1, 0};

    LinearLayout src = srcEnc.toLinearLayout(shape);
    LinearLayout dst = dstEnc.toLinearLayout(shape);

    auto plan = codegen::planConversion(src, dst, /*elemBytes=*/2, spec);
    std::printf("chosen lowering: %s\n",
                codegen::toString(plan.kind).c_str());
    if (plan.kind != codegen::ConversionKind::WarpShuffle) {
        std::printf("expected a warp-shuffle plan\n");
        return 1;
    }
    const auto &shuffle = *plan.shuffle;
    std::printf("rounds=%d, payload=%d elements, shuffle instructions="
                "%lld\n",
                shuffle.rounds, shuffle.vecElems,
                static_cast<long long>(
                    shuffle.countShuffleInstructions(2)));

    // Seed each register with its element id under the source layout.
    std::vector<std::vector<uint64_t>> regs(32);
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < shuffle.numRegsA; ++reg) {
            regs[lane].push_back(src.applyFlat(
                static_cast<uint64_t>(reg) |
                (static_cast<uint64_t>(lane)
                 << src.getInDimSizeLog2("register"))));
        }
    }
    auto outOr = shuffle.execute(regs);
    if (!outOr.ok()) {
        std::printf("shuffle execution failed: %s\n",
                    outOr.diag().toString().c_str());
        return 1;
    }
    auto &out = *outOr;

    // Verify against the destination layout.
    int errors = 0;
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < shuffle.numRegsB; ++reg) {
            uint64_t want = dst.applyFlat(
                static_cast<uint64_t>(reg) |
                (static_cast<uint64_t>(lane)
                 << dst.getInDimSizeLog2("register")));
            if (out[lane][reg] != want)
                ++errors;
        }
    }
    std::printf("verification: %s (%d mismatches)\n",
                errors == 0 ? "PASS" : "FAIL", errors);

    // Show one round's traffic for lane 0..3.
    std::printf("\nround 0 receives:\n");
    for (int lane = 0; lane < 4; ++lane) {
        const auto &x = shuffle.xfers[0][lane];
        std::printf("  lane %d <- lane %d, regs:", lane, x.srcLane);
        for (auto [ra, rb] : x.regPairs)
            std::printf(" %d->%d", ra, rb);
        std::printf("\n");
    }
    return errors == 0 ? 0 : 1;
}
