/**
 * @file
 * layout_inspect — a small CLI for exploring layouts and conversions.
 *
 * Usage:
 *   layout_inspect blocked  <M> <N> <sptM> <sptN> <tpwM> <tpwN> \
 *                           <wpcM> <wpcN> <order0> <order1>
 *   layout_inspect mma      <M> <N> <version> <warpsM> <warpsN>
 *   layout_inspect convert  <M> <N> <elemBytes>
 *       (plans a conversion between a row-blocked and a column-blocked
 *        layout of the given tile and prints the chosen lowering)
 *
 * With no arguments, prints a demonstration of each mode.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "codegen/conversion.h"
#include "codegen/vectorize.h"
#include "triton/encodings.h"

using namespace ll;

namespace {

void
describe(const LinearLayout &layout, int elemBits)
{
    std::printf("%s", layout.toString().c_str());
    std::printf("surjective=%d injective=%d distributed=%d\n",
                layout.isSurjective(), layout.isInjective(),
                triton::isDistributedLayout(layout));
    std::printf("consecutive elements=%d -> %s\n",
                layout.getNumConsecutiveInOut(),
                codegen::selectMemoryInstruction(layout, elemBits)
                    .toString()
                    .c_str());
    auto masks = layout.getFreeVariableMasks();
    for (const auto &[dim, mask] : masks) {
        if (mask != 0)
            std::printf("broadcast bits in %s: mask 0x%x\n", dim.c_str(),
                        mask);
    }
    std::printf("\n");
}

int
runBlocked(int argc, char **argv)
{
    if (argc < 12) {
        std::fprintf(stderr, "blocked needs 10 numeric arguments\n");
        return 2;
    }
    auto n = [&](int i) { return std::atoi(argv[i]); };
    triton::BlockedEncoding enc;
    enc.sizePerThread = {n(4), n(5)};
    enc.threadsPerWarp = {n(6), n(7)};
    enc.warpsPerCta = {n(8), n(9)};
    enc.order = {n(10), n(11)};
    describe(enc.toLinearLayout({n(2), n(3)}), 16);
    return 0;
}

int
runMma(int argc, char **argv)
{
    if (argc < 7) {
        std::fprintf(stderr, "mma needs 5 numeric arguments\n");
        return 2;
    }
    auto n = [&](int i) { return std::atoi(argv[i]); };
    triton::MmaEncoding enc;
    enc.version = n(4);
    enc.warpsPerCta = {n(5), n(6)};
    describe(enc.toLinearLayout({n(2), n(3)}), 32);
    return 0;
}

int
runConvert(int32_t m, int32_t nCols, int elemBytes)
{
    auto spec = sim::GpuSpec::gh200();
    triton::BlockedEncoding rowEnc, colEnc;
    rowEnc.sizePerThread = {1, 4};
    rowEnc.threadsPerWarp = {8, 4};
    rowEnc.warpsPerCta = {2, 2};
    rowEnc.order = {1, 0};
    colEnc.sizePerThread = {4, 1};
    colEnc.threadsPerWarp = {4, 8};
    colEnc.warpsPerCta = {2, 2};
    colEnc.order = {0, 1};
    auto src = rowEnc.toLinearLayout({m, nCols});
    auto dst = colEnc.toLinearLayout({m, nCols});
    auto plan = codegen::planConversion(src, dst, elemBytes, spec);
    std::printf("conversion [%d x %d] x %dB: %s\n", m, nCols, elemBytes,
                codegen::toString(plan.kind).c_str());
    if (plan.kind == codegen::ConversionKind::WarpShuffle) {
        std::printf("  rounds=%d payload=%d elems shuffles=%lld\n",
                    plan.shuffle->rounds, plan.shuffle->vecElems,
                    static_cast<long long>(
                        plan.shuffle->countShuffleInstructions(
                            elemBytes)));
    }
    if (plan.kind == codegen::ConversionKind::SharedMemory) {
        std::printf("  vec=%d elems, store/load wavefronts per access = "
                    "%lld/%lld, ldmatrix=%d stmatrix=%d\n",
                    plan.shared->vecElems(),
                    static_cast<long long>(
                        plan.storeWavefrontsPerAccess),
                    static_cast<long long>(plan.loadWavefrontsPerAccess),
                    plan.usesLdmatrix, plan.usesStmatrix);
    }
    std::printf("  modeled cycles: %.0f\n",
                plan.estimateCycles(src, elemBytes, spec));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("== demo: blocked layout (Figure 1a) ==\n");
        triton::BlockedEncoding enc;
        enc.sizePerThread = {2, 2};
        enc.threadsPerWarp = {4, 8};
        enc.warpsPerCta = {2, 1};
        enc.order = {1, 0};
        describe(enc.toLinearLayout({16, 16}), 16);
        std::printf("== demo: conversion planning ==\n");
        runConvert(32, 64, 2);
        std::printf("\nrun with 'blocked', 'mma', or 'convert' for "
                    "custom parameters (see file header)\n");
        return 0;
    }
    std::string mode = argv[1];
    if (mode == "blocked")
        return runBlocked(argc, argv);
    if (mode == "mma")
        return runMma(argc, argv);
    if (mode == "convert" && argc >= 5)
        return runConvert(std::atoi(argv[2]), std::atoi(argv[3]),
                          std::atoi(argv[4]));
    std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
    return 2;
}
