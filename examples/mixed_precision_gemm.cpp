/**
 * @file
 * Run the linear-layout engine on a mixed-precision GEMM: build the IR,
 * let the engine choose MMA layouts and insert conversions, print the
 * annotated kernel, and price it on all three GPU models against the
 * legacy lowering rules.
 *
 *   $ ./examples/mixed_precision_gemm
 */

#include <cstdio>

#include "engine/cost_model.h"
#include "engine/layout_engine.h"
#include "ir/function.h"
#include "legacy/legacy_cost.h"

using namespace ll;
using ir::DType;

int
main()
{
    // bf16 x int16 GEMM tile with an upcast and an epilogue.
    ir::Function f("bf16xint16_gemm");
    int a = f.load({DType::BF16, {128, 64}}, "a");
    int b = f.load({DType::I16, {64, 128}}, "b");
    int bUp = f.elementwise({b}, DType::BF16, "upcast");
    int acc = f.dot(a, bUp, DType::F32);
    int out = f.elementwise({acc}, DType::BF16, "downcast");
    f.store(out, "c");

    for (const auto &spec : {sim::GpuSpec::rtx4090(), sim::GpuSpec::gh200(),
                             sim::GpuSpec::mi250()}) {
        ir::Function copy = f; // engine annotates in place
        engine::LayoutEngine eng({spec, 4});
        auto stats = eng.run(copy);
        auto linear = engine::estimateKernelCost(copy, spec, 4);
        auto legacy = legacy::estimateLegacyKernelCost(copy, spec, 4);
        std::printf("=== %s ===\n", spec.name.c_str());
        if (spec.name == "GH200")
            std::printf("%s", copy.print().c_str());
        std::printf("conversions inserted=%d eliminated=%d\n",
                    stats.convertsInserted, stats.convertsEliminated);
        std::printf("linear : %s\n", linear.toString().c_str());
        std::printf("legacy : %s\n", legacy.toString().c_str());
        std::printf("modeled speedup: %.2fx\n\n",
                    legacy.cycles / linear.cycles);
    }
    return 0;
}
