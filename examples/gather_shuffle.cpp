/**
 * @file
 * Lower tl.gather to warp shuffles (Section 5.5): plan a warp-local
 * gather, execute it on a simulated warp with a reversal index tensor,
 * and verify the result.
 *
 *   $ ./examples/gather_shuffle
 */

#include <cstdio>

#include "codegen/gather.h"
#include "layout/dims.h"
#include "triton/encodings.h"

using namespace ll;

int
main()
{
    auto spec = sim::GpuSpec::gh200();
    const triton::Shape shape = {8, 16};

    triton::BlockedEncoding enc;
    enc.sizePerThread = {2, 2};
    enc.threadsPerWarp = {4, 8};
    enc.warpsPerCta = {1, 1};
    enc.order = {1, 0};
    LinearLayout layout = enc.toLinearLayout(shape);

    auto plan = codegen::planGather(layout, /*axis=*/1, spec);
    if (!plan.has_value()) {
        std::printf("gather spans warps; shared memory fallback\n");
        return 1;
    }
    std::printf("warp-local gather: %d shuffle rounds, %lld shuffle "
                "instructions\n",
                plan->rounds,
                static_cast<long long>(plan->countShuffleInstructions()));

    // Values encode (row, col); index reverses each row.
    std::vector<std::vector<uint64_t>> regs(32);
    std::vector<std::vector<int32_t>> idx(32);
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < plan->numRegs; ++reg) {
            auto coords = layout.apply({{dims::kReg, reg},
                                        {dims::kLane, lane},
                                        {dims::kWarp, 0}});
            int32_t col = coords[0].second, row = coords[1].second;
            regs[lane].push_back(static_cast<uint64_t>(row) * 100 + col);
            idx[lane].push_back(15 - col);
        }
    }
    auto outOr = codegen::executeGather(*plan, layout, 0, regs, idx);
    if (!outOr.ok()) {
        std::printf("gather execution failed: %s\n",
                    outOr.diag().toString().c_str());
        return 1;
    }
    auto &out = *outOr;

    int errors = 0;
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < plan->numRegs; ++reg) {
            auto coords = layout.apply({{dims::kReg, reg},
                                        {dims::kLane, lane},
                                        {dims::kWarp, 0}});
            int32_t col = coords[0].second, row = coords[1].second;
            uint64_t want = static_cast<uint64_t>(row) * 100 + (15 - col);
            if (out[lane][reg] != want)
                ++errors;
        }
    }
    std::printf("row-reversal gather: %s (%d mismatches)\n",
                errors == 0 ? "PASS" : "FAIL", errors);
    return errors == 0 ? 0 : 1;
}
