/**
 * @file
 * Law suite for the CuTe layout algebra (src/cute/cute_layout.h).
 *
 * Every algebraic operation is proven against brute-force enumeration:
 * exhaustively over a small layout space (all flat layouts with extents
 * and strides drawn from small pools), and by seeded random sweeps over
 * larger nested layouts. Operations declare divisibility preconditions
 * by returning a Diagnostic; the laws here only bind on success, but
 * each sweep also asserts a minimum success count so no law is
 * vacuously true.
 */

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "check/cute_check.h"
#include "cute/cute_layout.h"
#include "support/result.h"

namespace ll {
namespace cute {
namespace {

// Brute-force image of a layout as a vector indexed by flat index.
std::vector<int64_t>
imageOf(const CuteLayout &l)
{
    std::vector<int64_t> img(static_cast<size_t>(l.size()));
    for (int64_t i = 0; i < l.size(); ++i)
        img[static_cast<size_t>(i)] = l(i);
    return img;
}

// All flat layouts with `rank` modes, extents and strides drawn from
// the given pools. Small by construction: used for exhaustive law
// checks.
std::vector<CuteLayout>
enumerateFlat(int rank, const std::vector<int64_t> &extents,
              const std::vector<int64_t> &strides)
{
    std::vector<CuteLayout> out;
    std::vector<int64_t> shape(static_cast<size_t>(rank)),
        stride(static_cast<size_t>(rank));
    // Odometer over (extent, stride) choices per mode.
    size_t nCombo = extents.size() * strides.size();
    std::vector<size_t> idx(static_cast<size_t>(rank), 0);
    while (true) {
        for (int m = 0; m < rank; ++m) {
            shape[static_cast<size_t>(m)] =
                extents[idx[static_cast<size_t>(m)] % extents.size()];
            stride[static_cast<size_t>(m)] =
                strides[idx[static_cast<size_t>(m)] / extents.size()];
        }
        out.push_back(CuteLayout::fromFlat(shape, stride));
        int m = 0;
        for (; m < rank; ++m) {
            if (++idx[static_cast<size_t>(m)] < nCombo)
                break;
            idx[static_cast<size_t>(m)] = 0;
        }
        if (m == rank)
            break;
    }
    return out;
}

// A random compact layout in a randomly permuted mode order: strides
// are cumulative products, so modes occupy disjoint weight intervals —
// the shape of a realistic tiler, and exactly what composition-based
// ops admit.
CuteLayout
randomCompactPermuted(std::mt19937 &rng)
{
    int rank = 1 + static_cast<int>(rng() % 3);
    std::vector<int64_t> extents(static_cast<size_t>(rank));
    for (auto &e : extents)
        e = 2 + static_cast<int64_t>(rng() % 4);
    std::vector<size_t> order(static_cast<size_t>(rank));
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    std::vector<int64_t> strides(static_cast<size_t>(rank));
    int64_t acc = 1;
    for (size_t i : order) {
        strides[i] = acc;
        acc *= extents[i];
    }
    return CuteLayout::fromFlat(extents, strides);
}

TEST(IntTupleTest, FlattenAndStringRoundTrip)
{
    IntTuple t{IntTuple{2, 3}, 5, IntTuple{IntTuple{4}, 7}};
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.flatRank(), 5);
    EXPECT_EQ(t.product(), 2 * 3 * 5 * 4 * 7);
    std::vector<int64_t> flat = t.flatten();
    ASSERT_EQ(flat.size(), 5u);
    EXPECT_EQ(flat[0], 2);
    EXPECT_EQ(flat[4], 7);
    IntTuple parsed = IntTuple::parse(t.toString());
    EXPECT_TRUE(parsed.congruent(t));
    EXPECT_EQ(parsed.toString(), t.toString());
}

TEST(CuteLayoutTest, EvaluationMatchesColexDecomposition)
{
    // ((2,2),3):((1,32),8): first flat leaf fastest.
    CuteLayout l(IntTuple{IntTuple{2, 2}, 3},
                 IntTuple{IntTuple{1, 32}, 8});
    EXPECT_EQ(l.size(), 12);
    EXPECT_EQ(l.toString(), "((2,2),3):((1,32),8)");
    // i = 1 -> coord (1,0,0) -> 1. i = 2 -> (0,1,0) -> 32.
    EXPECT_EQ(l(0), 0);
    EXPECT_EQ(l(1), 1);
    EXPECT_EQ(l(2), 32);
    EXPECT_EQ(l(3), 33);
    EXPECT_EQ(l(4), 8);
    EXPECT_EQ(l(11), 1 + 32 + 16);
    // cosize = (2-1)*1 + (2-1)*32 + (3-1)*8 + 1.
    EXPECT_EQ(l.cosize(), 1 + 32 + 16 + 1);
    // Explicit-coordinate evaluation agrees.
    EXPECT_EQ(l.apply({1, 1, 2}), 1 + 32 + 16);
    std::vector<int64_t> c = l.coordOf(7);
    EXPECT_EQ(l.apply(c), l(7));
}

TEST(CuteLayoutTest, ParseRoundTrip)
{
    for (const char *text :
         {"1:0", "8:1", "(3,5,7):(1,3,15)", "((2,2),3):((1,32),8)",
          "(50257):(1)", "(100,12):(12,1)"}) {
        CuteLayout l = CuteLayout::parse(text);
        EXPECT_EQ(CuteLayout::parse(l.toString()), l) << text;
        // Function preserved through the round trip, spot-checked.
        CuteLayout r = CuteLayout::parse(l.toString());
        for (int64_t i = 0; i < std::min<int64_t>(l.size(), 64); ++i)
            EXPECT_EQ(l(i), r(i)) << text;
    }
    EXPECT_THROW(CuteLayout::parse("(2,3):(1)"), UserError);
    EXPECT_THROW(CuteLayout::parse("nonsense"), UserError);
}

TEST(CuteLayoutTest, ConstructorRejectsMalformedTrees)
{
    EXPECT_THROW(CuteLayout(IntTuple{2, 3}, IntTuple{1}), UserError);
    EXPECT_THROW(CuteLayout(IntTuple(0), IntTuple(1)), UserError);
    EXPECT_NO_THROW(CuteLayout(IntTuple{2, 3}, IntTuple{0, 0}));
}

// ---------------------------------------------------------------------
// coalesce: function-preserving and maximally merged.
// ---------------------------------------------------------------------

TEST(CuteAlgebraTest, CoalescePreservesFunctionExhaustive)
{
    std::vector<int64_t> extents = {1, 2, 3, 4};
    std::vector<int64_t> strides = {0, 1, 2, 3, 4, 6};
    for (int rank = 1; rank <= 2; ++rank) {
        for (const CuteLayout &l :
             enumerateFlat(rank, extents, strides)) {
            CuteLayout c = coalesce(l);
            ASSERT_EQ(c.size(), l.size()) << l.toString();
            for (int64_t i = 0; i < l.size(); ++i)
                ASSERT_EQ(c(i), l(i))
                    << l.toString() << " -> " << c.toString();
        }
    }
}

TEST(CuteAlgebraTest, CoalesceIsMaximalAndIdempotent)
{
    std::mt19937 rng(2024);
    check::CuteGenOptions opt;
    for (int iter = 0; iter < 400; ++iter) {
        CuteLayout l = check::randomCuteLayout(rng, opt);
        CuteLayout c = coalesce(l);
        EXPECT_EQ(coalesce(c), c) << l.toString();
        // Maximality: depth-1, no size-1 mode (unless the whole layout
        // is the unit), and no adjacent pair still merges.
        const std::vector<int64_t> &s = c.flatShape();
        const std::vector<int64_t> &d = c.flatStride();
        EXPECT_LE(c.shape().depth(), 1) << c.toString();
        for (size_t k = 0; k < s.size(); ++k) {
            if (c.size() > 1) {
                EXPECT_GT(s[k], 1) << c.toString();
            }
            if (k + 1 < s.size()) {
                EXPECT_NE(d[k + 1], s[k] * d[k]) << c.toString();
            }
        }
    }
}

TEST(CuteAlgebraTest, CoalesceMergesKnownChains)
{
    // (2,4):(1,2) is the compact 8:1.
    CuteLayout merged = coalesce(CuteLayout::fromFlat({2, 4}, {1, 2}));
    EXPECT_EQ(merged.toString(), "8:1");
    // Size-1 modes vanish.
    EXPECT_EQ(coalesce(CuteLayout::fromFlat({1, 6, 1}, {7, 5, 9}))
                  .toString(),
              "6:5");
    // Everything size-1 collapses to the unit layout.
    EXPECT_EQ(coalesce(CuteLayout::fromFlat({1, 1}, {3, 4})).size(), 1);
}

// ---------------------------------------------------------------------
// composition: R(i) == A(B(i)).
// ---------------------------------------------------------------------

TEST(CuteAlgebraTest, CompositionLawExhaustive)
{
    std::vector<int64_t> extents = {1, 2, 3, 4};
    std::vector<int64_t> strides = {0, 1, 2, 3, 4};
    std::vector<CuteLayout> as = enumerateFlat(2, extents, strides);
    std::vector<CuteLayout> bs = enumerateFlat(1, extents, strides);
    int successes = 0;
    for (const CuteLayout &a : as) {
        for (const CuteLayout &b : bs) {
            Result<CuteLayout> r = composition(a, b);
            if (!r.ok())
                continue;
            ++successes;
            ASSERT_EQ(r->size(), b.size())
                << a.toString() << " o " << b.toString();
            for (int64_t i = 0; i < b.size(); ++i)
                ASSERT_EQ((*r)(i), a(b(i)))
                    << a.toString() << " o " << b.toString() << " at "
                    << i;
        }
    }
    // The law must not be vacuous over this space.
    EXPECT_GT(successes, 1000);
}

TEST(CuteAlgebraTest, CompositionLawRandomNested)
{
    std::mt19937 rng(77);
    check::CuteGenOptions opt;
    opt.maxElements = 1 << 10;
    int successes = 0;
    for (int iter = 0; iter < 3000; ++iter) {
        CuteLayout a = check::randomCuteLayout(rng, opt);
        CuteLayout b = check::randomCuteLayout(rng, opt);
        Result<CuteLayout> r = composition(a, b);
        if (!r.ok())
            continue;
        ++successes;
        ASSERT_EQ(r->size(), b.size());
        for (int64_t i = 0; i < b.size(); ++i)
            ASSERT_EQ((*r)(i), a(b(i)))
                << a.toString() << " o " << b.toString();
        // The result keeps B's top-level rank, so B's modes stay
        // addressable (leaves may split into nested chains).
        EXPECT_EQ(r->rank(), b.rank());
    }
    EXPECT_GT(successes, 100);
}

TEST(CuteAlgebraTest, CompositionKnownExamples)
{
    // The worked example from Cecka's layout-algebra notes:
    // (6,2):(8,2) o (4,3):(3,1) = ((2,2),3):((24,2),8).
    CuteLayout a = CuteLayout::parse("(6,2):(8,2)");
    CuteLayout b = CuteLayout::parse("(4,3):(3,1)");
    Result<CuteLayout> r = composition(a, b);
    ASSERT_TRUE(r.ok()) << r.diag().message;
    EXPECT_EQ(r->toString(), "((2,2),3):((24,2),8)");
    for (int64_t i = 0; i < b.size(); ++i)
        EXPECT_EQ((*r)(i), a(b(i)));
    // Stride that does not factor through A's extents declines.
    EXPECT_FALSE(
        composition(CuteLayout::parse("(3,5):(1,3)"),
                    CuteLayout::make1D(5, 2))
            .ok());
    // Reach beyond A's domain declines.
    EXPECT_FALSE(
        composition(CuteLayout::make1D(4), CuteLayout::make1D(3, 2))
            .ok());
}

// ---------------------------------------------------------------------
// complement: (A, A*) is a bijection onto [0, M).
// ---------------------------------------------------------------------

TEST(CuteAlgebraTest, ComplementBijectionExhaustive)
{
    std::vector<int64_t> extents = {1, 2, 3, 4};
    std::vector<int64_t> strides = {0, 1, 2, 4, 8, 12};
    std::vector<int64_t> codomains = {1, 2, 4, 8, 12, 16, 24, 48};
    int successes = 0;
    for (int rank = 1; rank <= 2; ++rank) {
        for (const CuteLayout &a :
             enumerateFlat(rank, extents, strides)) {
            for (int64_t m : codomains) {
                Result<CuteLayout> star = complement(a, m);
                if (!star.ok())
                    continue;
                ++successes;
                CuteLayout both = CuteLayout::concat({a, *star});
                ASSERT_EQ(both.size(), m)
                    << a.toString() << " complement wrt " << m;
                std::set<int64_t> seen;
                for (int64_t i = 0; i < both.size(); ++i) {
                    int64_t v = both(i);
                    ASSERT_GE(v, 0);
                    ASSERT_LT(v, m) << a.toString() << " wrt " << m;
                    ASSERT_TRUE(seen.insert(v).second)
                        << a.toString() << " wrt " << m
                        << ": duplicate offset " << v;
                }
            }
        }
    }
    EXPECT_GT(successes, 200);
}

TEST(CuteAlgebraTest, ComplementDeclinesNonTilingLayouts)
{
    // Zero stride => non-injective.
    EXPECT_FALSE(complement(CuteLayout::make1D(2, 0), 8).ok());
    // Codomain not divisible by the tile.
    EXPECT_FALSE(complement(CuteLayout::make1D(2, 1), 7).ok());
    // Overlapping strides cannot tile.
    EXPECT_FALSE(
        complement(CuteLayout::fromFlat({2, 2}, {1, 1}), 16).ok());
    // Known value: complement of 2:4 wrt 16 restores the gaps.
    Result<CuteLayout> star = complement(CuteLayout::make1D(2, 4), 16);
    ASSERT_TRUE(star.ok());
    EXPECT_EQ(star->size(), 8);
}

// ---------------------------------------------------------------------
// logicalDivide: a domain permutation whose mode 0 is one tile.
// ---------------------------------------------------------------------

TEST(CuteAlgebraTest, DivideIsDomainPermutationWithTileMode)
{
    std::mt19937 rng(4242);
    check::CuteGenOptions opt;
    opt.maxElements = 1 << 9;
    opt.allowZeroStride = false;
    int successes = 0;
    for (int iter = 0; iter < 8000; ++iter) {
        CuteLayout a = check::randomCuteLayout(rng, opt);
        CuteLayout t = check::randomCuteLayout(rng, opt);
        Result<CuteLayout> d = logicalDivide(a, t);
        if (!d.ok())
            continue;
        ++successes;
        // Image multiset preserved: the division only reorders A's
        // domain.
        std::vector<int64_t> before = imageOf(a);
        std::vector<int64_t> after = imageOf(*d);
        ASSERT_EQ(before.size(), after.size())
            << a.toString() << " / " << t.toString();
        std::sort(before.begin(), before.end());
        std::sort(after.begin(), after.end());
        ASSERT_EQ(before, after)
            << a.toString() << " / " << t.toString();
        // Mode 0 walks one tile: equals composition(A, T) pointwise.
        Result<CuteLayout> tile = composition(a, t);
        ASSERT_TRUE(tile.ok())
            << a.toString() << " / " << t.toString();
        CuteLayout m0 = d->mode(0);
        ASSERT_EQ(m0.size(), tile->size());
        for (int64_t i = 0; i < m0.size(); ++i)
            ASSERT_EQ(m0(i), (*tile)(i))
                << a.toString() << " / " << t.toString();
    }
    EXPECT_GT(successes, 200);
}

TEST(CuteAlgebraTest, DivideKnownExample)
{
    // Divide a 24-vector into 6 tiles of 4.
    Result<CuteLayout> d =
        logicalDivide(CuteLayout::make1D(24), CuteLayout::make1D(4));
    ASSERT_TRUE(d.ok()) << d.diag().message;
    EXPECT_EQ(d->size(), 24);
    EXPECT_EQ(d->rank(), 2);
    // (i, j) -> j * 4 + i: tile-local fastest.
    EXPECT_EQ((*d)(1), 1);
    EXPECT_EQ((*d)(4), 4);
    EXPECT_EQ((*d)(5), 5);
}

// ---------------------------------------------------------------------
// logicalProduct: mode 0 is A; replicas are disjoint translates.
// ---------------------------------------------------------------------

TEST(CuteAlgebraTest, ProductReplicatesDisjointTranslates)
{
    std::mt19937 rng(9090);
    check::CuteGenOptions opt;
    opt.maxElements = 1 << 8;
    opt.allowZeroStride = false;
    int successes = 0;
    for (int iter = 0; iter < 4000; ++iter) {
        CuteLayout a = check::randomCuteLayout(rng, opt);
        // Alternate realistic tilers with fully random layouts (the
        // latter mostly decline; the former keep the law non-vacuous).
        CuteLayout b = (iter & 1) ? randomCompactPermuted(rng)
                                  : check::randomCuteLayout(rng, opt);
        if (a.size() * b.size() > (int64_t(1) << 12))
            continue;
        Result<CuteLayout> p = logicalProduct(a, b);
        if (!p.ok())
            continue;
        ++successes;
        ASSERT_EQ(p->size(), a.size() * b.size())
            << a.toString() << " x " << b.toString();
        // Mode 0 is A: replica 0 evaluates exactly as A.
        for (int64_t i = 0; i < a.size(); ++i)
            ASSERT_EQ((*p)(i), a(i))
                << a.toString() << " x " << b.toString();
        // Disjointness of replicas is promised only for injective B
        // (a non-injective B legitimately repeats tiles).
        std::vector<int64_t> bImage = imageOf(b);
        std::sort(bImage.begin(), bImage.end());
        bool bInjective = std::adjacent_find(bImage.begin(),
                                             bImage.end()) ==
                          bImage.end();
        // Replica j is A's image translated by a per-replica constant;
        // for injective B, distinct replicas never collide.
        std::set<int64_t> used;
        for (int64_t j = 0; j < b.size(); ++j) {
            int64_t base = (*p)(j * a.size());
            for (int64_t i = 0; i < a.size(); ++i) {
                int64_t v = (*p)(j * a.size() + i);
                ASSERT_EQ(v, base + a(i))
                    << a.toString() << " x " << b.toString()
                    << " replica " << j;
                if (bInjective) {
                    ASSERT_TRUE(used.insert(v).second)
                        << a.toString() << " x " << b.toString()
                        << ": replicas collide at offset " << v;
                }
            }
        }
    }
    EXPECT_GT(successes, 100);
}

TEST(CuteAlgebraTest, DivideInvertsProductForCompactTiles)
{
    // For a compact 1-D tile A, dividing the product by A recovers the
    // product's index map unchanged (the re-partition is the identity
    // on flat indices), with mode 0 equal to A.
    std::mt19937 rng(515);
    check::CuteGenOptions opt;
    opt.maxElements = 1 << 8;
    opt.allowZeroStride = false;
    int successes = 0;
    for (int iter = 0; iter < 1500; ++iter) {
        int64_t c = 1 + static_cast<int64_t>(rng() % 8);
        CuteLayout a = CuteLayout::make1D(c);
        CuteLayout b = (iter & 1) ? randomCompactPermuted(rng)
                                  : check::randomCuteLayout(rng, opt);
        Result<CuteLayout> p = logicalProduct(a, b);
        if (!p.ok())
            continue;
        Result<CuteLayout> d = logicalDivide(*p, a);
        if (!d.ok())
            continue;
        ++successes;
        ASSERT_EQ(d->size(), p->size());
        for (int64_t i = 0; i < p->size(); ++i)
            ASSERT_EQ((*d)(i), (*p)(i))
                << a.toString() << " x " << b.toString();
        CuteLayout m0 = d->mode(0);
        for (int64_t i = 0; i < c; ++i)
            ASSERT_EQ(m0(i), a(i));
    }
    EXPECT_GT(successes, 100);
}

} // namespace
} // namespace cute
} // namespace ll
