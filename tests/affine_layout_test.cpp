/**
 * @file
 * Tests for the affine-layout extension (Section 8 of the paper):
 * flips and aligned slices as y = Ax (+) b, with composition, inversion,
 * and conversion maps — including the key property that converting
 * between a layout and its flip is a pure index-XOR with an identity
 * linear part.
 */

#include <gtest/gtest.h>

#include <random>

#include "layout/affine_layout.h"
#include "layout/dims.h"
#include "triton/encodings.h"

namespace ll {
namespace {

LinearLayout
sampleLayout(const triton::Shape &shape)
{
    triton::BlockedEncoding enc;
    enc.sizePerThread = {2, 2};
    enc.threadsPerWarp = {4, 8};
    enc.warpsPerCta = {2, 2};
    enc.order = {1, 0};
    return enc.toLinearLayout(shape);
}

TEST(AffineLayout, WrappingIsLinear)
{
    AffineLayout a(sampleLayout({16, 64}));
    EXPECT_TRUE(a.isLinear());
    for (uint64_t v = 0; v < 1024; v += 13)
        EXPECT_EQ(a.applyFlat(v), a.linear().applyFlat(v));
}

TEST(AffineLayout, FlipReversesACoordinate)
{
    LinearLayout base = sampleLayout({16, 64});
    AffineLayout flipped = AffineLayout::flip(base, "dim1");
    EXPECT_FALSE(flipped.isLinear());
    for (int32_t reg = 0; reg < 4; ++reg) {
        for (int32_t lane = 0; lane < 32; lane += 5) {
            auto plain = base.apply({{dims::kReg, reg},
                                     {dims::kLane, lane},
                                     {dims::kWarp, 1}});
            auto flip = flipped.apply({{dims::kReg, reg},
                                       {dims::kLane, lane},
                                       {dims::kWarp, 1}});
            EXPECT_EQ(flip[0].second, 63 - plain[0].second); // dim1
            EXPECT_EQ(flip[1].second, plain[1].second);      // dim0
        }
    }
}

TEST(AffineLayout, DoubleFlipViaConversionIsIdentity)
{
    LinearLayout base = sampleLayout({16, 64});
    AffineLayout flipped = AffineLayout::flip(base, "dim1");
    // Converting flipped to flipped is the identity.
    AffineLayout conv = flipped.invertAndCompose(flipped);
    EXPECT_TRUE(conv.isLinear());
    for (uint64_t v = 0; v < 1024; v += 7)
        EXPECT_EQ(conv.applyFlat(v), v);
}

TEST(AffineLayout, FlipConversionIsAPureIndexXor)
{
    // The promise of the extension: converting between a layout and its
    // flip needs no memory traffic — the linear part of the conversion
    // is the identity and only an input-space XOR remains.
    LinearLayout base = sampleLayout({16, 64});
    AffineLayout plain(base);
    AffineLayout flipped = AffineLayout::flip(base, "dim1");
    AffineLayout conv = plain.invertAndCompose(flipped);
    EXPECT_FALSE(conv.isLinear());
    for (uint64_t v = 0; v < 1024; ++v) {
        // The conversion map applied twice returns to the start
        // (XOR involution).
        EXPECT_EQ(conv.applyFlat(conv.applyFlat(v)), v);
    }
    // The linear part must be the identity map.
    auto m = conv.linear().toF2Matrix();
    EXPECT_EQ(m, f2::F2Matrix::identity(m.numRows()));
}

TEST(AffineLayout, ConversionMovesElementsCorrectly)
{
    LinearLayout base = sampleLayout({16, 64});
    AffineLayout a(base);
    AffineLayout b = AffineLayout::flip(base, "dim0");
    AffineLayout conv = a.invertAndCompose(b);
    for (uint64_t v = 0; v < 1024; v += 3) {
        uint64_t elem = a.applyFlat(v);
        uint64_t dst = conv.applyFlat(v);
        EXPECT_EQ(b.applyFlat(dst), elem);
    }
}

TEST(AffineLayout, SliceAddressesParentElements)
{
    // A 64-wide shared buffer layout; view the aligned slice [32, 48).
    LinearLayout mem = triton::unswizzledSharedLayout({4, 64}, {1, 0});
    AffineLayout sliced = AffineLayout::slice(mem, "dim1", 32, 16);
    for (int32_t off = 0; off < 4 * 64; off += 9) {
        auto parent = mem.apply({{dims::kOffset, off}});
        auto view = sliced.apply({{dims::kOffset, off}});
        EXPECT_EQ(view[0].second, parent[0].second ^ 32);
        EXPECT_EQ(view[1].second, parent[1].second);
    }
}

TEST(AffineLayout, SliceRejectsMisalignment)
{
    LinearLayout mem = triton::unswizzledSharedLayout({4, 64}, {1, 0});
    EXPECT_THROW(AffineLayout::slice(mem, "dim1", 8, 16), UserError);
    EXPECT_THROW(AffineLayout::slice(mem, "dim1", 56, 16), UserError);
}

TEST(AffineLayout, ComposeMatchesFunctionComposition)
{
    LinearLayout inner = LinearLayout::identity1D(32, "in", "mid");
    LinearLayout outer = LinearLayout::identity1D(32, "mid", "out");
    AffineLayout f(inner, {5});
    AffineLayout g(outer, {9});
    AffineLayout fg = f.compose(g);
    for (int32_t x = 0; x < 32; ++x) {
        auto mid = f.apply({{"in", x}});
        auto expect = g.apply({{"mid", mid[0].second}});
        auto got = fg.apply({{"in", x}});
        EXPECT_EQ(got[0].second, expect[0].second);
    }
}

TEST(AffineLayout, InvertRoundTrips)
{
    std::mt19937 rng(77);
    LinearLayout base = sampleLayout({16, 64});
    std::uniform_int_distribution<int32_t> d0(0, 15), d1(0, 63);
    for (int trial = 0; trial < 20; ++trial) {
        AffineLayout a(base, {d1(rng), d0(rng)});
        AffineLayout inv = a.invert();
        for (uint64_t v = 0; v < 1024; v += 11)
            EXPECT_EQ(inv.applyFlat(a.applyFlat(v)), v);
    }
}

TEST(AffineLayout, ShiftValidation)
{
    LinearLayout base = sampleLayout({16, 64});
    EXPECT_THROW(AffineLayout(base, {64, 0}), UserError);  // dim1 too big
    EXPECT_THROW(AffineLayout(base, {0}), UserError);      // arity
}

} // namespace
} // namespace ll
