/**
 * @file
 * The calibration ledger's determinism and attribution contracts
 * (DESIGN.md §16), enforced over the committed seed corpus:
 *
 *  - replaying the corpus single-threaded and across 8 threads yields
 *    byte-identical sorted JSONL exports (records are pure functions of
 *    the conversion inputs — no timestamps, tids or sequence numbers);
 *  - the scalar reference F2 paths (LL_F2_REFERENCE / refmode::Scoped)
 *    produce the same measured wavefront totals, so the word-parallel
 *    core cannot skew the calibration corpus;
 *  - exactly one terminal record per planned conversion;
 *  - repeat plannings of the same key are deduplicated, contributing
 *    no duplicate records.
 *
 * This test runs under the tsan preset like every other ctest entry,
 * which is what makes the 8-thread half a real data-race check rather
 * than a coin flip.
 */

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/case_io.h"
#include "codegen/conversion.h"
#include "support/ledger.h"
#include "support/refmode.h"

namespace ll {
namespace {

std::vector<check::ConversionCase>
loadCorpus()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(LL_CORPUS_DIR)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".txt")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    std::vector<check::ConversionCase> cases;
    for (const auto &path : files)
        cases.push_back(check::readCaseFile(path));
    return cases;
}

void
planCase(const check::ConversionCase &c)
{
    auto spec = c.spec();
    auto plan =
        codegen::tryPlanConversion(c.src, c.dst, c.elemBytes, spec);
    ASSERT_TRUE(plan.ok()) << plan.diag().toString();
}

/** Replay the whole corpus into a fresh ledger; returns the export. */
std::vector<std::string>
replayCorpus(const std::vector<check::ConversionCase> &cases,
             int numThreads)
{
    auto &ledger = ledger::Ledger::instance();
    ledger.clear();
    ledger.setEnabled(true);
    if (numThreads <= 1) {
        for (const auto &c : cases)
            planCase(c);
    } else {
        std::vector<std::thread> threads;
        for (int t = 0; t < numThreads; ++t) {
            threads.emplace_back([&cases, t, numThreads] {
                for (size_t i = static_cast<size_t>(t);
                     i < cases.size();
                     i += static_cast<size_t>(numThreads))
                    planCase(cases[i]);
            });
        }
        for (auto &th : threads)
            th.join();
    }
    ledger.setEnabled(false);
    return ledger.sortedLines();
}

class LedgerTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        ledger::Ledger::instance().setEnabled(false);
        ledger::Ledger::instance().clear();
    }
};

TEST_F(LedgerTest, SingleVsEightThreadsByteIdentical)
{
    auto cases = loadCorpus();
    ASSERT_FALSE(cases.empty());
    auto serial = replayCorpus(cases, 1);
    ASSERT_FALSE(serial.empty());
    auto threaded = replayCorpus(cases, 8);
    EXPECT_EQ(serial, threaded)
        << "sorted JSONL export depends on thread interleaving";
}

TEST_F(LedgerTest, ReferenceF2ModeProducesIdenticalLedger)
{
    auto cases = loadCorpus();
    ASSERT_FALSE(cases.empty());
    auto fast = replayCorpus(cases, 1);
    std::vector<std::string> reference;
    {
        refmode::Scoped ref;
        reference = replayCorpus(cases, 1);
    }
    EXPECT_EQ(fast, reference)
        << "scalar reference paths changed the measured totals";
}

TEST_F(LedgerTest, ExactlyOneTerminalRecordPerConversion)
{
    auto cases = loadCorpus();
    auto lines = replayCorpus(cases, 1);
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(ledger::Ledger::instance().conversionCount(),
              static_cast<int64_t>(cases.size()));

    // Records of one conversion share the (src, dst, spec, elem,
    // start_rung) prefix — the serialized field order is fixed.
    std::vector<std::pair<std::string, int>> groups;
    for (const auto &line : lines) {
        const size_t cut = line.find(",\"rung\":");
        ASSERT_NE(cut, std::string::npos) << line;
        const std::string key = line.substr(0, cut);
        const bool terminal =
            line.find("\"terminal\":true") != std::string::npos;
        if (groups.empty() || groups.back().first != key)
            groups.emplace_back(key, 0);
        groups.back().second += terminal ? 1 : 0;
    }
    EXPECT_EQ(groups.size(), cases.size());
    for (const auto &[key, terminals] : groups)
        EXPECT_EQ(terminals, 1) << key;
}

TEST_F(LedgerTest, RepeatPlanningDeduplicated)
{
    auto cases = loadCorpus();
    ASSERT_FALSE(cases.empty());
    auto &ledger = ledger::Ledger::instance();
    ledger.clear();
    ledger.setEnabled(true);
    planCase(cases.front());
    const int64_t afterFirst = ledger.recordCount();
    ASSERT_GT(afterFirst, 0);
    planCase(cases.front());
    EXPECT_EQ(ledger.recordCount(), afterFirst)
        << "repeat planning of the same key must add no records";
    EXPECT_EQ(ledger.conversionCount(), 1);
}

TEST_F(LedgerTest, DisabledPlanningRecordsNothing)
{
    auto cases = loadCorpus();
    ASSERT_FALSE(cases.empty());
    auto &ledger = ledger::Ledger::instance();
    ledger.clear();
    ASSERT_FALSE(ledger::enabled());
    planCase(cases.front());
    EXPECT_EQ(ledger.recordCount(), 0);
    EXPECT_EQ(ledger.conversionCount(), 0);
}

} // namespace
} // namespace ll
