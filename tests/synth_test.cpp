/**
 * @file
 * Tests for whole-kernel layout synthesis (src/synth) and its engine
 * integration.
 *
 * The pins here are the subsystem's contracts:
 *   - LayoutEngine::anchorForMemory / dotResultLayout / dotOperandLayout
 *     are the same code as the synth candidate constructors (the
 *     factoring regression test — the two must never drift);
 *   - candidate sets always lead with the default and are deduplicated;
 *   - the search always ranks the all-defaults assignment, even at
 *     beam width 1;
 *   - synthesis is never worse than the propagation-only engine on any
 *     fig9 kernel (the acceptance guarantee, checked with the true cost
 *     model on the annotated functions);
 *   - eight concurrent engines with a shared plan cache produce
 *     identical assignments and identical conversion plans (the tsan
 *     target);
 *   - every conversion a synthesized run leaves behind still passes the
 *     end-to-end tagged-buffer oracle, demotion loop included.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/generators.h"
#include "check/oracle.h"
#include "codegen/conversion.h"
#include "engine/cost_model.h"
#include "engine/layout_engine.h"
#include "kernels.h"
#include "service/plan_cache.h"
#include "synth/candidates.h"
#include "synth/synthesize.h"
#include "triton/encodings.h"

namespace ll {
namespace {

engine::EngineOptions
optionsFor(const sim::GpuSpec &spec, bool synth,
           service::PlanCache *cache = nullptr)
{
    engine::EngineOptions eo;
    eo.spec = spec;
    eo.planCache = cache;
    eo.synthesizeLayouts = synth;
    return eo;
}

// The factoring pin (ISSUE satellite): the engine's anchor and dot
// layout constructors must be the synth candidate constructors, not a
// copy that can drift. Checked against an independent spelling of the
// default blocked construction too.
TEST(SynthCandidates, DefaultAnchorMatchesEngine)
{
    const sim::GpuSpec specs[] = {sim::GpuSpec::gh200(),
                                  sim::GpuSpec::rtx4090(),
                                  sim::GpuSpec::mi250()};
    const ir::DType dtypes[] = {ir::DType::F16, ir::DType::F32,
                                ir::DType::I8};
    const ir::Shape shapes[] = {{32, 64}, {16, 128}, {128}};
    for (const auto &spec : specs) {
        for (int numWarps : {4, 8}) {
            engine::LayoutEngine eng(
                engine::EngineOptions{spec, numWarps});
            for (auto dtype : dtypes) {
                for (const auto &shape : shapes) {
                    ir::TensorType type{dtype, shape};
                    LinearLayout viaSynth = synth::defaultMemoryAnchor(
                        type, spec, numWarps);
                    EXPECT_EQ(eng.anchorForMemory(type), viaSynth);
                    int vec =
                        std::max(1, 128 / ir::bitWidth(dtype));
                    auto enc = triton::BlockedEncoding::makeDefault(
                        shape, numWarps, spec.warpSize, vec);
                    EXPECT_EQ(viaSynth, enc.toLinearLayout(shape));
                }
            }
        }
    }
}

TEST(SynthCandidates, DotLayoutsMatchEngine)
{
    const sim::GpuSpec specs[] = {sim::GpuSpec::gh200(),
                                  sim::GpuSpec::rtx4090(),
                                  sim::GpuSpec::mi250()};
    ir::TensorType acc{ir::DType::F32, {64, 64}};
    ir::TensorType a{ir::DType::F16, {64, 32}};
    ir::TensorType b{ir::DType::F16, {32, 64}};
    for (const auto &spec : specs) {
        engine::LayoutEngine eng(engine::EngineOptions{spec, 4});
        EXPECT_EQ(eng.dotResultLayout(acc, 16),
                  synth::dotResultLayout(acc, 16, spec, 4));
        EXPECT_EQ(eng.dotOperandLayout(a, acc, 0, 16),
                  synth::dotOperandLayout(a, acc, 0, 16, spec, 4));
        EXPECT_EQ(eng.dotOperandLayout(b, acc, 1, 16),
                  synth::dotOperandLayout(b, acc, 1, 16, spec, 4));
    }
}

TEST(SynthCandidates, DefaultIsFirstAndDeduped)
{
    auto spec = sim::GpuSpec::gh200();
    for (auto f : {kernels::gemm(64), kernels::flexAttention(64),
                   kernels::embedding(128)}) {
        auto prop = synth::propagationMap(f, spec, 4);
        auto anchors = synth::anchorValues(f);
        ASSERT_FALSE(anchors.empty());
        for (int anchor : anchors) {
            auto cands =
                synth::anchorCandidates(f, anchor, prop, spec, 4, 6);
            ASSERT_FALSE(cands.empty());
            EXPECT_LE(static_cast<int>(cands.size()), 6);
            EXPECT_EQ(cands[0].provenance, "default");
            EXPECT_EQ(cands[0].layout,
                      synth::defaultMemoryAnchor(
                          f.value(anchor).type, spec, 4));
            for (size_t i = 0; i < cands.size(); ++i) {
                for (size_t j = i + 1; j < cands.size(); ++j) {
                    EXPECT_FALSE(cands[i].layout == cands[j].layout)
                        << "anchor " << anchor << " candidates " << i
                        << " and " << j << " are duplicates";
                }
            }
        }
    }
}

// The never-lose invariant of the search itself: whatever the beam
// does, the all-defaults assignment is among the ranked finalists.
TEST(SynthSearch, DefaultAssignmentAlwaysRanked)
{
    auto spec = sim::GpuSpec::gh200();
    for (int beamWidth : {1, 8}) {
        for (auto f : {kernels::gemm(64), kernels::embedding(128),
                       kernels::flexAttention(64)}) {
            synth::SynthOptions so;
            so.beamWidth = beamWidth;
            auto result = synth::synthesizeAnchors(f, spec, 4, so);
            ASSERT_GE(result.defaultRank, 0);
            ASSERT_LT(result.defaultRank,
                      static_cast<int>(result.ranked.size()));
            const auto &def = result.ranked[result.defaultRank];
            for (int c : def.choice)
                EXPECT_EQ(c, 0);
        }
    }
}

TEST(SynthSearch, ExhaustiveSmallGraphIsSortedByCost)
{
    ir::Function f("tiny");
    int a = f.load({ir::DType::F16, {32, 64}}, "a");
    int b = f.load({ir::DType::F32, {32, 64}}, "b");
    f.store(f.elementwise({a, b}, ir::DType::F32, "add"), "out");

    auto spec = sim::GpuSpec::gh200();
    synth::SynthOptions so;
    so.exhaustiveLimit = 10000;
    auto result = synth::synthesizeAnchors(f, spec, 4, so);
    EXPECT_TRUE(result.exhaustive);
    ASSERT_EQ(result.anchors.size(), 2u);
    ASSERT_FALSE(result.ranked.empty());
    for (size_t i = 1; i < result.ranked.size(); ++i)
        EXPECT_LE(result.ranked[i - 1].cost, result.ranked[i].cost);
    EXPECT_GE(result.defaultRank, 0);
}

// The ISSUE's acceptance guarantee, enforced per kernel with the true
// cost model: synthesis never prices worse than the propagation-only
// engine on any fig9 kernel, never keeps more conversions, and
// eliminates at least one conversion somewhere in the suite.
TEST(SynthEngine, NeverWorseOnFig9)
{
    auto spec = sim::GpuSpec::gh200();
    service::PlanCache cache;
    int totalSynthEliminated = 0;
    for (const auto &k : kernels::allKernels()) {
        for (int32_t size : k.sizes) {
            ir::Function off = k.build(size);
            ir::Function on = k.build(size);
            engine::LayoutEngine offEng(
                optionsFor(spec, false, &cache));
            engine::LayoutEngine onEng(optionsFor(spec, true, &cache));
            auto offStats = offEng.run(off);
            auto onStats = onEng.run(on);
            double offCycles =
                engine::estimateKernelCost(off, spec).cycles;
            double onCycles =
                engine::estimateKernelCost(on, spec).cycles;
            EXPECT_LE(onCycles, offCycles + 1e-6)
                << k.name << "(" << size << ") priced worse with "
                << "synthesis on";
            EXPECT_GE(onStats.convertsEliminated,
                      offStats.convertsEliminated)
                << k.name << "(" << size << ")";
            EXPECT_EQ(onStats.synthConvertsEliminated,
                      onStats.convertsEliminated -
                          offStats.convertsEliminated)
                << k.name << "(" << size << ") partition broken";
            totalSynthEliminated += onStats.synthConvertsEliminated;
        }
    }
    EXPECT_GE(totalSynthEliminated, 1)
        << "synthesis eliminated nothing anywhere in the fig9 suite";
}

// Synth off must stay bit-identical to the historical engine: same
// layouts, and no synth stats.
TEST(SynthEngine, OffIsBitIdentical)
{
    auto spec = sim::GpuSpec::gh200();
    ir::Function plain = kernels::templateAttention(64);
    ir::Function gated = kernels::templateAttention(64);
    engine::LayoutEngine plainEng(engine::EngineOptions{spec, 4});
    auto stats = plainEng.run(plain);
    engine::LayoutEngine gatedEng(optionsFor(spec, false));
    auto gatedStats = gatedEng.run(gated);
    EXPECT_EQ(stats.synthAssignmentsEvaluated, 0);
    EXPECT_EQ(gatedStats.synthAssignmentsEvaluated, 0);
    EXPECT_EQ(gatedStats.synthConvertsEliminated, 0);
    ASSERT_EQ(plain.numValues(), gated.numValues());
    for (int v = 0; v < plain.numValues(); ++v) {
        const auto &a = plain.value(v).layout;
        const auto &b = gated.value(v).layout;
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a)
            EXPECT_EQ(*a, *b) << "value " << v;
    }
}

// Serialize everything observable about one synthesized run: every
// value layout, plus the describePlan digest of every surviving
// conversion (re-planned deterministically from the endpoints).
std::string
runDigest(ir::Function f, const sim::GpuSpec &spec,
          service::PlanCache *cache)
{
    engine::LayoutEngine eng(
        optionsFor(spec, true, cache));
    eng.run(f);
    std::string digest;
    for (int v = 0; v < f.numValues(); ++v) {
        if (f.value(v).layout)
            digest += f.value(v).layout->toString() + "\n";
    }
    for (int i = 0; i < f.numOps(); ++i) {
        const ir::Op &o = f.op(i);
        if (o.erased || o.kind != ir::OpKind::ConvertLayout)
            continue;
        const auto &src = *f.value(o.operands[0]).layout;
        const auto &dst = *f.value(o.results[0]).layout;
        auto plan = codegen::tryPlanConversion(
            src, dst.transposeOuts(src.getOutDimNames()),
            ir::byteWidth(f.value(o.results[0]).type.dtype), spec);
        digest += plan.ok() ? codegen::describePlan(*plan)
                            : "unplanned";
        digest += "\n";
    }
    return digest;
}

// Eight engines race on the same shared plan cache; the chosen
// assignment and every conversion plan must be identical on all
// threads (this is the tsan target for the subsystem).
TEST(SynthEngine, DeterministicAcrossThreads)
{
    auto spec = sim::GpuSpec::gh200();
    service::PlanCache cache;
    for (auto build : {+[] { return kernels::templateAttention(64); },
                       +[] { return kernels::embedding(128); }}) {
        std::vector<std::string> digests(8);
        std::vector<std::thread> threads;
        for (int t = 0; t < 8; ++t) {
            threads.emplace_back([&, t] {
                digests[t] = runDigest(build(), spec, &cache);
            });
        }
        for (auto &th : threads)
            th.join();
        for (int t = 1; t < 8; ++t)
            EXPECT_EQ(digests[0], digests[t]) << "thread " << t;
    }
}

// Every conversion a synthesized run leaves behind must still pass the
// end-to-end tagged-buffer oracle (with the engine-style demotion
// loop) — synthesized layouts get no trust the default ones don't.
TEST(SynthEngine, SynthesizedPlansOracleVerify)
{
    auto spec = sim::GpuSpec::gh200();
    int audited = 0;
    for (auto f :
         {kernels::gemm(64), kernels::flexAttention(64),
          kernels::embedding(128), kernels::gatherGemv(128),
          kernels::bf16xint16Gemm(64)}) {
        engine::LayoutEngine eng(optionsFor(spec, true));
        eng.run(f);
        for (int i = 0; i < f.numOps(); ++i) {
            const ir::Op &o = f.op(i);
            if (o.erased || o.kind != ir::OpKind::ConvertLayout)
                continue;
            const auto &src = *f.value(o.operands[0]).layout;
            const auto &dst = *f.value(o.results[0]).layout;
            check::ConversionCase cc;
            cc.src = src;
            cc.dst = dst.transposeOuts(src.getOutDimNames());
            cc.elemBytes =
                ir::byteWidth(f.value(o.results[0]).type.dtype);
            cc.specName = "gh200";
            cc.summary = f.name() + " op " + std::to_string(i);
            auto dr = check::checkCaseWithDemotion(cc);
            EXPECT_TRUE(dr.survived) << cc.summary;
            EXPECT_TRUE(dr.report.ok())
                << cc.summary << ": " << dr.report.detail;
            ++audited;
        }
    }
    EXPECT_GE(audited, 1) << "no conversions survived to audit";
}

} // namespace
} // namespace ll
