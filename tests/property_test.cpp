/**
 * @file
 * Cross-module property tests: randomized sweeps tying the whole stack
 * together. Random encodings from every family must produce Definition
 * 4.10 distributed layouts; every conversion the planner emits —
 * whatever lowering it chose — must pass the brute-force differential
 * oracle; the optimal swizzle must never lose to the unswizzled layout;
 * and random chains of shape-transfer functions must commute with
 * element semantics.
 *
 * The random-encoding helpers these sweeps originally carried inline now
 * live in src/check/generators.h, shared with the llfuzz fuzzer.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>

#include "check/generators.h"
#include "check/oracle.h"
#include "codegen/conversion.h"
#include "codegen/swizzle.h"
#include "engine/shape_transfer.h"
#include "layout/dims.h"
#include "triton/encodings.h"

namespace ll {
namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

/** Named output coordinates of the element a flat input holds. */
std::map<std::string, int64_t>
coordsOf(const LinearLayout &l, uint64_t v)
{
    std::map<std::string, int64_t> m;
    for (const auto &p : l.unflattenOuts(l.applyFlat(v)))
        m[p.first] = static_cast<int64_t>(p.second);
    return m;
}

/** Row-major linear index of the element a flat input holds; the layout
 *  must be canonical minor-to-major (first out dim fastest-moving). */
int64_t
rowMajorLin(const LinearLayout &l, uint64_t v)
{
    int64_t lin = 0, stride = 1;
    for (const auto &p : l.unflattenOuts(l.applyFlat(v))) {
        lin += static_cast<int64_t>(p.second) * stride;
        stride *= l.getOutDimSize(p.first);
    }
    return lin;
}

class RandomizedSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomizedSweep, BlockedEncodingsAreDistributedLayouts)
{
    std::mt19937 rng(GetParam());
    check::GenOptions gen;
    const triton::Shape shapes[] = {{32, 64}, {16, 16}, {64, 8}, {8, 128}};
    for (const auto &shape : shapes) {
        auto enc = check::randomBlocked(rng, 2, gen);
        auto layout = enc.toLinearLayout(shape);
        EXPECT_TRUE(layout.isSurjective());
        EXPECT_TRUE(triton::isDistributedLayout(layout));
        EXPECT_EQ(layout.getInDimSize(kLane), gen.warpSize);
        EXPECT_EQ(layout.getInDimSize(kWarp), gen.numWarps);
        // Self-conversion is always a no-op.
        EXPECT_TRUE(codegen::conversionIsNoOp(layout, layout));
    }
}

TEST_P(RandomizedSweep, EveryFamilyProducesDistributedLayouts)
{
    std::mt19937 rng(GetParam() + 250);
    check::GenOptions gen;
    for (int i = 0; i < 8; ++i) {
        int rank = 1 + std::uniform_int_distribution<int>(
                           0, gen.maxRank - 1)(rng);
        auto shape = check::randomShape(rng, rank, gen.maxElements);
        std::string desc;
        auto layout = check::randomDistributed(rng, shape, gen, &desc);
        EXPECT_TRUE(layout.isSurjective()) << desc;
        EXPECT_TRUE(triton::isDistributedLayout(layout)) << desc;
        EXPECT_TRUE(codegen::conversionIsNoOp(layout, layout)) << desc;
    }
}

TEST_P(RandomizedSweep, EveryPlannedConversionPassesTheOracle)
{
    // The differential oracle re-checks whatever lowering the planner
    // picked: element-for-element movement, thread locality, and (for
    // shared-memory plans) measured-vs-analytic wavefronts. This covers
    // all encoding families and all three GPU specs, not just blocked
    // pairs on gh200 as the pre-generator version of this test did.
    std::mt19937 rng(GetParam() + 500);
    check::GenOptions gen;
    for (int i = 0; i < 4; ++i) {
        auto c = check::randomConversionCase(rng, gen);
        auto report = check::checkConversionCase(c);
        EXPECT_TRUE(report.ok()) << c.summary << "\n  "
                                 << report.toString();
    }
}

TEST_P(RandomizedSweep, OptimalSwizzleNeverLosesToUnswizzled)
{
    std::mt19937 rng(GetParam() + 1000);
    auto spec = sim::GpuSpec::gh200();
    check::GenOptions gen;
    const triton::Shape shape = {32, 64};
    auto src = check::randomBlocked(rng, 2, gen).toLinearLayout(shape);
    auto dst = check::randomBlocked(rng, 2, gen).toLinearLayout(shape);

    auto swz = codegen::computeOptimalSwizzle(src, dst, 2, spec);
    auto flat = codegen::wrapMemoryLayout(
        triton::unswizzledSharedLayout(shape, {1, 0}), src, dst, 2, spec);
    int64_t optimal =
        codegen::analyticWavefronts(swz, src, 2, spec) +
        codegen::analyticWavefronts(swz, dst, 2, spec);
    int64_t naive =
        codegen::analyticWavefronts(flat, src, 2, spec) +
        codegen::analyticWavefronts(flat, dst, 2, spec);
    // Compare per-element costs: different vectorization means a
    // different number of accesses for the same data.
    double optimalPerElem =
        static_cast<double>(optimal) / swz.vecElems();
    double naivePerElem = static_cast<double>(naive) / flat.vecElems();
    EXPECT_LE(optimalPerElem, naivePerElem);
}

TEST_P(RandomizedSweep, ShapeOpChainsPreserveElementSemantics)
{
    std::mt19937 rng(GetParam() + 2000);
    check::GenOptions gen;
    int rank = 2 + std::uniform_int_distribution<int>(0, 1)(rng);
    auto shape = check::randomShape(rng, rank, int64_t(1) << 11);
    auto layout = engine::canonicalizeMinorToMajor(
        check::randomBlocked(rng, rank, gen).toLinearLayout(shape), rank);
    auto chain = check::randomShapeOpChain(rng, shape, 3);

    const uint64_t total =
        static_cast<uint64_t>(layout.getTotalInDimSize());
    for (const auto &op : chain) {
        if (op.kind == check::ShapeOp::Transpose) {
            auto next = engine::transTransfer(layout, op.order);
            for (uint64_t v = 0; v < total; v += 37) {
                auto before = coordsOf(layout, v);
                auto after = coordsOf(next, v);
                for (size_t j = 0; j < op.order.size(); ++j) {
                    EXPECT_EQ(
                        after["dim" + std::to_string(j)],
                        before["dim" + std::to_string(op.order[j])]);
                }
            }
            triton::Shape perm(op.order.size());
            for (size_t j = 0; j < op.order.size(); ++j)
                perm[j] = shape[static_cast<size_t>(op.order[j])];
            shape = perm;
            layout = engine::canonicalizeMinorToMajor(
                next, static_cast<int>(op.order.size()));
        } else {
            auto next = engine::reshapeTransfer(layout, op.newShape);
            auto canon = engine::canonicalizeMinorToMajor(
                next, static_cast<int>(op.newShape.size()));
            for (uint64_t v = 0; v < total; v += 41)
                EXPECT_EQ(rowMajorLin(layout, v), rowMajorLin(canon, v));
            shape = op.newShape;
            layout = canon;
        }
    }
}

TEST_P(RandomizedSweep, DivideLeftInvertsProduct)
{
    std::mt19937 rng(GetParam() + 3000);
    // Build a product of a small register tile and a random remainder,
    // then recover the remainder by left division.
    std::uniform_int_distribution<int32_t> pick(1, 3);
    int32_t tileSize = 1 << pick(rng);
    auto tile =
        LinearLayout::identity1D(tileSize, kReg, dims::kOffset);
    auto rest = LinearLayout::identity1D(1 << pick(rng), kReg,
                                         dims::kOffset) *
                LinearLayout::identity1D(1 << pick(rng), kLane,
                                         dims::kOffset) *
                LinearLayout::identity1D(1 << pick(rng), kWarp,
                                         dims::kOffset);
    auto whole = tile * rest;
    auto q = whole.divideLeft(tile);
    ASSERT_TRUE(q.has_value());
    auto again = tile * *q;
    EXPECT_EQ(again.transposeIns(whole.getInDimNames()), whole);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweep, ::testing::Range(0, 30));

} // namespace
} // namespace ll
