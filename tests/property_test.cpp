/**
 * @file
 * Cross-module property tests: randomized sweeps tying the whole stack
 * together. Random encodings must always produce Definition 4.10
 * distributed layouts; every conversion the planner emits — whatever
 * lowering it chose — must move every element correctly when executed;
 * the optimal swizzle must never lose to the unswizzled layout; and the
 * shape-transfer functions must commute with element semantics.
 */

#include <gtest/gtest.h>

#include <random>

#include "codegen/conversion.h"
#include "codegen/shared_exec.h"
#include "codegen/swizzle.h"
#include "engine/shape_transfer.h"
#include "layout/dims.h"
#include "triton/encodings.h"

namespace ll {
namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

/** A random valid blocked encoding over `shape` with 32-lane warps. */
triton::BlockedEncoding
randomBlocked(std::mt19937 &rng, int rank)
{
    auto pick = [&](const std::vector<int32_t> &opts) {
        return opts[std::uniform_int_distribution<size_t>(
            0, opts.size() - 1)(rng)];
    };
    triton::BlockedEncoding enc;
    enc.order.resize(static_cast<size_t>(rank));
    for (int i = 0; i < rank; ++i)
        enc.order[static_cast<size_t>(i)] = i;
    std::shuffle(enc.order.begin(), enc.order.end(), rng);

    enc.sizePerThread.assign(static_cast<size_t>(rank), 1);
    enc.threadsPerWarp.assign(static_cast<size_t>(rank), 1);
    enc.warpsPerCta.assign(static_cast<size_t>(rank), 1);
    for (int i = 0; i < rank; ++i)
        enc.sizePerThread[static_cast<size_t>(i)] = pick({1, 2, 4});
    // Distribute 32 lanes and 4 warps over the dims.
    int laneBudget = 32, warpBudget = 4;
    for (int i = 0; i < rank; ++i) {
        int32_t l = pick({1, 2, 4, 8});
        l = std::min<int32_t>(l, laneBudget);
        enc.threadsPerWarp[static_cast<size_t>(i)] = l;
        laneBudget /= l;
    }
    enc.threadsPerWarp[0] *= laneBudget; // keep the product at 32
    for (int i = 0; i < rank; ++i) {
        int32_t w = pick({1, 2});
        w = std::min<int32_t>(w, warpBudget);
        enc.warpsPerCta[static_cast<size_t>(i)] = w;
        warpBudget /= w;
    }
    enc.warpsPerCta[0] *= warpBudget;
    return enc;
}

class RandomizedSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomizedSweep, BlockedEncodingsAreDistributedLayouts)
{
    std::mt19937 rng(GetParam());
    const triton::Shape shapes[] = {{32, 64}, {16, 16}, {64, 8}, {8, 128}};
    for (const auto &shape : shapes) {
        auto enc = randomBlocked(rng, 2);
        auto layout = enc.toLinearLayout(shape);
        EXPECT_TRUE(layout.isSurjective());
        EXPECT_TRUE(triton::isDistributedLayout(layout));
        EXPECT_EQ(layout.getInDimSize(kLane), 32);
        EXPECT_EQ(layout.getInDimSize(kWarp), 4);
        // Self-conversion is always a no-op.
        EXPECT_TRUE(codegen::conversionIsNoOp(layout, layout));
    }
}

TEST_P(RandomizedSweep, EveryPlannedConversionMovesElementsCorrectly)
{
    std::mt19937 rng(GetParam() + 500);
    auto spec = sim::GpuSpec::gh200();
    const triton::Shape shape = {32, 64};
    auto src = randomBlocked(rng, 2).toLinearLayout(shape);
    auto dst = randomBlocked(rng, 2).toLinearLayout(shape);

    auto plan = codegen::planConversion(src, dst, 2, spec);
    switch (plan.kind) {
      case codegen::ConversionKind::NoOp:
        EXPECT_TRUE(codegen::conversionIsNoOp(src, dst));
        break;
      case codegen::ConversionKind::RegisterPermute:
        EXPECT_TRUE(codegen::conversionIsRegisterPermute(src, dst));
        break;
      case codegen::ConversionKind::WarpShuffle: {
        const auto &p = *plan.shuffle;
        std::vector<std::vector<uint64_t>> regs(
            static_cast<size_t>(p.warpSize));
        for (int lane = 0; lane < p.warpSize; ++lane) {
            for (int reg = 0; reg < p.numRegsA; ++reg) {
                regs[static_cast<size_t>(lane)].push_back(src.applyFlat(
                    static_cast<uint64_t>(reg) |
                    (static_cast<uint64_t>(lane)
                     << src.getInDimSizeLog2(kReg))));
            }
        }
        auto out = p.execute(regs);
        auto dstAligned = dst.transposeOuts(src.getOutDimNames());
        for (int lane = 0; lane < p.warpSize; ++lane) {
            for (int reg = 0; reg < p.numRegsB; ++reg) {
                EXPECT_EQ(out[static_cast<size_t>(lane)]
                             [static_cast<size_t>(reg)],
                          dstAligned.applyFlat(
                              static_cast<uint64_t>(reg) |
                              (static_cast<uint64_t>(lane)
                               << dstAligned.getInDimSizeLog2(kReg))));
            }
        }
        break;
      }
      case codegen::ConversionKind::SharedMemory: {
        auto result = codegen::executeSharedConversion(*plan.shared, src,
                                                       dst, 2, spec);
        EXPECT_TRUE(result.correct);
        break;
      }
    }
}

TEST_P(RandomizedSweep, OptimalSwizzleNeverLosesToUnswizzled)
{
    std::mt19937 rng(GetParam() + 1000);
    auto spec = sim::GpuSpec::gh200();
    const triton::Shape shape = {32, 64};
    auto src = randomBlocked(rng, 2).toLinearLayout(shape);
    auto dst = randomBlocked(rng, 2).toLinearLayout(shape);

    auto swz = codegen::computeOptimalSwizzle(src, dst, 2, spec);
    auto flat = codegen::wrapMemoryLayout(
        triton::unswizzledSharedLayout(shape, {1, 0}), src, dst, 2, spec);
    int64_t optimal =
        codegen::analyticWavefronts(swz, src, 2, spec) +
        codegen::analyticWavefronts(swz, dst, 2, spec);
    int64_t naive =
        codegen::analyticWavefronts(flat, src, 2, spec) +
        codegen::analyticWavefronts(flat, dst, 2, spec);
    // Compare per-element costs: different vectorization means a
    // different number of accesses for the same data.
    double optimalPerElem =
        static_cast<double>(optimal) / swz.vecElems();
    double naivePerElem = static_cast<double>(naive) / flat.vecElems();
    EXPECT_LE(optimalPerElem, naivePerElem);
}

TEST_P(RandomizedSweep, ShapeTransfersPreserveElementSemantics)
{
    std::mt19937 rng(GetParam() + 2000);
    const triton::Shape shape = {32, 64};
    auto layout = engine::canonicalizeMinorToMajor(
        randomBlocked(rng, 2).toLinearLayout(shape), 2);

    // Transpose: element (i, j) must come from (j, i).
    auto t = engine::transTransfer(layout, {1, 0});
    for (uint64_t v = 0; v < 2048; v += 37) {
        auto before = layout.unflattenOuts(layout.applyFlat(v));
        auto after = t.unflattenOuts(t.applyFlat(v));
        EXPECT_EQ(after[0].second, before[1].second);
        EXPECT_EQ(after[1].second, before[0].second);
    }
    // Reshape: row-major linear index invariant.
    auto r = engine::reshapeTransfer(layout, {64, 32});
    for (uint64_t v = 0; v < 2048; v += 41) {
        auto before = layout.unflattenOuts(layout.applyFlat(v));
        int64_t lin = int64_t(before[1].second) * 64 + before[0].second;
        auto after = r.unflattenOuts(r.applyFlat(v));
        int64_t lin2 = int64_t(after[1].second) * 32 + after[0].second;
        EXPECT_EQ(lin, lin2);
    }
}

TEST_P(RandomizedSweep, DivideLeftInvertsProduct)
{
    std::mt19937 rng(GetParam() + 3000);
    // Build a product of a small register tile and a random remainder,
    // then recover the remainder by left division.
    std::uniform_int_distribution<int32_t> pick(1, 3);
    int32_t tileSize = 1 << pick(rng);
    auto tile =
        LinearLayout::identity1D(tileSize, kReg, dims::kOffset);
    auto rest = LinearLayout::identity1D(1 << pick(rng), kReg,
                                         dims::kOffset) *
                LinearLayout::identity1D(1 << pick(rng), kLane,
                                         dims::kOffset);
    auto whole = tile * rest;
    auto q = whole.divideLeft(tile);
    ASSERT_TRUE(q.has_value());
    auto again = tile * *q;
    EXPECT_EQ(again.transposeIns(whole.getInDimNames()), whole);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweep, ::testing::Range(0, 30));

} // namespace
} // namespace ll
