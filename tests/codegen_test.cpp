/**
 * @file
 * Tests for the code-generation algorithms of Section 5: vectorization
 * analysis, instruction-tile division, the optimal-swizzle construction
 * (checked against the bank-conflict simulator), warp-shuffle conversion
 * plans (executed and verified element-by-element), the lowering
 * selector, and the gather planner.
 */

#include <gtest/gtest.h>

#include "codegen/conversion.h"
#include "codegen/gather.h"
#include "codegen/shared_exec.h"
#include "codegen/shuffle.h"
#include "codegen/swizzle.h"
#include "codegen/tiles.h"
#include "codegen/vectorize.h"
#include "layout/dims.h"
#include "support/diagnostics.h"
#include "triton/encodings.h"

namespace ll {
namespace codegen {
namespace {

using dims::kLane;
using dims::kOffset;
using dims::kReg;
using dims::kWarp;
using triton::BlockedEncoding;
using triton::MmaEncoding;

LinearLayout
blocked(const triton::Shape &spt, const triton::Shape &tpw,
        const triton::Shape &wpc, const std::vector<int32_t> &order,
        const triton::Shape &shape)
{
    BlockedEncoding enc;
    enc.sizePerThread = spt;
    enc.threadsPerWarp = tpw;
    enc.warpsPerCta = wpc;
    enc.order = order;
    return enc.toLinearLayout(shape);
}

// ----------------------------------------------------------------------
// Vectorization (Section 5.1, Table 3)
// ----------------------------------------------------------------------

TEST(Vectorize, WideContiguousLayoutGetsV4B32)
{
    auto l = blocked({16, 1}, {32, 1}, {4, 1}, {0, 1}, {2048, 1});
    // f8: 16 consecutive elements = 128 bits.
    EXPECT_EQ(selectMemoryInstruction(l, 8).toString(), "v4.b32");
}

TEST(Vectorize, ContiguitySpanningDimsIsFound)
{
    // The [512, 2] x f8 case of Table 3: each thread owns a 2x2 block
    // that is contiguous across the dim boundary.
    auto l = blocked({2, 2}, {32, 1}, {4, 1}, {1, 0}, {512, 2});
    EXPECT_EQ(l.getNumConsecutiveInOut(), 4);
    EXPECT_EQ(selectMemoryInstruction(l, 8).toString(), "v1.b32");
    // With a 4x2 block, 8 f8 elements = 64 bits.
    auto l2 = blocked({4, 2}, {32, 1}, {4, 1}, {1, 0}, {512, 2});
    EXPECT_EQ(selectMemoryInstruction(l2, 8).toString(), "v2.b32");
}

TEST(Vectorize, ScalarLayoutGetsNarrowInstruction)
{
    auto l = blocked({1, 1}, {1, 32}, {1, 4}, {1, 0}, {1, 512});
    EXPECT_EQ(selectMemoryInstruction(l, 8).toString(), "v1.b8");
    EXPECT_EQ(selectMemoryInstruction(l, 16).toString(), "v1.b16");
}

// ----------------------------------------------------------------------
// Tiles and division (Section 5.3)
// ----------------------------------------------------------------------

TEST(Tiles, VectorTileDividesAlignedLayout)
{
    // registers map identically to low offset bits.
    auto cvt = LinearLayout::identity1D(8, kReg, kOffset) *
               LinearLayout::identity1D(32, kLane, kOffset);
    EXPECT_TRUE(tileMatches(cvt, vectorTile(4)));
    EXPECT_TRUE(tileMatches(cvt, vectorTile(8)));
}

TEST(Tiles, VectorTileRejectsStridedLayout)
{
    // Lanes own the low offset bits: no register vectorization.
    auto cvt = LinearLayout::identity1D(32, kLane, kOffset) *
               LinearLayout::identity1D(8, kReg, kOffset);
    EXPECT_FALSE(tileMatches(cvt, vectorTile(2)));
    EXPECT_EQ(maxVectorization(cvt, 8), 1);
}

TEST(Tiles, RegisterPermutationEnablesVectorization)
{
    // Registers map to offset bits in reversed order; a permutation
    // fixes it (generalized vectorization).
    LinearLayout::BasesT bases;
    bases.insert(kReg, {{4}, {2}, {1}});
    bases.insert(kLane, {{8}, {16}, {32}, {64}, {128}});
    LinearLayout cvt(std::move(bases), {{kOffset, 256}});
    EXPECT_FALSE(tileMatches(cvt, vectorTile(8)));
    auto permuted = permuteRegistersForTile(cvt, 8);
    ASSERT_TRUE(permuted.has_value());
    EXPECT_TRUE(tileMatches(*permuted, vectorTile(8)));
    EXPECT_EQ(maxVectorization(cvt, 8), 8);
}

TEST(Tiles, LdmatrixTileShape)
{
    // f16: 2 register bits (4 bytes) + 2 lane bits (16-byte rows).
    auto tile = ldmatrixTile(2);
    EXPECT_EQ(tile.getInDimSize(kReg), 2);
    EXPECT_EQ(tile.getInDimSize(kLane), 4);
    EXPECT_EQ(tile.getOutDimSize(kOffset), 8);
}

TEST(Tiles, LdmatrixMatchesRowMajorSharedForMmaOperand)
{
    // A f16 mma A-operand fragment loading from unswizzled row-major
    // shared memory: reg bit 0 covers contiguous k, lanes 0-1 continue
    // the row. Construct the resource->offset map directly.
    triton::DotOperandEncoding enc;
    enc.parent.version = 2;
    enc.parent.warpsPerCta = {1, 1};
    enc.opIdx = 0;
    enc.bitwidth = 16;
    auto frag = enc.toLinearLayout({16, 16});
    auto shared = triton::unswizzledSharedLayout({16, 16}, {1, 0});
    auto cvt = frag.compose(
        shared.invert().transposeIns(frag.getOutDimNames()));
    EXPECT_TRUE(tileMatches(cvt, ldmatrixTile(2)));
}

// ----------------------------------------------------------------------
// Optimal swizzling (Section 5.4)
// ----------------------------------------------------------------------

class SwizzlePairs
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    sim::GpuSpec spec_ = sim::GpuSpec::gh200();

    LinearLayout
    layoutFor(int id, const triton::Shape &shape)
    {
        switch (id) {
          case 0:
            return blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, shape);
          case 1:
            return blocked({4, 1}, {4, 8}, {2, 2}, {0, 1}, shape);
          case 2: {
            MmaEncoding enc;
            enc.version = 2;
            enc.warpsPerCta = {2, 2};
            return enc.toLinearLayout(shape);
          }
          case 3:
            return blocked({2, 2}, {8, 4}, {1, 4}, {1, 0}, shape);
          default:
            llPanic("bad layout id");
        }
    }
};

TEST_P(SwizzlePairs, ConversionThroughSharedIsCorrect)
{
    auto [ai, bi] = GetParam();
    triton::Shape shape = {32, 64};
    auto a = layoutFor(ai, shape);
    auto b = layoutFor(bi, shape);
    auto swz = computeOptimalSwizzle(a, b, 2, spec_);
    EXPECT_TRUE(swz.memLayout.isInvertible());
    auto result = executeSharedConversion(swz, a, b, 2, spec_);
    ASSERT_TRUE(result.ok()) << result.diag().toString();
    EXPECT_TRUE(result->correct) << "a=" << ai << " b=" << bi;
}

TEST_P(SwizzlePairs, AnalyticWavefrontsMatchSimulator)
{
    auto [ai, bi] = GetParam();
    triton::Shape shape = {32, 64};
    auto a = layoutFor(ai, shape);
    auto b = layoutFor(bi, shape);
    const int elemBytes = 2;
    auto swz = computeOptimalSwizzle(a, b, elemBytes, spec_);

    // Count simulator wavefronts of the first store access of warp 0
    // and compare to Lemma 9.4.
    auto offsets = warpAccessOffsets(swz, a, 0, 0, 32);
    std::vector<int64_t> byteAddrs;
    for (int64_t o : offsets)
        byteAddrs.push_back(o * elemBytes);
    int64_t simWf = sim::SharedMemory::countWavefronts(
        spec_, byteAddrs, swz.vecElems() * elemBytes);
    int64_t analytic = analyticWavefronts(swz, a, elemBytes, spec_);
    EXPECT_EQ(simWf, analytic) << "a=" << ai << " b=" << bi;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SwizzlePairs,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4)));

TEST(Swizzle, TransposeConversionIsConflictFree)
{
    // The Figure 2 workload: row-major blocked to column-major blocked
    // (a transpose through shared memory) for f8 data.
    triton::Shape shape = {64, 64};
    auto rowMajor = blocked({16, 1}, {2, 16}, {2, 2}, {1, 0}, shape);
    auto colMajor = blocked({1, 16}, {16, 2}, {2, 2}, {0, 1}, shape);
    auto swz = computeOptimalSwizzle(rowMajor, colMajor, 1,
                                     sim::GpuSpec::gh200());
    auto spec = sim::GpuSpec::gh200();
    // Optimal swizzling must reach the no-conflict floor on both sides:
    // wavefronts == banks covered per access.
    int64_t storeWf = analyticWavefronts(swz, rowMajor, 1, spec);
    int64_t loadWf = analyticWavefronts(swz, colMajor, 1, spec);
    int64_t floor = std::max<int64_t>(
        1, int64_t(swz.vecElems()) * 1 / spec.bankWidthBytes);
    EXPECT_EQ(storeWf, floor);
    EXPECT_EQ(loadWf, floor);

    auto result = executeSharedConversion(swz, rowMajor, colMajor, 1,
                                          spec);
    ASSERT_TRUE(result.ok()) << result.diag().toString();
    EXPECT_TRUE(result->correct);
}

TEST(Swizzle, VectorizationIsMaximal)
{
    // Both layouts share 4 contiguous f16 registers: the swizzle must
    // vectorize 8 elements (128 bits).
    triton::Shape shape = {32, 64};
    auto a = blocked({1, 8}, {8, 4}, {2, 2}, {1, 0}, shape);
    auto b = blocked({2, 8}, {8, 4}, {1, 2}, {1, 0}, shape);
    auto swz = computeOptimalSwizzle(a, b, 2, sim::GpuSpec::gh200());
    EXPECT_EQ(swz.vecElems(), 8);
}

TEST(Swizzle, SubWordTransposeIsConflictFreeEndToEnd)
{
    // f8 transpose with no shared register vectorization: the paper's
    // Lemma 9.4 leaves the sub-word case open; our word-bit extension
    // must still reach the conflict-free floor, measured on the
    // executed conversion (regression for the A_Bank shrink bug).
    auto spec = sim::GpuSpec::gh200();
    triton::Shape shape = {64, 64};
    auto src = blocked({1, 16}, {2, 16}, {2, 2}, {1, 0}, shape);
    auto dst = blocked({16, 1}, {16, 2}, {2, 2}, {0, 1}, shape);
    auto swz = computeOptimalSwizzle(src, dst, 1, spec);
    auto result = executeSharedConversion(swz, src, dst, 1, spec);
    ASSERT_TRUE(result.ok()) << result.diag().toString();
    EXPECT_TRUE(result->correct);
    EXPECT_EQ(result->storeStats.wavefronts,
              result->storeStats.transactions);
    EXPECT_EQ(result->loadStats.wavefronts,
              result->loadStats.transactions);
}

TEST(Swizzle, ExecutedWavefrontsMatchAnalyticAcrossPairs)
{
    auto spec = sim::GpuSpec::gh200();
    triton::Shape shape = {32, 64};
    auto a = blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, shape);
    auto b = blocked({4, 1}, {4, 8}, {2, 2}, {0, 1}, shape);
    const int elemBytes = 2;
    auto swz = computeOptimalSwizzle(a, b, elemBytes, spec);
    auto result = executeSharedConversion(swz, a, b, elemBytes, spec);
    ASSERT_TRUE(result.ok()) << result.diag().toString();
    ASSERT_TRUE(result->correct);
    // Totals = per-access analytic count x number of accesses.
    int64_t storeAccesses = result->storeStats.instructions;
    int64_t loadAccesses = result->loadStats.instructions;
    EXPECT_EQ(result->storeStats.wavefronts,
              analyticWavefronts(swz, a, elemBytes, spec) *
                  storeAccesses);
    EXPECT_EQ(result->loadStats.wavefronts,
              analyticWavefronts(swz, b, elemBytes, spec) *
                  loadAccesses);
}

TEST(Swizzle, UnavoidableConflictsAreDetectedButCorrect)
{
    // Force a degenerate case: tiny tensor where segment choices are
    // constrained.
    triton::Shape shape = {4, 32};
    auto a = blocked({1, 1}, {1, 32}, {1, 1}, {1, 0}, shape);
    auto b = blocked({1, 1}, {4, 8}, {1, 1}, {0, 1}, shape);
    auto spec = sim::GpuSpec::gh200();
    auto swz = computeOptimalSwizzle(a, b, 4, spec);
    auto result = executeSharedConversion(swz, a, b, 4, spec);
    ASSERT_TRUE(result.ok()) << result.diag().toString();
    EXPECT_TRUE(result->correct);
}

// ----------------------------------------------------------------------
// Warp shuffles (Section 5.4)
// ----------------------------------------------------------------------

/** Exhaustive correctness check of a shuffle plan: seed each register
 *  with its element id under A and confirm layout B's placement. */
void
verifyShufflePlan(const LinearLayout &a, const LinearLayout &b,
                  const WarpShufflePlan &plan)
{
    const int warpSize = plan.warpSize;
    std::vector<std::vector<uint64_t>> src(
        static_cast<size_t>(warpSize));
    for (int lane = 0; lane < warpSize; ++lane) {
        for (int reg = 0; reg < plan.numRegsA; ++reg) {
            uint64_t in = static_cast<uint64_t>(reg) |
                          (static_cast<uint64_t>(lane)
                           << a.getInDimSizeLog2(kReg));
            src[static_cast<size_t>(lane)].push_back(a.applyFlat(in));
        }
    }
    auto dstOr = plan.execute(src);
    ASSERT_TRUE(dstOr.ok()) << dstOr.diag().toString();
    auto &dst = *dstOr;
    LinearLayout bAligned = b.transposeOuts(a.getOutDimNames());
    for (int lane = 0; lane < warpSize; ++lane) {
        for (int reg = 0; reg < plan.numRegsB; ++reg) {
            uint64_t in = static_cast<uint64_t>(reg) |
                          (static_cast<uint64_t>(lane)
                           << bAligned.getInDimSizeLog2(kReg));
            EXPECT_EQ(dst[static_cast<size_t>(lane)]
                         [static_cast<size_t>(reg)],
                      bAligned.applyFlat(in))
                << "lane " << lane << " reg " << reg;
        }
    }
}

TEST(Shuffle, PaperFigure4Example)
{
    // Figure 4: four threads, two registers each, exchanging to the
    // transposed assignment. Build 8-element layouts over dim0.
    LinearLayout::BasesT ab;
    ab.insert(kReg, {{1}});
    ab.insert(kLane, {{2}, {4}});
    LinearLayout a(std::move(ab), {{"dim0", 8}});

    LinearLayout::BasesT bb;
    bb.insert(kReg, {{4}});
    bb.insert(kLane, {{1}, {2}});
    LinearLayout b(std::move(bb), {{"dim0", 8}});

    sim::GpuSpec spec = sim::GpuSpec::gh200();
    spec.warpSize = 4; // the figure's reduced example
    auto plan = planWarpShuffle(a, b, 4, spec);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->rounds, 2); // s(1) and s(2) in the figure
    EXPECT_EQ(plan->vecElems, 1);
    verifyShufflePlan(a, b, *plan);
}

TEST(Shuffle, BlockedToBlockedWithinWarp)
{
    triton::Shape shape = {8, 32};
    auto a = blocked({1, 8}, {8, 4}, {1, 1}, {1, 0}, shape);
    auto b = blocked({8, 1}, {1, 32}, {1, 1}, {1, 0}, shape);
    auto plan = planWarpShuffle(a, b, 2, sim::GpuSpec::gh200());
    ASSERT_TRUE(plan.has_value());
    verifyShufflePlan(a, b, *plan);
    EXPECT_GT(plan->countShuffleInstructions(2), 0);
}

TEST(Shuffle, MmaToBlockedWithinWarp)
{
    MmaEncoding mma;
    mma.version = 2;
    mma.warpsPerCta = {1, 1};
    auto a = mma.toLinearLayout({16, 8});
    auto b = blocked({4, 1}, {4, 8}, {1, 1}, {1, 0}, {16, 8});
    auto plan = planWarpShuffle(a, b, 2, sim::GpuSpec::gh200());
    ASSERT_TRUE(plan.has_value());
    verifyShufflePlan(a, b, *plan);
}

TEST(Shuffle, MultiWarpLayoutsWithMatchingWarps)
{
    triton::Shape shape = {16, 64};
    auto a = blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, shape);
    auto b = blocked({4, 1}, {2, 16}, {2, 2}, {1, 0}, shape);
    // Same warp tiling on both sides: the conversion stays in-warp.
    auto plan = planWarpShuffle(a, b, 2, sim::GpuSpec::gh200());
    if (plan.has_value())
        verifyShufflePlan(a, b, *plan);
}

TEST(Shuffle, CrossWarpConversionIsRejected)
{
    triton::Shape shape = {16, 64};
    auto a = blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, shape);
    auto b = blocked({1, 4}, {8, 4}, {4, 1}, {1, 0}, shape);
    EXPECT_FALSE(
        planWarpShuffle(a, b, 2, sim::GpuSpec::gh200()).has_value());
}

TEST(Shuffle, VectorizedPayloadWhenRegistersShared)
{
    // Both layouts share two contiguous f8 registers -> 4-byte payload.
    triton::Shape shape = {8, 64};
    auto a = blocked({1, 4}, {8, 4}, {1, 1}, {1, 0}, shape);
    auto b = blocked({2, 4}, {4, 8}, {1, 1}, {1, 0}, shape);
    auto plan = planWarpShuffle(a, b, 1, sim::GpuSpec::gh200());
    ASSERT_TRUE(plan.has_value());
    EXPECT_GE(plan->vecElems, 2);
    verifyShufflePlan(a, b, *plan);
}

TEST(Shuffle, NoOpDetection)
{
    auto a = blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {16, 64});
    EXPECT_TRUE(conversionIsNoOp(a, a));
    auto b = blocked({4, 1}, {4, 8}, {2, 2}, {0, 1}, {16, 64});
    EXPECT_FALSE(conversionIsNoOp(a, b));
}

TEST(Shuffle, NoOpModuloBroadcast)
{
    // Identical layouts except B broadcasts over extra warps.
    auto base = LinearLayout::identity1D(4, kReg, "dim0") *
                LinearLayout::identity1D(32, kLane, "dim0") *
                LinearLayout::zeros1D(2, kWarp, "dim0");
    EXPECT_TRUE(conversionIsNoOp(base, base));
}

TEST(Shuffle, RegisterPermuteDetection)
{
    // Same thread assignment, registers reordered.
    LinearLayout::BasesT ab;
    ab.insert(kReg, {{1}, {2}});
    ab.insert(kLane, {{4}, {8}, {16}, {32}, {64}});
    LinearLayout a(std::move(ab), {{"dim0", 128}});
    LinearLayout::BasesT bb;
    bb.insert(kReg, {{2}, {1}});
    bb.insert(kLane, {{4}, {8}, {16}, {32}, {64}});
    LinearLayout b(std::move(bb), {{"dim0", 128}});
    EXPECT_TRUE(conversionIsRegisterPermute(a, b));
    EXPECT_FALSE(conversionIsNoOp(a, b));
}

// ----------------------------------------------------------------------
// Conversion selector
// ----------------------------------------------------------------------

TEST(Conversion, SelectsCheapestKind)
{
    auto spec = sim::GpuSpec::gh200();
    auto a = blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {16, 64});

    EXPECT_EQ(planConversion(a, a, 2, spec).kind, ConversionKind::NoOp);

    auto b = blocked({4, 1}, {2, 16}, {2, 2}, {1, 0}, {16, 64});
    auto planB = planConversion(a, b, 2, spec);
    EXPECT_EQ(planB.kind, ConversionKind::WarpShuffle);

    auto c = blocked({1, 4}, {8, 4}, {4, 1}, {1, 0}, {16, 64});
    auto planC = planConversion(a, c, 2, spec);
    EXPECT_EQ(planC.kind, ConversionKind::SharedMemory);
    ASSERT_TRUE(planC.shared.has_value());
    auto result =
        executeSharedConversion(*planC.shared, a, c, 2, spec);
    ASSERT_TRUE(result.ok()) << result.diag().toString();
    EXPECT_TRUE(result->correct);
}

TEST(Conversion, CostOrderingMatchesIntuition)
{
    auto spec = sim::GpuSpec::gh200();
    auto a = blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {16, 64});
    auto b = blocked({4, 1}, {2, 16}, {2, 2}, {1, 0}, {16, 64});
    auto c = blocked({1, 4}, {8, 4}, {4, 1}, {1, 0}, {16, 64});
    double noop = planConversion(a, a, 2, spec)
                      .estimateCycles(a, 2, spec);
    double shuf = planConversion(a, b, 2, spec)
                      .estimateCycles(a, 2, spec);
    double shmem = planConversion(a, c, 2, spec)
                       .estimateCycles(a, 2, spec);
    EXPECT_LT(noop, shuf);
    EXPECT_LT(shuf, shmem);
}

TEST(Conversion, BroadcastLayoutsFallBackToShared)
{
    auto spec = sim::GpuSpec::gh200();
    auto a = blocked({1, 2}, {8, 4}, {1, 2}, {1, 0}, {8, 64});
    // b broadcasts lanes over a smaller tensor footprint.
    auto b = blocked({1, 1}, {32, 1}, {2, 1}, {0, 1}, {8, 64});
    auto plan = planConversion(a, b, 2, spec);
    EXPECT_EQ(plan.kind, ConversionKind::SharedMemory);
    ASSERT_TRUE(plan.shared.has_value());
    auto rb = executeSharedConversion(*plan.shared, a, b, 2, spec);
    ASSERT_TRUE(rb.ok()) << rb.diag().toString();
    EXPECT_TRUE(rb->correct);
}

TEST(Conversion, LdmatrixDetectedOnHopper)
{
    // mma fragment loading f16 from shared: the classic ldmatrix case.
    MmaEncoding mma;
    mma.version = 2;
    mma.warpsPerCta = {4, 1};
    auto frag = mma.toLinearLayout({64, 64});
    auto src = blocked({1, 8}, {1, 32}, {4, 1}, {1, 0}, {64, 64});
    auto spec = sim::GpuSpec::gh200();
    auto plan = planConversion(src, frag, 2, spec);
    ASSERT_EQ(plan.kind, ConversionKind::SharedMemory);
    // GH200 has both ldmatrix and stmatrix; at least the vectorized
    // side must be detected.
    EXPECT_TRUE(plan.usesLdmatrix || plan.usesStmatrix);

    auto ada = sim::GpuSpec::rtx4090();
    auto planAda = planConversion(src, frag, 2, ada);
    EXPECT_FALSE(planAda.usesStmatrix); // no stmatrix before Hopper

    auto amd = sim::GpuSpec::mi250();
    amd.warpSize = 32; // keep layouts compatible for this check
    auto planAmd = planConversion(src, frag, 2, amd);
    EXPECT_FALSE(planAmd.usesLdmatrix);
    EXPECT_FALSE(planAmd.usesStmatrix);
}

// ----------------------------------------------------------------------
// Gather (Section 5.5)
// ----------------------------------------------------------------------

TEST(Gather, WarpLocalPlanAndExecution)
{
    // 32x8 tensor; axis 1 held entirely within each thread/warp row.
    auto l = blocked({1, 8}, {32, 1}, {1, 1}, {1, 0}, {32, 8});
    auto spec = sim::GpuSpec::gh200();
    auto plan = planGather(l, 1, spec);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->rounds, 1); // no lane bit moves along axis 1

    // Fill registers with element ids, gather with a reversal index.
    const int numRegs = plan->numRegs;
    std::vector<std::vector<uint64_t>> regs(32);
    std::vector<std::vector<int32_t>> idx(32);
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < numRegs; ++reg) {
            auto coords =
                l.apply({{kReg, reg}, {kLane, lane}, {kWarp, 0}});
            regs[lane].push_back(
                static_cast<uint64_t>(coords[0].second) |
                (static_cast<uint64_t>(coords[1].second) << 16));
            idx[lane].push_back(7 - coords[0].second); // reverse dim1
        }
    }
    auto outOr = executeGather(*plan, l, 0, regs, idx);
    ASSERT_TRUE(outOr.ok()) << outOr.diag().toString();
    auto &out = *outOr;
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < numRegs; ++reg) {
            auto coords =
                l.apply({{kReg, reg}, {kLane, lane}, {kWarp, 0}});
            uint64_t expect =
                static_cast<uint64_t>(7 - coords[0].second) |
                (static_cast<uint64_t>(coords[1].second) << 16);
            EXPECT_EQ(out[lane][reg], expect);
        }
    }
}

TEST(Gather, RoundsGrowWithThreadSpread)
{
    auto spec = sim::GpuSpec::gh200();
    // Axis 1 spread over 4 lane bits: 16 rounds.
    auto l = blocked({1, 2}, {2, 16}, {1, 1}, {1, 0}, {2, 32});
    auto plan = planGather(l, 1, spec);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->rounds, 16);
}

TEST(Gather, CrossWarpGatherIsRejected)
{
    auto l = blocked({1, 1}, {1, 32}, {1, 4}, {1, 0}, {1, 128});
    EXPECT_FALSE(planGather(l, 1, sim::GpuSpec::gh200()).has_value());
}

TEST(Gather, CrossWarpOtherAxisIsAccepted)
{
    // Warps tile dim0; gathering along dim1 stays warp-local.
    auto l = blocked({1, 4}, {1, 32}, {4, 1}, {1, 0}, {4, 128});
    auto plan = planGather(l, 1, sim::GpuSpec::gh200());
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->rounds, 32);
}

// ----------------------------------------------------------------------
// Structured invalid-input handling (Lemma 9.4 precondition)
// ----------------------------------------------------------------------

TEST(Swizzle, AnalyticWavefrontsRejectsPaddedInputStructurally)
{
    // Lemma 9.4's per-access uniformity does not survive padding, so a
    // padded swizzle is an invalid *input* to the analytic pricer: the
    // structured API must hand back a Diagnostic (not crash, not
    // silently misprice), and the throwing wrapper must surface it as
    // UserError.
    triton::Shape shape = {64, 64};
    auto rowMajor = blocked({16, 1}, {2, 16}, {2, 2}, {1, 0}, shape);
    auto colMajor = blocked({1, 16}, {16, 2}, {2, 2}, {0, 1}, shape);
    auto spec = sim::GpuSpec::gh200();
    auto swz = computeOptimalSwizzle(rowMajor, colMajor, 1, spec);
    swz.padInterval = 32;
    swz.padElems = 4;
    ASSERT_TRUE(swz.padded());

    auto priced = tryAnalyticWavefronts(swz, rowMajor, 1, spec);
    ASSERT_FALSE(priced.ok());
    EXPECT_EQ(priced.diag().code, DiagCode::InvalidInput);
    EXPECT_EQ(priced.diag().stage, "swizzle.analytic");

    EXPECT_THROW(analyticWavefronts(swz, rowMajor, 1, spec), UserError);

    // The same swizzle unpadded prices fine — the rejection really is
    // about the padding, not the layouts.
    swz.padInterval = 0;
    swz.padElems = 0;
    auto clean = tryAnalyticWavefronts(swz, rowMajor, 1, spec);
    ASSERT_TRUE(clean.ok());
    EXPECT_GE(*clean, 1);
}

} // namespace
} // namespace codegen
} // namespace ll
