/**
 * @file
 * Tests for the legacy-Triton baseline model: the fastest-dim
 * vectorization heuristic (reproducing Table 3's legacy column
 * bit-exactly), the reduction support matrix and duplicate-store
 * counting (Table 4), the padding heuristic (Figure 2 baseline), and
 * the replayed Table 5 pass counts.
 */

#include <gtest/gtest.h>

#include "codegen/swizzle.h"
#include "legacy/legacy.h"

namespace ll {
namespace legacy {
namespace {

using triton::BlockedEncoding;
using triton::Shape;

/** The benchmark kernel's blocked encoding for a [512, k] tensor: 16
 *  bytes per thread, k columns. */
BlockedEncoding
table3Encoding(int32_t k, int elemBytes)
{
    BlockedEncoding enc;
    if (k == 1) {
        enc.sizePerThread = {4, 1};
    } else {
        enc.sizePerThread = {std::max(1, 16 / (k * elemBytes)), k};
    }
    enc.threadsPerWarp = {32, 1};
    enc.warpsPerCta = {4, 1};
    enc.order = {1, 0};
    return enc;
}

struct Table3Row
{
    int32_t k;
    int elemBits;
    const char *legacy;
    const char *linear;
};

TEST(LegacyVectorize, ReproducesTable3)
{
    const Table3Row rows[] = {
        {1, 8, "v1.b32", "v1.b32"},   {2, 8, "v1.b16", "v4.b32"},
        {4, 8, "v1.b32", "v4.b32"},   {8, 8, "v2.b32", "v4.b32"},
        {16, 8, "v4.b32", "v4.b32"},  {1, 16, "v2.b32", "v2.b32"},
        {2, 16, "v1.b32", "v4.b32"},  {4, 16, "v2.b32", "v4.b32"},
        {8, 16, "v4.b32", "v4.b32"},  {16, 16, "v4.b32", "v4.b32"},
    };
    for (const auto &row : rows) {
        auto enc = table3Encoding(row.k, row.elemBits / 8);
        Shape shape = {512, row.k};
        auto legacyInst = legacyMemoryInstruction(enc, shape,
                                                  row.elemBits);
        EXPECT_EQ(legacyInst.toString(), row.legacy)
            << "[512," << row.k << "] x f" << row.elemBits;
        auto layout = enc.toLinearLayout(shape);
        auto linearInst =
            codegen::selectMemoryInstruction(layout, row.elemBits);
        EXPECT_EQ(linearInst.toString(), row.linear)
            << "[512," << row.k << "] x f" << row.elemBits;
    }
}

TEST(LegacySupport, ReductionMatrixMatchesTable4)
{
    EXPECT_TRUE(legacySupportsReduction(LayoutKind::Blocked));
    EXPECT_TRUE(legacySupportsReduction(LayoutKind::Mma));
    EXPECT_TRUE(legacySupportsReduction(LayoutKind::SlicedBlocked));
    EXPECT_FALSE(legacySupportsReduction(LayoutKind::MmaInput));
    EXPECT_FALSE(legacySupportsReduction(LayoutKind::SlicedMma));
    EXPECT_FALSE(legacySupportsReduction(LayoutKind::SlicedMmaInput));
    EXPECT_FALSE(legacySupportsReduction(LayoutKind::Custom));
}

TEST(LegacySupport, LinearReductionStoresFewerWithBroadcast)
{
    // A layout broadcasting over warps: linear layouts detect the
    // duplicated data, legacy does not.
    auto spec = sim::GpuSpec::gh200();
    triton::BlockedEncoding enc;
    enc.sizePerThread = {1, 4};
    enc.threadsPerWarp = {8, 4};
    enc.warpsPerCta = {4, 1};
    enc.order = {1, 0};
    auto layout = enc.toLinearLayout({8, 16}); // warps mostly broadcast
    int64_t legacyStores = legacyReductionSharedStores(layout, 1, spec);
    int64_t linearStores = linearReductionSharedStores(layout, 1, spec);
    EXPECT_LT(linearStores, legacyStores);
    EXPECT_GE(linearStores, 1);
}

TEST(LegacySupport, EqualStoresWithoutBroadcast)
{
    auto spec = sim::GpuSpec::gh200();
    triton::BlockedEncoding enc;
    enc.sizePerThread = {2, 2};
    enc.threadsPerWarp = {4, 8};
    enc.warpsPerCta = {2, 2};
    enc.order = {1, 0};
    auto layout = enc.toLinearLayout({32, 32}); // bijective
    EXPECT_EQ(legacyReductionSharedStores(layout, 0, spec),
              linearReductionSharedStores(layout, 0, spec));
}

TEST(LegacyPadding, TransposeConversionHasConflictsOrNarrowVectors)
{
    // The Figure 2 comparison: padding keeps writes conflict-free-ish
    // but cannot match optimal swizzling's vectorization on both sides.
    auto spec = sim::GpuSpec::gh200();
    triton::Shape shape = {64, 64};
    triton::BlockedEncoding row, col;
    row.sizePerThread = {16, 1};
    row.threadsPerWarp = {2, 16};
    row.warpsPerCta = {2, 2};
    row.order = {1, 0};
    col.sizePerThread = {1, 16};
    col.threadsPerWarp = {16, 2};
    col.warpsPerCta = {2, 2};
    col.order = {0, 1};
    auto src = row.toLinearLayout(shape);
    auto dst = col.toLinearLayout(shape);

    auto padded = paddedConversionCost(src, dst, shape, 1, spec);
    EXPECT_GT(padded.sharedBytes, int64_t(64) * 64); // pays padding
    EXPECT_GT(padded.cycles, 0.0);

    auto swz = codegen::computeOptimalSwizzle(src, dst, 1, spec);
    EXPECT_EQ(swz.memLayout.getTotalOutDimSize(), 64 * 64); // no waste
    int64_t swzStore = codegen::analyticWavefronts(swz, src, 1, spec);
    int64_t swzLoad = codegen::analyticWavefronts(swz, dst, 1, spec);
    // The optimal swizzle must not lose to padding on either side.
    EXPECT_LE(swzStore + swzLoad,
              padded.storeWavefronts + padded.loadWavefronts);
}

TEST(LegacyTable5, CountsMatchThePaper)
{
    using ir::DType;
    auto check = [](DType a, DType b, int passed, int total) {
        auto [p, t] = legacyDotPassCounts(a, b);
        EXPECT_EQ(p, passed);
        EXPECT_EQ(t, total);
    };
    check(DType::I16, DType::F16, 32, 64);
    check(DType::I8, DType::F8, 30, 144);
    check(DType::I32, DType::F64, 16, 32);
    check(DType::I64, DType::F16, 32, 32);
    // Symmetric lookup.
    auto [p, t] = legacyDotPassCounts(ir::DType::F8, ir::DType::I16);
    EXPECT_EQ(p, 36);
    EXPECT_EQ(t, 96);
    // Overall rate from the paper: 46.6% of 784.
    const std::pair<ir::DType, ir::DType> pairs[] = {
        {DType::I16, DType::F16}, {DType::I16, DType::F32},
        {DType::I16, DType::F64}, {DType::I16, DType::F8},
        {DType::I32, DType::F16}, {DType::I32, DType::F64},
        {DType::I32, DType::F8},  {DType::I64, DType::F16},
        {DType::I64, DType::F32}, {DType::I64, DType::F8},
        {DType::I8, DType::F16},  {DType::I8, DType::F32},
        {DType::I8, DType::F64},  {DType::I8, DType::F8},
    };
    int passed = 0, total = 0;
    for (auto [a, b] : pairs) {
        auto [pp, tt] = legacyDotPassCounts(a, b);
        passed += pp;
        total += tt;
    }
    EXPECT_EQ(total, 784);
    EXPECT_NEAR(100.0 * passed / total, 46.6, 0.5);
}

} // namespace
} // namespace legacy
} // namespace ll
