/**
 * @file
 * Tests for the observability layer: span recording and nesting,
 * thread safety, Chrome trace-event JSON export (validated with the
 * same jsonlite parser llstat uses), histogram bucket semantics, the
 * Prometheus/JSON expositions, and the disabled-tracer guarantees
 * (no events, no allocations).
 *
 * Tests that record events flip the tracer on explicitly and restore
 * it; the binary is expected to run without LL_TRACE set (the
 * zero-allocation test skips itself otherwise).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/json_lite.h"
#include "support/metrics.h"
#include "support/trace.h"

// Allocation counter for the disabled-overhead guarantee. Counting
// operator new calls is global to the binary, so the assertion below
// only samples the delta across a tight, single-threaded window.
// GCC flags malloc/free inside replaced new/delete as mismatched even
// though the replacement set is consistent; silence that here only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<int64_t> gAllocs{0};

void *
operator new(std::size_t size)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace ll {
namespace {

/** RAII: tracing on with a clean buffer, restored to off afterwards. */
class ScopedTracing
{
  public:
    ScopedTracing()
    {
        trace::setEnabled(true);
        trace::clear();
    }
    ~ScopedTracing()
    {
        trace::setEnabled(false);
        trace::clear();
    }
};

const trace::Arg *
findArg(const trace::Event &e, const char *key)
{
    for (const auto &a : e.args) {
        if (std::string(a.key) == key)
            return &a;
    }
    return nullptr;
}

const trace::Event *
findEvent(const std::vector<trace::Event> &events, const char *name)
{
    for (const auto &e : events) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

TEST(Trace, SpansRecordNamesCategoriesAndArgs)
{
    ScopedTracing on;
    {
        trace::Span s("outer", "test");
        s.arg("count", 42);
        s.arg("cost", 1.5);
        s.arg("kind", "shared");
    }
    auto events = trace::snapshotEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].cat, "test");
    EXPECT_GE(events[0].durUs, 0.0);

    const auto *count = findArg(events[0], "count");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->value, "42");
    EXPECT_FALSE(count->quoted);
    const auto *kind = findArg(events[0], "kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_EQ(kind->value, "shared");
    EXPECT_TRUE(kind->quoted);
}

TEST(Trace, NestedSpansAreProperlyContained)
{
    ScopedTracing on;
    {
        trace::Span outer("outer", "test");
        {
            trace::Span mid("mid", "test");
            trace::Span inner("inner", "test");
            (void)inner;
            (void)mid;
        }
    }
    auto events = trace::snapshotEvents();
    ASSERT_EQ(events.size(), 3u);

    const auto *outer = findEvent(events, "outer");
    const auto *mid = findEvent(events, "mid");
    const auto *inner = findEvent(events, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(mid, nullptr);
    ASSERT_NE(inner, nullptr);

    // All on the same (dense) thread id, and each child's interval
    // inside its parent's.
    EXPECT_EQ(outer->tid, mid->tid);
    EXPECT_EQ(mid->tid, inner->tid);
    auto contains = [](const trace::Event &parent,
                       const trace::Event &child) {
        return parent.tsUs <= child.tsUs &&
               child.tsUs + child.durUs <= parent.tsUs + parent.durUs;
    };
    EXPECT_TRUE(contains(*outer, *mid));
    EXPECT_TRUE(contains(*mid, *inner));
}

TEST(Trace, FinishEndsASpanEarly)
{
    ScopedTracing on;
    trace::Span s("early", "test");
    ASSERT_TRUE(s.active());
    s.finish();
    EXPECT_FALSE(s.active());
    s.finish(); // idempotent
    EXPECT_EQ(trace::eventCount(), 1);
}

TEST(Trace, FourThreadsRecordWithoutLossOrTidCollision)
{
    // Mirrors failpoint_test's thread-smoke shape: four threads hammer
    // the recorder; every span must land, and each thread must get its
    // own dense tid.
    ScopedTracing on;
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 250;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                trace::Span s("worker", "test");
                s.arg("thread", t);
                s.arg("i", i);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    auto events = trace::snapshotEvents();
    ASSERT_EQ(events.size(),
              static_cast<size_t>(kThreads * kSpansPerThread));
    EXPECT_EQ(trace::droppedCount(), 0);

    // Each worker thread used one tid for all its spans, and no two
    // threads shared one.
    std::map<std::string, std::set<int>> tidsByThreadArg;
    for (const auto &e : events) {
        const auto *ta = findArg(e, "thread");
        ASSERT_NE(ta, nullptr);
        tidsByThreadArg[ta->value].insert(e.tid);
    }
    ASSERT_EQ(tidsByThreadArg.size(), static_cast<size_t>(kThreads));
    std::set<int> allTids;
    for (const auto &[arg, tids] : tidsByThreadArg) {
        EXPECT_EQ(tids.size(), 1u) << "thread arg " << arg;
        allTids.insert(*tids.begin());
    }
    EXPECT_EQ(allTids.size(), static_cast<size_t>(kThreads));
}

TEST(Trace, ChromeExportIsValidBalancedJson)
{
    // The golden-file shape check: the export must parse as JSON, wrap
    // a traceEvents array of complete ("ph":"X") events with numeric
    // ts/dur and object args, and the per-tid intervals must balance —
    // every pair of spans on a thread is either nested or disjoint,
    // never partially overlapping (the invariant scoped RAII spans
    // guarantee and Perfetto relies on to build flame graphs).
    ScopedTracing on;
    {
        trace::Span outer("outer", "test");
        outer.arg("kind", "shared \"quoted\" \\ with\nnewline");
        outer.arg("cycles", 12.75);
        { trace::Span inner("inner", "test"); }
        { trace::Span inner2("inner2", "test"); }
    }
    std::ostringstream os;
    trace::writeChromeTrace(os);

    auto parsed = jsonlite::parse(os.str());
    ASSERT_TRUE(parsed.has_value()) << os.str();
    ASSERT_TRUE(parsed->isObject());
    const auto *eventsJson = parsed->find("traceEvents");
    ASSERT_NE(eventsJson, nullptr);
    ASSERT_TRUE(eventsJson->isArray());
    ASSERT_EQ(eventsJson->items.size(), 3u);

    for (const auto &e : eventsJson->items) {
        ASSERT_TRUE(e.isObject());
        const auto *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        EXPECT_EQ(ph->str, "X");
        for (const char *field : {"ts", "dur", "pid", "tid"}) {
            const auto *v = e.find(field);
            ASSERT_NE(v, nullptr) << field;
            EXPECT_TRUE(v->isNumber()) << field;
        }
        const auto *name = e.find("name");
        ASSERT_NE(name, nullptr);
        EXPECT_TRUE(name->isString());
        // "args" is omitted for arg-less spans; when present it must
        // be an object.
        if (const auto *args = e.find("args"))
            EXPECT_TRUE(args->isObject());
    }

    // Balance check on the parsed output, per tid.
    struct Interval
    {
        double lo, hi;
    };
    std::map<double, std::vector<Interval>> byTid;
    for (const auto &e : eventsJson->items) {
        byTid[e.find("tid")->number].push_back(
            {e.find("ts")->number,
             e.find("ts")->number + e.find("dur")->number});
    }
    for (const auto &[tid, spans] : byTid) {
        for (size_t i = 0; i < spans.size(); ++i) {
            for (size_t j = i + 1; j < spans.size(); ++j) {
                const auto &a = spans[i];
                const auto &b = spans[j];
                const bool disjoint = a.hi <= b.lo || b.hi <= a.lo;
                const bool nested =
                    (a.lo <= b.lo && b.hi <= a.hi) ||
                    (b.lo <= a.lo && a.hi <= b.hi);
                EXPECT_TRUE(disjoint || nested)
                    << "partially overlapping spans on tid " << tid;
            }
        }
    }
}

TEST(Trace, FlushAndClearWritesConfiguredPathThenEmptiesBuffer)
{
    ScopedTracing on;
    const std::string saved = trace::outputPath();
    const std::string path =
        ::testing::TempDir() + "ll_trace_reset_test.json";
    trace::setOutputPath(path);

    { trace::Span s("segment-one", "test"); }
    ASSERT_EQ(trace::eventCount(), 1);
    EXPECT_TRUE(trace::flushAndClear());
    EXPECT_EQ(trace::eventCount(), 0);
    EXPECT_EQ(trace::droppedCount(), 0);

    // The flushed file holds the pre-reset segment.
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::ostringstream text;
    text << is.rdbuf();
    auto parsed = jsonlite::parse(text.str());
    ASSERT_TRUE(parsed.has_value());
    const auto *events = parsed->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->items.size(), 1u);
    EXPECT_EQ(events->items[0].find("name")->str, "segment-one");

    // An empty buffer has nothing to flush; the clear is still a
    // no-op-safe reset.
    EXPECT_FALSE(trace::flushAndClear());
    trace::setOutputPath(saved);
    std::remove(path.c_str());
}

TEST(Trace, FlushAndClearResetsDroppedCountWithTheBuffer)
{
    ScopedTracing on;
    const std::string saved = trace::outputPath();
    trace::setOutputPath(""); // clear only, no file I/O
    // Overrun the soft cap so the recorder starts dropping.
    while (trace::droppedCount() == 0) {
        trace::Span s("filler", "test");
        (void)s;
    }
    EXPECT_GT(trace::droppedCount(), 0);
    EXPECT_FALSE(trace::flushAndClear()); // no path configured
    EXPECT_EQ(trace::eventCount(), 0);
    EXPECT_EQ(trace::droppedCount(), 0);
    trace::setOutputPath(saved);
}

TEST(Trace, DisabledSpanRecordsNothingAndNeverAllocates)
{
    if (std::getenv("LL_TRACE") != nullptr)
        GTEST_SKIP() << "LL_TRACE set; disabled-path test not valid";
    trace::setEnabled(false);
    trace::clear();

    const int64_t allocsBefore =
        gAllocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        trace::Span s("never", "test");
        s.arg("i", i);
        s.arg("cost", 0.5);
        s.arg("kind", "noop");
        EXPECT_FALSE(s.active());
    }
    const int64_t allocsAfter = gAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(allocsAfter, allocsBefore)
        << "disabled spans must not allocate";
    EXPECT_EQ(trace::eventCount(), 0);
}

TEST(Metrics, CountersAccumulateAndReset)
{
    auto &c = metrics::counter("test.counter_basic");
    c.reset();
    c.inc();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    // Same name, same counter.
    EXPECT_EQ(&metrics::counter("test.counter_basic"), &c);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusiveUpperBounds)
{
    auto &h = metrics::Registry::instance().histogram(
        "test.hist_bounds", {1.0, 10.0, 100.0});
    h.reset();
    for (double v : {0.5, 1.0, 5.0, 10.0, 100.0, 1000.0})
        h.observe(v);

    ASSERT_EQ(h.upperBounds().size(), 3u);
    auto buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u); // 3 bounds + overflow
    EXPECT_EQ(buckets[0], 2); // 0.5, 1.0 — bound is inclusive
    EXPECT_EQ(buckets[1], 2); // 5.0, 10.0
    EXPECT_EQ(buckets[2], 1); // 100.0
    EXPECT_EQ(buckets[3], 1); // 1000.0 overflows
    EXPECT_EQ(h.count(), 6);
    EXPECT_DOUBLE_EQ(h.sum(), 1116.5);
}

TEST(Metrics, PrometheusTextExpositionIsCumulativeAndSanitized)
{
    auto &c = metrics::counter("test.expo-counter");
    c.reset();
    c.add(7);
    auto &h = metrics::Registry::instance().histogram(
        "test.expo_hist", {1.0, 10.0});
    h.reset();
    h.observe(0.5);
    h.observe(5.0);
    h.observe(50.0);

    std::ostringstream os;
    metrics::Registry::instance().writeText(os);
    const std::string text = os.str();

    // Dots and dashes sanitize to underscores under the ll_ prefix.
    EXPECT_NE(text.find("ll_test_expo_counter 7"), std::string::npos)
        << text;
    // Histogram buckets are cumulative with a +Inf terminal.
    EXPECT_NE(text.find("ll_test_expo_hist_bucket{le=\"1\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("ll_test_expo_hist_bucket{le=\"10\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("ll_test_expo_hist_bucket{le=\"+Inf\"} 3"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("ll_test_expo_hist_count 3"),
              std::string::npos)
        << text;
}

TEST(Metrics, ExponentialBoundsAreGeometric)
{
    // The plan.calib.error_ratio family: 1/8x .. 128x in factor-2 steps.
    auto bounds = metrics::exponentialBounds(0.125, 2.0, 11);
    ASSERT_EQ(bounds.size(), 11u);
    EXPECT_DOUBLE_EQ(bounds.front(), 0.125);
    EXPECT_DOUBLE_EQ(bounds[3], 1.0);
    EXPECT_DOUBLE_EQ(bounds.back(), 128.0);
    for (size_t i = 1; i < bounds.size(); ++i)
        EXPECT_DOUBLE_EQ(bounds[i], 2.0 * bounds[i - 1]);
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST(Metrics, ExponentialHistogramExposesInBothFormats)
{
    auto &h = metrics::Registry::instance().histogram(
        "test.expo_ratio_hist",
        metrics::exponentialBounds(0.125, 2.0, 11));
    h.reset();
    h.observe(1.0);  // exactly on the le="1" bound — inclusive
    h.observe(0.01); // underflows into the first bucket
    h.observe(3.0);  // le="4"
    h.observe(500.0); // overflows past 128 into +Inf

    std::ostringstream os;
    metrics::Registry::instance().writeText(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("ll_test_expo_ratio_hist_bucket{le=\"0.125\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("ll_test_expo_ratio_hist_bucket{le=\"1\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("ll_test_expo_ratio_hist_bucket{le=\"4\"} 3"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("ll_test_expo_ratio_hist_bucket{le=\"128\"} 3"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("ll_test_expo_ratio_hist_bucket{le=\"+Inf\"} 4"),
              std::string::npos)
        << text;

    std::ostringstream js;
    metrics::Registry::instance().writeJson(js);
    auto parsed = jsonlite::parse(js.str());
    ASSERT_TRUE(parsed.has_value()) << js.str();
    const auto *hist =
        parsed->find("histograms")->find("test.expo_ratio_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("count")->number, 4.0);
    const auto *buckets = hist->find("buckets");
    ASSERT_TRUE(buckets->isArray());
    ASSERT_EQ(buckets->items.size(), 12u); // 11 bounds + overflow
    EXPECT_DOUBLE_EQ(buckets->items.front().find("le")->number, 0.125);
    // JSON buckets are per-bucket (not cumulative): the +Inf terminal
    // holds only the overflow observation.
    EXPECT_EQ(buckets->items.back().find("count")->number, 1.0);
}

TEST(Metrics, JsonExpositionParsesAndCarriesBuckets)
{
    auto &h = metrics::Registry::instance().histogram(
        "test.json_hist", {2.0});
    h.reset();
    h.observe(1.0);
    h.observe(3.0);

    std::ostringstream os;
    metrics::Registry::instance().writeJson(os);
    auto parsed = jsonlite::parse(os.str());
    ASSERT_TRUE(parsed.has_value()) << os.str();
    const auto *hists = parsed->find("histograms");
    ASSERT_NE(hists, nullptr);
    // writeJson exposes raw (unsanitized) registry names.
    const auto *hist = hists->find("test.json_hist");
    ASSERT_NE(hist, nullptr);
    const auto *count = hist->find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->number, 2.0);
    const auto *buckets = hist->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_TRUE(buckets->isArray());
    ASSERT_EQ(buckets->items.size(), 2u); // le=2 and overflow
}

} // namespace
} // namespace ll
