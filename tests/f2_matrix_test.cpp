/**
 * @file
 * Unit and property tests for F2Matrix: every algebraic operation is
 * checked against brute-force enumeration on random small matrices.
 */

#include <gtest/gtest.h>

#include <random>
#include <utility>

#include "f2/matrix.h"
#include "support/refmode.h"

namespace ll {
namespace f2 {
namespace {

F2Matrix
randomMatrix(std::mt19937 &rng, int rows, int cols)
{
    F2Matrix m(rows, cols);
    std::uniform_int_distribution<uint64_t> dist(
        0, (rows == 64) ? ~uint64_t(0) : (uint64_t(1) << rows) - 1);
    for (int j = 0; j < cols; ++j)
        m.setCol(j, dist(rng));
    return m;
}

/** A random matrix guaranteed surjective: random invertible row mixing
 *  of [I | junk]. */
F2Matrix
randomSurjective(std::mt19937 &rng, int rows, int cols)
{
    EXPECT_GE(cols, rows);
    while (true) {
        F2Matrix m = randomMatrix(rng, rows, cols);
        // Plant an identity in random column positions to force full rank.
        std::vector<int> perm(cols);
        for (int i = 0; i < cols; ++i)
            perm[i] = i;
        std::shuffle(perm.begin(), perm.end(), rng);
        for (int i = 0; i < rows; ++i)
            m.setCol(perm[i], uint64_t(1) << i);
        if (m.isSurjective())
            return m;
    }
}

TEST(F2Matrix, IdentityActsTrivially)
{
    F2Matrix id = F2Matrix::identity(5);
    for (uint64_t x = 0; x < 32; ++x)
        EXPECT_EQ(id.apply(x), x);
}

TEST(F2Matrix, ZeroMapsEverythingToZero)
{
    F2Matrix z = F2Matrix::zeros(4, 6);
    for (uint64_t x = 0; x < 64; ++x)
        EXPECT_EQ(z.apply(x), 0u);
}

TEST(F2Matrix, ApplyIsLinear)
{
    std::mt19937 rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        F2Matrix m = randomMatrix(rng, 6, 5);
        for (uint64_t x = 0; x < 32; ++x) {
            for (uint64_t y = 0; y < 32; ++y) {
                EXPECT_EQ(m.apply(x ^ y), m.apply(x) ^ m.apply(y));
            }
        }
    }
}

TEST(F2Matrix, MultiplyMatchesComposition)
{
    std::mt19937 rng(2);
    for (int trial = 0; trial < 50; ++trial) {
        F2Matrix a = randomMatrix(rng, 5, 4);
        F2Matrix b = randomMatrix(rng, 4, 6);
        F2Matrix c = a.multiply(b);
        for (uint64_t x = 0; x < 64; ++x)
            EXPECT_EQ(c.apply(x), a.apply(b.apply(x)));
    }
}

TEST(F2Matrix, TransposeIsInvolution)
{
    std::mt19937 rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        F2Matrix m = randomMatrix(rng, 7, 4);
        EXPECT_EQ(m.transpose().transpose(), m);
    }
}

TEST(F2Matrix, TransposeSwapsEntries)
{
    std::mt19937 rng(4);
    F2Matrix m = randomMatrix(rng, 6, 3);
    F2Matrix t = m.transpose();
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_EQ(m.get(i, j), t.get(j, i));
}

TEST(F2Matrix, RankMatchesBruteForceImageSize)
{
    std::mt19937 rng(5);
    for (int trial = 0; trial < 100; ++trial) {
        F2Matrix m = randomMatrix(rng, 5, 5);
        std::set<uint64_t> image;
        for (uint64_t x = 0; x < 32; ++x)
            image.insert(m.apply(x));
        EXPECT_EQ(uint64_t(1) << m.rank(), image.size());
    }
}

TEST(F2Matrix, RankOfIdentity)
{
    EXPECT_EQ(F2Matrix::identity(8).rank(), 8);
    EXPECT_EQ(F2Matrix::zeros(8, 8).rank(), 0);
}

TEST(F2Matrix, InverseRoundTrips)
{
    std::mt19937 rng(6);
    int found = 0;
    while (found < 30) {
        F2Matrix m = randomMatrix(rng, 6, 6);
        if (!m.isInvertible())
            continue;
        ++found;
        F2Matrix inv = m.inverse();
        EXPECT_EQ(m.multiply(inv), F2Matrix::identity(6));
        EXPECT_EQ(inv.multiply(m), F2Matrix::identity(6));
    }
}

TEST(F2Matrix, SolveFindsASolutionWhenConsistent)
{
    std::mt19937 rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        F2Matrix m = randomMatrix(rng, 5, 6);
        std::uniform_int_distribution<uint64_t> dist(0, 63);
        uint64_t x0 = dist(rng);
        uint64_t b = m.apply(x0);
        auto x = m.solve(b);
        ASSERT_TRUE(x.has_value());
        EXPECT_EQ(m.apply(*x), b);
    }
}

TEST(F2Matrix, SolveDetectsInconsistency)
{
    // Rank-1 map onto {0, 1}: b = 2 is unreachable.
    F2Matrix m(2, 2);
    m.setCol(0, 0b01);
    m.setCol(1, 0b01);
    EXPECT_TRUE(m.solve(0b01).has_value());
    EXPECT_FALSE(m.solve(0b10).has_value());
    EXPECT_FALSE(m.solve(0b11).has_value());
}

TEST(F2Matrix, SolvePrefersZeroFreeVariables)
{
    // x0 is determined, x1 free: the solver must pick x1 = 0.
    F2Matrix m(1, 2);
    m.setCol(0, 1);
    m.setCol(1, 0);
    auto x = m.solve(1);
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(*x, 1u);
}

TEST(F2Matrix, RightInverseIsARightInverse)
{
    std::mt19937 rng(8);
    for (int trial = 0; trial < 100; ++trial) {
        F2Matrix m = randomSurjective(rng, 4, 7);
        F2Matrix r = m.rightInverse();
        EXPECT_EQ(m.multiply(r), F2Matrix::identity(4));
    }
}

TEST(F2Matrix, RightInverseOfIdentity)
{
    EXPECT_EQ(F2Matrix::identity(5).rightInverse(), F2Matrix::identity(5));
}

TEST(F2Matrix, RightInverseRejectsNonSurjective)
{
    F2Matrix m = F2Matrix::zeros(3, 3);
    EXPECT_THROW(m.rightInverse(), LogicError);
}

TEST(F2Matrix, KernelBasisSpansTheKernel)
{
    std::mt19937 rng(9);
    for (int trial = 0; trial < 100; ++trial) {
        F2Matrix m = randomMatrix(rng, 4, 6);
        auto kernel = m.kernelBasis();
        // Every basis vector is in the kernel.
        for (uint64_t k : kernel)
            EXPECT_EQ(m.apply(k), 0u);
        // Dimension matches rank-nullity.
        EXPECT_EQ(static_cast<int>(kernel.size()), 6 - m.rank());
        // Brute force: count kernel elements.
        int count = 0;
        for (uint64_t x = 0; x < 64; ++x)
            if (m.apply(x) == 0)
                ++count;
        EXPECT_EQ(count, 1 << kernel.size());
    }
}

TEST(F2Matrix, StackRowsAndConcatCols)
{
    F2Matrix a = F2Matrix::identity(2);
    F2Matrix b = F2Matrix::zeros(3, 2);
    F2Matrix s = a.stackRows(b);
    EXPECT_EQ(s.numRows(), 5);
    EXPECT_EQ(s.numCols(), 2);
    EXPECT_EQ(s.getCol(0), 0b1u);
    EXPECT_EQ(s.getCol(1), 0b10u);

    F2Matrix c = a.concatCols(F2Matrix::identity(2));
    EXPECT_EQ(c.numCols(), 4);
    EXPECT_EQ(c.getCol(2), 0b1u);
}

TEST(F2Matrix, BlockDiagonalIsTheDirectSum)
{
    F2Matrix a = F2Matrix::identity(2);
    F2Matrix b = F2Matrix::identity(3);
    F2Matrix d = a.blockDiagonal(b);
    EXPECT_EQ(d.numRows(), 5);
    EXPECT_EQ(d.numCols(), 5);
    EXPECT_EQ(d, F2Matrix::identity(5));

    // Direct-sum action: low bits through a, high bits through b.
    std::mt19937 rng(10);
    F2Matrix x = randomMatrix(rng, 3, 2);
    F2Matrix y = randomMatrix(rng, 2, 3);
    F2Matrix blk = x.blockDiagonal(y);
    for (uint64_t lo = 0; lo < 4; ++lo) {
        for (uint64_t hi = 0; hi < 8; ++hi) {
            uint64_t got = blk.apply(lo | (hi << 2));
            uint64_t want = x.apply(lo) | (y.apply(hi) << 3);
            EXPECT_EQ(got, want);
        }
    }
}

TEST(F2Matrix, InjectiveSurjectiveFlags)
{
    F2Matrix tall(4, 2);
    tall.setCol(0, 0b0001);
    tall.setCol(1, 0b0010);
    EXPECT_TRUE(tall.isInjective());
    EXPECT_FALSE(tall.isSurjective());

    F2Matrix wide(2, 4);
    wide.setCol(0, 0b01);
    wide.setCol(1, 0b10);
    wide.setCol(2, 0b11);
    wide.setCol(3, 0b00);
    EXPECT_TRUE(wide.isSurjective());
    EXPECT_FALSE(wide.isInjective());
}

TEST(F2Matrix, ToStringShowsGrid)
{
    F2Matrix m = F2Matrix::identity(2);
    EXPECT_EQ(m.toString(), "1 0\n0 1\n");
}

TEST(F2Matrix, OutOfRangeAccessesThrow)
{
    F2Matrix m(3, 3);
    EXPECT_THROW(m.get(3, 0), LogicError);
    EXPECT_THROW(m.get(0, 3), LogicError);
    EXPECT_THROW(m.getCol(5), LogicError);
    EXPECT_THROW(m.setCol(0, 0b1000), LogicError); // wider than 3 rows
}

/** Property sweep: solve() returns minimal solutions with free vars 0. */
class F2SolveSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(F2SolveSweep, SolutionHasZeroFreeVariables)
{
    std::mt19937 rng(GetParam());
    F2Matrix m = randomMatrix(rng, 4, 6);
    auto kernel = m.kernelBasis();
    for (uint64_t b = 0; b < 16; ++b) {
        auto x = m.solve(b);
        if (!x.has_value())
            continue;
        // No kernel element can be removed from x to lower its weight
        // while staying a solution with the pivot convention: check that
        // x is reproduced exactly by re-solving m x = m x.
        auto again = m.solve(m.apply(*x));
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(*again, *x);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, F2SolveSweep, ::testing::Range(0, 20));

// ----------------------------------------------------------------------
// Differential suite: every word-parallel kernel against its scalar
// *_reference twin, bit for bit, over edge shapes (1x1, full 64-row
// words, tall/wide extremes) and forced rank-deficient matrices.
// ----------------------------------------------------------------------

class F2Differential : public ::testing::TestWithParam<int>
{
};

TEST_P(F2Differential, WordParallelMatchesReferenceBitForBit)
{
    std::mt19937 rng(0xf2f2u + static_cast<unsigned>(GetParam()));
    std::uniform_int_distribution<int> dim(1, 64);
    std::vector<std::pair<int, int>> shapes = {
        {1, 1}, {64, 64}, {64, 1}, {1, 64}, {63, 17}, {2, 40}};
    for (int extra = 0; extra < 4; ++extra)
        shapes.emplace_back(dim(rng), dim(rng));
    for (auto [rows, cols] : shapes) {
        F2Matrix m = randomMatrix(rng, rows, cols);
        if (cols > 2 && (GetParam() & 1)) {
            // Force rank deficiency: duplicate a column, zero another.
            m.setCol(cols - 1, m.getCol(0));
            m.setCol(cols / 2, 0);
        }
        SCOPED_TRACE(std::to_string(rows) + "x" + std::to_string(cols));
        EXPECT_EQ(m.transpose(), m.transpose_reference());
        EXPECT_EQ(m.rank(), m.rank_reference());
        EXPECT_EQ(m.kernelBasis(), m.kernelBasis_reference());

        std::uniform_int_distribution<uint64_t> vec(
            0, (cols == 64) ? ~uint64_t(0) : (uint64_t(1) << cols) - 1);
        std::uniform_int_distribution<uint64_t> target(
            0, (rows == 64) ? ~uint64_t(0) : (uint64_t(1) << rows) - 1);
        for (int t = 0; t < 8; ++t) {
            const uint64_t x = vec(rng);
            EXPECT_EQ(m.apply(x), m.apply_reference(x));
            // The echelon engine packs [M | b] into 64-bit rows, so
            // solve's domain is cols <= 63. Random targets hit the
            // inconsistent branch, images the consistent one; both
            // must agree on value and presence.
            if (cols <= 63) {
                const uint64_t b = target(rng);
                EXPECT_EQ(m.solve(b), m.solve_reference(b));
                const uint64_t img = m.apply(vec(rng));
                EXPECT_EQ(m.solve(img), m.solve_reference(img));
            }
        }
        F2Matrix n = randomMatrix(rng, cols, dim(rng));
        EXPECT_EQ(m.multiply(n), m.multiply_reference(n));
    }
    // rightInverse augments with an m-row identity: rows + cols <= 64.
    for (auto [rows, cols] : std::vector<std::pair<int, int>>{
             {1, 1}, {8, 12}, {32, 32}, {5, 59}}) {
        F2Matrix s = randomSurjective(rng, rows, cols);
        SCOPED_TRACE("surjective " + std::to_string(rows) + "x" +
                     std::to_string(cols));
        EXPECT_EQ(s.rightInverse(), s.rightInverse_reference());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, F2Differential, ::testing::Range(0, 40));

// refmode must reroute the fast entry points onto the scalar engine:
// under Scoped, fast and reference are literally the same code path.
TEST(F2Differential, RefmodeScopedDispatchesToReference)
{
    std::mt19937 rng(7);
    F2Matrix m = randomMatrix(rng, 24, 31);
    const F2Matrix fastT = m.transpose();
    const int fastRank = m.rank();
    refmode::Scoped ref;
    EXPECT_EQ(m.transpose(), fastT);
    EXPECT_EQ(m.transpose(), m.transpose_reference());
    EXPECT_EQ(m.rank(), fastRank);
    EXPECT_EQ(m.rank(), m.rank_reference());
}

} // namespace
} // namespace f2
} // namespace ll
