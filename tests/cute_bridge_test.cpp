/**
 * @file
 * The CuteLayout <-> LinearLayout bridge, proven exact, plus the
 * non-pow2 admission path end to end.
 *
 *  - isLinearizable is exact in both directions: accepted layouts
 *    round-trip bit-for-bit through toLinear (applyFlat agrees with
 *    integer evaluation everywhere), and every rejected pow2-extent
 *    layout carries an explicit XOR-linearity witness.
 *  - isDelinearizable mirrors it: every layout in the committed
 *    40-case F2 corpus bridges fromLinear -> toLinear bit-identically,
 *    and planning the bridged pair yields the same describePlan FNV
 *    digest as planning the originals; XOR-swizzles are rejected with
 *    the overlapping pair named.
 *  - Previously-rejected non-pow2 shapes — (3,5,7), (25,4), (50257),
 *    (12,100) — plan and execute end to end, audited by the
 *    tagged-buffer oracle, through the planner, the service (with plan
 *    cache sharing), and the engine entry point.
 *  - The committed `.cute` corpus replays through the demotion-aware
 *    oracle on every run.
 */

#include <algorithm>
#include <filesystem>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/case_io.h"
#include "check/cute_check.h"
#include "check/generators.h"
#include "codegen/conversion.h"
#include "cute/admit.h"
#include "cute/bridge.h"
#include "engine/layout_engine.h"
#include "service/cute_service.h"
#include "service/plan_cache.h"

namespace ll {
namespace cute {
namespace {

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::vector<std::string>
corpusFiles(const std::string &ext)
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(LL_CORPUS_DIR)) {
        if (entry.path().extension() == ext)
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

bool
allPow2Extents(const CuteLayout &l)
{
    for (int64_t e : l.flatShape()) {
        if ((e & (e - 1)) != 0)
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// isLinearizable: exact in both directions.
// ---------------------------------------------------------------------

TEST(CuteBridgeTest, LinearizableKnownExamples)
{
    // Non-pow2 stride is fine: 2:3 has basis image 0b11.
    EXPECT_TRUE(isLinearizable(CuteLayout::make1D(2, 3)));
    EXPECT_TRUE(isLinearizable(CuteLayout::parse("(4,8):(8,1)")));
    // Zero strides (broadcast) are linear.
    EXPECT_TRUE(isLinearizable(CuteLayout::parse("(4,2):(0,1)")));
    // Overlapping bit images carry: (2,2):(1,3) maps 3 to 1+3=4, not
    // 1^3=2.
    EXPECT_FALSE(isLinearizable(CuteLayout::parse("(2,2):(1,3)")));
    // Non-pow2 extents are outside F2 entirely.
    EXPECT_FALSE(isLinearizable(CuteLayout::make1D(3)));
    EXPECT_FALSE(isLinearizable(CuteLayout::parse("(3,5,7):(1,3,15)")));
}

TEST(CuteBridgeTest, AcceptedLayoutsRoundTripBitForBit)
{
    std::mt19937 rng(11);
    check::CuteGenOptions opt;
    opt.maxElements = 1 << 11;
    int accepted = 0;
    for (int iter = 0; iter < 6000; ++iter) {
        CuteLayout l = check::randomCuteLayout(rng, opt);
        if (!isLinearizable(l))
            continue;
        ++accepted;
        Result<LinearLayout> lin = toLinear(l);
        ASSERT_TRUE(lin.ok()) << l.toString() << ": "
                              << lin.diag().message;
        for (int64_t i = 0; i < l.size(); ++i)
            ASSERT_EQ(static_cast<uint64_t>(l(i)),
                      lin->applyFlat(static_cast<uint64_t>(i)))
                << l.toString() << " at " << i;
        // And back: fromLinear accepts (the bridge never produces a
        // swizzle) and evaluates identically.
        Result<CuteLayout> back = fromLinear(*lin);
        ASSERT_TRUE(back.ok()) << l.toString();
        for (int64_t i = 0; i < l.size(); ++i)
            ASSERT_EQ((*back)(i), l(i)) << l.toString();
        // toLinear of the round-tripped layout is bit-identical.
        Result<LinearLayout> again = toLinear(*back);
        ASSERT_TRUE(again.ok());
        ASSERT_TRUE(*again == *lin) << l.toString();
    }
    EXPECT_GT(accepted, 300);
}

TEST(CuteBridgeTest, RejectionsCarryAWitnessExhaustive)
{
    // Exhaustive over pow2-extent layouts with overlap-prone strides:
    // every rejection must exhibit concrete x, y with
    // L(x^y) != L(x) ^ L(y); every acceptance must have none (we trust
    // AcceptedLayoutsRoundTripBitForBit for the positive direction and
    // spot-check the witness is truly absent).
    std::vector<int64_t> strides = {0, 1, 2, 3, 4, 5, 6, 7, 8, 12};
    int rejected = 0;
    for (int64_t s0 : {1, 2, 4}) {
        for (int64_t s1 : {1, 2, 4}) {
            for (int64_t d0 : strides) {
                for (int64_t d1 : strides) {
                    CuteLayout l =
                        CuteLayout::fromFlat({s0, s1}, {d0, d1});
                    auto [x, y] = linearityWitness(l);
                    if (isLinearizable(l)) {
                        EXPECT_EQ(x, -1) << l.toString();
                        EXPECT_EQ(y, -1) << l.toString();
                        continue;
                    }
                    ++rejected;
                    ASSERT_GE(x, 0) << l.toString();
                    ASSERT_GE(y, 0) << l.toString();
                    ASSERT_LT(x, l.size()) << l.toString();
                    ASSERT_LT(y, l.size()) << l.toString();
                    ASSERT_NE(l(x ^ y), l(x) ^ l(y))
                        << l.toString() << " witness (" << x << ", "
                        << y << ")";
                }
            }
        }
    }
    EXPECT_GT(rejected, 50);
}

TEST(CuteBridgeTest, RejectionsCarryAWitnessRandom)
{
    std::mt19937 rng(23);
    check::CuteGenOptions opt;
    opt.maxElements = 1 << 11;
    int rejected = 0;
    for (int iter = 0; iter < 6000; ++iter) {
        CuteLayout l = check::randomCuteLayout(rng, opt);
        if (!allPow2Extents(l) || isLinearizable(l))
            continue;
        ++rejected;
        auto [x, y] = linearityWitness(l);
        ASSERT_GE(x, 0) << l.toString();
        ASSERT_NE(l(x ^ y), l(x) ^ l(y)) << l.toString();
        // The rejection is genuine: toLinear must decline too.
        EXPECT_FALSE(toLinear(l).ok()) << l.toString();
    }
    EXPECT_GT(rejected, 100);
}

TEST(CuteBridgeTest, NonPow2ExtentsHaveNoXorWitness)
{
    // XOR is undefined on a non-pow2 domain; the witness must decline
    // rather than fabricate one.
    auto [x, y] = linearityWitness(CuteLayout::make1D(3));
    EXPECT_EQ(x, -1);
    EXPECT_EQ(y, -1);
}

// ---------------------------------------------------------------------
// The reverse bridge over the committed F2 corpus.
// ---------------------------------------------------------------------

TEST(CuteBridgeTest, CorpusLayoutsRoundTripBitIdentical)
{
    std::vector<std::string> files = corpusFiles(".txt");
    ASSERT_GE(files.size(), 40u);
    int layouts = 0;
    for (const std::string &path : files) {
        check::ConversionCase c = check::readCaseFile(path);
        for (const LinearLayout *l : {&c.src, &c.dst}) {
            ++layouts;
            ASSERT_TRUE(isDelinearizable(*l)) << path;
            Result<CuteLayout> cl = fromLinear(*l);
            ASSERT_TRUE(cl.ok()) << path << ": " << cl.diag().message;
            // Same function on every flattened index.
            for (uint64_t i = 0;
                 i < static_cast<uint64_t>(l->getTotalInDimSize());
                 ++i) {
                ASSERT_EQ(static_cast<uint64_t>((*cl)(
                              static_cast<int64_t>(i))),
                          l->applyFlat(i))
                    << path << " at " << i;
            }
            // And toLinear with the original dim names reproduces the
            // layout *bit-identically* (operator== covers dim names,
            // bases, and out sizes).
            std::vector<LinearLayout::DimSize> inDims;
            for (const std::string &d : l->getInDimNames())
                inDims.emplace_back(d, l->getInDimSize(d));
            Result<LinearLayout> lin = toLinear(*cl, inDims,
                                                l->getOutDims());
            ASSERT_TRUE(lin.ok()) << path << ": "
                                  << lin.diag().message;
            ASSERT_TRUE(*lin == *l) << path;
        }
    }
    EXPECT_GE(layouts, 80);
}

TEST(CuteBridgeTest, CorpusPlansThroughBridgeShareTheDigest)
{
    // Planning the bridged pair must be indistinguishable from
    // planning the originals: same describePlan rendering, compared by
    // FNV digest.
    int planned = 0;
    for (const std::string &path : corpusFiles(".txt")) {
        check::ConversionCase c = check::readCaseFile(path);
        if (!c.failpoints.empty())
            continue;
        sim::GpuSpec spec = c.spec();
        Result<codegen::ConversionPlan> direct =
            codegen::tryPlanConversion(c.src, c.dst, c.elemBytes, spec);
        CuteLayout cuteSrc = *fromLinear(c.src);
        CuteLayout cuteDst = *fromLinear(c.dst);
        std::vector<LinearLayout::DimSize> srcDims, dstDims;
        for (const std::string &d : c.src.getInDimNames())
            srcDims.emplace_back(d, c.src.getInDimSize(d));
        for (const std::string &d : c.dst.getInDimNames())
            dstDims.emplace_back(d, c.dst.getInDimSize(d));
        Result<LinearLayout> bridgedSrc =
            toLinear(cuteSrc, srcDims, c.src.getOutDims());
        Result<LinearLayout> bridgedDst =
            toLinear(cuteDst, dstDims, c.dst.getOutDims());
        ASSERT_TRUE(bridgedSrc.ok() && bridgedDst.ok()) << path;
        Result<codegen::ConversionPlan> bridged =
            codegen::tryPlanConversion(*bridgedSrc, *bridgedDst,
                                       c.elemBytes, spec);
        ASSERT_EQ(direct.ok(), bridged.ok()) << path;
        if (!direct.ok())
            continue;
        ++planned;
        EXPECT_EQ(fnv1a(codegen::describePlan(*direct)),
                  fnv1a(codegen::describePlan(*bridged)))
            << path;
    }
    EXPECT_GE(planned, 30);
}

TEST(CuteBridgeTest, SwizzlesAreRejectedFromLinear)
{
    // A 4x4 XOR-swizzle: the lane bases hit dim0 ^ dim1 on purpose.
    LinearLayout::BasesT bases;
    bases["register"] = {{1, 0}, {2, 0}};
    bases["lane"] = {{1, 1}, {2, 2}};
    LinearLayout swizzle(std::move(bases), {{"dim0", 4}, {"dim1", 4}},
                         /*requireSurjective=*/false);
    EXPECT_FALSE(isDelinearizable(swizzle));
    Result<CuteLayout> r = fromLinear(swizzle);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diag().code, DiagCode::InvalidInput);
}

// ---------------------------------------------------------------------
// Non-pow2 admission end to end.
// ---------------------------------------------------------------------

check::CuteCase
namedCase(const std::string &srcText, const std::string &dstText,
          int elemBytes, const std::string &summary)
{
    check::CuteCase c;
    c.request.src = CuteLayout::parse(srcText);
    c.request.dst = CuteLayout::parse(dstText);
    c.request.elemBytes = elemBytes;
    c.summary = summary;
    return c;
}

TEST(CuteAdmissionTest, NonPow2ShapesPlanAndExecuteEndToEnd)
{
    // Three-plus shapes the F2 entry points reject outright.
    std::vector<check::CuteCase> cases = {
        namedCase("(3,5,7):(1,3,15)", "(3,5,7):(35,7,1)", 2,
                  "3x5x7 col->row"),
        namedCase("(25,4):(4,1)", "(25,4):(1,25)", 4,
                  "25x4 row->col"),
        namedCase("(50257):(1)", "(50257):(1)", 2, "vocab copy"),
        namedCase("(12,100):(100,1)", "(12,100):(1,12)", 1,
                  "12x100 row->col"),
    };
    for (const check::CuteCase &c : cases) {
        // The strict bridge refuses with the *bridgeable* code, not
        // InvalidInput: these are well-formed requests.
        Result<CutePlan> strict =
            tryBridgeConversion(c.request, c.spec());
        ASSERT_FALSE(strict.ok()) << c.summary;
        EXPECT_EQ(strict.diag().code, DiagCode::NonPow2Bridgeable)
            << c.summary;
        // The total planner admits them...
        check::CuteOracleReport report = check::checkCuteCase(c);
        EXPECT_TRUE(report.ok())
            << c.summary << ": " << report.toString();
        // ...splitting into a pow2 core and a scalar remainder.
        EXPECT_GT(report.remainderElems, 0) << c.summary;
    }
}

TEST(CuteAdmissionTest, Pow2ShapesTakeThePureBridge)
{
    check::CuteCase c = namedCase("(8,16):(16,1)", "(8,16):(1,8)", 2,
                                  "pow2 row->col");
    Result<CutePlan> plan = tryBridgeConversion(c.request, c.spec());
    ASSERT_TRUE(plan.ok()) << plan.diag().message;
    EXPECT_EQ(plan->remainderElems, 0);
    EXPECT_EQ(plan->coreElems, 8 * 16);
    check::CuteOracleReport report = check::checkCutePlan(
        *plan, c.request, c.spec());
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(CuteAdmissionTest, MalformedStaysInvalidInput)
{
    // Mismatched logical shapes: malformed, never NonPow2Bridgeable.
    check::CuteCase shapes = namedCase("(3,5):(5,1)", "(4,5):(5,1)", 2,
                                       "shape mismatch");
    Result<CutePlan> r1 =
        tryPlanCuteConversion(shapes.request, shapes.spec());
    ASSERT_FALSE(r1.ok());
    EXPECT_EQ(r1.diag().code, DiagCode::InvalidInput);

    // Aliasing destination (stride 0): two logical elements collide.
    check::CuteCase alias = namedCase("(6):(1)", "(6):(0)", 2,
                                      "aliasing dst");
    Result<CutePlan> r2 =
        tryPlanCuteConversion(alias.request, alias.spec());
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.diag().code, DiagCode::InvalidInput);

    // Bad element width.
    check::CuteCase bytes = namedCase("(6):(1)", "(6):(1)", 3,
                                      "bad elemBytes");
    Result<CutePlan> r3 =
        tryPlanCuteConversion(bytes.request, bytes.spec());
    ASSERT_FALSE(r3.ok());
    EXPECT_EQ(r3.diag().code, DiagCode::InvalidInput);

    // The diagnostic codes render distinctly (stable names callers can
    // switch on).
    EXPECT_EQ(toString(DiagCode::NonPow2Bridgeable),
              "non-pow2-bridgeable");
    EXPECT_NE(toString(DiagCode::NonPow2Bridgeable),
              toString(DiagCode::InvalidInput));
}

TEST(CuteAdmissionTest, CuteCorpusReplaysWithDemotion)
{
    std::vector<std::string> files = corpusFiles(".cute");
    ASSERT_GE(files.size(), 4u);
    for (const std::string &path : files) {
        check::CuteCase c = check::readCuteCaseFile(path);
        check::CuteDemotionReport rep =
            check::checkCuteCaseWithDemotion(c);
        EXPECT_TRUE(rep.survived) << path;
        EXPECT_TRUE(rep.report.ok())
            << path << ": " << rep.report.toString();
        // Round-trip the corpus format itself.
        std::ostringstream oss;
        check::writeCuteCase(oss, c);
        std::istringstream iss(oss.str());
        check::CuteCase back = check::readCuteCase(iss);
        EXPECT_EQ(back.request.src, c.request.src) << path;
        EXPECT_EQ(back.request.dst, c.request.dst) << path;
        EXPECT_EQ(back.request.elemBytes, c.request.elemBytes) << path;
        EXPECT_EQ(back.specName, c.specName) << path;
    }
}

TEST(CuteAdmissionTest, ServiceSharesTheCoreAcrossRequests)
{
    service::PlanCache cache;
    check::CuteCase a = namedCase("(3,5,7):(1,3,15)",
                                  "(3,5,7):(35,7,1)", 2, "a");
    sim::GpuSpec spec = a.spec();

    service::CuteConversionOutcome first =
        service::serveCuteConversion(&cache, a.request, spec);
    ASSERT_TRUE(first.planned()) << first.error;
    EXPECT_TRUE(first.decomposed);
    EXPECT_FALSE(first.coreFromCache);

    // Same request again: the core ladder plan is served from cache.
    service::CuteConversionOutcome second =
        service::serveCuteConversion(&cache, a.request, spec);
    ASSERT_TRUE(second.planned()) << second.error;
    EXPECT_TRUE(second.coreFromCache);

    // A *different* non-pow2 logical shape with the same floor-pow2
    // core box and storage order hits the same cached core plan.
    check::CuteCase b = namedCase("(3,5,7):(1,3,15)",
                                  "(3,5,7):(35,7,1)", 2, "b");
    b.request.src = CuteLayout::parse("(3,7,7):(1,3,21)");
    b.request.dst = CuteLayout::parse("(3,7,7):(49,7,1)");
    service::CuteConversionOutcome third =
        service::serveCuteConversion(&cache, b.request, spec);
    ASSERT_TRUE(third.planned()) << third.error;
    EXPECT_TRUE(third.coreFromCache);

    // The served plan still passes the oracle.
    check::CuteOracleReport report =
        check::checkCutePlan(*second.plan, a.request, spec);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(CuteAdmissionTest, ServiceHandlesScalarOnlyAndMalformed)
{
    service::PlanCache cache;
    sim::GpuSpec spec = check::specByName("gh200");

    // A 1-element core: nothing to plan, still served.
    check::CuteCase tiny = namedCase("(1):(1)", "(1):(1)", 4, "unit");
    service::CuteConversionOutcome unit =
        service::serveCuteConversion(&cache, tiny.request, spec);
    ASSERT_TRUE(unit.planned()) << unit.error;
    EXPECT_FALSE(unit.plan->needsCorePlan());

    check::CuteCase bad = namedCase("(3,5):(5,1)", "(4,5):(5,1)", 2,
                                    "mismatch");
    service::CuteConversionOutcome out =
        service::serveCuteConversion(&cache, bad.request, spec);
    EXPECT_FALSE(out.planned());
    EXPECT_FALSE(out.error.empty());
}

TEST(CuteAdmissionTest, EngineEntryPointAdmitsNonPow2)
{
    engine::EngineOptions opts;
    service::PlanCache cache;
    opts.planCache = &cache;
    engine::LayoutEngine eng(opts);

    CuteLayout src = CuteLayout::parse("(12,100):(100,1)");
    CuteLayout dst = CuteLayout::parse("(12,100):(1,12)");
    Result<CutePlan> plan = eng.planCuteConversion(src, dst, 1);
    ASSERT_TRUE(plan.ok()) << plan.diag().message;
    EXPECT_GT(plan->remainderElems, 0);

    CuteConversionRequest req;
    req.src = src;
    req.dst = dst;
    req.elemBytes = 1;
    check::CuteOracleReport report =
        check::checkCutePlan(*plan, req, opts.spec);
    EXPECT_TRUE(report.ok()) << report.toString();

    // Without a cache the engine plans fresh and still succeeds.
    engine::LayoutEngine bare((engine::EngineOptions()));
    Result<CutePlan> fresh = bare.planCuteConversion(src, dst, 1);
    ASSERT_TRUE(fresh.ok()) << fresh.diag().message;
    // Malformed input is still InvalidInput at the engine boundary.
    Result<CutePlan> badPlan = bare.planCuteConversion(
        src, CuteLayout::parse("(7,100):(100,1)"), 1);
    ASSERT_FALSE(badPlan.ok());
    EXPECT_EQ(badPlan.diag().code, DiagCode::InvalidInput);
}

TEST(CuteAdmissionTest, RandomCasesSustainTheOracle)
{
    // A small in-process sweep mirroring llfuzz --diff-cute (the fuzz
    // smoke run does 500+; this keeps the unit suite fast).
    std::mt19937 rng(7);
    check::CuteGenOptions opt;
    opt.maxElements = 1 << 11;
    for (int iter = 0; iter < 40; ++iter) {
        check::CuteCase c = check::randomCuteCase(rng, opt);
        check::CuteOracleReport report = check::checkCuteCase(c);
        ASSERT_TRUE(report.ok())
            << c.summary << "\nsrc " << c.request.src.toString()
            << "\ndst " << c.request.dst.toString() << "\n"
            << report.toString();
    }
}

} // namespace
} // namespace cute
} // namespace ll
