/**
 * @file
 * Tests for the mini IR, the Section 4.4 shape-operator transfer
 * functions (verified as data-movement no-ops element by element), the
 * layout engine's anchor assignment / conversion insertion / cleanup,
 * and the kernel cost model counters.
 */

#include <gtest/gtest.h>

#include "engine/cost_model.h"
#include "engine/layout_engine.h"
#include "engine/shape_transfer.h"
#include "ir/function.h"
#include "layout/dims.h"
#include "triton/encodings.h"

namespace ll {
namespace engine {
namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;
using ir::DType;
using ir::Function;
using ir::OpKind;
using ir::TensorType;

LinearLayout
sampleLayout(const triton::Shape &shape)
{
    triton::BlockedEncoding enc;
    enc.sizePerThread = {2, 2};
    enc.threadsPerWarp = {4, 8};
    enc.warpsPerCta = {2, 2};
    enc.order = {1, 0};
    return enc.toLinearLayout(shape);
}

TEST(Ir, BuildAndPrint)
{
    Function f("softmax");
    int x = f.load({DType::F32, {128, 64}}, "x");
    int m = f.reduce(x, 1, "max");
    int me = f.expandDims(m, 1);
    int mb = f.broadcast(me, {128, 64});
    int centered = f.elementwise({x, mb}, DType::F32, "sub");
    f.store(centered, "out");
    f.verify();
    EXPECT_EQ(f.countOps(OpKind::Load), 1);
    EXPECT_EQ(f.countOps(OpKind::Reduce), 1);
    std::string text = f.print();
    EXPECT_NE(text.find("reduce<max> axis=1"), std::string::npos);
    EXPECT_NE(text.find("elementwise<sub>"), std::string::npos);
}

TEST(Ir, ShapeChecksFire)
{
    Function f("bad");
    int x = f.load({DType::F32, {16, 16}});
    int y = f.load({DType::F32, {16, 32}});
    EXPECT_THROW(f.elementwise({x, y}, DType::F32, "add"), UserError);
    EXPECT_THROW(f.dot(y, x, DType::F32), UserError); // 32 vs 16 inner
    EXPECT_THROW(f.reduce(x, 2), UserError);
    EXPECT_THROW(f.load({DType::F32, {3, 5}}), UserError); // not pow2
}

TEST(Ir, DotShapeInference)
{
    Function f("gemm");
    int a = f.load({DType::F16, {64, 32}});
    int b = f.load({DType::F16, {32, 128}});
    int c = f.dot(a, b, DType::F32);
    EXPECT_EQ(f.value(c).type.shape, (ir::Shape{64, 128}));
    EXPECT_EQ(f.value(c).type.dtype, DType::F32);
}

// ----------------------------------------------------------------------
// Shape transfer functions: each must be a data-movement no-op.
// ----------------------------------------------------------------------

TEST(ShapeTransfer, TransIsANoOp)
{
    LinearLayout l = sampleLayout({32, 64});
    LinearLayout t = transTransfer(l, {1, 0});
    // Element held by hardware index h at (i, j) must be held at (j, i)
    // after the transpose.
    for (uint64_t h = 0; h < 2048; h += 7) {
        auto before = l.unflattenOuts(l.applyFlat(h));
        auto after = t.unflattenOuts(t.applyFlat(h));
        // before: [dim1=j, dim0=i]; after: [dim1'=i, dim0'=j].
        EXPECT_EQ(after[0].second, before[1].second);
        EXPECT_EQ(after[1].second, before[0].second);
    }
}

TEST(ShapeTransfer, ReshapeIsANoOp)
{
    LinearLayout l = sampleLayout({32, 64});
    LinearLayout r = reshapeTransfer(l, {16, 128});
    for (uint64_t h = 0; h < 2048; h += 5) {
        auto before = l.unflattenOuts(l.applyFlat(h));
        // Row-major linear index before: i * 64 + j.
        int64_t lin = int64_t(before[1].second) * 64 + before[0].second;
        auto after = r.unflattenOuts(r.applyFlat(h));
        int64_t lin2 = int64_t(after[1].second) * 128 + after[0].second;
        EXPECT_EQ(lin, lin2);
    }
}

TEST(ShapeTransfer, ExpandDimsAddsSize1Dim)
{
    LinearLayout l = sampleLayout({32, 64});
    LinearLayout e = expandDimsTransfer(l, 1); // [32, 1, 64]
    EXPECT_EQ(e.getNumOutDims(), 3);
    EXPECT_EQ(e.getOutDimSize("dim1"), 1);
    EXPECT_EQ(e.getOutDimSize("dim0"), 32);
    EXPECT_EQ(e.getOutDimSize("dim2"), 64);
    EXPECT_TRUE(e.isSurjective());
}

TEST(ShapeTransfer, BroadcastReplicatesThroughRegisters)
{
    LinearLayout l = sampleLayout({32, 64});
    LinearLayout e = expandDimsTransfer(l, 2); // [32, 64, 1]
    LinearLayout b = broadcastTransfer(e, {32, 64, 8});
    EXPECT_EQ(b.getOutDimSize("dim2"), 8);
    EXPECT_TRUE(b.isSurjective());
    EXPECT_EQ(b.getInDimSize(kReg), l.getInDimSize(kReg) * 8);
}

TEST(ShapeTransfer, JoinSplitRoundTrip)
{
    LinearLayout l = sampleLayout({32, 64});
    LinearLayout j = joinTransfer(l);
    EXPECT_EQ(j.getNumOutDims(), 3);
    EXPECT_EQ(j.getOutDimSize("dim2"), 2);
    EXPECT_EQ(j.getInDimSize(kReg), 2 * l.getInDimSize(kReg));
    LinearLayout s = splitTransfer(j);
    EXPECT_EQ(s, engine::canonicalizeMinorToMajor(l, 2));
}

TEST(ShapeTransfer, ReduceProducesSurjectiveSlice)
{
    LinearLayout l = sampleLayout({32, 64});
    LinearLayout r = reduceTransfer(l, 1);
    EXPECT_EQ(r.getNumOutDims(), 1);
    EXPECT_EQ(r.getOutDimSize("dim0"), 32);
    EXPECT_TRUE(r.isSurjective());
    EXPECT_FALSE(r.isInjective()); // lanes hold duplicated data
}

// ----------------------------------------------------------------------
// Layout engine
// ----------------------------------------------------------------------

TEST(Engine, AnnotatesEveryValue)
{
    Function f("softmax");
    int x = f.load({DType::F32, {128, 64}}, "x");
    int m = f.reduce(x, 1, "max");
    int me = f.expandDims(m, 1);
    int mb = f.broadcast(me, {128, 64});
    int centered = f.elementwise({x, mb}, DType::F32, "sub");
    f.store(centered);

    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    eng.run(f);
    for (int v = 0; v < f.numValues(); ++v)
        EXPECT_TRUE(f.value(v).layout.has_value()) << "value " << v;
}

TEST(Engine, ChainOfShapeOpsNeedsNoConversions)
{
    // The whole point of Section 4.4: layouts propagate through shape
    // ops with zero data movement.
    Function f("shapes");
    int x = f.load({DType::F16, {64, 64}}, "x");
    int t = f.trans(x, {1, 0});
    int r = f.reshape(t, {32, 128});
    int e = f.expandDims(r, 0);
    int b = f.broadcast(e, {4, 32, 128});
    f.store(b);

    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    auto stats = eng.run(f);
    EXPECT_EQ(f.countOps(OpKind::ConvertLayout), 0);
    EXPECT_EQ(stats.convertsInserted, 0);
}

TEST(Engine, DotInsertsOperandConversions)
{
    Function f("gemm");
    int a = f.load({DType::F16, {64, 64}});
    int b = f.load({DType::F16, {64, 64}});
    int c = f.dot(a, b, DType::F32);
    f.store(c);

    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    auto stats = eng.run(f);
    EXPECT_GE(stats.convertsInserted, 2); // both operands re-laid-out
    // Operands end up in MMA-input layouts.
    const auto &dotOp = f.op(f.value(c).defOp);
    for (int v : dotOp.operands) {
        EXPECT_TRUE(triton::isDistributedLayout(*f.value(v).layout));
    }
}

TEST(Engine, RedundantConversionIsEliminated)
{
    Function f("roundtrip");
    int x = f.load({DType::F32, {64, 64}});
    // Identical elementwise ops on the same value: the second operand
    // already carries the wanted layout, so no converts appear at all.
    int y = f.elementwise({x, x}, DType::F32, "add");
    int z = f.elementwise({y, x}, DType::F32, "add");
    f.store(z);
    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    auto stats = eng.run(f);
    EXPECT_EQ(f.countOps(OpKind::ConvertLayout), 0);
    EXPECT_EQ(stats.convertsInserted, 0);
}

TEST(Engine, EquivalentLayoutsAcrossKindsFoldToNoOp)
{
    // The welford case: a conversion between layouts of different
    // construction that are in fact equal folds away.
    Function f("welford");
    int x = f.load({DType::F32, {128, 64}});
    int m = f.reduce(x, 1, "sum");
    // Re-expand and reduce again: layouts stay within the sliced family.
    int e = f.expandDims(m, 1);
    int b = f.broadcast(e, {128, 64});
    int d = f.elementwise({x, b}, DType::F32, "sub");
    int v = f.reduce(d, 1, "sum");
    f.store(v);
    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    eng.run(f);
    EXPECT_EQ(f.countOps(OpKind::ConvertLayout), 0);
}

TEST(Engine, WgmmaChosenOnHopperOnly)
{
    // The wgmma C fragment tiled across a warp group coincides with the
    // tiled mma fragment (both are linear layouts with the same bases);
    // what distinguishes version 3 is the wide instruction tile.
    TensorType acc{DType::F32, {128, 128}};
    LayoutEngine hopper({sim::GpuSpec::gh200(), 8});
    LayoutEngine ada({sim::GpuSpec::rtx4090(), 8});
    auto lh = hopper.dotResultLayout(acc, 16);
    auto la = ada.dotResultLayout(acc, 16);
    EXPECT_EQ(lh.getInDimSize(kWarp), 8);
    EXPECT_EQ(la.getInDimSize(kWarp), 8);
    EXPECT_TRUE(lh.equalsIgnoringOutSizes(la));

    triton::MmaEncoding wgmma;
    wgmma.version = 3;
    wgmma.warpsPerCta = {4, 1};
    wgmma.instrN = 64;
    triton::MmaEncoding mma;
    mma.version = 2;
    mma.warpsPerCta = {1, 1};
    EXPECT_EQ(wgmma.instructionTile().getOutDimSize("dim1"), 64);
    EXPECT_EQ(mma.instructionTile().getOutDimSize("dim1"), 8);
}

TEST(Engine, MfmaChosenOnMi250)
{
    TensorType acc{DType::F32, {128, 128}};
    LayoutEngine amd({sim::GpuSpec::mi250(), 4});
    auto l = amd.dotResultLayout(acc, 16);
    EXPECT_EQ(l.getInDimSize(kLane), 64);
}

TEST(Engine, FmaFallbackForF64)
{
    Function f("dgemm");
    int a = f.load({DType::F64, {32, 32}});
    int b = f.load({DType::F64, {32, 32}});
    int c = f.dot(a, b, DType::F64);
    f.store(c);
    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    eng.run(f);
    EXPECT_NE(f.op(f.value(c).defOp).tag.find("fma"), std::string::npos);
}

TEST(Engine, ScanIsLayoutPreserving)
{
    // The tl.cumsum case from the bug reports the paper cites: the scan
    // result carries exactly its operand's layout (no conversion), and
    // the intra-warp part lowers to Hillis-Steele shuffles.
    Function f("cumsum");
    int x = f.load({DType::F32, {4, 1024}}, "x");
    int s = f.scan(x, 1, "cumsum");
    int both = f.elementwise({s, x}, DType::F32, "add");
    f.store(both);
    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    eng.run(f);
    EXPECT_EQ(f.countOps(OpKind::ConvertLayout), 0);
    EXPECT_EQ(*f.value(s).layout, *f.value(x).layout);
    auto cost = estimateKernelCost(f, sim::GpuSpec::gh200(), 4);
    EXPECT_GT(cost.cycles, 0.0);
}

// ----------------------------------------------------------------------
// Cost model
// ----------------------------------------------------------------------

TEST(CostModel, CountsTable6StyleOps)
{
    Function f("gemm");
    int a = f.load({DType::F16, {64, 64}});
    int b = f.load({DType::F16, {64, 64}});
    int c = f.dot(a, b, DType::F32);
    f.store(c);
    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    eng.run(f);
    auto cost = estimateKernelCost(f, sim::GpuSpec::gh200(), 4);
    EXPECT_GE(cost.converts, 2);
    EXPECT_GE(cost.localLoads + cost.localStores, 2);
    EXPECT_GT(cost.cycles, 0.0);
    EXPECT_GT(cost.globalSectors, 0);
}

TEST(CostModel, CoalescedLoadsTouchFewerSectors)
{
    Function coalesced("c");
    int x = coalesced.load({DType::F32, {1, 4096}});
    coalesced.store(x);
    Function strided("s");
    int y = strided.load({DType::F32, {4096, 1}});
    strided.store(y);
    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    eng.run(coalesced);
    eng.run(strided);
    auto cc = estimateKernelCost(coalesced, sim::GpuSpec::gh200(), 4);
    auto cs = estimateKernelCost(strided, sim::GpuSpec::gh200(), 4);
    // Both tensors are contiguous in memory overall; the default
    // blocked anchor should coalesce both equally well (cross-dim
    // contiguity, Table 3). So sector counts match.
    EXPECT_EQ(cc.globalSectors, cs.globalSectors);
}

TEST(CostModel, CrossWarpReductionPaysSharedRoundTrip)
{
    Function f("reduce");
    int x = f.load({DType::F32, {1, 4096}});
    int r = f.reduce(x, 1, "sum");
    f.store(r);
    LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    eng.run(f);
    auto cost = estimateKernelCost(f, sim::GpuSpec::gh200(), 4);
    EXPECT_GE(cost.localStores, 1); // partials through shared memory
}

TEST(Engine, SmokeCacheDeduplicatesIdenticalConversions)
{
    // Two dots over the same operands: each dot wants the same
    // blocked -> MMA-input conversions, so the second op's smoke
    // executions are pure repeats of the first's. With caching on, the
    // repeats must be served from the per-run cache (and counted); with
    // caching off, the counter must stay zero. Both runs must plan
    // every conversion either way — the cache skips re-execution, never
    // planning.
    auto build = [] {
        Function f("twin_gemm");
        int a = f.load({DType::F16, {64, 64}});
        int b = f.load({DType::F16, {64, 64}});
        int c = f.dot(a, b, DType::F32);
        int d = f.dot(a, b, DType::F32);
        f.store(c);
        f.store(d);
        return f;
    };

    EngineOptions cached{sim::GpuSpec::gh200(), 4};
    ASSERT_TRUE(cached.cacheSmokeResults); // caching is the default
    Function f1 = build();
    auto statsCached = LayoutEngine(cached).run(f1);
    EXPECT_GE(statsCached.smokeCacheHits, 1);
    EXPECT_EQ(statsCached.execFailures, 0);
    // The registry-backed mirror must agree with the struct field.
    auto it = statsCached.metrics.find("engine.smoke.cache_hits");
    ASSERT_NE(it, statsCached.metrics.end());
    EXPECT_EQ(it->second, statsCached.smokeCacheHits);

    EngineOptions uncached{sim::GpuSpec::gh200(), 4};
    uncached.cacheSmokeResults = false;
    Function f2 = build();
    auto statsUncached = LayoutEngine(uncached).run(f2);
    EXPECT_EQ(statsUncached.smokeCacheHits, 0);
    EXPECT_EQ(statsUncached.metrics.count("engine.smoke.cache_hits"),
              0u);
    // Same function, same planning outcome — only the execution count
    // differs.
    EXPECT_EQ(statsUncached.convertsPlanned, statsCached.convertsPlanned);
    EXPECT_EQ(statsUncached.planFailures, statsCached.planFailures);
}

} // namespace
} // namespace engine
} // namespace ll
