/**
 * @file
 * Tests for subspace primitives: echelon bases, spans, complements,
 * completions, and the Zassenhaus intersection, cross-checked against
 * brute-force span enumeration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "f2/subspace.h"
#include "support/bits.h"

namespace ll {
namespace f2 {
namespace {

std::vector<uint64_t>
randomVectors(std::mt19937 &rng, int count, int dim)
{
    std::uniform_int_distribution<uint64_t> dist(
        0, (uint64_t(1) << dim) - 1);
    std::vector<uint64_t> out;
    for (int i = 0; i < count; ++i)
        out.push_back(dist(rng));
    return out;
}

std::set<uint64_t>
bruteSpan(const std::vector<uint64_t> &vecs)
{
    std::set<uint64_t> span = {0};
    for (uint64_t v : vecs) {
        std::set<uint64_t> next = span;
        for (uint64_t s : span)
            next.insert(s ^ v);
        span = next;
    }
    return span;
}

TEST(EchelonBasis, EmptyContainsOnlyZero)
{
    EchelonBasis ech;
    EXPECT_EQ(ech.dimension(), 0);
    EXPECT_TRUE(ech.contains(0));
    EXPECT_FALSE(ech.contains(1));
}

TEST(EchelonBasis, InsertRejectsDependentVectors)
{
    EchelonBasis ech;
    EXPECT_TRUE(ech.insert(0b101));
    EXPECT_TRUE(ech.insert(0b011));
    EXPECT_FALSE(ech.insert(0b110)); // 101 ^ 011
    EXPECT_FALSE(ech.insert(0));
    EXPECT_EQ(ech.dimension(), 2);
}

TEST(EchelonBasis, ContainsMatchesBruteForce)
{
    std::mt19937 rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        auto vecs = randomVectors(rng, 4, 8);
        EchelonBasis ech(vecs);
        auto span = bruteSpan(vecs);
        for (uint64_t v = 0; v < 256; ++v)
            EXPECT_EQ(ech.contains(v), span.count(v) > 0);
    }
}

TEST(EchelonBasis, ReduceIsIdempotentAndSpanInvariant)
{
    std::mt19937 rng(12);
    auto vecs = randomVectors(rng, 5, 10);
    EchelonBasis ech(vecs);
    for (uint64_t v = 0; v < 1024; v += 7) {
        uint64_t r = ech.reduce(v);
        EXPECT_EQ(ech.reduce(r), r);
        EXPECT_TRUE(ech.contains(v ^ r)); // v - r lies in the span
    }
}

TEST(Subspace, ReduceToBasisPreservesSpan)
{
    std::mt19937 rng(13);
    for (int trial = 0; trial < 50; ++trial) {
        auto vecs = randomVectors(rng, 6, 8);
        auto basis = reduceToBasis(vecs);
        EXPECT_EQ(bruteSpan(vecs), bruteSpan(basis));
        EXPECT_EQ(static_cast<int>(basis.size()), rankOfVectors(vecs));
    }
}

TEST(Subspace, SpanContains)
{
    EXPECT_TRUE(spanContains({0b01, 0b10}, 0b11));
    EXPECT_FALSE(spanContains({0b01}, 0b10));
    EXPECT_TRUE(spanContains({}, 0));
}

TEST(Subspace, ComplementBasisGivesDirectSum)
{
    std::mt19937 rng(14);
    for (int trial = 0; trial < 50; ++trial) {
        auto vecs = reduceToBasis(randomVectors(rng, 3, 8));
        auto comp = complementBasis(vecs, 8);
        EXPECT_EQ(vecs.size() + comp.size(), 8u);
        // Union is independent.
        auto all = vecs;
        all.insert(all.end(), comp.begin(), comp.end());
        EXPECT_EQ(rankOfVectors(all), 8);
    }
}

TEST(Subspace, CompleteBasisContainsOriginal)
{
    auto full = completeBasis({0b1100, 0b0011}, 4);
    EXPECT_EQ(full.size(), 4u);
    EXPECT_EQ(rankOfVectors(full), 4);
}

TEST(Subspace, IntersectSpansMatchesBruteForce)
{
    std::mt19937 rng(15);
    for (int trial = 0; trial < 100; ++trial) {
        auto u = randomVectors(rng, 3, 6);
        auto v = randomVectors(rng, 3, 6);
        auto inter = intersectSpans(u, v, 6);

        auto su = bruteSpan(u);
        auto sv = bruteSpan(v);
        std::set<uint64_t> expect;
        std::set_intersection(su.begin(), su.end(), sv.begin(), sv.end(),
                              std::inserter(expect, expect.begin()));
        EXPECT_EQ(bruteSpan(inter), expect)
            << "trial " << trial;
    }
}

TEST(Subspace, IntersectDisjointSpansIsTrivial)
{
    auto inter = intersectSpans({0b001}, {0b010}, 3);
    EXPECT_TRUE(inter.empty());
}

TEST(Subspace, IntersectEqualSpans)
{
    std::vector<uint64_t> u = {0b011, 0b101};
    auto inter = intersectSpans(u, u, 3);
    EXPECT_EQ(bruteSpan(inter), bruteSpan(u));
}

TEST(Subspace, EnumerateSpanIndexing)
{
    std::vector<uint64_t> basis = {0b01, 0b10};
    auto span = enumerateSpan(basis);
    ASSERT_EQ(span.size(), 4u);
    EXPECT_EQ(span[0], 0u);
    EXPECT_EQ(span[1], 0b01u);
    EXPECT_EQ(span[2], 0b10u);
    EXPECT_EQ(span[3], 0b11u);
}

/** Parameterized: Zassenhaus dimension formula dim(U)+dim(V) =
 *  dim(U+V)+dim(U^V). */
class IntersectionDims : public ::testing::TestWithParam<int>
{
};

TEST_P(IntersectionDims, DimensionFormulaHolds)
{
    std::mt19937 rng(GetParam());
    auto u = reduceToBasis(randomVectors(rng, 4, 10));
    auto v = reduceToBasis(randomVectors(rng, 4, 10));
    auto inter = intersectSpans(u, v, 10);
    auto sum = u;
    sum.insert(sum.end(), v.begin(), v.end());
    EXPECT_EQ(u.size() + v.size(),
              static_cast<size_t>(rankOfVectors(sum)) + inter.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectionDims, ::testing::Range(0, 25));

} // namespace
} // namespace f2
} // namespace ll
