/**
 * @file
 * Tests for subspace primitives: echelon bases, spans, complements,
 * completions, and the Zassenhaus intersection, cross-checked against
 * brute-force span enumeration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "f2/subspace.h"
#include "support/bits.h"

namespace ll {
namespace f2 {
namespace {

std::vector<uint64_t>
randomVectors(std::mt19937 &rng, int count, int dim)
{
    std::uniform_int_distribution<uint64_t> dist(
        0, (uint64_t(1) << dim) - 1);
    std::vector<uint64_t> out;
    for (int i = 0; i < count; ++i)
        out.push_back(dist(rng));
    return out;
}

std::set<uint64_t>
bruteSpan(const std::vector<uint64_t> &vecs)
{
    std::set<uint64_t> span = {0};
    for (uint64_t v : vecs) {
        std::set<uint64_t> next = span;
        for (uint64_t s : span)
            next.insert(s ^ v);
        span = next;
    }
    return span;
}

TEST(EchelonBasis, EmptyContainsOnlyZero)
{
    EchelonBasis ech;
    EXPECT_EQ(ech.dimension(), 0);
    EXPECT_TRUE(ech.contains(0));
    EXPECT_FALSE(ech.contains(1));
}

TEST(EchelonBasis, InsertRejectsDependentVectors)
{
    EchelonBasis ech;
    EXPECT_TRUE(ech.insert(0b101));
    EXPECT_TRUE(ech.insert(0b011));
    EXPECT_FALSE(ech.insert(0b110)); // 101 ^ 011
    EXPECT_FALSE(ech.insert(0));
    EXPECT_EQ(ech.dimension(), 2);
}

TEST(EchelonBasis, ContainsMatchesBruteForce)
{
    std::mt19937 rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        auto vecs = randomVectors(rng, 4, 8);
        EchelonBasis ech(vecs);
        auto span = bruteSpan(vecs);
        for (uint64_t v = 0; v < 256; ++v)
            EXPECT_EQ(ech.contains(v), span.count(v) > 0);
    }
}

TEST(EchelonBasis, ReduceIsIdempotentAndSpanInvariant)
{
    std::mt19937 rng(12);
    auto vecs = randomVectors(rng, 5, 10);
    EchelonBasis ech(vecs);
    for (uint64_t v = 0; v < 1024; v += 7) {
        uint64_t r = ech.reduce(v);
        EXPECT_EQ(ech.reduce(r), r);
        EXPECT_TRUE(ech.contains(v ^ r)); // v - r lies in the span
    }
}

TEST(Subspace, ReduceToBasisPreservesSpan)
{
    std::mt19937 rng(13);
    for (int trial = 0; trial < 50; ++trial) {
        auto vecs = randomVectors(rng, 6, 8);
        auto basis = reduceToBasis(vecs);
        EXPECT_EQ(bruteSpan(vecs), bruteSpan(basis));
        EXPECT_EQ(static_cast<int>(basis.size()), rankOfVectors(vecs));
    }
}

TEST(Subspace, SpanContains)
{
    EXPECT_TRUE(spanContains({0b01, 0b10}, 0b11));
    EXPECT_FALSE(spanContains({0b01}, 0b10));
    EXPECT_TRUE(spanContains({}, 0));
}

TEST(Subspace, ComplementBasisGivesDirectSum)
{
    std::mt19937 rng(14);
    for (int trial = 0; trial < 50; ++trial) {
        auto vecs = reduceToBasis(randomVectors(rng, 3, 8));
        auto comp = complementBasis(vecs, 8);
        EXPECT_EQ(vecs.size() + comp.size(), 8u);
        // Union is independent.
        auto all = vecs;
        all.insert(all.end(), comp.begin(), comp.end());
        EXPECT_EQ(rankOfVectors(all), 8);
    }
}

TEST(Subspace, CompleteBasisContainsOriginal)
{
    auto full = completeBasis({0b1100, 0b0011}, 4);
    EXPECT_EQ(full.size(), 4u);
    EXPECT_EQ(rankOfVectors(full), 4);
}

TEST(Subspace, IntersectSpansMatchesBruteForce)
{
    std::mt19937 rng(15);
    for (int trial = 0; trial < 100; ++trial) {
        auto u = randomVectors(rng, 3, 6);
        auto v = randomVectors(rng, 3, 6);
        auto inter = intersectSpans(u, v, 6);

        auto su = bruteSpan(u);
        auto sv = bruteSpan(v);
        std::set<uint64_t> expect;
        std::set_intersection(su.begin(), su.end(), sv.begin(), sv.end(),
                              std::inserter(expect, expect.begin()));
        EXPECT_EQ(bruteSpan(inter), expect)
            << "trial " << trial;
    }
}

TEST(Subspace, IntersectDisjointSpansIsTrivial)
{
    auto inter = intersectSpans({0b001}, {0b010}, 3);
    EXPECT_TRUE(inter.empty());
}

TEST(Subspace, IntersectEqualSpans)
{
    std::vector<uint64_t> u = {0b011, 0b101};
    auto inter = intersectSpans(u, u, 3);
    EXPECT_EQ(bruteSpan(inter), bruteSpan(u));
}

TEST(Subspace, EnumerateSpanIndexing)
{
    std::vector<uint64_t> basis = {0b01, 0b10};
    auto span = enumerateSpan(basis);
    ASSERT_EQ(span.size(), 4u);
    EXPECT_EQ(span[0], 0u);
    EXPECT_EQ(span[1], 0b01u);
    EXPECT_EQ(span[2], 0b10u);
    EXPECT_EQ(span[3], 0b11u);
}

/** Parameterized: Zassenhaus dimension formula dim(U)+dim(V) =
 *  dim(U+V)+dim(U^V). */
class IntersectionDims : public ::testing::TestWithParam<int>
{
};

TEST_P(IntersectionDims, DimensionFormulaHolds)
{
    std::mt19937 rng(GetParam());
    auto u = reduceToBasis(randomVectors(rng, 4, 10));
    auto v = reduceToBasis(randomVectors(rng, 4, 10));
    auto inter = intersectSpans(u, v, 10);
    auto sum = u;
    sum.insert(sum.end(), v.begin(), v.end());
    EXPECT_EQ(u.size() + v.size(),
              static_cast<size_t>(rankOfVectors(sum)) + inter.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectionDims, ::testing::Range(0, 25));

// ----------------------------------------------------------------------
// Differential suite: the pivot-table EchelonBasis and the word-parallel
// free functions against their scalar references, bit for bit.
// ----------------------------------------------------------------------

class SubspaceDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(SubspaceDifferential, EchelonBasisMatchesReferenceBitForBit)
{
    std::mt19937 rng(0x5eedu + static_cast<unsigned>(GetParam()));
    std::uniform_int_distribution<int> dimDist(1, 64);
    const int dim = dimDist(rng);
    std::uniform_int_distribution<uint64_t> vec(
        0, (dim == 64) ? ~uint64_t(0) : (uint64_t(1) << dim) - 1);
    EchelonBasis fast;
    EchelonBasisReference ref;
    for (int i = 0; i < 96; ++i) {
        const uint64_t v = vec(rng);
        EXPECT_EQ(fast.insert(v), ref.insert(v)) << "vector " << v;
        ASSERT_EQ(fast.vectors(), ref.vectors()) << "after vector " << v;
        EXPECT_EQ(fast.dimension(), ref.dimension());
        const uint64_t probe = vec(rng);
        EXPECT_EQ(fast.reduce(probe), ref.reduce(probe));
        EXPECT_EQ(fast.contains(probe), ref.contains(probe));
    }
    // Generator constructor must agree with incremental insertion.
    std::vector<uint64_t> gens;
    for (int i = 0; i < 10; ++i)
        gens.push_back(vec(rng));
    EXPECT_EQ(EchelonBasis(gens).vectors(),
              EchelonBasisReference(gens).vectors());
}

TEST_P(SubspaceDifferential, FreeFunctionsMatchReferenceBitForBit)
{
    std::mt19937 rng(0xabcdu + static_cast<unsigned>(GetParam()));
    std::uniform_int_distribution<int> dimDist(1, 32);
    const int dim = dimDist(rng);
    std::uniform_int_distribution<int> count(0, 12);
    auto u = randomVectors(rng, count(rng), dim);
    auto v = randomVectors(rng, count(rng), dim);

    EXPECT_EQ(reduceToBasis(u), reduceToBasis_reference(u));
    EXPECT_EQ(rankOfVectors(u), rankOfVectors_reference(u));
    const auto ubasis = reduceToBasis(u);
    const uint64_t probe = randomVectors(rng, 1, dim)[0];
    EXPECT_EQ(spanContains(ubasis, probe),
              spanContains_reference(ubasis, probe));
    EXPECT_EQ(complementBasis(ubasis, dim),
              complementBasis_reference(ubasis, dim));
    EXPECT_EQ(completeBasis(ubasis, dim),
              completeBasis_reference(ubasis, dim));
    EXPECT_EQ(intersectSpans(u, v, dim),
              intersectSpans_reference(u, v, dim));
    EXPECT_EQ(enumerateSpan(ubasis), enumerateSpan_reference(ubasis));
}

// 1x1 / degenerate shapes: dimension-1 spaces, empty inputs, the zero
// vector — every reference twin must agree on the edges too.
TEST(SubspaceDifferential, DegenerateShapesMatchReference)
{
    const std::vector<uint64_t> empty;
    EXPECT_EQ(reduceToBasis(empty), reduceToBasis_reference(empty));
    EXPECT_EQ(rankOfVectors(empty), rankOfVectors_reference(empty));
    EXPECT_EQ(enumerateSpan(empty), enumerateSpan_reference(empty));
    EXPECT_EQ(intersectSpans(empty, empty, 1),
              intersectSpans_reference(empty, empty, 1));
    const std::vector<uint64_t> one = {1};
    EXPECT_EQ(reduceToBasis(one), reduceToBasis_reference(one));
    EXPECT_EQ(complementBasis(one, 1), complementBasis_reference(one, 1));
    EXPECT_EQ(completeBasis(one, 1), completeBasis_reference(one, 1));
    EXPECT_EQ(intersectSpans(one, one, 1),
              intersectSpans_reference(one, one, 1));
    EXPECT_EQ(spanContains(one, 0), spanContains_reference(one, 0));
    const std::vector<uint64_t> zeros = {0, 0, 0};
    EXPECT_EQ(reduceToBasis(zeros), reduceToBasis_reference(zeros));
    EXPECT_EQ(rankOfVectors(zeros), rankOfVectors_reference(zeros));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubspaceDifferential,
                         ::testing::Range(0, 40));

} // namespace
} // namespace f2
} // namespace ll
