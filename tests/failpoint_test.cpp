/**
 * @file
 * The failpoint registry's contract: deterministic single-thread
 * semantics (shot limits, hit counting whether or not a site is active,
 * env-style activation lifecycle) and safety of the process-global,
 * mutex-guarded site map under concurrent register/hit/clear traffic —
 * the prerequisite for running executors on multiple engine threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/failpoint.h"

namespace ll {
namespace {

// Each test starts from a clean registry; these sites are test-local so
// no production guard ever evaluates them.
struct RegistryReset : ::testing::Test
{
    void SetUp() override { failpoint::clearAll(); }
    void TearDown() override { failpoint::clearAll(); }
};

using FailpointTest = RegistryReset;
using FailpointThreads = RegistryReset;

TEST_F(FailpointTest, InactiveSiteNeverFiresButCountsHits)
{
    EXPECT_EQ(failpoint::hitCount("fp.test.idle"), 0);
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(LL_FAILPOINT("fp.test.idle"));
    EXPECT_EQ(failpoint::hitCount("fp.test.idle"), 5);
}

TEST_F(FailpointTest, ShotLimitConsumesExactlyThatManyEvaluations)
{
    failpoint::activate("fp.test.shots", 2);
    EXPECT_TRUE(LL_FAILPOINT("fp.test.shots"));
    EXPECT_TRUE(LL_FAILPOINT("fp.test.shots"));
    EXPECT_FALSE(LL_FAILPOINT("fp.test.shots"));
    EXPECT_EQ(failpoint::hitCount("fp.test.shots"), 3);
    // A drained limited activation no longer lists as active.
    for (const auto &s : failpoint::activeSites())
        EXPECT_NE(s, "fp.test.shots");
}

TEST_F(FailpointTest, UnlimitedActivationFiresUntilDeactivated)
{
    failpoint::activate("fp.test.unlimited");
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(LL_FAILPOINT("fp.test.unlimited"));
    failpoint::deactivate("fp.test.unlimited");
    EXPECT_FALSE(LL_FAILPOINT("fp.test.unlimited"));
}

TEST_F(FailpointTest, ScopedSetActivatesAllAndRestoresOnExit)
{
    {
        failpoint::ScopedSet guard({"fp.test.a", "fp.test.b"});
        EXPECT_TRUE(LL_FAILPOINT("fp.test.a"));
        EXPECT_TRUE(LL_FAILPOINT("fp.test.b"));
        EXPECT_EQ(failpoint::activeSites().size(), 2u);
    }
    EXPECT_FALSE(LL_FAILPOINT("fp.test.a"));
    EXPECT_FALSE(LL_FAILPOINT("fp.test.b"));
    EXPECT_TRUE(failpoint::activeSites().empty());
}

TEST_F(FailpointTest, ClearAllForgetsActivationsAndCounters)
{
    failpoint::activate("fp.test.clear");
    (void)LL_FAILPOINT("fp.test.clear");
    failpoint::clearAll();
    EXPECT_FALSE(LL_FAILPOINT("fp.test.clear"));
    // clearAll dropped the counter; the evaluation just above is the
    // only one remembered.
    EXPECT_EQ(failpoint::hitCount("fp.test.clear"), 1);
}

// The limit-N budget is one global atomic ledger behind the registry
// mutex, not a per-thread allowance: with 8 threads evaluating a
// limit-8 site 200 times each, exactly 8 evaluations fire — no more
// (racing decrements), no fewer — and every evaluation is counted.
TEST_F(FailpointThreads, ShotLimitIsExactUnderThreadPool)
{
    constexpr int kThreads = 8;
    constexpr int kIters = 200;
    constexpr int kShots = 8;
    failpoint::activate("fp.mt.budget", kShots);
    std::atomic<int64_t> fired{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&fired] {
            for (int i = 0; i < kIters; ++i) {
                if (LL_FAILPOINT("fp.mt.budget"))
                    fired.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(fired.load(), kShots);
    EXPECT_EQ(failpoint::hitCount("fp.mt.budget"),
              kThreads * kIters);
}

TEST_F(FailpointTest, ScopedThreadLocalFiresOnlyOnOwningThread)
{
    failpoint::ScopedThreadLocal guard({"fp.tl.mine"});
    EXPECT_TRUE(LL_FAILPOINT("fp.tl.mine"));
    EXPECT_TRUE(failpoint::anyActive());
    // The overlay is invisible to the global registry and to other
    // threads.
    EXPECT_TRUE(failpoint::activeSites().empty());
    bool firedElsewhere = true;
    bool activeElsewhere = true;
    std::thread([&] {
        firedElsewhere = LL_FAILPOINT("fp.tl.mine");
        activeElsewhere = failpoint::anyActive();
    }).join();
    EXPECT_FALSE(firedElsewhere);
    EXPECT_FALSE(activeElsewhere);
}

TEST_F(FailpointTest, ScopedThreadLocalRestoresAndNesting)
{
    EXPECT_FALSE(failpoint::anyActive());
    {
        failpoint::ScopedThreadLocal outer({"fp.tl.outer"});
        {
            failpoint::ScopedThreadLocal inner({"fp.tl.inner"});
            EXPECT_TRUE(LL_FAILPOINT("fp.tl.outer"));
            EXPECT_TRUE(LL_FAILPOINT("fp.tl.inner"));
            EXPECT_EQ(failpoint::threadLocalActiveSites().size(), 2u);
        }
        EXPECT_TRUE(LL_FAILPOINT("fp.tl.outer"));
        EXPECT_FALSE(LL_FAILPOINT("fp.tl.inner"));
    }
    EXPECT_FALSE(LL_FAILPOINT("fp.tl.outer"));
    EXPECT_FALSE(failpoint::anyActive());
}

// A thread-local overlay naming a site must not consume the *global*
// activation's shot budget on the owning thread: the global ledger
// drains by exactly its limit, and the overlay keeps firing after.
TEST_F(FailpointTest, ScopedThreadLocalLeavesGlobalBudgetUntouched)
{
    failpoint::activate("fp.tl.shared", 2);
    failpoint::ScopedThreadLocal guard({"fp.tl.shared"});
    // Every evaluation fires: first two drain the global budget, the
    // rest come from the overlay.
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(LL_FAILPOINT("fp.tl.shared"));
    // Drained global activation no longer lists, overlay still fires.
    for (const auto &s : failpoint::activeSites())
        EXPECT_NE(s, "fp.tl.shared");
    EXPECT_TRUE(LL_FAILPOINT("fp.tl.shared"));
}

// Four threads hammer the registry concurrently — evaluations on a
// shared site, activations/deactivations, counter reads, listing, and
// periodic clearAll — exercising every public entry point against every
// other. The assertion is the sanitizer's (no race, no crash) plus a
// liveness check that evaluations were actually recorded.
TEST_F(FailpointThreads, FourThreadsRegisterHitClearConcurrently)
{
    constexpr int kThreads = 4;
    constexpr int kIters = 2000;
    std::atomic<int64_t> fired{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &fired] {
            const std::string shared = "fp.mt.shared";
            const std::string own =
                "fp.mt.thread" + std::to_string(t % 2);
            for (int i = 0; i < kIters; ++i) {
                failpoint::activate(own, 1);
                if (LL_FAILPOINT(own))
                    fired.fetch_add(1, std::memory_order_relaxed);
                (void)LL_FAILPOINT(shared);
                (void)failpoint::hitCount(shared);
                (void)failpoint::activeSites();
                failpoint::deactivate(own);
                if (i % 64 == t * 16)
                    failpoint::clearAll();
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // Most one-shot activations fire (another thread's clearAll can
    // swallow a few); the exact count is scheduling-dependent, but a
    // silent registry would mean the mutex serialized nothing at all.
    EXPECT_GT(fired.load(), 0);
    // The registry is still functional after the storm.
    failpoint::clearAll();
    failpoint::activate("fp.mt.after", 1);
    EXPECT_TRUE(LL_FAILPOINT("fp.mt.after"));
    EXPECT_FALSE(LL_FAILPOINT("fp.mt.after"));
}

} // namespace
} // namespace ll
