/**
 * @file
 * Unit tests for the differential oracle itself: it must bless correct
 * plans, flag injected bugs, and shrink failures to tiny reproducers.
 * The LLFuzzRegression suite pins down real bugs the fuzzer caught —
 * each test is a minimized case emitted by the shrinker, kept forever.
 */

#include <gtest/gtest.h>

#include <random>

#include "check/generators.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "codegen/conversion.h"
#include "codegen/shuffle.h"
#include "layout/dims.h"

namespace ll {
namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

/** A 2D transpose-flavored conversion that must lower through shared
 *  memory (src row-contiguous, dst column-contiguous). */
check::ConversionCase
sharedMemoryCase()
{
    triton::BlockedEncoding a;
    a.sizePerThread = {1, 4};
    a.threadsPerWarp = {4, 8};
    a.warpsPerCta = {2, 2};
    a.order = {1, 0};
    triton::BlockedEncoding b = a;
    b.sizePerThread = {4, 1};
    b.order = {0, 1};
    const triton::Shape shape = {32, 32};
    check::ConversionCase c;
    c.src = a.toLinearLayout(shape);
    c.dst = b.toLinearLayout(shape);
    c.elemBytes = 2;
    c.specName = "gh200";
    c.summary = "oracle_test shared-memory case";
    return c;
}

TEST(Oracle, BlessesACorrectSharedMemoryPlan)
{
    auto c = sharedMemoryCase();
    auto report = check::checkConversionCase(c);
    EXPECT_EQ(report.kind, codegen::ConversionKind::SharedMemory);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_TRUE(report.audited);
    EXPECT_EQ(report.mismatches, 0);
}

TEST(Oracle, CatchesAnInjectedSwizzleAliasBug)
{
    // Corrupting tensorToOffset makes two tensor elements alias one
    // shared address; the second store wins and the loads read either
    // wrong elements or kPoison. A payload-circular oracle would miss
    // this — runSharedRoundTrip must not.
    auto c = sharedMemoryCase();
    auto report =
        check::checkConversionCase(c, check::injectSwizzleAliasBug);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.mismatches, 0) << report.toString();
}

TEST(Oracle, ShrinksAnInjectedBugToAFewElements)
{
    auto c = sharedMemoryCase();
    auto checker = [](const check::ConversionCase &cc) {
        return check::checkConversionCase(cc,
                                          check::injectSwizzleAliasBug);
    };
    ASSERT_FALSE(checker(c).ok());
    auto shrunk = check::shrinkCase(c, checker);
    EXPECT_LE(check::caseElements(shrunk.minimized), 32);
    // The minimized case must still fail, and the emitted regression
    // test must carry the construction.
    auto test = check::emitRegressionTest(shrunk.minimized, "Unit");
    EXPECT_NE(test.find("TEST(LLFuzzRegression, Unit)"), std::string::npos);
    EXPECT_NE(test.find("checkConversionCase"), std::string::npos);
}

TEST(Oracle, FlagsAMisclassifiedRegisterPermute)
{
    // Hand the oracle a plan whose kind is wrong on purpose: moving
    // lane-held data into registers can never be a register permute.
    LinearLayout::BasesT srcBases;
    srcBases.insert(kReg, {});
    srcBases.insert(kLane, {{1}});
    srcBases.insert(kWarp, {});
    LinearLayout src(std::move(srcBases), {{"dim0", 2}},
                     /*requireSurjective=*/true);
    LinearLayout::BasesT dstBases;
    dstBases.insert(kReg, {{1}});
    dstBases.insert(kLane, {});
    dstBases.insert(kWarp, {});
    LinearLayout dst(std::move(dstBases), {{"dim0", 2}},
                     /*requireSurjective=*/true);
    codegen::ConversionPlan plan;
    plan.kind = codegen::ConversionKind::RegisterPermute;
    auto report =
        check::checkPlan(plan, src, dst, 4, sim::GpuSpec::rtx4090());
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.localityViolations, 0) << report.toString();
}

// --------------------------------------------------------------------
// Shrunk reproducers of real bugs llfuzz found in this codebase. Each
// failed before its fix and documents the failure mode in comments.
// --------------------------------------------------------------------

TEST(LLFuzzRegression, LaneHeldDataIsNotARegisterPermute)
{
    // Found by llfuzz --seed 1 (shrunk from blocked[128] -> blocked[128]
    // @rtx4090): conversionIsRegisterPermute read the conversion
    // matrix's columns with field boundaries from the SOURCE layout but
    // column values in the DESTINATION's flat input space, so with
    // different register counts a lane bit was mistaken for a register
    // bit and a cross-lane conversion was "planned" as a free permute.
    LinearLayout::BasesT srcBases;
    srcBases.insert(kReg, {});
    srcBases.insert(kLane, {{1}});
    srcBases.insert(kWarp, {});
    LinearLayout src(std::move(srcBases), {{"dim0", 2}},
                     /*requireSurjective=*/true);
    LinearLayout::BasesT dstBases;
    dstBases.insert(kReg, {{1}});
    dstBases.insert(kLane, {});
    dstBases.insert(kWarp, {});
    LinearLayout dst(std::move(dstBases), {{"dim0", 2}},
                     /*requireSurjective=*/true);
    EXPECT_FALSE(codegen::conversionIsRegisterPermute(src, dst));
    check::ConversionCase c;
    c.src = src;
    c.dst = dst;
    c.elemBytes = 4;
    c.specName = "rtx4090";
    auto report = check::checkConversionCase(c);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(LLFuzzRegression, ReplicatedDestinationNeedsEveryCopyChecked)
{
    // Same llfuzz run, full-size form: when the destination replicates
    // an element across threads (broadcast bases), the old src->dst
    // pseudo-inverse check confirmed only ONE replica's thread; other
    // threads needed elements they never held. The availability-coset
    // criterion checks every thread.
    triton::BlockedEncoding a;
    a.sizePerThread = {4};
    a.threadsPerWarp = {32};
    a.warpsPerCta = {4};
    a.order = {0};
    triton::BlockedEncoding b = a;
    b.sizePerThread = {1};
    b.threadsPerWarp = {32};
    b.warpsPerCta = {4};
    auto src = a.toLinearLayout({128});
    auto dst = b.toLinearLayout({128});
    check::ConversionCase c;
    c.src = src;
    c.dst = dst;
    c.elemBytes = 4;
    c.specName = "rtx4090";
    auto report = check::checkConversionCase(c);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(LLFuzzRegression, Mi250WavefrontsCountSixtyFourLaneGroups)
{
    // Found by llfuzz --seed 1 (blocked[2x2x16] -> blocked[2x2x16]
    // @mi250 b4): analyticWavefronts assumed 32-lane warps, but a
    // 64-lane wavefront times 4 bytes spans two 128-byte groups, so the
    // simulator measured exactly 2x the analytic count. The formula now
    // scales with the layout's lane count (wavefrontGroups).
    std::mt19937 rng(1);
    check::GenOptions gen;
    gen.warpSize = 64;
    const triton::Shape shape = {2, 2, 16};
    for (int i = 0; i < 8; ++i) {
        auto a = check::randomBlocked(rng, 3, gen);
        auto b = check::randomBlocked(rng, 3, gen);
        check::ConversionCase c;
        c.src = a.toLinearLayout(shape);
        c.dst = b.toLinearLayout(shape);
        c.elemBytes = 4;
        c.specName = "mi250";
        auto report = check::checkConversionCase(c);
        EXPECT_TRUE(report.ok()) << "iter " << i << ": "
                                 << report.toString();
        if (report.kind == codegen::ConversionKind::SharedMemory) {
            EXPECT_TRUE(report.audited);
        }
    }
}

} // namespace
} // namespace ll
