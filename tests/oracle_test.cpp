/**
 * @file
 * Unit tests for the differential oracle itself: it must bless correct
 * plans, flag injected bugs, and shrink failures to tiny reproducers.
 * The LLFuzzRegression suite pins down real bugs the fuzzer caught —
 * each test is a minimized case emitted by the shrinker, kept forever.
 */

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "check/case_io.h"
#include "check/generators.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "codegen/conversion.h"
#include "codegen/shuffle.h"
#include "engine/layout_engine.h"
#include "layout/dims.h"

namespace ll {
namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

/** A 2D transpose-flavored conversion that must lower through shared
 *  memory (src row-contiguous, dst column-contiguous). */
check::ConversionCase
sharedMemoryCase()
{
    triton::BlockedEncoding a;
    a.sizePerThread = {1, 4};
    a.threadsPerWarp = {4, 8};
    a.warpsPerCta = {2, 2};
    a.order = {1, 0};
    triton::BlockedEncoding b = a;
    b.sizePerThread = {4, 1};
    b.order = {0, 1};
    const triton::Shape shape = {32, 32};
    check::ConversionCase c;
    c.src = a.toLinearLayout(shape);
    c.dst = b.toLinearLayout(shape);
    c.elemBytes = 2;
    c.specName = "gh200";
    c.summary = "oracle_test shared-memory case";
    return c;
}

TEST(Oracle, BlessesACorrectSharedMemoryPlan)
{
    auto c = sharedMemoryCase();
    auto report = check::checkConversionCase(c);
    EXPECT_EQ(report.kind, codegen::ConversionKind::SharedMemory);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_TRUE(report.audited);
    EXPECT_EQ(report.mismatches, 0);
}

TEST(Oracle, CatchesAnInjectedSwizzleAliasBug)
{
    // Corrupting tensorToOffset makes two tensor elements alias one
    // shared address; the second store wins and the loads read either
    // wrong elements or kPoison. A payload-circular oracle would miss
    // this — runSharedRoundTrip must not.
    auto c = sharedMemoryCase();
    auto report =
        check::checkConversionCase(c, check::injectSwizzleAliasBug);
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.mismatches, 0) << report.toString();
}

TEST(Oracle, ShrinksAnInjectedBugToAFewElements)
{
    auto c = sharedMemoryCase();
    auto checker = [](const check::ConversionCase &cc) {
        return check::checkConversionCase(cc,
                                          check::injectSwizzleAliasBug);
    };
    ASSERT_FALSE(checker(c).ok());
    auto shrunk = check::shrinkCase(c, checker);
    EXPECT_LE(check::caseElements(shrunk.minimized), 32);
    // The minimized case must still fail, and the emitted regression
    // test must carry the construction.
    auto test = check::emitRegressionTest(shrunk.minimized, "Unit");
    EXPECT_NE(test.find("TEST(LLFuzzRegression, Unit)"), std::string::npos);
    EXPECT_NE(test.find("checkConversionCase"), std::string::npos);
}

TEST(Oracle, FlagsAMisclassifiedRegisterPermute)
{
    // Hand the oracle a plan whose kind is wrong on purpose: moving
    // lane-held data into registers can never be a register permute.
    LinearLayout::BasesT srcBases;
    srcBases.insert(kReg, {});
    srcBases.insert(kLane, {{1}});
    srcBases.insert(kWarp, {});
    LinearLayout src(std::move(srcBases), {{"dim0", 2}},
                     /*requireSurjective=*/true);
    LinearLayout::BasesT dstBases;
    dstBases.insert(kReg, {{1}});
    dstBases.insert(kLane, {});
    dstBases.insert(kWarp, {});
    LinearLayout dst(std::move(dstBases), {{"dim0", 2}},
                     /*requireSurjective=*/true);
    codegen::ConversionPlan plan;
    plan.kind = codegen::ConversionKind::RegisterPermute;
    auto report =
        check::checkPlan(plan, src, dst, 4, sim::GpuSpec::rtx4090());
    EXPECT_FALSE(report.ok());
    EXPECT_GT(report.localityViolations, 0) << report.toString();
}

// --------------------------------------------------------------------
// Input validation: invalid layout pairs are rejected with a
// structured InvalidInput diagnostic (tryPlanConversion) and a
// UserError (planConversion) — never an abort or a bogus plan.
// --------------------------------------------------------------------

/** A trivial 1-element-per-thread layout over one out dim. */
LinearLayout
tinyLayout(const std::string &outDim, int32_t size,
           const std::string &inDim = dims::kReg)
{
    LinearLayout l = LinearLayout::identity1D(size, inDim, outDim);
    for (const auto &d : {dims::kReg, dims::kLane, dims::kWarp}) {
        if (d != inDim)
            l = l * LinearLayout::identity1D(1, d, outDim);
    }
    return l;
}

TEST(PlannerValidation, RejectsMismatchedOutDimNames)
{
    auto src = tinyLayout("dim0", 2);
    auto dst = tinyLayout("dimX", 2);
    auto r = codegen::tryPlanConversion(src, dst, 4,
                                        sim::GpuSpec::gh200());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diag().code, DiagCode::InvalidInput);
    EXPECT_THROW(
        codegen::planConversion(src, dst, 4, sim::GpuSpec::gh200()),
        UserError);
}

TEST(PlannerValidation, RejectsMismatchedOutDimSizes)
{
    auto src = tinyLayout("dim0", 2);
    auto dst = tinyLayout("dim0", 4);
    auto r = codegen::tryPlanConversion(src, dst, 4,
                                        sim::GpuSpec::gh200());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diag().code, DiagCode::InvalidInput);
    EXPECT_THROW(
        codegen::planConversion(src, dst, 4, sim::GpuSpec::gh200()),
        UserError);
}

TEST(PlannerValidation, RejectsUnsupportedElementSize)
{
    auto src = tinyLayout("dim0", 2);
    auto r = codegen::tryPlanConversion(src, src, 3,
                                        sim::GpuSpec::gh200());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diag().code, DiagCode::InvalidInput);
    EXPECT_THROW(
        codegen::planConversion(src, src, 3, sim::GpuSpec::gh200()),
        UserError);
}

TEST(PlannerValidation, RejectsNonDistributedInputDims)
{
    // A shared-memory-style layout (offset -> tensor) is not a valid
    // conversion endpoint; the planner wants register/lane/warp.
    auto src = LinearLayout::identity1D(2, dims::kOffset, "dim0");
    auto dst = tinyLayout("dim0", 2);
    auto r = codegen::tryPlanConversion(src, dst, 4,
                                        sim::GpuSpec::gh200());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.diag().code, DiagCode::InvalidInput);
    EXPECT_THROW(
        codegen::planConversion(src, dst, 4, sim::GpuSpec::gh200()),
        UserError);
}

TEST(EngineValidation, AnchorRejectsDegenerateTypes)
{
    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    EXPECT_THROW(eng.anchorForMemory({ir::DType::F32, {}}), UserError);
    EXPECT_THROW(eng.anchorForMemory({ir::DType::F32, {16, 0}}),
                 UserError);
}

TEST(EngineValidation, DotResultRejectsBadAccumulators)
{
    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    EXPECT_THROW(eng.dotResultLayout({ir::DType::F32, {128}}, 16),
                 UserError);
    EXPECT_THROW(eng.dotResultLayout({ir::DType::F32, {64, 64}}, 0),
                 UserError);
}

TEST(EngineValidation, DotOperandRejectsMismatchedShapes)
{
    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    ir::TensorType acc{ir::DType::F32, {64, 64}};
    ir::TensorType a{ir::DType::F16, {64, 32}};
    EXPECT_THROW(eng.dotOperandLayout(a, acc, 2, 16), UserError);
    ir::TensorType wrongM{ir::DType::F16, {32, 32}};
    EXPECT_THROW(eng.dotOperandLayout(wrongM, acc, 0, 16), UserError);
    ir::TensorType wrongN{ir::DType::F16, {32, 32}};
    EXPECT_THROW(eng.dotOperandLayout(wrongN, acc, 1, 16), UserError);
}

// --------------------------------------------------------------------
// Fallback metadata: kind names round-trip through strings (the engine
// tags ops "convert:<kind>") and failpoint sets round-trip through the
// corpus text format (a shrunk reproducer must replay its injected
// faults).
// --------------------------------------------------------------------

TEST(PlanMetadata, ConversionKindStringsRoundTrip)
{
    const codegen::ConversionKind kinds[] = {
        codegen::ConversionKind::NoOp,
        codegen::ConversionKind::RegisterPermute,
        codegen::ConversionKind::WarpShuffle,
        codegen::ConversionKind::SharedMemory,
        codegen::ConversionKind::SharedPadded,
        codegen::ConversionKind::SharedScalar,
    };
    for (auto k : kinds) {
        auto s = codegen::toString(k);
        EXPECT_FALSE(s.empty());
        auto parsed = codegen::parseConversionKind(s);
        ASSERT_TRUE(parsed.has_value()) << s;
        EXPECT_EQ(*parsed, k) << s;
    }
    EXPECT_FALSE(codegen::parseConversionKind("unplanned").has_value());
    EXPECT_FALSE(codegen::parseConversionKind("").has_value());
}

TEST(PlanMetadata, CaseIoPreservesFailpoints)
{
    auto c = sharedMemoryCase();
    c.failpoints = {"plan.optimal-swizzle", "plan.legacy-swizzle"};
    std::stringstream ss;
    check::writeCase(ss, c);
    auto back = check::readCase(ss);
    EXPECT_EQ(back.failpoints, c.failpoints);
    EXPECT_EQ(back.elemBytes, c.elemBytes);
    EXPECT_EQ(back.src, c.src);
    EXPECT_EQ(back.dst, c.dst);
    // And the round-tripped case actually plans under those faults.
    auto report = check::checkConversionCase(back);
    EXPECT_EQ(report.kind, codegen::ConversionKind::SharedPadded);
    EXPECT_TRUE(report.ok()) << report.toString();
}

// --------------------------------------------------------------------
// Shrunk reproducers of real bugs llfuzz found in this codebase. Each
// failed before its fix and documents the failure mode in comments.
// --------------------------------------------------------------------

TEST(LLFuzzRegression, LaneHeldDataIsNotARegisterPermute)
{
    // Found by llfuzz --seed 1 (shrunk from blocked[128] -> blocked[128]
    // @rtx4090): conversionIsRegisterPermute read the conversion
    // matrix's columns with field boundaries from the SOURCE layout but
    // column values in the DESTINATION's flat input space, so with
    // different register counts a lane bit was mistaken for a register
    // bit and a cross-lane conversion was "planned" as a free permute.
    LinearLayout::BasesT srcBases;
    srcBases.insert(kReg, {});
    srcBases.insert(kLane, {{1}});
    srcBases.insert(kWarp, {});
    LinearLayout src(std::move(srcBases), {{"dim0", 2}},
                     /*requireSurjective=*/true);
    LinearLayout::BasesT dstBases;
    dstBases.insert(kReg, {{1}});
    dstBases.insert(kLane, {});
    dstBases.insert(kWarp, {});
    LinearLayout dst(std::move(dstBases), {{"dim0", 2}},
                     /*requireSurjective=*/true);
    EXPECT_FALSE(codegen::conversionIsRegisterPermute(src, dst));
    check::ConversionCase c;
    c.src = src;
    c.dst = dst;
    c.elemBytes = 4;
    c.specName = "rtx4090";
    auto report = check::checkConversionCase(c);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(LLFuzzRegression, ReplicatedDestinationNeedsEveryCopyChecked)
{
    // Same llfuzz run, full-size form: when the destination replicates
    // an element across threads (broadcast bases), the old src->dst
    // pseudo-inverse check confirmed only ONE replica's thread; other
    // threads needed elements they never held. The availability-coset
    // criterion checks every thread.
    triton::BlockedEncoding a;
    a.sizePerThread = {4};
    a.threadsPerWarp = {32};
    a.warpsPerCta = {4};
    a.order = {0};
    triton::BlockedEncoding b = a;
    b.sizePerThread = {1};
    b.threadsPerWarp = {32};
    b.warpsPerCta = {4};
    auto src = a.toLinearLayout({128});
    auto dst = b.toLinearLayout({128});
    check::ConversionCase c;
    c.src = src;
    c.dst = dst;
    c.elemBytes = 4;
    c.specName = "rtx4090";
    auto report = check::checkConversionCase(c);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(LLFuzzRegression, Mi250WavefrontsCountSixtyFourLaneGroups)
{
    // Found by llfuzz --seed 1 (blocked[2x2x16] -> blocked[2x2x16]
    // @mi250 b4): analyticWavefronts assumed 32-lane warps, but a
    // 64-lane wavefront times 4 bytes spans two 128-byte groups, so the
    // simulator measured exactly 2x the analytic count. The formula now
    // scales with the layout's lane count (wavefrontGroups).
    std::mt19937 rng(1);
    check::GenOptions gen;
    gen.warpSize = 64;
    const triton::Shape shape = {2, 2, 16};
    for (int i = 0; i < 8; ++i) {
        auto a = check::randomBlocked(rng, 3, gen);
        auto b = check::randomBlocked(rng, 3, gen);
        check::ConversionCase c;
        c.src = a.toLinearLayout(shape);
        c.dst = b.toLinearLayout(shape);
        c.elemBytes = 4;
        c.specName = "mi250";
        auto report = check::checkConversionCase(c);
        EXPECT_TRUE(report.ok()) << "iter " << i << ": "
                                 << report.toString();
        if (report.kind == codegen::ConversionKind::SharedMemory) {
            EXPECT_TRUE(report.audited);
        }
    }
}

} // namespace
} // namespace ll
