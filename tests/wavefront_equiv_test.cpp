/**
 * @file
 * Differential equivalence of the word-parallel wavefront enumeration
 * against the scalar reference paths, over the whole check corpus and
 * every forced fallback rung.
 *
 * Three contracts:
 *  - enumerateWavefronts (table-driven, composed-column fast path) and
 *    enumerateWavefronts_reference (per-access layout walk) agree
 *    count-for-count on every shared plan the corpus produces,
 *    including windowed plans where kInactiveLane masking is live.
 *  - sim::SharedMemory::countWavefronts and its node-based reference
 *    agree on random address patterns with idle lanes.
 *  - describePlan output (which embeds FNV digests of every shuffle
 *    transfer and shared basis) is bit-identical between a plan built
 *    on the fast paths and a fresh plan built entirely on the scalar
 *    reference paths (refmode::Scoped), on every corpus case under
 *    every demotion knockout set.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "check/case_io.h"
#include "codegen/conversion.h"
#include "codegen/swizzle.h"
#include "sim/memory_sim.h"
#include "support/failpoint.h"
#include "support/refmode.h"
#include "triton/encodings.h"

namespace ll {
namespace {

using check::ConversionCase;
using codegen::ConversionKind;

struct CorpusEntry
{
    std::string file;
    ConversionCase c;
};

const std::vector<CorpusEntry> &
corpus()
{
    static const std::vector<CorpusEntry> entries = [] {
        std::vector<std::string> paths;
        for (const auto &e :
             std::filesystem::directory_iterator(LL_CORPUS_DIR)) {
            if (e.path().extension() == ".txt")
                paths.push_back(e.path().string());
        }
        std::sort(paths.begin(), paths.end());
        std::vector<CorpusEntry> out;
        for (const auto &p : paths) {
            out.push_back({std::filesystem::path(p).filename().string(),
                           check::readCaseFile(p)});
        }
        return out;
    }();
    return entries;
}

/** The knockout sets that force each fallback rung, natural plan first. */
const std::vector<std::pair<std::string, std::vector<std::string>>> &
rungKnockouts()
{
    static const std::vector<std::pair<std::string, std::vector<std::string>>>
        sets = {
            {"natural", {}},
            {"below-noop", codegen::demotionSitesFor(ConversionKind::NoOp)},
            {"below-register-permute",
             codegen::demotionSitesFor(ConversionKind::RegisterPermute)},
            {"below-warp-shuffle",
             codegen::demotionSitesFor(ConversionKind::WarpShuffle)},
            {"below-shared-memory",
             codegen::demotionSitesFor(ConversionKind::SharedMemory)},
            {"below-shared-padded",
             codegen::demotionSitesFor(ConversionKind::SharedPadded)},
        };
    return sets;
}

// The table-driven enumeration must agree count-for-count with the
// per-access reference walk on every shared plan the corpus produces,
// at every forced rung (swizzled, padded, and scalar shared layouts all
// occur across the knockout sets).
TEST(WavefrontEquiv, EnumerateMatchesReferenceOnCorpusPlans)
{
    int sharedPlans = 0;
    for (const auto &[label, sites] : rungKnockouts()) {
        for (const auto &e : corpus()) {
            failpoint::ScopedSet guard(sites);
            auto plan = codegen::tryPlanConversion(
                e.c.src, e.c.dst, e.c.elemBytes, e.c.spec());
            ASSERT_TRUE(plan.ok())
                << e.file << " under " << label << ": "
                << plan.diag().toString();
            if (!plan->shared.has_value())
                continue;
            ++sharedPlans;
            const auto &swz = *plan->shared;
            const auto spec = e.c.spec();
            EXPECT_EQ(codegen::enumerateWavefronts(swz, e.c.src,
                                                   e.c.elemBytes, spec),
                      codegen::enumerateWavefronts_reference(
                          swz, e.c.src, e.c.elemBytes, spec))
                << e.file << " under " << label << " (src)";
            EXPECT_EQ(codegen::enumerateWavefronts(swz, e.c.dst,
                                                   e.c.elemBytes, spec),
                      codegen::enumerateWavefronts_reference(
                          swz, e.c.dst, e.c.elemBytes, spec))
                << e.file << " under " << label << " (dst)";
        }
    }
    EXPECT_GT(sharedPlans, 0) << "no corpus case reached a shared rung";
}

// Windowed plans partition the offset space into shared-memory-sized
// windows; lanes outside the current window are kInactiveLane. An
// oversized tensor (256 KiB > GH200's 228 KiB CTA budget) forces a
// windowed scalar plan, so the masking path is live in both
// enumerations.
TEST(WavefrontEquiv, WindowedPlanMatchesReference)
{
    auto spec = sim::GpuSpec::gh200();
    triton::BlockedEncoding srcEnc;
    srcEnc.sizePerThread = {1, 4};
    srcEnc.threadsPerWarp = {8, 4};
    srcEnc.warpsPerCta = {2, 2};
    srcEnc.order = {1, 0};
    triton::BlockedEncoding dstEnc;
    dstEnc.sizePerThread = {4, 1};
    dstEnc.threadsPerWarp = {4, 8};
    dstEnc.warpsPerCta = {2, 2};
    dstEnc.order = {0, 1};
    const triton::Shape shape = {256, 256};
    LinearLayout src = srcEnc.toLinearLayout(shape);
    LinearLayout dst = dstEnc.toLinearLayout(shape);
    const int elemBytes = 4;

    auto plan = codegen::tryPlanConversion(src, dst, elemBytes, spec);
    ASSERT_TRUE(plan.ok()) << plan.diag().toString();
    ASSERT_TRUE(plan->shared.has_value());
    ASSERT_TRUE(plan->shared->windowed())
        << "fixture no longer forces a windowed plan";
    EXPECT_EQ(codegen::enumerateWavefronts(*plan->shared, src, elemBytes,
                                           spec),
              codegen::enumerateWavefronts_reference(*plan->shared, src,
                                                     elemBytes, spec));
    EXPECT_EQ(codegen::enumerateWavefronts(*plan->shared, dst, elemBytes,
                                           spec),
              codegen::enumerateWavefronts_reference(*plan->shared, dst,
                                                     elemBytes, spec));
}

// The sort-based per-access counter against the node-based reference,
// over random address patterns with idle lanes mixed in.
TEST(WavefrontEquiv, CountWavefrontsMatchesReferenceOnRandomAccesses)
{
    auto spec = sim::GpuSpec::gh200();
    std::mt19937 rng(0x3a7eu);
    for (int trial = 0; trial < 200; ++trial) {
        std::uniform_int_distribution<int> lanes(1, 32);
        std::uniform_int_distribution<int64_t> addr(0, 4096);
        std::uniform_int_distribution<int> idle(0, 3);
        std::vector<int64_t> byteAddrs;
        const int n = lanes(rng);
        for (int l = 0; l < n; ++l) {
            byteAddrs.push_back(idle(rng) == 0 ? sim::kInactiveLane
                                               : addr(rng) * 4);
        }
        for (int accessBytes : {4, 8, 16}) {
            EXPECT_EQ(sim::SharedMemory::countWavefronts(spec, byteAddrs,
                                                         accessBytes),
                      sim::SharedMemory::countWavefronts_reference(
                          spec, byteAddrs, accessBytes))
                << "trial " << trial << " accessBytes " << accessBytes;
        }
    }
}

// Full planning equivalence: on every corpus case, under every
// demotion knockout, a plan built on the word-parallel paths and a
// fresh plan built entirely on the scalar reference paths must render
// identical describePlan strings — same kind, same parameters, same
// FNV digests of every shuffle transfer and shared basis.
TEST(WavefrontEquiv, DescribePlanChecksumsMatchScalarPlanning)
{
    for (const auto &[label, sites] : rungKnockouts()) {
        for (const auto &e : corpus()) {
            std::string fast, scalar;
            {
                failpoint::ScopedSet guard(sites);
                auto plan = codegen::tryPlanConversion(
                    e.c.src, e.c.dst, e.c.elemBytes, e.c.spec());
                ASSERT_TRUE(plan.ok())
                    << e.file << " under " << label << ": "
                    << plan.diag().toString();
                fast = codegen::describePlan(*plan);
            }
            {
                refmode::Scoped ref;
                failpoint::ScopedSet guard(sites);
                auto plan = codegen::tryPlanConversion(
                    e.c.src, e.c.dst, e.c.elemBytes, e.c.spec());
                ASSERT_TRUE(plan.ok())
                    << e.file << " under " << label << " (reference): "
                    << plan.diag().toString();
                scalar = codegen::describePlan(*plan);
            }
            EXPECT_EQ(fast, scalar) << e.file << " under " << label;
        }
    }
}

} // namespace
} // namespace ll
