/**
 * @file
 * Tests for the LinearLayout core: constructions, the worked example from
 * Section 4.1 / Table 1 of the paper, algebra (compose, product, inverse,
 * left division), shape transforms, and property sweeps over random
 * layouts.
 */

#include <gtest/gtest.h>

#include <random>

#include "layout/dims.h"
#include "layout/linear_layout.h"

namespace ll {
namespace {

using DimSize = LinearLayout::DimSize;

/** Layout A from Figure 1(a) / Section 4.1: a 16x16 tensor tiled by
 *  2x2 registers, 4x8 threads, 2x1 warps. Out dims: (j fastest, i). */
LinearLayout
paperLayoutA()
{
    LinearLayout::BasesT bases;
    bases.insert(dims::kReg, {{1, 0}, {0, 1}});
    bases.insert(dims::kLane, {{2, 0}, {4, 0}, {8, 0}, {0, 2}, {0, 4}});
    bases.insert(dims::kWarp, {{0, 8}});
    return LinearLayout(std::move(bases), {{"j", 16}, {"i", 16}});
}

LinearLayout
randomInvertibleLayout(std::mt19937 &rng, int dim)
{
    // Random permutation-with-mixing matrix, converted to a layout.
    while (true) {
        f2::F2Matrix m(dim, dim);
        std::uniform_int_distribution<uint64_t> dist(
            0, (uint64_t(1) << dim) - 1);
        for (int j = 0; j < dim; ++j)
            m.setCol(j, dist(rng));
        if (!m.isInvertible())
            continue;
        return LinearLayout::fromF2Matrix(
            m, {{"in", 1 << dim}}, {{"out", 1 << dim}}, true);
    }
}

TEST(LinearLayout, EmptyLayout)
{
    LinearLayout l;
    EXPECT_EQ(l.getNumInDims(), 0);
    EXPECT_EQ(l.getNumOutDims(), 0);
    EXPECT_TRUE(l.isSurjective());
    EXPECT_EQ(l.getTotalInDimSize(), 1);
    EXPECT_EQ(l.getTotalOutDimSize(), 1);
}

TEST(LinearLayout, Identity1D)
{
    auto l = LinearLayout::identity1D(8, dims::kReg, "dim0");
    EXPECT_EQ(l.getInDimSize(dims::kReg), 8);
    EXPECT_EQ(l.getOutDimSize("dim0"), 8);
    EXPECT_TRUE(l.isSurjective());
    EXPECT_TRUE(l.isInvertible());
    for (int32_t x = 0; x < 8; ++x) {
        auto out = l.apply({{dims::kReg, x}});
        EXPECT_EQ(out[0].second, x);
    }
}

TEST(LinearLayout, Zeros1DBroadcasts)
{
    auto l = LinearLayout::zeros1D(4, dims::kLane, "dim0");
    EXPECT_EQ(l.getInDimSize(dims::kLane), 4);
    EXPECT_FALSE(l.isInjective());
    for (int32_t x = 0; x < 4; ++x)
        EXPECT_EQ(l.apply({{dims::kLane, x}})[0].second, 0);
}

TEST(LinearLayout, PaperTable1Locations)
{
    auto a = paperLayoutA();
    // Table 1 rows: (location) <- (register, thread, warp).
    struct Row
    {
        int32_t i, j, reg, thr, wrp;
    };
    const Row rows[] = {
        {0, 0, 0, 0, 0}, {0, 1, 1, 0, 0}, {0, 2, 0, 1, 0},
        {0, 3, 1, 1, 0}, {1, 0, 2, 0, 0}, {1, 1, 3, 0, 0},
        {2, 2, 0, 9, 0}, {2, 3, 1, 9, 0}, {3, 2, 2, 9, 0},
        {3, 3, 3, 9, 0},
    };
    for (const Row &r : rows) {
        auto out = a.apply({{dims::kReg, r.reg},
                            {dims::kLane, r.thr},
                            {dims::kWarp, r.wrp}});
        EXPECT_EQ(out[0].second, r.j) << "reg=" << r.reg << " thr=" << r.thr;
        EXPECT_EQ(out[1].second, r.i) << "reg=" << r.reg << " thr=" << r.thr;
    }
}

TEST(LinearLayout, PaperLayoutAIsBijective)
{
    auto a = paperLayoutA();
    EXPECT_TRUE(a.isSurjective());
    EXPECT_TRUE(a.isInjective());
    EXPECT_TRUE(a.isInvertible());
    EXPECT_EQ(a.getTotalInDimSize(), 256);
    EXPECT_EQ(a.getTotalOutDimSize(), 256);
}

TEST(LinearLayout, ApplyFlatMatchesApply)
{
    auto a = paperLayoutA();
    for (uint64_t v = 0; v < 256; ++v) {
        auto outFlat = a.applyFlat(v);
        int32_t reg = static_cast<int32_t>(v & 3);
        int32_t thr = static_cast<int32_t>((v >> 2) & 31);
        int32_t wrp = static_cast<int32_t>(v >> 7);
        auto out = a.apply({{dims::kReg, reg},
                            {dims::kLane, thr},
                            {dims::kWarp, wrp}});
        uint64_t expect = static_cast<uint64_t>(out[0].second) |
                          (static_cast<uint64_t>(out[1].second) << 4);
        EXPECT_EQ(outFlat, expect);
    }
}

TEST(LinearLayout, ProductConcatenatesSharedDims)
{
    auto r = LinearLayout::identity1D(4, dims::kReg, "dim0");
    auto t = LinearLayout::identity1D(8, dims::kLane, "dim0");
    auto l = r * t;
    EXPECT_EQ(l.getOutDimSize("dim0"), 32);
    // register moves within the low 2 bits, lane over the high 3.
    for (int32_t reg = 0; reg < 4; ++reg) {
        for (int32_t lane = 0; lane < 8; ++lane) {
            auto out = l.apply({{dims::kReg, reg}, {dims::kLane, lane}});
            EXPECT_EQ(out[0].second, reg | (lane << 2));
        }
    }
}

TEST(LinearLayout, ProductOfDisjointDims)
{
    auto a = LinearLayout::identity1D(4, dims::kReg, "dim0");
    auto b = LinearLayout::identity1D(8, dims::kLane, "dim1");
    auto l = a * b;
    EXPECT_EQ(l.getOutDimSize("dim0"), 4);
    EXPECT_EQ(l.getOutDimSize("dim1"), 8);
    auto out = l.apply({{dims::kReg, 3}, {dims::kLane, 5}});
    EXPECT_EQ(out[0].second, 3);
    EXPECT_EQ(out[1].second, 5);
}

TEST(LinearLayout, ProductIsAssociativeOnExamples)
{
    auto a = LinearLayout::identity1D(2, dims::kReg, "dim0");
    auto b = LinearLayout::identity1D(4, dims::kLane, "dim0");
    auto c = LinearLayout::identity1D(2, dims::kWarp, "dim0");
    EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(LinearLayout, ComposeMatchesFunctionComposition)
{
    std::mt19937 rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        auto f = randomInvertibleLayout(rng, 5);
        auto gRaw = randomInvertibleLayout(rng, 5);
        // g must consume f's out dim name.
        auto g = gRaw.renameInDim("in", "out").renameOutDim("out", "final");
        auto fg = f.compose(g);
        for (int32_t x = 0; x < 32; ++x) {
            auto mid = f.apply({{"in", x}});
            auto expect = g.apply({{"out", mid[0].second}});
            auto got = fg.apply({{"in", x}});
            EXPECT_EQ(got[0].second, expect[0].second);
        }
    }
}

TEST(LinearLayout, InvertRoundTrips)
{
    std::mt19937 rng(22);
    for (int trial = 0; trial < 30; ++trial) {
        auto l = randomInvertibleLayout(rng, 6);
        auto inv = l.invert();
        for (int32_t x = 0; x < 64; ++x) {
            auto y = l.apply({{"in", x}});
            auto back = inv.apply({{"out", y[0].second}});
            EXPECT_EQ(back[0].second, x);
        }
    }
}

TEST(LinearLayout, InvertPaperLayoutA)
{
    auto a = paperLayoutA();
    auto inv = a.invert();
    EXPECT_EQ(inv.getInDimNames(), (std::vector<std::string>{"j", "i"}));
    for (uint64_t v = 0; v < 256; ++v)
        EXPECT_EQ(inv.applyFlat(a.applyFlat(v)), v);
}

TEST(LinearLayout, PseudoinvertIsRightInverse)
{
    // A surjective, non-injective layout: 2 warps broadcast.
    auto l = LinearLayout::identity1D(8, dims::kReg, "dim0") *
             LinearLayout::zeros1D(2, dims::kWarp, "dim0");
    ASSERT_TRUE(l.isSurjective());
    ASSERT_FALSE(l.isInjective());
    auto pinv = l.pseudoinvert();
    for (int32_t y = 0; y < 8; ++y) {
        auto x = pinv.apply({{"dim0", y}});
        // Apply l to the recovered (reg, warp) coordinates.
        int32_t reg = 0, wrp = 0;
        for (auto &[d, v] : x) {
            if (d == dims::kReg)
                reg = v;
            else
                wrp = v;
        }
        auto back = l.apply({{dims::kReg, reg}, {dims::kWarp, wrp}});
        EXPECT_EQ(back[0].second, y);
        // Broadcast promotion: warp component should resolve to zero.
        EXPECT_EQ(wrp, 0);
    }
}

TEST(LinearLayout, InvertAndComposeIdentityWhenEqual)
{
    auto a = paperLayoutA();
    auto conv = a.invertAndCompose(a);
    // Converting a layout to itself must be the identity on every dim.
    for (uint64_t v = 0; v < 256; ++v)
        EXPECT_EQ(conv.applyFlat(v), v);
}

TEST(LinearLayout, InvertAndComposeMovesElements)
{
    // A: register-major rows; B: the transposed assignment.
    auto a = LinearLayout::identity1D(4, dims::kReg, "dim0") *
             LinearLayout::identity1D(8, dims::kLane, "dim1");
    auto b = LinearLayout::identity1D(4, dims::kReg, "dim1")
                 .renameOutDim("dim1", "dim1") *
             LinearLayout::identity1D(8, dims::kLane, "dim0");
    // Align output spaces: a has [dim0(4), dim1(8)], b has [dim1(4)...]
    // Build b directly over matching out sizes instead.
    LinearLayout::BasesT bb;
    bb.insert(dims::kReg, {{0, 1}, {0, 2}});
    bb.insert(dims::kLane, {{1, 0}, {2, 0}, {0, 4}});
    LinearLayout b2(std::move(bb), {{"dim0", 4}, {"dim1", 8}});
    auto conv = a.invertAndCompose(b2);
    // conv maps (reg, lane) of A to (reg, lane) of B such that both point
    // to the same logical element.
    for (int32_t reg = 0; reg < 4; ++reg) {
        for (int32_t lane = 0; lane < 8; ++lane) {
            auto elem = a.apply({{dims::kReg, reg}, {dims::kLane, lane}});
            auto dst = conv.apply({{dims::kReg, reg}, {dims::kLane, lane}});
            int32_t dreg = dst[0].second, dlane = dst[1].second;
            auto elem2 =
                b2.apply({{dims::kReg, dreg}, {dims::kLane, dlane}});
            EXPECT_EQ(elem, elem2);
        }
    }
}

TEST(LinearLayout, DivideLeftRecoversQuotient)
{
    auto tile = LinearLayout::identity1D(4, dims::kReg, "dim0");
    auto rest = LinearLayout::identity1D(8, dims::kLane, "dim0") *
                LinearLayout::identity1D(2, dims::kWarp, "dim1");
    auto whole = tile * rest;
    auto q = whole.divideLeft(tile);
    ASSERT_TRUE(q.has_value());
    // Quotient must reproduce the whole under the product.
    auto again = tile * *q;
    EXPECT_EQ(again.transposeIns(whole.getInDimNames()), whole);
}

TEST(LinearLayout, DivideLeftFailsWhenNotAFactor)
{
    // Layout where register bit 0 maps to dim0 bit 1: dividing by the
    // identity tile (register bit 0 -> dim0 bit 0) must fail.
    LinearLayout::BasesT bases;
    bases.insert(dims::kReg, {{2}, {1}});
    LinearLayout l(std::move(bases), {{"dim0", 4}});
    auto tile = LinearLayout::identity1D(2, dims::kReg, "dim0");
    EXPECT_FALSE(l.divideLeft(tile).has_value());
}

TEST(LinearLayout, DivideLeftByWholeLayoutGivesEmptyQuotient)
{
    auto l = LinearLayout::identity1D(8, dims::kReg, "dim0");
    auto q = l.divideLeft(l);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->getTotalInDimSize(), 1);
    EXPECT_EQ(q->getTotalOutDimSize(), 1);
}

TEST(LinearLayout, SublayoutSelectsBlocks)
{
    auto a = paperLayoutA();
    auto sub = a.sublayout({dims::kReg}, {"j"});
    EXPECT_EQ(sub.getNumInDims(), 1);
    EXPECT_EQ(sub.getNumOutDims(), 1);
    EXPECT_EQ(sub.getBasis(dims::kReg, 0, "j"), 1);
    EXPECT_EQ(sub.getBasis(dims::kReg, 1, "j"), 0);

    EXPECT_FALSE(a.sublayoutIsZero({dims::kReg}, {"j"}));
    EXPECT_TRUE(a.sublayoutIsZero({dims::kWarp}, {"j"}));
}

TEST(LinearLayout, TransposeOutsReordersCoordinates)
{
    auto a = paperLayoutA();
    auto t = a.transposeOuts({"i", "j"});
    EXPECT_EQ(t.getOutDimNames(), (std::vector<std::string>{"i", "j"}));
    auto out = t.apply({{dims::kReg, 1}, {dims::kLane, 9}, {dims::kWarp, 0}});
    EXPECT_EQ(out[0].second, 2); // i
    EXPECT_EQ(out[1].second, 3); // j
}

TEST(LinearLayout, TransposeInsPreservesSemantics)
{
    auto a = paperLayoutA();
    auto t = a.transposeIns({dims::kWarp, dims::kReg, dims::kLane});
    auto o1 = a.apply({{dims::kReg, 3}, {dims::kLane, 17}, {dims::kWarp, 1}});
    auto o2 = t.apply({{dims::kWarp, 1}, {dims::kReg, 3}, {dims::kLane, 17}});
    EXPECT_EQ(o1, o2);
}

TEST(LinearLayout, ReshapeInsRegroupsBits)
{
    auto a = paperLayoutA();
    auto flat = a.flattenIns("hw");
    EXPECT_EQ(flat.getInDimSize("hw"), 256);
    for (uint64_t v = 0; v < 256; ++v)
        EXPECT_EQ(flat.applyFlat(v), a.applyFlat(v));

    auto back = flat.reshapeIns(
        {{dims::kReg, 4}, {dims::kLane, 32}, {dims::kWarp, 2}});
    EXPECT_EQ(back, a);
}

TEST(LinearLayout, ReshapeOutsRegroupsBits)
{
    auto a = paperLayoutA();
    auto flat = a.flattenOutsToDim("linear");
    EXPECT_EQ(flat.getOutDimSize("linear"), 256);
    for (uint64_t v = 0; v < 256; ++v)
        EXPECT_EQ(flat.applyFlat(v), a.applyFlat(v));

    auto back = flat.reshapeOuts({{"j", 16}, {"i", 16}});
    EXPECT_EQ(back, a);
}

TEST(LinearLayout, FreeVariableMasksDetectBroadcast)
{
    auto l = LinearLayout::identity1D(8, dims::kReg, "dim0") *
             LinearLayout::zeros1D(4, dims::kLane, "dim0");
    auto masks = l.getFreeVariableMasks();
    EXPECT_EQ(masks.at(dims::kReg), 0);
    EXPECT_EQ(masks.at(dims::kLane), 0b11);
}

TEST(LinearLayout, FreeVariableMasksDetectDependentColumns)
{
    // Two lane bits map to the same output bit: the second is free.
    LinearLayout::BasesT bases;
    bases.insert(dims::kLane, {{1}, {1}});
    LinearLayout l(std::move(bases), {{"dim0", 2}},
                   /*requireSurjective=*/false);
    auto masks = l.getFreeVariableMasks();
    EXPECT_EQ(masks.at(dims::kLane), 0b10);
}

TEST(LinearLayout, NumConsecutiveInOutIdentity)
{
    auto l = LinearLayout::identity1D(16, dims::kReg, "dim0") *
             LinearLayout::identity1D(4, dims::kLane, "dim0");
    EXPECT_EQ(l.getNumConsecutiveInOut(), 16);
}

TEST(LinearLayout, NumConsecutiveInOutInterleaved)
{
    // lane occupies bit 0; registers start at bit 1: no vectorization.
    auto l = LinearLayout::identity1D(2, dims::kLane, "dim0") *
             LinearLayout::identity1D(8, dims::kReg, "dim0");
    auto reordered = l.transposeIns({dims::kReg, dims::kLane});
    EXPECT_EQ(reordered.getNumConsecutiveInOut(), 1);
}

TEST(LinearLayout, NumConsecutiveSpansDims)
{
    // The Table 3 scenario: a [512, 2] tensor where the register dim
    // covers the 2-wide fastest dim and continues into the slower dim.
    // With dim1 (size 2) fastest and 4 registers mapping (dim1, low dim0):
    LinearLayout::BasesT bases;
    bases.insert(dims::kReg, {{1, 0}, {0, 1}});
    bases.insert(dims::kLane, {{0, 2}});
    LinearLayout l(std::move(bases), {{"dim1", 2}, {"dim0", 4}});
    EXPECT_EQ(l.getNumConsecutiveInOut(), 4);
}

TEST(LinearLayout, EqualityIsStructural)
{
    auto a = paperLayoutA();
    auto b = paperLayoutA();
    EXPECT_EQ(a, b);
    auto c = a.transposeOuts({"i", "j"});
    EXPECT_NE(a, c);
}

TEST(LinearLayout, RenameDims)
{
    auto l = LinearLayout::identity1D(4, dims::kReg, "dim0");
    auto r = l.renameInDim(dims::kReg, "tmp").renameOutDim("dim0", "x");
    EXPECT_TRUE(r.hasInDim("tmp"));
    EXPECT_TRUE(r.hasOutDim("x"));
    EXPECT_FALSE(r.hasInDim(dims::kReg));
}

TEST(LinearLayout, RemoveZeroBases)
{
    auto l = LinearLayout::identity1D(4, dims::kReg, "dim0") *
             LinearLayout::zeros1D(4, dims::kReg, "dim0");
    EXPECT_EQ(l.getInDimSize(dims::kReg), 16);
    auto r = l.removeZeroBasesAlongDim(dims::kReg);
    EXPECT_EQ(r.getInDimSize(dims::kReg), 4);
    EXPECT_TRUE(r.isInjective());
}

TEST(LinearLayout, ConstructionRejectsBadCoordinates)
{
    LinearLayout::BasesT bases;
    bases.insert(dims::kReg, {{5}});
    EXPECT_THROW(LinearLayout(std::move(bases), {{"dim0", 4}}), UserError);
}

TEST(LinearLayout, ConstructionRejectsNonSurjectiveWhenRequired)
{
    LinearLayout::BasesT bases;
    bases.insert(dims::kReg, {{0}});
    EXPECT_THROW(
        LinearLayout(std::move(bases), {{"dim0", 2}}, true), UserError);
}

TEST(LinearLayout, InferredOutDimSizes)
{
    LinearLayout::BasesT bases;
    bases.insert(dims::kReg, {{1, 0}, {0, 3}});
    auto l = LinearLayout::makeWithInferredOutDims(
        std::move(bases), {"a", "b"});
    EXPECT_EQ(l.getOutDimSize("a"), 2);
    EXPECT_EQ(l.getOutDimSize("b"), 4);
}

/** Property sweep over random invertible layouts. */
class LayoutRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(LayoutRoundTrip, InvertComposeIsIdentity)
{
    std::mt19937 rng(GetParam());
    auto l = randomInvertibleLayout(rng, 6);
    auto inv = l.invert().renameOutDim("in", "back");
    auto round = l.compose(inv.renameInDim("out", "out"));
    for (int32_t x = 0; x < 64; ++x)
        EXPECT_EQ(round.apply({{"in", x}})[0].second, x);
}

TEST_P(LayoutRoundTrip, MatrixRoundTrip)
{
    std::mt19937 rng(GetParam() + 1000);
    auto l = randomInvertibleLayout(rng, 6);
    auto m = l.toF2Matrix();
    auto back = LinearLayout::fromF2Matrix(
        m, {{"in", 64}}, {{"out", 64}}, true);
    EXPECT_EQ(back, l);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutRoundTrip, ::testing::Range(0, 20));

} // namespace
} // namespace ll
