/**
 * @file
 * Tests for the legacy-layout constructions of Section 4.3: blocked, MMA
 * (Ampere/Hopper/AMD), dot operands, slices, and shared (swizzled)
 * layouts, including a bit-exact reconstruction of the paper's Layout A
 * and a check of the Definition 4.11 swizzle formula.
 */

#include <gtest/gtest.h>

#include <set>

#include "layout/dims.h"
#include "triton/encodings.h"

namespace ll {
namespace triton {
namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

TEST(Blocked, ReconstructsPaperLayoutA)
{
    // Figure 1(a): 16x16 tensor, 2x2 registers, 4x8 threads, 2x1 warps,
    // j (dim1) fastest.
    BlockedEncoding enc;
    enc.sizePerThread = {2, 2};
    enc.threadsPerWarp = {4, 8};
    enc.warpsPerCta = {2, 1};
    enc.order = {1, 0};
    LinearLayout l = enc.toLinearLayout({16, 16});

    EXPECT_EQ(l.getInDimSize(kReg), 4);
    EXPECT_EQ(l.getInDimSize(kLane), 32);
    EXPECT_EQ(l.getInDimSize(kWarp), 2);
    // Out dims minor-to-major: dim1 (j) first.
    EXPECT_EQ(l.getOutDimNames(),
              (std::vector<std::string>{"dim1", "dim0"}));

    // Table 1 spot checks: register r1 of thread t9 in warp w0 sits at
    // (i, j) = (2, 3).
    auto out = l.apply({{kReg, 1}, {kLane, 9}, {kWarp, 0}});
    EXPECT_EQ(out[0].second, 3); // j
    EXPECT_EQ(out[1].second, 2); // i

    // Exact basis check.
    EXPECT_EQ(l.getBasis(kReg, 0), (std::vector<int32_t>{1, 0}));
    EXPECT_EQ(l.getBasis(kReg, 1), (std::vector<int32_t>{0, 1}));
    EXPECT_EQ(l.getBasis(kLane, 0), (std::vector<int32_t>{2, 0}));
    EXPECT_EQ(l.getBasis(kLane, 1), (std::vector<int32_t>{4, 0}));
    EXPECT_EQ(l.getBasis(kLane, 2), (std::vector<int32_t>{8, 0}));
    EXPECT_EQ(l.getBasis(kLane, 3), (std::vector<int32_t>{0, 2}));
    EXPECT_EQ(l.getBasis(kLane, 4), (std::vector<int32_t>{0, 4}));
    EXPECT_EQ(l.getBasis(kWarp, 0), (std::vector<int32_t>{0, 8}));

    EXPECT_TRUE(isDistributedLayout(l));
    EXPECT_TRUE(l.isInvertible());
}

TEST(Blocked, ReplicatesWhenTensorIsLarger)
{
    BlockedEncoding enc;
    enc.sizePerThread = {1, 1};
    enc.threadsPerWarp = {1, 32};
    enc.warpsPerCta = {1, 1};
    enc.order = {1, 0};
    LinearLayout l = enc.toLinearLayout({2, 64});
    // 2*64 elements over 32 threads: 4 registers each, all distinct.
    EXPECT_EQ(l.getInDimSize(kReg), 4);
    EXPECT_TRUE(l.isInvertible());
    EXPECT_TRUE(isDistributedLayout(l));
}

TEST(Blocked, BroadcastsWhenTensorIsSmaller)
{
    BlockedEncoding enc;
    enc.sizePerThread = {1, 1};
    enc.threadsPerWarp = {1, 32};
    enc.warpsPerCta = {1, 4};
    enc.order = {1, 0};
    LinearLayout l = enc.toLinearLayout({1, 32});
    // 4 warps cover a 32-wide tensor: warps fully broadcast.
    EXPECT_EQ(l.getInDimSize(kWarp), 4);
    EXPECT_TRUE(l.sublayoutIsZero({kWarp}, l.getOutDimNames()));
    EXPECT_TRUE(l.isSurjective());
    EXPECT_FALSE(l.isInjective());
    auto masks = l.getFreeVariableMasks();
    EXPECT_EQ(masks.at(kWarp), 0b11);
    EXPECT_TRUE(isDistributedLayout(l));
}

TEST(Blocked, EveryElementCoveredExactlyOnceWhenBijective)
{
    BlockedEncoding enc;
    enc.sizePerThread = {2, 2};
    enc.threadsPerWarp = {4, 8};
    enc.warpsPerCta = {2, 2};
    enc.order = {0, 1};
    LinearLayout l = enc.toLinearLayout({32, 32});
    ASSERT_EQ(l.getTotalInDimSize(), 32 * 32);
    std::set<uint64_t> seen;
    for (uint64_t v = 0; v < 1024; ++v)
        seen.insert(l.applyFlat(v));
    EXPECT_EQ(seen.size(), 1024u);
}

TEST(Blocked, MakeDefaultCoversShape)
{
    auto enc = BlockedEncoding::makeDefault({128, 64}, 4, 32, 4);
    LinearLayout l = enc.toLinearLayout({128, 64});
    EXPECT_TRUE(l.isSurjective());
    EXPECT_EQ(l.getInDimSize(kLane), 32);
    EXPECT_EQ(l.getInDimSize(kWarp), 4);
    // Vectorization request is honored in contiguity.
    EXPECT_GE(l.getNumConsecutiveInOut(), 4);
    EXPECT_TRUE(isDistributedLayout(l));
}

TEST(Blocked, MakeDefaultHandlesTinyShapes)
{
    auto enc = BlockedEncoding::makeDefault({2, 2}, 4, 32, 8);
    LinearLayout l = enc.toLinearLayout({2, 2});
    EXPECT_TRUE(l.isSurjective());
    EXPECT_EQ(l.getInDimSize(kLane), 32);
    EXPECT_EQ(l.getInDimSize(kWarp), 4);
}

TEST(Mma, AmpereFragmentMatchesPtx)
{
    MmaEncoding enc;
    enc.version = 2;
    enc.warpsPerCta = {1, 1};
    LinearLayout l = enc.toLinearLayout({16, 8});
    EXPECT_EQ(l.getInDimSize(kReg), 4);
    EXPECT_EQ(l.getInDimSize(kLane), 32);

    // PTX m16n8 accumulator fragment: lane holds c0..c3 with
    // row = lane/4 (+8 for c2/c3), col = 2*(lane%4) + (reg&1).
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < 4; ++reg) {
            auto out = l.apply({{kReg, reg}, {kLane, lane}, {kWarp, 0}});
            int col = out[0].second; // dim1
            int row = out[1].second; // dim0
            EXPECT_EQ(col, 2 * (lane % 4) + (reg & 1));
            EXPECT_EQ(row, lane / 4 + 8 * (reg >> 1));
        }
    }
    EXPECT_TRUE(isDistributedLayout(l));
}

TEST(Mma, WarpsTileTheOutput)
{
    MmaEncoding enc;
    enc.version = 2;
    enc.warpsPerCta = {2, 2};
    LinearLayout l = enc.toLinearLayout({32, 16});
    EXPECT_EQ(l.getInDimSize(kWarp), 4);
    EXPECT_TRUE(l.isInvertible());
    // Warp bit 0 advances rows by 16, warp bit 1 advances cols by 8.
    EXPECT_EQ(l.getBasis(kWarp, 0), (std::vector<int32_t>{0, 16}));
    EXPECT_EQ(l.getBasis(kWarp, 1), (std::vector<int32_t>{8, 0}));
}

TEST(Mma, RegistersReplicateOverLargeShapes)
{
    MmaEncoding enc;
    enc.version = 2;
    enc.warpsPerCta = {2, 2};
    LinearLayout l = enc.toLinearLayout({64, 64});
    // 64*64 / (4 warps * 32 lanes) = 32 registers per thread.
    EXPECT_EQ(l.getInDimSize(kReg), 32);
    EXPECT_TRUE(l.isInvertible());
    EXPECT_TRUE(isDistributedLayout(l));
}

TEST(Mma, SmallShapesBroadcastInsteadOfFailing)
{
    // The Table 5 scenario: tiny dot shapes must still yield valid
    // distributed layouts (legacy Triton fails these).
    MmaEncoding enc;
    enc.version = 2;
    enc.warpsPerCta = {4, 1};
    LinearLayout l = enc.toLinearLayout({8, 8});
    EXPECT_TRUE(l.isSurjective());
    EXPECT_TRUE(isDistributedLayout(l));
    EXPECT_FALSE(l.isInjective()); // some resources broadcast
}

TEST(Mma, WgmmaWarpGroupOwns64Rows)
{
    MmaEncoding enc;
    enc.version = 3;
    enc.warpsPerCta = {4, 1};
    enc.instrN = 16;
    LinearLayout l = enc.toLinearLayout({64, 16});
    EXPECT_EQ(l.getInDimSize(kWarp), 4);
    // Warps stack along dim0 in steps of 16.
    EXPECT_EQ(l.getBasis(kWarp, 0), (std::vector<int32_t>{0, 16}));
    EXPECT_EQ(l.getBasis(kWarp, 1), (std::vector<int32_t>{0, 32}));
    EXPECT_TRUE(l.isInvertible());
    // Registers: 64*16 / 128 threads = 8 per thread.
    EXPECT_EQ(l.getInDimSize(kReg), 8);
}

TEST(Mfma, FragmentShape)
{
    MfmaEncoding enc;
    enc.warpsPerCta = {2, 2};
    LinearLayout l = enc.toLinearLayout({64, 64});
    EXPECT_EQ(l.getInDimSize(kLane), 64); // wavefront of 64
    EXPECT_EQ(l.getInDimSize(kWarp), 4);
    EXPECT_EQ(l.getInDimSize(kReg), 16);
    EXPECT_TRUE(l.isInvertible());
    EXPECT_TRUE(isDistributedLayout(l));
}

TEST(Mfma, FragmentMatchesCdnaLayout)
{
    MfmaEncoding enc;
    enc.warpsPerCta = {1, 1};
    LinearLayout l = enc.toLinearLayout({32, 32});
    for (int lane = 0; lane < 64; ++lane) {
        for (int reg = 0; reg < 16; ++reg) {
            auto out = l.apply({{kReg, reg}, {kLane, lane}, {kWarp, 0}});
            int col = out[0].second;
            int row = out[1].second;
            EXPECT_EQ(col, lane % 32);
            EXPECT_EQ(row, (reg % 4) + 4 * (lane / 32) + 8 * (reg / 4));
        }
    }
}

TEST(DotOperand, AOperandF16Tile)
{
    DotOperandEncoding enc;
    enc.parent.version = 2;
    enc.parent.warpsPerCta = {1, 1};
    enc.opIdx = 0;
    enc.bitwidth = 16;
    LinearLayout l = enc.toLinearLayout({16, 16});
    // m16k16 f16 A fragment: 8 elements per thread.
    EXPECT_EQ(l.getInDimSize(kReg), 8);
    EXPECT_EQ(l.getInDimSize(kLane), 32);
    EXPECT_TRUE(l.isInvertible());
    EXPECT_TRUE(isDistributedLayout(l));

    // PTX a-fragment: row = lane/4 (+8), col = 2*(lane%4) + (reg&1) (+8).
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < 8; ++reg) {
            auto out = l.apply({{kReg, reg}, {kLane, lane}, {kWarp, 0}});
            int k = out[0].second;   // dim1
            int m = out[1].second;   // dim0
            EXPECT_EQ(k, 2 * (lane % 4) + (reg & 1) + 8 * ((reg >> 2) & 1));
            EXPECT_EQ(m, lane / 4 + 8 * ((reg >> 1) & 1));
        }
    }
}

TEST(DotOperand, BOperandF16Tile)
{
    DotOperandEncoding enc;
    enc.parent.version = 2;
    enc.parent.warpsPerCta = {1, 1};
    enc.opIdx = 1;
    enc.bitwidth = 16;
    LinearLayout l = enc.toLinearLayout({16, 8});
    EXPECT_EQ(l.getInDimSize(kReg), 4);
    EXPECT_TRUE(l.isInvertible());
    // PTX b-fragment: k = 2*(lane%4) + (reg&1) + 8*(reg>>1), n = lane/4.
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < 4; ++reg) {
            auto out = l.apply({{kReg, reg}, {kLane, lane}, {kWarp, 0}});
            int n = out[0].second; // dim1
            int k = out[1].second; // dim0
            EXPECT_EQ(k, 2 * (lane % 4) + (reg & 1) + 8 * (reg >> 1));
            EXPECT_EQ(n, lane / 4);
        }
    }
}

TEST(DotOperand, WarpsBroadcastOverK)
{
    DotOperandEncoding enc;
    enc.parent.version = 2;
    enc.parent.warpsPerCta = {2, 2};
    enc.opIdx = 0;
    enc.bitwidth = 16;
    LinearLayout l = enc.toLinearLayout({32, 32});
    EXPECT_EQ(l.getInDimSize(kWarp), 4);
    // Warp bits along dim1 (the N warps) broadcast for operand A.
    auto masks = l.getFreeVariableMasks();
    EXPECT_NE(masks.at(kWarp), 0);
    EXPECT_TRUE(l.isSurjective());
    EXPECT_TRUE(isDistributedLayout(l));
}

TEST(DotOperand, Int8TileHasWiderK)
{
    DotOperandEncoding enc;
    enc.parent.version = 2;
    enc.parent.warpsPerCta = {1, 1};
    enc.opIdx = 0;
    enc.bitwidth = 8;
    LinearLayout tile = enc.instructionTile();
    EXPECT_EQ(tile.getOutDimSize("dim1"), 32); // k = 32 for int8
    EXPECT_EQ(tile.getOutDimSize("dim0"), 16);
}

TEST(Slice, RemovesADimensionAndRenumbers)
{
    BlockedEncoding enc;
    enc.sizePerThread = {1, 4};
    enc.threadsPerWarp = {4, 8};
    enc.warpsPerCta = {4, 1};
    enc.order = {1, 0};
    LinearLayout parent = enc.toLinearLayout({16, 32});
    LinearLayout sliced = sliceLayout(parent, 0);
    EXPECT_EQ(sliced.getNumOutDims(), 1);
    EXPECT_TRUE(sliced.hasOutDim("dim0")); // old dim1 renumbered
    EXPECT_TRUE(sliced.isSurjective());
    // Slicing keeps all input dims but loses injectivity.
    EXPECT_FALSE(sliced.isInjective());
    EXPECT_TRUE(isDistributedLayout(sliced) ||
                !sliced.isInjective()); // still surjective family member
}

TEST(Slice, SliceOfMmaIsALinearLayout)
{
    MmaEncoding enc;
    enc.version = 2;
    enc.warpsPerCta = {2, 2};
    LinearLayout parent = enc.toLinearLayout({32, 32});
    LinearLayout sliced = sliceLayout(parent, 1);
    EXPECT_EQ(sliced.getNumOutDims(), 1);
    EXPECT_EQ(sliced.getOutDimSize("dim0"), 32);
    EXPECT_TRUE(sliced.isSurjective());
}

TEST(Shared, UnswizzledIsRowMajorIdentity)
{
    LinearLayout l = unswizzledSharedLayout({4, 8}, {1, 0});
    EXPECT_EQ(l.getInDimSize(dims::kOffset), 32);
    for (int32_t i = 0; i < 4; ++i) {
        for (int32_t j = 0; j < 8; ++j) {
            auto out = l.apply({{dims::kOffset, i * 8 + j}});
            EXPECT_EQ(out[0].second, j);
            EXPECT_EQ(out[1].second, i);
        }
    }
    EXPECT_TRUE(isMemoryLayout(l));
}

TEST(Shared, SwizzledMatchesDefinition411)
{
    // Check the constructed inverse against the forward swizzle formula
    // offset(i,j) = ((i/perPhase mod maxPhase) xor j/vec)*vec xor
    // (j mod vec), plus the row base i * rowElems.
    const int32_t rows = 16, cols = 16;
    for (int32_t vec : {1, 2, 4}) {
        for (int32_t perPhase : {1, 2}) {
            for (int32_t maxPhase : {1, 2, 4}) {
                LinearLayout l = mmaSwizzledSharedLayout(
                    {rows, cols}, vec, perPhase, maxPhase, {1, 0});
                for (int32_t i = 0; i < rows; ++i) {
                    for (int32_t j = 0; j < cols; ++j) {
                        int32_t inRow =
                            (((i / perPhase) % maxPhase) ^ (j / vec)) *
                                vec ^
                            (j % vec);
                        int32_t offset = i * cols + inRow;
                        auto out = l.apply({{dims::kOffset, offset}});
                        EXPECT_EQ(out[0].second, j)
                            << "vec=" << vec << " perPhase=" << perPhase
                            << " maxPhase=" << maxPhase << " i=" << i
                            << " j=" << j;
                        EXPECT_EQ(out[1].second, i);
                    }
                }
                EXPECT_TRUE(isMemoryLayout(l));
            }
        }
    }
}

TEST(Shared, SwizzleParamsAreSane)
{
    auto p16 = chooseMmaSwizzleParams(2, 64); // f16, 64-wide rows
    EXPECT_EQ(p16.vec, 8);
    EXPECT_EQ(p16.perPhase, 1);
    EXPECT_EQ(p16.maxPhase, 8);

    auto p8 = chooseMmaSwizzleParams(1, 32); // f8, 32-wide rows
    EXPECT_EQ(p8.vec, 16);
    EXPECT_EQ(p8.perPhase, 4);
    EXPECT_EQ(p8.maxPhase, 2);
}

TEST(Family, MembershipChecks)
{
    // A swizzled memory layout is not a distributed layout (two-bit
    // columns), and vice versa for broadcasting distributed layouts.
    LinearLayout swz =
        mmaSwizzledSharedLayout({16, 16}, 4, 1, 4, {1, 0});
    EXPECT_TRUE(isMemoryLayout(swz));
    EXPECT_FALSE(isDistributedLayout(swz));

    LinearLayout bcast = LinearLayout::identity1D(8, kReg, "dim0") *
                         LinearLayout::zeros1D(4, kLane, "dim0");
    EXPECT_TRUE(isDistributedLayout(bcast));
    EXPECT_FALSE(isMemoryLayout(bcast));
}

} // namespace
} // namespace triton
} // namespace ll
