/**
 * @file
 * Replays the committed conversion-case corpus under tests/corpus/.
 * Every file is a case llfuzz once generated and verified; replaying
 * them pins the planner's behavior on a diverse, known-good population
 * across encodings, element widths, and GPU specs. New cases are added
 * with `llfuzz --emit-corpus tests/corpus` (see TESTING.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "check/case_io.h"
#include "check/oracle.h"

#ifndef LL_CORPUS_DIR
#error "build must define LL_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace ll {
namespace {

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(LL_CORPUS_DIR)) {
        if (entry.path().extension() == ".txt")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(Corpus, HasCommittedCases)
{
    EXPECT_GE(corpusFiles().size(), 16u)
        << "corpus at " << LL_CORPUS_DIR << " looks empty";
}

TEST(Corpus, EveryCaseRoundTripsThroughCaseIo)
{
    for (const auto &file : corpusFiles()) {
        auto c = check::readCaseFile(file);
        std::ostringstream os;
        check::writeCase(os, c);
        std::istringstream is(os.str());
        auto back = check::readCase(is);
        EXPECT_EQ(back.src, c.src) << file;
        EXPECT_EQ(back.dst, c.dst) << file;
        EXPECT_EQ(back.elemBytes, c.elemBytes) << file;
        EXPECT_EQ(back.specName, c.specName) << file;
    }
}

TEST(Corpus, EveryCasePassesTheOracle)
{
    for (const auto &file : corpusFiles()) {
        auto c = check::readCaseFile(file);
        auto report = check::checkConversionCase(c);
        EXPECT_TRUE(report.ok())
            << file << " (" << c.summary << ")\n  " << report.toString();
    }
}

} // namespace
} // namespace ll
