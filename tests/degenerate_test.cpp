/**
 * @file
 * Degenerate-layout tests: the planner and the differential oracle must
 * handle the edges of the layout space — rank-1 tensors, size-1 dims,
 * all-broadcast (zero-column) layouts, and layouts confined to a single
 * lane or warp — without misclassifying or crashing. Several of these
 * shapes were historically reachable only through fuzzing.
 */

#include <gtest/gtest.h>

#include "check/generators.h"
#include "check/oracle.h"
#include "codegen/conversion.h"
#include "codegen/shuffle.h"
#include "layout/dims.h"
#include "triton/encodings.h"

namespace ll {
namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

/** Build a layout from per-dim basis lists over a single logical dim. */
LinearLayout
make1D(std::vector<std::vector<int32_t>> reg,
       std::vector<std::vector<int32_t>> lane,
       std::vector<std::vector<int32_t>> warp, int32_t dimSize)
{
    LinearLayout::BasesT bases;
    bases.insert(kReg, std::move(reg));
    bases.insert(kLane, std::move(lane));
    bases.insert(kWarp, std::move(warp));
    return LinearLayout(std::move(bases), {{"dim0", dimSize}},
                        /*requireSurjective=*/true);
}

check::OracleReport
checkPair(const LinearLayout &src, const LinearLayout &dst,
          const std::string &specName = "gh200", int elemBytes = 4)
{
    check::ConversionCase c;
    c.src = src;
    c.dst = dst;
    c.elemBytes = elemBytes;
    c.specName = specName;
    c.summary = "degenerate";
    return check::checkConversionCase(c);
}

TEST(Degenerate, Rank1ConversionRoundTrips)
{
    triton::BlockedEncoding a;
    a.sizePerThread = {2};
    a.threadsPerWarp = {32};
    a.warpsPerCta = {4};
    a.order = {0};
    triton::BlockedEncoding b = a;
    b.sizePerThread = {8};
    auto src = a.toLinearLayout({256});
    auto dst = b.toLinearLayout({256});
    auto report = checkPair(src, dst);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Degenerate, SizeOneDimsConvert)
{
    for (const triton::Shape &shape :
         {triton::Shape{1, 64}, triton::Shape{64, 1},
          triton::Shape{1, 1}}) {
        triton::BlockedEncoding a;
        a.sizePerThread = {1, 2};
        a.threadsPerWarp = {4, 8};
        a.warpsPerCta = {2, 2};
        a.order = {0, 1};
        triton::BlockedEncoding b = a;
        b.order = {1, 0};
        b.sizePerThread = {2, 1};
        auto report =
            checkPair(a.toLinearLayout(shape), b.toLinearLayout(shape));
        EXPECT_TRUE(report.ok())
            << shape[0] << "x" << shape[1] << ": " << report.toString();
    }
}

TEST(Degenerate, AllBroadcastLayoutsConvert)
{
    // A one-element tensor replicated in every register, lane and warp:
    // every basis vector is zero. Conversion is trivially a no-op and
    // must be planned as one (no shared-memory round trip for nothing).
    auto all = make1D({{0}}, {{0}, {0}, {0}, {0}, {0}}, {{0}, {0}}, 1);
    auto plan =
        codegen::planConversion(all, all, 4, sim::GpuSpec::gh200());
    EXPECT_EQ(plan.kind, codegen::ConversionKind::NoOp);
    auto report = checkPair(all, all);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Degenerate, BroadcastDestinationNeedsNoData)
{
    // src holds the single element in warp 0 only (warp dim size 1);
    // dst replicates it across two warps via a zero basis. Every warp
    // can produce the value from its own registers, so a register
    // permute (or no-op) is valid — the planner must not fall back to
    // shared memory, and the oracle must agree.
    auto src = make1D({}, {}, {}, 1);
    auto dst = make1D({}, {}, {{0}}, 1);
    EXPECT_TRUE(codegen::conversionIsRegisterPermute(src, dst));
    auto report = checkPair(src, dst);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Degenerate, SingleLaneSingleWarpRegisterFile)
{
    // All 16 elements in the registers of one thread; conversion to a
    // different register order stays a register permute.
    auto src = make1D({{1}, {2}, {4}, {8}}, {}, {}, 16);
    auto dst = make1D({{8}, {4}, {2}, {1}}, {}, {}, 16);
    auto plan =
        codegen::planConversion(src, dst, 4, sim::GpuSpec::gh200());
    EXPECT_EQ(plan.kind, codegen::ConversionKind::RegisterPermute);
    auto report = checkPair(src, dst);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Degenerate, GatherLanesIntoOneThread)
{
    // src spreads 32 elements across 32 lanes; dst wants all of them in
    // the registers of every thread. That genuinely moves data across
    // lanes, so it must NOT be classified as a register permute.
    auto src = make1D({}, {{1}, {2}, {4}, {8}, {16}}, {}, 32);
    auto dst = make1D({{1}, {2}, {4}, {8}, {16}},
                      {{0}, {0}, {0}, {0}, {0}}, {}, 32);
    EXPECT_FALSE(codegen::conversionIsRegisterPermute(src, dst));
    auto plan =
        codegen::planConversion(src, dst, 4, sim::GpuSpec::gh200());
    EXPECT_NE(plan.kind, codegen::ConversionKind::NoOp);
    EXPECT_NE(plan.kind, codegen::ConversionKind::RegisterPermute);
    auto report = checkPair(src, dst);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Degenerate, PlannerCoversSingleWarpLayouts)
{
    // Lane-only layouts with no warp dim at all (single-warp kernels).
    auto src = make1D({{16}}, {{1}, {2}, {4}, {8}}, {}, 32);
    auto dst = make1D({{1}}, {{2}, {4}, {8}, {16}}, {}, 32);
    auto report = checkPair(src, dst);
    EXPECT_TRUE(report.ok()) << report.toString();
}

} // namespace
} // namespace ll
