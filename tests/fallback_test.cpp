/**
 * @file
 * The fallback ladder under fault injection, exercised over the whole
 * committed corpus: every rung the planner can land on must be
 * oracle-clean (every element routed correctly, bank-conflict
 * accounting matching the simulator), the modeled cost must be
 * monotonically non-decreasing as rungs are knocked out, and the engine
 * must survive even a total planner outage by downgrading instead of
 * aborting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/case_io.h"
#include "check/generators.h"
#include "check/oracle.h"
#include "codegen/conversion.h"
#include "engine/layout_engine.h"
#include "ir/function.h"
#include "support/failpoint.h"

namespace ll {
namespace {

using check::ConversionCase;
using codegen::ConversionKind;

struct CorpusEntry
{
    std::string file; ///< basename, for failure messages
    ConversionCase c;
};

const std::vector<CorpusEntry> &
corpus()
{
    static const std::vector<CorpusEntry> entries = [] {
        std::vector<std::string> paths;
        for (const auto &e :
             std::filesystem::directory_iterator(LL_CORPUS_DIR)) {
            if (e.path().extension() == ".txt")
                paths.push_back(e.path().string());
        }
        std::sort(paths.begin(), paths.end());
        std::vector<CorpusEntry> out;
        for (const auto &p : paths) {
            out.push_back({std::filesystem::path(p).filename().string(),
                           check::readCaseFile(p)});
        }
        return out;
    }();
    return entries;
}

// Ladder-forcing failpoint sets. Each disables every rung above the one
// it names, so the planner must land on (or below) the forced rung.
std::vector<std::string>
forceShared()
{
    return {"plan.noop", "plan.register-permute", "plan.warp-shuffle"};
}

std::vector<std::string>
forcePadded()
{
    auto s = forceShared();
    s.push_back("plan.optimal-swizzle");
    s.push_back("plan.legacy-swizzle");
    return s;
}

std::vector<std::string>
forceScalar()
{
    auto s = forcePadded();
    s.push_back("plan.padded");
    return s;
}

codegen::ConversionPlan
planWith(const ConversionCase &c, const std::vector<std::string> &sites)
{
    failpoint::ScopedSet guard(sites);
    return codegen::planConversion(c.src, c.dst, c.elemBytes, c.spec());
}

bool
isShared(ConversionKind k)
{
    return k == ConversionKind::SharedMemory ||
           k == ConversionKind::SharedPadded ||
           k == ConversionKind::SharedScalar;
}

TEST(Fallback, CorpusIsPresent)
{
    ASSERT_GE(corpus().size(), 10u)
        << "corpus at " << LL_CORPUS_DIR << " looks empty";
}

// Every rung, on every corpus case, must route every element correctly
// and keep its wavefront accounting honest.
TEST(Fallback, ForcedSharedRungIsOracleClean)
{
    for (const auto &e : corpus()) {
        ConversionCase c = e.c;
        c.failpoints = forceShared();
        auto report = check::checkConversionCase(c);
        EXPECT_TRUE(isShared(report.kind))
            << e.file << ": " << toString(report.kind);
        EXPECT_TRUE(report.ok()) << e.file << ": " << report.toString();
    }
}

TEST(Fallback, ForcedPaddedRungIsOracleClean)
{
    int padAdopted = 0;
    for (const auto &e : corpus()) {
        ConversionCase c = e.c;
        c.failpoints = forcePadded();
        auto report = check::checkConversionCase(c);
        EXPECT_EQ(report.kind, ConversionKind::SharedPadded) << e.file;
        EXPECT_TRUE(report.ok()) << e.file << ": " << report.toString();
        // The padded rung is priced by enumerated totals (Lemma 9.4's
        // per-access uniformity fails under padding) — the oracle must
        // have audited those totals against the simulator.
        EXPECT_TRUE(report.totalsAudited) << e.file;
        EXPECT_FALSE(report.totalsDiverge()) << e.file;

        auto plan = planWith(e.c, forcePadded());
        ASSERT_TRUE(plan.shared.has_value()) << e.file;
        if (plan.shared->padded())
            ++padAdopted;
    }
    // Padding must actually engage somewhere in the corpus — otherwise
    // the rung is indistinguishable from a plain flat layout and the
    // padOffset arithmetic is untested.
    EXPECT_GE(padAdopted, 1);
}

TEST(Fallback, ForcedScalarRungIsOracleClean)
{
    for (const auto &e : corpus()) {
        ConversionCase c = e.c;
        c.failpoints = forceScalar();
        auto report = check::checkConversionCase(c);
        EXPECT_EQ(report.kind, ConversionKind::SharedScalar) << e.file;
        EXPECT_TRUE(report.ok()) << e.file << ": " << report.toString();
    }
}

// Knocking out rungs can only make the modeled conversion slower: the
// unforced plan is at most as expensive as the best shared plan, which
// is at most the padded plan, which is at most the scalar round trip.
TEST(Fallback, CyclesAreMonotonicDownTheLadder)
{
    for (const auto &e : corpus()) {
        const auto &c = e.c;
        const auto spec = c.spec();
        auto base = planWith(c, {});
        auto shared = planWith(c, forceShared());
        auto padded = planWith(c, forcePadded());
        auto scalar = planWith(c, forceScalar());
        double cBase = base.estimateCycles(c.src, c.elemBytes, spec);
        double cShared = shared.estimateCycles(c.src, c.elemBytes, spec);
        double cPadded = padded.estimateCycles(c.src, c.elemBytes, spec);
        double cScalar = scalar.estimateCycles(c.src, c.elemBytes, spec);
        EXPECT_LE(cBase, cShared)
            << e.file << ": " << toString(base.kind) << " vs "
            << toString(shared.kind);
        EXPECT_LE(cShared, cPadded)
            << e.file << ": " << toString(shared.kind) << " vs padded";
        EXPECT_LE(cPadded, cScalar) << e.file;
    }
}

// ldmatrix and stmatrix are optimizations of the shared rung, not
// structural parts of it: dropping either must leave a working (and
// still optimally swizzled) shared plan.
TEST(Fallback, MatrixInstructionsAreIndependentlyDroppable)
{
    for (const auto &e : corpus()) {
        auto baseline = planWith(e.c, forceShared());
        if (baseline.kind != ConversionKind::SharedMemory)
            continue;
        if (baseline.usesLdmatrix) {
            auto sites = forceShared();
            sites.push_back("plan.ldmatrix");
            auto plan = planWith(e.c, sites);
            EXPECT_EQ(plan.kind, ConversionKind::SharedMemory) << e.file;
            EXPECT_FALSE(plan.usesLdmatrix) << e.file;
            EXPECT_EQ(plan.usesStmatrix, baseline.usesStmatrix) << e.file;
            ConversionCase c = e.c;
            c.failpoints = sites;
            auto report = check::checkConversionCase(c);
            EXPECT_TRUE(report.ok()) << e.file << ": "
                                     << report.toString();
        }
        if (baseline.usesStmatrix) {
            auto sites = forceShared();
            sites.push_back("plan.stmatrix");
            auto plan = planWith(e.c, sites);
            EXPECT_EQ(plan.kind, ConversionKind::SharedMemory) << e.file;
            EXPECT_FALSE(plan.usesStmatrix) << e.file;
            EXPECT_EQ(plan.usesLdmatrix, baseline.usesLdmatrix) << e.file;
            ConversionCase c = e.c;
            c.failpoints = sites;
            auto report = check::checkConversionCase(c);
            EXPECT_TRUE(report.ok()) << e.file << ": "
                                     << report.toString();
        }
    }
}

// No single failpoint site may leave the planner without a plan: the
// ladder must absorb any one-stage outage. (The terminal "plan.scalar"
// site is deliberately absent from plannerFailpointSites.)
TEST(Fallback, AnySingleSiteOutageStillPlans)
{
    const auto sites = codegen::plannerFailpointSites();
    ASSERT_FALSE(sites.empty());
    const size_t nCases = std::min<size_t>(corpus().size(), 8);
    for (const auto &site : sites) {
        for (size_t i = 0; i < nCases; ++i) {
            ConversionCase c = corpus()[i].c;
            c.failpoints = {site};
            auto report = check::checkConversionCase(c);
            EXPECT_TRUE(report.ok()) << corpus()[i].file << " with "
                                     << site << ": "
                                     << report.toString();
        }
    }
}

// A plan reached by stepping down records why in its diagnostics; a
// first-try plan stays clean.
TEST(Fallback, DiagnosticsRecordSkippedRungs)
{
    const auto &e = corpus().front();
    auto forced = planWith(e.c, forcePadded());
    EXPECT_FALSE(forced.diagnostics.empty());
    bool sawFailpoint = false;
    for (const auto &n : forced.diagnostics.notes)
        sawFailpoint |= n.code == DiagCode::FailpointInjected;
    EXPECT_TRUE(sawFailpoint) << forced.diagnostics.toString();
}

// ----------------------------------------------------------------------
// Engine survival
// ----------------------------------------------------------------------

ir::Function
gemmFunction()
{
    ir::Function f("gemm");
    int a = f.load({ir::DType::F16, {64, 64}});
    int b = f.load({ir::DType::F16, {64, 64}});
    int c = f.dot(a, b, ir::DType::F32);
    f.store(c);
    return f;
}

TEST(Fallback, EngineSurvivesATotalPlannerOutage)
{
    // Every rung off, including the terminal scalar one: planning fails
    // outright, and the engine must downgrade the conversion rather
    // than throw out of run().
    auto sites = codegen::plannerFailpointSites();
    sites.push_back("plan.scalar");
    failpoint::ScopedSet guard(sites);

    auto f = gemmFunction();
    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    engine::EngineStats stats;
    EXPECT_NO_THROW(stats = eng.run(f));
    EXPECT_GE(stats.planFailures, 1);
    EXPECT_FALSE(stats.planDiagnostics.empty());
    bool sawUnplanned = false;
    for (int i = 0; i < f.numOps(); ++i) {
        if (f.op(i).tag.find("convert:unplanned") != std::string::npos)
            sawUnplanned = true;
    }
    EXPECT_TRUE(sawUnplanned);
}

TEST(Fallback, EnginePlansConversionsWhenHealthy)
{
    auto f = gemmFunction();
    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    auto stats = eng.run(f);
    EXPECT_EQ(stats.planFailures, 0);
    EXPECT_GE(stats.convertsPlanned, 1);
    bool sawKindTag = false;
    for (int i = 0; i < f.numOps(); ++i) {
        const auto &tag = f.op(i).tag;
        auto pos = tag.find("convert:");
        if (pos == std::string::npos)
            continue;
        auto kind =
            codegen::parseConversionKind(tag.substr(pos + 8));
        EXPECT_TRUE(kind.has_value()) << tag;
        sawKindTag = true;
    }
    EXPECT_TRUE(sawKindTag);
}

TEST(Fallback, EngineTransferFailpointFallsBackToAnchor)
{
    failpoint::Scoped guard("engine.transfer");
    ir::Function f("softmax");
    int x = f.load({ir::DType::F32, {128, 64}}, "x");
    int m = f.reduce(x, 1, "max");
    int me = f.expandDims(m, 1);
    int mb = f.broadcast(me, {128, 64});
    int centered = f.elementwise({x, mb}, ir::DType::F32, "sub");
    f.store(centered);

    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    engine::EngineStats stats;
    EXPECT_NO_THROW(stats = eng.run(f));
    EXPECT_GE(stats.transferFallbacks, 1);
    for (int v = 0; v < f.numValues(); ++v)
        EXPECT_TRUE(f.value(v).layout.has_value()) << "value " << v;
}

} // namespace
} // namespace ll
