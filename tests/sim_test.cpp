/**
 * @file
 * Direct tests for the GPU counting model: bank-conflict wavefront
 * counting against hand-computed cases (broadcast, 2-way/N-way
 * conflicts, vectorized transaction splits, inactive lanes), global
 * sector coalescing, the data-carrying shared memory, and the platform
 * presets of Table 2.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "sim/gpu_spec.h"
#include "support/diagnostics.h"
#include "sim/memory_sim.h"

namespace ll {
namespace sim {
namespace {

std::vector<int64_t>
addrs(std::initializer_list<int64_t> list)
{
    return {list};
}

TEST(SharedWavefronts, ContiguousWordAccessIsConflictFree)
{
    auto spec = GpuSpec::gh200();
    std::vector<int64_t> a(32);
    for (int i = 0; i < 32; ++i)
        a[i] = i * 4; // one word per bank
    EXPECT_EQ(SharedMemory::countWavefronts(spec, a, 4), 1);
}

TEST(SharedWavefronts, SameWordIsBroadcast)
{
    auto spec = GpuSpec::gh200();
    std::vector<int64_t> a(32, 0); // all lanes read word 0
    EXPECT_EQ(SharedMemory::countWavefronts(spec, a, 4), 1);
}

TEST(SharedWavefronts, StrideOf128BytesSerializesFully)
{
    auto spec = GpuSpec::gh200();
    std::vector<int64_t> a(32);
    for (int i = 0; i < 32; ++i)
        a[i] = i * 128; // all lanes hit bank 0, distinct words
    EXPECT_EQ(SharedMemory::countWavefronts(spec, a, 4), 32);
}

TEST(SharedWavefronts, TwoWayConflict)
{
    auto spec = GpuSpec::gh200();
    std::vector<int64_t> a(32);
    for (int i = 0; i < 32; ++i)
        a[i] = (i % 16) * 4 + (i / 16) * 256; // halves collide per bank
    EXPECT_EQ(SharedMemory::countWavefronts(spec, a, 4), 2);
}

TEST(SharedWavefronts, VectorizedAccessSplitsInto128ByteGroups)
{
    auto spec = GpuSpec::gh200();
    // 16-byte accesses: groups of 8 lanes; fully contiguous.
    std::vector<int64_t> a(32);
    for (int i = 0; i < 32; ++i)
        a[i] = i * 16;
    EXPECT_EQ(SharedMemory::countWavefronts(spec, a, 16), 4);
    EXPECT_EQ(SharedMemory::countTransactions(spec, a, 16), 4);
}

TEST(SharedWavefronts, InactiveLanesAreSkipped)
{
    auto spec = GpuSpec::gh200();
    std::vector<int64_t> a(32, kInactiveLane);
    EXPECT_EQ(SharedMemory::countWavefronts(spec, a, 4), 0);
    a[5] = 0;
    EXPECT_EQ(SharedMemory::countWavefronts(spec, a, 4), 1);
}

TEST(SharedWavefronts, SubWordBytesOfOneWordMerge)
{
    auto spec = GpuSpec::gh200();
    // 4 lanes per word at byte granularity: still one word per bank.
    std::vector<int64_t> a(32);
    for (int i = 0; i < 32; ++i)
        a[i] = i; // bytes 0..31 = words 0..7
    EXPECT_EQ(SharedMemory::countWavefronts(spec, a, 1), 1);
}

TEST(SharedMemoryData, StoreLoadRoundTrip)
{
    auto spec = GpuSpec::gh200();
    SharedMemory smem(spec, 4, 256);
    AccessStats stats;
    std::vector<int64_t> offsets(32);
    std::vector<std::vector<uint64_t>> values(32);
    for (int i = 0; i < 32; ++i) {
        offsets[i] = i * 2;
        values[i] = {uint64_t(i) * 10, uint64_t(i) * 10 + 1};
    }
    smem.warpStore(offsets, 2, values, stats);
    EXPECT_EQ(stats.instructions, 1);
    auto loaded = smem.warpLoad(offsets, 2, stats);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(loaded[i], values[i]);
    EXPECT_EQ(smem.peek(3), 11u);
}

TEST(SharedMemoryData, CapacityIsEnforced)
{
    auto spec = GpuSpec::rtx4090();
    EXPECT_THROW(SharedMemory(spec, 4, 1 << 20), ll::UserError);
}

TEST(GlobalSectors, FullyCoalescedWarp)
{
    auto spec = GpuSpec::gh200();
    GlobalMemory gmem(spec);
    std::vector<int64_t> a(32);
    for (int i = 0; i < 32; ++i)
        a[i] = i * 4;
    EXPECT_EQ(gmem.countSectors(a, 4), 4); // 128 B = 4 sectors
}

TEST(GlobalSectors, StridedWarpTouchesOneSectorPerLane)
{
    auto spec = GpuSpec::gh200();
    GlobalMemory gmem(spec);
    std::vector<int64_t> a(32);
    for (int i = 0; i < 32; ++i)
        a[i] = i * 512;
    EXPECT_EQ(gmem.countSectors(a, 4), 32);
}

TEST(GlobalSectors, DuplicateAddressesCoalesce)
{
    auto spec = GpuSpec::gh200();
    GlobalMemory gmem(spec);
    EXPECT_EQ(gmem.countSectors(addrs({0, 0, 0, 0}), 4), 1);
    EXPECT_EQ(gmem.countSectors(addrs({0, 30}), 4), 2); // straddles
}

TEST(GpuSpecs, Table2Presets)
{
    auto ada = GpuSpec::rtx4090();
    auto hopper = GpuSpec::gh200();
    auto cdna = GpuSpec::mi250();
    EXPECT_EQ(ada.warpSize, 32);
    EXPECT_EQ(cdna.warpSize, 64);
    EXPECT_TRUE(hopper.hasWgmma);
    EXPECT_FALSE(ada.hasWgmma);
    EXPECT_TRUE(ada.hasLdmatrix);
    EXPECT_FALSE(ada.hasStmatrix); // pre-Hopper
    EXPECT_TRUE(hopper.hasStmatrix);
    EXPECT_FALSE(cdna.hasLdmatrix);
    EXPECT_TRUE(hopper.hasTma);
    EXPECT_FALSE(ada.hasTma);
    EXPECT_GT(hopper.sharedMemPerCta, ada.sharedMemPerCta);
}

} // namespace
} // namespace sim
} // namespace ll
