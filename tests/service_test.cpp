/**
 * @file
 * The compilation service's contracts: layout interning canonicalizes
 * structurally equal layouts to one pointer; the sharded plan cache
 * shares immutable plans, evicts LRU, memoizes only deterministic
 * InvalidInput rejections (with a lookup-count TTL), and refuses
 * inserts under fault injection; the engine distinguishes plan-cache
 * hits from its per-run smoke-verdict cache with no double counting;
 * cached plans are bit-identical to freshly planned ones over the
 * whole committed corpus; and the thread-pool batch driver aggregates
 * stats race-free. The ≥8-thread stress test is the TSan target
 * (-DLL_SANITIZE=tsan).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/case_io.h"
#include "check/generators.h"
#include "codegen/conversion.h"
#include "engine/layout_engine.h"
#include "kernels.h"
#include "layout/dims.h"
#include "service/compile_service.h"
#include "service/conversion_service.h"
#include "service/interner.h"
#include "service/plan_cache.h"
#include "service/singleflight.h"
#include "support/failpoint.h"
#include "support/ledger.h"

namespace ll {
namespace {

using check::ConversionCase;

const std::vector<ConversionCase> &
corpus()
{
    static const std::vector<ConversionCase> cases = [] {
        std::vector<std::string> paths;
        for (const auto &e :
             std::filesystem::directory_iterator(LL_CORPUS_DIR)) {
            if (e.path().extension() == ".txt")
                paths.push_back(e.path().string());
        }
        std::sort(paths.begin(), paths.end());
        std::vector<ConversionCase> out;
        for (const auto &p : paths)
            out.push_back(check::readCaseFile(p));
        return out;
    }();
    return cases;
}

LinearLayout
regLayout(int size)
{
    return LinearLayout::identity1D(size, dims::kReg, "dim0");
}

struct CleanFailpoints : ::testing::Test
{
    void SetUp() override { failpoint::clearAll(); }
    void TearDown() override { failpoint::clearAll(); }
};

using InternerTest = ::testing::Test;
using PlanCacheTest = CleanFailpoints;
using ServiceTest = CleanFailpoints;

TEST(InternerTest, StructurallyEqualLayoutsShareOneCanonicalObject)
{
    service::LayoutInterner interner;
    auto a = regLayout(8);
    auto b = regLayout(8); // equal, distinct object
    auto c = regLayout(16);

    service::LayoutRef ra = interner.intern(a);
    service::LayoutRef rb = interner.intern(b);
    service::LayoutRef rc = interner.intern(c);

    EXPECT_EQ(ra, rb);
    EXPECT_NE(ra, rc);
    EXPECT_NE(ra, &a); // canonical copy, not the caller's object
    EXPECT_EQ(*ra, a); // structurally identical
    EXPECT_EQ(interner.size(), 2);
    auto stats = interner.stats();
    EXPECT_EQ(stats.misses, 2);
    EXPECT_EQ(stats.hits, 1);
}

TEST(InternerTest, StructuralHashAgreesWithEquality)
{
    // Equal layouts must hash equal (the interner's bucket invariant);
    // and the hash must see every component equality sees.
    EXPECT_EQ(regLayout(8).structuralHash(),
              regLayout(8).structuralHash());
    EXPECT_NE(regLayout(8).structuralHash(),
              regLayout(16).structuralHash());
    EXPECT_NE(
        regLayout(8).structuralHash(),
        LinearLayout::identity1D(8, dims::kLane, "dim0").structuralHash());
    for (const auto &c : corpus()) {
        LinearLayout copy = c.src;
        EXPECT_EQ(c.src.structuralHash(), copy.structuralHash());
    }
}

TEST(InternerTest, CorpusLayoutsInternToDistinctStableRefs)
{
    service::LayoutInterner interner;
    std::vector<service::LayoutRef> first;
    for (const auto &c : corpus())
        first.push_back(interner.intern(c.src));
    // Re-interning returns the same pointers: handles are stable, and
    // pointer equality is layout equality.
    for (size_t i = 0; i < corpus().size(); ++i)
        EXPECT_EQ(interner.intern(corpus()[i].src), first[i]);
}

TEST_F(PlanCacheTest, HitSharesTheInsertedPlanObject)
{
    service::PlanCache cache;
    const auto spec = sim::GpuSpec::gh200();
    const auto &c = corpus().front();
    auto key = cache.key(c.src, c.dst, c.elemBytes, spec);

    EXPECT_FALSE(cache.lookup(key).has_value());
    auto plan = std::make_shared<const codegen::ConversionPlan>();
    ASSERT_TRUE(cache.insert(key, plan));
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->negative());
    EXPECT_EQ(hit->plan.get(), plan.get()); // same object, no copy

    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.inserts, 1);
    EXPECT_EQ(cache.size(), 1);
}

TEST_F(PlanCacheTest, KeysAreCanonicalAcrossEqualLayoutCopies)
{
    service::PlanCache cache;
    const auto spec = sim::GpuSpec::gh200();
    const auto &c = corpus().front();
    LinearLayout srcCopy = c.src;
    LinearLayout dstCopy = c.dst;
    auto k1 = cache.key(c.src, c.dst, c.elemBytes, spec);
    auto k2 = cache.key(srcCopy, dstCopy, c.elemBytes, spec);
    EXPECT_TRUE(k1 == k2);
    // Same endpoints, different width or spec: different key.
    auto k3 = cache.key(c.src, c.dst, c.elemBytes * 2, spec);
    EXPECT_FALSE(k1 == k3);
    auto k4 =
        cache.key(c.src, c.dst, c.elemBytes, sim::GpuSpec::rtx4090());
    EXPECT_FALSE(k1 == k4);
}

TEST_F(PlanCacheTest, LruEvictionDropsTheColdestEntry)
{
    service::PlanCache::Config config;
    config.capacity = 2;
    config.shards = 1; // deterministic: one LRU list
    service::PlanCache cache(config);
    const auto spec = sim::GpuSpec::gh200();

    auto keyFor = [&](int size) {
        return cache.key(regLayout(size), regLayout(size), 4, spec);
    };
    ASSERT_TRUE(cache.insert(keyFor(2), codegen::ConversionPlan{}));
    ASSERT_TRUE(cache.insert(keyFor(4), codegen::ConversionPlan{}));
    // Touch the first entry so the second is now coldest.
    EXPECT_TRUE(cache.lookup(keyFor(2)).has_value());
    ASSERT_TRUE(cache.insert(keyFor(8), codegen::ConversionPlan{}));

    EXPECT_EQ(cache.size(), 2);
    EXPECT_TRUE(cache.lookup(keyFor(2)).has_value());
    EXPECT_FALSE(cache.lookup(keyFor(4)).has_value()); // evicted
    EXPECT_TRUE(cache.lookup(keyFor(8)).has_value());
    EXPECT_EQ(cache.stats().evictions, 1);
}

TEST_F(PlanCacheTest, OnlyInvalidInputRejectionsAreMemoized)
{
    service::PlanCache::Config config;
    config.negativeTtlLookups = 100;
    service::PlanCache cache(config);
    const auto spec = sim::GpuSpec::gh200();
    auto key = cache.key(regLayout(2), regLayout(4), 4, spec);

    // Non-deterministic failure codes are never cached.
    EXPECT_FALSE(cache.insertRejection(
        key, makeDiag(DiagCode::FailpointInjected, "t", "injected")));
    EXPECT_FALSE(cache.insertRejection(
        key, makeDiag(DiagCode::PlannerInternalError, "t", "boom")));
    EXPECT_FALSE(cache.lookup(key).has_value());

    ASSERT_TRUE(cache.insertRejection(
        key, makeDiag(DiagCode::InvalidInput, "t", "bad width")));
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->negative());
    EXPECT_EQ(hit->rejection->code, DiagCode::InvalidInput);
    auto stats = cache.stats();
    EXPECT_EQ(stats.negativeInserts, 1);
    EXPECT_EQ(stats.negativeHits, 1);
    EXPECT_EQ(stats.insertRefusals, 2);
}

TEST_F(PlanCacheTest, NegativeEntriesExpireAfterTtlLookups)
{
    service::PlanCache::Config config;
    config.shards = 1;
    config.negativeTtlLookups = 3;
    service::PlanCache cache(config);
    const auto spec = sim::GpuSpec::gh200();
    auto key = cache.key(regLayout(2), regLayout(4), 4, spec);
    auto other = cache.key(regLayout(8), regLayout(8), 4, spec);

    ASSERT_TRUE(cache.insertRejection(
        key, makeDiag(DiagCode::InvalidInput, "t", "bad")));
    EXPECT_TRUE(cache.lookup(key).has_value());
    // Age the shard past the TTL with unrelated lookups.
    for (int i = 0; i < 4; ++i)
        (void)cache.lookup(other);
    EXPECT_FALSE(cache.lookup(key).has_value()); // expired
    EXPECT_EQ(cache.stats().negativeExpired, 1);

    // TTL <= 0 disables negative caching outright.
    service::PlanCache::Config off;
    off.negativeTtlLookups = 0;
    service::PlanCache noNeg(off);
    EXPECT_FALSE(noNeg.insertRejection(
        noNeg.key(regLayout(2), regLayout(4), 4, spec),
        makeDiag(DiagCode::InvalidInput, "t", "bad")));
}

TEST_F(PlanCacheTest, PeekIsStatFreeAndTreatsExpiredNegativesAsMisses)
{
    service::PlanCache::Config config;
    config.shards = 1;
    config.negativeTtlLookups = 2;
    service::PlanCache cache(config);
    const auto spec = sim::GpuSpec::gh200();
    auto key = cache.key(regLayout(2), regLayout(4), 4, spec);
    auto other = cache.key(regLayout(8), regLayout(8), 4, spec);

    ASSERT_TRUE(cache.insertRejection(
        key, makeDiag(DiagCode::InvalidInput, "t", "bad")));
    const auto before = cache.stats();
    auto fresh = cache.peek(key);
    ASSERT_TRUE(fresh.has_value());
    EXPECT_TRUE(fresh->negative());
    // peek moved no counters and advanced no lookup generation.
    EXPECT_EQ(cache.stats().lookups(), before.lookups());
    EXPECT_EQ(cache.stats().negativeHits, before.negativeHits);

    // Age the shard past the TTL; the entry is left in place (peek
    // never reaps) but must read as a miss.
    for (int i = 0; i < 3; ++i)
        (void)cache.lookup(other);
    EXPECT_FALSE(cache.peek(key).has_value());
    EXPECT_EQ(cache.stats().negativeExpired, 0); // reaping is lookup's
}

TEST_F(ServiceTest, NegativeEntryExpiringMidFlightDoesNotSuppressPlan)
{
    // The PR-6 TTL edge: a negative entry that expires while a
    // singleflight leader holds the flight must not make the leader's
    // double-check peek() serve the stale rejection — the leader must
    // plan fresh and publish.
    service::PlanCache::Config config;
    config.shards = 1;
    config.negativeTtlLookups = 2;
    service::PlanCache cache(config);
    const auto spec = sim::GpuSpec::gh200();
    const auto src = regLayout(8);
    const auto dst = regLayout(8); // valid conversion (no-op plan)
    const auto key = cache.key(src, dst, 4, spec);
    const auto other = cache.key(regLayout(16), regLayout(16), 4, spec);

    service::Singleflight flights;
    auto result = flights.run(key, [&]() {
        // While the flight is open: a (fabricated) stale rejection
        // lands under our key, then ages past its TTL.
        EXPECT_TRUE(cache.insertRejection(
            key, makeDiag(DiagCode::InvalidInput, "t", "stale")));
        for (int i = 0; i < 3; ++i)
            (void)cache.lookup(other);
        // The leader's double-check must read the expired negative as
        // a miss and fall through to fresh planning.
        EXPECT_FALSE(cache.peek(key).has_value());
        return service::planAndPublish(&cache, &key, src, dst, 4,
                                       spec);
    });
    ASSERT_TRUE(result.outcome.planned()) << result.outcome.error;
    EXPECT_FALSE(result.outcome.fromCache);

    // The fresh plan displaced the expired rejection.
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->negative());
}

TEST_F(PlanCacheTest, PositiveEntryIsNeverDisplacedByARejection)
{
    service::PlanCache cache;
    const auto spec = sim::GpuSpec::gh200();
    auto key = cache.key(regLayout(4), regLayout(4), 4, spec);
    ASSERT_TRUE(cache.insert(key, codegen::ConversionPlan{}));
    EXPECT_FALSE(cache.insertRejection(
        key, makeDiag(DiagCode::InvalidInput, "t", "late rejection")));
    auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->negative());
}

TEST_F(PlanCacheTest, InsertsAreRefusedWhileAnyFailpointIsActive)
{
    service::PlanCache cache;
    const auto spec = sim::GpuSpec::gh200();
    auto key = cache.key(regLayout(4), regLayout(4), 4, spec);

    {
        failpoint::ScopedSet guard({"fp.cache.global"});
        EXPECT_FALSE(cache.insert(key, codegen::ConversionPlan{}));
        EXPECT_FALSE(cache.insertRejection(
            key, makeDiag(DiagCode::InvalidInput, "t", "bad")));
    }
    {
        failpoint::ScopedThreadLocal guard({"fp.cache.local"});
        EXPECT_FALSE(cache.insert(key, codegen::ConversionPlan{}));
    }
    EXPECT_EQ(cache.stats().insertRefusals, 3);
    EXPECT_EQ(cache.size(), 0);

    // A plan *shaped* by a failpoint (drained limit-N activation) is
    // refused even with nothing active anymore.
    codegen::ConversionPlan shaped;
    shaped.diagnostics.note(DiagCode::FailpointInjected, "plan.noop",
                            "injected during planning");
    EXPECT_FALSE(cache.insert(key, std::move(shaped)));
    // With no failpoint anywhere, the same insert goes through.
    EXPECT_TRUE(cache.insert(key, codegen::ConversionPlan{}));
}

TEST_F(ServiceTest, ServeConversionPlansOnceThenServesTheSharedPlan)
{
    service::PlanCache cache;
    const auto &c = corpus().front();
    const auto spec = c.spec();

    auto first =
        service::serveConversion(&cache, c.src, c.dst, c.elemBytes, spec);
    ASSERT_TRUE(first.planned()) << first.error;
    EXPECT_FALSE(first.fromCache);

    auto second =
        service::serveConversion(&cache, c.src, c.dst, c.elemBytes, spec);
    ASSERT_TRUE(second.planned());
    EXPECT_TRUE(second.fromCache);
    // The same immutable plan object, not a copy.
    EXPECT_EQ(second.plan.get(), first.plan.get());

    // Cacheless baseline plans fresh every time.
    auto fresh = service::serveConversion(nullptr, c.src, c.dst,
                                          c.elemBytes, spec);
    ASSERT_TRUE(fresh.planned());
    EXPECT_FALSE(fresh.fromCache);
    EXPECT_NE(fresh.plan.get(), first.plan.get());
}

// Over the whole committed corpus: the plan served from the cache must
// be indistinguishable — same detailed rendering, same modeled cost —
// from one planned fresh, so cache placement can never change codegen.
TEST_F(ServiceTest, CachedPlansAreBitIdenticalToFreshOnes)
{
    service::PlanCache cache;
    for (const auto &c : corpus()) {
        const auto spec = c.spec();
        auto warm = service::serveConversion(&cache, c.src, c.dst,
                                             c.elemBytes, spec);
        auto cached = service::serveConversion(&cache, c.src, c.dst,
                                               c.elemBytes, spec);
        auto fresh =
            codegen::tryPlanConversion(c.src, c.dst, c.elemBytes, spec);
        ASSERT_TRUE(warm.planned()) << c.summary << ": " << warm.error;
        ASSERT_TRUE(cached.fromCache) << c.summary;
        ASSERT_TRUE(fresh.ok()) << c.summary;
        EXPECT_EQ(codegen::describePlan(*cached.plan),
                  codegen::describePlan(*fresh))
            << c.summary;
        EXPECT_EQ(cached.plan->estimateCycles(c.src, c.elemBytes, spec),
                  fresh->estimateCycles(c.src, c.elemBytes, spec))
            << c.summary;
    }
}

// ≥8 threads hammer one interner and one deliberately tiny plan cache
// with overlapping keys, so lookups, inserts, LRU splices, and
// evictions collide constantly. Run under -DLL_SANITIZE=tsan this is
// the service's data-race proof; the functional assertions are
// liveness and conservation of the stats ledgers.
TEST_F(ServiceTest, StressInternerAndCacheUnderConcurrentEviction)
{
    constexpr int kThreads = 8;
    constexpr int kIters = 400;
    constexpr int kKeys = 12;

    service::LayoutInterner interner;
    service::PlanCache::Config config;
    config.capacity = 4; // far fewer slots than hot keys
    config.shards = 2;
    config.negativeTtlLookups = 16;
    config.interner = &interner;
    service::PlanCache cache(config);
    const auto spec = sim::GpuSpec::gh200();

    std::atomic<int64_t> hits{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const int which = (t + i) % kKeys;
                LinearLayout l = regLayout(1 << (which % 5));
                auto key = cache.key(l, regLayout(1 << (which % 4)),
                                     1 << (which % 3), spec);
                if (auto hit = cache.lookup(key)) {
                    if (!hit->negative() && hit->plan)
                        hits.fetch_add(1, std::memory_order_relaxed);
                } else if (which % 3 == 0) {
                    (void)cache.insertRejection(
                        key, makeDiag(DiagCode::InvalidInput, "stress",
                                      "synthetic"));
                } else {
                    (void)cache.insert(key,
                                       codegen::ConversionPlan{});
                }
                (void)interner.intern(l);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    auto stats = cache.stats();
    EXPECT_EQ(stats.lookups(), kThreads * kIters);
    EXPECT_GT(stats.evictions, 0); // capacity 4 really did churn
    EXPECT_GT(hits.load(), 0);
    EXPECT_LE(cache.size(), 4);
    // Interning the same handful of layouts from 8 threads produced
    // one canonical object per distinct layout, not one per thread.
    EXPECT_LE(interner.size(), 5 + kKeys);
}

// The engine's two caches must stay distinguishable: a shared-plan-
// cache hit skips planning and smoke execution entirely (and never
// touches the per-run smoke-verdict cache), so a second engine run
// over the same kernel serves every conversion from the plan cache
// with zero smoke-cache hits — no double counting anywhere.
TEST_F(ServiceTest, EngineDistinguishesPlanCacheFromSmokeCache)
{
    auto suite = kernels::allKernels();
    ASSERT_FALSE(suite.empty());
    // Pick a kernel that actually plans conversions.
    const kernels::KernelSpec *pick = nullptr;
    engine::EngineStats base;
    for (const auto &spec : suite) {
        auto f = spec.build(spec.sizes.front());
        engine::LayoutEngine eng{engine::EngineOptions{}};
        base = eng.run(f);
        if (base.convertsPlanned > 0) {
            pick = &spec;
            break;
        }
    }
    ASSERT_NE(pick, nullptr) << "no kernel plans any conversion";
    EXPECT_EQ(base.planCacheHits, 0);
    EXPECT_EQ(base.planCacheMisses, 0); // no cache configured

    service::PlanCache cache;
    engine::EngineOptions options;
    options.planCache = &cache;

    auto f1 = pick->build(pick->sizes.front());
    engine::LayoutEngine cold{options};
    auto run1 = cold.run(f1);
    EXPECT_EQ(run1.convertsPlanned, base.convertsPlanned);
    EXPECT_GT(run1.planCacheMisses, 0);
    // Every planned op consulted the cache exactly once (hit or miss).
    EXPECT_GE(run1.planCacheHits + run1.planCacheMisses,
              run1.convertsPlanned);

    auto f2 = pick->build(pick->sizes.front());
    engine::LayoutEngine warm{options};
    auto run2 = warm.run(f2);
    EXPECT_EQ(run2.convertsPlanned, run1.convertsPlanned);
    EXPECT_EQ(run2.planCacheHits, run1.convertsPlanned);
    EXPECT_EQ(run2.planCacheMisses, 0);
    EXPECT_EQ(run2.smokeCacheHits, 0); // plan-cache hits preempt it
    // The mirrored metric families stay separate too.
    EXPECT_EQ(run2.metrics.count("engine.smoke.cache_hits"), 0u);
    EXPECT_GT(run2.metrics.at("engine.plan_cache_hits"), 0);

    // And the lowering is unchanged by cache placement: same tags.
    std::vector<std::string> tags1, tags2;
    for (int i = 0; i < f1.numOps(); ++i)
        if (!f1.op(i).erased)
            tags1.push_back(f1.op(i).tag);
    for (int i = 0; i < f2.numOps(); ++i)
        if (!f2.op(i).erased)
            tags2.push_back(f2.op(i).tag);
    EXPECT_EQ(tags1, tags2);
}

TEST_F(ServiceTest, BatchDriverAggregatesExactlyThePerResponseStats)
{
    service::PlanCache cache;
    std::vector<service::CompileRequest> requests;
    // Conversion requests: every corpus case, twice (the second pass
    // must hit the cache).
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto &c : corpus()) {
            auto conv = std::make_shared<service::ConversionRequest>();
            conv->src = c.src;
            conv->dst = c.dst;
            conv->elemBytes = c.elemBytes;
            conv->spec = c.spec();
            service::CompileRequest req;
            req.name = c.summary;
            req.conversion = std::move(conv);
            requests.push_back(std::move(req));
        }
    }
    // Plus one whole-kernel compilation through the same cache.
    auto suite = kernels::allKernels();
    service::CompileRequest kernelReq;
    kernelReq.name = "kernel:" + suite.front().name;
    kernelReq.build = [build = suite.front().build,
                       size = suite.front().sizes.front()]() {
        return build(size);
    };
    requests.push_back(std::move(kernelReq));

    service::CompileService::Options options;
    options.threads = 4;
    options.cache = &cache;
    service::CompileService svc{options};
    auto report = svc.run(requests);

    EXPECT_EQ(report.requests,
              static_cast<int64_t>(requests.size()));
    EXPECT_EQ(report.responses.size(), requests.size());
    std::string failureText;
    for (const auto &r : report.responses)
        if (!r.ok)
            failureText += r.name + ": " + r.error + "\n";
    EXPECT_EQ(report.failures, 0) << failureText;
    EXPECT_GE(report.wallMs, 0.0);
    EXPECT_GE(report.p90LatencyUs, report.p50LatencyUs);

    // The totals are exactly the sum of the per-response stats — the
    // race-free-aggregation contract.
    engine::EngineStats sum;
    for (const auto &resp : report.responses)
        service::accumulateStats(sum, resp.stats);
    EXPECT_EQ(report.totals.convertsPlanned, sum.convertsPlanned);
    EXPECT_EQ(report.totals.planCacheHits, sum.planCacheHits);
    EXPECT_EQ(report.totals.planCacheMisses, sum.planCacheMisses);
    EXPECT_EQ(report.totals.planFailures, sum.planFailures);
    EXPECT_EQ(report.totals.execFailures, sum.execFailures);
    EXPECT_EQ(report.totals.planDiagnostics.size(),
              sum.planDiagnostics.size());

    // Every second-pass conversion hit: at least one hit per corpus
    // case, and every case was looked up at least twice.
    EXPECT_GE(report.totals.planCacheHits,
              static_cast<int>(corpus().size()));
    auto cs = cache.stats();
    EXPECT_GE(cs.lookups(),
              static_cast<int64_t>(2 * corpus().size()));
}

TEST_F(ServiceTest, LedgerAttributesEachConversionOnceAcrossThreads)
{
    // The calibration ledger's service-side attribution contract:
    // a coalesced 8-thread run over a repeated stream — where
    // singleflight leaders are the only planners and repeat passes are
    // served from the cache — must record each distinct conversion
    // exactly once, and the sorted export must match a plain
    // single-threaded planner replay byte for byte.
    auto &ledger = ledger::Ledger::instance();
    ledger.clear();
    ledger.setEnabled(true);
    std::vector<std::string> direct;
    for (const auto &c : corpus()) {
        auto spec = c.spec();
        auto plan =
            codegen::tryPlanConversion(c.src, c.dst, c.elemBytes, spec);
        ASSERT_TRUE(plan.ok());
    }
    direct = ledger.sortedLines();
    ledger.clear();

    service::PlanCache cache;
    std::vector<service::CompileRequest> requests;
    for (int pass = 0; pass < 3; ++pass) {
        for (const auto &c : corpus()) {
            auto conv = std::make_shared<service::ConversionRequest>();
            conv->src = c.src;
            conv->dst = c.dst;
            conv->elemBytes = c.elemBytes;
            conv->spec = c.spec();
            service::CompileRequest req;
            req.name = c.summary;
            req.conversion = std::move(conv);
            requests.push_back(std::move(req));
        }
    }
    service::CompileService::Options options;
    options.threads = 8;
    options.cache = &cache;
    service::CompileService svc{options};
    auto report = svc.run(requests);
    ledger.setEnabled(false);
    EXPECT_EQ(report.failures, 0);

    EXPECT_EQ(ledger.conversionCount(),
              static_cast<int64_t>(corpus().size()));
    EXPECT_EQ(ledger.sortedLines(), direct);
    ledger.clear();
}

} // namespace
} // namespace ll
