/**
 * @file
 * Execution-triggered demotion: every executor failure path, forced via
 * the exec.* failpoint sites, must push the planner one rung down the
 * ladder and leave a demoted plan that still round-trips bit-exactly
 * under the oracle, at a modeled cost no lower than the plan it
 * replaced. Also covers the CTA-budget gate (an oversized tensor demotes
 * to a windowed scalar plan instead of raising UserError), the padding
 * search regression pins, and the engine-level execFallbacks /
 * execFailures accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "check/case_io.h"
#include "check/generators.h"
#include "check/oracle.h"
#include "codegen/conversion.h"
#include "codegen/gather.h"
#include "engine/layout_engine.h"
#include "ir/function.h"
#include "layout/dims.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "triton/encodings.h"

namespace ll {
namespace {

using check::ConversionCase;
using check::DemotionReport;
using codegen::ConversionKind;

struct CorpusEntry
{
    std::string file; ///< basename, for failure messages
    ConversionCase c;
};

const std::vector<CorpusEntry> &
corpus()
{
    static const std::vector<CorpusEntry> entries = [] {
        std::vector<std::string> paths;
        for (const auto &e :
             std::filesystem::directory_iterator(LL_CORPUS_DIR)) {
            if (e.path().extension() == ".txt")
                paths.push_back(e.path().string());
        }
        std::sort(paths.begin(), paths.end());
        std::vector<CorpusEntry> out;
        for (const auto &p : paths) {
            out.push_back({std::filesystem::path(p).filename().string(),
                           check::readCaseFile(p)});
        }
        return out;
    }();
    return entries;
}

LinearLayout
blocked(const triton::Shape &spt, const triton::Shape &tpw,
        const triton::Shape &wpc, const std::vector<int32_t> &order,
        const triton::Shape &shape)
{
    triton::BlockedEncoding enc;
    enc.sizePerThread = spt;
    enc.threadsPerWarp = tpw;
    enc.warpsPerCta = wpc;
    enc.order = order;
    return enc.toLinearLayout(shape);
}

std::vector<std::string>
forceShared()
{
    return {"plan.noop", "plan.register-permute", "plan.warp-shuffle"};
}

codegen::ConversionPlan
planWith(const ConversionCase &c, const std::vector<std::string> &sites)
{
    failpoint::ScopedSet guard(sites);
    return codegen::planConversion(c.src, c.dst, c.elemBytes, c.spec());
}

/** A conversion that plans to WarpShuffle on gh200 (verified by the
 *  codegen tests): same warp tiling, different thread/register split. */
ConversionCase
shuffleCase()
{
    ConversionCase c;
    c.src = blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {16, 64});
    c.dst = blocked({4, 1}, {2, 16}, {2, 2}, {1, 0}, {16, 64});
    c.elemBytes = 2;
    c.summary = "deterministic warp-shuffle conversion";
    return c;
}

int
rung(ConversionKind k)
{
    return static_cast<int>(k);
}

TEST(ExecFallback, SitePoolIsCompleteAndDisjointFromPlannerSites)
{
    auto exec = codegen::executionFailpointSites();
    EXPECT_EQ(exec.size(), 10u);
    auto planner = codegen::plannerFailpointSites();
    for (const auto &s : exec) {
        EXPECT_EQ(s.rfind("exec.", 0), 0u) << s;
        EXPECT_EQ(std::count(exec.begin(), exec.end(), s), 1) << s;
        EXPECT_EQ(std::count(planner.begin(), planner.end(), s), 0) << s;
    }
}

// Cumulative knockout sets: each demotion step disables strictly more
// rungs, so the engine's demotion loop must terminate; the terminal
// scalar rung has nowhere left to go.
TEST(ExecFallback, DemotionSitesGrowStrictlyDownTheLadder)
{
    const ConversionKind ladder[] = {
        ConversionKind::NoOp,          ConversionKind::RegisterPermute,
        ConversionKind::WarpShuffle,   ConversionKind::SharedMemory,
        ConversionKind::SharedPadded,
    };
    size_t prev = 0;
    for (ConversionKind k : ladder) {
        auto sites = codegen::demotionSitesFor(k);
        EXPECT_GT(sites.size(), prev) << toString(k);
        prev = sites.size();
    }
    EXPECT_TRUE(codegen::demotionSitesFor(ConversionKind::SharedScalar)
                    .empty());
}

// Each exec.shared.* site, forced for exactly one execution over every
// corpus case (driven onto the shared rung), must trigger exactly one
// demotion whose surviving plan is strictly lower on the ladder,
// oracle-clean, and no cheaper than the plan it replaced. A case whose
// forced plan already sits on the terminal scalar rung must fail
// terminally instead — the designed engine-failure outcome.
TEST(ExecFallback, SharedExecSitesDemoteBitExactOverCorpus)
{
    const std::vector<std::string> sites = {
        "exec.shared.file-size", "exec.shared.alloc",
        "exec.shared.window", "exec.shared.bank-budget"};
    for (const auto &site : sites) {
        int fired = 0;
        for (const auto &e : corpus()) {
            ConversionCase c = e.c;
            c.failpoints = forceShared();
            auto original = planWith(c, c.failpoints);

            failpoint::activate(site, 1);
            DemotionReport dr = check::checkCaseWithDemotion(c);
            failpoint::deactivate(site);

            EXPECT_EQ(dr.initialKind, original.kind) << e.file;
            if (dr.initialKind == ConversionKind::SharedScalar) {
                EXPECT_FALSE(dr.survived) << e.file << " with " << site;
                continue;
            }
            ++fired;
            EXPECT_TRUE(dr.survived) << e.file << " with " << site;
            EXPECT_EQ(dr.demotions, 1) << e.file << " with " << site;
            EXPECT_GT(rung(dr.finalKind), rung(dr.initialKind))
                << e.file << ": " << toString(dr.initialKind) << " -> "
                << toString(dr.finalKind);
            EXPECT_TRUE(dr.report.ok())
                << e.file << " with " << site << ": "
                << dr.report.toString();

            // Demotion may only raise the modeled cost (the original
            // rung was preferred for a reason).
            auto demoted =
                planWith(c, codegen::demotionSitesFor(original.kind));
            const auto spec = c.spec();
            EXPECT_LE(original.estimateCycles(c.src, c.elemBytes, spec),
                      demoted.estimateCycles(c.src, c.elemBytes, spec))
                << e.file << ": " << toString(original.kind) << " vs "
                << toString(demoted.kind);
        }
        EXPECT_GE(fired, 1) << site << " never reached a demotable plan";
    }
}

// The exec.shuffle.* sites, forced on a conversion that plans to the
// shuffle rung, demote it onto a shared rung that still routes every
// element correctly.
TEST(ExecFallback, ShuffleExecSitesDemoteToOracleCleanSharedPlan)
{
    const std::vector<std::string> sites = {
        "exec.shuffle.shape", "exec.shuffle.lane-range",
        "exec.shuffle.reg-range"};
    ConversionCase c = shuffleCase();
    {
        auto plan = planWith(c, {});
        ASSERT_EQ(plan.kind, ConversionKind::WarpShuffle)
            << "fixture no longer plans to the shuffle rung";
    }
    for (const auto &site : sites) {
        failpoint::activate(site, 1);
        DemotionReport dr = check::checkCaseWithDemotion(c);
        failpoint::deactivate(site);

        EXPECT_EQ(dr.initialKind, ConversionKind::WarpShuffle) << site;
        EXPECT_TRUE(dr.survived) << site;
        EXPECT_EQ(dr.demotions, 1) << site;
        EXPECT_GT(rung(dr.finalKind), rung(ConversionKind::WarpShuffle))
            << site << ": demoted to " << toString(dr.finalKind);
        EXPECT_TRUE(dr.report.ok()) << site << ": "
                                    << dr.report.toString();
    }

    // Demotion invariants must also hold wherever a shuffle plan occurs
    // naturally in the corpus.
    for (const auto &site : sites) {
        for (const auto &e : corpus()) {
            if (planWith(e.c, {}).kind != ConversionKind::WarpShuffle)
                continue;
            failpoint::activate(site, 1);
            DemotionReport dr = check::checkCaseWithDemotion(e.c);
            failpoint::deactivate(site);
            EXPECT_TRUE(dr.survived) << e.file << " with " << site;
            EXPECT_EQ(dr.demotions, 1) << e.file << " with " << site;
            EXPECT_TRUE(dr.report.ok())
                << e.file << " with " << site << ": "
                << dr.report.toString();
        }
    }
}

// Demotion must resume the ladder strictly below the failed rung
// instead of re-walking it from the top: a forced mid-ladder execution
// failure leaves the rungs at or above the failure evaluated exactly
// once (by the initial plan), while the demoted re-plan starts at the
// rung below. Counted via the plan.rung.*.evaluated metrics.
TEST(ExecFallback, DemotedReplanResumesBelowFailedRung)
{
    ConversionCase c = shuffleCase();
    {
        auto plan = planWith(c, {});
        ASSERT_EQ(plan.kind, ConversionKind::WarpShuffle)
            << "fixture no longer plans to the shuffle rung";
    }
    auto &reg = metrics::Registry::instance();
    auto at = [](const std::map<std::string, int64_t> &snap,
                 const std::string &name) {
        auto it = snap.find(name);
        return it == snap.end() ? int64_t(0) : it->second;
    };
    const auto before = reg.counterSnapshot();

    failpoint::activate("exec.shuffle.shape", 1);
    DemotionReport dr = check::checkCaseWithDemotion(c);
    failpoint::deactivate("exec.shuffle.shape");
    ASSERT_TRUE(dr.survived);
    ASSERT_EQ(dr.demotions, 1);
    EXPECT_GT(rung(dr.finalKind), rung(ConversionKind::WarpShuffle));

    const auto after = reg.counterSnapshot();
    auto delta = [&](const std::string &name) {
        return at(after, name) - at(before, name);
    };
    // The initial plan walks rungs 1-3 exactly once; the demoted
    // re-plan resumes at rung 4 and never revisits them.
    EXPECT_EQ(delta("plan.rung.noop.evaluated"), 1);
    EXPECT_EQ(delta("plan.rung.register-permute.evaluated"), 1);
    EXPECT_EQ(delta("plan.rung.warp-shuffle.evaluated"), 1);
    EXPECT_GE(delta("plan.rung.shared-memory.evaluated"), 1);
    EXPECT_EQ(delta("plan.replans"), 1);
}

// The gather executor is not part of the conversion ladder, so its
// error paths are proven reachable directly: each forced site must fail
// that one execution with a structured ExecDiagnostic naming the site,
// and the immediately following clean run must succeed.
TEST(ExecFallback, GatherExecSitesFailOnceThenRecover)
{
    auto spec = sim::GpuSpec::gh200();
    auto layout = blocked({1, 8}, {32, 1}, {1, 1}, {1, 0}, {32, 8});
    auto plan = codegen::planGather(layout, 1, spec);
    ASSERT_TRUE(plan.has_value());

    std::vector<std::vector<uint64_t>> regs(
        static_cast<size_t>(plan->warpSize));
    std::vector<std::vector<int32_t>> idx(
        static_cast<size_t>(plan->warpSize));
    for (int lane = 0; lane < plan->warpSize; ++lane) {
        for (int reg = 0; reg < plan->numRegs; ++reg) {
            regs[static_cast<size_t>(lane)].push_back(
                static_cast<uint64_t>(lane * plan->numRegs + reg));
            idx[static_cast<size_t>(lane)].push_back(reg);
        }
    }

    for (const std::string site : {"exec.gather.invert",
                                   "exec.gather.index-range",
                                   "exec.gather.cross-warp"}) {
        failpoint::activate(site, 1);
        auto forced = codegen::executeGather(*plan, layout, 0, regs, idx);
        failpoint::deactivate(site);
        ASSERT_FALSE(forced.ok()) << site << " did not fire";
        EXPECT_EQ(forced.diag().stage, site);

        auto clean = codegen::executeGather(*plan, layout, 0, regs, idx);
        ASSERT_TRUE(clean.ok())
            << site << ": " << clean.diag().toString();
        // Identity index tensor: the gather must reproduce the input.
        for (int lane = 0; lane < plan->warpSize; ++lane) {
            for (int reg = 0; reg < plan->numRegs; ++reg) {
                EXPECT_EQ((*clean)[static_cast<size_t>(lane)]
                                  [static_cast<size_t>(reg)],
                          regs[static_cast<size_t>(lane)]
                              [static_cast<size_t>(reg)])
                    << site << " lane " << lane << " reg " << reg;
            }
        }
    }
}

// ----------------------------------------------------------------------
// CTA budget (satellite: oversized tensors demote, not abort)
// ----------------------------------------------------------------------

// 256 x 256 x f32 = 256 KiB exceeds the GH200 CTA budget (228 KiB), so
// every flat shared candidate is gated by DiagCode::CtaBudgetExceeded
// and the planner must land on the windowed scalar rung — still a total
// function, still bit-exact under the oracle.
TEST(ExecFallback, OversizedTensorDemotesToWindowedScalar)
{
    auto spec = sim::GpuSpec::gh200();
    auto src = blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {256, 256});
    auto dst = blocked({4, 1}, {4, 8}, {2, 2}, {0, 1}, {256, 256});
    const int elemBytes = 4;

    auto plan = codegen::tryPlanConversion(src, dst, elemBytes, spec);
    ASSERT_TRUE(plan.ok()) << plan.diag().toString();
    EXPECT_EQ(plan->kind, ConversionKind::SharedScalar);
    ASSERT_TRUE(plan->shared.has_value());
    EXPECT_TRUE(plan->shared->windowed());
    EXPECT_LE(plan->shared->allocElems(src.getTotalOutDimSize()) *
                  elemBytes,
              static_cast<int64_t>(spec.sharedMemPerCta));
    EXPECT_GE(plan->shared->passesFor(src.getTotalOutDimSize()), 2);

    bool sawBudgetDiag = false;
    for (const auto &n : plan->diagnostics.notes)
        sawBudgetDiag |= n.code == DiagCode::CtaBudgetExceeded;
    EXPECT_TRUE(sawBudgetDiag) << plan->diagnostics.toString();

    // The multi-pass execution must still route every element and keep
    // its wavefront totals honest (Lemma 9.4's per-access audit is
    // unavailable for windowed plans; the totals audit covers them).
    auto report = check::checkPlan(*plan, src, dst, elemBytes, spec);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_FALSE(report.audited);
    EXPECT_TRUE(report.totalsAudited);
    EXPECT_FALSE(report.totalsDiverge());
}

// ----------------------------------------------------------------------
// Padding search regression (satellite: pinned (interval, pad) pairs)
// ----------------------------------------------------------------------

// The padded rung searches a small (padInterval, padElems) family and
// keeps the wavefront-cheapest pair that fits. Pin the chosen pair for
// two corpus cases — one scalar-vectorization case and one where the
// pad must stay a multiple of an 8-wide vectorization — so a cost-model
// or search-order change shows up as an explicit diff here.
TEST(ExecFallback, PaddingSearchPinsChosenPairOnCorpusCases)
{
    auto forcePadded = forceShared();
    forcePadded.push_back("plan.optimal-swizzle");
    forcePadded.push_back("plan.legacy-swizzle");

    struct Pin
    {
        const char *file;
        int64_t interval, pad;
        int vec;
    };
    const Pin pins[] = {
        {"seed3_case16.txt", 64, 4, 1},
        {"seed3_case29.txt", 32, 8, 8},
    };
    for (const auto &pin : pins) {
        const CorpusEntry *entry = nullptr;
        for (const auto &e : corpus())
            if (e.file == pin.file)
                entry = &e;
        ASSERT_NE(entry, nullptr) << pin.file << " missing from corpus";

        auto plan = planWith(entry->c, forcePadded);
        ASSERT_EQ(plan.kind, ConversionKind::SharedPadded) << pin.file;
        ASSERT_TRUE(plan.shared.has_value()) << pin.file;
        EXPECT_TRUE(plan.shared->padded()) << pin.file;
        EXPECT_EQ(plan.shared->padInterval, pin.interval) << pin.file;
        EXPECT_EQ(plan.shared->padElems, pin.pad) << pin.file;
        EXPECT_EQ(plan.shared->vecElems(), pin.vec) << pin.file;
        // Padding stays vec-aligned so access windows never straddle a
        // pad gap.
        EXPECT_EQ(plan.shared->padInterval % plan.shared->vecElems(), 0)
            << pin.file;
        EXPECT_EQ(plan.shared->padElems % plan.shared->vecElems(), 0)
            << pin.file;
    }
}

// ----------------------------------------------------------------------
// Engine-level accounting
// ----------------------------------------------------------------------

ir::Function
gemmFunction()
{
    ir::Function f("gemm");
    int a = f.load({ir::DType::F16, {64, 64}});
    int b = f.load({ir::DType::F16, {64, 64}});
    int c = f.dot(a, b, ir::DType::F32);
    f.store(c);
    return f;
}

// One transient execution failure (a single forced shot) must cost the
// engine exactly one demotion — counted in execFallbacks — while every
// conversion still gets a concrete plan tag and run() never throws.
TEST(ExecFallback, EngineDemotesOnceOnTransientExecutionFailure)
{
    // The gemm fixture plans shared-memory conversions when healthy, so
    // the shared executor's first guard is the deterministic target.
    failpoint::activate("exec.shared.file-size", 1);
    auto f = gemmFunction();
    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    engine::EngineStats stats;
    EXPECT_NO_THROW(stats = eng.run(f));
    failpoint::deactivate("exec.shared.file-size");

    EXPECT_EQ(stats.execFallbacks, 1);
    EXPECT_EQ(stats.execFailures, 0);
    EXPECT_GE(stats.convertsPlanned, 1);
    bool sawDemoted = false;
    for (int i = 0; i < f.numOps(); ++i) {
        const auto &tag = f.op(i).tag;
        EXPECT_EQ(tag.find("convert:unplanned"), std::string::npos)
            << tag;
        auto pos = tag.find("convert:");
        if (pos == std::string::npos)
            continue;
        auto kind = codegen::parseConversionKind(tag.substr(pos + 8));
        ASSERT_TRUE(kind.has_value()) << tag;
        sawDemoted |= *kind == ConversionKind::SharedPadded ||
                      *kind == ConversionKind::SharedScalar;
    }
    EXPECT_TRUE(sawDemoted)
        << "no conversion tag records the demoted rung";
}

// A persistent executor outage (every shared execution failing,
// including the terminal scalar rung's) must exhaust the ladder: the
// conversion is downgraded to convert:unplanned, execFailures counts
// it, and the engine still completes.
TEST(ExecFallback, EngineSurvivesPersistentExecutionFailure)
{
    failpoint::ScopedSet guard({"exec.shared.file-size"});
    auto f = gemmFunction();
    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    engine::EngineStats stats;
    EXPECT_NO_THROW(stats = eng.run(f));

    EXPECT_GE(stats.execFailures, 1);
    EXPECT_GE(stats.execFallbacks, 1); // demotions tried on the way down
    EXPECT_FALSE(stats.planDiagnostics.empty());
    bool sawUnplanned = false;
    for (int i = 0; i < f.numOps(); ++i) {
        if (f.op(i).tag.find("convert:unplanned") != std::string::npos)
            sawUnplanned = true;
    }
    EXPECT_TRUE(sawUnplanned);
}

// A healthy engine takes no demotions and reports zero execution
// failures — the new accounting stays silent on the happy path.
TEST(ExecFallback, HealthyEngineReportsNoExecFallbacks)
{
    auto f = gemmFunction();
    engine::LayoutEngine eng({sim::GpuSpec::gh200(), 4});
    auto stats = eng.run(f);
    EXPECT_EQ(stats.execFallbacks, 0);
    EXPECT_EQ(stats.execFailures, 0);
    EXPECT_GE(stats.convertsPlanned, 1);
}

} // namespace
} // namespace ll
