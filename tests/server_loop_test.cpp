/**
 * @file
 * The server loop's contracts: singleflight coalesces concurrent cold
 * misses on one key into exactly one planner invocation (and failures
 * propagate to followers without ever being cached); the bounded
 * admission queue gives every offered job a definite outcome under all
 * three shed policies; per-request deadlines demote planning to the
 * terminal scalar rung at rung boundaries and deadline-shaped plans
 * are never cached; the retry loop recovers transiently failpointed
 * requests within its budget; the open-loop Poisson schedule is a
 * pure function of its seed; and every serve() arrival lands in
 * exactly one terminal-outcome bucket. The multi-thread tests here
 * are TSan targets (-DLL_SANITIZE=tsan).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codegen/conversion.h"
#include "service/admission.h"
#include "service/compile_service.h"
#include "service/conversion_service.h"
#include "service/plan_cache.h"
#include "service/singleflight.h"
#include "sim/gpu_spec.h"
#include "support/deadline.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "triton/encodings.h"

namespace ll {
namespace {

LinearLayout
blocked(const triton::Shape &sizePerThread,
        const triton::Shape &threadsPerWarp,
        const triton::Shape &warpsPerCta,
        const std::vector<int32_t> &order, const triton::Shape &shape)
{
    triton::BlockedEncoding enc;
    enc.sizePerThread = sizePerThread;
    enc.threadsPerWarp = threadsPerWarp;
    enc.warpsPerCta = warpsPerCta;
    enc.order = order;
    return enc.toLinearLayout(shape);
}

/** A conversion whose plan lands on a shared-memory rung — the rungs
 *  the deadline cutoff is allowed to skip. */
struct SharedConversion
{
    LinearLayout src =
        blocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {16, 64});
    LinearLayout dst =
        blocked({1, 4}, {8, 4}, {4, 1}, {1, 0}, {16, 64});
    sim::GpuSpec spec = sim::GpuSpec::gh200();
};

service::CompileRequest
conversionRequest(const std::string &name, const LinearLayout &src,
                  const LinearLayout &dst, const sim::GpuSpec &spec)
{
    auto conv = std::make_shared<service::ConversionRequest>();
    conv->src = src;
    conv->dst = dst;
    conv->elemBytes = 2;
    conv->spec = spec;
    service::CompileRequest req;
    req.name = name;
    req.conversion = std::move(conv);
    return req;
}

struct CleanFailpoints : ::testing::Test
{
    void SetUp() override { failpoint::clearAll(); }
    void TearDown() override { failpoint::clearAll(); }
};

using SingleflightTest = CleanFailpoints;
using AdmissionTest = CleanFailpoints;
using DeadlineTest = CleanFailpoints;
using ServerLoopTest = CleanFailpoints;

TEST(PoissonScheduleTest, SameSeedSameSchedule)
{
    const auto a = service::poissonArrivalOffsetsUs(500.0, 0.5, 42);
    const auto b = service::poissonArrivalOffsetsUs(500.0, 0.5, 42);
    EXPECT_EQ(a, b);
    ASSERT_FALSE(a.empty());
    // The first arrival opens the window, so serve() always has at
    // least one request even for tiny rate * duration products.
    EXPECT_EQ(a.front(), 0.0);
    for (size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i], a[i - 1]);
    EXPECT_LT(a.back(), 0.5 * 1e6);

    const auto c = service::poissonArrivalOffsetsUs(500.0, 0.5, 43);
    EXPECT_NE(a, c);

    const auto capped =
        service::poissonArrivalOffsetsUs(500.0, 0.5, 42, 7);
    EXPECT_EQ(capped.size(), 7u);
    EXPECT_TRUE(std::equal(capped.begin(), capped.end(), a.begin()));
}

TEST_F(SingleflightTest, FollowersReceiveTheLeadersOutcome)
{
    SharedConversion conv;
    service::PlanCache cache;
    const service::PlanKey key =
        cache.key(conv.src, conv.dst, 2, conv.spec);

    service::Singleflight flights;
    constexpr int kFollowers = 7;
    std::atomic<int> followerWork{0};

    // The leader's work holds the flight open until every follower is
    // blocked on it, so the coalescing below is structural, not a race
    // we got lucky on.
    std::thread leader([&] {
        auto result = flights.run(key, [&]() {
            while (flights.waiters(key) < kFollowers)
                std::this_thread::yield();
            service::ConversionOutcome out;
            out.error = "sentinel-leader-outcome";
            return out;
        });
        EXPECT_EQ(result.role, service::FlightRole::Leader);
    });
    while (flights.stats().leaders == 0)
        std::this_thread::yield();

    std::vector<std::thread> followers;
    std::vector<service::FlightResult> results(kFollowers);
    for (int i = 0; i < kFollowers; ++i) {
        followers.emplace_back([&, i] {
            results[static_cast<size_t>(i)] =
                flights.run(key, [&]() {
                    ++followerWork;
                    return service::ConversionOutcome{};
                });
        });
    }
    leader.join();
    for (auto &t : followers)
        t.join();

    // No follower ran its own work; all copied the leader's outcome.
    EXPECT_EQ(followerWork.load(), 0);
    for (const auto &r : results) {
        EXPECT_EQ(r.role, service::FlightRole::Follower);
        EXPECT_EQ(r.outcome.error, "sentinel-leader-outcome");
    }
    const auto stats = flights.stats();
    EXPECT_EQ(stats.leaders, 1);
    EXPECT_EQ(stats.followers, kFollowers);
    EXPECT_EQ(stats.timeouts, 0);
    // The flight closed when the leader published.
    EXPECT_EQ(flights.waiters(key), 0);
}

TEST_F(SingleflightTest, ColdMissBurstRunsThePlannerExactlyOnce)
{
    SharedConversion conv;
    service::PlanCache cache;
    service::Singleflight flights;
    constexpr int kThreads = 8;

    auto &noopEvals = metrics::counter("plan.rung.noop.evaluated");
    const int64_t evalsBefore = noopEvals.value();

    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<service::FlightResult> results(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            ++ready;
            while (!go.load())
                std::this_thread::yield();
            results[static_cast<size_t>(i)] =
                service::serveConversionCoalesced(
                    &cache, &flights, conv.src, conv.dst, 2, conv.spec);
        });
    }
    while (ready.load() < kThreads)
        std::this_thread::yield();
    go.store(true);
    for (auto &t : threads)
        t.join();

    // The planner evaluates its first rung exactly once per
    // tryPlanConversion call: a delta of 1 pins "exactly one planner
    // invocation" no matter how the burst split between coalescing and
    // cache hits.
    EXPECT_EQ(noopEvals.value() - evalsBefore, 1);

    ASSERT_TRUE(results[0].outcome.planned());
    const std::string described =
        codegen::describePlan(*results[0].outcome.plan);
    for (const auto &r : results) {
        ASSERT_TRUE(r.outcome.planned()) << r.outcome.error;
        // Bit-identical rendering: followers share the leader's plan.
        EXPECT_EQ(codegen::describePlan(*r.outcome.plan), described);
    }
    EXPECT_EQ(cache.size(), 1);
    EXPECT_EQ(cache.stats().inserts, 1);
}

TEST_F(SingleflightTest, LeaderFailureReachesFollowersAndIsNotCached)
{
    SharedConversion conv;
    service::PlanCache cache;
    const service::PlanKey key =
        cache.key(conv.src, conv.dst, 2, conv.spec);
    service::Singleflight flights;
    constexpr int kFollowers = 3;

    std::thread leader([&] {
        auto result = flights.run(key, [&]() {
            while (flights.waiters(key) < kFollowers)
                std::this_thread::yield();
            // The real leader path: the svc.singleflight.leader drill
            // fails the work before planning.
            service::ConversionOutcome out;
            out.error = "[svc.singleflight.leader] failpoint-injected: "
                        "leader failed before planning";
            return out;
        });
        EXPECT_FALSE(result.outcome.planned());
    });
    while (flights.stats().leaders == 0)
        std::this_thread::yield();

    std::vector<std::thread> followers;
    std::vector<service::FlightResult> results(kFollowers);
    for (int i = 0; i < kFollowers; ++i) {
        followers.emplace_back([&, i] {
            results[static_cast<size_t>(i)] = flights.run(key, [&]() {
                ADD_FAILURE() << "follower ran leader work";
                return service::ConversionOutcome{};
            });
        });
    }
    leader.join();
    for (auto &t : followers)
        t.join();

    for (const auto &r : results) {
        EXPECT_EQ(r.role, service::FlightRole::Follower);
        EXPECT_FALSE(r.outcome.planned());
        EXPECT_NE(r.outcome.error.find("failpoint"), std::string::npos);
    }
    // Failures propagate but are never cached — by anyone.
    EXPECT_EQ(cache.size(), 0);
    EXPECT_EQ(cache.stats().inserts, 0);
    EXPECT_EQ(cache.stats().negativeInserts, 0);
}

TEST_F(SingleflightTest, LeaderFailpointFailsColdServeWithoutCaching)
{
    SharedConversion conv;
    service::PlanCache cache;
    service::Singleflight flights;

    failpoint::activate("svc.singleflight.leader", 1);
    auto forced = service::serveConversionCoalesced(
        &cache, &flights, conv.src, conv.dst, 2, conv.spec);
    failpoint::deactivate("svc.singleflight.leader");
    EXPECT_FALSE(forced.outcome.planned());
    EXPECT_NE(forced.outcome.error.find("failpoint-injected"),
              std::string::npos);
    EXPECT_EQ(cache.size(), 0);
    EXPECT_EQ(cache.stats().negativeInserts, 0);

    // The failure was not memoized: the next request plans fresh.
    auto clean = service::serveConversionCoalesced(
        &cache, &flights, conv.src, conv.dst, 2, conv.spec);
    EXPECT_TRUE(clean.outcome.planned()) << clean.outcome.error;
    EXPECT_EQ(cache.size(), 1);
}

TEST_F(AdmissionTest, ShedNewestRefusesTheOfferedJob)
{
    service::AdmissionQueue queue(
        {2, service::AdmissionPolicy::ShedNewest});
    std::vector<service::ServerJob> shed;
    service::ServerJob job;
    job.seq = 1;
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Admitted);
    job.seq = 2;
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Admitted);
    job.seq = 3;
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Shed);
    EXPECT_TRUE(shed.empty());

    service::ServerJob out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.seq, 1u);
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.seq, 2u);
    const auto stats = queue.stats();
    EXPECT_EQ(stats.admitted, 2);
    EXPECT_EQ(stats.shedNewest, 1);
    EXPECT_EQ(stats.shedTotal(), 1);
    EXPECT_EQ(stats.maxDepth, 2);
}

TEST_F(AdmissionTest, ShedOldestEvictsTheHeadAndAdmitsTheOffer)
{
    service::AdmissionQueue queue(
        {2, service::AdmissionPolicy::ShedOldest});
    std::vector<service::ServerJob> shed;
    service::ServerJob job;
    job.seq = 1;
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Admitted);
    job.seq = 2;
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Admitted);
    job.seq = 3;
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Admitted);
    // The oldest job came back on the shed list for a definite
    // terminal outcome; the queue holds the two newest.
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0].seq, 1u);

    service::ServerJob out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.seq, 2u);
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.seq, 3u);
    const auto stats = queue.stats();
    EXPECT_EQ(stats.admitted, 3);
    EXPECT_EQ(stats.shedOldest, 1);
}

TEST_F(AdmissionTest, BlockPolicyWaitsForSpaceAndClosedQueueSheds)
{
    service::AdmissionQueue queue({1, service::AdmissionPolicy::Block});
    std::vector<service::ServerJob> shed;
    service::ServerJob job;
    job.seq = 1;
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Admitted);

    std::atomic<bool> secondAdmitted{false};
    std::thread producer([&] {
        std::vector<service::ServerJob> producerShed;
        service::ServerJob second;
        second.seq = 2;
        auto result = queue.push(second, producerShed); // blocks
        EXPECT_EQ(result,
                  service::AdmissionQueue::PushResult::Admitted);
        secondAdmitted.store(true);
    });
    EXPECT_FALSE(secondAdmitted.load());
    service::ServerJob out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.seq, 1u);
    producer.join();
    EXPECT_TRUE(secondAdmitted.load());
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.seq, 2u);

    queue.close();
    job.seq = 3;
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Shed);
    EXPECT_FALSE(queue.pop(out)); // closed and drained
    EXPECT_EQ(queue.stats().shedClosed, 1);
}

TEST_F(AdmissionTest, AdmitFailpointShedsRegardlessOfCapacity)
{
    service::AdmissionQueue queue(
        {8, service::AdmissionPolicy::ShedNewest});
    std::vector<service::ServerJob> shed;
    service::ServerJob job;
    failpoint::activate("svc.admit", 1);
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Shed);
    failpoint::deactivate("svc.admit");
    EXPECT_EQ(queue.stats().shedFailpoint, 1);
    EXPECT_EQ(queue.push(job, shed),
              service::AdmissionQueue::PushResult::Admitted);
}

TEST_F(DeadlineTest, ExpiredDeadlineDemotesToTerminalScalarRung)
{
    SharedConversion conv;

    // Without a deadline the pair plans onto a non-terminal rung.
    auto unconstrained =
        codegen::tryPlanConversion(conv.src, conv.dst, 2, conv.spec);
    ASSERT_TRUE(unconstrained.has_value());
    ASSERT_NE(unconstrained->kind,
              codegen::ConversionKind::SharedScalar);

    auto &demotions = metrics::counter("plan.deadline_demotions");
    const int64_t before = demotions.value();

    deadline::Scoped expired(deadline::Clock::now() -
                             std::chrono::milliseconds(1));
    auto demoted =
        codegen::tryPlanConversion(conv.src, conv.dst, 2, conv.spec);
    // Planning stays total under deadline pressure: the terminal rung
    // always runs.
    ASSERT_TRUE(demoted.has_value());
    EXPECT_EQ(demoted->kind, codegen::ConversionKind::SharedScalar);
    EXPECT_EQ(demotions.value() - before, 1);
    bool noted = false;
    for (const auto &n : demoted->diagnostics.notes)
        noted = noted || n.code == DiagCode::DeadlineExceeded;
    EXPECT_TRUE(noted)
        << "demoted plan lacks a DeadlineExceeded note: "
        << demoted->diagnostics.toString();
}

TEST_F(DeadlineTest, NoOpRungIgnoresTheDeadline)
{
    // A conversion answered before the guarded rungs is not demoted:
    // the cutoff sits at the expensive rung boundaries only.
    SharedConversion conv;
    deadline::Scoped expired(deadline::Clock::now() -
                             std::chrono::milliseconds(1));
    auto plan =
        codegen::tryPlanConversion(conv.src, conv.src, 2, conv.spec);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->kind, codegen::ConversionKind::NoOp);
}

TEST_F(DeadlineTest, DeadlineShapedPlansAreNeverCached)
{
    SharedConversion conv;
    service::PlanCache cache;
    service::Singleflight flights;

    {
        deadline::Scoped expired(deadline::Clock::now() -
                                 std::chrono::milliseconds(1));
        auto outcome = service::serveConversionCoalesced(
            &cache, &flights, conv.src, conv.dst, 2, conv.spec);
        // The request is still served — demoted, not dropped.
        ASSERT_TRUE(outcome.outcome.planned())
            << outcome.outcome.error;
        EXPECT_EQ(outcome.outcome.plan->kind,
                  codegen::ConversionKind::SharedScalar);
    }
    // ...but the load-shaped plan must not poison the shared cache.
    EXPECT_EQ(cache.size(), 0);
    EXPECT_GE(cache.stats().insertRefusals, 1);

    // Freed of the deadline, the same key plans and caches normally.
    auto clean = service::serveConversionCoalesced(
        &cache, &flights, conv.src, conv.dst, 2, conv.spec);
    ASSERT_TRUE(clean.outcome.planned());
    EXPECT_NE(clean.outcome.plan->kind,
              codegen::ConversionKind::SharedScalar);
    EXPECT_EQ(cache.size(), 1);
}

TEST_F(ServerLoopTest, RetryRecoversATransientLeaderFailure)
{
    SharedConversion conv;
    service::PlanCache cache;
    service::CompileService::Options options;
    options.threads = 1;
    options.cache = &cache;
    service::CompileService svc{options};

    std::vector<service::CompileRequest> stream;
    stream.push_back(
        conversionRequest("retry-probe", conv.src, conv.dst, conv.spec));

    service::CompileService::ServerConfig cfg;
    cfg.ratePerSec = 1e5;
    cfg.durationSec = 0.01;
    cfg.maxRequests = 1;
    cfg.seed = 7;
    cfg.retryBudget = 1;
    cfg.retryBackoffMs = 0.1;

    failpoint::activate("svc.singleflight.leader", 1);
    auto report = svc.serve(stream, cfg);
    failpoint::deactivate("svc.singleflight.leader");

    EXPECT_EQ(report.requests, 1);
    EXPECT_EQ(report.planned, 1);
    EXPECT_EQ(report.retries, 1);
    ASSERT_EQ(report.responses.size(), 1u);
    EXPECT_EQ(report.responses[0].outcome,
              service::RequestOutcome::Planned);
    EXPECT_EQ(report.responses[0].retries, 1);
}

TEST_F(ServerLoopTest, RetryBudgetExhaustionIsATerminalFailure)
{
    SharedConversion conv;
    service::PlanCache cache;
    service::CompileService::Options options;
    options.threads = 1;
    options.cache = &cache;
    service::CompileService svc{options};

    std::vector<service::CompileRequest> stream;
    stream.push_back(
        conversionRequest("retry-probe", conv.src, conv.dst, conv.spec));

    service::CompileService::ServerConfig cfg;
    cfg.ratePerSec = 1e5;
    cfg.durationSec = 0.01;
    cfg.maxRequests = 1;
    cfg.seed = 7;
    cfg.retryBudget = 1;
    cfg.retryBackoffMs = 0.1;

    // First attempt and the only retry both fail.
    failpoint::activate("svc.singleflight.leader", 2);
    auto report = svc.serve(stream, cfg);
    failpoint::deactivate("svc.singleflight.leader");

    EXPECT_EQ(report.failed, 1);
    EXPECT_EQ(report.retries, 1);
    EXPECT_EQ(report.planned, 0);
    // The exhausted failure was never cached.
    EXPECT_EQ(cache.size(), 0);
}

TEST_F(ServerLoopTest, QueueTimeoutFailpointExpiresTheRequest)
{
    SharedConversion conv;
    service::PlanCache cache;
    service::CompileService::Options options;
    options.threads = 1;
    options.cache = &cache;
    service::CompileService svc{options};

    std::vector<service::CompileRequest> stream;
    stream.push_back(
        conversionRequest("timeout-probe", conv.src, conv.dst,
                          conv.spec));

    service::CompileService::ServerConfig cfg;
    cfg.ratePerSec = 1e5;
    cfg.durationSec = 0.01;
    cfg.maxRequests = 1;
    cfg.seed = 7;

    failpoint::activate("svc.queue.timeout", 1);
    auto report = svc.serve(stream, cfg);
    failpoint::deactivate("svc.queue.timeout");
    EXPECT_EQ(report.deadlineExceeded, 1);
    EXPECT_EQ(report.planned, 0);

    auto clean = svc.serve(stream, cfg);
    EXPECT_EQ(clean.planned, 1);
}

TEST_F(ServerLoopTest, EveryArrivalLandsInExactlyOneOutcomeBucket)
{
    SharedConversion conv;
    service::PlanCache cache;
    service::CompileService::Options options;
    options.threads = 2;
    options.cache = &cache;
    // A 500us per-request floor makes 2 workers saturate at ~4k req/s,
    // so a 20k req/s offered rate must shed on the 4-deep queue.
    options.serviceFloorUs = 500.0;
    service::CompileService svc{options};

    std::vector<service::CompileRequest> stream;
    stream.push_back(
        conversionRequest("overload-a", conv.src, conv.dst, conv.spec));
    stream.push_back(
        conversionRequest("overload-b", conv.src, conv.src, conv.spec));

    service::CompileService::ServerConfig cfg;
    cfg.ratePerSec = 20000.0;
    cfg.durationSec = 0.5;
    cfg.maxRequests = 400;
    cfg.seed = 42;
    cfg.queueCapacity = 4;
    cfg.policy = service::AdmissionPolicy::ShedOldest;
    cfg.sloP99Ms = 1000.0;

    auto report = svc.serve(stream, cfg);
    EXPECT_EQ(report.requests, 400);
    EXPECT_EQ(static_cast<int64_t>(report.responses.size()),
              report.requests);
    // The split is a partition: every arrival terminated exactly once.
    EXPECT_EQ(report.planned + report.shed + report.deadlineExceeded +
                  report.failed,
              report.requests);
    EXPECT_EQ(report.failures, report.requests - report.planned);
    EXPECT_GT(report.shed, 0) << "2x+ overload on a 4-deep queue must "
                                 "shed";
    EXPECT_EQ(report.failed, 0);
    EXPECT_EQ(report.shed, report.queueStats.shedTotal());
    for (const auto &resp : report.responses) {
        if (resp.outcome == service::RequestOutcome::Shed) {
            EXPECT_FALSE(resp.ok);
        }
    }
}

TEST_F(ServerLoopTest, BatchRunReportsTheOutcomeSplit)
{
    SharedConversion conv;
    service::PlanCache cache;
    service::CompileService::Options options;
    options.threads = 4;
    options.cache = &cache;
    service::CompileService svc{options};

    std::vector<service::CompileRequest> requests;
    for (int i = 0; i < 12; ++i)
        requests.push_back(conversionRequest(
            "batch-" + std::to_string(i), conv.src, conv.dst,
            conv.spec));

    auto report = svc.run(requests);
    EXPECT_EQ(report.requests, 12);
    EXPECT_EQ(report.planned, 12);
    EXPECT_EQ(report.shed, 0);
    EXPECT_EQ(report.deadlineExceeded, 0);
    EXPECT_EQ(report.failed, 0);
    // One fresh plan; the other eleven were coalesced or cache hits.
    EXPECT_EQ(report.freshPlans, 1);
    EXPECT_EQ(cache.size(), 1);
}

} // namespace
} // namespace ll
