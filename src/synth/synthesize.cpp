#include "synth/synthesize.h"

#include <algorithm>
#include <map>
#include <string>

#include "codegen/conversion.h"
#include "layout/dims.h"
#include "service/conversion_service.h"
#include "support/trace.h"

namespace ll {
namespace synth {

namespace {

using ir::OpKind;

int
regCount(const LinearLayout &l)
{
    return l.hasInDim(dims::kReg) ? l.getInDimSize(dims::kReg) : 1;
}

/** A load or store whose traffic depends on anchor `anchorIdx`'s
 *  candidate (the carried layout prices the access). */
struct MemRef
{
    int anchorIdx;
    int elemBits;
};

/** A conversion edge between an anchor-carried value and a fixed
 *  layout (MMA operand target, dot-result sibling, ...). */
struct FixedEdge
{
    int anchorIdx;
    LinearLayout other;
    bool anchorIsSrc;
    int elemBytes;
};

/** A conversion edge between two anchor-carried values: the `from`
 *  anchor's candidate is converted into the `to` anchor's. */
struct PairEdge
{
    int fromIdx;
    int toIdx;
    int elemBytes;
};

struct CostTerms
{
    std::vector<MemRef> memRefs;
    std::vector<FixedEdge> fixedEdges;
    std::vector<PairEdge> pairEdges;
};

/**
 * Plan-cache-backed conversion pricing, memoized per search. A pair
 * that proves to be a no-op costs zero; an unplannable pair is charged
 * a scalar shared round trip exactly like engine::estimateKernelCost
 * prices convert:unplanned ops.
 */
class ConversionPricer
{
  public:
    ConversionPricer(const sim::GpuSpec &spec, service::PlanCache *cache)
        : spec_(spec), cache_(cache)
    {
    }

    double
    cycles(const LinearLayout &src, const LinearLayout &dst,
           int elemBytes)
    {
        const std::string key = src.toString() + "|" + dst.toString() +
                                "|" + std::to_string(elemBytes);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        double cost = price(src, dst, elemBytes);
        memo_.emplace(key, cost);
        return cost;
    }

  private:
    double
    price(const LinearLayout &src, const LinearLayout &dst,
          int elemBytes)
    {
        const double unplannable =
            spec_.sharedRoundTripCycles +
            2.0 * regCount(src) * spec_.sharedWavefrontCycles;
        try {
            LinearLayout d = dst.transposeOuts(src.getOutDimNames());
            if (codegen::conversionIsNoOp(src, d))
                return 0.0;
            if (cache_ != nullptr) {
                auto outcome = service::serveConversion(
                    cache_, src, d, elemBytes, spec_);
                if (outcome.planned())
                    return outcome.plan->estimateCycles(src, elemBytes,
                                                        spec_);
                return unplannable;
            }
            auto plan = codegen::tryPlanConversion(src, d, elemBytes,
                                                   spec_);
            if (plan.ok())
                return plan->estimateCycles(src, elemBytes, spec_);
        } catch (const std::exception &) {
            // Incomparable layout spaces price like an unplannable
            // conversion below.
        }
        return unplannable;
    }

    const sim::GpuSpec &spec_;
    service::PlanCache *cache_;
    std::map<std::string, double> memo_;
};

CostTerms
collectCostTerms(const ir::Function &f, const PropagationMap &prop,
                 const std::vector<int> &anchorIdx,
                 const sim::GpuSpec &spec, int numWarps)
{
    CostTerms terms;
    auto idxOf = [&](int valueId) -> int {
        const int a = prop.carrier[static_cast<size_t>(valueId)];
        return a < 0 ? -1 : anchorIdx[static_cast<size_t>(a)];
    };
    auto sameShape = [&](int a, int b) {
        return f.value(a).type.shape == f.value(b).type.shape;
    };
    for (int i = 0; i < f.numOps(); ++i) {
        const ir::Op &o = f.op(i);
        if (o.erased)
            continue;
        switch (o.kind) {
          case OpKind::Load:
          case OpKind::Store: {
            const int v = o.kind == OpKind::Load ? o.results[0]
                                                 : o.operands[0];
            const int idx = idxOf(v);
            if (idx >= 0)
                terms.memRefs.push_back(
                    {idx, bitWidth(f.value(v).type.dtype)});
            break;
          }
          case OpKind::Dot: {
            const auto &ta = f.value(o.operands[0]).type;
            const auto &tb = f.value(o.operands[1]).type;
            const auto &tacc = f.value(o.results[0]).type;
            const int bits =
                std::max(bitWidth(ta.dtype), bitWidth(tb.dtype));
            if (bits > 32)
                break; // FMA dots keep blocked operands: no MMA edge
            for (int s = 0; s < 2; ++s) {
                const int v = o.operands[s];
                const int idx = idxOf(v);
                if (idx < 0)
                    continue;
                try {
                    terms.fixedEdges.push_back(
                        {idx,
                         dotOperandLayout(f.value(v).type, tacc, s,
                                          bits, spec, numWarps),
                         /*anchorIsSrc=*/true,
                         byteWidth(f.value(v).type.dtype)});
                } catch (const std::exception &) {
                    // No MMA operand layout for this shape: the edge
                    // is the same for every candidate, drop it.
                }
            }
            break;
          }
          case OpKind::Elementwise:
          case OpKind::Join:
          case OpKind::Gather: {
            const int lead = o.operands[0];
            const int leadIdx = idxOf(lead);
            const auto &leadFixed =
                prop.fixed[static_cast<size_t>(lead)];
            for (size_t s = 1; s < o.operands.size(); ++s) {
                const int v = o.operands[s];
                if (!sameShape(v, lead))
                    continue; // broadcast-compatible slots stay no-ops
                const int vIdx = idxOf(v);
                const auto &vFixed =
                    prop.fixed[static_cast<size_t>(v)];
                const int bytes = byteWidth(f.value(v).type.dtype);
                if (vIdx >= 0 && leadIdx >= 0 && vIdx != leadIdx)
                    terms.pairEdges.push_back({vIdx, leadIdx, bytes});
                else if (vIdx >= 0 && leadIdx < 0 &&
                         leadFixed.has_value())
                    terms.fixedEdges.push_back(
                        {vIdx, *leadFixed, /*anchorIsSrc=*/true,
                         bytes});
                else if (vIdx < 0 && leadIdx >= 0 &&
                         vFixed.has_value())
                    terms.fixedEdges.push_back(
                        {leadIdx, *vFixed, /*anchorIsSrc=*/false,
                         bytes});
            }
            break;
          }
          default:
            break;
        }
    }
    return terms;
}

} // namespace

SynthResult
synthesizeAnchors(const ir::Function &f, const sim::GpuSpec &spec,
                  int numWarps, const SynthOptions &opt)
{
    trace::Span span("synth.search", "synth");
    SynthResult result;
    result.anchors = anchorValues(f);
    const int n = static_cast<int>(result.anchors.size());
    if (n == 0)
        return result;

    PropagationMap prop = propagationMap(f, spec, numWarps);
    std::vector<int> anchorIdx(static_cast<size_t>(f.numValues()), -1);
    for (int i = 0; i < n; ++i)
        anchorIdx[static_cast<size_t>(result.anchors[i])] = i;

    result.candidates.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        result.candidates.push_back(
            anchorCandidates(f, result.anchors[i], prop, spec, numWarps,
                             opt.maxPerAnchor));

    CostTerms terms =
        collectCostTerms(f, prop, anchorIdx, spec, numWarps);
    ConversionPricer pricer(spec, opt.planCache);

    // Guide cost of a partial assignment: terms whose every anchor is
    // already decided. Monotone in the prefix length, so beam pruning
    // on it is meaningful.
    auto partialCost = [&](const std::vector<int> &choice) {
        const int assigned = static_cast<int>(choice.size());
        auto layoutOf = [&](int idx) -> const LinearLayout & {
            return result
                .candidates[static_cast<size_t>(idx)]
                          [static_cast<size_t>(
                               choice[static_cast<size_t>(idx)])]
                .layout;
        };
        double cost = 0.0;
        for (const MemRef &m : terms.memRefs) {
            if (m.anchorIdx >= assigned)
                continue;
            cost += static_cast<double>(globalMemorySectors(
                        layoutOf(m.anchorIdx), m.elemBits, spec)) *
                    spec.globalSectorCycles;
        }
        for (const FixedEdge &e : terms.fixedEdges) {
            if (e.anchorIdx >= assigned)
                continue;
            cost += e.anchorIsSrc
                        ? pricer.cycles(layoutOf(e.anchorIdx), e.other,
                                        e.elemBytes)
                        : pricer.cycles(e.other, layoutOf(e.anchorIdx),
                                        e.elemBytes);
        }
        for (const PairEdge &e : terms.pairEdges) {
            if (e.fromIdx >= assigned || e.toIdx >= assigned)
                continue;
            cost += pricer.cycles(layoutOf(e.fromIdx),
                                  layoutOf(e.toIdx), e.elemBytes);
        }
        return cost;
    };

    // Deterministic ordering: cost first, then the lexicographically
    // smallest choice vector (which also ranks the all-defaults
    // assignment first among equals).
    auto better = [](const SynthAssignment &a, const SynthAssignment &b) {
        if (a.cost != b.cost)
            return a.cost < b.cost;
        return a.choice < b.choice;
    };

    double crossProduct = 1.0;
    for (const auto &cands : result.candidates)
        crossProduct *= static_cast<double>(cands.size());
    result.exhaustive =
        crossProduct <= static_cast<double>(std::max(1, opt.exhaustiveLimit));

    std::vector<SynthAssignment> frontier;
    frontier.push_back({std::vector<int>{}, 0.0});
    const int beamWidth = std::max(1, opt.beamWidth);
    for (int level = 0; level < n; ++level) {
        std::vector<SynthAssignment> next;
        const int numCands = static_cast<int>(
            result.candidates[static_cast<size_t>(level)].size());
        for (const SynthAssignment &state : frontier) {
            for (int c = 0; c < numCands; ++c) {
                SynthAssignment ext;
                ext.choice = state.choice;
                ext.choice.push_back(c);
                ext.cost = partialCost(ext.choice);
                ++result.statesExpanded;
                next.push_back(std::move(ext));
            }
        }
        std::sort(next.begin(), next.end(), better);
        if (!result.exhaustive &&
            static_cast<int>(next.size()) > beamWidth) {
            // Prune to the beam — but the all-defaults prefix never
            // falls out (the never-worse invariant).
            const std::vector<int> defaults(
                static_cast<size_t>(level + 1), 0);
            bool defaultSurvives = false;
            for (int i = 0; i < beamWidth; ++i)
                defaultSurvives |= next[static_cast<size_t>(i)].choice ==
                                   defaults;
            SynthAssignment defaultState;
            if (!defaultSurvives) {
                for (const SynthAssignment &s : next)
                    if (s.choice == defaults) {
                        defaultState = s;
                        break;
                    }
            }
            next.resize(static_cast<size_t>(beamWidth));
            if (!defaultSurvives)
                next.push_back(std::move(defaultState));
        }
        frontier = std::move(next);
    }

    const int keep = std::max(1, opt.maxRankedAssignments);
    if (static_cast<int>(frontier.size()) > keep) {
        const std::vector<int> defaults(static_cast<size_t>(n), 0);
        bool defaultSurvives = false;
        for (int i = 0; i < keep; ++i)
            defaultSurvives |=
                frontier[static_cast<size_t>(i)].choice == defaults;
        SynthAssignment defaultState;
        if (!defaultSurvives) {
            for (const SynthAssignment &s : frontier)
                if (s.choice == defaults) {
                    defaultState = s;
                    break;
                }
        }
        frontier.resize(static_cast<size_t>(keep));
        if (!defaultSurvives)
            frontier.push_back(std::move(defaultState));
    }
    result.ranked = std::move(frontier);

    const std::vector<int> defaults(static_cast<size_t>(n), 0);
    for (size_t i = 0; i < result.ranked.size(); ++i)
        if (result.ranked[i].choice == defaults)
            result.defaultRank = static_cast<int>(i);
    llAssert(result.defaultRank >= 0,
             "the default assignment must survive the beam");

    if (span.active()) {
        span.arg("anchors", n);
        span.arg("states_expanded", result.statesExpanded);
        span.arg("exhaustive", result.exhaustive ? 1 : 0);
        span.arg("ranked", static_cast<int>(result.ranked.size()));
    }
    return result;
}

} // namespace synth
} // namespace ll
