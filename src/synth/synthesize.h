/**
 * @file
 * Whole-kernel anchor-assignment search (the synthesis tentpole).
 *
 * Formulation: every anchor (load/constant result) is a decision
 * variable over its bounded candidate set (candidates.h). The
 * objective prices
 *
 *   - nodes: every global load/store whose tensor carries an anchor's
 *     layout costs globalMemorySectors(candidate) * globalSectorCycles
 *     — the same term engine::estimateKernelCost charges;
 *   - edges: every place assignForward would insert a ConvertLayout
 *     between two anchor-carried values (or between an anchor-carried
 *     value and a fixed MMA/dot layout) costs the plan-cache-backed
 *     conversion estimate between the two candidate layouts — zero
 *     when the pair proves to be a no-op over F_2.
 *
 * Minimization is a beam search over anchors in op order with
 * deterministic tie-breaking (cost first, then the lexicographically
 * smallest choice vector), a configurable beam width, an exhaustive
 * fallback when the full cross-product is small, and one hard
 * invariant: the all-defaults assignment is force-retained in the beam
 * at every step, so the ranked finalists always contain today's
 * behavior and the engine can reprice synthesis against it (the
 * never-worse guarantee — see DESIGN.md §17).
 *
 * The guide costs here are estimates; LayoutEngine re-prices the
 * finalists by actually running assignment + cleanup + the true cost
 * model, and only deviates from the default on a strict win.
 */

#ifndef LL_SYNTH_SYNTHESIZE_H
#define LL_SYNTH_SYNTHESIZE_H

#include <vector>

#include "synth/candidates.h"

namespace ll {

namespace service {
class PlanCache;
}

namespace synth {

struct SynthOptions
{
    /** Surviving partial assignments per beam step (≥ 1). The default
     *  assignment does not count against the width — it is retained on
     *  top of the beam when it would otherwise fall out. */
    int beamWidth = 8;
    /** Graphs whose full candidate cross-product has at most this many
     *  assignments are enumerated exhaustively instead of beamed. */
    int exhaustiveLimit = 256;
    /** Candidate layouts kept per anchor (index 0 is the default). */
    int maxPerAnchor = 6;
    /** Finalists returned for true-pipeline repricing by the engine
     *  (the default assignment is always among them). */
    int maxRankedAssignments = 4;
    /** Shared plan cache for edge pricing (borrowed; nullptr plans
     *  directly). Overwritten with EngineOptions::planCache when the
     *  engine drives the search. */
    service::PlanCache *planCache = nullptr;
};

/** One complete assignment: choice[i] indexes
 *  SynthResult::candidates[i] for anchor SynthResult::anchors[i]. */
struct SynthAssignment
{
    std::vector<int> choice;
    /** Guide cost (node + edge terms) — comparable only within one
     *  SynthResult, not to engine::KernelCost::cycles. */
    double cost = 0.0;
};

struct SynthResult
{
    /** Anchor value ids in op order (anchorValues(f)). */
    std::vector<int> anchors;
    /** Per-anchor candidate sets; candidates[i][0] is the default. */
    std::vector<std::vector<LayoutCandidate>> candidates;
    /** Finalists, best guide cost first, deterministically ordered.
     *  Always contains the all-defaults assignment. */
    std::vector<SynthAssignment> ranked;
    /** Index of the all-defaults assignment within `ranked`. */
    int defaultRank = -1;
    /** True when the full cross-product was enumerated. */
    bool exhaustive = false;
    /** Partial assignments priced during the search. */
    int statesExpanded = 0;
};

/** Run the search. Deterministic for a given (f, spec, numWarps, opt)
 *  regardless of plan-cache state or thread interleaving. */
SynthResult synthesizeAnchors(const ir::Function &f,
                              const sim::GpuSpec &spec, int numWarps,
                              const SynthOptions &opt);

} // namespace synth
} // namespace ll

#endif // LL_SYNTH_SYNTHESIZE_H
