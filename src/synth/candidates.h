/**
 * @file
 * Anchor-layout candidate generation for whole-kernel layout synthesis.
 *
 * The layout engine's propagation pass (engine/layout_engine.cpp) fixes
 * every anchor — loads and constants — to one hard-coded default
 * blocked layout and lets conversions absorb whatever clashes remain.
 * Synthesis instead treats each anchor as a decision variable with a
 * bounded candidate set:
 *
 *   0. the default blocked layout (always index 0 — the search keeps
 *      the all-defaults assignment alive so synthesis can never lose to
 *      the propagation-only engine),
 *   1. blocked variants with other vectorization widths,
 *   2. native preferences of consumers (an MMA operand layout when the
 *      anchor feeds a dot, the fixed layout of a sibling operand when
 *      the anchor meets a dot result in an elementwise op),
 *   3. propagated neighbors (the default layout of the anchor another
 *      operand of the same consumer carries — e.g. a gather's index
 *      tensor adopting the table's wider-vector default).
 *
 * The default anchor/dot layout constructors live here — LayoutEngine
 * delegates to them — so the no-synth path and candidate index 0 are
 * the same code, not two copies that can drift.
 */

#ifndef LL_SYNTH_CANDIDATES_H
#define LL_SYNTH_CANDIDATES_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/function.h"
#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"

namespace ll {
namespace synth {

/**
 * The blocked anchor layout the engine assigns at loads, stores and
 * constants: 128-bit vectorized per-thread tiles distributed over
 * `numWarps` warps of `spec.warpSize` lanes. This is the historical
 * LayoutEngine::anchorForMemory construction, moved verbatim;
 * synth_test pins the two against each other.
 */
LinearLayout defaultMemoryAnchor(const ir::TensorType &type,
                                 const sim::GpuSpec &spec, int numWarps);

/** The MMA/MFMA output layout for a dot with this accumulator shape
 *  (LayoutEngine::dotResultLayout, moved verbatim). */
LinearLayout dotResultLayout(const ir::TensorType &accType,
                             int operandBits, const sim::GpuSpec &spec,
                             int numWarps);

/** The MMA-input layout for operand `opIdx` of such a dot
 *  (LayoutEngine::dotOperandLayout, moved verbatim). */
LinearLayout dotOperandLayout(const ir::TensorType &operandType,
                              const ir::TensorType &accType, int opIdx,
                              int operandBits, const sim::GpuSpec &spec,
                              int numWarps);

/**
 * Global traffic (32-byte sectors) of one load or store of a tensor
 * held in `layout`: the representative warp's first access is replayed
 * through sim::GlobalMemory and scaled by instructions-per-thread and
 * warp count. Shared between engine::estimateKernelCost and the
 * synthesis node cost so the search's memory pricing and the final
 * repricing agree exactly.
 */
int64_t globalMemorySectors(const LinearLayout &layout, int elemBits,
                            const sim::GpuSpec &spec);

/** One candidate layout for an anchor, with a human-readable origin
 *  ("default", "blocked/vec2", "dot-operand:0", "neighbor", ...). */
struct LayoutCandidate
{
    LinearLayout layout;
    std::string provenance;
};

/**
 * Forward default-propagation analysis of the graph, mirroring
 * assignForward's carrier rules: which anchor's layout each value would
 * carry (through elementwise / scan / gather / convert chains), and
 * which values have a fixed, anchor-independent layout (dot results and
 * their elementwise descendants).
 */
struct PropagationMap
{
    /** value id -> the anchor value id whose layout it carries, or -1
     *  when the chain is broken by a shape transfer or a dot. */
    std::vector<int> carrier;
    /** value id -> the anchor-independent layout the value is pinned
     *  to, when one is known (MMA results, FMA-dot results, and values
     *  propagating from them). */
    std::vector<std::optional<LinearLayout>> fixed;
};

PropagationMap propagationMap(const ir::Function &f,
                              const sim::GpuSpec &spec, int numWarps);

/** The anchor value ids of `f` in op order: results of non-erased Load
 *  and Constant ops — exactly the values assignForward anchors. */
std::vector<int> anchorValues(const ir::Function &f);

/**
 * The bounded candidate set for anchor value `anchor`. Index 0 is
 * always the default blocked layout; the rest are deduplicated
 * (operator==) blocked-vectorization variants, consumer preferences and
 * propagated neighbors, capped at `maxPerAnchor`. Candidate
 * construction failures (e.g. an MMA encoding rejecting a shape) skip
 * that candidate rather than aborting enumeration.
 */
std::vector<LayoutCandidate>
anchorCandidates(const ir::Function &f, int anchor,
                 const PropagationMap &prop, const sim::GpuSpec &spec,
                 int numWarps, int maxPerAnchor);

} // namespace synth
} // namespace ll

#endif // LL_SYNTH_CANDIDATES_H
