#include "synth/candidates.h"

#include <algorithm>
#include <string>

#include "codegen/vectorize.h"
#include "layout/dims.h"
#include "sim/memory_sim.h"
#include "triton/encodings.h"

namespace ll {
namespace synth {

namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;
using ir::OpKind;

int
regCount(const LinearLayout &l)
{
    return l.hasInDim(kReg) ? l.getInDimSize(kReg) : 1;
}

int
warpCount(const LinearLayout &l)
{
    return l.hasInDim(kWarp) ? l.getInDimSize(kWarp) : 1;
}

} // namespace

LinearLayout
defaultMemoryAnchor(const ir::TensorType &type, const sim::GpuSpec &spec,
                    int numWarps)
{
    llUserCheck(!type.shape.empty(),
                "memory anchor needs a ranked tensor type");
    for (auto d : type.shape)
        llUserCheck(d >= 1, "tensor dims must be positive, got " +
                                std::to_string(d));
    llUserCheck(bitWidth(type.dtype) >= 1,
                "element type has no width");
    int vec = std::max(1, 128 / bitWidth(type.dtype));
    auto enc = triton::BlockedEncoding::makeDefault(
        type.shape, numWarps, spec.warpSize, vec);
    return enc.toLinearLayout(type.shape);
}

LinearLayout
dotResultLayout(const ir::TensorType &accType, int operandBits,
                const sim::GpuSpec &spec, int numWarps)
{
    llUserCheck(accType.shape.size() == 2,
                "dot accumulator must be rank-2, got rank " +
                    std::to_string(accType.shape.size()));
    llUserCheck(operandBits >= 1 && operandBits <= 64,
                "dot operand width must be 1..64 bits, got " +
                    std::to_string(operandBits));
    const auto &shape = accType.shape;
    if (spec.warpSize == 64) {
        triton::MfmaEncoding enc;
        int32_t wM = std::min<int32_t>(numWarps,
                                       std::max(shape[0] / 32, 1));
        enc.warpsPerCta = {wM, numWarps / wM};
        return enc.toLinearLayout(shape);
    }
    triton::MmaEncoding enc;
    if (spec.hasWgmma && shape[0] >= 64 && operandBits <= 16 &&
        numWarps >= 4) {
        enc.version = 3;
        enc.instrN = std::min<int32_t>(shape[1], 256);
        int32_t groups = numWarps / 4;
        int32_t gM = std::min<int32_t>(groups, std::max(shape[0] / 64, 1));
        enc.warpsPerCta = {4 * gM, groups / gM};
    } else {
        enc.version = 2;
        int32_t wM = std::min<int32_t>(numWarps,
                                       std::max(shape[0] / 16, 1));
        enc.warpsPerCta = {wM, std::max(numWarps / wM, 1)};
    }
    return enc.toLinearLayout(shape);
}

LinearLayout
dotOperandLayout(const ir::TensorType &operandType,
                 const ir::TensorType &accType, int opIdx,
                 int operandBits, const sim::GpuSpec &spec, int numWarps)
{
    llUserCheck(opIdx == 0 || opIdx == 1,
                "dot operand index must be 0 or 1, got " +
                    std::to_string(opIdx));
    llUserCheck(operandType.shape.size() == 2 &&
                    accType.shape.size() == 2,
                "dot operands and accumulator must be rank-2");
    llUserCheck(operandType.shape[opIdx == 0 ? 0 : 1] ==
                    accType.shape[opIdx == 0 ? 0 : 1],
                "dot operand shape does not match the accumulator: "
                "operand " +
                    std::to_string(opIdx) + " is " +
                    std::to_string(operandType.shape[0]) + "x" +
                    std::to_string(operandType.shape[1]) +
                    " against a " + std::to_string(accType.shape[0]) +
                    "x" + std::to_string(accType.shape[1]) +
                    " accumulator");
    triton::DotOperandEncoding enc;
    if (spec.warpSize == 64) {
        // Model the mfma operand path with the v2 tile over 32 lanes
        // plus lane broadcast; for cost purposes the conversion through
        // shared memory dominates either way. Use the v2 construction.
        enc.parent.version = 2;
    } else if (spec.hasWgmma && accType.shape[0] >= 64 &&
               operandBits <= 16 && numWarps >= 4) {
        enc.parent.version = 3;
    } else {
        enc.parent.version = 2;
    }
    // Match the warp distribution chosen for the result.
    if (enc.parent.version == 3) {
        int32_t groups = numWarps / 4;
        int32_t gM = std::min<int32_t>(
            groups, std::max(accType.shape[0] / 64, 1));
        enc.parent.warpsPerCta = {4 * gM, groups / gM};
    } else {
        int32_t wM = std::min<int32_t>(
            numWarps, std::max(accType.shape[0] / 16, 1));
        enc.parent.warpsPerCta = {wM, std::max(numWarps / wM, 1)};
    }
    enc.opIdx = opIdx;
    enc.bitwidth = std::clamp(operandBits, 8, 32);
    return enc.toLinearLayout(operandType.shape);
}

int64_t
globalMemorySectors(const LinearLayout &layout, int elemBits,
                    const sim::GpuSpec &spec)
{
    const int warpSize =
        layout.hasInDim(kLane) ? layout.getInDimSize(kLane) : 1;
    const int regs = regCount(layout);
    const int instElems =
        std::max(1, codegen::accessBitwidth(layout, elemBits) / elemBits);
    const int instsPerThread = std::max(1, regs / instElems);
    const int regLog = layout.hasInDim(kReg)
                           ? layout.getInDimSizeLog2(kReg)
                           : 0;

    // Representative warp access: register group 0 of warp 0.
    std::vector<int64_t> addrs;
    for (int lane = 0; lane < warpSize; ++lane) {
        uint64_t in = static_cast<uint64_t>(lane) << regLog;
        uint64_t flat = layout.applyFlat(in);
        addrs.push_back(
            static_cast<int64_t>(flat * static_cast<uint64_t>(elemBits) /
                                 8));
    }
    sim::GlobalMemory gmem(spec);
    int64_t sectorsPerInst =
        gmem.countSectors(addrs, std::max(1, instElems * elemBits / 8));
    return sectorsPerInst * instsPerThread * warpCount(layout);
}

PropagationMap
propagationMap(const ir::Function &f, const sim::GpuSpec &spec,
               int numWarps)
{
    PropagationMap map;
    map.carrier.assign(static_cast<size_t>(f.numValues()), -1);
    map.fixed.assign(static_cast<size_t>(f.numValues()), std::nullopt);
    auto inherit = [&](int result, int from) {
        map.carrier[static_cast<size_t>(result)] =
            map.carrier[static_cast<size_t>(from)];
        map.fixed[static_cast<size_t>(result)] =
            map.fixed[static_cast<size_t>(from)];
    };
    for (int i = 0; i < f.numOps(); ++i) {
        const ir::Op &o = f.op(i);
        if (o.erased)
            continue;
        switch (o.kind) {
          case OpKind::Load:
          case OpKind::Constant:
            map.carrier[static_cast<size_t>(o.results[0])] =
                o.results[0];
            break;
          case OpKind::Elementwise:
          case OpKind::Scan:
          case OpKind::Gather:
          case OpKind::ConvertLayout:
            // These forward operand 0's layout unchanged (gather results
            // take the source tensor's layout; the index operand is
            // converted to it).
            inherit(o.results[0], o.operands[0]);
            break;
          case OpKind::Dot: {
            const auto &ta = f.value(o.operands[0]).type;
            const auto &tb = f.value(o.operands[1]).type;
            const auto &tacc = f.value(o.results[0]).type;
            int bits = std::max(bitWidth(ta.dtype), bitWidth(tb.dtype));
            try {
                map.fixed[static_cast<size_t>(o.results[0])] =
                    bits > 32
                        ? defaultMemoryAnchor(tacc, spec, numWarps)
                        : dotResultLayout(tacc, bits, spec, numWarps);
            } catch (const std::exception &) {
                // An unconstructible MMA layout simply leaves the
                // result unpinned; the engine's own path will face the
                // same failure and fall back.
            }
            break;
          }
          default:
            // Shape transfers (Reduce/Trans/Reshape/ExpandDims/
            // Broadcast/Join/Split) and stores break the carried-anchor
            // chain: their result layouts are derived, not carried.
            break;
        }
    }
    return map;
}

std::vector<int>
anchorValues(const ir::Function &f)
{
    std::vector<int> anchors;
    for (int i = 0; i < f.numOps(); ++i) {
        const ir::Op &o = f.op(i);
        if (o.erased)
            continue;
        if (o.kind == OpKind::Load || o.kind == OpKind::Constant)
            anchors.push_back(o.results[0]);
    }
    return anchors;
}

std::vector<LayoutCandidate>
anchorCandidates(const ir::Function &f, int anchor,
                 const PropagationMap &prop, const sim::GpuSpec &spec,
                 int numWarps, int maxPerAnchor)
{
    const ir::TensorType &type = f.value(anchor).type;
    std::vector<LayoutCandidate> out;
    auto add = [&](const std::string &provenance, auto &&build) {
        if (static_cast<int>(out.size()) >= std::max(1, maxPerAnchor))
            return;
        try {
            LinearLayout l = build();
            for (const auto &c : out)
                if (c.layout == l)
                    return;
            out.push_back({std::move(l), provenance});
        } catch (const std::exception &) {
            // A candidate that cannot be constructed for this shape is
            // skipped, never fatal: the default below always exists.
        }
    };

    // Index 0: today's default. anchorCandidates callers (and the beam)
    // rely on this position for the never-worse guarantee.
    add("default",
        [&] { return defaultMemoryAnchor(type, spec, numWarps); });
    llAssert(!out.empty(), "default anchor candidate must construct");

    auto carrierOf = [&](int v) {
        return prop.carrier[static_cast<size_t>(v)];
    };
    auto fixedOf = [&](int v) -> const std::optional<LinearLayout> & {
        return prop.fixed[static_cast<size_t>(v)];
    };
    auto sameShape = [&](int v) {
        return f.value(v).type.shape == type.shape;
    };

    // Consumer preferences and propagated neighbors, in op order so
    // enumeration is deterministic.
    for (int i = 0; i < f.numOps(); ++i) {
        const ir::Op &o = f.op(i);
        if (o.erased)
            continue;
        if (o.kind == OpKind::Dot) {
            const auto &ta = f.value(o.operands[0]).type;
            const auto &tb = f.value(o.operands[1]).type;
            const auto &tacc = f.value(o.results[0]).type;
            int bits = std::max(bitWidth(ta.dtype), bitWidth(tb.dtype));
            if (bits > 32)
                continue; // FMA dots want the default blocked anchor
            for (int s = 0; s < 2; ++s) {
                if (carrierOf(o.operands[s]) != anchor ||
                    !sameShape(o.operands[s]))
                    continue;
                add("dot-operand:" + std::to_string(s), [&] {
                    return dotOperandLayout(f.value(o.operands[s]).type,
                                            tacc, s, bits, spec,
                                            numWarps);
                });
            }
            continue;
        }
        // Ops that convert trailing operands to operand 0's layout:
        // either side of such an edge can adopt the other's layout to
        // make the conversion a no-op.
        if (o.kind != OpKind::Elementwise && o.kind != OpKind::Join &&
            o.kind != OpKind::Gather)
            continue;
        const int lead = o.operands[0];
        for (size_t s = 1; s < o.operands.size(); ++s) {
            const int other = o.operands[s];
            // This anchor feeds a trailing slot: adopt the lead
            // operand's layout.
            if (carrierOf(other) == anchor && sameShape(other)) {
                if (fixedOf(lead).has_value() && sameShape(lead))
                    add("consumer-fixed",
                        [&] { return *fixedOf(lead); });
                const int leadAnchor = carrierOf(lead);
                if (leadAnchor >= 0 && leadAnchor != anchor &&
                    sameShape(lead))
                    add("neighbor", [&] {
                        return defaultMemoryAnchor(
                            f.value(leadAnchor).type, spec, numWarps);
                    });
            }
            // This anchor feeds the lead slot: adopt a trailing
            // operand's layout instead.
            if (carrierOf(lead) == anchor && sameShape(lead)) {
                if (fixedOf(other).has_value() && sameShape(other))
                    add("consumer-fixed",
                        [&] { return *fixedOf(other); });
                const int otherAnchor = carrierOf(other);
                if (otherAnchor >= 0 && otherAnchor != anchor &&
                    sameShape(other))
                    add("neighbor", [&] {
                        return defaultMemoryAnchor(
                            f.value(otherAnchor).type, spec, numWarps);
                    });
            }
        }
    }

    // Blocked variants at other vectorization widths (the default's
    // width is deduplicated away by `add`).
    for (int vec : {1, 2, 4, 8, 16}) {
        add("blocked/vec" + std::to_string(vec), [&] {
            auto enc = triton::BlockedEncoding::makeDefault(
                type.shape, numWarps, spec.warpSize, vec);
            return enc.toLinearLayout(type.shape);
        });
    }
    return out;
}

} // namespace synth
} // namespace ll
