#include "codegen/shuffle.h"

#include <algorithm>

#include "f2/matrix.h"
#include "f2/subspace.h"
#include "layout/dims.h"
#include "support/bits.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ll {
namespace codegen {

namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

std::vector<uint64_t>
flatColumns(const LinearLayout &layout, const std::string &inDim)
{
    if (!layout.hasInDim(inDim))
        return {};
    return layout.flattenedBases(inDim);
}

/** Value-level set intersection, preserving the order of `u`. */
std::vector<uint64_t>
setIntersection(const std::vector<uint64_t> &u,
                const std::vector<uint64_t> &v)
{
    std::vector<uint64_t> out;
    for (uint64_t x : u) {
        if (x != 0 && std::find(v.begin(), v.end(), x) != v.end())
            out.push_back(x);
    }
    return out;
}

std::vector<uint64_t>
setDifference(const std::vector<uint64_t> &u, const std::vector<uint64_t> &v)
{
    std::vector<uint64_t> out;
    for (uint64_t x : u) {
        if (x != 0 && std::find(v.begin(), v.end(), x) == v.end())
            out.push_back(x);
    }
    return out;
}

/** log2 size of an in dim, 0 when the dim is absent. */
int
inBits(const LinearLayout &l, const std::string &dim)
{
    return l.hasInDim(dim) ? l.getInDimSizeLog2(dim) : 0;
}

/**
 * Flattened per-bit columns of `dim`, zero-padded to `bits` entries.
 * Padding encodes SPMD broadcast: hardware lanes/warps past a layout's
 * in-dim size hold the truncated coordinate's data, exactly as if the
 * missing high bits carried zero basis vectors.
 */
std::vector<uint64_t>
paddedColumns(const LinearLayout &l, const std::string &dim, int bits)
{
    auto cols = flatColumns(l, dim);
    cols.resize(static_cast<size_t>(bits), 0);
    return cols;
}

} // namespace

bool
conversionIsNoOp(const LinearLayout &a, const LinearLayout &bIn)
{
    LinearLayout b = bIn.transposeOuts(a.getOutDimNames());
    // Emitting nothing is correct iff both sides are literally the same
    // function of (register, lane, warp) over the joint thread space.
    // Register counts must agree exactly — there is no SPMD replication
    // across registers, so a size mismatch always needs data movement.
    if (inBits(a, kReg) != inBits(b, kReg))
        return false;
    for (const auto &dim : {kReg, kLane, kWarp}) {
        int bits = std::max(inBits(a, dim), inBits(b, dim));
        if (paddedColumns(a, dim, bits) != paddedColumns(b, dim, bits))
            return false;
    }
    return true;
}

bool
conversionIsRegisterPermute(const LinearLayout &a, const LinearLayout &bIn)
{
    LinearLayout b = bIn.transposeOuts(a.getOutDimNames());
    // A per-thread register rewrite is valid iff every element B places
    // in a thread is already held by that thread under A. Thread (l, w)
    // holds the coset Im(R_a) + L_a l + W_a w, so the condition is
    //   Im(R_b) <= Im(R_a),   (L_a + L_b) columns in Im(R_a),
    //   (W_a + W_b) columns in Im(R_a)
    // over the flattened tensor space (Section 5.4's intra-thread case,
    // stated on availability cosets so replication is handled exactly).
    f2::EchelonBasis regSpan(flatColumns(a, kReg));
    for (uint64_t col : flatColumns(b, kReg)) {
        if (!regSpan.contains(col))
            return false;
    }
    for (const auto &dim : {kLane, kWarp}) {
        int bits = std::max(inBits(a, dim), inBits(b, dim));
        auto ca = paddedColumns(a, dim, bits);
        auto cb = paddedColumns(b, dim, bits);
        for (int i = 0; i < bits; ++i) {
            if (!regSpan.contains(ca[static_cast<size_t>(i)] ^
                                  cb[static_cast<size_t>(i)]))
                return false;
        }
    }
    return true;
}

bool
conversionIsIntraWarp(const LinearLayout &a, const LinearLayout &bIn)
{
    LinearLayout b = bIn.transposeOuts(a.getOutDimNames());
    // Same availability argument one level up: warp w holds the coset
    // span(R_a u L_a) + W_a w, so shuffles suffice iff
    //   Im(R_b u L_b) <= span(R_a u L_a),
    //   (W_a + W_b) columns in span(R_a u L_a).
    f2::EchelonBasis warpSpan(flatColumns(a, kReg));
    for (uint64_t col : flatColumns(a, kLane))
        warpSpan.insert(col);
    for (const auto &dim : {kReg, kLane}) {
        for (uint64_t col : flatColumns(b, dim)) {
            if (!warpSpan.contains(col))
                return false;
        }
    }
    int bits = std::max(inBits(a, kWarp), inBits(b, kWarp));
    auto ca = paddedColumns(a, kWarp, bits);
    auto cb = paddedColumns(b, kWarp, bits);
    for (int i = 0; i < bits; ++i) {
        if (!warpSpan.contains(ca[static_cast<size_t>(i)] ^
                               cb[static_cast<size_t>(i)]))
            return false;
    }
    return true;
}

int64_t
WarpShufflePlan::countShuffleInstructions(int elemBytes) const
{
    int payloadBytes = vecElems * elemBytes;
    int shufflesPerRound = (payloadBytes + 3) / 4;
    int64_t total = 0;
    for (const auto &round : xfers) {
        bool communicates = false;
        for (size_t lane = 0; lane < round.size(); ++lane) {
            if (round[lane].srcLane != static_cast<int32_t>(lane)) {
                communicates = true;
                break;
            }
        }
        if (communicates)
            total += shufflesPerRound;
    }
    return total;
}

Result<std::vector<std::vector<uint64_t>>, ExecDiagnostic>
WarpShufflePlan::execute(const std::vector<std::vector<uint64_t>> &src) const
{
    // Execution is total: every surprise — malformed register file,
    // corrupted plan — is reported as data so the engine can demote the
    // conversion instead of aborting a long-running process.
    trace::Span span("exec.shuffle", "exec");
    static auto &runs = metrics::counter("exec.shuffle.runs");
    runs.inc();
    if (LL_FAILPOINT("exec.shuffle.shape")) {
        return makeExecDiag(ExecError::FailpointInjected,
                            "exec.shuffle.shape",
                            "failpoint forced a shape mismatch");
    }
    if (static_cast<int>(src.size()) != warpSize || warpSize <= 0) {
        return makeExecDiag(ExecError::PlanShapeMismatch,
                            "exec.shuffle.shape",
                            "expected " + std::to_string(warpSize) +
                                " lanes, got " +
                                std::to_string(src.size()));
    }
    for (const auto &laneRegs : src) {
        if (static_cast<int>(laneRegs.size()) < numRegsA) {
            return makeExecDiag(
                ExecError::PlanShapeMismatch, "exec.shuffle.shape",
                "a lane holds " + std::to_string(laneRegs.size()) +
                    " registers; the plan reads " +
                    std::to_string(numRegsA));
        }
    }
    std::vector<std::vector<uint64_t>> dst(
        static_cast<size_t>(warpSize),
        std::vector<uint64_t>(static_cast<size_t>(numRegsB), ~uint64_t(0)));
    const bool failLane = LL_FAILPOINT("exec.shuffle.lane-range");
    const bool failReg = LL_FAILPOINT("exec.shuffle.reg-range");
    int64_t elementsMoved = 0;
    for (const auto &round : xfers) {
        for (size_t lane = 0; lane < round.size(); ++lane) {
            if (lane >= static_cast<size_t>(warpSize)) {
                return makeExecDiag(ExecError::PlanShapeMismatch,
                                    "exec.shuffle.shape",
                                    "round addresses more lanes than "
                                    "the warp holds");
            }
            const ShuffleXfer &x = round[lane];
            if (failLane || x.srcLane < 0 || x.srcLane >= warpSize) {
                return makeExecDiag(
                    ExecError::LaneOutOfRange, "exec.shuffle.lane-range",
                    "source lane " + std::to_string(x.srcLane) +
                        " outside warp of " + std::to_string(warpSize));
            }
            for (const auto &[ra, rb] : x.regPairs) {
                if (failReg || ra < 0 || ra >= numRegsA || rb < 0 ||
                    rb >= numRegsB) {
                    return makeExecDiag(
                        ExecError::RegisterOutOfRange,
                        "exec.shuffle.reg-range",
                        "register pair (" + std::to_string(ra) + ", " +
                            std::to_string(rb) + ") outside " +
                            std::to_string(numRegsA) + "/" +
                            std::to_string(numRegsB));
                }
                dst[lane][static_cast<size_t>(rb)] =
                    src[static_cast<size_t>(x.srcLane)]
                       [static_cast<size_t>(ra)];
                ++elementsMoved;
            }
        }
    }
    static auto &roundsRun = metrics::counter("exec.shuffle.rounds");
    roundsRun.add(static_cast<int64_t>(xfers.size()));
    static auto &moved = metrics::counter("exec.shuffle.elements_moved");
    moved.add(elementsMoved);
    if (span.active()) {
        span.arg("rounds", static_cast<int64_t>(xfers.size()));
        span.arg("warp_size", warpSize);
        span.arg("elements_moved", elementsMoved);
    }
    return dst;
}

Result<WarpShufflePlan>
planWarpShuffle(const LinearLayout &a, const LinearLayout &bIn,
                int elemBytes, const sim::GpuSpec &spec)
{
    auto notApplicable = [](std::string why) {
        return makeDiag(DiagCode::ShuffleNotApplicable,
                        "plan.warp-shuffle", std::move(why));
    };
    auto degenerate = [](std::string why) {
        return makeDiag(DiagCode::ShuffleDegenerate, "plan.warp-shuffle",
                        std::move(why));
    };
    // Structural preconditions: same output space, injective (no
    // broadcast — the shared path handles that), identical warp bases,
    // and a warp-preserving conversion.
    auto aOuts = a.getOutDimNames();
    auto bOuts = bIn.getOutDimNames();
    std::sort(aOuts.begin(), aOuts.end());
    std::sort(bOuts.begin(), bOuts.end());
    if (aOuts != bOuts)
        return notApplicable("different output spaces");
    LinearLayout b = bIn.transposeOuts(a.getOutDimNames());
    if (!a.isSurjective() || !b.isSurjective() || !a.isInjective() ||
        !b.isInjective()) {
        return notApplicable("layouts broadcast or are not surjective");
    }
    if (!a.hasInDim(kReg) || !a.hasInDim(kLane) || !b.hasInDim(kReg) ||
        !b.hasInDim(kLane)) {
        return notApplicable("register/lane dims missing");
    }
    if (a.getInDimSize(kLane) != b.getInDimSize(kLane) ||
        a.getInDimSize(kLane) != spec.warpSize) {
        return notApplicable("lane counts disagree with the warp size");
    }
    if (flatColumns(a, kWarp) != flatColumns(b, kWarp))
        return notApplicable("warp bases differ");
    if (!conversionIsIntraWarp(a, b))
        return notApplicable("conversion crosses warps");
    if (LL_FAILPOINT("shuffle.pair-basis"))
        return degenerate("failpoint shuffle.pair-basis forced failure");

    const int d = a.getTotalOutDimSizeLog2();
    const int regLogA = a.getInDimSizeLog2(kReg);
    const int laneLog = a.getInDimSizeLog2(kLane);
    const int dw = regLogA + laneLog; // warp-0 element space dimension

    auto aReg = flatColumns(a, kReg);
    auto bReg = flatColumns(b, kReg);
    auto aThr = flatColumns(a, kLane);
    auto bThr = flatColumns(b, kLane);

    // V: shared register columns, capped at a 32-bit shuffle payload.
    std::vector<uint64_t> vec = setIntersection(aReg, bReg);
    int maxVecBits = std::max(0, log2Ceil(4u) - log2Ceil(
                                  static_cast<uint64_t>(elemBytes)));
    if (static_cast<int>(vec.size()) > maxVecBits)
        vec.resize(static_cast<size_t>(maxVecBits));
    const int v = static_cast<int>(vec.size());

    // I, E, F, G as in the paper.
    std::vector<uint64_t> iBasis = setIntersection(aThr, bThr);
    std::vector<uint64_t> e = setDifference(aThr, iBasis);
    std::vector<uint64_t> f = setDifference(bThr, iBasis);
    if (e.size() != f.size())
        return degenerate("|E| != |F| despite equal lane counts");
    std::sort(e.begin(), e.end());
    std::sort(f.begin(), f.end());
    std::vector<uint64_t> g;
    for (size_t i = 0; i < e.size(); ++i)
        g.push_back(e[i] ^ f[i]);

    // R: extend V u I u G to a basis of the warp-0 element space using
    // A's own columns.
    f2::EchelonBasis ech;
    for (uint64_t x : vec) {
        if (!ech.insert(x))
            return degenerate("V is not independent");
    }
    for (uint64_t x : iBasis) {
        if (!ech.insert(x))
            return degenerate("V u I is not independent");
    }
    for (uint64_t x : g) {
        if (!ech.insert(x))
            return degenerate("exchange directions G are dependent");
    }
    std::vector<uint64_t> r;
    std::vector<uint64_t> w0Cols = aReg;
    w0Cols.insert(w0Cols.end(), aThr.begin(), aThr.end());
    for (uint64_t x : w0Cols) {
        if (ech.insert(x))
            r.push_back(x);
    }
    const int i = static_cast<int>(iBasis.size());
    const int gsz = static_cast<int>(g.size());
    const int rsz = static_cast<int>(r.size());
    if (v + i + gsz + rsz != dw)
        return degenerate("warp element space basis has wrong dimension");

    // Full-space coordinate system [V | I | G | R | Wrp].
    f2::F2Matrix basisM(d, d);
    {
        int col = 0;
        for (uint64_t x : vec)
            basisM.setCol(col++, x);
        for (uint64_t x : iBasis)
            basisM.setCol(col++, x);
        for (uint64_t x : g)
            basisM.setCol(col++, x);
        for (uint64_t x : r)
            basisM.setCol(col++, x);
        for (uint64_t x : flatColumns(a, kWarp))
            basisM.setCol(col++, x);
        if (col != d)
            return degenerate("basis column count mismatch");
    }
    if (!basisM.isInvertible())
        return degenerate("conversion basis is singular");
    f2::F2Matrix coordOf = basisM.inverse();

    LinearLayout binv = b.invert();

    WarpShufflePlan plan;
    plan.vecElems = 1 << v;
    plan.rounds = 1 << rsz;
    plan.numRegsA = a.getInDimSize(kReg);
    plan.numRegsB = b.getInDimSize(kReg);
    plan.warpSize = spec.warpSize;
    plan.xfers.assign(
        static_cast<size_t>(plan.rounds),
        std::vector<ShuffleXfer>(static_cast<size_t>(spec.warpSize)));
    // Pre-size every payload so register pairs land at their V-slot.
    for (auto &round : plan.xfers) {
        for (auto &x : round)
            x.regPairs.assign(static_cast<size_t>(plan.vecElems),
                              {-1, -1});
    }

    const int regLogB = b.getInDimSizeLog2(kReg);
    for (uint64_t in = 0; in < (uint64_t(1) << dw); ++in) {
        int32_t srcReg = static_cast<int32_t>(
            in & ((uint64_t(1) << regLogA) - 1));
        int32_t srcLane = static_cast<int32_t>(in >> regLogA);
        uint64_t x = a.applyFlat(in);
        uint64_t coords = coordOf.apply(x);
        if ((coords >> dw) != 0)
            return degenerate("warp-0 element has nonzero warp coord");
        int32_t vSlot = static_cast<int32_t>(
            coords & ((uint64_t(1) << v) - 1));
        int32_t round = static_cast<int32_t>(
            (coords >> (v + i + gsz)) & ((uint64_t(1) << rsz) - 1));

        uint64_t dstIn = binv.applyFlat(x);
        int32_t dstReg = static_cast<int32_t>(
            dstIn & ((uint64_t(1) << regLogB) - 1));
        int32_t dstLane = static_cast<int32_t>(
            (dstIn >> regLogB) & ((uint64_t(1) << laneLog) - 1));
        if ((dstIn >> (regLogB + laneLog)) != 0)
            return degenerate("warp-0 element maps outside warp 0 in B");

        ShuffleXfer &xfer = plan.xfers[static_cast<size_t>(round)]
                                      [static_cast<size_t>(dstLane)];
        if (xfer.srcLane == -1) {
            xfer.srcLane = srcLane;
        } else if (xfer.srcLane != srcLane) {
            // The theorem guarantees one source lane per slice per
            // destination; a violation means the plan is infeasible.
            return degenerate("slice contains two source lanes for one "
                              "destination lane");
        }
        auto &slot = xfer.regPairs[static_cast<size_t>(vSlot)];
        if (slot.first != -1)
            return degenerate("duplicate V-slot in shuffle payload");
        slot = {srcReg, dstReg};
    }

    // Every payload slot must be filled.
    for (const auto &round : plan.xfers) {
        for (const auto &x : round) {
            if (x.srcLane < 0)
                return degenerate("lane received no data in a round");
            for (const auto &[ra, rb] : x.regPairs) {
                if (ra < 0 || rb < 0)
                    return degenerate("unfilled payload slot");
            }
        }
    }
    return plan;
}

} // namespace codegen
} // namespace ll
