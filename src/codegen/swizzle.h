/**
 * @file
 * Optimal shared-memory swizzling (Section 5.4, Appendix 9.2).
 *
 * Given two distributed layouts A (writer) and B (reader) over the same
 * logical tensor, compute a shared-memory layout
 *     M : Vec x Bank x Idx -> F2^d
 * that maximizes read/write vectorization and provably minimizes bank
 * conflicts (Lemmas 9.4-9.6):
 *
 *  1. Vec = a basis of span(A_Reg) ^ span(B_Reg), capped at the 128-bit
 *     access width, becomes the low offset bits so both sides vectorize.
 *  2. The bank-index columns Idx are chosen with trivial intersection
 *     against P = span(Vec u A_Bank) u span(Vec u B_Bank), using the
 *     H = {e_i xor f_i} construction plus a complement basis C.
 *  3. Bank completes the basis.
 *
 * The module also provides the Lemma 9.4 analytic wavefront count and the
 * address calculation used by the simulator.
 */

#ifndef LL_CODEGEN_SWIZZLE_H
#define LL_CODEGEN_SWIZZLE_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "support/result.h"

namespace ll {
namespace codegen {

/** A shared-memory layout produced by the optimal-swizzle algorithm. */
struct SwizzledShared
{
    /** offset -> logical tensor; invertible; bases ordered Vec, Bank,
     *  Idx. */
    LinearLayout memLayout;
    /** tensor -> offset, the inverse map used for address generation. */
    LinearLayout tensorToOffset;
    int vecBits = 0;  ///< log2 of the vectorization (elements)
    int bankBits = 0; ///< log2 of elements covering all banks
    int idxBits = 0;  ///< log2 of the segment count

    /**
     * Bank-offset padding (the fallback ladder's padded rung): after
     * every padInterval linear elements, padElems storage cells are
     * skipped, rotating successive rows across banks the way classic
     * `pad = bankWidth` shared allocations do. Both values are either 0
     * (unpadded) or multiples of vecElems(), so padding commutes with
     * vec-aligned access windows; it is an affine tweak applied after
     * the F2-linear tensorToOffset map.
     */
    int64_t padInterval = 0;
    int64_t padElems = 0;

    /**
     * Multi-pass window (the scalar rung's answer to the CTA budget):
     * when > 0, the executors allocate only windowElems storage cells
     * and run ceil(storage / windowElems) store+load passes, masking
     * lanes whose offsets fall outside the current window
     * (sim::kInactiveLane). 0 means one pass over the whole tensor.
     * Always a power of two and a multiple of vecElems().
     */
    int64_t windowElems = 0;

    int vecElems() const { return 1 << vecBits; }
    bool padded() const { return padInterval > 0 && padElems > 0; }
    bool windowed() const { return windowElems > 0; }

    /** Linear offset -> storage offset (identity when unpadded). */
    int64_t
    padOffset(int64_t off) const
    {
        return padded() ? off + (off / padInterval) * padElems : off;
    }

    /** Storage offset back to the linear offset (inverse of padOffset
     *  on its image). */
    int64_t
    unpadOffset(int64_t stored) const
    {
        return padded()
                   ? stored - (stored / (padInterval + padElems)) * padElems
                   : stored;
    }

    /** Storage cells needed for `numElems` linear elements. */
    int64_t
    storageElems(int64_t numElems) const
    {
        return padded() ? padOffset(numElems - 1) + 1 : numElems;
    }

    /** Cells the executors actually allocate (one window when
     *  windowed, the whole tensor otherwise). */
    int64_t
    allocElems(int64_t numElems) const
    {
        int64_t storage = storageElems(numElems);
        return windowed() ? std::min(windowElems, storage) : storage;
    }

    /** Store+load passes the executors run over numElems elements. */
    int64_t
    passesFor(int64_t numElems) const
    {
        int64_t storage = storageElems(numElems);
        int64_t window = allocElems(numElems);
        return window > 0 ? (storage + window - 1) / window : 1;
    }
};

/**
 * Run the optimal-swizzle algorithm for conversion A -> B with elements
 * of elemBytes width. Both layouts must be surjective distributed
 * layouts over the same output space.
 */
SwizzledShared computeOptimalSwizzle(const LinearLayout &a,
                                     const LinearLayout &b, int elemBytes,
                                     const sim::GpuSpec &spec,
                                     int maxVecBytesOverride = 0);

/**
 * Non-throwing computeOptimalSwizzle: basis-construction failures (and
 * the failpoint sites "swizzle.word-basis", "swizzle.segment-basis",
 * "swizzle.bank-basis") come back as Diagnostics instead of LogicError,
 * so the planner can step down its fallback ladder.
 */
Result<SwizzledShared>
tryComputeOptimalSwizzle(const LinearLayout &a, const LinearLayout &b,
                         int elemBytes, const sim::GpuSpec &spec,
                         int maxVecBytesOverride = 0);

/**
 * Wrap an arbitrary invertible memory layout (e.g. the legacy
 * vec/perPhase/maxPhase mma swizzle) as a SwizzledShared usable by the
 * executors: the vectorization is the largest run of low offset columns
 * lying in both layouts' register spans, and the bank/idx split follows
 * the same 128-byte rule as the optimal construction.
 */
SwizzledShared wrapMemoryLayout(const LinearLayout &mem,
                                const LinearLayout &a,
                                const LinearLayout &b, int elemBytes,
                                const sim::GpuSpec &spec);

/** Non-throwing wrapMemoryLayout. */
Result<SwizzledShared>
tryWrapMemoryLayout(const LinearLayout &mem, const LinearLayout &a,
                    const LinearLayout &b, int elemBytes,
                    const sim::GpuSpec &spec);

/**
 * The padded rung of the fallback ladder: an *unswizzled* row-major
 * shared layout over A's output space with bank-offset padding chosen
 * to break the row-stride conflicts swizzling would normally remove.
 * The padding is kept only when it measurably lowers the enumerated
 * wavefront totals for both sides. Failpoint site: "plan.padded".
 */
Result<SwizzledShared>
planPaddedShared(const LinearLayout &a, const LinearLayout &b,
                 int elemBytes, const sim::GpuSpec &spec);

/**
 * The terminal rung: the same row-major layout accessed element by
 * element (vectorization 1), with no swizzle and no padding. Correct
 * for any pair of surjective layouts. Failpoint site: "plan.scalar".
 */
Result<SwizzledShared>
planScalarShared(const LinearLayout &a, const LinearLayout &b,
                 int elemBytes, const sim::GpuSpec &spec);

/**
 * Lemma 9.4: the analytic number of wavefronts per warp access when a
 * distributed layout reads/writes through `swz`. Returns n * c where
 * c = |span(S_Vec u S_Idx) ^ span(L_Thr)| and n is the number of banks
 * each vectorized element covers (>= 1). Requires an unpadded swizzle:
 * padding breaks the per-access uniformity the lemma rests on — padded
 * layouts are audited by totals via enumerateWavefronts instead.
 */
int64_t analyticWavefronts(const SwizzledShared &swz,
                           const LinearLayout &dist, int elemBytes,
                           const sim::GpuSpec &spec);

/**
 * Non-throwing analyticWavefronts: a padded swizzle comes back as an
 * InvalidInput Diagnostic (stage "swizzle.analytic") instead of an
 * exception — Lemma 9.4's per-access uniformity does not survive
 * padding, so padded layouts must be priced by enumerateWavefronts.
 */
Result<int64_t> tryAnalyticWavefronts(const SwizzledShared &swz,
                                      const LinearLayout &dist,
                                      int elemBytes,
                                      const sim::GpuSpec &spec);

/**
 * Distinct vectorized register groups of `dist` through `swz`: one
 * representative register index per vec-aligned offset window (computed
 * at lane 0, warp 0 — the grouping is lane/warp-invariant by
 * linearity). Each (warp, rep) pair is one simulated warp access.
 */
std::vector<int32_t> registerGroupReps(const SwizzledShared &swz,
                                       const LinearLayout &dist);

/** Warp accesses one full store or load pass issues: warps x reps. */
int64_t countWarpAccesses(const SwizzledShared &swz,
                          const LinearLayout &dist);

/**
 * Total wavefronts of a full store or load pass, measured by pricing
 * every warp access on sim::SharedMemory's bank model. Unlike
 * analyticWavefronts this makes no uniformity assumption, so it is
 * valid for padded layouts (where different rows hit different bank
 * phases); the padded rung is priced and audited with these totals.
 */
int64_t enumerateWavefronts(const SwizzledShared &swz,
                            const LinearLayout &dist, int elemBytes,
                            const sim::GpuSpec &spec);

/**
 * The original enumerateWavefronts — one warpAccessOffsets layout walk
 * per access — kept as the differential oracle for the table-driven
 * fast path. enumerateWavefronts dispatches here under
 * refmode::active().
 */
int64_t enumerateWavefronts_reference(const SwizzledShared &swz,
                                      const LinearLayout &dist,
                                      int elemBytes,
                                      const sim::GpuSpec &spec);

/**
 * Precomputed per-warp access addressing for one (swizzle, distributed
 * layout) pair. The map lane/reg/warp -> storage offset decomposes as
 *     off(rep | lane | warp) = C(rep) ^ C(lane) ^ C(warp)
 * over the composed columns C = tensorToOffset . dist (both maps are
 * F2-linear; the affine padOffset is applied per lane afterwards, and
 * the vec-window mask commutes with XOR). Building the table costs one
 * applyFlat per input bit; each warp access afterwards is warpSize XORs
 * — no layout objects, no per-access allocation. The differential suite
 * pins the produced offsets bit-identical to warpAccessOffsets.
 *
 * `dist` must already be canonical: in-dims (register, lane, warp) in
 * that order, outputs transposed to the swizzle's order — the form
 * enumerateWavefronts and the executors work with.
 */
class WarpAccessTable
{
  public:
    WarpAccessTable(const SwizzledShared &swz, const LinearLayout &dist);

    int warpSize() const { return static_cast<int>(laneMasked_.size()); }

    /**
     * Append the warpSize() per-lane storage offsets of one vectorized
     * warp access (register-group rep, warp) to `out` — identical
     * values, in lane order, to warpAccessOffsets(swz, dist, rep, warp,
     * warpSize()).
     */
    void offsetsInto(int32_t rep, int32_t warp,
                     std::vector<int64_t> &out) const;

  private:
    const SwizzledShared &swz_;
    int regLog_ = 0;
    int warpShift_ = 0;             // regLog + laneLog
    std::vector<uint64_t> cols_;    // composed columns, input-bit order
    std::vector<uint64_t> laneMasked_; // per-lane XOR, vec bits cleared
    uint64_t keepMask_ = 0;         // ~vecMask
};

/**
 * Per-lane element offsets for one vectorized warp access: lane l of
 * `dist` (at the given warp and register-group rep) accesses
 * swz.vecElems() consecutive elements starting at the returned offset.
 * `repBase` enumerates the register groups: it is the register index
 * with the vectorized bits cleared. Offsets are *storage* offsets: when
 * the swizzle is padded, padOffset has already been applied (padding is
 * a multiple of vecElems, so windows stay vec-aligned).
 */
std::vector<int64_t> warpAccessOffsets(const SwizzledShared &swz,
                                       const LinearLayout &dist,
                                       int32_t repBase, int32_t warp,
                                       int warpSize);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_SWIZZLE_H
