/**
 * @file
 * Optimal shared-memory swizzling (Section 5.4, Appendix 9.2).
 *
 * Given two distributed layouts A (writer) and B (reader) over the same
 * logical tensor, compute a shared-memory layout
 *     M : Vec x Bank x Idx -> F2^d
 * that maximizes read/write vectorization and provably minimizes bank
 * conflicts (Lemmas 9.4-9.6):
 *
 *  1. Vec = a basis of span(A_Reg) ^ span(B_Reg), capped at the 128-bit
 *     access width, becomes the low offset bits so both sides vectorize.
 *  2. The bank-index columns Idx are chosen with trivial intersection
 *     against P = span(Vec u A_Bank) u span(Vec u B_Bank), using the
 *     H = {e_i xor f_i} construction plus a complement basis C.
 *  3. Bank completes the basis.
 *
 * The module also provides the Lemma 9.4 analytic wavefront count and the
 * address calculation used by the simulator.
 */

#ifndef LL_CODEGEN_SWIZZLE_H
#define LL_CODEGEN_SWIZZLE_H

#include <cstdint>
#include <vector>

#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"

namespace ll {
namespace codegen {

/** A shared-memory layout produced by the optimal-swizzle algorithm. */
struct SwizzledShared
{
    /** offset -> logical tensor; invertible; bases ordered Vec, Bank,
     *  Idx. */
    LinearLayout memLayout;
    /** tensor -> offset, the inverse map used for address generation. */
    LinearLayout tensorToOffset;
    int vecBits = 0;  ///< log2 of the vectorization (elements)
    int bankBits = 0; ///< log2 of elements covering all banks
    int idxBits = 0;  ///< log2 of the segment count

    int vecElems() const { return 1 << vecBits; }
};

/**
 * Run the optimal-swizzle algorithm for conversion A -> B with elements
 * of elemBytes width. Both layouts must be surjective distributed
 * layouts over the same output space.
 */
SwizzledShared computeOptimalSwizzle(const LinearLayout &a,
                                     const LinearLayout &b, int elemBytes,
                                     const sim::GpuSpec &spec,
                                     int maxVecBytesOverride = 0);

/**
 * Wrap an arbitrary invertible memory layout (e.g. the legacy
 * vec/perPhase/maxPhase mma swizzle) as a SwizzledShared usable by the
 * executors: the vectorization is the largest run of low offset columns
 * lying in both layouts' register spans, and the bank/idx split follows
 * the same 128-byte rule as the optimal construction.
 */
SwizzledShared wrapMemoryLayout(const LinearLayout &mem,
                                const LinearLayout &a,
                                const LinearLayout &b, int elemBytes,
                                const sim::GpuSpec &spec);

/**
 * Lemma 9.4: the analytic number of wavefronts per warp access when a
 * distributed layout reads/writes through `swz`. Returns n * c where
 * c = |span(S_Vec u S_Idx) ^ span(L_Thr)| and n is the number of banks
 * each vectorized element covers (>= 1).
 */
int64_t analyticWavefronts(const SwizzledShared &swz,
                           const LinearLayout &dist, int elemBytes,
                           const sim::GpuSpec &spec);

/**
 * Per-lane element offsets for one vectorized warp access: lane l of
 * `dist` (at the given warp and register-group rep) accesses
 * swz.vecElems() consecutive elements starting at the returned offset.
 * `repBase` enumerates the register groups: it is the register index
 * with the vectorized bits cleared.
 */
std::vector<int64_t> warpAccessOffsets(const SwizzledShared &swz,
                                       const LinearLayout &dist,
                                       int32_t repBase, int32_t warp,
                                       int warpSize);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_SWIZZLE_H
