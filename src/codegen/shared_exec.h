/**
 * @file
 * Executable shared-memory layout conversion.
 *
 * Runs a conversion plan's shared-memory path on the simulator: every
 * warp stores its fragment through the swizzled layout, then loads it
 * back in the destination layout. Element payloads are their flattened
 * tensor indices, so the executor can verify that every element lands in
 * exactly the register that the destination layout demands — the
 * correctness oracle behind the Table 4 and Figure 7 experiments — while
 * the simulator counts transactions and bank-conflict wavefronts.
 */

#ifndef LL_CODEGEN_SHARED_EXEC_H
#define LL_CODEGEN_SHARED_EXEC_H

#include "codegen/swizzle.h"
#include "layout/linear_layout.h"
#include "sim/memory_sim.h"
#include "support/result.h"

namespace ll {
namespace codegen {

struct SharedConversionResult
{
    sim::AccessStats storeStats;
    sim::AccessStats loadStats;
    bool correct = false;
};

/**
 * Execute src -> shared(swz) -> dst for the whole tensor and verify
 * element placement. Layouts must be surjective over the same output
 * space. A windowed swizzle (windowElems > 0) is run in multiple
 * store+load passes through one window-sized allocation, masking lanes
 * whose offsets fall outside the current window. Total over any input:
 * oversize allocations, out-of-window offsets, and blown bank-conflict
 * budgets come back as ExecDiagnostics instead of aborting. Failpoint
 * sites: "exec.shared.alloc", "exec.shared.window",
 * "exec.shared.bank-budget".
 */
Result<SharedConversionResult, ExecDiagnostic>
executeSharedConversion(const SwizzledShared &swz, const LinearLayout &src,
                        const LinearLayout &dst, int elemBytes,
                        const sim::GpuSpec &spec);

/** The data produced by one simulated shared round trip. */
struct SharedRoundTrip
{
    /** Values each destination register ends up holding, indexed by the
     *  flat dst input index; sim::SharedMemory::kPoison where no load
     *  reached the register. */
    std::vector<uint64_t> dstFile;
    sim::AccessStats storeStats;
    sim::AccessStats loadStats;
};

/**
 * Execute the shared round trip on an *explicit* source register file:
 * srcFile[flat src input index] holds the payload that thread register
 * carries. Unlike executeSharedConversion, nothing about the payloads is
 * derived from the swizzle itself, so a corrupted address map cannot
 * self-consistently hide — aliased stores lose data and stale cells
 * surface as kPoison. This is the execution backend of the differential
 * oracle (src/check). Both layouts must have their input dims in
 * canonical (register, lane, warp) order; each side's warp size is its
 * own lane-dim size. Total over any input: a mismatched register file,
 * an oversize allocation, an out-of-window offset, or a blown
 * bank-conflict budget comes back as an ExecDiagnostic instead of
 * aborting, so the engine can demote the plan. Failpoint sites:
 * "exec.shared.file-size", "exec.shared.alloc", "exec.shared.window",
 * "exec.shared.bank-budget".
 */
Result<SharedRoundTrip, ExecDiagnostic>
runSharedRoundTrip(const SwizzledShared &swz, const LinearLayout &src,
                   const LinearLayout &dst,
                   const std::vector<uint64_t> &srcFile, int elemBytes,
                   const sim::GpuSpec &spec);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_SHARED_EXEC_H
