#include "codegen/vectorize.h"

#include <algorithm>

#include "support/bits.h"

namespace ll {
namespace codegen {

std::string
MemoryInstruction::toString() const
{
    return "v" + std::to_string(vecWords) + ".b" + std::to_string(wordBits);
}

MemoryInstruction
selectMemoryInstruction(const LinearLayout &layout, int elemBits,
                        int maxVectorBits)
{
    int bits = accessBitwidth(layout, elemBits, maxVectorBits);
    MemoryInstruction inst;
    if (bits <= 32) {
        inst.vecWords = 1;
        inst.wordBits = bits;
    } else {
        inst.vecWords = bits / 32;
        inst.wordBits = 32;
    }
    return inst;
}

int
accessBitwidth(const LinearLayout &layout, int elemBits, int maxVectorBits)
{
    int64_t contig = layout.getNumConsecutiveInOut();
    int64_t bits = contig * elemBits;
    bits = std::min<int64_t>(bits, maxVectorBits);
    // Instructions exist for 8/16/32/64/128 bits; round down to one.
    bits = int64_t(1) << log2Floor(static_cast<uint64_t>(bits));
    return static_cast<int>(std::max<int64_t>(bits, elemBits));
}

} // namespace codegen
} // namespace ll
