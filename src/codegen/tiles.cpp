#include "codegen/tiles.h"

#include <algorithm>

#include "layout/dims.h"
#include "support/bits.h"
#include "support/failpoint.h"

namespace ll {
namespace codegen {

LinearLayout
vectorTile(int vecElems)
{
    return LinearLayout::identity1D(vecElems, dims::kReg, dims::kOffset);
}

LinearLayout
ldmatrixTile(int elemBytes)
{
    llUserCheck(elemBytes == 1 || elemBytes == 2 || elemBytes == 4,
                "ldmatrix supports 1/2/4-byte elements");
    return LinearLayout::identity1D(4 / elemBytes, dims::kReg,
                                    dims::kOffset) *
           LinearLayout::identity1D(4, dims::kLane, dims::kOffset);
}

bool
tileMatches(const LinearLayout &cvt, const LinearLayout &tile)
{
    if (LL_FAILPOINT("tiles.divide"))
        return false;
    return cvt.divideLeft(tile).has_value();
}

std::optional<LinearLayout>
permuteRegistersForTile(const LinearLayout &cvt, int vecElems)
{
    if (!cvt.hasInDim(dims::kReg))
        return std::nullopt;
    const int v = log2Exact(static_cast<uint64_t>(vecElems));
    const int regLog = cvt.getInDimSizeLog2(dims::kReg);
    if (v > regLog)
        return std::nullopt;

    // Find, for each target offset bit i < v, a register basis vector
    // mapping exactly to offset 2^i.
    auto flat = cvt.flattenedBases(dims::kReg);
    std::vector<int32_t> order;
    std::vector<bool> used(flat.size(), false);
    for (int i = 0; i < v; ++i) {
        int found = -1;
        for (size_t j = 0; j < flat.size(); ++j) {
            if (!used[j] && flat[j] == (uint64_t(1) << i)) {
                found = static_cast<int>(j);
                break;
            }
        }
        if (found < 0)
            return std::nullopt;
        used[static_cast<size_t>(found)] = true;
        order.push_back(found);
    }
    for (size_t j = 0; j < flat.size(); ++j) {
        if (!used[j])
            order.push_back(static_cast<int32_t>(j));
    }

    // Rebuild with the register bases permuted.
    LinearLayout::BasesT newBases;
    for (const auto &inDim : cvt.getInDimNames()) {
        std::vector<std::vector<int32_t>> vecs;
        if (inDim == dims::kReg) {
            for (int32_t idx : order)
                vecs.push_back(cvt.getBasis(dims::kReg, idx));
        } else {
            for (int32_t i = 0; i < cvt.getInDimSizeLog2(inDim); ++i)
                vecs.push_back(cvt.getBasis(inDim, i));
        }
        newBases.insert(inDim, std::move(vecs));
    }
    LinearLayout permuted(std::move(newBases), cvt.getOutDims(),
                          /*requireSurjective=*/false);
    if (!tileMatches(permuted, vectorTile(vecElems)))
        return std::nullopt;
    return permuted;
}

int
maxVectorization(const LinearLayout &cvt, int maxElems)
{
    if (!cvt.hasInDim(dims::kReg))
        return 1;
    int cap = std::min<int>(log2Ceil(static_cast<uint64_t>(maxElems)),
                            cvt.getInDimSizeLog2(dims::kReg));
    for (int v = cap; v > 0; --v) {
        if (permuteRegistersForTile(cvt, 1 << v).has_value())
            return 1 << v;
    }
    return 1;
}

} // namespace codegen
} // namespace ll
