#include "codegen/swizzle.h"

#include "sim/memory_sim.h"

#include <algorithm>
#include <bit>
#include <set>

#include "f2/subspace.h"
#include "layout/dims.h"
#include "support/bits.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/parallel.h"
#include "support/refmode.h"
#include "support/trace.h"

namespace ll {
namespace codegen {

namespace {

/** Nonzero flattened basis columns of one input dim (empty if absent). */
std::vector<uint64_t>
nonzeroColumns(const LinearLayout &layout, const std::string &inDim)
{
    std::vector<uint64_t> out;
    if (!layout.hasInDim(inDim))
        return out;
    for (uint64_t c : layout.flattenedBases(inDim)) {
        if (c != 0)
            out.push_back(c);
    }
    return out;
}

/** Set difference u \ v by column value. */
std::vector<uint64_t>
setDifference(const std::vector<uint64_t> &u, const std::vector<uint64_t> &v)
{
    std::vector<uint64_t> out;
    for (uint64_t x : u) {
        if (std::find(v.begin(), v.end(), x) == v.end())
            out.push_back(x);
    }
    return out;
}

/**
 * Number of 128-byte wavefront groups one warp access of `dist` splits
 * into: lanes * vecBytes / wavefrontBytes. The high log2(groups) lane
 * *bits* select the group, so they land in separate wavefronts and can
 * never bank-conflict — they must be excluded from the Lemma 9.4 span
 * intersection. For 32-lane warps this reduces to the paper's
 * vecBytes / bankWidth rule (Appendix 9.2); 64-lane wavefronts (CDNA)
 * split even scalar accesses in half, which the original rule missed.
 */
int64_t
wavefrontGroups(const LinearLayout &dist, int vecBytes,
                const sim::GpuSpec &spec)
{
    int64_t lanes =
        dist.hasInDim(dims::kLane) ? dist.getInDimSize(dims::kLane) : 1;
    return std::max<int64_t>(1, lanes * vecBytes / spec.wavefrontBytes);
}

/** The optimal-swizzle construction; callers wrap the try/catch. */
Result<SwizzledShared>
optimalSwizzleImpl(const LinearLayout &a, const LinearLayout &bIn,
                   int elemBytes, const sim::GpuSpec &spec,
                   int maxVecBytesOverride)
{
    if (!a.isSurjective() || !bIn.isSurjective()) {
        return makeDiag(DiagCode::InvalidInput, "plan.optimal-swizzle",
                        "swizzle inputs must be surjective layouts");
    }
    LinearLayout b = bIn.transposeOuts(a.getOutDimNames());
    const int d = a.getTotalOutDimSizeLog2();

    auto aReg = nonzeroColumns(a, dims::kReg);
    auto bReg = nonzeroColumns(b, dims::kReg);
    auto aThr = nonzeroColumns(a, dims::kLane);
    auto bThr = nonzeroColumns(b, dims::kLane);

    // --- Step 1: vectorization basis V --------------------------------
    std::vector<uint64_t> vec = f2::intersectSpans(aReg, bReg, d);
    const int maxVecBytes = maxVecBytesOverride > 0
                                ? maxVecBytesOverride
                                : spec.maxVectorBits / 8;
    const int maxVecBits =
        std::max(0, log2Exact(static_cast<uint64_t>(maxVecBytes)) -
                        log2Exact(static_cast<uint64_t>(elemBytes)));
    if (static_cast<int>(vec.size()) > maxVecBits)
        vec.resize(static_cast<size_t>(maxVecBits));
    const int v = static_cast<int>(vec.size());

    // --- Step 2: bank space size --------------------------------------
    const int vecBytes = (1 << v) * elemBytes;
    const int totalBankBytes = spec.numBanks * spec.bankWidthBytes;
    int bBits = vecBytes >= totalBankBytes
                    ? 0
                    : log2Exact(static_cast<uint64_t>(totalBankBytes /
                                                      vecBytes));
    bBits = std::min(bBits, d - v);
    const int sBits = d - v - bBits;

    // Accesses spilling past one 128-byte wavefront split transactions,
    // so the last log2(groups) thread bits fall outside the window and
    // do not contribute to bank conflicts (Appendix 9.2, generalized to
    // the layout's lane count — see wavefrontGroups).
    //
    // Shrink on the per-bit basis list (high lane *bits* cross
    // transactions, whether or not they broadcast), then drop zeros.
    auto shrinkThreadBits = [&](const LinearLayout &l) {
        std::vector<uint64_t> cols;
        if (l.hasInDim(dims::kLane))
            cols = l.flattenedBases(dims::kLane);
        const int removeCount = log2Exact(static_cast<uint64_t>(
            wavefrontGroups(l, vecBytes, spec)));
        int keep = std::max<int>(
            0, static_cast<int>(cols.size()) - removeCount);
        cols.resize(static_cast<size_t>(keep));
        std::vector<uint64_t> nonzero;
        for (uint64_t x : cols) {
            if (x != 0)
                nonzero.push_back(x);
        }
        return nonzero;
    };
    auto aBank = shrinkThreadBits(a);
    auto bBank = shrinkThreadBits(b);

    // --- Step 3: segment-index basis with trivial intersection vs P ---
    auto e = setDifference(aBank, bBank);
    auto f = setDifference(bBank, aBank);
    if (e.size() > f.size())
        std::swap(e, f);
    std::sort(e.begin(), e.end());
    std::sort(f.begin(), f.end());
    std::vector<uint64_t> h;
    for (size_t i = 0; i < e.size(); ++i)
        h.push_back(e[i] ^ f[i]);

    std::vector<uint64_t> pAll = vec;
    pAll.insert(pAll.end(), aBank.begin(), aBank.end());
    pAll.insert(pAll.end(), bBank.begin(), bBank.end());
    auto c = f2::complementBasis(pAll, d);

    f2::EchelonBasis chosen(vec);

    // Sub-word elements (2^v * w < bank width): the low offset bits
    // select a byte *within* a bank word. Fill them so that lane pairs
    // that must diverge land in different bytes of one word (shared
    // thread columns I) or in different banks (H pairs, whose partner
    // column lands in the bank region) — this removes the conflicts the
    // paper's Lemma 9.4 leaves open in its "not enough vectorization"
    // case.
    const int wordBits =
        vecBytes < spec.bankWidthBytes
            ? log2Exact(static_cast<uint64_t>(spec.bankWidthBytes /
                                              vecBytes))
            : 0;
    std::vector<uint64_t> word;
    {
        auto addWord = [&](const std::vector<uint64_t> &cands) {
            for (uint64_t cand : cands) {
                if (static_cast<int>(word.size()) >= wordBits)
                    return;
                if (chosen.insert(cand))
                    word.push_back(cand);
            }
        };
        std::vector<uint64_t> shared = setDifference(
            aBank, setDifference(aBank, bBank)); // aBank ^ bBank
        addWord(shared);
        addWord(h);
        addWord(c);
        addWord(bBank);
        addWord(aBank);
        std::vector<uint64_t> units;
        for (int iu = 0; iu < d; ++iu)
            units.push_back(uint64_t(1) << iu);
        addWord(units);
    }
    if (LL_FAILPOINT("swizzle.word-basis") ||
        static_cast<int>(word.size()) != std::min(wordBits, d - v)) {
        return makeDiag(DiagCode::SwizzleBasisIncomplete,
                        "swizzle.word-basis",
                        "failed to fill the word-internal bits");
    }

    std::vector<uint64_t> idx;
    auto tryAdd = [&](const std::vector<uint64_t> &cands) {
        for (uint64_t cand : cands) {
            if (static_cast<int>(idx.size()) >= sBits)
                return;
            if (chosen.insert(cand))
                idx.push_back(cand);
        }
    };
    tryAdd(h);
    tryAdd(c);
    if (static_cast<int>(idx.size()) < sBits) {
        // Bank conflicts are unavoidable; fill from A's thread columns
        // (penalizing reads and writes symmetrically), then anything.
        tryAdd(aBank);
        std::vector<uint64_t> units;
        for (int i = 0; i < d; ++i)
            units.push_back(uint64_t(1) << i);
        tryAdd(units);
    }
    if (LL_FAILPOINT("swizzle.segment-basis") ||
        static_cast<int>(idx.size()) != sBits) {
        return makeDiag(DiagCode::SwizzleBasisIncomplete,
                        "swizzle.segment-basis",
                        "failed to complete the segment basis");
    }

    // --- Step 4: bank columns complete the basis -----------------------
    // Any completion minimizes conflicts equally (Lemma 9.4 only depends
    // on Vec and Idx), so prefer the reader's then the writer's thread
    // columns: that keeps each 4-byte-per-lane group contiguous in the
    // offset space, which is exactly what lets ldmatrix/stmatrix tiles
    // divide the conversion (Section 5.3).
    const int bankCount = bBits - static_cast<int>(word.size());
    std::vector<uint64_t> vecAndIdx = vec;
    vecAndIdx.insert(vecAndIdx.end(), word.begin(), word.end());
    vecAndIdx.insert(vecAndIdx.end(), idx.begin(), idx.end());
    f2::EchelonBasis bankEch(vecAndIdx);
    std::vector<uint64_t> bank;
    auto addBank = [&](const std::vector<uint64_t> &cands) {
        for (uint64_t cand : cands) {
            if (static_cast<int>(bank.size()) >= bankCount)
                return;
            if (bankEch.insert(cand))
                bank.push_back(cand);
        }
    };
    addBank(bBank);
    addBank(aBank);
    {
        std::vector<uint64_t> units;
        for (int iu = 0; iu < d; ++iu)
            units.push_back(uint64_t(1) << iu);
        addBank(units);
    }
    if (LL_FAILPOINT("swizzle.bank-basis") ||
        static_cast<int>(bank.size()) != bankCount) {
        return makeDiag(DiagCode::SwizzleBasisIncomplete,
                        "swizzle.bank-basis",
                        "bank completion did not reach " +
                            std::to_string(bankCount) + " columns");
    }

    // --- Assemble M: offset bit order [Vec | Word | Bank | Idx] --------
    f2::F2Matrix m(d, d);
    int col = 0;
    for (uint64_t x : vec)
        m.setCol(col++, x);
    for (uint64_t x : word)
        m.setCol(col++, x);
    for (uint64_t x : bank)
        m.setCol(col++, x);
    for (uint64_t x : idx)
        m.setCol(col++, x);

    SwizzledShared out;
    out.memLayout = LinearLayout::fromF2Matrix(
        m, {{dims::kOffset, int32_t(1) << d}}, a.getOutDims(),
        /*requireSurjective=*/true);
    out.tensorToOffset = out.memLayout.invert();
    out.vecBits = v;
    out.bankBits = bBits;
    out.idxBits = sBits;
    return out;
}

} // namespace

Result<SwizzledShared>
tryComputeOptimalSwizzle(const LinearLayout &a, const LinearLayout &b,
                         int elemBytes, const sim::GpuSpec &spec,
                         int maxVecBytesOverride)
{
    trace::Span span("swizzle.optimal", "plan");
    static auto &attempts = metrics::counter("swizzle.optimal.attempts");
    attempts.inc();
    try {
        auto r = optimalSwizzleImpl(a, b, elemBytes, spec,
                                    maxVecBytesOverride);
        if (span.active()) {
            if (r.ok()) {
                span.arg("outcome", "ok");
                span.arg("vec_bits", r->vecBits);
                span.arg("idx_bits", r->idxBits);
            } else {
                span.arg("outcome", "reject");
                span.arg("reason", r.diag().toString());
            }
        }
        if (!r.ok()) {
            static auto &rejects =
                metrics::counter("swizzle.optimal.rejects");
            rejects.inc();
        }
        return r;
    } catch (const std::exception &e) {
        static auto &rejects = metrics::counter("swizzle.optimal.rejects");
        rejects.inc();
        span.arg("outcome", "internal-error");
        return makeDiag(DiagCode::PlannerInternalError,
                        "plan.optimal-swizzle", e.what());
    }
}

SwizzledShared
computeOptimalSwizzle(const LinearLayout &a, const LinearLayout &bIn,
                      int elemBytes, const sim::GpuSpec &spec,
                      int maxVecBytesOverride)
{
    auto r = tryComputeOptimalSwizzle(a, bIn, elemBytes, spec,
                                      maxVecBytesOverride);
    llUserCheck(r.ok(),
                "computeOptimalSwizzle: " << r.diag().toString());
    return std::move(*r);
}

namespace {

Result<SwizzledShared>
wrapMemoryLayoutImpl(const LinearLayout &mem, const LinearLayout &a,
                     const LinearLayout &b, int elemBytes,
                     const sim::GpuSpec &spec)
{
    if (!mem.isInvertible()) {
        return makeDiag(DiagCode::InvalidInput, "plan.wrap-memory",
                        "memory layout must be invertible");
    }
    LinearLayout aligned = mem.transposeOuts(a.getOutDimNames());
    const int d = aligned.getTotalOutDimSizeLog2();

    // Vectorization: low offset columns shared by both register spans.
    f2::EchelonBasis aRegSpan(nonzeroColumns(a, dims::kReg));
    f2::EchelonBasis bRegSpan(nonzeroColumns(
        b.transposeOuts(a.getOutDimNames()), dims::kReg));
    auto cols = aligned.flattenedBases(dims::kOffset);
    int v = 0;
    const int maxVecBits =
        std::max(0, log2Exact(static_cast<uint64_t>(
                        spec.maxVectorBits / 8)) -
                        log2Exact(static_cast<uint64_t>(elemBytes)));
    while (v < static_cast<int>(cols.size()) && v < maxVecBits &&
           aRegSpan.contains(cols[static_cast<size_t>(v)]) &&
           bRegSpan.contains(cols[static_cast<size_t>(v)])) {
        ++v;
    }

    SwizzledShared out;
    out.memLayout = aligned;
    out.tensorToOffset = aligned.invert();
    out.vecBits = v;
    const int vecBytes = (1 << v) * elemBytes;
    const int totalBankBytes = spec.numBanks * spec.bankWidthBytes;
    int bBits = vecBytes >= totalBankBytes
                    ? 0
                    : log2Exact(static_cast<uint64_t>(totalBankBytes /
                                                      vecBytes));
    out.bankBits = std::min(bBits, d - v);
    out.idxBits = d - v - out.bankBits;
    return out;
}

/** Canonical (register, lane, warp) in-dim order with size-1 fills, so
 *  access enumeration agrees with the oracle's execution order. */
LinearLayout
canonicalDist(const LinearLayout &layout)
{
    LinearLayout out = layout;
    for (const auto &dim : {dims::kReg, dims::kLane, dims::kWarp}) {
        if (!out.hasInDim(dim))
            out = out * LinearLayout::identity1D(
                            1, dim, out.getOutDimNames().front());
    }
    return out.transposeIns({dims::kReg, dims::kLane, dims::kWarp});
}

/** The unswizzled linear memory layout over `a`'s output space: offset
 *  bit i is out-dim bit i in `a`'s dim order (first dim fastest). */
LinearLayout
linearMemoryLayout(const LinearLayout &a)
{
    LinearLayout mem = LinearLayout::empty();
    for (const auto &[dim, size] : a.getOutDims())
        mem = mem * LinearLayout::identity1D(size, dims::kOffset, dim);
    return mem;
}

} // namespace

Result<SwizzledShared>
tryWrapMemoryLayout(const LinearLayout &mem, const LinearLayout &a,
                    const LinearLayout &b, int elemBytes,
                    const sim::GpuSpec &spec)
{
    try {
        return wrapMemoryLayoutImpl(mem, a, b, elemBytes, spec);
    } catch (const std::exception &e) {
        return makeDiag(DiagCode::PlannerInternalError,
                        "plan.wrap-memory", e.what());
    }
}

SwizzledShared
wrapMemoryLayout(const LinearLayout &mem, const LinearLayout &a,
                 const LinearLayout &b, int elemBytes,
                 const sim::GpuSpec &spec)
{
    auto r = tryWrapMemoryLayout(mem, a, b, elemBytes, spec);
    llUserCheck(r.ok(), "wrapMemoryLayout: " << r.diag().toString());
    return std::move(*r);
}

Result<SwizzledShared>
planPaddedShared(const LinearLayout &a, const LinearLayout &b,
                 int elemBytes, const sim::GpuSpec &spec)
{
    if (LL_FAILPOINT("plan.padded")) {
        return makeDiag(DiagCode::FailpointInjected, "plan.padded",
                        "failpoint plan.padded forced this rung off");
    }
    try {
        auto wrapped = tryWrapMemoryLayout(linearMemoryLayout(a), a, b,
                                           elemBytes, spec);
        if (!wrapped.ok()) {
            return makeDiag(DiagCode::PaddedUnavailable, "plan.padded",
                            wrapped.diag().toString());
        }
        SwizzledShared swz = std::move(*wrapped);
        // Search a small family of (padInterval, padElems) pairs — the
        // classic one-bank-word-per-row pad plus half/double-row
        // intervals and a doubled pad (all multiples of the
        // vectorization, so vec windows never straddle a pad) — and
        // keep the wavefront-cheapest pair that fits the CTA budget.
        // The unswizzled flat layout is the baseline: a pad that does
        // not measurably lower the enumerated totals is not adopted.
        //
        // Every candidate is priced independently (two enumerate sweeps
        // each), so the family fans out across the shared work pool;
        // the reduce walks the serial iteration order with the same
        // strict comparison, so the adopted pair — including first-of-
        // equal-cost tie-breaks — is identical to the serial loop's.
        const int vec = swz.vecElems();
        const int totalBankBytes = spec.numBanks * spec.bankWidthBytes;
        const int64_t rowElems = totalBankBytes / elemBytes;
        const int64_t numElems = a.getTotalOutDimSize();
        if (vec * elemBytes < totalBankBytes && numElems > rowElems / 2) {
            const int64_t basePad = std::max<int64_t>(
                vec, spec.bankWidthBytes / elemBytes);
            const int64_t intervals[] = {rowElems / 2, rowElems,
                                         2 * rowElems};
            const int64_t pads[] = {basePad, 2 * basePad};
            std::vector<SwizzledShared> candidates;
            for (int64_t interval : intervals) {
                if (interval < vec || interval % vec != 0 ||
                    numElems <= interval)
                    continue;
                for (int64_t pad : pads) {
                    SwizzledShared padded = swz;
                    padded.padInterval = interval;
                    padded.padElems = pad;
                    if (!sim::SharedMemory::fits(
                            spec, elemBytes,
                            padded.storageElems(numElems)))
                        continue;
                    candidates.push_back(std::move(padded));
                }
            }
            // Slot 0 prices the unpadded baseline.
            std::vector<int64_t> costs(candidates.size() + 1, 0);
            support::parallelFor(
                static_cast<int>(candidates.size()) + 1, [&](int i) {
                    const SwizzledShared &cand =
                        i == 0 ? swz
                               : candidates[static_cast<size_t>(i - 1)];
                    costs[static_cast<size_t>(i)] =
                        enumerateWavefronts(cand, a, elemBytes, spec) +
                        enumerateWavefronts(cand, b, elemBytes, spec);
                });
            int64_t bestWf = costs[0];
            int best = -1;
            for (size_t i = 0; i < candidates.size(); ++i) {
                if (costs[i + 1] < bestWf) {
                    bestWf = costs[i + 1];
                    best = static_cast<int>(i);
                }
            }
            if (best >= 0)
                swz = candidates[static_cast<size_t>(best)];
        }
        return swz;
    } catch (const std::exception &e) {
        return makeDiag(DiagCode::PaddedUnavailable, "plan.padded",
                        e.what());
    }
}

Result<SwizzledShared>
planScalarShared(const LinearLayout &a, const LinearLayout &b,
                 int elemBytes, const sim::GpuSpec &spec)
{
    (void)b;
    if (LL_FAILPOINT("plan.scalar")) {
        return makeDiag(DiagCode::FailpointInjected, "plan.scalar",
                        "failpoint plan.scalar forced this rung off");
    }
    try {
        if (!a.isSurjective()) {
            return makeDiag(DiagCode::InvalidInput, "plan.scalar",
                            "scalar rung needs a surjective layout");
        }
        SwizzledShared out;
        out.memLayout = linearMemoryLayout(a);
        out.tensorToOffset = out.memLayout.invert();
        out.vecBits = 0;
        const int d = out.memLayout.getTotalInDimSizeLog2();
        const int totalBankBytes = spec.numBanks * spec.bankWidthBytes;
        int bBits = elemBytes >= totalBankBytes
                        ? 0
                        : log2Exact(static_cast<uint64_t>(
                              totalBankBytes / elemBytes));
        out.bankBits = std::min(bBits, d);
        out.idxBits = d - out.bankBits;
        // The terminal rung must swallow tensors bigger than the CTA
        // budget: window the allocation down to the largest power of
        // two that fits and let the executors run multiple passes.
        const int64_t numElems = a.getTotalOutDimSize();
        if (!sim::SharedMemory::fits(spec, elemBytes, numElems)) {
            int64_t window = 1;
            while (window * 2 * elemBytes <= spec.sharedMemPerCta)
                window *= 2;
            if (!sim::SharedMemory::fits(spec, elemBytes, window)) {
                return makeDiag(DiagCode::ScalarUnavailable,
                                "plan.scalar",
                                "CTA shared budget cannot hold even a "
                                "one-element window");
            }
            out.windowElems = window;
        }
        return out;
    } catch (const std::exception &e) {
        return makeDiag(DiagCode::ScalarUnavailable, "plan.scalar",
                        e.what());
    }
}

std::vector<int32_t>
registerGroupReps(const SwizzledShared &swz, const LinearLayout &dist)
{
    std::set<uint64_t> seen;
    std::vector<int32_t> reps;
    const int numRegs = dist.hasInDim(dims::kReg)
                            ? dist.getInDimSize(dims::kReg)
                            : 1;
    for (int32_t reg = 0; reg < numRegs; ++reg) {
        uint64_t x = dist.applyFlat(static_cast<uint64_t>(reg));
        uint64_t key = swz.tensorToOffset.applyFlat(x) >> swz.vecBits;
        if (seen.insert(key).second)
            reps.push_back(reg);
    }
    return reps;
}

int64_t
countWarpAccesses(const SwizzledShared &swz, const LinearLayout &distIn)
{
    LinearLayout dist = canonicalDist(
        distIn.transposeOuts(swz.memLayout.getOutDimNames()));
    const int64_t warps = dist.getInDimSize(dims::kWarp);
    return warps *
           static_cast<int64_t>(registerGroupReps(swz, dist).size());
}

int64_t
enumerateWavefronts(const SwizzledShared &swz, const LinearLayout &distIn,
                    int elemBytes, const sim::GpuSpec &spec)
{
    if (refmode::active())
        return enumerateWavefronts_reference(swz, distIn, elemBytes, spec);
    LinearLayout dist = canonicalDist(
        distIn.transposeOuts(swz.memLayout.getOutDimNames()));
    const int numWarps = dist.getInDimSize(dims::kWarp);
    const int accessBytes = swz.vecElems() * elemBytes;
    auto reps = registerGroupReps(swz, dist);
    WarpAccessTable table(swz, dist);
    // Mirror the executors' windowed multi-pass schedule so the totals
    // recorded on the plan match what the simulator will measure: each
    // pass masks lanes whose offsets fall outside the current window and
    // skips accesses with no active lane at all.
    const int64_t numElems = swz.memLayout.getTotalInDimSize();
    const int64_t window = swz.allocElems(numElems);
    const int64_t passes = swz.passesFor(numElems);
    std::vector<int64_t> offsets, byteAddrs;
    offsets.reserve(static_cast<size_t>(table.warpSize()));
    byteAddrs.reserve(static_cast<size_t>(table.warpSize()));
    int64_t total = 0;
    for (int64_t pass = 0; pass < passes; ++pass) {
        const int64_t lo = pass * window;
        for (int warp = 0; warp < numWarps; ++warp) {
            for (int32_t rep : reps) {
                offsets.clear();
                table.offsetsInto(rep, warp, offsets);
                byteAddrs.clear();
                bool anyActive = false;
                for (int64_t o : offsets) {
                    if (swz.windowed() && (o < lo || o >= lo + window)) {
                        byteAddrs.push_back(sim::kInactiveLane);
                    } else {
                        byteAddrs.push_back(
                            (swz.windowed() ? o - lo : o) * elemBytes);
                        anyActive = true;
                    }
                }
                if (!anyActive)
                    continue;
                total += sim::SharedMemory::countWavefronts(
                    spec, byteAddrs, accessBytes);
            }
        }
    }
    return total;
}

int64_t
enumerateWavefronts_reference(const SwizzledShared &swz,
                              const LinearLayout &distIn, int elemBytes,
                              const sim::GpuSpec &spec)
{
    LinearLayout dist = canonicalDist(
        distIn.transposeOuts(swz.memLayout.getOutDimNames()));
    const int warpSize = dist.getInDimSize(dims::kLane);
    const int numWarps = dist.getInDimSize(dims::kWarp);
    const int accessBytes = swz.vecElems() * elemBytes;
    auto reps = registerGroupReps(swz, dist);
    const int64_t numElems = swz.memLayout.getTotalInDimSize();
    const int64_t window = swz.allocElems(numElems);
    const int64_t passes = swz.passesFor(numElems);
    int64_t total = 0;
    for (int64_t pass = 0; pass < passes; ++pass) {
        const int64_t lo = pass * window;
        for (int warp = 0; warp < numWarps; ++warp) {
            for (int32_t rep : reps) {
                auto offsets =
                    warpAccessOffsets(swz, dist, rep, warp, warpSize);
                std::vector<int64_t> byteAddrs;
                byteAddrs.reserve(offsets.size());
                bool anyActive = false;
                for (int64_t o : offsets) {
                    if (swz.windowed() && (o < lo || o >= lo + window)) {
                        byteAddrs.push_back(sim::kInactiveLane);
                    } else {
                        byteAddrs.push_back(
                            (swz.windowed() ? o - lo : o) * elemBytes);
                        anyActive = true;
                    }
                }
                if (!anyActive)
                    continue;
                total += sim::SharedMemory::countWavefronts(
                    spec, byteAddrs, accessBytes);
            }
        }
    }
    return total;
}

Result<int64_t>
tryAnalyticWavefronts(const SwizzledShared &swz,
                      const LinearLayout &distIn, int elemBytes,
                      const sim::GpuSpec &spec)
{
    if (swz.padded()) {
        return makeDiag(DiagCode::InvalidInput, "swizzle.analytic",
                        "Lemma 9.4 does not apply to padded layouts; "
                        "use enumerateWavefronts");
    }
    // Align to the swizzle's output order so flattened columns agree.
    LinearLayout dist =
        distIn.transposeOuts(swz.memLayout.getOutDimNames());
    const int d = swz.memLayout.getTotalInDimSizeLog2();

    // Sub-word accesses (vec narrower than a bank word) fall outside
    // Lemma 9.4's counting argument; measure a representative access on
    // the simulator instead (conflicts are identical across register
    // groups and warps by linearity).
    if (swz.vecElems() * elemBytes < spec.bankWidthBytes &&
        dist.hasInDim(dims::kLane)) {
        auto offsets = warpAccessOffsets(swz, dist, 0, 0,
                                         dist.getInDimSize(dims::kLane));
        std::vector<int64_t> byteAddrs;
        byteAddrs.reserve(offsets.size());
        for (int64_t o : offsets)
            byteAddrs.push_back(o * elemBytes);
        return sim::SharedMemory::countWavefronts(
            spec, byteAddrs, swz.vecElems() * elemBytes);
    }
    // Recover S_Vec and S_Idx from the offset bit ranges.
    auto cols = swz.memLayout.flattenedBases(dims::kOffset);
    std::vector<uint64_t> vecIdxCols(cols.begin(),
                                     cols.begin() + swz.vecBits);
    vecIdxCols.insert(vecIdxCols.end(),
                      cols.begin() + swz.vecBits + swz.bankBits,
                      cols.end());
    // High lane bits land in separate 128-byte transactions (the A_Bank
    // shrink of Appendix 9.2, generalized to the layout's lane count —
    // see wavefrontGroups), so only the low thread columns can conflict
    // within one wavefront.
    std::vector<uint64_t> lThr;
    if (dist.hasInDim(dims::kLane))
        lThr = dist.flattenedBases(dims::kLane);
    const int vecBytes = swz.vecElems() * elemBytes;
    const int64_t n = wavefrontGroups(dist, vecBytes, spec);
    const int removeCount = log2Exact(static_cast<uint64_t>(n));
    if (static_cast<int>(lThr.size()) > removeCount) {
        lThr.resize(lThr.size() - static_cast<size_t>(removeCount));
    } else {
        lThr.clear();
    }
    std::erase(lThr, uint64_t(0));
    auto inter = f2::intersectSpans(vecIdxCols, lThr, d);
    int64_t c = int64_t(1) << inter.size();
    return n * c;
}

int64_t
analyticWavefronts(const SwizzledShared &swz, const LinearLayout &distIn,
                   int elemBytes, const sim::GpuSpec &spec)
{
    auto r = tryAnalyticWavefronts(swz, distIn, elemBytes, spec);
    llUserCheck(r.ok(), "analyticWavefronts: " << r.diag().toString());
    return *r;
}

WarpAccessTable::WarpAccessTable(const SwizzledShared &swz,
                                 const LinearLayout &dist)
    : swz_(swz)
{
    regLog_ = dist.getInDimSizeLog2(dims::kReg);
    const int laneLog = dist.getInDimSizeLog2(dims::kLane);
    const int warpLog = dist.hasInDim(dims::kWarp)
                            ? dist.getInDimSizeLog2(dims::kWarp)
                            : 0;
    warpShift_ = regLog_ + laneLog;
    const int totalBits = warpShift_ + warpLog;
    cols_.resize(static_cast<size_t>(totalBits));
    for (int i = 0; i < totalBits; ++i) {
        cols_[static_cast<size_t>(i)] = swz.tensorToOffset.applyFlat(
            dist.applyFlat(uint64_t(1) << i));
    }
    keepMask_ = ~(static_cast<uint64_t>(swz.vecElems()) - 1);
    laneMasked_.assign(size_t(1) << laneLog, 0);
    for (size_t lane = 1; lane < laneMasked_.size(); ++lane) {
        laneMasked_[lane] =
            laneMasked_[lane & (lane - 1)] ^
            (cols_[static_cast<size_t>(regLog_) +
                   static_cast<size_t>(std::countr_zero(lane))] &
             keepMask_);
    }
}

void
WarpAccessTable::offsetsInto(int32_t rep, int32_t warp,
                             std::vector<int64_t> &out) const
{
    uint64_t base = 0;
    for (uint64_t m = static_cast<uint64_t>(rep); m != 0; m &= m - 1)
        base ^= cols_[static_cast<size_t>(std::countr_zero(m))];
    for (uint64_t m = static_cast<uint64_t>(warp); m != 0; m &= m - 1) {
        base ^= cols_[static_cast<size_t>(warpShift_) +
                      static_cast<size_t>(std::countr_zero(m))];
    }
    base &= keepMask_;
    for (uint64_t lm : laneMasked_)
        out.push_back(swz_.padOffset(static_cast<int64_t>(base ^ lm)));
}

std::vector<int64_t>
warpAccessOffsets(const SwizzledShared &swz, const LinearLayout &distIn,
                  int32_t repBase, int32_t warp, int warpSize)
{
    LinearLayout dist =
        distIn.transposeOuts(swz.memLayout.getOutDimNames());
    const int regLog = dist.getInDimSizeLog2(dims::kReg);
    const int laneLog = dist.getInDimSizeLog2(dims::kLane);
    llAssert(warpSize == (1 << laneLog),
             "layout lane count does not match warp size");
    std::vector<int64_t> offsets;
    offsets.reserve(static_cast<size_t>(warpSize));
    const uint64_t vecMask = static_cast<uint64_t>(swz.vecElems()) - 1;
    for (int lane = 0; lane < warpSize; ++lane) {
        uint64_t in = static_cast<uint64_t>(repBase) |
                      (static_cast<uint64_t>(lane) << regLog) |
                      (static_cast<uint64_t>(warp) << (regLog + laneLog));
        uint64_t x = dist.applyFlat(in);
        uint64_t off = swz.tensorToOffset.applyFlat(x);
        offsets.push_back(
            swz.padOffset(static_cast<int64_t>(off & ~vecMask)));
    }
    return offsets;
}

} // namespace codegen
} // namespace ll
