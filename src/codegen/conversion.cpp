#include "codegen/conversion.h"

#include <algorithm>
#include <cmath>

#include "codegen/shared_exec.h"
#include "codegen/tiles.h"
#include "triton/encodings.h"
#include "layout/dims.h"
#include "sim/memory_sim.h"
#include "support/bits.h"
#include "support/deadline.h"
#include "support/failpoint.h"
#include "support/ledger.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ll {
namespace codegen {

namespace {

/** Can ldmatrix/stmatrix service this resource->offset map? */
bool
matchesLdmatrixTile(const LinearLayout &cvt, int elemBytes)
{
    if (elemBytes > 4)
        return false;
    LinearLayout tile = ldmatrixTile(elemBytes);
    if (tileMatches(cvt, tile))
        return true;
    auto permuted = permuteRegistersForTile(cvt, 4 / elemBytes);
    return permuted.has_value() && tileMatches(*permuted, tile);
}

/** "dimN" -> N; empty for any other spelling. */
std::optional<int>
parseDimIndex(const std::string &name)
{
    if (name.size() <= 3 || name.compare(0, 3, "dim") != 0)
        return std::nullopt;
    int idx = 0;
    for (size_t i = 3; i < name.size(); ++i) {
        char c = name[i];
        if (c < '0' || c > '9')
            return std::nullopt;
        idx = idx * 10 + (c - '0');
        if (idx > 8)
            return std::nullopt;
    }
    return idx;
}

/**
 * Reject inputs no rung could make sense of. Planning is total over
 * everything that passes here; nothing that passes may throw further
 * down, only step the ladder.
 */
std::optional<Diagnostic>
validateInputs(const LinearLayout &src, const LinearLayout &dst,
               int elemBytes)
{
    auto invalid = [](const std::string &why) {
        return makeDiag(DiagCode::InvalidInput, "plan", why);
    };
    if (elemBytes != 1 && elemBytes != 2 && elemBytes != 4 &&
        elemBytes != 8)
        return invalid("element size must be 1, 2, 4, or 8 bytes, got " +
                       std::to_string(elemBytes));
    for (const LinearLayout *l : {&src, &dst}) {
        for (const auto &in : l->getInDimNames()) {
            if (in != dims::kReg && in != dims::kLane && in != dims::kWarp)
                return invalid(
                    "layouts must be distributed over "
                    "register/lane/warp; found in-dim \"" +
                    in + "\"");
        }
    }
    auto srcOuts = src.getOutDims();
    auto dstOuts = dst.getOutDims();
    auto bySize = [](const auto &x, const auto &y) {
        return x.first < y.first;
    };
    std::sort(srcOuts.begin(), srcOuts.end(), bySize);
    std::sort(dstOuts.begin(), dstOuts.end(), bySize);
    if (srcOuts.size() != dstOuts.size())
        return invalid("source and destination cover different output "
                       "spaces: rank " +
                       std::to_string(srcOuts.size()) + " vs " +
                       std::to_string(dstOuts.size()));
    for (size_t i = 0; i < srcOuts.size(); ++i) {
        if (srcOuts[i].first != dstOuts[i].first)
            return invalid("source and destination cover different "
                           "output spaces: \"" +
                           srcOuts[i].first + "\" vs \"" +
                           dstOuts[i].first + "\"");
        if (srcOuts[i].second != dstOuts[i].second)
            return invalid("output dim \"" + srcOuts[i].first +
                           "\" has size " +
                           std::to_string(srcOuts[i].second) +
                           " in the source but " +
                           std::to_string(dstOuts[i].second) +
                           " in the destination");
    }
    return std::nullopt;
}

/**
 * Price a shared candidate and fill the shared fields of a trial plan.
 * Returns a CtaBudgetExceeded Diagnostic when the candidate's actual
 * allocation (one window for windowed candidates, the whole padded
 * tensor otherwise) does not fit the CTA shared budget, so the ladder
 * demotes instead of the executor aborting. Throws only on internal
 * invariant violations, which the caller turns into a
 * PlannerInternalError note.
 */
Result<ConversionPlan>
evaluateSharedCandidate(const ConversionPlan &base, SwizzledShared cand,
                        const LinearLayout &src, const LinearLayout &dst,
                        int elemBytes, const sim::GpuSpec &spec,
                        bool allowLdmatrix, bool allowStmatrix)
{
    trace::Span span("plan.shared.candidate", "plan");
    static auto &examined = metrics::counter("plan.shared.candidates");
    examined.inc();
    const int64_t numElems = src.getTotalOutDimSize();
    const int64_t alloc = cand.allocElems(numElems);
    if (span.active()) {
        span.arg("alloc_bytes", alloc * elemBytes);
        span.arg("padded", static_cast<int64_t>(cand.padded()));
        span.arg("windowed", static_cast<int64_t>(cand.windowed()));
    }
    if (!sim::SharedMemory::fits(spec, elemBytes, alloc)) {
        static auto &rejected =
            metrics::counter("plan.shared.cta_rejected");
        rejected.inc();
        span.arg("outcome", "cta-budget-exceeded");
        return makeDiag(
            DiagCode::CtaBudgetExceeded, "plan.cta-budget",
            "candidate allocates " + std::to_string(alloc * elemBytes) +
                " bytes of shared memory but the CTA budget is " +
                std::to_string(spec.sharedMemPerCta));
    }
    ConversionPlan trial = base;
    LinearLayout toOffset =
        cand.tensorToOffset.transposeIns(src.getOutDimNames());
    LinearLayout storeCvt = src.compose(toOffset);
    LinearLayout loadCvt =
        dst.transposeOuts(src.getOutDimNames()).compose(toOffset);
    trial.usesStmatrix = allowStmatrix && spec.hasStmatrix &&
                         !cand.padded() &&
                         matchesLdmatrixTile(storeCvt, elemBytes);
    trial.usesLdmatrix = allowLdmatrix && spec.hasLdmatrix &&
                         !cand.padded() &&
                         matchesLdmatrixTile(loadCvt, elemBytes);
    if (!cand.padded() && !cand.windowed()) {
        // Lemma 9.4 needs per-access uniformity; padding breaks it and
        // windowing splits accesses across passes, so both fall back to
        // the enumerated totals below.
        auto storeWfPer = tryAnalyticWavefronts(cand, src, elemBytes, spec);
        if (!storeWfPer)
            return storeWfPer.diag();
        auto loadWfPer = tryAnalyticWavefronts(cand, dst, elemBytes, spec);
        if (!loadWfPer)
            return loadWfPer.diag();
        trial.storeWavefrontsPerAccess = *storeWfPer;
        trial.loadWavefrontsPerAccess = *loadWfPer;
    }
    trial.storeWavefrontsTotal =
        enumerateWavefronts(cand, src, elemBytes, spec);
    trial.loadWavefrontsTotal =
        enumerateWavefronts(cand, dst, elemBytes, spec);
    static auto &storeWf =
        metrics::counter("plan.shared.store_wavefronts");
    static auto &loadWf = metrics::counter("plan.shared.load_wavefronts");
    storeWf.add(trial.storeWavefrontsTotal);
    loadWf.add(trial.loadWavefrontsTotal);
    if (span.active()) {
        span.arg("outcome", "priced");
        span.arg("store_wavefronts", trial.storeWavefrontsTotal);
        span.arg("load_wavefronts", trial.loadWavefrontsTotal);
    }
    trial.shared = std::move(cand);
    return trial;
}

/** Canonicalize to (register, lane, warp) input order, adding size-1
 *  dims where missing, as the shared executors require. */
LinearLayout
canonicalIns(const LinearLayout &layout)
{
    LinearLayout out = layout;
    for (const auto &dim : {dims::kReg, dims::kLane, dims::kWarp}) {
        if (!out.hasInDim(dim))
            out = out * LinearLayout::identity1D(
                            1, dim, out.getOutDimNames().front());
    }
    return out.transposeIns({dims::kReg, dims::kLane, dims::kWarp});
}

} // namespace

std::string
toString(ConversionKind kind)
{
    switch (kind) {
      case ConversionKind::NoOp:
        return "no-op";
      case ConversionKind::RegisterPermute:
        return "register-permute";
      case ConversionKind::WarpShuffle:
        return "warp-shuffle";
      case ConversionKind::SharedMemory:
        return "shared-memory";
      case ConversionKind::SharedPadded:
        return "shared-padded";
      case ConversionKind::SharedScalar:
        return "shared-scalar";
    }
    return "unknown";
}

std::optional<ConversionKind>
parseConversionKind(const std::string &s)
{
    for (ConversionKind k :
         {ConversionKind::NoOp, ConversionKind::RegisterPermute,
          ConversionKind::WarpShuffle, ConversionKind::SharedMemory,
          ConversionKind::SharedPadded, ConversionKind::SharedScalar}) {
        if (toString(k) == s)
            return k;
    }
    return std::nullopt;
}

std::string
describePlan(const ConversionPlan &plan)
{
    std::string out = "kind=" + toString(plan.kind);
    if (plan.shuffle) {
        const WarpShufflePlan &s = *plan.shuffle;
        out += " shuffle{vec=" + std::to_string(s.vecElems) +
               " rounds=" + std::to_string(s.rounds) +
               " regsA=" + std::to_string(s.numRegsA) +
               " regsB=" + std::to_string(s.numRegsB) +
               " warp=" + std::to_string(s.warpSize);
        // FNV-1a over every transfer: cheap to render, and any change
        // to any round's schedule changes the digest.
        uint64_t h = 1469598103934665603ull;
        auto mix = [&h](uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        for (const auto &round : s.xfers) {
            mix(round.size());
            for (const ShuffleXfer &x : round) {
                mix(static_cast<uint64_t>(
                    static_cast<int64_t>(x.srcLane)));
                mix(x.regPairs.size());
                for (const auto &[a, b] : x.regPairs) {
                    mix(static_cast<uint64_t>(static_cast<int64_t>(a)));
                    mix(static_cast<uint64_t>(static_cast<int64_t>(b)));
                }
            }
        }
        out += " xfers#" + std::to_string(h) + "}";
    }
    if (plan.shared) {
        const SwizzledShared &m = *plan.shared;
        out += " shared{vecBits=" + std::to_string(m.vecBits) +
               " bankBits=" + std::to_string(m.bankBits) +
               " idxBits=" + std::to_string(m.idxBits) +
               " padInterval=" + std::to_string(m.padInterval) +
               " padElems=" + std::to_string(m.padElems) +
               " windowElems=" + std::to_string(m.windowElems) +
               " mem=" + m.memLayout.toString() +
               " tensorToOffset=" + m.tensorToOffset.toString() + "}";
    }
    out += std::string(" ldmatrix=") + (plan.usesLdmatrix ? "1" : "0") +
           " stmatrix=" + (plan.usesStmatrix ? "1" : "0") +
           " wavefronts{store/access=" +
           std::to_string(plan.storeWavefrontsPerAccess) +
           " load/access=" +
           std::to_string(plan.loadWavefrontsPerAccess) +
           " store=" + std::to_string(plan.storeWavefrontsTotal) +
           " load=" + std::to_string(plan.loadWavefrontsTotal) + "}";
    if (!plan.diagnostics.empty())
        out += " notes=[" + plan.diagnostics.toString() + "]";
    return out;
}

std::vector<std::string>
plannerFailpointSites()
{
    // Ladder order. "plan.scalar" is deliberately absent: with the rest
    // of these active it is the last rung standing, and disabling it
    // too makes planning fail outright (an engine-survival test, not a
    // fallback one).
    return {
        "plan.noop",           "plan.register-permute",
        "plan.warp-shuffle",   "shuffle.pair-basis",
        "plan.optimal-swizzle", "swizzle.word-basis",
        "swizzle.segment-basis", "swizzle.bank-basis",
        "plan.legacy-swizzle", "tiles.divide",
        "plan.ldmatrix",       "plan.stmatrix",
        "plan.padded",
    };
}

std::vector<std::string>
executionFailpointSites()
{
    return {
        "exec.shuffle.shape",     "exec.shuffle.lane-range",
        "exec.shuffle.reg-range", "exec.gather.invert",
        "exec.gather.index-range", "exec.gather.cross-warp",
        "exec.shared.file-size",  "exec.shared.alloc",
        "exec.shared.window",     "exec.shared.bank-budget",
    };
}

std::vector<std::string>
demotionSitesFor(ConversionKind kind)
{
    // Cumulative knockout sets: disabling every rung at or above `kind`
    // forces the re-plan strictly below it. The shared executors serve
    // rungs 4-6 alike, so the engine cannot tell from an ExecDiagnostic
    // which shared rung misbehaved — it demotes the one the plan names.
    switch (kind) {
      case ConversionKind::NoOp:
        return {"plan.noop"};
      case ConversionKind::RegisterPermute:
        return {"plan.noop", "plan.register-permute"};
      case ConversionKind::WarpShuffle:
        return {"plan.noop", "plan.register-permute",
                "plan.warp-shuffle"};
      case ConversionKind::SharedMemory:
        return {"plan.noop", "plan.register-permute",
                "plan.warp-shuffle", "plan.optimal-swizzle",
                "plan.legacy-swizzle"};
      case ConversionKind::SharedPadded:
        return {"plan.noop", "plan.register-permute",
                "plan.warp-shuffle", "plan.optimal-swizzle",
                "plan.legacy-swizzle", "plan.padded"};
      case ConversionKind::SharedScalar:
        return {}; // terminal: nowhere left to demote to
    }
    return {};
}

std::optional<ExecDiagnostic>
smokeExecutePlan(const ConversionPlan &plan, const LinearLayout &srcIn,
                 const LinearLayout &dstIn, int elemBytes,
                 const sim::GpuSpec &spec)
{
    switch (plan.kind) {
      case ConversionKind::NoOp:
      case ConversionKind::RegisterPermute:
        return std::nullopt;
      case ConversionKind::WarpShuffle: {
        if (!plan.shuffle.has_value()) {
            return makeExecDiag(ExecError::PlanShapeMismatch,
                                "exec.shuffle",
                                "warp-shuffle plan carries no schedule");
        }
        const WarpShufflePlan &p = *plan.shuffle;
        if (p.warpSize <= 0 || p.numRegsA < 0) {
            return makeExecDiag(ExecError::PlanShapeMismatch,
                                "exec.shuffle",
                                "warp-shuffle plan has degenerate shape");
        }
        // The schedule is warp-invariant, so one warp of tagged
        // registers exercises every exchange exactly once.
        std::vector<std::vector<uint64_t>> regs(
            static_cast<size_t>(p.warpSize),
            std::vector<uint64_t>(static_cast<size_t>(p.numRegsA)));
        for (int lane = 0; lane < p.warpSize; ++lane) {
            for (int reg = 0; reg < p.numRegsA; ++reg) {
                regs[static_cast<size_t>(lane)][static_cast<size_t>(
                    reg)] =
                    static_cast<uint64_t>(lane) *
                        static_cast<uint64_t>(p.numRegsA) +
                    static_cast<uint64_t>(reg);
            }
        }
        auto out = p.execute(regs);
        if (!out)
            return out.diag();
        return std::nullopt;
      }
      case ConversionKind::SharedMemory:
      case ConversionKind::SharedPadded:
      case ConversionKind::SharedScalar: {
        if (!plan.shared.has_value()) {
            return makeExecDiag(ExecError::PlanShapeMismatch,
                                "exec.shared",
                                "shared plan carries no layout");
        }
        LinearLayout src = canonicalIns(srcIn);
        LinearLayout dst =
            canonicalIns(dstIn.transposeOuts(srcIn.getOutDimNames()));
        const uint64_t srcSize =
            static_cast<uint64_t>(src.getTotalInDimSize());
        std::vector<uint64_t> srcFile(srcSize);
        for (uint64_t i = 0; i < srcSize; ++i)
            srcFile[i] = src.applyFlat(i);
        auto rt = runSharedRoundTrip(*plan.shared, src, dst, srcFile,
                                     elemBytes, spec);
        if (!rt)
            return rt.diag();
        return std::nullopt;
      }
    }
    return std::nullopt;
}

namespace {
// Ladder positions, used to resume planning strictly below a failed
// rung. Matches the rung order in tryPlanConversionImpl.
enum Rung : int {
    kRungNoOp = 1,
    kRungRegisterPermute = 2,
    kRungWarpShuffle = 3,
    kRungSharedMemory = 4,
    kRungSharedPadded = 5,
    kRungSharedScalar = 6,
};

/** Span-taxonomy rung name for a ladder position (the ledger's
 *  start_rung/rung vocabulary). */
const char *
rungName(int rung)
{
    switch (rung) {
      case kRungNoOp:
        return "noop";
      case kRungRegisterPermute:
        return "register-permute";
      case kRungWarpShuffle:
        return "warp-shuffle";
      case kRungSharedMemory:
        return "shared-memory";
      case kRungSharedPadded:
        return "shared-padded";
      case kRungSharedScalar:
        return "shared-scalar";
    }
    return "unknown";
}

/**
 * Feed the prediction-error family: selection cost vs the cost the
 * measured wavefront totals imply, for plans that carry a measurement
 * (the shared kinds). The exponential buckets cover 1/8x..128x around
 * a perfectly priced ratio of 1; observations land in
 * EngineStats::metrics like every other plan.calib.* counter.
 */
void
observeCalibration(const ConversionPlan &plan, const LinearLayout &src,
                   int elemBytes, const sim::GpuSpec &spec)
{
    if (!plan.shared.has_value())
        return;
    const double measured = plan.reportingCycles(src, elemBytes, spec);
    if (measured <= 0.0)
        return;
    const double predicted = plan.estimateCycles(src, elemBytes, spec);
    static auto &ratio = metrics::Registry::instance().histogram(
        "plan.calib.error_ratio",
        metrics::exponentialBounds(0.125, 2.0, 11));
    ratio.observe(predicted / measured);
    static auto &observations =
        metrics::counter("plan.calib.observations");
    observations.inc();
}
} // namespace

static Result<ConversionPlan>
tryPlanConversionImpl(const LinearLayout &src, const LinearLayout &dst,
                      int elemBytes, const sim::GpuSpec &spec,
                      int startRung = kRungNoOp)
{
    if (auto bad = validateInputs(src, dst, elemBytes))
        return *bad;

    ConversionPlan plan;
    PlanDiagnostics &notes = plan.diagnostics;
    auto skipped = [&](const char *site) {
        if (LL_FAILPOINT(site)) {
            notes.note(DiagCode::FailpointInjected, site,
                       "failpoint disabled this rung");
            return true;
        }
        return false;
    };

    // Cooperative cancellation for the serving path: when the calling
    // request's deadline (deadline::Scoped, thread-local) has expired,
    // the rung boundaries below skip straight to the terminal scalar
    // rung instead of sweeping the expensive middle rungs. The demoted
    // plan stays correct — scalar is total over valid inputs — and the
    // DeadlineExceeded note keeps it out of the shared plan cache (the
    // demotion reflects load, not the inputs). Checked only between
    // rungs, so a rung in progress always completes its evaluation.
    bool deadlineDemoted = false;
    auto deadlineCutoff = [&]() {
        if (deadlineDemoted)
            return true;
        if (!deadline::expired())
            return false;
        deadlineDemoted = true;
        notes.note(DiagCode::DeadlineExceeded, "plan.deadline",
                   "request deadline expired mid-plan; demoting to the "
                   "terminal scalar rung");
        static auto &demotions =
            metrics::counter("plan.deadline_demotions");
        demotions.inc();
        return true;
    };

    // Plan-provenance ledger (support/ledger.h): when recording is on,
    // every rung evaluated below appends a CalibrationRecord — the
    // predicted-vs-measured corpus the profile-guided cost model trains
    // on. beginConversion() deduplicates per (inputs, startRung) and
    // refuses while failpoints are active, so records are attributed
    // exactly once per planned conversion and fuzzing never pollutes
    // the corpus. Records carry no timestamps or sequence numbers: a
    // record is a pure function of the conversion inputs, which is what
    // makes sorted ledgers byte-identical across thread counts.
    ledger::CalibrationRecord proto;
    bool ledgerLive = false;
    if (ledger::enabled()) {
        proto.srcHash = src.structuralHash();
        proto.dstHash = dst.structuralHash();
        proto.specId = spec.fingerprint();
        proto.elemBytes = elemBytes;
        proto.startRung = rungName(startRung);
        proto.demoted = startRung != kRungNoOp;
        ledgerLive = ledger::Ledger::instance().beginConversion(
            proto.srcHash, proto.dstHash, elemBytes, proto.specId,
            proto.startRung);
    }
    auto recordRung = [&](const char *rung, bool accept,
                          const std::string &reason, bool terminal,
                          const ConversionPlan *accepted) {
        if (!ledgerLive)
            return;
        ledger::CalibrationRecord r = proto;
        r.rung = rung;
        r.outcome = accept ? "accept" : "reject";
        r.reason = reason;
        r.terminal = terminal;
        r.deadlineShaped = deadlineDemoted;
        if (accepted != nullptr) {
            r.predictedCycles =
                accepted->estimateCycles(src, elemBytes, spec);
            r.measuredCycles =
                accepted->reportingCycles(src, elemBytes, spec);
            r.storeWavefronts = accepted->storeWavefrontsTotal;
            r.loadWavefronts = accepted->loadWavefrontsTotal;
            if (accepted->shared) {
                r.windowElems = accepted->shared->windowElems;
                r.padInterval = accepted->shared->padInterval;
                r.padElems = accepted->shared->padElems;
                r.vecBits = accepted->shared->vecBits;
            } else if (accepted->shuffle) {
                r.vecBits = static_cast<int>(log2Exact(
                    static_cast<uint64_t>(accepted->shuffle->vecElems)));
            }
        }
        ledger::Ledger::instance().append(std::move(r));
    };
    auto lastNote = [&notes]() -> std::string {
        return notes.empty() ? std::string()
                             : notes.notes.back().toString();
    };

    // Each rung gets its own span so a trace shows where planning time
    // went and why the ladder stepped down (see DESIGN.md
    // "Observability" for the taxonomy).
    auto rejectRung = [&notes](trace::Span &rung) {
        if (!rung.active())
            return;
        rung.arg("outcome", "reject");
        if (!notes.empty())
            rung.arg("reason", notes.notes.back().toString());
    };

    // Rung 1: no movement at all.
    if (startRung <= kRungNoOp) {
        trace::Span rung("plan.rung.noop", "plan");
        static auto &evals = metrics::counter("plan.rung.noop.evaluated");
        evals.inc();
        if (!skipped("plan.noop") && conversionIsNoOp(src, dst)) {
            rung.arg("outcome", "accept");
            rung.arg("cycles", 0.0);
            plan.kind = ConversionKind::NoOp;
            recordRung("noop", true, "", true, &plan);
            return plan;
        }
        rejectRung(rung);
        recordRung("noop", false, "", false, nullptr);
    }

    // Rung 2: data stays within each thread.
    if (startRung <= kRungRegisterPermute) {
        trace::Span rung("plan.rung.register-permute", "plan");
        static auto &evals =
            metrics::counter("plan.rung.register-permute.evaluated");
        evals.inc();
        if (!skipped("plan.register-permute") &&
            conversionIsRegisterPermute(src, dst)) {
            plan.kind = ConversionKind::RegisterPermute;
            rung.arg("outcome", "accept");
            if (rung.active())
                rung.arg("cycles",
                         plan.estimateCycles(src, elemBytes, spec));
            recordRung("register-permute", true, "", true, &plan);
            return plan;
        }
        rejectRung(rung);
        recordRung("register-permute", false, "", false, nullptr);
    }

    // Rung 3: data stays within each warp.
    if (startRung <= kRungWarpShuffle && !deadlineCutoff()) {
        trace::Span rung("plan.rung.warp-shuffle", "plan");
        static auto &evals =
            metrics::counter("plan.rung.warp-shuffle.evaluated");
        evals.inc();
        if (!skipped("plan.warp-shuffle")) {
            auto shuffle = planWarpShuffle(src, dst, elemBytes, spec);
            if (shuffle) {
                plan.kind = ConversionKind::WarpShuffle;
                plan.shuffle = std::move(*shuffle);
                rung.arg("outcome", "accept");
                if (rung.active())
                    rung.arg("cycles",
                             plan.estimateCycles(src, elemBytes, spec));
                recordRung("warp-shuffle", true, "", true, &plan);
                return plan;
            }
            // Not-applicable is the ordinary road to shared memory;
            // only a degenerate exchange structure is worth reporting.
            if (shuffle.diag().code != DiagCode::ShuffleNotApplicable)
                notes.note(shuffle.diag());
            if (rung.active()) {
                rung.arg("outcome", "reject");
                rung.arg("reason", shuffle.diag().toString());
            }
            recordRung("warp-shuffle", false,
                       shuffle.diag().toString(), false, nullptr);
        } else {
            rejectRung(rung);
        }
    }

    // Rungs 4-6 go through shared memory. The matrix instructions are
    // independently droppable riders on rung 4.
    if (startRung <= kRungSharedMemory && !deadlineCutoff()) {
    bool allowLdmatrix = true;
    if (LL_FAILPOINT("plan.ldmatrix")) {
        allowLdmatrix = false;
        notes.note(DiagCode::FailpointInjected, "plan.ldmatrix",
                   "failpoint dropped ldmatrix from the shared plan");
    }
    bool allowStmatrix = true;
    if (LL_FAILPOINT("plan.stmatrix")) {
        allowStmatrix = false;
        notes.note(DiagCode::FailpointInjected, "plan.stmatrix",
                   "failpoint dropped stmatrix from the shared plan");
    }

    // Rung 4: optimally swizzled shared memory. Candidates: the F2
    // construction and, on 2D tensors, the legacy-parameter mma swizzle
    // whose vec-granular phases keep 16-byte rows intact and so stay
    // divisible by the ldmatrix/stmatrix tiles. Pick by modeled cost.
    trace::Span rung4("plan.rung.shared-memory", "plan");
    static auto &rung4Evals =
        metrics::counter("plan.rung.shared-memory.evaluated");
    rung4Evals.inc();
    std::vector<SwizzledShared> candidates;
    if (!skipped("plan.optimal-swizzle")) {
        auto opt = tryComputeOptimalSwizzle(src, dst, elemBytes, spec);
        if (opt)
            candidates.push_back(std::move(*opt));
        else
            notes.note(opt.diag());
    }
    if (!skipped("plan.legacy-swizzle") &&
        (spec.hasLdmatrix || spec.hasStmatrix) && elemBytes <= 4 &&
        src.getNumOutDims() == 2) {
        auto outs = src.getOutDims();
        auto fast = parseDimIndex(outs[0].first);
        auto slow = parseDimIndex(outs[1].first);
        if (!fast || !slow || *fast > 1 || *slow > 1 || *fast == *slow) {
            notes.note(DiagCode::LegacySwizzleUnavailable,
                       "plan.legacy-swizzle",
                       "output dims are not the dim0/dim1 pair the "
                       "legacy mma swizzle expects");
        } else {
            triton::Shape shape = {0, 0};
            shape[static_cast<size_t>(*fast)] = outs[0].second;
            shape[static_cast<size_t>(*slow)] = outs[1].second;
            std::vector<int32_t> order = {*fast, 1 - *fast};
            auto params = triton::chooseMmaSwizzleParams(
                elemBytes, shape[static_cast<size_t>(*fast)]);
            auto legacy = triton::mmaSwizzledSharedLayout(
                shape, params.vec, params.perPhase, params.maxPhase,
                order);
            auto wrapped =
                tryWrapMemoryLayout(legacy, src, dst, elemBytes, spec);
            if (wrapped)
                candidates.push_back(std::move(*wrapped));
            else
                notes.note(wrapped.diag());
        }
    }

    bool haveBest = false;
    double bestCost = 0.0;
    int bestMatrixSides = 0;
    ConversionPlan best;
    for (auto &cand : candidates) {
        try {
            auto evaluated = evaluateSharedCandidate(
                plan, std::move(cand), src, dst, elemBytes, spec,
                allowLdmatrix, allowStmatrix);
            if (!evaluated) {
                notes.note(evaluated.diag());
                continue;
            }
            ConversionPlan trial = std::move(*evaluated);
            trial.kind = ConversionKind::SharedMemory;
            double cost = trial.estimateCycles(src, elemBytes, spec);
            // Cost ties (common: several conflict-free layouts) break
            // toward the candidate using more matrix-instruction sides
            // — ldmatrix/stmatrix save issue slots the wavefront count
            // cannot see.
            int matrixSides = (trial.usesLdmatrix ? 1 : 0) +
                              (trial.usesStmatrix ? 1 : 0);
            constexpr double kTie = 1e-9;
            if (!haveBest || cost < bestCost - kTie ||
                (cost <= bestCost + kTie &&
                 matrixSides > bestMatrixSides)) {
                haveBest = true;
                bestCost = cost;
                bestMatrixSides = matrixSides;
                best = std::move(trial);
            }
        } catch (const std::exception &e) {
            notes.note(DiagCode::PlannerInternalError,
                       "plan.optimal-swizzle",
                       std::string("shared candidate rejected: ") +
                           e.what());
        }
    }
    if (rung4.active()) {
        rung4.arg("candidates",
                  static_cast<int64_t>(candidates.size()));
        rung4.arg("outcome", haveBest ? "accept" : "reject");
        if (haveBest) {
            rung4.arg("cycles", bestCost);
            // Measured side next to the prediction, so traces and the
            // calibration ledger agree on both halves of the split.
            rung4.arg("store_wavefronts", best.storeWavefrontsTotal);
            rung4.arg("load_wavefronts", best.loadWavefrontsTotal);
            rung4.arg("measured_cycles",
                      best.reportingCycles(src, elemBytes, spec));
        } else if (!notes.empty()) {
            rung4.arg("reason", notes.notes.back().toString());
        }
    }
    rung4.finish();
    if (haveBest) {
        recordRung("shared-memory", true, "", true, &best);
        return best;
    }
    recordRung("shared-memory", false, lastNote(), false, nullptr);
    } // startRung <= kRungSharedMemory

    // Rung 5: unswizzled shared memory with bank-offset padding.
    if (startRung <= kRungSharedPadded && !deadlineCutoff()) {
        trace::Span rung("plan.rung.shared-padded", "plan");
        static auto &evals =
            metrics::counter("plan.rung.shared-padded.evaluated");
        evals.inc();
        auto padded = planPaddedShared(src, dst, elemBytes, spec);
        if (padded) {
            try {
                // No ldmatrix/stmatrix on the fallback rungs: matrix
                // instructions belong to the optimally swizzled plan,
                // and pricing them here would let a degraded rung
                // undercut the rung above it.
                auto evaluated = evaluateSharedCandidate(
                    plan, std::move(*padded), src, dst, elemBytes, spec,
                    /*allowLdmatrix=*/false, /*allowStmatrix=*/false);
                if (evaluated) {
                    ConversionPlan trial = std::move(*evaluated);
                    trial.kind = ConversionKind::SharedPadded;
                    rung.arg("outcome", "accept");
                    if (rung.active()) {
                        rung.arg("cycles", trial.estimateCycles(
                                               src, elemBytes, spec));
                        rung.arg("store_wavefronts",
                                 trial.storeWavefrontsTotal);
                        rung.arg("load_wavefronts",
                                 trial.loadWavefrontsTotal);
                        rung.arg("measured_cycles",
                                 trial.reportingCycles(src, elemBytes,
                                                       spec));
                    }
                    recordRung("shared-padded", true, "", true, &trial);
                    return trial;
                }
                notes.note(evaluated.diag());
            } catch (const std::exception &e) {
                notes.note(DiagCode::PaddedUnavailable, "plan.padded",
                           std::string("padded candidate rejected: ") +
                               e.what());
            }
        } else {
            notes.note(padded.diag());
        }
        rejectRung(rung);
        recordRung("shared-padded", false, lastNote(), false, nullptr);
    }

    // Rung 6: element-wise scalar round trip — the terminal rung,
    // correct for any surjective pair.
    {
        trace::Span rung("plan.rung.shared-scalar", "plan");
        static auto &evals =
            metrics::counter("plan.rung.shared-scalar.evaluated");
        evals.inc();
        auto scalar = planScalarShared(src, dst, elemBytes, spec);
        if (scalar) {
            try {
                auto evaluated = evaluateSharedCandidate(
                    plan, std::move(*scalar), src, dst, elemBytes, spec,
                    /*allowLdmatrix=*/false, /*allowStmatrix=*/false);
                if (evaluated) {
                    ConversionPlan trial = std::move(*evaluated);
                    trial.kind = ConversionKind::SharedScalar;
                    rung.arg("outcome", "accept");
                    if (rung.active()) {
                        rung.arg("cycles", trial.estimateCycles(
                                               src, elemBytes, spec));
                        rung.arg("store_wavefronts",
                                 trial.storeWavefrontsTotal);
                        rung.arg("load_wavefronts",
                                 trial.loadWavefrontsTotal);
                        rung.arg("measured_cycles",
                                 trial.reportingCycles(src, elemBytes,
                                                       spec));
                    }
                    recordRung("shared-scalar", true, "", true, &trial);
                    return trial;
                }
                notes.note(evaluated.diag());
            } catch (const std::exception &e) {
                notes.note(DiagCode::ScalarUnavailable, "plan.scalar",
                           std::string("scalar candidate rejected: ") +
                               e.what());
            }
        } else {
            notes.note(scalar.diag());
        }
        rejectRung(rung);
    }

    // The whole ladder failed (only reachable by injection). The
    // terminal reject record keeps the ledger's one-terminal-per-
    // conversion invariant; in practice ledgerLive is false here, since
    // total failure needs active failpoints and beginConversion refuses
    // under them.
    recordRung("shared-scalar", false, notes.toString(), true, nullptr);
    return makeDiag(DiagCode::PlannerInternalError, "plan",
                    "every rung of the fallback ladder failed: " +
                        notes.toString());
}

Result<ConversionPlan>
tryPlanConversion(const LinearLayout &src, const LinearLayout &dst,
                  int elemBytes, const sim::GpuSpec &spec)
{
    trace::Span span("plan.conversion", "plan");
    static auto &attempts = metrics::counter("plan.attempts");
    attempts.inc();
    auto result = tryPlanConversionImpl(src, dst, elemBytes, spec);
    if (result.ok()) {
        static auto &planned = metrics::counter("plan.planned");
        planned.inc();
        metrics::counter("plan.kind." + toString(result->kind)).inc();
        const double cycles =
            result->estimateCycles(src, elemBytes, spec);
        static auto &cyclesHist = metrics::Registry::instance().histogram(
            "plan.cycles", {1.0, 10.0, 100.0, 1000.0, 10000.0});
        cyclesHist.observe(cycles);
        observeCalibration(*result, src, elemBytes, spec);
        if (span.active()) {
            span.arg("kind", toString(result->kind));
            span.arg("cycles", cycles);
            if (result->shared.has_value())
                span.arg("measured_cycles",
                         result->reportingCycles(src, elemBytes, spec));
            span.arg("rungs_rejected",
                     static_cast<int64_t>(result->diagnostics.notes.size()));
        }
    } else {
        static auto &failed = metrics::counter("plan.failed");
        failed.inc();
        if (span.active()) {
            span.arg("kind", "unplanned");
            span.arg("error", result.diag().toString());
        }
    }
    return result;
}

ConversionPlan
planConversion(const LinearLayout &src, const LinearLayout &dst,
               int elemBytes, const sim::GpuSpec &spec)
{
    auto plan = tryPlanConversion(src, dst, elemBytes, spec);
    llUserCheck(plan.ok(), "planConversion failed: " +
                               plan.diag().toString());
    return std::move(*plan);
}

Result<ConversionPlan>
tryReplanBelow(ConversionKind failed, const LinearLayout &src,
               const LinearLayout &dst, int elemBytes,
               const sim::GpuSpec &spec)
{
    int startRung;
    switch (failed) {
      case ConversionKind::NoOp:
        startRung = kRungRegisterPermute;
        break;
      case ConversionKind::RegisterPermute:
        startRung = kRungWarpShuffle;
        break;
      case ConversionKind::WarpShuffle:
        startRung = kRungSharedMemory;
        break;
      case ConversionKind::SharedMemory:
        startRung = kRungSharedPadded;
        break;
      case ConversionKind::SharedPadded:
        startRung = kRungSharedScalar;
        break;
      case ConversionKind::SharedScalar:
      default:
        return makeDiag(DiagCode::PlannerInternalError, "plan.replan",
                        "the terminal scalar rung failed in execution; "
                        "nothing below it to demote to");
    }
    trace::Span span("plan.replan", "plan");
    static auto &replans = metrics::counter("plan.replans");
    replans.inc();
    auto result =
        tryPlanConversionImpl(src, dst, elemBytes, spec, startRung);
    if (result.ok())
        observeCalibration(*result, src, elemBytes, spec);
    if (span.active()) {
        span.arg("below", toString(failed));
        span.arg("outcome",
                 result.ok() ? toString(result->kind) : "unplanned");
    }
    return result;
}

double
ConversionPlan::estimateCycles(const LinearLayout &src, int elemBytes,
                               const sim::GpuSpec &spec) const
{
    const int numRegsSrc =
        src.hasInDim(dims::kReg) ? src.getInDimSize(dims::kReg) : 1;
    const int numWarpsSrc =
        src.hasInDim(dims::kWarp) ? src.getInDimSize(dims::kWarp) : 1;
    switch (kind) {
      case ConversionKind::NoOp:
        return 0.0;
      case ConversionKind::RegisterPermute:
        // Register moves retire at ~1 per cycle but typically fold into
        // surrounding instructions; charge a quarter cycle each.
        return 0.25 * numRegsSrc;
      case ConversionKind::WarpShuffle:
        return static_cast<double>(
                   shuffle->countShuffleInstructions(elemBytes)) *
               spec.shuffleCycles;
      case ConversionKind::SharedMemory: {
        // The optimal rung carries audited accounting, so it is priced
        // by its measured whole-pass wavefront totals, serialized per
        // warp. ldmatrix/stmatrix replace a side's plain accesses only
        // when the tile pricing is actually cheaper — the instructions
        // can never make a plan look worse than not using them.
        double storeCycles = static_cast<double>(storeWavefrontsTotal) /
                             numWarpsSrc * spec.sharedWavefrontCycles;
        double loadCycles = static_cast<double>(loadWavefrontsTotal) /
                            numWarpsSrc * spec.sharedWavefrontCycles;
        double tiles = std::max(1.0, numRegsSrc * elemBytes / 16.0);
        if (usesStmatrix)
            storeCycles = std::min(storeCycles,
                                   tiles * spec.ldmatrixCyclesPerTile);
        if (usesLdmatrix)
            loadCycles = std::min(loadCycles,
                                  tiles * spec.ldmatrixCyclesPerTile);
        return storeCycles + loadCycles + spec.sharedRoundTripCycles;
      }
      case ConversionKind::SharedPadded:
      case ConversionKind::SharedScalar: {
        // Fallback rungs are priced by a worst-case serialization bound
        // rather than measured luck: pessimism grows as guarantees
        // shrink down the ladder. The bound is taken at vector width 1
        // — the worst-case wavefronts needed to move the warp's bytes
        // are non-increasing in the width, so any measured total of a
        // higher rung (bounded by its own width's worst case) stays
        // below it, and estimateCycles is monotone in the rung order.
        // An issue-cost adder keyed to the plan's actual instruction
        // count then separates padded (vectorized) from scalar.
        const int lanes =
            src.hasInDim(dims::kLane) ? src.getInDimSize(dims::kLane) : 1;
        const double groups = std::max(
            1.0, std::ceil(static_cast<double>(lanes) * elemBytes /
                           spec.wavefrontBytes));
        // A group moves wavefrontBytes; fully serialized it retires one
        // bank word per wavefront.
        const double worstPerGroup =
            static_cast<double>(spec.wavefrontBytes) /
            spec.bankWidthBytes;
        const double worstWavefronts =
            2.0 * numRegsSrc * groups * worstPerGroup;
        const double issuedInstr =
            2.0 * std::max(1, numRegsSrc / shared->vecElems());
        // A windowed plan pays the round-trip barrier once per pass;
        // the adder only grows down the ladder (windowing engages only
        // on the scalar rung, when the flat allocation cannot fit), so
        // rung-order monotonicity is preserved.
        const double passes = static_cast<double>(
            shared->passesFor(src.getTotalOutDimSize()));
        return worstWavefronts * spec.sharedWavefrontCycles +
               issuedInstr + passes * spec.sharedRoundTripCycles;
      }
    }
    return 0.0;
}

double
ConversionPlan::reportingCycles(const LinearLayout &src, int elemBytes,
                                const sim::GpuSpec &spec) const
{
    if (!shared.has_value())
        return estimateCycles(src, elemBytes, spec);
    const int numWarpsSrc =
        src.hasInDim(dims::kWarp) ? src.getInDimSize(dims::kWarp) : 1;
    const double storeCycles = static_cast<double>(storeWavefrontsTotal) /
                               numWarpsSrc * spec.sharedWavefrontCycles;
    const double loadCycles = static_cast<double>(loadWavefrontsTotal) /
                              numWarpsSrc * spec.sharedWavefrontCycles;
    const double passes =
        static_cast<double>(shared->passesFor(src.getTotalOutDimSize()));
    return storeCycles + loadCycles + passes * spec.sharedRoundTripCycles;
}

} // namespace codegen
} // namespace ll
