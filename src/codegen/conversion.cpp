#include "codegen/conversion.h"

#include "codegen/tiles.h"
#include "triton/encodings.h"
#include "layout/dims.h"
#include "support/bits.h"

namespace ll {
namespace codegen {

namespace {

/** Can ldmatrix/stmatrix service this resource->offset map? */
bool
matchesLdmatrixTile(const LinearLayout &cvt, int elemBytes)
{
    if (elemBytes > 4)
        return false;
    LinearLayout tile = ldmatrixTile(elemBytes);
    if (tileMatches(cvt, tile))
        return true;
    auto permuted = permuteRegistersForTile(cvt, 4 / elemBytes);
    return permuted.has_value() && tileMatches(*permuted, tile);
}

} // namespace

std::string
toString(ConversionKind kind)
{
    switch (kind) {
      case ConversionKind::NoOp:
        return "no-op";
      case ConversionKind::RegisterPermute:
        return "register-permute";
      case ConversionKind::WarpShuffle:
        return "warp-shuffle";
      case ConversionKind::SharedMemory:
        return "shared-memory";
    }
    return "unknown";
}

ConversionPlan
planConversion(const LinearLayout &src, const LinearLayout &dst,
               int elemBytes, const sim::GpuSpec &spec)
{
    ConversionPlan plan;
    if (conversionIsNoOp(src, dst)) {
        plan.kind = ConversionKind::NoOp;
        return plan;
    }
    if (conversionIsRegisterPermute(src, dst)) {
        plan.kind = ConversionKind::RegisterPermute;
        return plan;
    }
    try {
        auto shuffle = planWarpShuffle(src, dst, elemBytes, spec);
        if (shuffle.has_value()) {
            plan.kind = ConversionKind::WarpShuffle;
            plan.shuffle = std::move(shuffle);
            return plan;
        }
    } catch (const LogicError &) {
        // Degenerate structure the shuffle planner cannot prove safe;
        // fall through to the always-correct shared-memory path.
    }

    plan.kind = ConversionKind::SharedMemory;

    // Candidate shared layouts: the optimal swizzle (maximal plain
    // vectorization) and, on 2D tensors, the legacy-parameter mma
    // swizzle whose vec-granular phases keep 16-byte rows intact and so
    // stay divisible by the ldmatrix/stmatrix tiles. Pick by modeled
    // cost.
    std::vector<SwizzledShared> candidates;
    candidates.push_back(
        computeOptimalSwizzle(src, dst, elemBytes, spec));
    if ((spec.hasLdmatrix || spec.hasStmatrix) && elemBytes <= 4 &&
        src.getNumOutDims() == 2) {
        auto outs = src.getOutDims();
        triton::Shape shape = {0, 0};
        for (const auto &[name, size] : outs)
            shape[static_cast<size_t>(std::stoi(name.substr(3)))] = size;
        // Fastest dim = first out dim of src.
        int fast = std::stoi(outs[0].first.substr(3));
        std::vector<int32_t> order = {fast, 1 - fast};
        auto params = triton::chooseMmaSwizzleParams(
            elemBytes, shape[static_cast<size_t>(fast)]);
        auto legacy = triton::mmaSwizzledSharedLayout(
            shape, params.vec, params.perPhase, params.maxPhase, order);
        candidates.push_back(
            wrapMemoryLayout(legacy, src, dst, elemBytes, spec));
    }

    double bestCost = -1.0;
    for (auto &cand : candidates) {
        LinearLayout toOffset =
            cand.tensorToOffset.transposeIns(src.getOutDimNames());
        LinearLayout storeCvt = src.compose(toOffset);
        LinearLayout loadCvt =
            dst.transposeOuts(src.getOutDimNames()).compose(toOffset);
        ConversionPlan trial = plan;
        trial.usesStmatrix = spec.hasStmatrix &&
                             matchesLdmatrixTile(storeCvt, elemBytes);
        trial.usesLdmatrix = spec.hasLdmatrix &&
                             matchesLdmatrixTile(loadCvt, elemBytes);
        trial.storeWavefrontsPerAccess =
            analyticWavefronts(cand, src, elemBytes, spec);
        trial.loadWavefrontsPerAccess =
            analyticWavefronts(cand, dst, elemBytes, spec);
        trial.shared = cand;
        double cost = trial.estimateCycles(src, elemBytes, spec);
        if (bestCost < 0 || cost < bestCost) {
            bestCost = cost;
            plan = std::move(trial);
        }
    }
    return plan;
}

double
ConversionPlan::estimateCycles(const LinearLayout &src, int elemBytes,
                               const sim::GpuSpec &spec) const
{
    const int numRegsSrc =
        src.hasInDim(dims::kReg) ? src.getInDimSize(dims::kReg) : 1;
    switch (kind) {
      case ConversionKind::NoOp:
        return 0.0;
      case ConversionKind::RegisterPermute:
        // Register moves retire at ~1 per cycle but typically fold into
        // surrounding instructions; charge a quarter cycle each.
        return 0.25 * numRegsSrc;
      case ConversionKind::WarpShuffle:
        return static_cast<double>(
                   shuffle->countShuffleInstructions(elemBytes)) *
               spec.shuffleCycles;
      case ConversionKind::SharedMemory: {
        const int vec = shared->vecElems();
        const int numRegsDst = numRegsSrc; // same element count per thread
        double storeInstr = std::max(1, numRegsSrc / vec);
        double loadInstr = std::max(1, numRegsDst / vec);
        double storeCycles = storeInstr *
                             static_cast<double>(storeWavefrontsPerAccess) *
                             spec.sharedWavefrontCycles;
        double loadCycles;
        if (usesLdmatrix) {
            // Each ldmatrix moves a 16-byte row per lane, conflict-free.
            double tiles = std::max(
                1.0, numRegsDst * elemBytes / 16.0);
            loadCycles = tiles * spec.ldmatrixCyclesPerTile;
        } else {
            loadCycles = loadInstr *
                         static_cast<double>(loadWavefrontsPerAccess) *
                         spec.sharedWavefrontCycles;
        }
        if (usesStmatrix) {
            double tiles = std::max(
                1.0, numRegsSrc * elemBytes / 16.0);
            storeCycles = tiles * spec.ldmatrixCyclesPerTile;
        }
        return storeCycles + loadCycles + spec.sharedRoundTripCycles;
      }
    }
    return 0.0;
}

} // namespace codegen
} // namespace ll
