/**
 * @file
 * Vectorization analysis for global memory accesses (Section 5.1).
 *
 * Given a distributed layout, the number of tensor elements that are
 * consecutive in memory *and* consecutive in one thread's registers
 * bounds the width of the load/store instruction the compiler may emit.
 * Legacy Triton derived this from a per-layout "fastest dimension"
 * heuristic that breaks when contiguity spans dimensions (Table 3); with
 * linear layouts it reduces to LinearLayout::getNumConsecutiveInOut().
 */

#ifndef LL_CODEGEN_VECTORIZE_H
#define LL_CODEGEN_VECTORIZE_H

#include <string>

#include "layout/linear_layout.h"

namespace ll {
namespace codegen {

/** A PTX-style vectorized memory instruction, e.g. v4.b32. */
struct MemoryInstruction
{
    int vecWords = 1;  ///< vector arity (1, 2, or 4)
    int wordBits = 32; ///< width of each word in bits

    int totalBits() const { return vecWords * wordBits; }

    /** Render as "v<N>.b<W>", the notation used in Table 3. */
    std::string toString() const;

    bool
    operator==(const MemoryInstruction &o) const
    {
        return vecWords == o.vecWords && wordBits == o.wordBits;
    }
};

/**
 * Pick the widest legal load/store instruction for a layout accessing a
 * tensor of elemBits-wide elements laid out with the same minor-to-major
 * order as the layout's output dims.
 */
MemoryInstruction selectMemoryInstruction(const LinearLayout &layout,
                                          int elemBits,
                                          int maxVectorBits = 128);

/** Bits accessed per instruction by the chosen vectorization. */
int accessBitwidth(const LinearLayout &layout, int elemBits,
                   int maxVectorBits = 128);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_VECTORIZE_H
