/**
 * @file
 * Layout-conversion lowering selector (Sections 5.3-5.4).
 *
 * Given source and destination distributed layouts, pick the cheapest
 * correct lowering, mirroring the decision procedure linear layouts
 * enable in Triton:
 *
 *   1. no-op            — B^-1 . A is the identity modulo broadcast;
 *   2. register permute — data never leaves its thread;
 *   3. warp shuffles    — data never leaves its warp (and no broadcast);
 *   4. shared memory    — general case, through an optimally swizzled
 *                         scratch layout, with ldmatrix/stmatrix when
 *                         the hardware has them and the tiles divide;
 *   5. padded shared    — unswizzled row-major scratch with bank-offset
 *                         padding, when no swizzle basis can be built;
 *   6. scalar shared    — element-wise round trip, correct for any pair
 *                         of surjective layouts; the terminal rung.
 *
 * Rungs 4-6 form a fallback ladder: planning is a total function over
 * valid inputs. A rung that cannot be built (degenerate basis, failed
 * invariant, injected failpoint) contributes a Diagnostic to the plan's
 * notes and the planner steps down; only invalid *inputs* are rejected,
 * and only via the structured tryPlanConversion interface or the
 * UserError-throwing planConversion wrapper.
 *
 * The returned plan carries enough detail for the simulator to execute
 * it on data and for the cost model to price it, plus the diagnostics
 * explaining every rung that was skipped on the way down.
 */

#ifndef LL_CODEGEN_CONVERSION_H
#define LL_CODEGEN_CONVERSION_H

#include <optional>
#include <string>
#include <vector>

#include "codegen/shuffle.h"
#include "codegen/swizzle.h"
#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "support/result.h"

namespace ll {
namespace codegen {

enum class ConversionKind
{
    NoOp,
    RegisterPermute,
    WarpShuffle,
    SharedMemory,
    SharedPadded,
    SharedScalar,
};

std::string toString(ConversionKind kind);

/** Inverse of toString; empty for unrecognized spellings. */
std::optional<ConversionKind> parseConversionKind(const std::string &s);

struct ConversionPlan
{
    ConversionKind kind = ConversionKind::NoOp;

    /** Present when kind == WarpShuffle. */
    std::optional<WarpShufflePlan> shuffle;

    /** Present for the shared-memory kinds (SharedMemory, SharedPadded,
     *  SharedScalar). */
    std::optional<SwizzledShared> shared;
    bool usesLdmatrix = false;
    bool usesStmatrix = false;
    /** Analytic per-warp-access wavefronts (Lemma 9.4); valid for the
     *  unpadded shared kinds only. */
    int64_t storeWavefrontsPerAccess = 0;
    int64_t loadWavefrontsPerAccess = 0;
    /** Enumerated whole-pass wavefront totals (warps x register groups);
     *  filled for every shared kind, and the only valid accounting for
     *  SharedPadded, where Lemma 9.4's uniformity assumption fails. */
    int64_t storeWavefrontsTotal = 0;
    int64_t loadWavefrontsTotal = 0;

    /**
     * Why the planner ended up on this rung: one note per rung that was
     * tried and skipped above the selected one. Empty when the first
     * applicable rung was taken without incident.
     */
    PlanDiagnostics diagnostics;

    /**
     * Modeled cost in cycles for converting one CTA worth of data.
     * numWarps warps each hold regs-per-thread elements.
     *
     * This is the *selection* cost: the fallback rungs are priced by a
     * worst-case bound so the ladder stays monotone by construction,
     * which is what rung ordering needs (see the rung-6 comment in the
     * implementation). Use reportingCycles() for the measured side.
     */
    double estimateCycles(const LinearLayout &src, int elemBytes,
                          const sim::GpuSpec &spec) const;

    /**
     * The *reporting* cost: cycles implied by the measured enumerated
     * wavefront totals (store + load serialized per warp, plus one
     * round-trip barrier per pass), with no worst-case pessimism and no
     * ldmatrix/stmatrix discount. This is the calibration ledger's
     * measured side; selection-vs-reporting disagreement is exactly the
     * signal the profile-guided cost model (ROADMAP item 1) trains on.
     * For the kinds with no shared accounting (NoOp, RegisterPermute,
     * WarpShuffle) there is nothing measured and this returns
     * estimateCycles().
     */
    double reportingCycles(const LinearLayout &src, int elemBytes,
                           const sim::GpuSpec &spec) const;
};

/**
 * Plan the conversion of a tensor from layout `src` to layout `dst`
 * (both distributed layouts over the same logical tensor), stepping
 * down the fallback ladder as rungs fail. Total over valid inputs: a
 * Diagnostic comes back only for invalid inputs
 * (DiagCode::InvalidInput — mismatched output spaces, non-distributed
 * in-dims, unsupported element size, non-surjective layouts) or if
 * every rung including the terminal scalar one was disabled (only
 * reachable by failpoint injection).
 */
Result<ConversionPlan> tryPlanConversion(const LinearLayout &src,
                                         const LinearLayout &dst,
                                         int elemBytes,
                                         const sim::GpuSpec &spec);

/**
 * Throwing convenience wrapper over tryPlanConversion: raises UserError
 * carrying the Diagnostic text when planning fails.
 */
ConversionPlan planConversion(const LinearLayout &src,
                              const LinearLayout &dst, int elemBytes,
                              const sim::GpuSpec &spec);

/**
 * Re-plan after an execution failure of a plan of kind `failed`: resume
 * the fallback ladder at the rung strictly below it, without evaluating
 * (or even opening spans for) the rungs at or above. This is what the
 * engine's execution-triggered demotion uses; it is equivalent to
 * re-running tryPlanConversion under the demotionSitesFor(failed)
 * knockout set, minus the wasted rung evaluations and the
 * FailpointInjected notes that knockout would leave in the plan's
 * diagnostics. Returns a Diagnostic when `failed` is the terminal
 * SharedScalar rung (nowhere left to demote to) or when every remaining
 * rung also fails.
 */
Result<ConversionPlan> tryReplanBelow(ConversionKind failed,
                                      const LinearLayout &src,
                                      const LinearLayout &dst,
                                      int elemBytes,
                                      const sim::GpuSpec &spec);

/**
 * Every failpoint site the planner consults, in ladder order, minus the
 * terminal "plan.scalar" (activating that together with the rest leaves
 * no rung standing, which is an engine-survival scenario rather than a
 * fallback one). Used by llfuzz --failpoint-rate and the fallback tests.
 */
std::vector<std::string> plannerFailpointSites();

/**
 * Every failpoint site the Result-returning executors consult
 * (exec.shuffle.*, exec.gather.*, exec.shared.*). These guard the
 * execution-time error paths rather than planning rungs; activating one
 * with a limit of 1 fails exactly one execution attempt, so a demoted
 * re-plan's smoke execution succeeds. Used by llfuzz
 * --failpoint-coverage and the exec-fallback tests.
 */
std::vector<std::string> executionFailpointSites();

/**
 * The planner-failpoint knockout set that forces a re-plan strictly
 * below `kind` on the fallback ladder (every rung at or above it is
 * disabled). Empty for SharedScalar: the terminal rung has nowhere to
 * demote to, so an execution failure there is an engine failure.
 */
std::vector<std::string> demotionSitesFor(ConversionKind kind);

/**
 * Execute `plan` once on tagged data to prove its executors are sound
 * for these layouts: WarpShuffle runs its shuffle schedule for warp 0
 * (the schedule is warp-invariant), the shared kinds run the full
 * simulated round trip. NoOp and RegisterPermute have no executor and
 * trivially pass. Returns the first executor failure, or nullopt when
 * execution succeeded — correctness of the *data* is the oracle's job
 * (src/check), not this smoke test's.
 */
std::optional<ExecDiagnostic>
smokeExecutePlan(const ConversionPlan &plan, const LinearLayout &src,
                 const LinearLayout &dst, int elemBytes,
                 const sim::GpuSpec &spec);

/**
 * Deterministic, exhaustive rendering of a plan: kind, the shuffle
 * schedule digest (vec/rounds/regs plus a checksum over every
 * transfer), the shared scratch layouts with padding and window
 * parameters, ldmatrix/stmatrix selection, wavefront accounting, and
 * the diagnostic notes. Two plans render identically iff they describe
 * the same lowering, so cached plans can be compared bit-for-bit
 * against freshly planned ones. Plans are immutable after planning
 * (every member function is const), which is what lets the service
 * share one `shared_ptr<const ConversionPlan>` across threads.
 */
std::string describePlan(const ConversionPlan &plan);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_CONVERSION_H
