/**
 * @file
 * Layout-conversion lowering selector (Sections 5.3-5.4).
 *
 * Given source and destination distributed layouts, pick the cheapest
 * correct lowering, mirroring the decision procedure linear layouts
 * enable in Triton:
 *
 *   1. no-op            — B^-1 . A is the identity modulo broadcast;
 *   2. register permute — data never leaves its thread;
 *   3. warp shuffles    — data never leaves its warp (and no broadcast);
 *   4. shared memory    — general case, through an optimally swizzled
 *                         scratch layout, with ldmatrix/stmatrix when
 *                         the hardware has them and the tiles divide.
 *
 * The returned plan carries enough detail for the simulator to execute
 * it on data and for the cost model to price it.
 */

#ifndef LL_CODEGEN_CONVERSION_H
#define LL_CODEGEN_CONVERSION_H

#include <optional>
#include <string>

#include "codegen/shuffle.h"
#include "codegen/swizzle.h"
#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"

namespace ll {
namespace codegen {

enum class ConversionKind
{
    NoOp,
    RegisterPermute,
    WarpShuffle,
    SharedMemory,
};

std::string toString(ConversionKind kind);

struct ConversionPlan
{
    ConversionKind kind = ConversionKind::NoOp;

    /** Present when kind == WarpShuffle. */
    std::optional<WarpShufflePlan> shuffle;

    /** Present when kind == SharedMemory. */
    std::optional<SwizzledShared> shared;
    bool usesLdmatrix = false;
    bool usesStmatrix = false;
    /** Analytic per-warp-access wavefronts (Lemma 9.4). */
    int64_t storeWavefrontsPerAccess = 0;
    int64_t loadWavefrontsPerAccess = 0;

    /**
     * Modeled cost in cycles for converting one CTA worth of data.
     * numWarps warps each hold regs-per-thread elements.
     */
    double estimateCycles(const LinearLayout &src, int elemBytes,
                          const sim::GpuSpec &spec) const;
};

/**
 * Plan the conversion of a tensor from layout `src` to layout `dst`
 * (both distributed layouts over the same logical tensor).
 */
ConversionPlan planConversion(const LinearLayout &src,
                              const LinearLayout &dst, int elemBytes,
                              const sim::GpuSpec &spec);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_CONVERSION_H
