/**
 * @file
 * SIMD instruction tiles and tile matching (Section 5.3).
 *
 * Theorem 5.1: an instruction whose data movement is described by a tile
 * layout T can lower a register-to-memory map L iff the left division
 * L / T exists. This module builds the tiles for vectorized shared
 * loads/stores and for ldmatrix/stmatrix, and implements the generalized
 * vectorization fallback that permutes registers until division succeeds.
 */

#ifndef LL_CODEGEN_TILES_H
#define LL_CODEGEN_TILES_H

#include <optional>
#include <vector>

#include "layout/linear_layout.h"

namespace ll {
namespace codegen {

/**
 * Tile of a vectorized shared-memory access moving vecElems consecutive
 * elements per thread: the identity from registers to offsets.
 */
LinearLayout vectorTile(int vecElems);

/**
 * Tile of ldmatrix/stmatrix for elements of elemBytes width: each thread
 * handles 4 contiguous bytes (log2(4/w) register bits) and groups of 4
 * threads cover a 16-byte row (2 lane bits), per Section 5.3.
 */
LinearLayout ldmatrixTile(int elemBytes);

/**
 * Theorem 5.1 check: does `tile` lower `cvt`? `cvt` is a map from
 * register/lane/... to offset (e.g. A composed with the inverse memory
 * layout).
 */
bool tileMatches(const LinearLayout &cvt, const LinearLayout &tile);

/**
 * Generalized vectorization (Section 5.3): try to reorder the register
 * basis of `cvt` so that vectorTile(vecElems) divides it. Returns the
 * permuted layout, or nullopt when no permutation works. The permutation
 * is free at codegen time — registers have no inherent order.
 */
std::optional<LinearLayout> permuteRegistersForTile(const LinearLayout &cvt,
                                                    int vecElems);

/**
 * The largest power-of-two vectorization (in elements) achievable for
 * `cvt` after register permutation, capped at maxElems.
 */
int maxVectorization(const LinearLayout &cvt, int maxElems);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_TILES_H
