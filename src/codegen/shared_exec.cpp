#include "codegen/shared_exec.h"

#include <set>

#include "layout/dims.h"
#include "support/bits.h"

namespace ll {
namespace codegen {

namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

/** Distinct vectorized register groups of a layout: one representative
 *  register index per group of registers mapping to the same
 *  vec-aligned offset block (for lane 0, warp 0 — grouping is
 *  lane-invariant by linearity). */
std::vector<int32_t>
registerGroupReps(const SwizzledShared &swz, const LinearLayout &dist)
{
    std::set<uint64_t> seen;
    std::vector<int32_t> reps;
    const int numRegs = dist.getInDimSize(kReg);
    for (int32_t reg = 0; reg < numRegs; ++reg) {
        uint64_t x = dist.applyFlat(static_cast<uint64_t>(reg));
        uint64_t key = swz.tensorToOffset.applyFlat(x) >> swz.vecBits;
        if (seen.insert(key).second)
            reps.push_back(reg);
    }
    return reps;
}

} // namespace

SharedConversionResult
executeSharedConversion(const SwizzledShared &swz, const LinearLayout &src,
                        const LinearLayout &dst, int elemBytes,
                        const sim::GpuSpec &spec)
{
    SharedConversionResult result;
    const int64_t numElems = src.getTotalOutDimSize();
    sim::SharedMemory smem(spec, elemBytes, numElems);
    const int warpSize = src.getInDimSize(kLane);
    const int numWarps = src.hasInDim(kWarp) ? src.getInDimSize(kWarp) : 1;
    const int vec = swz.vecElems();

    // --- store phase: every warp writes its fragment -------------------
    auto storeReps = registerGroupReps(swz, src);
    for (int warp = 0; warp < numWarps; ++warp) {
        for (int32_t rep : storeReps) {
            auto offsets =
                warpAccessOffsets(swz, src, rep, warp, warpSize);
            std::vector<std::vector<uint64_t>> values(offsets.size());
            for (size_t lane = 0; lane < offsets.size(); ++lane) {
                for (int k = 0; k < vec; ++k) {
                    values[lane].push_back(swz.memLayout.applyFlat(
                        static_cast<uint64_t>(offsets[lane]) +
                        static_cast<uint64_t>(k)));
                }
            }
            smem.warpStore(offsets, vec, values, result.storeStats);
        }
    }

    // --- load phase + verification -------------------------------------
    LinearLayout dstAligned = dst.transposeOuts(src.getOutDimNames());
    auto loadReps = registerGroupReps(swz, dstAligned);
    const int numWarpsDst = dstAligned.hasInDim(kWarp)
                                ? dstAligned.getInDimSize(kWarp)
                                : 1;
    result.correct = true;
    for (int warp = 0; warp < numWarpsDst; ++warp) {
        for (int32_t rep : loadReps) {
            auto offsets =
                warpAccessOffsets(swz, dstAligned, rep, warp, warpSize);
            auto loaded = smem.warpLoad(offsets, vec, result.loadStats);
            for (size_t lane = 0; lane < offsets.size(); ++lane) {
                for (int k = 0; k < vec; ++k) {
                    uint64_t expect = swz.memLayout.applyFlat(
                        static_cast<uint64_t>(offsets[lane]) +
                        static_cast<uint64_t>(k));
                    if (loaded[lane][static_cast<size_t>(k)] != expect)
                        result.correct = false;
                }
            }
        }
    }
    return result;
}

} // namespace codegen
} // namespace ll
