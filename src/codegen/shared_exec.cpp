#include "codegen/shared_exec.h"

#include <map>
#include <set>

#include "layout/dims.h"
#include "support/bits.h"

namespace ll {
namespace codegen {

namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

} // namespace

SharedConversionResult
executeSharedConversion(const SwizzledShared &swz, const LinearLayout &src,
                        const LinearLayout &dst, int elemBytes,
                        const sim::GpuSpec &spec)
{
    SharedConversionResult result;
    const int64_t numElems = src.getTotalOutDimSize();
    sim::SharedMemory smem(spec, elemBytes, swz.storageElems(numElems));
    const int warpSize = src.getInDimSize(kLane);
    const int numWarps = src.hasInDim(kWarp) ? src.getInDimSize(kWarp) : 1;
    const int vec = swz.vecElems();

    // --- store phase: every warp writes its fragment -------------------
    auto storeReps = registerGroupReps(swz, src);
    for (int warp = 0; warp < numWarps; ++warp) {
        for (int32_t rep : storeReps) {
            auto offsets =
                warpAccessOffsets(swz, src, rep, warp, warpSize);
            std::vector<std::vector<uint64_t>> values(offsets.size());
            for (size_t lane = 0; lane < offsets.size(); ++lane) {
                int64_t linear = swz.unpadOffset(offsets[lane]);
                for (int k = 0; k < vec; ++k) {
                    values[lane].push_back(swz.memLayout.applyFlat(
                        static_cast<uint64_t>(linear + k)));
                }
            }
            smem.warpStore(offsets, vec, values, result.storeStats);
        }
    }

    // --- load phase + verification -------------------------------------
    LinearLayout dstAligned = dst.transposeOuts(src.getOutDimNames());
    auto loadReps = registerGroupReps(swz, dstAligned);
    const int numWarpsDst = dstAligned.hasInDim(kWarp)
                                ? dstAligned.getInDimSize(kWarp)
                                : 1;
    result.correct = true;
    for (int warp = 0; warp < numWarpsDst; ++warp) {
        for (int32_t rep : loadReps) {
            auto offsets =
                warpAccessOffsets(swz, dstAligned, rep, warp, warpSize);
            auto loaded = smem.warpLoad(offsets, vec, result.loadStats);
            for (size_t lane = 0; lane < offsets.size(); ++lane) {
                int64_t linear = swz.unpadOffset(offsets[lane]);
                for (int k = 0; k < vec; ++k) {
                    uint64_t expect = swz.memLayout.applyFlat(
                        static_cast<uint64_t>(linear + k));
                    if (loaded[lane][static_cast<size_t>(k)] != expect)
                        result.correct = false;
                }
            }
        }
    }
    return result;
}

SharedRoundTrip
runSharedRoundTrip(const SwizzledShared &swz, const LinearLayout &srcIn,
                   const LinearLayout &dst,
                   const std::vector<uint64_t> &srcFile, int elemBytes,
                   const sim::GpuSpec &spec)
{
    LinearLayout src = srcIn.transposeOuts(swz.memLayout.getOutDimNames());
    LinearLayout dstAligned =
        dst.transposeOuts(swz.memLayout.getOutDimNames());
    llUserCheck(srcFile.size() ==
                    static_cast<size_t>(src.getTotalInDimSize()),
                "source register file size does not match the layout");

    SharedRoundTrip result;
    const int64_t numElems = src.getTotalOutDimSize();
    sim::SharedMemory smem(spec, elemBytes, swz.storageElems(numElems));
    const int vec = swz.vecElems();
    const uint64_t vecMask = static_cast<uint64_t>(vec) - 1;

    // Per thread, the offset every register writes to; grouped into
    // vec-aligned windows so each window becomes one vectorized access.
    // Window keys are *storage* bases (padOffset applied) to match
    // warpAccessOffsets; the slot within a window is pad-invariant
    // because padding is a multiple of the vectorization.
    auto offsetOf = [&](const LinearLayout &dist, uint64_t in) {
        return swz.tensorToOffset.applyFlat(dist.applyFlat(in));
    };

    // --- store phase ---------------------------------------------------
    const int srcRegLog = src.getInDimSizeLog2(kReg);
    const int srcLaneLog = src.getInDimSizeLog2(kLane);
    const int srcWarps =
        src.hasInDim(kWarp) ? src.getInDimSize(kWarp) : 1;
    const int srcLanes = 1 << srcLaneLog;
    auto storeReps = registerGroupReps(swz, src);
    for (int warp = 0; warp < srcWarps; ++warp) {
        // Per lane: vec-window base -> (slot within window, payload).
        std::vector<std::map<int64_t,
                             std::vector<std::pair<int, uint64_t>>>>
            held(static_cast<size_t>(srcLanes));
        for (int lane = 0; lane < srcLanes; ++lane) {
            for (int32_t reg = 0; reg < (1 << srcRegLog); ++reg) {
                uint64_t in =
                    static_cast<uint64_t>(reg) |
                    (static_cast<uint64_t>(lane) << srcRegLog) |
                    (static_cast<uint64_t>(warp)
                     << (srcRegLog + srcLaneLog));
                uint64_t off = offsetOf(src, in);
                held[static_cast<size_t>(lane)]
                    [swz.padOffset(static_cast<int64_t>(off & ~vecMask))]
                        .emplace_back(static_cast<int>(off & vecMask),
                                      srcFile[static_cast<size_t>(in)]);
            }
        }
        for (int32_t rep : storeReps) {
            auto offsets =
                warpAccessOffsets(swz, src, rep, warp, srcLanes);
            std::vector<std::vector<uint64_t>> values(
                offsets.size(),
                std::vector<uint64_t>(static_cast<size_t>(vec),
                                      sim::SharedMemory::kPoison));
            for (size_t lane = 0; lane < offsets.size(); ++lane) {
                auto it = held[lane].find(offsets[lane]);
                if (it == held[lane].end())
                    continue;
                for (const auto &[slot, payload] : it->second)
                    values[lane][static_cast<size_t>(slot)] = payload;
            }
            smem.warpStore(offsets, vec, values, result.storeStats);
        }
    }

    // --- load phase ----------------------------------------------------
    const int dstRegLog = dstAligned.getInDimSizeLog2(kReg);
    const int dstLaneLog = dstAligned.getInDimSizeLog2(kLane);
    const int dstWarps =
        dstAligned.hasInDim(kWarp) ? dstAligned.getInDimSize(kWarp) : 1;
    const int dstLanes = 1 << dstLaneLog;
    result.dstFile.assign(
        static_cast<size_t>(dstAligned.getTotalInDimSize()),
        sim::SharedMemory::kPoison);
    auto loadReps = registerGroupReps(swz, dstAligned);
    for (int warp = 0; warp < dstWarps; ++warp) {
        // Per lane: vec-window base -> (slot, dst flat input) readers.
        std::vector<std::map<int64_t,
                             std::vector<std::pair<int, uint64_t>>>>
            wanted(static_cast<size_t>(dstLanes));
        for (int lane = 0; lane < dstLanes; ++lane) {
            for (int32_t reg = 0; reg < (1 << dstRegLog); ++reg) {
                uint64_t in =
                    static_cast<uint64_t>(reg) |
                    (static_cast<uint64_t>(lane) << dstRegLog) |
                    (static_cast<uint64_t>(warp)
                     << (dstRegLog + dstLaneLog));
                uint64_t off = offsetOf(dstAligned, in);
                wanted[static_cast<size_t>(lane)]
                    [swz.padOffset(static_cast<int64_t>(off & ~vecMask))]
                        .emplace_back(static_cast<int>(off & vecMask),
                                      in);
            }
        }
        for (int32_t rep : loadReps) {
            auto offsets =
                warpAccessOffsets(swz, dstAligned, rep, warp, dstLanes);
            auto loaded = smem.warpLoad(offsets, vec, result.loadStats);
            for (size_t lane = 0; lane < offsets.size(); ++lane) {
                auto it = wanted[lane].find(offsets[lane]);
                if (it == wanted[lane].end())
                    continue;
                for (const auto &[slot, in] : it->second) {
                    result.dstFile[static_cast<size_t>(in)] =
                        loaded[lane][static_cast<size_t>(slot)];
                }
            }
        }
    }
    return result;
}

} // namespace codegen
} // namespace ll
