#include "codegen/shared_exec.h"

#include <map>
#include <set>

#include "layout/dims.h"
#include "support/bits.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ll {
namespace codegen {

namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

/** The failpoint decisions for one executor run, each site evaluated
 *  exactly once per call so limited activations ("site:1") fail one
 *  execution and let the demoted re-plan's execution succeed. */
struct SharedExecFaults
{
    bool alloc;
    bool window;
    bool bankBudget;

    SharedExecFaults()
        : alloc(LL_FAILPOINT("exec.shared.alloc")),
          window(LL_FAILPOINT("exec.shared.window")),
          bankBudget(LL_FAILPOINT("exec.shared.bank-budget"))
    {
    }
};

/**
 * Mask a warp access's storage offsets down to the current window:
 * offsets inside [pass * window, pass * window + window) become
 * window-local, the rest go inactive. Returns the number of active
 * lanes; 0 means the access is not issued at all.
 */
int64_t
maskToWindow(std::vector<int64_t> &offsets, int64_t pass, int64_t window)
{
    const int64_t lo = pass * window;
    int64_t active = 0;
    for (int64_t &o : offsets) {
        if (o >= lo && o < lo + window) {
            o -= lo;
            ++active;
        } else {
            o = sim::kInactiveLane;
        }
    }
    return active;
}

/** Worst-case wavefronts a pass of `instructions` accesses can cost:
 *  every lane in its own serialized wavefront, times the bank words a
 *  single vectorized access spans. Exceeding it means the simulator or
 *  the swizzle bookkeeping is corrupt. */
int64_t
bankBudget(int64_t instructions, int lanes, int vecBytes,
           const sim::GpuSpec &spec)
{
    const int64_t wordsPerLane = std::max<int64_t>(
        1, (vecBytes + spec.bankWidthBytes - 1) / spec.bankWidthBytes);
    return instructions * std::max(lanes, 1) * wordsPerLane;
}

} // namespace

Result<SharedConversionResult, ExecDiagnostic>
executeSharedConversion(const SwizzledShared &swz, const LinearLayout &src,
                        const LinearLayout &dst, int elemBytes,
                        const sim::GpuSpec &spec)
{
  trace::Span span("exec.shared.convert", "exec");
  static auto &runs = metrics::counter("exec.shared.runs");
  runs.inc();
  int64_t lanesMasked = 0;
  try {
    SharedExecFaults faults;
    SharedConversionResult result;
    const int64_t numElems = src.getTotalOutDimSize();
    const int64_t storage = swz.storageElems(numElems);
    const int64_t alloc = swz.allocElems(numElems);
    const int64_t passes = swz.passesFor(numElems);
    if (faults.alloc || !sim::SharedMemory::fits(spec, elemBytes, alloc)) {
        return makeExecDiag(
            ExecError::SharedWindowOverflow, "exec.shared.alloc",
            "allocation of " + std::to_string(alloc * elemBytes) +
                " bytes exceeds the CTA budget of " +
                std::to_string(spec.sharedMemPerCta));
    }
    const int warpSize = src.getInDimSize(kLane);
    const int numWarps = src.hasInDim(kWarp) ? src.getInDimSize(kWarp) : 1;
    const int vec = swz.vecElems();

    LinearLayout dstAligned = dst.transposeOuts(src.getOutDimNames());
    auto storeReps = registerGroupReps(swz, src);
    auto loadReps = registerGroupReps(swz, dstAligned);
    const int numWarpsDst = dstAligned.hasInDim(kWarp)
                                ? dstAligned.getInDimSize(kWarp)
                                : 1;
    // Composed address tables: one applyFlat per input bit up front,
    // then each warp access is a run of XORs — the offsets are
    // bit-identical to warpAccessOffsets (see WarpAccessTable).
    const WarpAccessTable storeTable(
        swz, src.transposeOuts(swz.memLayout.getOutDimNames()));
    const WarpAccessTable loadTable(
        swz, dstAligned.transposeOuts(swz.memLayout.getOutDimNames()));
    result.correct = true;
    for (int64_t pass = 0; pass < passes; ++pass) {
        sim::SharedMemory smem(spec, elemBytes, alloc);

        // --- store phase: every warp writes its fragment ---------------
        for (int warp = 0; warp < numWarps; ++warp) {
            for (int32_t rep : storeReps) {
                std::vector<int64_t> offsets;
                offsets.reserve(static_cast<size_t>(warpSize));
                storeTable.offsetsInto(rep, warp, offsets);
                std::vector<std::vector<uint64_t>> values(offsets.size());
                for (size_t lane = 0; lane < offsets.size(); ++lane) {
                    if (faults.window || offsets[lane] < 0 ||
                        offsets[lane] + vec > storage) {
                        return makeExecDiag(
                            ExecError::SharedWindowOverflow,
                            "exec.shared.window",
                            "store offset " +
                                std::to_string(offsets[lane]) +
                                " outside storage of " +
                                std::to_string(storage));
                    }
                    int64_t linear = swz.unpadOffset(offsets[lane]);
                    for (int k = 0; k < vec; ++k) {
                        values[lane].push_back(swz.memLayout.applyFlat(
                            static_cast<uint64_t>(linear + k)));
                    }
                }
                const int64_t active = maskToWindow(offsets, pass, alloc);
                lanesMasked +=
                    static_cast<int64_t>(offsets.size()) - active;
                if (active == 0)
                    continue;
                smem.warpStore(offsets, vec, values, result.storeStats);
            }
        }

        // --- load phase + verification ---------------------------------
        for (int warp = 0; warp < numWarpsDst; ++warp) {
            for (int32_t rep : loadReps) {
                std::vector<int64_t> offsets;
                offsets.reserve(static_cast<size_t>(warpSize));
                loadTable.offsetsInto(rep, warp, offsets);
                auto global = offsets;
                const int64_t active = maskToWindow(offsets, pass, alloc);
                lanesMasked +=
                    static_cast<int64_t>(offsets.size()) - active;
                if (active == 0)
                    continue;
                auto loaded = smem.warpLoad(offsets, vec,
                                            result.loadStats);
                for (size_t lane = 0; lane < offsets.size(); ++lane) {
                    if (offsets[lane] == sim::kInactiveLane)
                        continue;
                    int64_t linear = swz.unpadOffset(global[lane]);
                    for (int k = 0; k < vec; ++k) {
                        uint64_t expect = swz.memLayout.applyFlat(
                            static_cast<uint64_t>(linear + k));
                        if (loaded[lane][static_cast<size_t>(k)] !=
                            expect)
                            result.correct = false;
                    }
                }
            }
        }
    }

    const int64_t instructions = result.storeStats.instructions +
                                 result.loadStats.instructions;
    const int64_t measured =
        result.storeStats.wavefronts + result.loadStats.wavefronts;
    if (faults.bankBudget ||
        measured >
            bankBudget(instructions, warpSize, vec * elemBytes, spec)) {
        return makeExecDiag(
            ExecError::BankBudgetExceeded, "exec.shared.bank-budget",
            std::to_string(measured) +
                " wavefronts exceed the full-serialization budget");
    }
    static auto &passesRun = metrics::counter("exec.shared.passes");
    passesRun.add(passes);
    static auto &wavefronts = metrics::counter("exec.shared.wavefronts");
    wavefronts.add(measured);
    static auto &masked = metrics::counter("exec.shared.lanes_masked");
    masked.add(lanesMasked);
    static auto &bytes = metrics::counter("exec.shared.bytes_moved");
    bytes.add(2 * numElems * elemBytes);
    if (span.active()) {
        span.arg("passes", passes);
        span.arg("alloc_bytes", alloc * elemBytes);
        span.arg("wavefronts", measured);
        span.arg("lanes_masked", lanesMasked);
        span.arg("bytes_moved", 2 * numElems * elemBytes);
    }
    return result;
  } catch (const std::exception &e) {
    return makeExecDiag(ExecError::ExecInternalError, "exec.shared",
                        e.what());
  }
}

Result<SharedRoundTrip, ExecDiagnostic>
runSharedRoundTrip(const SwizzledShared &swz, const LinearLayout &srcIn,
                   const LinearLayout &dst,
                   const std::vector<uint64_t> &srcFile, int elemBytes,
                   const sim::GpuSpec &spec)
{
  trace::Span span("exec.shared.round-trip", "exec");
  static auto &runs = metrics::counter("exec.shared.runs");
  runs.inc();
  int64_t lanesMasked = 0;
  try {
    SharedExecFaults faults;
    LinearLayout src = srcIn.transposeOuts(swz.memLayout.getOutDimNames());
    LinearLayout dstAligned =
        dst.transposeOuts(swz.memLayout.getOutDimNames());
    if (LL_FAILPOINT("exec.shared.file-size") ||
        srcFile.size() != static_cast<size_t>(src.getTotalInDimSize())) {
        return makeExecDiag(
            ExecError::PlanShapeMismatch, "exec.shared.file-size",
            "source register file holds " +
                std::to_string(srcFile.size()) + " values; the layout "
                "spans " +
                std::to_string(src.getTotalInDimSize()));
    }

    SharedRoundTrip result;
    const int64_t numElems = src.getTotalOutDimSize();
    const int64_t storage = swz.storageElems(numElems);
    const int64_t alloc = swz.allocElems(numElems);
    const int64_t passes = swz.passesFor(numElems);
    if (faults.alloc || !sim::SharedMemory::fits(spec, elemBytes, alloc)) {
        return makeExecDiag(
            ExecError::SharedWindowOverflow, "exec.shared.alloc",
            "allocation of " + std::to_string(alloc * elemBytes) +
                " bytes exceeds the CTA budget of " +
                std::to_string(spec.sharedMemPerCta));
    }
    const int vec = swz.vecElems();
    const uint64_t vecMask = static_cast<uint64_t>(vec) - 1;

    // Per thread, the offset every register writes to; grouped into
    // vec-aligned windows so each window becomes one vectorized access.
    // Window keys are *storage* bases (padOffset applied) to match
    // warpAccessOffsets; the slot within a window is pad-invariant
    // because padding is a multiple of the vectorization.
    //
    // The composed map tensorToOffset . dist is linear, so the whole
    // offset table falls out of one prefix-XOR sweep: clearing the
    // lowest set bit of `in` leaves an index already computed, and the
    // difference is one composed column.
    auto flatOffsets = [&](const LinearLayout &dist) {
        const int bits = dist.getTotalInDimSizeLog2();
        std::vector<uint64_t> cols(static_cast<size_t>(bits));
        for (int i = 0; i < bits; ++i) {
            cols[static_cast<size_t>(i)] = swz.tensorToOffset.applyFlat(
                dist.applyFlat(uint64_t(1) << i));
        }
        std::vector<uint64_t> offs(size_t(1) << bits);
        offs[0] = 0;
        for (size_t in = 1; in < offs.size(); ++in)
            offs[in] = offs[in & (in - 1)] ^
                       cols[static_cast<size_t>(std::countr_zero(in))];
        return offs;
    };

    const int srcRegLog = src.getInDimSizeLog2(kReg);
    const int srcLaneLog = src.getInDimSizeLog2(kLane);
    const int srcWarps =
        src.hasInDim(kWarp) ? src.getInDimSize(kWarp) : 1;
    const int srcLanes = 1 << srcLaneLog;
    auto storeReps = registerGroupReps(swz, src);

    const int dstRegLog = dstAligned.getInDimSizeLog2(kReg);
    const int dstLaneLog = dstAligned.getInDimSizeLog2(kLane);
    const int dstWarps =
        dstAligned.hasInDim(kWarp) ? dstAligned.getInDimSize(kWarp) : 1;
    const int dstLanes = 1 << dstLaneLog;
    result.dstFile.assign(
        static_cast<size_t>(dstAligned.getTotalInDimSize()),
        sim::SharedMemory::kPoison);
    auto loadReps = registerGroupReps(swz, dstAligned);

    // Per warp and lane: vec-window base -> (slot within window,
    // payload) for stores, (slot, dst flat input) for loads. Built once;
    // every pass reuses them.
    using LaneMap =
        std::map<int64_t, std::vector<std::pair<int, uint64_t>>>;
    const auto srcOffs = flatOffsets(src);
    const auto dstOffs = flatOffsets(dstAligned);
    std::vector<std::vector<LaneMap>> held(
        static_cast<size_t>(srcWarps),
        std::vector<LaneMap>(static_cast<size_t>(srcLanes)));
    for (int warp = 0; warp < srcWarps; ++warp) {
        for (int lane = 0; lane < srcLanes; ++lane) {
            for (int32_t reg = 0; reg < (1 << srcRegLog); ++reg) {
                uint64_t in =
                    static_cast<uint64_t>(reg) |
                    (static_cast<uint64_t>(lane) << srcRegLog) |
                    (static_cast<uint64_t>(warp)
                     << (srcRegLog + srcLaneLog));
                uint64_t off = srcOffs[in];
                held[static_cast<size_t>(warp)][static_cast<size_t>(lane)]
                    [swz.padOffset(static_cast<int64_t>(off & ~vecMask))]
                        .emplace_back(static_cast<int>(off & vecMask),
                                      srcFile[static_cast<size_t>(in)]);
            }
        }
    }
    std::vector<std::vector<LaneMap>> wanted(
        static_cast<size_t>(dstWarps),
        std::vector<LaneMap>(static_cast<size_t>(dstLanes)));
    for (int warp = 0; warp < dstWarps; ++warp) {
        for (int lane = 0; lane < dstLanes; ++lane) {
            for (int32_t reg = 0; reg < (1 << dstRegLog); ++reg) {
                uint64_t in =
                    static_cast<uint64_t>(reg) |
                    (static_cast<uint64_t>(lane) << dstRegLog) |
                    (static_cast<uint64_t>(warp)
                     << (dstRegLog + dstLaneLog));
                uint64_t off = dstOffs[in];
                wanted[static_cast<size_t>(warp)]
                      [static_cast<size_t>(lane)]
                      [swz.padOffset(static_cast<int64_t>(off & ~vecMask))]
                          .emplace_back(static_cast<int>(off & vecMask),
                                        in);
            }
        }
    }

    const WarpAccessTable storeTable(swz, src);
    const WarpAccessTable loadTable(swz, dstAligned);
    for (int64_t pass = 0; pass < passes; ++pass) {
        sim::SharedMemory smem(spec, elemBytes, alloc);

        // --- store phase -----------------------------------------------
        for (int warp = 0; warp < srcWarps; ++warp) {
            for (int32_t rep : storeReps) {
                std::vector<int64_t> offsets;
                offsets.reserve(static_cast<size_t>(srcLanes));
                storeTable.offsetsInto(rep, warp, offsets);
                std::vector<std::vector<uint64_t>> values(
                    offsets.size(),
                    std::vector<uint64_t>(static_cast<size_t>(vec),
                                          sim::SharedMemory::kPoison));
                for (size_t lane = 0; lane < offsets.size(); ++lane) {
                    if (faults.window || offsets[lane] < 0 ||
                        offsets[lane] + vec > storage) {
                        return makeExecDiag(
                            ExecError::SharedWindowOverflow,
                            "exec.shared.window",
                            "store offset " +
                                std::to_string(offsets[lane]) +
                                " outside storage of " +
                                std::to_string(storage));
                    }
                    const auto &laneMap =
                        held[static_cast<size_t>(warp)][lane];
                    auto it = laneMap.find(offsets[lane]);
                    if (it == laneMap.end())
                        continue;
                    for (const auto &[slot, payload] : it->second)
                        values[lane][static_cast<size_t>(slot)] = payload;
                }
                const int64_t active = maskToWindow(offsets, pass, alloc);
                lanesMasked +=
                    static_cast<int64_t>(offsets.size()) - active;
                if (active == 0)
                    continue;
                smem.warpStore(offsets, vec, values, result.storeStats);
            }
        }

        // --- load phase ------------------------------------------------
        for (int warp = 0; warp < dstWarps; ++warp) {
            for (int32_t rep : loadReps) {
                std::vector<int64_t> offsets;
                offsets.reserve(static_cast<size_t>(dstLanes));
                loadTable.offsetsInto(rep, warp, offsets);
                auto global = offsets;
                const int64_t active = maskToWindow(offsets, pass, alloc);
                lanesMasked +=
                    static_cast<int64_t>(offsets.size()) - active;
                if (active == 0)
                    continue;
                auto loaded =
                    smem.warpLoad(offsets, vec, result.loadStats);
                for (size_t lane = 0; lane < offsets.size(); ++lane) {
                    if (offsets[lane] == sim::kInactiveLane)
                        continue;
                    const auto &laneMap =
                        wanted[static_cast<size_t>(warp)][lane];
                    auto it = laneMap.find(global[lane]);
                    if (it == laneMap.end())
                        continue;
                    for (const auto &[slot, in] : it->second) {
                        result.dstFile[static_cast<size_t>(in)] =
                            loaded[lane][static_cast<size_t>(slot)];
                    }
                }
            }
        }
    }

    const int64_t instructions = result.storeStats.instructions +
                                 result.loadStats.instructions;
    const int64_t measured =
        result.storeStats.wavefronts + result.loadStats.wavefronts;
    const int lanes = std::max(srcLanes, dstLanes);
    if (faults.bankBudget ||
        measured >
            bankBudget(instructions, lanes, vec * elemBytes, spec)) {
        return makeExecDiag(
            ExecError::BankBudgetExceeded, "exec.shared.bank-budget",
            std::to_string(measured) +
                " wavefronts exceed the full-serialization budget");
    }
    static auto &passesRun = metrics::counter("exec.shared.passes");
    passesRun.add(passes);
    static auto &wavefronts = metrics::counter("exec.shared.wavefronts");
    wavefronts.add(measured);
    static auto &masked = metrics::counter("exec.shared.lanes_masked");
    masked.add(lanesMasked);
    static auto &bytes = metrics::counter("exec.shared.bytes_moved");
    bytes.add(2 * numElems * elemBytes);
    if (span.active()) {
        span.arg("passes", passes);
        span.arg("alloc_bytes", alloc * elemBytes);
        span.arg("wavefronts", measured);
        span.arg("lanes_masked", lanesMasked);
        span.arg("bytes_moved", 2 * numElems * elemBytes);
    }
    return result;
  } catch (const std::exception &e) {
    return makeExecDiag(ExecError::ExecInternalError, "exec.shared",
                        e.what());
  }
}

} // namespace codegen
} // namespace ll
