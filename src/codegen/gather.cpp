#include "codegen/gather.h"

#include "layout/dims.h"
#include "support/bits.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ll {
namespace codegen {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

std::optional<GatherPlan>
planGather(const LinearLayout &layout, int axis, const sim::GpuSpec &spec)
{
    if (!layout.hasInDim(kReg) || !layout.hasInDim(kLane) ||
        !layout.hasOutDim(dims::out(axis))) {
        return std::nullopt;
    }
    if (!layout.isInvertible())
        return std::nullopt;
    if (layout.getInDimSize(kLane) != spec.warpSize)
        return std::nullopt;

    // Warp-local iff no warp basis vector moves along the gathered axis.
    const std::string axisDim = dims::out(axis);
    if (layout.hasInDim(kWarp)) {
        for (int32_t i = 0; i < layout.getInDimSizeLog2(kWarp); ++i) {
            if (layout.getBasis(kWarp, i, axisDim) != 0)
                return std::nullopt;
        }
    }

    GatherPlan plan;
    plan.axis = axis;
    plan.numRegs = layout.getInDimSize(kReg);
    plan.warpSize = spec.warpSize;
    int threadBits = 0;
    for (int32_t i = 0; i < layout.getInDimSizeLog2(kLane); ++i) {
        if (layout.getBasis(kLane, i, axisDim) != 0)
            ++threadBits;
    }
    plan.rounds = 1 << threadBits;
    return plan;
}

Result<std::vector<std::vector<uint64_t>>, ExecDiagnostic>
executeGather(const GatherPlan &plan, const LinearLayout &layout,
              int32_t warp, const std::vector<std::vector<uint64_t>> &regs,
              const std::vector<std::vector<int32_t>> &idx)
{
  trace::Span span("exec.gather", "exec");
  static auto &runs = metrics::counter("exec.gather.runs");
  runs.inc();
  try {
    const int warpSize = plan.warpSize;
    const int numRegs = plan.numRegs;
    const std::string axisDim = dims::out(plan.axis);
    if (static_cast<int>(regs.size()) != warpSize ||
        static_cast<int>(idx.size()) != warpSize || warpSize <= 0) {
        return makeExecDiag(ExecError::PlanShapeMismatch, "exec.gather",
                            "register/index files do not span the warp");
    }
    for (int lane = 0; lane < warpSize; ++lane) {
        if (static_cast<int>(regs[static_cast<size_t>(lane)].size()) <
                numRegs ||
            static_cast<int>(idx[static_cast<size_t>(lane)].size()) <
                numRegs) {
            return makeExecDiag(ExecError::PlanShapeMismatch,
                                "exec.gather",
                                "a lane holds fewer registers than the "
                                "plan reads");
        }
    }
    if (LL_FAILPOINT("exec.gather.invert") || !layout.isInvertible()) {
        return makeExecDiag(ExecError::NonInvertibleStep,
                            "exec.gather.invert",
                            "gather layout is not invertible");
    }
    LinearLayout inv = layout.invert();
    const int64_t axisSize = layout.getOutDimSize(axisDim);
    const bool failIndex = LL_FAILPOINT("exec.gather.index-range");
    const bool failWarp = LL_FAILPOINT("exec.gather.cross-warp");

    std::vector<std::vector<uint64_t>> out(
        static_cast<size_t>(warpSize),
        std::vector<uint64_t>(static_cast<size_t>(numRegs)));
    for (int lane = 0; lane < warpSize; ++lane) {
        for (int reg = 0; reg < numRegs; ++reg) {
            int32_t index = idx[static_cast<size_t>(lane)]
                               [static_cast<size_t>(reg)];
            if (failIndex || index < 0 || index >= axisSize) {
                return makeExecDiag(
                    ExecError::RegisterOutOfRange,
                    "exec.gather.index-range",
                    "gather index " + std::to_string(index) +
                        " outside axis of " + std::to_string(axisSize));
            }
            auto coords = layout.apply(
                {{kReg, reg}, {kLane, lane}, {kWarp, warp}});
            // Redirect the axis coordinate through the index tensor.
            for (auto &[dim, value] : coords) {
                if (dim == axisDim)
                    value = index;
            }
            auto srcIdx = inv.apply(coords);
            int32_t srcReg = 0, srcLane = 0, srcWarp = 0;
            for (const auto &[dim, value] : srcIdx) {
                if (dim == kReg)
                    srcReg = value;
                else if (dim == kLane)
                    srcLane = value;
                else if (dim == kWarp)
                    srcWarp = value;
            }
            if (failWarp || srcWarp != warp) {
                return makeExecDiag(
                    ExecError::CrossWarpSource, "exec.gather.cross-warp",
                    "gather source landed in warp " +
                        std::to_string(srcWarp) +
                        " despite a warp-local plan");
            }
            if (srcLane < 0 || srcLane >= warpSize || srcReg < 0 ||
                srcReg >= numRegs) {
                return makeExecDiag(
                    ExecError::LaneOutOfRange, "exec.gather.cross-warp",
                    "gather source (reg " + std::to_string(srcReg) +
                        ", lane " + std::to_string(srcLane) +
                        ") outside the register file");
            }
            out[static_cast<size_t>(lane)][static_cast<size_t>(reg)] =
                regs[static_cast<size_t>(srcLane)]
                    [static_cast<size_t>(srcReg)];
        }
    }
    static auto &moved = metrics::counter("exec.gather.elements_moved");
    moved.add(static_cast<int64_t>(warpSize) * numRegs);
    if (span.active()) {
        span.arg("rounds", static_cast<int64_t>(plan.rounds));
        span.arg("warp_size", warpSize);
        span.arg("elements_moved",
                 static_cast<int64_t>(warpSize) * numRegs);
    }
    return out;
  } catch (const std::exception &e) {
    return makeExecDiag(ExecError::ExecInternalError, "exec.gather",
                        e.what());
  }
}

} // namespace codegen
} // namespace ll
