#include "codegen/gather.h"

#include "layout/dims.h"
#include "support/bits.h"

namespace ll {
namespace codegen {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

std::optional<GatherPlan>
planGather(const LinearLayout &layout, int axis, const sim::GpuSpec &spec)
{
    if (!layout.hasInDim(kReg) || !layout.hasInDim(kLane) ||
        !layout.hasOutDim(dims::out(axis))) {
        return std::nullopt;
    }
    if (!layout.isInvertible())
        return std::nullopt;
    if (layout.getInDimSize(kLane) != spec.warpSize)
        return std::nullopt;

    // Warp-local iff no warp basis vector moves along the gathered axis.
    const std::string axisDim = dims::out(axis);
    if (layout.hasInDim(kWarp)) {
        for (int32_t i = 0; i < layout.getInDimSizeLog2(kWarp); ++i) {
            if (layout.getBasis(kWarp, i, axisDim) != 0)
                return std::nullopt;
        }
    }

    GatherPlan plan;
    plan.axis = axis;
    plan.numRegs = layout.getInDimSize(kReg);
    plan.warpSize = spec.warpSize;
    int threadBits = 0;
    for (int32_t i = 0; i < layout.getInDimSizeLog2(kLane); ++i) {
        if (layout.getBasis(kLane, i, axisDim) != 0)
            ++threadBits;
    }
    plan.rounds = 1 << threadBits;
    return plan;
}

std::vector<std::vector<uint64_t>>
executeGather(const GatherPlan &plan, const LinearLayout &layout,
              int32_t warp, const std::vector<std::vector<uint64_t>> &regs,
              const std::vector<std::vector<int32_t>> &idx)
{
    LinearLayout inv = layout.invert();
    const int warpSize = plan.warpSize;
    const int numRegs = plan.numRegs;
    const std::string axisDim = dims::out(plan.axis);

    std::vector<std::vector<uint64_t>> out(
        static_cast<size_t>(warpSize),
        std::vector<uint64_t>(static_cast<size_t>(numRegs)));
    for (int lane = 0; lane < warpSize; ++lane) {
        for (int reg = 0; reg < numRegs; ++reg) {
            auto coords = layout.apply(
                {{kReg, reg}, {kLane, lane}, {kWarp, warp}});
            // Redirect the axis coordinate through the index tensor.
            for (auto &[dim, value] : coords) {
                if (dim == axisDim)
                    value = idx[static_cast<size_t>(lane)]
                               [static_cast<size_t>(reg)];
            }
            auto srcIdx = inv.apply(coords);
            int32_t srcReg = 0, srcLane = 0, srcWarp = 0;
            for (const auto &[dim, value] : srcIdx) {
                if (dim == kReg)
                    srcReg = value;
                else if (dim == kLane)
                    srcLane = value;
                else if (dim == kWarp)
                    srcWarp = value;
            }
            llAssert(srcWarp == warp,
                     "gather source crossed warps despite a warp-local "
                     "plan");
            out[static_cast<size_t>(lane)][static_cast<size_t>(reg)] =
                regs[static_cast<size_t>(srcLane)]
                    [static_cast<size_t>(srcReg)];
        }
    }
    return out;
}

} // namespace codegen
} // namespace ll
