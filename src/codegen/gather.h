/**
 * @file
 * Warp-shuffle lowering of tl.gather (Section 5.5).
 *
 * The gather operator reads src[..., index[..., pos, ...], ...] along a
 * single axis. When the layout places every element of the gathered axis
 * inside one warp — i.e. all warp basis vectors have a zero component on
 * that axis — the operation lowers to warp shuffles instead of a round
 * trip through shared memory. The number of shuffle rounds is
 * 2^|L_Thr^axis|: one per thread basis vector that moves along the axis.
 */

#ifndef LL_CODEGEN_GATHER_H
#define LL_CODEGEN_GATHER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "support/result.h"

namespace ll {
namespace codegen {

struct GatherPlan
{
    int axis = 0;
    /** Shuffle rounds: 2^(number of thread bits moving along axis). */
    int rounds = 1;
    int numRegs = 0;
    int warpSize = 0;

    /** Total warp shuffle instructions: rounds per register position. */
    int64_t
    countShuffleInstructions() const
    {
        return static_cast<int64_t>(rounds) * numRegs;
    }
};

/**
 * Plan a warp-local gather for src/index tensors sharing `layout`, or
 * nullopt when elements of the axis span warps (shared-memory fallback).
 * The layout must be injective.
 */
std::optional<GatherPlan> planGather(const LinearLayout &layout, int axis,
                                     const sim::GpuSpec &spec);

/**
 * Execute a gather on one warp: regs[lane][r] holds the src value of the
 * element that layout assigns to (r, lane, warp); idx[lane][r] holds the
 * index value (a coordinate along `axis`). Returns the gathered values
 * in the same layout, verifying en route that every fetch stays inside
 * the warp (the plan's guarantee). Total over any input: a
 * non-invertible layout, an index outside the gathered axis, or a fetch
 * that crosses warps comes back as an ExecDiagnostic instead of
 * aborting. Failpoint sites: "exec.gather.invert",
 * "exec.gather.index-range", "exec.gather.cross-warp".
 */
Result<std::vector<std::vector<uint64_t>>, ExecDiagnostic>
executeGather(const GatherPlan &plan, const LinearLayout &layout,
              int32_t warp,
              const std::vector<std::vector<uint64_t>> &regs,
              const std::vector<std::vector<int32_t>> &idx);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_GATHER_H
