/**
 * @file
 * Warp-shuffle layout conversion (Section 5.4, "Intra-warp Data
 * Exchange").
 *
 * When the conversion map B^-1 . A keeps warps fixed, data can move
 * between layouts A and B entirely through registers and warp shuffles,
 * bypassing shared memory (the FlashAttention-3 trick the paper
 * generalizes). The plan construction follows the paper exactly:
 *
 *   V  — vectorized register basis shared by A and B (per-shuffle
 *        payload, capped at 32 bits);
 *   I  — thread basis common to A and B (no movement needed);
 *   E/F — thread bases unique to A resp. B; G = { e_i xor f_i } spans
 *        the exchange directions;
 *   R  — completion of V u I u G inside the warp-0 element space; each
 *        of the 2^|R| affine slices R(i) + span(V u I u G) holds exactly
 *        one vectorized element per thread of A and per thread of B, and
 *        is exchanged in one shuffle round.
 *
 * The resulting plan is fully concrete — per round and destination lane
 * it records the source lane and the register pairs — so the simulator
 * can execute it on data and the tests can verify every element lands
 * where layout B demands.
 */

#ifndef LL_CODEGEN_SHUFFLE_H
#define LL_CODEGEN_SHUFFLE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "support/result.h"

namespace ll {
namespace codegen {

/** One lane's receive action in one shuffle round. */
struct ShuffleXfer
{
    int32_t srcLane = -1;
    /** (source register in A, destination register in B) pairs; the
     *  vectorized payload of this round. */
    std::vector<std::pair<int32_t, int32_t>> regPairs;
};

struct WarpShufflePlan
{
    int vecElems = 1; ///< elements exchanged per shuffle (2^|V|)
    int rounds = 0;   ///< 2^|R| shuffle rounds
    /** xfers[round][dstLane]: what each lane receives. Identical for
     *  every warp (the conversion is warp-invariant by construction). */
    std::vector<std::vector<ShuffleXfer>> xfers;
    int numRegsA = 0;
    int numRegsB = 0;
    int warpSize = 0;

    /**
     * Warp-level shuffle instructions issued: rounds where at least one
     * lane receives from another lane cost ceil(payloadBytes / 4)
     * shuffles; all-local rounds are register moves and cost zero.
     */
    int64_t countShuffleInstructions(int elemBytes) const;

    /**
     * Execute on one warp's register file: src[lane][regA] are the
     * values held under layout A; returns values arranged per layout B.
     * Total over any input: a malformed register file or a corrupted
     * plan comes back as an ExecDiagnostic (PlanShapeMismatch,
     * LaneOutOfRange, RegisterOutOfRange) instead of aborting, so the
     * engine can re-plan one rung further down. Failpoint sites:
     * "exec.shuffle.shape", "exec.shuffle.lane-range",
     * "exec.shuffle.reg-range".
     */
    Result<std::vector<std::vector<uint64_t>>, ExecDiagnostic>
    execute(const std::vector<std::vector<uint64_t>> &src) const;
};

/**
 * Build a shuffle plan converting layout A to layout B. Returns a
 * Diagnostic instead when the rung does not apply
 * (DiagCode::ShuffleNotApplicable — the conversion crosses warps, or
 * layouts broadcast, which the shared-memory path handles instead) or
 * when the exchange structure cannot be proven safe
 * (DiagCode::ShuffleDegenerate). Never throws for valid distributed
 * layouts; the failpoint site "shuffle.pair-basis" forces the
 * degenerate outcome for testing.
 */
Result<WarpShufflePlan> planWarpShuffle(const LinearLayout &a,
                                        const LinearLayout &b,
                                        int elemBytes,
                                        const sim::GpuSpec &spec);

/**
 * True when B^-1 . A is the identity modulo broadcast bits: the
 * conversion is a no-op (the welford case in Section 6.2).
 */
bool conversionIsNoOp(const LinearLayout &a, const LinearLayout &b);

/**
 * True when the conversion only permutes registers within each thread
 * (the intra-thread case of Section 5.4).
 */
bool conversionIsRegisterPermute(const LinearLayout &a,
                                 const LinearLayout &b);

/** True when the conversion keeps data within warps. */
bool conversionIsIntraWarp(const LinearLayout &a, const LinearLayout &b);

} // namespace codegen
} // namespace ll

#endif // LL_CODEGEN_SHUFFLE_H
