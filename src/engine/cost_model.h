/**
 * @file
 * Kernel-level cost model over an engine-annotated function.
 *
 * Produces the two kinds of numbers the paper's evaluation reports:
 * (a) op-distribution counts — convert_layout / local_load /
 * local_store, as in Table 6 — and (b) modeled execution cycles, which
 * the Figure 9 benchmarks turn into speedups. The model prices global
 * accesses by coalesced 32-byte sectors, conversions by their lowering
 * plan (no-op / permute / shuffles / shared round trips with Lemma 9.4
 * wavefronts), dots by tensor-core throughput, and reductions by shuffle
 * rounds plus an optional cross-warp shared round trip.
 */

#ifndef LL_ENGINE_COST_MODEL_H
#define LL_ENGINE_COST_MODEL_H

#include <string>

#include "ir/function.h"
#include "sim/gpu_spec.h"

namespace ll {
namespace engine {

struct KernelCost
{
    // --- op distribution (Table 6 columns) ----------------------------
    int converts = 0;
    int localLoads = 0;
    int localStores = 0;

    // --- conversion lowering breakdown ---------------------------------
    int noopConversions = 0;
    int permuteConversions = 0;
    int shuffleConversions = 0;
    int sharedConversions = 0;

    // --- modeled execution ---------------------------------------------
    int64_t globalSectors = 0;
    double cycles = 0.0;

    std::string toString() const;
};

/** Price an engine-annotated function on the given GPU model. */
KernelCost estimateKernelCost(const ir::Function &f,
                              const sim::GpuSpec &spec, int numWarps = 4);

} // namespace engine
} // namespace ll

#endif // LL_ENGINE_COST_MODEL_H
