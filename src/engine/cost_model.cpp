#include "engine/cost_model.h"

#include <sstream>

#include "codegen/conversion.h"
#include "codegen/gather.h"
#include "layout/dims.h"
#include "support/bits.h"
#include "synth/candidates.h"

namespace ll {
namespace engine {

namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

int
regCount(const LinearLayout &l)
{
    return l.hasInDim(kReg) ? l.getInDimSize(kReg) : 1;
}

int
warpCount(const LinearLayout &l)
{
    return l.hasInDim(kWarp) ? l.getInDimSize(kWarp) : 1;
}

/** Global traffic of one load/store of a tensor in `layout`. The
 *  replay lives in synth::globalMemorySectors so the synthesis node
 *  cost and this estimate are one function, not two copies. */
int64_t
globalSectorsFor(const LinearLayout &layout, int elemBits,
                 const sim::GpuSpec &spec)
{
    return synth::globalMemorySectors(layout, elemBits, spec);
}

} // namespace

std::string
KernelCost::toString() const
{
    std::ostringstream oss;
    oss << "converts=" << converts << " local_load=" << localLoads
        << " local_store=" << localStores << " (noop=" << noopConversions
        << " permute=" << permuteConversions
        << " shuffle=" << shuffleConversions
        << " shared=" << sharedConversions << ")"
        << " sectors=" << globalSectors << " cycles=" << cycles;
    return oss.str();
}

KernelCost
estimateKernelCost(const ir::Function &f, const sim::GpuSpec &spec,
                   int numWarps)
{
    KernelCost cost;
    for (int i = 0; i < f.numOps(); ++i) {
        const ir::Op &o = f.op(i);
        if (o.erased)
            continue;
        switch (o.kind) {
          case ir::OpKind::Load:
          case ir::OpKind::Store: {
            int v = o.kind == ir::OpKind::Load ? o.results[0]
                                               : o.operands[0];
            const auto &val = f.value(v);
            if (!val.layout)
                break;
            int64_t sectors = globalSectorsFor(
                *val.layout, bitWidth(val.type.dtype), spec);
            cost.globalSectors += sectors;
            cost.cycles += static_cast<double>(sectors) *
                           spec.globalSectorCycles;
            break;
          }
          case ir::OpKind::ConvertLayout: {
            const auto &src = f.value(o.operands[0]);
            const auto &dst = f.value(o.results[0]);
            if (!src.layout || !dst.layout)
                break;
            ++cost.converts;
            int elemBytes = byteWidth(src.type.dtype);
            auto plan = codegen::tryPlanConversion(
                *src.layout, *dst.layout, elemBytes, spec);
            if (!plan) {
                // An unplannable conversion gets priced like a scalar
                // shared round trip rather than sinking the whole
                // estimate; the engine has already tagged the op.
                ++cost.sharedConversions;
                ++cost.localLoads;
                ++cost.localStores;
                cost.cycles += spec.sharedRoundTripCycles +
                               2.0 * regCount(*src.layout) *
                                   spec.sharedWavefrontCycles;
                break;
            }
            switch (plan->kind) {
              case codegen::ConversionKind::NoOp:
                ++cost.noopConversions;
                break;
              case codegen::ConversionKind::RegisterPermute:
                ++cost.permuteConversions;
                break;
              case codegen::ConversionKind::WarpShuffle:
                ++cost.shuffleConversions;
                break;
              case codegen::ConversionKind::SharedMemory:
              case codegen::ConversionKind::SharedPadded:
              case codegen::ConversionKind::SharedScalar:
                ++cost.sharedConversions;
                ++cost.localLoads;
                ++cost.localStores;
                break;
            }
            cost.cycles +=
                plan->estimateCycles(*src.layout, elemBytes, spec);
            break;
          }
          case ir::OpKind::Dot: {
            const auto &ta = f.value(o.operands[0]).type;
            const auto &tacc = f.value(o.results[0]).type;
            double macs = double(tacc.shape[0]) * tacc.shape[1] *
                          ta.shape[1];
            bool fma = o.tag.find("fma") != std::string::npos;
            double throughput =
                fma ? double(numWarps) * spec.warpSize *
                          spec.aluOpsPerLanePerCycle
                    : double(numWarps) * spec.mmaMacsPerCyclePerWarp;
            cost.cycles += macs / throughput;
            // Tensor cores read their operands through shared memory
            // (modeled by the ConvertLayout ops the engine inserted).
            break;
          }
          case ir::OpKind::Reduce: {
            const auto &src = f.value(o.operands[0]);
            if (!src.layout)
                break;
            const LinearLayout &l = *src.layout;
            const std::string axisDim = dims::out(o.axis);
            int laneBits = 0, warpBits = 0;
            if (l.hasInDim(kLane)) {
                for (int b = 0; b < l.getInDimSizeLog2(kLane); ++b)
                    laneBits += l.getBasis(kLane, b, axisDim) != 0;
            }
            if (l.hasInDim(kWarp)) {
                for (int b = 0; b < l.getInDimSizeLog2(kWarp); ++b)
                    warpBits += l.getBasis(kWarp, b, axisDim) != 0;
            }
            int resultRegs = std::max(1, regCount(l) >> laneBits);
            cost.cycles += double(laneBits) * resultRegs *
                           spec.shuffleCycles;
            if (warpBits > 0) {
                ++cost.localStores;
                ++cost.localLoads;
                cost.cycles += spec.sharedRoundTripCycles +
                               2.0 * warpBits *
                                   spec.sharedWavefrontCycles;
            }
            break;
          }
          case ir::OpKind::Gather: {
            const auto &src = f.value(o.operands[0]);
            if (!src.layout)
                break;
            auto plan = codegen::planGather(*src.layout, o.axis, spec);
            int regs = regCount(*src.layout);
            double sharedCycles = spec.sharedRoundTripCycles +
                                  2.0 * regs *
                                      spec.sharedWavefrontCycles;
            double shuffleCycles =
                plan.has_value()
                    ? double(plan->countShuffleInstructions()) *
                          spec.shuffleCycles
                    : sharedCycles + 1.0;
            // Pick the cheaper lowering, as the compiler does: many
            // shuffle rounds lose to one shared round trip (the
            // Figure 8 crossover).
            if (plan.has_value() && shuffleCycles <= sharedCycles) {
                cost.cycles += shuffleCycles;
            } else {
                ++cost.localStores;
                ++cost.localLoads;
                cost.cycles += sharedCycles;
            }
            break;
          }
          case ir::OpKind::Scan: {
            const auto &src = f.value(o.operands[0]);
            if (!src.layout)
                break;
            const LinearLayout &l = *src.layout;
            const std::string axisDim = dims::out(o.axis);
            int laneBits = 0, warpBits = 0, regBits = 0;
            if (l.hasInDim(kLane)) {
                for (int bIdx = 0; bIdx < l.getInDimSizeLog2(kLane);
                     ++bIdx)
                    laneBits += l.getBasis(kLane, bIdx, axisDim) != 0;
            }
            if (l.hasInDim(kWarp)) {
                for (int bIdx = 0; bIdx < l.getInDimSizeLog2(kWarp);
                     ++bIdx)
                    warpBits += l.getBasis(kWarp, bIdx, axisDim) != 0;
            }
            if (l.hasInDim(kReg)) {
                for (int bIdx = 0; bIdx < l.getInDimSizeLog2(kReg);
                     ++bIdx)
                    regBits += l.getBasis(kReg, bIdx, axisDim) != 0;
            }
            // Sequential within registers, Hillis-Steele across lanes
            // (one shuffle per axis lane-bit per register), partials
            // through shared memory across warps.
            int regs = regCount(l);
            cost.cycles += double(regs); // in-register prefix
            cost.cycles +=
                double(laneBits) * regs * spec.shuffleCycles;
            if (warpBits > 0) {
                ++cost.localStores;
                ++cost.localLoads;
                cost.cycles += spec.sharedRoundTripCycles +
                               2.0 * warpBits *
                                   spec.sharedWavefrontCycles;
            }
            break;
          }
          case ir::OpKind::Elementwise: {
            const auto &res = f.value(o.results[0]);
            if (!res.layout)
                break;
            cost.cycles += double(regCount(*res.layout)) /
                           spec.aluOpsPerLanePerCycle;
            break;
          }
          default:
            break; // shape ops and constants are free
        }
    }
    return cost;
}

} // namespace engine
} // namespace ll
