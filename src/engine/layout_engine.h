/**
 * @file
 * Triton's layout engine rebuilt on linear layouts (Section 4.4).
 *
 * The engine assigns *anchor* layouts — default blocked layouts at
 * global loads/stores and MMA / MMA-input layouts at dots — then
 * propagates layouts forward through the remaining ops using the
 * Section 4.4 transfer functions, inserting ConvertLayout ops where an
 * operand arrives in the wrong layout. A cleanup pass then removes
 * conversions that linear layouts can prove to be no-ops (including
 * across layout *kinds*, which the legacy system could not compare) and
 * hoists conversions through shape ops when that turns them into no-ops
 * (rematerialization).
 */

#ifndef LL_ENGINE_LAYOUT_ENGINE_H
#define LL_ENGINE_LAYOUT_ENGINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cute/admit.h"
#include "ir/function.h"
#include "sim/gpu_spec.h"
#include "synth/synthesize.h"

namespace ll {

namespace service {
class PlanCache;
}

namespace engine {

struct EngineOptions
{
    sim::GpuSpec spec = sim::GpuSpec::gh200();
    int numWarps = 4;
    /** Reuse smoke-execution verdicts across identical conversions:
     *  within one run, two ConvertLayout ops with the same
     *  (src, dst, elemBytes, kind) share one successful smoke execution
     *  (failures are never cached — the demotion loop needs fresh
     *  diagnostics and failpoint semantics). Hits are counted in
     *  EngineStats::smokeCacheHits and the "engine.smoke.cache_hits"
     *  metric. */
    bool cacheSmokeResults = true;
    /** Shared, sharded plan cache (borrowed, not owned; nullptr
     *  disables). A cache hit serves the memoized plan — or a memoized
     *  InvalidInput rejection — without planning or smoke-executing
     *  anything, and is counted in EngineStats::planCacheHits /
     *  planCacheNegativeHits, distinct from the per-run smoke-verdict
     *  cache above (a plan-cache hit never touches the smoke cache, so
     *  the two never double count one op). Plans that survived
     *  demotion, were shaped by failpoints, or were planned while any
     *  failpoint was active are never inserted. */
    service::PlanCache *planCache = nullptr;
    /** Run the whole-kernel anchor-assignment search (src/synth) before
     *  propagation and adopt its winning assignment when the true cost
     *  model prices it strictly below the default. Never worse: the
     *  default assignment is always evaluated too and wins ties, so a
     *  synthesized run's kernel cost is <= the synth-off run's by
     *  construction. Off (the default) keeps the engine bit-identical
     *  to the propagation-only path. */
    bool synthesizeLayouts = false;
    /** Search knobs for synthesizeLayouts. The planCache field is
     *  overwritten with EngineOptions::planCache at run time so edge
     *  pricing shares the engine's cache. */
    synth::SynthOptions synthOptions;
};

struct EngineStats
{
    int convertsInserted = 0;
    int convertsEliminated = 0;
    /** ConvertLayout ops surviving cleanup that received a lowering
     *  plan (tagged "convert:<kind>"). */
    int convertsPlanned = 0;
    /** Plans that stepped down the fallback ladder — the planner
     *  succeeded but left diagnostics explaining skipped rungs. */
    int planFallbacks = 0;
    /** Conversions whose planning failed outright; the op is tagged
     *  "convert:unplanned" and the function still verifies — the
     *  engine downgrades, it does not abort. */
    int planFailures = 0;
    /** Shape-transfer functions that threw (or were failpointed via
     *  "engine.transfer") and fell back to the anchor layout. */
    int transferFallbacks = 0;
    /** Conversions whose smoke execution failed and were successfully
     *  re-planned one rung further down the ladder (counted once per
     *  demotion step, so one op can contribute several). */
    int execFallbacks = 0;
    /** Conversions whose execution failed with no rung left to demote
     *  to (or whose demoted re-plan failed); the op is tagged
     *  "convert:unplanned" and the engine carries on. */
    int execFailures = 0;
    /** Smoke executions skipped because an identical conversion already
     *  passed earlier in the run (see EngineOptions::cacheSmokeResults). */
    int smokeCacheHits = 0;
    /** Conversions served whole from the shared plan cache
     *  (EngineOptions::planCache): no planning, no smoke execution, no
     *  smoke-cache involvement. Mirrored as "engine.plan_cache_hits";
     *  the cache's own counters live under "service.plan_cache.*". */
    int planCacheHits = 0;
    /** Conversions rejected from a memoized InvalidInput entry; also
     *  counted in planFailures (the op is tagged convert:unplanned). */
    int planCacheNegativeHits = 0;
    /** Conversions that consulted the shared plan cache and missed. */
    int planCacheMisses = 0;
    /** Conversions the synthesized assignment avoided relative to the
     *  default assignment (surviving-after-cleanup counts, default
     *  minus chosen). Folded into convertsEliminated — the headline
     *  counter keeps meaning "conversions that did not survive" — and
     *  mirrored separately as "synth.converts_eliminated" so the
     *  propagation-vs-synthesis partition stays visible (llstat
     *  --validate-bench-json checks it sums). Zero when synthesis is
     *  off or chose the default. */
    int synthConvertsEliminated = 0;
    /** Complete assignments repriced with the true pipeline (trial
     *  assignForward + cleanup + estimateKernelCost), including the
     *  default. Zero when synthesis is off. */
    int synthAssignmentsEvaluated = 0;
    /** 1 when the run adopted a non-default assignment. */
    int synthChoseSynthesized = 0;
    /** True-cost-model cycles of the default and of the adopted
     *  assignment for this run (equal unless synthChoseSynthesized). */
    double synthDefaultCycles = 0.0;
    double synthChosenCycles = 0.0;
    /** Human-readable notes from every fallback or failure, in op
     *  order. */
    std::vector<std::string> planDiagnostics;
    /** Per-run delta of every registry counter that moved during this
     *  run (metrics::Registry names — see DESIGN.md "Observability").
     *  The int fields above are mirrors of the engine.* entries here;
     *  they keep working unchanged. When the calibration ledger is
     *  recording (LL_LEDGER), the plan.calib.* family appears here too:
     *  records / terminal_records / conversions / dedup_skips /
     *  observations counter deltas, surfacing per-run ledger activity
     *  without the caller touching ledger::Ledger (DESIGN.md §16; the
     *  plan.calib.error_ratio histogram lives in the registry's
     *  exposition, histograms are not delta-snapshotted). */
    std::map<std::string, int64_t> metrics;
};

class LayoutEngine
{
  public:
    explicit LayoutEngine(EngineOptions options)
        : options_(std::move(options))
    {
    }

    /** Annotate every value with a layout; insert and clean up
     *  conversions. Returns what happened. */
    EngineStats run(ir::Function &f);

    /** The blocked anchor layout the engine assigns at loads/stores. */
    LinearLayout anchorForMemory(const ir::TensorType &type) const;

    /** The MMA/MFMA output layout chosen for a dot of this shape. */
    LinearLayout dotResultLayout(const ir::TensorType &accType,
                                 int operandBits) const;

    /** The MMA-input layout for operand opIdx of such a dot. */
    LinearLayout dotOperandLayout(const ir::TensorType &operandType,
                                  const ir::TensorType &accType,
                                  int opIdx, int operandBits) const;

    /**
     * Accept a cute (shape,stride) relayout — including non-pow2
     * logical shapes the F2 entry points reject — with this engine's
     * spec and warp configuration. The pow2 core routes through
     * EngineOptions::planCache when one is configured (sharing interned
     * layouts and cached ladder plans with ordinary conversions);
     * malformed requests fail with DiagCode::InvalidInput, and nothing
     * here answers InvalidInput merely for being non-pow2.
     */
    Result<cute::CutePlan> planCuteConversion(const cute::CuteLayout &src,
                                              const cute::CuteLayout &dst,
                                              int elemBytes) const;

  private:
    /** Anchor assignment + forward propagation. `anchorOverrides` maps
     *  anchor value ids (Load/Constant results) to synthesized layouts;
     *  anchors absent from the map (and every transfer fallback) keep
     *  the default — nullptr reproduces today's behavior exactly. */
    void assignForward(ir::Function &f, EngineStats &stats,
                       const std::map<int, LinearLayout> *anchorOverrides
                       = nullptr);
    void cleanup(ir::Function &f, EngineStats &stats);

    /** Run the synth search, reprice its finalists (and the default)
     *  with trial assignForward + cleanup + estimateKernelCost, and
     *  return the winning anchor overrides — empty when the default
     *  wins or anything in the search throws. Fills the synth* stats
     *  fields. */
    std::map<int, LinearLayout> synthesizeAssignment(const ir::Function &f,
                                                     EngineStats &stats);

    /** Lower every surviving ConvertLayout to a ConversionPlan and tag
     *  it "convert:<kind>". A plan that cannot be built downgrades the
     *  op to "convert:unplanned" and is recorded in the stats; this
     *  pass never throws. */
    void planConversions(ir::Function &f, EngineStats &stats);

    /** Convert operand `slot` of op `opIdx` to `want` unless it is
     *  already there (modulo broadcast). */
    void ensureOperand(ir::Function &f, int opIdx, size_t slot,
                       const LinearLayout &want, EngineStats &stats);

    EngineOptions options_;
};

} // namespace engine
} // namespace ll

#endif // LL_ENGINE_LAYOUT_ENGINE_H
