/**
 * @file
 * Triton's layout engine rebuilt on linear layouts (Section 4.4).
 *
 * The engine assigns *anchor* layouts — default blocked layouts at
 * global loads/stores and MMA / MMA-input layouts at dots — then
 * propagates layouts forward through the remaining ops using the
 * Section 4.4 transfer functions, inserting ConvertLayout ops where an
 * operand arrives in the wrong layout. A cleanup pass then removes
 * conversions that linear layouts can prove to be no-ops (including
 * across layout *kinds*, which the legacy system could not compare) and
 * hoists conversions through shape ops when that turns them into no-ops
 * (rematerialization).
 */

#ifndef LL_ENGINE_LAYOUT_ENGINE_H
#define LL_ENGINE_LAYOUT_ENGINE_H

#include "ir/function.h"
#include "sim/gpu_spec.h"

namespace ll {
namespace engine {

struct EngineOptions
{
    sim::GpuSpec spec = sim::GpuSpec::gh200();
    int numWarps = 4;
};

struct EngineStats
{
    int convertsInserted = 0;
    int convertsEliminated = 0;
};

class LayoutEngine
{
  public:
    explicit LayoutEngine(EngineOptions options)
        : options_(std::move(options))
    {
    }

    /** Annotate every value with a layout; insert and clean up
     *  conversions. Returns what happened. */
    EngineStats run(ir::Function &f);

    /** The blocked anchor layout the engine assigns at loads/stores. */
    LinearLayout anchorForMemory(const ir::TensorType &type) const;

    /** The MMA/MFMA output layout chosen for a dot of this shape. */
    LinearLayout dotResultLayout(const ir::TensorType &accType,
                                 int operandBits) const;

    /** The MMA-input layout for operand opIdx of such a dot. */
    LinearLayout dotOperandLayout(const ir::TensorType &operandType,
                                  const ir::TensorType &accType,
                                  int opIdx, int operandBits) const;

  private:
    void assignForward(ir::Function &f, EngineStats &stats);
    void cleanup(ir::Function &f, EngineStats &stats);

    /** Convert operand `slot` of op `opIdx` to `want` unless it is
     *  already there (modulo broadcast). */
    void ensureOperand(ir::Function &f, int opIdx, size_t slot,
                       const LinearLayout &want, EngineStats &stats);

    EngineOptions options_;
};

} // namespace engine
} // namespace ll

#endif // LL_ENGINE_LAYOUT_ENGINE_H
