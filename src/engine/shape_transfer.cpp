#include "engine/shape_transfer.h"

#include "support/metrics.h"
#include "support/trace.h"

#include "layout/dims.h"
#include "triton/encodings.h"

namespace ll {
namespace engine {

LinearLayout
canonicalizeMinorToMajor(const LinearLayout &layout, int rank)
{
    std::vector<std::string> order;
    for (int d = rank - 1; d >= 0; --d)
        order.push_back(dims::out(d));
    return layout.transposeOuts(order);
}

LinearLayout
transTransfer(const LinearLayout &in, const std::vector<int32_t> &order)
{
    trace::Span span("transfer.trans", "engine");
    static auto &calls = metrics::counter("transfer.trans");
    calls.inc();
    const int rank = static_cast<int>(order.size());
    // Two-phase rename to avoid collisions: dim{order[j]} -> tmp{j},
    // then tmp{j} -> dim{j}.
    LinearLayout out = in;
    for (int j = 0; j < rank; ++j)
        out = out.renameOutDim(dims::out(order[j]),
                               "tmp" + std::to_string(j));
    for (int j = 0; j < rank; ++j)
        out = out.renameOutDim("tmp" + std::to_string(j), dims::out(j));
    return canonicalizeMinorToMajor(out, rank);
}

LinearLayout
reshapeTransfer(const LinearLayout &in, const ir::Shape &newShape)
{
    trace::Span span("transfer.reshape", "engine");
    static auto &calls = metrics::counter("transfer.reshape");
    calls.inc();
    const int rank = static_cast<int>(newShape.size());
    LinearLayout flat = in.flattenOutsToDim("lin");
    std::vector<LinearLayout::DimSize> outDims;
    for (int d = rank - 1; d >= 0; --d)
        outDims.emplace_back(dims::out(d),
                             newShape[static_cast<size_t>(d)]);
    return flat.reshapeOuts(outDims);
}

LinearLayout
expandDimsTransfer(const LinearLayout &in, int axis)
{
    trace::Span span("transfer.expand-dims", "engine");
    static auto &calls = metrics::counter("transfer.expand-dims");
    calls.inc();
    const int rank = in.getNumOutDims();
    LinearLayout out = in;
    for (int k = rank - 1; k >= axis; --k)
        out = out.renameOutDim(dims::out(k), dims::out(k + 1));
    out = out * LinearLayout::identity1D(1, dims::kReg, dims::out(axis));
    return canonicalizeMinorToMajor(out, rank + 1);
}

LinearLayout
broadcastTransfer(const LinearLayout &in, const ir::Shape &newShape)
{
    trace::Span span("transfer.broadcast", "engine");
    static auto &calls = metrics::counter("transfer.broadcast");
    calls.inc();
    const int rank = static_cast<int>(newShape.size());
    LinearLayout out = in;
    for (int d = 0; d < rank; ++d) {
        int32_t cur = out.getOutDimSize(dims::out(d));
        int32_t want = newShape[static_cast<size_t>(d)];
        if (cur < want) {
            out = out * LinearLayout::identity1D(want / cur, dims::kReg,
                                                 dims::out(d));
        }
    }
    return canonicalizeMinorToMajor(out, rank);
}

LinearLayout
joinTransfer(const LinearLayout &in)
{
    trace::Span span("transfer.join", "engine");
    static auto &calls = metrics::counter("transfer.join");
    calls.inc();
    const int rank = in.getNumOutDims();
    LinearLayout out =
        LinearLayout::identity1D(2, dims::kReg, dims::out(rank)) * in;
    return canonicalizeMinorToMajor(out, rank + 1);
}

LinearLayout
splitTransfer(const LinearLayout &in)
{
    trace::Span span("transfer.split", "engine");
    static auto &calls = metrics::counter("transfer.split");
    calls.inc();
    const int rank = in.getNumOutDims();
    LinearLayout sliced = triton::sliceLayout(in, rank - 1);
    sliced = sliced.removeZeroBasesAlongDim(dims::kReg);
    return canonicalizeMinorToMajor(sliced, rank - 1);
}

LinearLayout
reduceTransfer(const LinearLayout &in, int axis)
{
    trace::Span span("transfer.reduce", "engine");
    static auto &calls = metrics::counter("transfer.reduce");
    calls.inc();
    const int rank = in.getNumOutDims();
    LinearLayout sliced = triton::sliceLayout(in, axis);
    return canonicalizeMinorToMajor(sliced, rank - 1);
}

LinearLayout
projectToUnitDims(const LinearLayout &layout, const ir::Shape &preShape)
{
    LinearLayout::BasesT newBases;
    auto outNames = layout.getOutDimNames();
    std::vector<bool> squash(outNames.size(), false);
    std::vector<LinearLayout::DimSize> newOuts;
    for (size_t j = 0; j < outNames.size(); ++j) {
        int d = std::stoi(outNames[j].substr(3));
        squash[j] = preShape[static_cast<size_t>(d)] == 1;
        newOuts.emplace_back(outNames[j],
                             squash[j]
                                 ? 1
                                 : layout.getOutDimSize(outNames[j]));
    }
    for (const auto &inDim : layout.getInDimNames()) {
        std::vector<std::vector<int32_t>> vecs;
        for (int32_t i = 0; i < layout.getInDimSizeLog2(inDim); ++i) {
            std::vector<int32_t> basis = layout.getBasis(inDim, i);
            for (size_t j = 0; j < basis.size(); ++j) {
                if (squash[j])
                    basis[j] = 0;
            }
            vecs.push_back(std::move(basis));
        }
        newBases.insert(inDim, std::move(vecs));
    }
    return LinearLayout(std::move(newBases), std::move(newOuts),
                        /*requireSurjective=*/false);
}

} // namespace engine
} // namespace ll
