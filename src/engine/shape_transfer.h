/**
 * @file
 * Layout transfer functions for Triton's shape operators (Section 4.4,
 * Theorem 9.3).
 *
 * For every shape operation and every input distributed layout there is
 * an output layout making the operation a data-movement no-op; these
 * functions compute it. IR values store their layouts with output dims
 * in row-major minor-to-major order: for a rank-r tensor the layout's
 * out dims are [dim(r-1), ..., dim0], the first being the fastest-moving
 * in memory.
 */

#ifndef LL_ENGINE_SHAPE_TRANSFER_H
#define LL_ENGINE_SHAPE_TRANSFER_H

#include "ir/types.h"
#include "layout/linear_layout.h"

namespace ll {
namespace engine {

/** Reorder a layout's out dims to canonical minor-to-major for rank r:
 *  [dim(r-1), ..., dim0]. */
LinearLayout canonicalizeMinorToMajor(const LinearLayout &layout, int rank);

/** Output layout of tt.trans for the given input layout. order[j] names
 *  the input dim that becomes output dim j. */
LinearLayout transTransfer(const LinearLayout &in,
                           const std::vector<int32_t> &order);

/** Output layout of a row-major tt.reshape. */
LinearLayout reshapeTransfer(const LinearLayout &in,
                             const ir::Shape &newShape);

/** Output layout of tt.expand_dims inserting a size-1 dim at axis. */
LinearLayout expandDimsTransfer(const LinearLayout &in, int axis);

/** Output layout of tt.broadcast: stretched dims are covered by new
 *  registers replicating the data (Section 5.1). */
LinearLayout broadcastTransfer(const LinearLayout &in,
                               const ir::Shape &newShape);

/** Output layout of tt.join: the new minor dim comes from one fresh
 *  register bit. */
LinearLayout joinTransfer(const LinearLayout &in);

/** Output layout of tt.split (both halves share it). */
LinearLayout splitTransfer(const LinearLayout &in);

/** Output layout of a reduction along `axis` (a sliced layout). */
LinearLayout reduceTransfer(const LinearLayout &in, int axis);

/**
 * Project a layout of a broadcast *result* back onto the pre-broadcast
 * value: dims that are 1 in `preShape` get zeroed basis coordinates and
 * size 1. If the projection is a no-op conversion from the input's
 * layout, the broadcast can produce the result layout directly and the
 * conversion above it folds away.
 */
LinearLayout projectToUnitDims(const LinearLayout &layout,
                               const ir::Shape &preShape);

} // namespace engine
} // namespace ll

#endif // LL_ENGINE_SHAPE_TRANSFER_H
