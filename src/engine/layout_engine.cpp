#include "engine/layout_engine.h"

#include <algorithm>

#include "codegen/shuffle.h"
#include "engine/shape_transfer.h"
#include "layout/dims.h"
#include "triton/encodings.h"

namespace ll {
namespace engine {

namespace {

using ir::OpKind;

/** Safe no-op test: layouts with different spaces simply are not. */
bool
isNoOpConversion(const LinearLayout &have, const LinearLayout &want)
{
    try {
        return codegen::conversionIsNoOp(
            have, want.transposeOuts(have.getOutDimNames()));
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

LinearLayout
LayoutEngine::anchorForMemory(const ir::TensorType &type) const
{
    int vec = std::max(1, 128 / bitWidth(type.dtype));
    auto enc = triton::BlockedEncoding::makeDefault(
        type.shape, options_.numWarps, options_.spec.warpSize, vec);
    return enc.toLinearLayout(type.shape);
}

LinearLayout
LayoutEngine::dotResultLayout(const ir::TensorType &accType,
                              int operandBits) const
{
    const auto &shape = accType.shape;
    if (options_.spec.warpSize == 64) {
        triton::MfmaEncoding enc;
        int32_t wM = std::min<int32_t>(options_.numWarps,
                                       std::max(shape[0] / 32, 1));
        enc.warpsPerCta = {wM, options_.numWarps / wM};
        return enc.toLinearLayout(shape);
    }
    triton::MmaEncoding enc;
    if (options_.spec.hasWgmma && shape[0] >= 64 && operandBits <= 16 &&
        options_.numWarps >= 4) {
        enc.version = 3;
        enc.instrN = std::min<int32_t>(shape[1], 256);
        int32_t groups = options_.numWarps / 4;
        int32_t gM = std::min<int32_t>(groups, std::max(shape[0] / 64, 1));
        enc.warpsPerCta = {4 * gM, groups / gM};
    } else {
        enc.version = 2;
        int32_t wM = std::min<int32_t>(options_.numWarps,
                                       std::max(shape[0] / 16, 1));
        enc.warpsPerCta = {wM, std::max(options_.numWarps / wM, 1)};
    }
    return enc.toLinearLayout(shape);
}

LinearLayout
LayoutEngine::dotOperandLayout(const ir::TensorType &operandType,
                               const ir::TensorType &accType, int opIdx,
                               int operandBits) const
{
    triton::DotOperandEncoding enc;
    if (options_.spec.warpSize == 64) {
        // Model the mfma operand path with the v2 tile over 32 lanes
        // plus lane broadcast; for cost purposes the conversion through
        // shared memory dominates either way. Use the v2 construction.
        enc.parent.version = 2;
    } else if (options_.spec.hasWgmma && accType.shape[0] >= 64 &&
               operandBits <= 16 && options_.numWarps >= 4) {
        enc.parent.version = 3;
    } else {
        enc.parent.version = 2;
    }
    // Match the warp distribution chosen for the result.
    if (enc.parent.version == 3) {
        int32_t groups = options_.numWarps / 4;
        int32_t gM = std::min<int32_t>(
            groups, std::max(accType.shape[0] / 64, 1));
        enc.parent.warpsPerCta = {4 * gM, groups / gM};
    } else {
        int32_t wM = std::min<int32_t>(
            options_.numWarps, std::max(accType.shape[0] / 16, 1));
        enc.parent.warpsPerCta = {wM,
                                  std::max(options_.numWarps / wM, 1)};
    }
    enc.opIdx = opIdx;
    enc.bitwidth = std::clamp(operandBits, 8, 32);
    return enc.toLinearLayout(operandType.shape);
}

void
LayoutEngine::ensureOperand(ir::Function &f, int opIdx, size_t slot,
                            const LinearLayout &want, EngineStats &stats)
{
    int v = f.op(opIdx).operands[slot];
    const auto &have = f.value(v).layout;
    llAssert(have.has_value(), "operand has no layout yet");
    if (isNoOpConversion(*have, want))
        return;
    int nv = f.convertLayout(v, want);
    f.op(opIdx).operands[slot] = nv;
    ++stats.convertsInserted;
}

void
LayoutEngine::assignForward(ir::Function &f, EngineStats &stats)
{
    const int numOps = f.numOps();
    for (int i = 0; i < numOps; ++i) {
        // Work on a copy: inserting ConvertLayout ops reallocates the
        // function's op and value storage, so references into it would
        // dangle across ensureOperand calls.
        ir::Op o = f.op(i);
        if (o.erased || o.kind == OpKind::ConvertLayout)
            continue;
        auto layoutOf = [&](size_t slot) -> LinearLayout {
            const auto &l = f.value(f.op(i).operands[slot]).layout;
            llAssert(l.has_value(), "missing operand layout");
            return *l;
        };
        switch (o.kind) {
          case OpKind::Load:
          case OpKind::Constant:
            f.value(o.results[0]).layout =
                anchorForMemory(f.value(o.results[0]).type);
            break;
          case OpKind::Store:
            break; // any layout can be stored
          case OpKind::Elementwise: {
            LinearLayout want = layoutOf(0);
            for (size_t s = 1; s < o.operands.size(); ++s)
                ensureOperand(f, i, s, want, stats);
            f.value(o.results[0]).layout = want;
            break;
          }
          case OpKind::Dot: {
            const auto ta = f.value(o.operands[0]).type;
            const auto tb = f.value(o.operands[1]).type;
            const auto tacc = f.value(o.results[0]).type;
            int bits = std::max(bitWidth(ta.dtype), bitWidth(tb.dtype));
            if (bits > 32) {
                // No tensor-core path: FMA dot on blocked layouts.
                f.op(i).tag = o.tag.empty() ? "fma" : o.tag + "/fma";
                f.value(o.results[0]).layout = anchorForMemory(tacc);
                break;
            }
            ensureOperand(f, i, 0,
                          dotOperandLayout(ta, tacc, 0, bits), stats);
            ensureOperand(f, i, 1,
                          dotOperandLayout(tb, tacc, 1, bits), stats);
            f.value(o.results[0]).layout = dotResultLayout(tacc, bits);
            break;
          }
          case OpKind::Reduce:
            f.value(o.results[0]).layout =
                reduceTransfer(layoutOf(0), o.axis);
            break;
          case OpKind::Trans:
            f.value(o.results[0]).layout =
                transTransfer(layoutOf(0), o.order);
            break;
          case OpKind::Reshape:
            f.value(o.results[0]).layout = reshapeTransfer(
                layoutOf(0), f.value(o.results[0]).type.shape);
            break;
          case OpKind::ExpandDims:
            f.value(o.results[0]).layout =
                expandDimsTransfer(layoutOf(0), o.axis);
            break;
          case OpKind::Broadcast:
            f.value(o.results[0]).layout = broadcastTransfer(
                layoutOf(0), f.value(o.results[0]).type.shape);
            break;
          case OpKind::Join: {
            LinearLayout want = layoutOf(0);
            ensureOperand(f, i, 1, want, stats);
            f.value(o.results[0]).layout = joinTransfer(want);
            break;
          }
          case OpKind::Split: {
            LinearLayout split = splitTransfer(layoutOf(0));
            f.value(o.results[0]).layout = split;
            f.value(o.results[1]).layout = split;
            break;
          }
          case OpKind::Gather: {
            LinearLayout want = layoutOf(0);
            ensureOperand(f, i, 1, want, stats);
            f.value(o.results[0]).layout = want;
            break;
          }
          case OpKind::Scan:
            // Scans are layout-preserving; the lowering (shuffles or
            // shared memory) is a cost-model concern.
            f.value(o.results[0]).layout = layoutOf(0);
            break;
          case OpKind::ConvertLayout:
            break;
        }
    }
}

void
LayoutEngine::cleanup(ir::Function &f, EngineStats &stats)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (int i = 0; i < f.numOps(); ++i) {
            ir::Op &o = f.op(i);
            if (o.erased || o.kind != OpKind::ConvertLayout)
                continue;
            int srcV = o.operands[0];
            int dstV = o.results[0];

            // Collapse chains: convert(convert(x)) -> convert(x).
            const ir::Value &src = f.value(srcV);
            if (src.defOp >= 0 &&
                f.op(src.defOp).kind == OpKind::ConvertLayout &&
                !f.op(src.defOp).erased) {
                o.operands[0] = f.op(src.defOp).operands[0];
                changed = true;
                continue;
            }

            // Hoist through broadcast: if the wanted layout projected
            // onto the pre-broadcast (size-1) dims is already the
            // input's layout, the broadcast can produce the wanted
            // layout directly — a classic rematerialization the legacy
            // system could not prove safe. Only when this convert is
            // the sole consumer of the broadcast.
            if (src.defOp >= 0 &&
                f.op(src.defOp).kind == OpKind::Broadcast &&
                !f.op(src.defOp).erased) {
                int uses = 0;
                for (int j = 0; j < f.numOps(); ++j) {
                    if (f.op(j).erased)
                        continue;
                    for (int use : f.op(j).operands)
                        uses += use == srcV;
                }
                const ir::Op &bop = f.op(src.defOp);
                int x = bop.operands[0];
                const auto &xLayout = f.value(x).layout;
                const auto &wantBL = f.value(dstV).layout;
                if (uses == 1 && xLayout && wantBL &&
                    f.value(srcV).layout != wantBL) {
                    LinearLayout proj = projectToUnitDims(
                        *wantBL, f.value(x).type.shape);
                    if (isNoOpConversion(*xLayout, proj)) {
                        f.value(srcV).layout = *wantBL;
                        changed = true;
                        continue; // no-op rule fires on a later sweep
                    }
                }
            }

            // No-op conversions: rewire every use and tombstone.
            const auto &haveL = f.value(o.operands[0]).layout;
            const auto &wantL = f.value(dstV).layout;
            if (haveL && wantL && isNoOpConversion(*haveL, *wantL)) {
                for (int j = 0; j < f.numOps(); ++j) {
                    if (j == i || f.op(j).erased)
                        continue;
                    for (int &use : f.op(j).operands) {
                        if (use == dstV)
                            use = o.operands[0];
                    }
                }
                o.erased = true;
                ++stats.convertsEliminated;
                changed = true;
            }
        }

        // Dead converts (results never used).
        for (int i = 0; i < f.numOps(); ++i) {
            ir::Op &o = f.op(i);
            if (o.erased || o.kind != OpKind::ConvertLayout)
                continue;
            int dstV = o.results[0];
            bool used = false;
            for (int j = 0; j < f.numOps() && !used; ++j) {
                if (f.op(j).erased || j == i)
                    continue;
                for (int use : f.op(j).operands)
                    used = used || use == dstV;
            }
            if (!used) {
                o.erased = true;
                ++stats.convertsEliminated;
                changed = true;
            }
        }
    }
}

EngineStats
LayoutEngine::run(ir::Function &f)
{
    EngineStats stats;
    assignForward(f, stats);
    cleanup(f, stats);
    f.verify();
    return stats;
}

} // namespace engine
} // namespace ll
