#include "engine/layout_engine.h"

#include <algorithm>
#include <map>
#include <optional>

#include "codegen/conversion.h"
#include "codegen/shuffle.h"
#include "engine/shape_transfer.h"
#include "layout/dims.h"
#include "service/cute_service.h"
#include "service/plan_cache.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "triton/encodings.h"

namespace ll {
namespace engine {

namespace {

using ir::OpKind;

/** Safe no-op test: layouts with different spaces simply are not. */
bool
isNoOpConversion(const LinearLayout &have, const LinearLayout &want)
{
    try {
        return codegen::conversionIsNoOp(
            have, want.transposeOuts(have.getOutDimNames()));
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

LinearLayout
LayoutEngine::anchorForMemory(const ir::TensorType &type) const
{
    llUserCheck(!type.shape.empty(),
                "memory anchor needs a ranked tensor type");
    for (auto d : type.shape)
        llUserCheck(d >= 1, "tensor dims must be positive, got " +
                                std::to_string(d));
    llUserCheck(bitWidth(type.dtype) >= 1,
                "element type has no width");
    int vec = std::max(1, 128 / bitWidth(type.dtype));
    auto enc = triton::BlockedEncoding::makeDefault(
        type.shape, options_.numWarps, options_.spec.warpSize, vec);
    return enc.toLinearLayout(type.shape);
}

LinearLayout
LayoutEngine::dotResultLayout(const ir::TensorType &accType,
                              int operandBits) const
{
    llUserCheck(accType.shape.size() == 2,
                "dot accumulator must be rank-2, got rank " +
                    std::to_string(accType.shape.size()));
    llUserCheck(operandBits >= 1 && operandBits <= 64,
                "dot operand width must be 1..64 bits, got " +
                    std::to_string(operandBits));
    const auto &shape = accType.shape;
    if (options_.spec.warpSize == 64) {
        triton::MfmaEncoding enc;
        int32_t wM = std::min<int32_t>(options_.numWarps,
                                       std::max(shape[0] / 32, 1));
        enc.warpsPerCta = {wM, options_.numWarps / wM};
        return enc.toLinearLayout(shape);
    }
    triton::MmaEncoding enc;
    if (options_.spec.hasWgmma && shape[0] >= 64 && operandBits <= 16 &&
        options_.numWarps >= 4) {
        enc.version = 3;
        enc.instrN = std::min<int32_t>(shape[1], 256);
        int32_t groups = options_.numWarps / 4;
        int32_t gM = std::min<int32_t>(groups, std::max(shape[0] / 64, 1));
        enc.warpsPerCta = {4 * gM, groups / gM};
    } else {
        enc.version = 2;
        int32_t wM = std::min<int32_t>(options_.numWarps,
                                       std::max(shape[0] / 16, 1));
        enc.warpsPerCta = {wM, std::max(options_.numWarps / wM, 1)};
    }
    return enc.toLinearLayout(shape);
}

LinearLayout
LayoutEngine::dotOperandLayout(const ir::TensorType &operandType,
                               const ir::TensorType &accType, int opIdx,
                               int operandBits) const
{
    llUserCheck(opIdx == 0 || opIdx == 1,
                "dot operand index must be 0 or 1, got " +
                    std::to_string(opIdx));
    llUserCheck(operandType.shape.size() == 2 &&
                    accType.shape.size() == 2,
                "dot operands and accumulator must be rank-2");
    llUserCheck(operandType.shape[opIdx == 0 ? 0 : 1] ==
                    accType.shape[opIdx == 0 ? 0 : 1],
                "dot operand shape does not match the accumulator: "
                "operand " +
                    std::to_string(opIdx) + " is " +
                    std::to_string(operandType.shape[0]) + "x" +
                    std::to_string(operandType.shape[1]) +
                    " against a " + std::to_string(accType.shape[0]) +
                    "x" + std::to_string(accType.shape[1]) +
                    " accumulator");
    triton::DotOperandEncoding enc;
    if (options_.spec.warpSize == 64) {
        // Model the mfma operand path with the v2 tile over 32 lanes
        // plus lane broadcast; for cost purposes the conversion through
        // shared memory dominates either way. Use the v2 construction.
        enc.parent.version = 2;
    } else if (options_.spec.hasWgmma && accType.shape[0] >= 64 &&
               operandBits <= 16 && options_.numWarps >= 4) {
        enc.parent.version = 3;
    } else {
        enc.parent.version = 2;
    }
    // Match the warp distribution chosen for the result.
    if (enc.parent.version == 3) {
        int32_t groups = options_.numWarps / 4;
        int32_t gM = std::min<int32_t>(
            groups, std::max(accType.shape[0] / 64, 1));
        enc.parent.warpsPerCta = {4 * gM, groups / gM};
    } else {
        int32_t wM = std::min<int32_t>(
            options_.numWarps, std::max(accType.shape[0] / 16, 1));
        enc.parent.warpsPerCta = {wM,
                                  std::max(options_.numWarps / wM, 1)};
    }
    enc.opIdx = opIdx;
    enc.bitwidth = std::clamp(operandBits, 8, 32);
    return enc.toLinearLayout(operandType.shape);
}

Result<cute::CutePlan>
LayoutEngine::planCuteConversion(const cute::CuteLayout &src,
                                 const cute::CuteLayout &dst,
                                 int elemBytes) const
{
    cute::CuteConversionRequest req;
    req.src = src;
    req.dst = dst;
    req.elemBytes = elemBytes;
    req.numWarps = options_.numWarps;
    if (options_.planCache == nullptr)
        return cute::tryPlanCuteConversion(req, options_.spec);
    auto outcome = service::serveCuteConversion(options_.planCache, req,
                                                options_.spec);
    if (outcome.planned())
        return std::move(*outcome.plan);
    return makeDiag(outcome.execFailed ? DiagCode::ExecutionFailed
                                       : DiagCode::InvalidInput,
                    "engine.cute", outcome.error);
}

void
LayoutEngine::ensureOperand(ir::Function &f, int opIdx, size_t slot,
                            const LinearLayout &want, EngineStats &stats)
{
    int v = f.op(opIdx).operands[slot];
    const auto &have = f.value(v).layout;
    llAssert(have.has_value(), "operand has no layout yet");
    if (isNoOpConversion(*have, want))
        return;
    int nv = f.convertLayout(v, want);
    f.op(opIdx).operands[slot] = nv;
    ++stats.convertsInserted;
}

void
LayoutEngine::assignForward(ir::Function &f, EngineStats &stats)
{
    trace::Span phase("engine.assign", "engine");
    const int numOps = f.numOps();
    for (int i = 0; i < numOps; ++i) {
        // Work on a copy: inserting ConvertLayout ops reallocates the
        // function's op and value storage, so references into it would
        // dangle across ensureOperand calls.
        ir::Op o = f.op(i);
        if (o.erased || o.kind == OpKind::ConvertLayout)
            continue;
        auto layoutOf = [&](size_t slot) -> LinearLayout {
            const auto &l = f.value(f.op(i).operands[slot]).layout;
            llAssert(l.has_value(), "missing operand layout");
            return *l;
        };
        // Shape-transfer functions are not allowed to sink the engine:
        // if one throws (or the "engine.transfer" failpoint fires), the
        // result value falls back to its anchor layout and downstream
        // conversions absorb the difference.
        auto setTransfer = [&](int value, auto &&fn) {
            if (!LL_FAILPOINT("engine.transfer")) {
                try {
                    f.value(value).layout = fn();
                    return;
                } catch (const std::exception &e) {
                    stats.planDiagnostics.push_back(
                        "op " + std::to_string(i) +
                        ": shape transfer failed, using the anchor "
                        "layout: " +
                        e.what());
                }
            } else {
                stats.planDiagnostics.push_back(
                    "op " + std::to_string(i) +
                    ": failpoint engine.transfer forced the anchor "
                    "layout");
            }
            ++stats.transferFallbacks;
            f.value(value).layout = anchorForMemory(f.value(value).type);
        };
        switch (o.kind) {
          case OpKind::Load:
          case OpKind::Constant:
            f.value(o.results[0]).layout =
                anchorForMemory(f.value(o.results[0]).type);
            break;
          case OpKind::Store:
            break; // any layout can be stored
          case OpKind::Elementwise: {
            LinearLayout want = layoutOf(0);
            for (size_t s = 1; s < o.operands.size(); ++s)
                ensureOperand(f, i, s, want, stats);
            f.value(o.results[0]).layout = want;
            break;
          }
          case OpKind::Dot: {
            const auto ta = f.value(o.operands[0]).type;
            const auto tb = f.value(o.operands[1]).type;
            const auto tacc = f.value(o.results[0]).type;
            int bits = std::max(bitWidth(ta.dtype), bitWidth(tb.dtype));
            if (bits > 32) {
                // No tensor-core path: FMA dot on blocked layouts.
                f.op(i).tag = o.tag.empty() ? "fma" : o.tag + "/fma";
                f.value(o.results[0]).layout = anchorForMemory(tacc);
                break;
            }
            ensureOperand(f, i, 0,
                          dotOperandLayout(ta, tacc, 0, bits), stats);
            ensureOperand(f, i, 1,
                          dotOperandLayout(tb, tacc, 1, bits), stats);
            f.value(o.results[0]).layout = dotResultLayout(tacc, bits);
            break;
          }
          case OpKind::Reduce:
            setTransfer(o.results[0],
                        [&] { return reduceTransfer(layoutOf(0), o.axis); });
            break;
          case OpKind::Trans:
            setTransfer(o.results[0],
                        [&] { return transTransfer(layoutOf(0), o.order); });
            break;
          case OpKind::Reshape:
            setTransfer(o.results[0], [&] {
                return reshapeTransfer(layoutOf(0),
                                       f.value(o.results[0]).type.shape);
            });
            break;
          case OpKind::ExpandDims:
            setTransfer(o.results[0], [&] {
                return expandDimsTransfer(layoutOf(0), o.axis);
            });
            break;
          case OpKind::Broadcast:
            setTransfer(o.results[0], [&] {
                return broadcastTransfer(
                    layoutOf(0), f.value(o.results[0]).type.shape);
            });
            break;
          case OpKind::Join: {
            LinearLayout want = layoutOf(0);
            ensureOperand(f, i, 1, want, stats);
            setTransfer(o.results[0], [&] { return joinTransfer(want); });
            break;
          }
          case OpKind::Split: {
            setTransfer(o.results[0],
                        [&] { return splitTransfer(layoutOf(0)); });
            f.value(o.results[1]).layout = f.value(o.results[0]).layout;
            break;
          }
          case OpKind::Gather: {
            LinearLayout want = layoutOf(0);
            ensureOperand(f, i, 1, want, stats);
            f.value(o.results[0]).layout = want;
            break;
          }
          case OpKind::Scan:
            // Scans are layout-preserving; the lowering (shuffles or
            // shared memory) is a cost-model concern.
            f.value(o.results[0]).layout = layoutOf(0);
            break;
          case OpKind::ConvertLayout:
            break;
        }
    }
}

void
LayoutEngine::cleanup(ir::Function &f, EngineStats &stats)
{
    trace::Span phase("engine.cleanup", "engine");
    bool changed = true;
    while (changed) {
        changed = false;
        for (int i = 0; i < f.numOps(); ++i) {
            ir::Op &o = f.op(i);
            if (o.erased || o.kind != OpKind::ConvertLayout)
                continue;
            int srcV = o.operands[0];
            int dstV = o.results[0];

            // Collapse chains: convert(convert(x)) -> convert(x).
            const ir::Value &src = f.value(srcV);
            if (src.defOp >= 0 &&
                f.op(src.defOp).kind == OpKind::ConvertLayout &&
                !f.op(src.defOp).erased) {
                o.operands[0] = f.op(src.defOp).operands[0];
                changed = true;
                continue;
            }

            // Hoist through broadcast: if the wanted layout projected
            // onto the pre-broadcast (size-1) dims is already the
            // input's layout, the broadcast can produce the wanted
            // layout directly — a classic rematerialization the legacy
            // system could not prove safe. Only when this convert is
            // the sole consumer of the broadcast.
            if (src.defOp >= 0 &&
                f.op(src.defOp).kind == OpKind::Broadcast &&
                !f.op(src.defOp).erased) {
                int uses = 0;
                for (int j = 0; j < f.numOps(); ++j) {
                    if (f.op(j).erased)
                        continue;
                    for (int use : f.op(j).operands)
                        uses += use == srcV;
                }
                const ir::Op &bop = f.op(src.defOp);
                int x = bop.operands[0];
                const auto &xLayout = f.value(x).layout;
                const auto &wantBL = f.value(dstV).layout;
                if (uses == 1 && xLayout && wantBL &&
                    f.value(srcV).layout != wantBL) {
                    LinearLayout proj = projectToUnitDims(
                        *wantBL, f.value(x).type.shape);
                    if (isNoOpConversion(*xLayout, proj)) {
                        f.value(srcV).layout = *wantBL;
                        changed = true;
                        continue; // no-op rule fires on a later sweep
                    }
                }
            }

            // No-op conversions: rewire every use and tombstone.
            const auto &haveL = f.value(o.operands[0]).layout;
            const auto &wantL = f.value(dstV).layout;
            if (haveL && wantL && isNoOpConversion(*haveL, *wantL)) {
                for (int j = 0; j < f.numOps(); ++j) {
                    if (j == i || f.op(j).erased)
                        continue;
                    for (int &use : f.op(j).operands) {
                        if (use == dstV)
                            use = o.operands[0];
                    }
                }
                o.erased = true;
                ++stats.convertsEliminated;
                changed = true;
            }
        }

        // Dead converts (results never used).
        for (int i = 0; i < f.numOps(); ++i) {
            ir::Op &o = f.op(i);
            if (o.erased || o.kind != OpKind::ConvertLayout)
                continue;
            int dstV = o.results[0];
            bool used = false;
            for (int j = 0; j < f.numOps() && !used; ++j) {
                if (f.op(j).erased || j == i)
                    continue;
                for (int use : f.op(j).operands)
                    used = used || use == dstV;
            }
            if (!used) {
                o.erased = true;
                ++stats.convertsEliminated;
                changed = true;
            }
        }
    }
}

void
LayoutEngine::planConversions(ir::Function &f, EngineStats &stats)
{
    trace::Span phase("engine.plan-conversions", "engine");
    // Successful smoke verdicts from earlier ops in this run, keyed by
    // (src, dst, elemBytes, kind). Failures are never cached: the
    // demotion loop needs fresh diagnostics and each failpoint
    // activation's limited shots must be consumed by real executions.
    std::map<std::string, bool> smokeOk;
    for (int i = 0; i < f.numOps(); ++i) {
        ir::Op &o = f.op(i);
        if (o.erased || o.kind != OpKind::ConvertLayout)
            continue;
        trace::Span opSpan("convert.op", "engine");
        opSpan.arg("op", i);
        const auto &have = f.value(o.operands[0]).layout;
        const auto &want = f.value(o.results[0]).layout;
        if (!have || !want) {
            o.tag = "convert:unplanned";
            ++stats.planFailures;
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) +
                ": conversion endpoint is missing a layout");
            opSpan.arg("outcome", "unplanned");
            continue;
        }
        const auto &type = f.value(o.results[0]).type;
        int elemBytes = std::max(1, bitWidth(type.dtype) / 8);
        LinearLayout dst = want->transposeOuts(have->getOutDimNames());

        // Shared plan cache: a hit serves the whole op — memoized plan
        // or memoized rejection — without planning or smoke-executing,
        // so the per-run smoke cache below is never consulted and the
        // two caches cannot double count.
        std::optional<service::PlanKey> cacheKey;
        if (options_.planCache != nullptr) {
            cacheKey = options_.planCache->key(*have, dst, elemBytes,
                                               options_.spec);
            if (auto cached = options_.planCache->lookup(*cacheKey)) {
                if (cached->negative()) {
                    o.tag = "convert:unplanned";
                    ++stats.planFailures;
                    ++stats.planCacheNegativeHits;
                    stats.planDiagnostics.push_back(
                        "op " + std::to_string(i) + " (plan-cache): " +
                        cached->rejection->toString());
                    opSpan.arg("outcome", "unplanned");
                    opSpan.arg("plan_cache", "negative-hit");
                } else {
                    const codegen::ConversionPlan &hit = *cached->plan;
                    o.tag = "convert:" + codegen::toString(hit.kind);
                    ++stats.convertsPlanned;
                    ++stats.planCacheHits;
                    if (!hit.diagnostics.empty()) {
                        ++stats.planFallbacks;
                        stats.planDiagnostics.push_back(
                            "op " + std::to_string(i) + " (" + o.tag +
                            "): " + hit.diagnostics.toString());
                    }
                    if (opSpan.active()) {
                        opSpan.arg("outcome", o.tag);
                        opSpan.arg("plan_cache", "hit");
                    }
                }
                continue;
            }
            ++stats.planCacheMisses;
        }

        auto tryPlan = [&]() -> Result<codegen::ConversionPlan> {
            try {
                return codegen::tryPlanConversion(*have, dst, elemBytes,
                                                  options_.spec);
            } catch (const std::exception &e) {
                return makeDiag(DiagCode::PlannerInternalError,
                                "engine.plan",
                                std::string("planner threw: ") +
                                    e.what());
            }
        };
        auto plan = tryPlan();
        if (!plan.ok()) {
            // Deterministic rejections are worth memoizing; the cache
            // itself refuses every other code and anything planned
            // while a failpoint is active.
            if (cacheKey &&
                plan.diag().code == DiagCode::InvalidInput)
                options_.planCache->insertRejection(*cacheKey,
                                                    plan.diag());
            o.tag = "convert:unplanned";
            ++stats.planFailures;
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) + ": " +
                plan.diag().toString());
            opSpan.arg("outcome", "unplanned");
            continue;
        }

        // Execution-triggered demotion: smoke-execute the plan; when an
        // executor reports an ExecDiagnostic, resume planning at the
        // rung strictly below the failing plan's (tryReplanBelow — the
        // rungs above are not re-evaluated). The resume point moves
        // strictly toward the terminal scalar rung, so this loop
        // terminates.
        bool execDead = false;
        int demotions = 0;
        while (true) {
            trace::Span iter("convert.demotion-iter", "engine");
            if (iter.active())
                iter.arg("kind", codegen::toString(plan->kind));
            std::string smokeKey;
            if (options_.cacheSmokeResults) {
                smokeKey = have->toString() + "|" + dst.toString() +
                           "|" + std::to_string(elemBytes) + "|" +
                           codegen::toString(plan->kind);
                if (smokeOk.count(smokeKey)) {
                    ++stats.smokeCacheHits;
                    static auto &hits =
                        metrics::counter("engine.smoke.cache_hits");
                    hits.inc();
                    iter.arg("outcome", "cache-hit");
                    break;
                }
            }
            auto fail = codegen::smokeExecutePlan(
                *plan, *have, dst, elemBytes, options_.spec);
            if (!fail.has_value()) {
                if (options_.cacheSmokeResults)
                    smokeOk.emplace(std::move(smokeKey), true);
                iter.arg("outcome", "smoke-ok");
                break;
            }
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) + " (convert:" +
                codegen::toString(plan->kind) +
                "): execution failed: " + fail->toString());
            if (plan->kind == codegen::ConversionKind::SharedScalar) {
                // Terminal rung failed while executing: nothing below
                // it to demote to.
                execDead = true;
                iter.arg("outcome", "terminal-failure");
                break;
            }
            auto replanned =
                [&]() -> Result<codegen::ConversionPlan> {
                try {
                    return codegen::tryReplanBelow(plan->kind, *have,
                                                   dst, elemBytes,
                                                   options_.spec);
                } catch (const std::exception &e) {
                    return makeDiag(DiagCode::PlannerInternalError,
                                    "engine.replan",
                                    std::string("planner threw: ") +
                                        e.what());
                }
            }();
            if (!replanned.ok()) {
                stats.planDiagnostics.push_back(
                    "op " + std::to_string(i) +
                    ": demoted re-plan failed: " +
                    replanned.diag().toString());
                execDead = true;
                iter.arg("outcome", "replan-failure");
                break;
            }
            ++stats.execFallbacks;
            ++demotions;
            static auto &demoted =
                metrics::counter("engine.exec_fallbacks");
            demoted.inc();
            plan = std::move(replanned);
            if (iter.active()) {
                iter.arg("outcome", "demoted");
                iter.arg("to_kind", codegen::toString(plan->kind));
            }
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) + ": demoted to convert:" +
                codegen::toString(plan->kind) +
                " after execution failure");
        }
        if (execDead) {
            o.tag = "convert:unplanned";
            ++stats.execFailures;
            opSpan.arg("outcome", "exec-failure");
            continue;
        }

        // Only undemoted plans are offered to the shared cache: a plan
        // that survived demotion encodes this run's execution failures,
        // not the pure planning function of the key. The cache applies
        // its own failpoint policy on top.
        if (cacheKey && demotions == 0)
            options_.planCache->insert(*cacheKey, *plan);

        o.tag = "convert:" + codegen::toString(plan->kind);
        ++stats.convertsPlanned;
        if (opSpan.active()) {
            opSpan.arg("outcome", o.tag);
            opSpan.arg("demotions", demotions);
        }
        if (!plan->diagnostics.empty()) {
            ++stats.planFallbacks;
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) + " (" + o.tag +
                "): " + plan->diagnostics.toString());
        }
    }
}

EngineStats
LayoutEngine::run(ir::Function &f)
{
    trace::Span span("engine.run", "engine");
    if (span.active())
        span.arg("function", f.name());
    const auto before = metrics::Registry::instance().counterSnapshot();

    EngineStats stats;
    assignForward(f, stats);
    cleanup(f, stats);
    planConversions(f, stats);
    f.verify();

    // Mirror the struct counters into the registry (the struct fields
    // stay the primary API; the registry feeds llstat / bench JSON).
    auto mirror = [](const char *name, int value) {
        if (value != 0)
            metrics::counter(name).add(value);
    };
    mirror("engine.converts_inserted", stats.convertsInserted);
    mirror("engine.converts_eliminated", stats.convertsEliminated);
    mirror("engine.converts_planned", stats.convertsPlanned);
    mirror("engine.plan_fallbacks", stats.planFallbacks);
    mirror("engine.plan_failures", stats.planFailures);
    mirror("engine.transfer_fallbacks", stats.transferFallbacks);
    mirror("engine.exec_failures", stats.execFailures);
    mirror("engine.plan_cache_hits", stats.planCacheHits);
    mirror("engine.plan_cache_negative_hits",
           stats.planCacheNegativeHits);
    mirror("engine.plan_cache_misses", stats.planCacheMisses);
    static auto &runsC = metrics::counter("engine.runs");
    runsC.inc();
    // engine.exec_fallbacks and engine.smoke.cache_hits are counted at
    // their sites in planConversions.

    // The per-run metric delta: every registry counter that moved while
    // this run was underway.
    const auto after = metrics::Registry::instance().counterSnapshot();
    for (const auto &[name, value] : after) {
        auto it = before.find(name);
        const int64_t delta =
            value - (it == before.end() ? 0 : it->second);
        if (delta != 0)
            stats.metrics[name] = delta;
    }
    if (span.active()) {
        span.arg("converts_planned", stats.convertsPlanned);
        span.arg("converts_eliminated", stats.convertsEliminated);
        span.arg("exec_fallbacks", stats.execFallbacks);
    }
    return stats;
}

} // namespace engine
} // namespace ll
