#include "engine/layout_engine.h"

#include <algorithm>
#include <map>
#include <optional>

#include "codegen/conversion.h"
#include "codegen/shuffle.h"
#include "engine/cost_model.h"
#include "engine/shape_transfer.h"
#include "layout/dims.h"
#include "service/cute_service.h"
#include "service/plan_cache.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"
#include "triton/encodings.h"

namespace ll {
namespace engine {

namespace {

using ir::OpKind;

/** Safe no-op test: layouts with different spaces simply are not. */
bool
isNoOpConversion(const LinearLayout &have, const LinearLayout &want)
{
    try {
        return codegen::conversionIsNoOp(
            have, want.transposeOuts(have.getOutDimNames()));
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

// The anchor and MMA layout constructors live in synth/candidates.cpp
// now — they double as candidate index 0 of the synthesis search, and
// delegating keeps "the engine's default" and "the search's default"
// one piece of code (synth_test pins the equality).

LinearLayout
LayoutEngine::anchorForMemory(const ir::TensorType &type) const
{
    return synth::defaultMemoryAnchor(type, options_.spec,
                                      options_.numWarps);
}

LinearLayout
LayoutEngine::dotResultLayout(const ir::TensorType &accType,
                              int operandBits) const
{
    return synth::dotResultLayout(accType, operandBits, options_.spec,
                                  options_.numWarps);
}

LinearLayout
LayoutEngine::dotOperandLayout(const ir::TensorType &operandType,
                               const ir::TensorType &accType, int opIdx,
                               int operandBits) const
{
    return synth::dotOperandLayout(operandType, accType, opIdx,
                                   operandBits, options_.spec,
                                   options_.numWarps);
}

Result<cute::CutePlan>
LayoutEngine::planCuteConversion(const cute::CuteLayout &src,
                                 const cute::CuteLayout &dst,
                                 int elemBytes) const
{
    cute::CuteConversionRequest req;
    req.src = src;
    req.dst = dst;
    req.elemBytes = elemBytes;
    req.numWarps = options_.numWarps;
    if (options_.planCache == nullptr)
        return cute::tryPlanCuteConversion(req, options_.spec);
    auto outcome = service::serveCuteConversion(options_.planCache, req,
                                                options_.spec);
    if (outcome.planned())
        return std::move(*outcome.plan);
    return makeDiag(outcome.execFailed ? DiagCode::ExecutionFailed
                                       : DiagCode::InvalidInput,
                    "engine.cute", outcome.error);
}

void
LayoutEngine::ensureOperand(ir::Function &f, int opIdx, size_t slot,
                            const LinearLayout &want, EngineStats &stats)
{
    int v = f.op(opIdx).operands[slot];
    const auto &have = f.value(v).layout;
    llAssert(have.has_value(), "operand has no layout yet");
    if (isNoOpConversion(*have, want))
        return;
    int nv = f.convertLayout(v, want);
    f.op(opIdx).operands[slot] = nv;
    ++stats.convertsInserted;
}

void
LayoutEngine::assignForward(ir::Function &f, EngineStats &stats,
                            const std::map<int, LinearLayout>
                                *anchorOverrides)
{
    trace::Span phase("engine.assign", "engine");
    const int numOps = f.numOps();
    for (int i = 0; i < numOps; ++i) {
        // Work on a copy: inserting ConvertLayout ops reallocates the
        // function's op and value storage, so references into it would
        // dangle across ensureOperand calls.
        ir::Op o = f.op(i);
        if (o.erased || o.kind == OpKind::ConvertLayout)
            continue;
        auto layoutOf = [&](size_t slot) -> LinearLayout {
            const auto &l = f.value(f.op(i).operands[slot]).layout;
            llAssert(l.has_value(), "missing operand layout");
            return *l;
        };
        // Shape-transfer functions are not allowed to sink the engine:
        // if one throws (or the "engine.transfer" failpoint fires), the
        // result value falls back to its anchor layout and downstream
        // conversions absorb the difference.
        auto setTransfer = [&](int value, auto &&fn) {
            if (!LL_FAILPOINT("engine.transfer")) {
                try {
                    f.value(value).layout = fn();
                    return;
                } catch (const std::exception &e) {
                    stats.planDiagnostics.push_back(
                        "op " + std::to_string(i) +
                        ": shape transfer failed, using the anchor "
                        "layout: " +
                        e.what());
                }
            } else {
                stats.planDiagnostics.push_back(
                    "op " + std::to_string(i) +
                    ": failpoint engine.transfer forced the anchor "
                    "layout");
            }
            ++stats.transferFallbacks;
            f.value(value).layout = anchorForMemory(f.value(value).type);
        };
        switch (o.kind) {
          case OpKind::Load:
          case OpKind::Constant: {
            const int rv = o.results[0];
            if (anchorOverrides != nullptr) {
                auto it = anchorOverrides->find(rv);
                if (it != anchorOverrides->end()) {
                    f.value(rv).layout = it->second;
                    break;
                }
            }
            f.value(rv).layout = anchorForMemory(f.value(rv).type);
            break;
          }
          case OpKind::Store:
            break; // any layout can be stored
          case OpKind::Elementwise: {
            LinearLayout want = layoutOf(0);
            for (size_t s = 1; s < o.operands.size(); ++s)
                ensureOperand(f, i, s, want, stats);
            f.value(o.results[0]).layout = want;
            break;
          }
          case OpKind::Dot: {
            const auto ta = f.value(o.operands[0]).type;
            const auto tb = f.value(o.operands[1]).type;
            const auto tacc = f.value(o.results[0]).type;
            int bits = std::max(bitWidth(ta.dtype), bitWidth(tb.dtype));
            if (bits > 32) {
                // No tensor-core path: FMA dot on blocked layouts.
                f.op(i).tag = o.tag.empty() ? "fma" : o.tag + "/fma";
                f.value(o.results[0]).layout = anchorForMemory(tacc);
                break;
            }
            ensureOperand(f, i, 0,
                          dotOperandLayout(ta, tacc, 0, bits), stats);
            ensureOperand(f, i, 1,
                          dotOperandLayout(tb, tacc, 1, bits), stats);
            f.value(o.results[0]).layout = dotResultLayout(tacc, bits);
            break;
          }
          case OpKind::Reduce:
            setTransfer(o.results[0],
                        [&] { return reduceTransfer(layoutOf(0), o.axis); });
            break;
          case OpKind::Trans:
            setTransfer(o.results[0],
                        [&] { return transTransfer(layoutOf(0), o.order); });
            break;
          case OpKind::Reshape:
            setTransfer(o.results[0], [&] {
                return reshapeTransfer(layoutOf(0),
                                       f.value(o.results[0]).type.shape);
            });
            break;
          case OpKind::ExpandDims:
            setTransfer(o.results[0], [&] {
                return expandDimsTransfer(layoutOf(0), o.axis);
            });
            break;
          case OpKind::Broadcast:
            setTransfer(o.results[0], [&] {
                return broadcastTransfer(
                    layoutOf(0), f.value(o.results[0]).type.shape);
            });
            break;
          case OpKind::Join: {
            LinearLayout want = layoutOf(0);
            ensureOperand(f, i, 1, want, stats);
            setTransfer(o.results[0], [&] { return joinTransfer(want); });
            break;
          }
          case OpKind::Split: {
            setTransfer(o.results[0],
                        [&] { return splitTransfer(layoutOf(0)); });
            f.value(o.results[1]).layout = f.value(o.results[0]).layout;
            break;
          }
          case OpKind::Gather: {
            LinearLayout want = layoutOf(0);
            ensureOperand(f, i, 1, want, stats);
            f.value(o.results[0]).layout = want;
            break;
          }
          case OpKind::Scan:
            // Scans are layout-preserving; the lowering (shuffles or
            // shared memory) is a cost-model concern.
            f.value(o.results[0]).layout = layoutOf(0);
            break;
          case OpKind::ConvertLayout:
            break;
        }
    }
}

void
LayoutEngine::cleanup(ir::Function &f, EngineStats &stats)
{
    trace::Span phase("engine.cleanup", "engine");
    bool changed = true;
    while (changed) {
        changed = false;
        for (int i = 0; i < f.numOps(); ++i) {
            ir::Op &o = f.op(i);
            if (o.erased || o.kind != OpKind::ConvertLayout)
                continue;
            int srcV = o.operands[0];
            int dstV = o.results[0];

            // Collapse chains: convert(convert(x)) -> convert(x).
            const ir::Value &src = f.value(srcV);
            if (src.defOp >= 0 &&
                f.op(src.defOp).kind == OpKind::ConvertLayout &&
                !f.op(src.defOp).erased) {
                o.operands[0] = f.op(src.defOp).operands[0];
                changed = true;
                continue;
            }

            // Hoist through broadcast: if the wanted layout projected
            // onto the pre-broadcast (size-1) dims is already the
            // input's layout, the broadcast can produce the wanted
            // layout directly — a classic rematerialization the legacy
            // system could not prove safe. Only when this convert is
            // the sole consumer of the broadcast.
            if (src.defOp >= 0 &&
                f.op(src.defOp).kind == OpKind::Broadcast &&
                !f.op(src.defOp).erased) {
                int uses = 0;
                for (int j = 0; j < f.numOps(); ++j) {
                    if (f.op(j).erased)
                        continue;
                    for (int use : f.op(j).operands)
                        uses += use == srcV;
                }
                const ir::Op &bop = f.op(src.defOp);
                int x = bop.operands[0];
                const auto &xLayout = f.value(x).layout;
                const auto &wantBL = f.value(dstV).layout;
                if (uses == 1 && xLayout && wantBL &&
                    f.value(srcV).layout != wantBL) {
                    LinearLayout proj = projectToUnitDims(
                        *wantBL, f.value(x).type.shape);
                    if (isNoOpConversion(*xLayout, proj)) {
                        f.value(srcV).layout = *wantBL;
                        changed = true;
                        continue; // no-op rule fires on a later sweep
                    }
                }
            }

            // No-op conversions: rewire every use and tombstone.
            const auto &haveL = f.value(o.operands[0]).layout;
            const auto &wantL = f.value(dstV).layout;
            if (haveL && wantL && isNoOpConversion(*haveL, *wantL)) {
                for (int j = 0; j < f.numOps(); ++j) {
                    if (j == i || f.op(j).erased)
                        continue;
                    for (int &use : f.op(j).operands) {
                        if (use == dstV)
                            use = o.operands[0];
                    }
                }
                o.erased = true;
                ++stats.convertsEliminated;
                changed = true;
            }
        }

        // Dead converts (results never used).
        for (int i = 0; i < f.numOps(); ++i) {
            ir::Op &o = f.op(i);
            if (o.erased || o.kind != OpKind::ConvertLayout)
                continue;
            int dstV = o.results[0];
            bool used = false;
            for (int j = 0; j < f.numOps() && !used; ++j) {
                if (f.op(j).erased || j == i)
                    continue;
                for (int use : f.op(j).operands)
                    used = used || use == dstV;
            }
            if (!used) {
                o.erased = true;
                ++stats.convertsEliminated;
                changed = true;
            }
        }
    }
}

void
LayoutEngine::planConversions(ir::Function &f, EngineStats &stats)
{
    trace::Span phase("engine.plan-conversions", "engine");
    // Successful smoke verdicts from earlier ops in this run, keyed by
    // (src, dst, elemBytes, kind). Failures are never cached: the
    // demotion loop needs fresh diagnostics and each failpoint
    // activation's limited shots must be consumed by real executions.
    std::map<std::string, bool> smokeOk;
    for (int i = 0; i < f.numOps(); ++i) {
        ir::Op &o = f.op(i);
        if (o.erased || o.kind != OpKind::ConvertLayout)
            continue;
        trace::Span opSpan("convert.op", "engine");
        opSpan.arg("op", i);
        const auto &have = f.value(o.operands[0]).layout;
        const auto &want = f.value(o.results[0]).layout;
        if (!have || !want) {
            o.tag = "convert:unplanned";
            ++stats.planFailures;
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) +
                ": conversion endpoint is missing a layout");
            opSpan.arg("outcome", "unplanned");
            continue;
        }
        const auto &type = f.value(o.results[0]).type;
        int elemBytes = std::max(1, bitWidth(type.dtype) / 8);
        LinearLayout dst = want->transposeOuts(have->getOutDimNames());

        // Shared plan cache: a hit serves the whole op — memoized plan
        // or memoized rejection — without planning or smoke-executing,
        // so the per-run smoke cache below is never consulted and the
        // two caches cannot double count.
        std::optional<service::PlanKey> cacheKey;
        if (options_.planCache != nullptr) {
            cacheKey = options_.planCache->key(*have, dst, elemBytes,
                                               options_.spec);
            if (auto cached = options_.planCache->lookup(*cacheKey)) {
                if (cached->negative()) {
                    o.tag = "convert:unplanned";
                    ++stats.planFailures;
                    ++stats.planCacheNegativeHits;
                    stats.planDiagnostics.push_back(
                        "op " + std::to_string(i) + " (plan-cache): " +
                        cached->rejection->toString());
                    opSpan.arg("outcome", "unplanned");
                    opSpan.arg("plan_cache", "negative-hit");
                } else {
                    const codegen::ConversionPlan &hit = *cached->plan;
                    o.tag = "convert:" + codegen::toString(hit.kind);
                    ++stats.convertsPlanned;
                    ++stats.planCacheHits;
                    if (!hit.diagnostics.empty()) {
                        ++stats.planFallbacks;
                        stats.planDiagnostics.push_back(
                            "op " + std::to_string(i) + " (" + o.tag +
                            "): " + hit.diagnostics.toString());
                    }
                    if (opSpan.active()) {
                        opSpan.arg("outcome", o.tag);
                        opSpan.arg("plan_cache", "hit");
                    }
                }
                continue;
            }
            ++stats.planCacheMisses;
        }

        auto tryPlan = [&]() -> Result<codegen::ConversionPlan> {
            try {
                return codegen::tryPlanConversion(*have, dst, elemBytes,
                                                  options_.spec);
            } catch (const std::exception &e) {
                return makeDiag(DiagCode::PlannerInternalError,
                                "engine.plan",
                                std::string("planner threw: ") +
                                    e.what());
            }
        };
        auto plan = tryPlan();
        if (!plan.ok()) {
            // Deterministic rejections are worth memoizing; the cache
            // itself refuses every other code and anything planned
            // while a failpoint is active.
            if (cacheKey &&
                plan.diag().code == DiagCode::InvalidInput)
                options_.planCache->insertRejection(*cacheKey,
                                                    plan.diag());
            o.tag = "convert:unplanned";
            ++stats.planFailures;
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) + ": " +
                plan.diag().toString());
            opSpan.arg("outcome", "unplanned");
            continue;
        }

        // Execution-triggered demotion: smoke-execute the plan; when an
        // executor reports an ExecDiagnostic, resume planning at the
        // rung strictly below the failing plan's (tryReplanBelow — the
        // rungs above are not re-evaluated). The resume point moves
        // strictly toward the terminal scalar rung, so this loop
        // terminates.
        bool execDead = false;
        int demotions = 0;
        while (true) {
            trace::Span iter("convert.demotion-iter", "engine");
            if (iter.active())
                iter.arg("kind", codegen::toString(plan->kind));
            std::string smokeKey;
            if (options_.cacheSmokeResults) {
                smokeKey = have->toString() + "|" + dst.toString() +
                           "|" + std::to_string(elemBytes) + "|" +
                           codegen::toString(plan->kind);
                if (smokeOk.count(smokeKey)) {
                    ++stats.smokeCacheHits;
                    static auto &hits =
                        metrics::counter("engine.smoke.cache_hits");
                    hits.inc();
                    iter.arg("outcome", "cache-hit");
                    break;
                }
            }
            auto fail = codegen::smokeExecutePlan(
                *plan, *have, dst, elemBytes, options_.spec);
            if (!fail.has_value()) {
                if (options_.cacheSmokeResults)
                    smokeOk.emplace(std::move(smokeKey), true);
                iter.arg("outcome", "smoke-ok");
                break;
            }
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) + " (convert:" +
                codegen::toString(plan->kind) +
                "): execution failed: " + fail->toString());
            if (plan->kind == codegen::ConversionKind::SharedScalar) {
                // Terminal rung failed while executing: nothing below
                // it to demote to.
                execDead = true;
                iter.arg("outcome", "terminal-failure");
                break;
            }
            auto replanned =
                [&]() -> Result<codegen::ConversionPlan> {
                try {
                    return codegen::tryReplanBelow(plan->kind, *have,
                                                   dst, elemBytes,
                                                   options_.spec);
                } catch (const std::exception &e) {
                    return makeDiag(DiagCode::PlannerInternalError,
                                    "engine.replan",
                                    std::string("planner threw: ") +
                                        e.what());
                }
            }();
            if (!replanned.ok()) {
                stats.planDiagnostics.push_back(
                    "op " + std::to_string(i) +
                    ": demoted re-plan failed: " +
                    replanned.diag().toString());
                execDead = true;
                iter.arg("outcome", "replan-failure");
                break;
            }
            ++stats.execFallbacks;
            ++demotions;
            static auto &demoted =
                metrics::counter("engine.exec_fallbacks");
            demoted.inc();
            plan = std::move(replanned);
            if (iter.active()) {
                iter.arg("outcome", "demoted");
                iter.arg("to_kind", codegen::toString(plan->kind));
            }
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) + ": demoted to convert:" +
                codegen::toString(plan->kind) +
                " after execution failure");
        }
        if (execDead) {
            o.tag = "convert:unplanned";
            ++stats.execFailures;
            opSpan.arg("outcome", "exec-failure");
            continue;
        }

        // Only undemoted plans are offered to the shared cache: a plan
        // that survived demotion encodes this run's execution failures,
        // not the pure planning function of the key. The cache applies
        // its own failpoint policy on top.
        if (cacheKey && demotions == 0)
            options_.planCache->insert(*cacheKey, *plan);

        o.tag = "convert:" + codegen::toString(plan->kind);
        ++stats.convertsPlanned;
        if (opSpan.active()) {
            opSpan.arg("outcome", o.tag);
            opSpan.arg("demotions", demotions);
        }
        if (!plan->diagnostics.empty()) {
            ++stats.planFallbacks;
            stats.planDiagnostics.push_back(
                "op " + std::to_string(i) + " (" + o.tag +
                "): " + plan->diagnostics.toString());
        }
    }
}

std::map<int, LinearLayout>
LayoutEngine::synthesizeAssignment(const ir::Function &f,
                                   EngineStats &stats)
{
    trace::Span span("synth.run", "synth");
    if (span.active())
        span.arg("function", f.name());
    synth::SynthOptions so = options_.synthOptions;
    so.planCache = options_.planCache;
    synth::SynthResult sr;
    try {
        sr = synth::synthesizeAnchors(f, options_.spec,
                                      options_.numWarps, so);
    } catch (const std::exception &e) {
        // Synthesis is an optimization, never a failure mode: anything
        // it cannot handle falls back to the default assignment.
        stats.planDiagnostics.push_back(
            std::string("synthesis failed, using the default "
                        "assignment: ") +
            e.what());
        metrics::counter("synth.search_failures").inc();
        return {};
    }
    if (sr.anchors.empty() || sr.ranked.empty())
        return {};

    auto overridesFor = [&](const synth::SynthAssignment &a) {
        std::map<int, LinearLayout> m;
        for (size_t i = 0; i < sr.anchors.size(); ++i) {
            if (a.choice[i] == 0)
                continue; // index 0 is the default anchor
            m.emplace(sr.anchors[i],
                      sr.candidates[i][static_cast<size_t>(a.choice[i])]
                          .layout);
        }
        return m;
    };

    // Reprice the finalists with the true pipeline: a trial
    // assignment + cleanup on a copy is exactly what the real run
    // produces (planConversions only tags ops), so the cost comparison
    // below is exact, not a guide estimate — the never-worse guarantee
    // rests on it.
    struct Eval
    {
        double cycles = 0.0;
        int surviving = 0;
    };
    auto evaluate = [&](const synth::SynthAssignment &a) -> Eval {
        trace::Span evalSpan("synth.evaluate", "synth");
        ir::Function copy = f;
        EngineStats trial;
        auto overrides = overridesFor(a);
        assignForward(copy, trial,
                      overrides.empty() ? nullptr : &overrides);
        cleanup(copy, trial);
        auto cost = estimateKernelCost(copy, options_.spec,
                                       options_.numWarps);
        if (evalSpan.active()) {
            evalSpan.arg("cycles", static_cast<int>(cost.cycles));
            evalSpan.arg("converts", cost.converts);
        }
        return {cost.cycles,
                trial.convertsInserted - trial.convertsEliminated};
    };

    Eval best;
    int bestRank = -1; // -1 = the default assignment
    Eval defaultEval;
    int evaluated = 0;
    try {
        defaultEval = evaluate(sr.ranked[static_cast<size_t>(
            sr.defaultRank)]);
        ++evaluated;
        best = defaultEval;
        for (size_t r = 0; r < sr.ranked.size(); ++r) {
            if (static_cast<int>(r) == sr.defaultRank)
                continue;
            Eval e = evaluate(sr.ranked[r]);
            ++evaluated;
            if (e.cycles < best.cycles) { // strict: ties keep the default
                best = e;
                bestRank = static_cast<int>(r);
            }
        }
    } catch (const std::exception &e) {
        stats.planDiagnostics.push_back(
            std::string("synthesis repricing failed, using the default "
                        "assignment: ") +
            e.what());
        metrics::counter("synth.search_failures").inc();
        return {};
    }
    stats.synthAssignmentsEvaluated = evaluated;
    stats.synthDefaultCycles = defaultEval.cycles;
    stats.synthChosenCycles =
        bestRank < 0 ? defaultEval.cycles : best.cycles;
    if (span.active()) {
        span.arg("evaluated", evaluated);
        span.arg("exhaustive", sr.exhaustive ? 1 : 0);
        span.arg("chose", bestRank < 0 ? "default" : "synthesized");
    }
    if (bestRank < 0)
        return {};
    stats.synthChoseSynthesized = 1;
    stats.synthConvertsEliminated =
        std::max(0, defaultEval.surviving - best.surviving);
    return overridesFor(sr.ranked[static_cast<size_t>(bestRank)]);
}

EngineStats
LayoutEngine::run(ir::Function &f)
{
    trace::Span span("engine.run", "engine");
    if (span.active())
        span.arg("function", f.name());
    const auto before = metrics::Registry::instance().counterSnapshot();

    EngineStats stats;
    std::map<int, LinearLayout> anchorOverrides;
    if (options_.synthesizeLayouts)
        anchorOverrides = synthesizeAssignment(f, stats);
    assignForward(f, stats,
                  anchorOverrides.empty() ? nullptr : &anchorOverrides);
    cleanup(f, stats);
    // Conversions the synthesized assignment avoided count as
    // eliminated too: the headline counter keeps meaning "conversions
    // the default path would have kept that this run does not", with
    // the synth share still visible via synth.converts_eliminated.
    stats.convertsEliminated += stats.synthConvertsEliminated;
    planConversions(f, stats);
    f.verify();

    // Mirror the struct counters into the registry (the struct fields
    // stay the primary API; the registry feeds llstat / bench JSON).
    auto mirror = [](const char *name, int value) {
        if (value != 0)
            metrics::counter(name).add(value);
    };
    mirror("engine.converts_inserted", stats.convertsInserted);
    mirror("engine.converts_eliminated", stats.convertsEliminated);
    mirror("engine.converts_planned", stats.convertsPlanned);
    mirror("engine.plan_fallbacks", stats.planFallbacks);
    mirror("engine.plan_failures", stats.planFailures);
    mirror("engine.transfer_fallbacks", stats.transferFallbacks);
    mirror("engine.exec_failures", stats.execFailures);
    mirror("engine.plan_cache_hits", stats.planCacheHits);
    mirror("engine.plan_cache_negative_hits",
           stats.planCacheNegativeHits);
    mirror("engine.plan_cache_misses", stats.planCacheMisses);
    mirror("synth.converts_eliminated", stats.synthConvertsEliminated);
    mirror("synth.assignments_evaluated",
           stats.synthAssignmentsEvaluated);
    mirror("synth.chose_synthesized", stats.synthChoseSynthesized);
    if (options_.synthesizeLayouts)
        metrics::counter("synth.runs").inc();
    static auto &runsC = metrics::counter("engine.runs");
    runsC.inc();
    // engine.exec_fallbacks and engine.smoke.cache_hits are counted at
    // their sites in planConversions.

    // The per-run metric delta: every registry counter that moved while
    // this run was underway.
    const auto after = metrics::Registry::instance().counterSnapshot();
    for (const auto &[name, value] : after) {
        auto it = before.find(name);
        const int64_t delta =
            value - (it == before.end() ? 0 : it->second);
        if (delta != 0)
            stats.metrics[name] = delta;
    }
    if (span.active()) {
        span.arg("converts_planned", stats.convertsPlanned);
        span.arg("converts_eliminated", stats.convertsEliminated);
        span.arg("exec_fallbacks", stats.execFallbacks);
    }
    return stats;
}

} // namespace engine
} // namespace ll
