/**
 * @file
 * Element types and tensor types for the mini tensor IR.
 *
 * This IR stands in for Triton's ttg dialect in the evaluation: kernels
 * are graphs of tensor ops whose values carry (power-of-two) shapes,
 * element types, and — once the layout engine has run — linear layouts.
 * The dtype list covers everything the paper's experiments touch,
 * including the 4-bit microscaling format used by the mixed-precision
 * benchmarks (Section 5.2, Figure 6).
 */

#ifndef LL_IR_TYPES_H
#define LL_IR_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace ll {
namespace ir {

enum class DType
{
    F8,    ///< 8-bit float (e4m3/e5m2 behave identically here)
    F16,
    BF16,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    I4,    ///< packed 4-bit integer (int4 GEMM weights)
    MXFP4, ///< 4-bit microscaling float (32 elements share a scale)
    E8M0,  ///< 8-bit shared exponent (the MXFP4 scale type)
};

int bitWidth(DType t);

/** Bytes per element, rounding sub-byte types up to one byte. */
int byteWidth(DType t);

bool isFloat(DType t);
bool isInteger(DType t);
std::string toString(DType t);

using Shape = std::vector<int32_t>;

struct TensorType
{
    DType dtype = DType::F32;
    Shape shape;

    int rank() const { return static_cast<int>(shape.size()); }

    int64_t
    numElements() const
    {
        int64_t n = 1;
        for (int32_t s : shape)
            n *= s;
        return n;
    }

    bool
    operator==(const TensorType &o) const
    {
        return dtype == o.dtype && shape == o.shape;
    }

    std::string toString() const;
};

} // namespace ir
} // namespace ll

#endif // LL_IR_TYPES_H
