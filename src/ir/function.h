/**
 * @file
 * A small SSA tensor IR mirroring the Triton ops the paper's layout
 * engine handles (Section 4.4): computation (elementwise, dot, reduce,
 * gather), memory (load/store), layout conversion, and the shape
 * operators trans / reshape / expand_dims / broadcast / join / split.
 *
 * A Function is a single straight-line block: ops execute in order and
 * every value is defined before use. The layout engine annotates each
 * value with a LinearLayout and inserts ConvertLayout ops where operand
 * layouts conflict; benchmarks then count and price those ops exactly
 * like the paper counts convert_layout / local_load / local_store in
 * Triton's GPU IR (Table 6).
 */

#ifndef LL_IR_FUNCTION_H
#define LL_IR_FUNCTION_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ir/types.h"
#include "layout/linear_layout.h"

namespace ll {
namespace ir {

enum class OpKind
{
    Load,          ///< global memory -> registers
    Store,         ///< registers -> global memory
    Constant,      ///< materialize a constant tensor
    Elementwise,   ///< any pointwise computation (may change dtype)
    Dot,           ///< matrix multiply-accumulate (tensor cores)
    Reduce,        ///< reduction along one axis
    Trans,         ///< dimension permutation
    Reshape,       ///< row-major reshape
    ExpandDims,    ///< insert a size-1 dim
    Broadcast,     ///< stretch size-1 dims
    Join,          ///< stack two tensors along a new minor dim
    Split,         ///< inverse of Join
    ConvertLayout, ///< move data between distributed layouts
    Gather,        ///< gather along one axis
    Scan,          ///< associative scan (cumsum/cumprod) along one axis
};

std::string toString(OpKind kind);

struct Value
{
    int id = -1;
    TensorType type;
    /** Assigned by the layout engine. */
    std::optional<LinearLayout> layout;
    int defOp = -1;
    std::string name;
};

struct Op
{
    OpKind kind;
    std::vector<int> operands; ///< value ids
    std::vector<int> results;  ///< value ids

    int axis = -1;              ///< Reduce/ExpandDims/Gather/Split
    std::vector<int32_t> order; ///< Trans permutation
    std::string tag;            ///< free-form label ("add", "exp", ...)
    bool erased = false;        ///< dead ops are tombstoned, not removed
};

class Function
{
  public:
    explicit Function(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    Value &value(int id);
    const Value &value(int id) const;
    Op &op(int idx);
    const Op &op(int idx) const;
    int numOps() const { return static_cast<int>(ops_.size()); }
    int numValues() const { return static_cast<int>(values_.size()); }

    /** Live (non-erased) ops of a given kind. */
    int countOps(OpKind kind) const;

    // --- builder -------------------------------------------------------

    int load(TensorType type, const std::string &tag = "");
    void store(int v, const std::string &tag = "");
    int constant(TensorType type, const std::string &tag = "");
    int elementwise(const std::vector<int> &ins, DType outDtype,
                    const std::string &tag);
    int dot(int a, int b, DType accDtype);
    int reduce(int v, int axis, const std::string &tag = "sum");
    int trans(int v, const std::vector<int32_t> &order);
    int reshape(int v, const Shape &newShape);
    int expandDims(int v, int axis);
    int broadcast(int v, const Shape &newShape);
    int join(int a, int b);
    std::pair<int, int> split(int v);
    int gather(int src, int idx, int axis);
    int scan(int v, int axis, const std::string &tag = "cumsum");

    /**
     * Create a ConvertLayout producing a copy of `v` in `layout`.
     * Returns the new value id; the caller rewires the consuming
     * operand. Used by the layout engine.
     */
    int convertLayout(int v, const LinearLayout &layout);

    /** Structural checks: value ids and shape agreement per op. */
    void verify() const;

    std::string print() const;

  private:
    int newValue(TensorType type, int defOp, const std::string &name);
    int addOp(Op op);
    const TensorType &typeOf(int v) const { return value(v).type; }

    std::string name_;
    std::vector<Value> values_;
    std::vector<Op> ops_;
};

} // namespace ir
} // namespace ll

#endif // LL_IR_FUNCTION_H
