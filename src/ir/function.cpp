#include "ir/function.h"

#include <algorithm>
#include <sstream>

#include "support/bits.h"
#include "support/string_utils.h"

namespace ll {
namespace ir {

std::string
toString(OpKind kind)
{
    switch (kind) {
      case OpKind::Load:
        return "load";
      case OpKind::Store:
        return "store";
      case OpKind::Constant:
        return "constant";
      case OpKind::Elementwise:
        return "elementwise";
      case OpKind::Dot:
        return "dot";
      case OpKind::Reduce:
        return "reduce";
      case OpKind::Trans:
        return "trans";
      case OpKind::Reshape:
        return "reshape";
      case OpKind::ExpandDims:
        return "expand_dims";
      case OpKind::Broadcast:
        return "broadcast";
      case OpKind::Join:
        return "join";
      case OpKind::Split:
        return "split";
      case OpKind::ConvertLayout:
        return "convert_layout";
      case OpKind::Gather:
        return "gather";
      case OpKind::Scan:
        return "scan";
    }
    llPanic("unknown op kind");
}

Value &
Function::value(int id)
{
    llAssert(id >= 0 && id < numValues(), "bad value id " << id);
    return values_[static_cast<size_t>(id)];
}

const Value &
Function::value(int id) const
{
    llAssert(id >= 0 && id < numValues(), "bad value id " << id);
    return values_[static_cast<size_t>(id)];
}

Op &
Function::op(int idx)
{
    llAssert(idx >= 0 && idx < numOps(), "bad op index " << idx);
    return ops_[static_cast<size_t>(idx)];
}

const Op &
Function::op(int idx) const
{
    llAssert(idx >= 0 && idx < numOps(), "bad op index " << idx);
    return ops_[static_cast<size_t>(idx)];
}

int
Function::countOps(OpKind kind) const
{
    int count = 0;
    for (const Op &o : ops_) {
        if (!o.erased && o.kind == kind)
            ++count;
    }
    return count;
}

int
Function::newValue(TensorType type, int defOp, const std::string &name)
{
    for (int32_t s : type.shape) {
        llUserCheck(isPowerOf2(static_cast<uint64_t>(s)),
                    "tensor dims must be powers of two, got "
                        << s
                        << " (non-pow2 shapes are well-formed but need "
                           "the cute admission path: "
                           "cute::tryPlanCuteConversion / "
                           "service::serveCuteConversion)");
    }
    Value v;
    v.id = numValues();
    v.type = std::move(type);
    v.defOp = defOp;
    v.name = name.empty() ? ("v" + std::to_string(v.id)) : name;
    values_.push_back(std::move(v));
    return values_.back().id;
}

int
Function::addOp(Op op)
{
    ops_.push_back(std::move(op));
    return numOps() - 1;
}

int
Function::load(TensorType type, const std::string &tag)
{
    Op o;
    o.kind = OpKind::Load;
    o.tag = tag;
    int idx = addOp(std::move(o));
    int v = newValue(std::move(type), idx, tag);
    ops_.back().results = {v};
    return v;
}

void
Function::store(int v, const std::string &tag)
{
    Op o;
    o.kind = OpKind::Store;
    o.operands = {v};
    o.tag = tag;
    addOp(std::move(o));
}

int
Function::constant(TensorType type, const std::string &tag)
{
    Op o;
    o.kind = OpKind::Constant;
    o.tag = tag;
    int idx = addOp(std::move(o));
    int v = newValue(std::move(type), idx, tag);
    ops_.back().results = {v};
    return v;
}

int
Function::elementwise(const std::vector<int> &ins, DType outDtype,
                      const std::string &tag)
{
    llUserCheck(!ins.empty(), "elementwise needs at least one operand");
    const Shape &shape = typeOf(ins[0]).shape;
    for (int v : ins) {
        llUserCheck(typeOf(v).shape == shape,
                    "elementwise operands must share a shape");
    }
    Op o;
    o.kind = OpKind::Elementwise;
    o.operands = ins;
    o.tag = tag;
    int idx = addOp(std::move(o));
    int v = newValue({outDtype, shape}, idx, tag);
    ops_.back().results = {v};
    return v;
}

int
Function::dot(int a, int b, DType accDtype)
{
    const TensorType &ta = typeOf(a);
    const TensorType &tb = typeOf(b);
    llUserCheck(ta.rank() == 2 && tb.rank() == 2, "dot operands are 2D");
    llUserCheck(ta.shape[1] == tb.shape[0],
                "dot: inner dims disagree: " << ta.toString() << " vs "
                                             << tb.toString());
    Op o;
    o.kind = OpKind::Dot;
    o.operands = {a, b};
    int idx = addOp(std::move(o));
    int v = newValue({accDtype, {ta.shape[0], tb.shape[1]}}, idx, "acc");
    ops_.back().results = {v};
    return v;
}

int
Function::reduce(int v, int axis, const std::string &tag)
{
    const TensorType &t = typeOf(v);
    llUserCheck(axis >= 0 && axis < t.rank(), "reduce axis out of range");
    Shape shape = t.shape;
    shape.erase(shape.begin() + axis);
    Op o;
    o.kind = OpKind::Reduce;
    o.operands = {v};
    o.axis = axis;
    o.tag = tag;
    int idx = addOp(std::move(o));
    int r = newValue({t.dtype, std::move(shape)}, idx, tag);
    ops_.back().results = {r};
    return r;
}

int
Function::trans(int v, const std::vector<int32_t> &order)
{
    const TensorType &t = typeOf(v);
    llUserCheck(static_cast<int>(order.size()) == t.rank(),
                "trans order rank mismatch");
    Shape shape;
    for (int32_t d : order)
        shape.push_back(t.shape[static_cast<size_t>(d)]);
    Op o;
    o.kind = OpKind::Trans;
    o.operands = {v};
    o.order = order;
    int idx = addOp(std::move(o));
    int r = newValue({t.dtype, std::move(shape)}, idx, "t");
    ops_.back().results = {r};
    return r;
}

int
Function::reshape(int v, const Shape &newShape)
{
    const TensorType &t = typeOf(v);
    int64_t n = 1;
    for (int32_t s : newShape)
        n *= s;
    llUserCheck(n == t.numElements(), "reshape changes element count");
    Op o;
    o.kind = OpKind::Reshape;
    o.operands = {v};
    int idx = addOp(std::move(o));
    int r = newValue({t.dtype, newShape}, idx, "r");
    ops_.back().results = {r};
    return r;
}

int
Function::expandDims(int v, int axis)
{
    const TensorType &t = typeOf(v);
    llUserCheck(axis >= 0 && axis <= t.rank(),
                "expand_dims axis out of range");
    Shape shape = t.shape;
    shape.insert(shape.begin() + axis, 1);
    Op o;
    o.kind = OpKind::ExpandDims;
    o.operands = {v};
    o.axis = axis;
    int idx = addOp(std::move(o));
    int r = newValue({t.dtype, std::move(shape)}, idx, "e");
    ops_.back().results = {r};
    return r;
}

int
Function::broadcast(int v, const Shape &newShape)
{
    const TensorType &t = typeOf(v);
    llUserCheck(static_cast<int>(newShape.size()) == t.rank(),
                "broadcast rank mismatch");
    for (int i = 0; i < t.rank(); ++i) {
        llUserCheck(t.shape[static_cast<size_t>(i)] ==
                            newShape[static_cast<size_t>(i)] ||
                        t.shape[static_cast<size_t>(i)] == 1,
                    "broadcast only stretches size-1 dims");
    }
    Op o;
    o.kind = OpKind::Broadcast;
    o.operands = {v};
    int idx = addOp(std::move(o));
    int r = newValue({t.dtype, newShape}, idx, "b");
    ops_.back().results = {r};
    return r;
}

int
Function::join(int a, int b)
{
    const TensorType &ta = typeOf(a);
    llUserCheck(ta == typeOf(b), "join operands must match");
    Shape shape = ta.shape;
    shape.push_back(2);
    Op o;
    o.kind = OpKind::Join;
    o.operands = {a, b};
    int idx = addOp(std::move(o));
    int r = newValue({ta.dtype, std::move(shape)}, idx, "j");
    ops_.back().results = {r};
    return r;
}

std::pair<int, int>
Function::split(int v)
{
    // Copy, not reference: the first newValue below may reallocate the
    // value table and invalidate anything typeOf returned.
    const TensorType t = typeOf(v);
    llUserCheck(t.rank() >= 1 && t.shape.back() == 2,
                "split expects a trailing dim of size 2");
    Shape shape = t.shape;
    shape.pop_back();
    Op o;
    o.kind = OpKind::Split;
    o.operands = {v};
    int idx = addOp(std::move(o));
    int r0 = newValue({t.dtype, shape}, idx, "s0");
    int r1 = newValue({t.dtype, shape}, idx, "s1");
    ops_.back().results = {r0, r1};
    return {r0, r1};
}

int
Function::gather(int src, int idx, int axis)
{
    const TensorType &ts = typeOf(src);
    const TensorType &ti = typeOf(idx);
    llUserCheck(ts.rank() == ti.rank(), "gather rank mismatch");
    llUserCheck(axis >= 0 && axis < ts.rank(),
                "gather axis out of range");
    Op o;
    o.kind = OpKind::Gather;
    o.operands = {src, idx};
    o.axis = axis;
    int opIdx = addOp(std::move(o));
    int r = newValue({ts.dtype, ti.shape}, opIdx, "g");
    ops_.back().results = {r};
    return r;
}

int
Function::scan(int v, int axis, const std::string &tag)
{
    const TensorType &t = typeOf(v);
    llUserCheck(axis >= 0 && axis < t.rank(), "scan axis out of range");
    Op o;
    o.kind = OpKind::Scan;
    o.operands = {v};
    o.axis = axis;
    o.tag = tag;
    int idx = addOp(std::move(o));
    int r = newValue({t.dtype, t.shape}, idx, tag);
    ops_.back().results = {r};
    return r;
}

int
Function::convertLayout(int v, const LinearLayout &layout)
{
    Op o;
    o.kind = OpKind::ConvertLayout;
    o.operands = {v};
    int idx = addOp(std::move(o));
    int r = newValue(typeOf(v), idx, "cvt");
    value(r).layout = layout;
    ops_.back().results = {r};
    return r;
}

void
Function::verify() const
{
    for (int i = 0; i < numOps(); ++i) {
        const Op &o = op(i);
        if (o.erased)
            continue;
        for (int v : o.operands)
            llAssert(v >= 0 && v < numValues(),
                     "op " << i << " uses invalid value " << v);
        for (int v : o.results) {
            llAssert(v >= 0 && v < numValues(),
                     "op " << i << " defines invalid value " << v);
            llAssert(value(v).defOp == i, "result def link broken");
        }
    }
}

std::string
Function::print() const
{
    std::ostringstream oss;
    oss << "func @" << name_ << " {\n";
    for (const Op &o : ops_) {
        if (o.erased)
            continue;
        oss << "  ";
        for (size_t i = 0; i < o.results.size(); ++i) {
            oss << "%" << value(o.results[i]).name;
            if (i + 1 < o.results.size())
                oss << ", ";
        }
        if (!o.results.empty())
            oss << " = ";
        oss << toString(o.kind);
        if (!o.tag.empty())
            oss << "<" << o.tag << ">";
        if (o.axis >= 0)
            oss << " axis=" << o.axis;
        if (!o.order.empty())
            oss << " order=" << ll::toString(o.order);
        for (size_t i = 0; i < o.operands.size(); ++i) {
            oss << (i == 0 ? " " : ", ") << "%"
                << value(o.operands[i]).name;
        }
        if (!o.results.empty())
            oss << " : " << value(o.results[0]).type.toString();
        oss << "\n";
    }
    oss << "}\n";
    return oss.str();
}

} // namespace ir
} // namespace ll
