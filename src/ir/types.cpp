#include "ir/types.h"

#include <sstream>

namespace ll {
namespace ir {

int
bitWidth(DType t)
{
    switch (t) {
      case DType::F8:
      case DType::I8:
      case DType::E8M0:
        return 8;
      case DType::F16:
      case DType::BF16:
      case DType::I16:
        return 16;
      case DType::F32:
      case DType::I32:
        return 32;
      case DType::F64:
      case DType::I64:
        return 64;
      case DType::I4:
      case DType::MXFP4:
        return 4;
    }
    llPanic("unknown dtype");
}

int
byteWidth(DType t)
{
    return (bitWidth(t) + 7) / 8;
}

bool
isFloat(DType t)
{
    switch (t) {
      case DType::F8:
      case DType::F16:
      case DType::BF16:
      case DType::F32:
      case DType::F64:
      case DType::MXFP4:
      case DType::E8M0:
        return true;
      default:
        return false;
    }
}

bool
isInteger(DType t)
{
    return !isFloat(t);
}

std::string
toString(DType t)
{
    switch (t) {
      case DType::F8:
        return "f8";
      case DType::F16:
        return "f16";
      case DType::BF16:
        return "bf16";
      case DType::F32:
        return "f32";
      case DType::F64:
        return "f64";
      case DType::I8:
        return "i8";
      case DType::I16:
        return "i16";
      case DType::I32:
        return "i32";
      case DType::I64:
        return "i64";
      case DType::I4:
        return "i4";
      case DType::MXFP4:
        return "mxfp4";
      case DType::E8M0:
        return "e8m0";
    }
    llPanic("unknown dtype");
}

std::string
TensorType::toString() const
{
    std::ostringstream oss;
    oss << "tensor<";
    for (size_t i = 0; i < shape.size(); ++i)
        oss << shape[i] << "x";
    oss << ir::toString(dtype) << ">";
    return oss.str();
}

} // namespace ir
} // namespace ll
