#include "f2/matrix.h"

#include <sstream>

#include "support/refmode.h"

namespace ll {
namespace f2 {

F2Matrix::F2Matrix(int rows, int cols)
    : rows_(rows), cols_(static_cast<size_t>(cols), 0)
{
    llAssert(rows >= 0 && rows <= 64, "row count must be in [0, 64]");
    llAssert(cols >= 0 && cols <= 64, "column count must be in [0, 64]");
}

F2Matrix::F2Matrix(int rows, std::vector<uint64_t> cols)
    : rows_(rows), cols_(std::move(cols))
{
    llAssert(rows >= 0 && rows <= 64, "row count must be in [0, 64]");
    llAssert(cols_.size() <= 64, "column count must be in [0, 64]");
    for (uint64_t c : cols_) {
        llAssert(rows_ == 64 || c < (uint64_t(1) << rows_),
                 "column value wider than row count");
    }
}

F2Matrix
F2Matrix::identity(int n)
{
    F2Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        m.cols_[i] = uint64_t(1) << i;
    return m;
}

F2Matrix
F2Matrix::zeros(int rows, int cols)
{
    return F2Matrix(rows, cols);
}

F2Matrix
F2Matrix::multiply(const F2Matrix &other) const
{
    llAssert(numCols() == other.numRows(),
             "shape mismatch in multiply: " << rows_ << "x" << numCols()
                 << " * " << other.numRows() << "x" << other.numCols());
    F2Matrix out(rows_, other.numCols());
    for (int j = 0; j < other.numCols(); ++j)
        out.cols_[j] = apply(other.cols_[j]);
    return out;
}

F2Matrix
F2Matrix::multiply_reference(const F2Matrix &other) const
{
    llAssert(numCols() == other.numRows(),
             "shape mismatch in multiply: " << rows_ << "x" << numCols()
                 << " * " << other.numRows() << "x" << other.numCols());
    F2Matrix out(rows_, other.numCols());
    for (int j = 0; j < other.numCols(); ++j)
        out.cols_[j] = apply_reference(other.cols_[j]);
    return out;
}

F2Matrix
F2Matrix::transpose() const
{
    if (refmode::active())
        return transpose_reference();
    uint64_t block[64] = {0};
    for (int j = 0; j < numCols(); ++j)
        block[j] = cols_[j];
    transpose64(block);
    F2Matrix out(numCols(), rows_);
    for (int i = 0; i < rows_; ++i)
        out.cols_[i] = block[i];
    return out;
}

F2Matrix
F2Matrix::transpose_reference() const
{
    F2Matrix out(numCols(), rows_);
    for (int j = 0; j < numCols(); ++j)
        for (int i = 0; i < rows_; ++i)
            if (get(i, j))
                out.set(j, i, true);
    return out;
}

F2Matrix::Echelon
F2Matrix::eliminate(std::vector<uint64_t> rows, int n) const
{
    // Reduced row-echelon form, pivoting only on the M part. Rows are
    // collected only after elimination completes, so every stored pivot
    // row is fully reduced against all pivots (not just earlier ones).
    std::vector<int> pivotColOfRow(static_cast<size_t>(rows_), -1);
    int pivotRow = 0;
    for (int col = 0; col < n && pivotRow < rows_; ++col) {
        int sel = -1;
        for (int i = pivotRow; i < rows_; ++i) {
            if (getBit(rows[i], col)) {
                sel = i;
                break;
            }
        }
        if (sel < 0)
            continue;
        std::swap(rows[pivotRow], rows[sel]);
        for (int i = 0; i < rows_; ++i) {
            if (i != pivotRow && getBit(rows[i], col))
                rows[i] ^= rows[pivotRow];
        }
        pivotColOfRow[pivotRow] = col;
        ++pivotRow;
    }
    Echelon ech;
    for (int i = 0; i < rows_; ++i) {
        ech.rows.push_back(rows[i]);
        ech.pivotCol.push_back(pivotColOfRow[i]);
    }
    return ech;
}

F2Matrix::Echelon
F2Matrix::echelonForm(const std::vector<uint64_t> &augCols) const
{
    if (refmode::active())
        return echelonFormReference(augCols);
    const int n = numCols();
    const int width = n + static_cast<int>(augCols.size());
    llAssert(width <= 64, "echelon width " << width << " exceeds 64 bits");

    // Build packed rows of [M | aug] with one butterfly transpose of
    // the column block: entry (i, j) of [M | aug] is bit i of packed
    // column j, so the transposed block's word i is exactly row i.
    uint64_t block[64] = {0};
    for (int j = 0; j < n; ++j)
        block[j] = cols_[j];
    for (size_t a = 0; a < augCols.size(); ++a)
        block[n + static_cast<int>(a)] = augCols[a];
    transpose64(block);
    std::vector<uint64_t> rows(block, block + rows_);
    return eliminate(std::move(rows), n);
}

F2Matrix::Echelon
F2Matrix::echelonFormReference(const std::vector<uint64_t> &augCols) const
{
    const int n = numCols();
    const int width = n + static_cast<int>(augCols.size());
    llAssert(width <= 64, "echelon width " << width << " exceeds 64 bits");

    // Build packed rows of [M | aug] bit by bit.
    std::vector<uint64_t> rows(static_cast<size_t>(rows_), 0);
    for (int i = 0; i < rows_; ++i) {
        uint64_t r = 0;
        for (int j = 0; j < n; ++j)
            r |= getBit(cols_[j], i) << j;
        for (size_t a = 0; a < augCols.size(); ++a)
            r |= getBit(augCols[a], i) << (n + a);
        rows[i] = r;
    }
    return eliminate(std::move(rows), n);
}

int
F2Matrix::rank() const
{
    Echelon ech = echelonForm({});
    int r = 0;
    for (int p : ech.pivotCol)
        if (p >= 0)
            ++r;
    return r;
}

int
F2Matrix::rank_reference() const
{
    Echelon ech = echelonFormReference({});
    int r = 0;
    for (int p : ech.pivotCol)
        if (p >= 0)
            ++r;
    return r;
}

bool
F2Matrix::isInvertible() const
{
    return rows_ == numCols() && rank() == rows_;
}

F2Matrix
F2Matrix::inverse() const
{
    llAssert(rows_ == numCols(), "inverse of non-square matrix");
    F2Matrix inv = rightInverse();
    // For a square surjective map the right inverse is the inverse.
    return inv;
}

std::optional<uint64_t>
F2Matrix::solve(uint64_t b) const
{
    llAssert(rows_ == 64 || b < (uint64_t(1) << rows_),
             "rhs wider than row count");
    Echelon ech = echelonForm({b});
    const int n = numCols();
    uint64_t x = 0;
    for (size_t r = 0; r < ech.rows.size(); ++r) {
        uint64_t augBit = getBit(ech.rows[r], n);
        if (ech.pivotCol[r] >= 0) {
            x = setBit(x, ech.pivotCol[r], augBit);
        } else if ((ech.rows[r] & ((n < 64) ? ((uint64_t(1) << n) - 1)
                                            : ~uint64_t(0))) == 0 &&
                   augBit) {
            return std::nullopt; // 0 = 1 row: inconsistent
        }
    }
    return x;
}

std::optional<uint64_t>
F2Matrix::solve_reference(uint64_t b) const
{
    llAssert(rows_ == 64 || b < (uint64_t(1) << rows_),
             "rhs wider than row count");
    Echelon ech = echelonFormReference({b});
    const int n = numCols();
    uint64_t x = 0;
    for (size_t r = 0; r < ech.rows.size(); ++r) {
        uint64_t augBit = getBit(ech.rows[r], n);
        if (ech.pivotCol[r] >= 0) {
            x = setBit(x, ech.pivotCol[r], augBit);
        } else if ((ech.rows[r] & ((n < 64) ? ((uint64_t(1) << n) - 1)
                                            : ~uint64_t(0))) == 0 &&
                   augBit) {
            return std::nullopt; // 0 = 1 row: inconsistent
        }
    }
    return x;
}

F2Matrix
F2Matrix::rightInverse() const
{
    const int n = numCols();
    llAssert(n + rows_ <= 64,
             "rightInverse requires cols + rows <= 64 bits");
    std::vector<uint64_t> aug;
    aug.reserve(static_cast<size_t>(rows_));
    for (int i = 0; i < rows_; ++i)
        aug.push_back(uint64_t(1) << i);
    return rightInverseFromEchelon(echelonForm(aug));
}

F2Matrix
F2Matrix::rightInverse_reference() const
{
    const int n = numCols();
    llAssert(n + rows_ <= 64,
             "rightInverse requires cols + rows <= 64 bits");
    std::vector<uint64_t> aug;
    aug.reserve(static_cast<size_t>(rows_));
    for (int i = 0; i < rows_; ++i)
        aug.push_back(uint64_t(1) << i);
    return rightInverseFromEchelon(echelonFormReference(aug));
}

F2Matrix
F2Matrix::rightInverseFromEchelon(const Echelon &ech) const
{
    const int n = numCols();
    F2Matrix out(n, rows_);
    for (size_t r = 0; r < ech.rows.size(); ++r) {
        if (ech.pivotCol[r] >= 0) {
            for (int i = 0; i < rows_; ++i) {
                if (getBit(ech.rows[r], n + i))
                    out.set(ech.pivotCol[r], i, true);
            }
        } else {
            uint64_t mPart = ech.rows[r] &
                ((n < 64) ? ((uint64_t(1) << n) - 1) : ~uint64_t(0));
            uint64_t augPart = ech.rows[r] >> n;
            llAssert(!(mPart == 0 && augPart != 0),
                     "rightInverse of a non-surjective map");
        }
    }
    return out;
}

std::vector<uint64_t>
F2Matrix::kernelBasis() const
{
    return kernelBasisFromEchelon(echelonForm({}));
}

std::vector<uint64_t>
F2Matrix::kernelBasis_reference() const
{
    return kernelBasisFromEchelon(echelonFormReference({}));
}

std::vector<uint64_t>
F2Matrix::kernelBasisFromEchelon(const Echelon &ech) const
{
    const int n = numCols();

    std::vector<int> pivotOfCol(static_cast<size_t>(n), -1);
    for (size_t r = 0; r < ech.rows.size(); ++r)
        if (ech.pivotCol[r] >= 0)
            pivotOfCol[ech.pivotCol[r]] = static_cast<int>(r);

    std::vector<uint64_t> basis;
    for (int f = 0; f < n; ++f) {
        if (pivotOfCol[f] >= 0)
            continue; // pivot column, not free
        uint64_t v = uint64_t(1) << f;
        for (int c = 0; c < n; ++c) {
            int r = pivotOfCol[c];
            if (r >= 0 && getBit(ech.rows[r], f))
                v = setBit(v, c, 1);
        }
        basis.push_back(v);
    }
    return basis;
}

F2Matrix
F2Matrix::stackRows(const F2Matrix &other) const
{
    llAssert(numCols() == other.numCols(),
             "stackRows: column count mismatch");
    llAssert(rows_ + other.rows_ <= 64, "stackRows: too many rows");
    F2Matrix out(rows_ + other.rows_, numCols());
    for (int j = 0; j < numCols(); ++j)
        out.cols_[j] = cols_[j] | (other.cols_[j] << rows_);
    return out;
}

F2Matrix
F2Matrix::concatCols(const F2Matrix &other) const
{
    llAssert(rows_ == other.rows_, "concatCols: row count mismatch");
    std::vector<uint64_t> cols = cols_;
    cols.insert(cols.end(), other.cols_.begin(), other.cols_.end());
    llAssert(cols.size() <= 64, "concatCols: too many columns");
    return F2Matrix(rows_, std::move(cols));
}

F2Matrix
F2Matrix::blockDiagonal(const F2Matrix &other) const
{
    llAssert(rows_ + other.rows_ <= 64, "blockDiagonal: too many rows");
    F2Matrix out(rows_ + other.rows_, numCols() + other.numCols());
    for (int j = 0; j < numCols(); ++j)
        out.cols_[j] = cols_[j];
    for (int j = 0; j < other.numCols(); ++j)
        out.cols_[numCols() + j] = other.cols_[j] << rows_;
    return out;
}

std::string
F2Matrix::toString() const
{
    std::ostringstream oss;
    for (int i = 0; i < rows_; ++i) {
        for (int j = 0; j < numCols(); ++j)
            oss << (get(i, j) ? '1' : '0') << (j + 1 < numCols() ? ' ' : '\n');
        if (numCols() == 0)
            oss << '\n';
    }
    return oss.str();
}

} // namespace f2
} // namespace ll
