/**
 * @file
 * Subspace computations over F2 on packed bit-vectors.
 *
 * The paper's warp-shuffle planner and optimal-swizzle algorithm (§5.4 and
 * appendix §9.2) are phrased entirely in terms of spans, basis
 * completions, complements, and intersections of subspaces of F2^d. This
 * module provides those primitives on bit-packed vectors.
 */

#ifndef LL_F2_SUBSPACE_H
#define LL_F2_SUBSPACE_H

#include <cstdint>
#include <vector>

namespace ll {
namespace f2 {

/**
 * An incrementally-built reduced echelon basis of a subspace of F2^d.
 *
 * Vectors are kept reduced against each other, so membership tests
 * ("is v in the span?") are a single reduction pass. This is the workhorse
 * behind span/complement/completion queries.
 *
 * The basis is stored as a pivot table indexed by leading bit: reduce is
 * "XOR out the pivot row while the leading bit has one", and insert is an
 * O(1) table write plus back-reduction of the pivots above it. Reduction
 * by leading bit is a forced procedure — every step is determined by the
 * current leading bit and the unique pivot row holding it — so the table
 * form produces bit-identical values and vectors() order (descending
 * pivot == descending value when leading bits are distinct) to the
 * sorted-vector EchelonBasisReference below, which the differential
 * suite checks exhaustively.
 */
class EchelonBasis
{
  public:
    EchelonBasis() = default;

    /** Build from an arbitrary (possibly dependent) generating set. */
    explicit EchelonBasis(const std::vector<uint64_t> &generators);

    /**
     * Try to add v to the basis. Returns true if v was independent of the
     * current span (and the basis grew), false if v was already in it.
     */
    bool insert(uint64_t v);

    /** True iff v lies in the span of the inserted vectors. */
    bool contains(uint64_t v) const;

    /** Reduce v modulo the span; returns 0 iff contains(v). */
    uint64_t reduce(uint64_t v) const;

    int dimension() const { return static_cast<int>(basis_.size()); }

    /** The reduced basis vectors, in decreasing leading-bit order. */
    const std::vector<uint64_t> &vectors() const { return basis_; }

  private:
    uint64_t table_[64] = {0}; // table_[p] = basis vector with leading bit p
    uint64_t pivotMask_ = 0;   // bit p set iff table_[p] is occupied
    std::vector<uint64_t> basis_; // table entries, descending pivot order
};

/**
 * The original sorted-vector echelon basis, kept verbatim as the
 * differential oracle for EchelonBasis.
 */
class EchelonBasisReference
{
  public:
    EchelonBasisReference() = default;

    explicit EchelonBasisReference(const std::vector<uint64_t> &generators);

    bool insert(uint64_t v);
    bool contains(uint64_t v) const;
    uint64_t reduce(uint64_t v) const;

    int dimension() const { return static_cast<int>(basis_.size()); }
    const std::vector<uint64_t> &vectors() const { return basis_; }

  private:
    // Reduced basis, sorted by decreasing leading (highest set) bit.
    std::vector<uint64_t> basis_;
};

/** An independent subset of `vectors` spanning the same subspace. */
std::vector<uint64_t> reduceToBasis(const std::vector<uint64_t> &vectors);

/** Dimension of the span of `vectors`. */
int rankOfVectors(const std::vector<uint64_t> &vectors);

/** True iff v is a linear combination of `basis`. */
bool spanContains(const std::vector<uint64_t> &basis, uint64_t v);

/**
 * Extend an independent set to a basis of F2^dim by adding standard unit
 * vectors. Returns only the added vectors (a basis of a complement of the
 * input span), in increasing bit order.
 */
std::vector<uint64_t> complementBasis(const std::vector<uint64_t> &basis,
                                      int dim);

/**
 * Extend `basis` to a full basis of F2^dim; the result is `basis` followed
 * by the complement vectors.
 */
std::vector<uint64_t> completeBasis(const std::vector<uint64_t> &basis,
                                    int dim);

/**
 * Basis of span(U) (intersection) span(V) via the Zassenhaus algorithm.
 * Requires dim <= 32 so paired vectors fit in 64 bits; layout coordinate
 * spaces are far smaller than that in practice.
 */
std::vector<uint64_t> intersectSpans(const std::vector<uint64_t> &u,
                                     const std::vector<uint64_t> &v,
                                     int dim);

/**
 * All 2^k elements of the span of a k-element basis, in Gray-code-free
 * index order: element i is the XOR of basis vectors selected by bits of
 * i. Intended for small k (asserts k <= 20).
 */
std::vector<uint64_t> enumerateSpan(const std::vector<uint64_t> &basis);

/**
 * Scalar references for the free functions above, preserved verbatim for
 * the differential suite. The fast functions dispatch to these when
 * refmode::active() (LL_F2_REFERENCE=1), so whole planning runs can be
 * replayed on the scalar paths and compared bit for bit.
 */
std::vector<uint64_t>
reduceToBasis_reference(const std::vector<uint64_t> &vectors);
int rankOfVectors_reference(const std::vector<uint64_t> &vectors);
bool spanContains_reference(const std::vector<uint64_t> &basis, uint64_t v);
std::vector<uint64_t>
complementBasis_reference(const std::vector<uint64_t> &basis, int dim);
std::vector<uint64_t>
completeBasis_reference(const std::vector<uint64_t> &basis, int dim);
std::vector<uint64_t> intersectSpans_reference(const std::vector<uint64_t> &u,
                                               const std::vector<uint64_t> &v,
                                               int dim);
std::vector<uint64_t>
enumerateSpan_reference(const std::vector<uint64_t> &basis);

} // namespace f2
} // namespace ll

#endif // LL_F2_SUBSPACE_H
