/**
 * @file
 * Dense linear algebra over the two-element field F2.
 *
 * An F2Matrix with m rows and n columns represents a linear map
 * F2^n -> F2^m. Columns are stored as bit-packed uint64 values (bit i of
 * column j is entry (i, j)), which makes matrix-vector application a
 * handful of XORs and keeps every algorithm allocation-free in the common
 * case. Layout spaces never exceed a few dozen bits, so the 64-row limit
 * is not a practical restriction; it is asserted, not silently truncated.
 *
 * This module is the computational core of the paper: composition,
 * inversion, right ("least squares") inversion, and kernel computation
 * over F2 are exactly the operations Section 4 of the paper uses to
 * define and convert tensor layouts.
 */

#ifndef LL_F2_MATRIX_H
#define LL_F2_MATRIX_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/bits.h"
#include "support/diagnostics.h"

namespace ll {
namespace f2 {

class F2Matrix
{
  public:
    /** Create an all-zero matrix of the given shape. */
    F2Matrix(int rows, int cols);

    /** Create a matrix from explicit columns (bit i of col j = (i,j)). */
    F2Matrix(int rows, std::vector<uint64_t> cols);

    /** The n x n identity. */
    static F2Matrix identity(int n);

    /** An all-zero rows x cols matrix. */
    static F2Matrix zeros(int rows, int cols);

    int numRows() const { return rows_; }
    int numCols() const { return static_cast<int>(cols_.size()); }

    /** Entry (i, j) as 0/1. */
    bool
    get(int i, int j) const
    {
        checkIndex(i, j);
        return getBit(cols_[j], i) != 0;
    }

    void
    set(int i, int j, bool v)
    {
        checkIndex(i, j);
        cols_[j] = setBit(cols_[j], i, v ? 1 : 0);
    }

    /** Column j as a packed bit-vector. */
    uint64_t
    getCol(int j) const
    {
        llAssert(j >= 0 && j < numCols(), "column out of range");
        return cols_[j];
    }

    void
    setCol(int j, uint64_t v)
    {
        llAssert(j >= 0 && j < numCols(), "column out of range");
        llAssert(rows_ == 64 || v < (uint64_t(1) << rows_),
                 "column value wider than row count");
        cols_[j] = v;
    }

    const std::vector<uint64_t> &columns() const { return cols_; }

    /**
     * Apply the matrix to a packed vector: the XOR of the columns
     * selected by the set bits of x. Word-parallel: each column is
     * folded in with a branchless mask-select (`col & -bit`), so the
     * loop is a straight run of ands and xors with no data-dependent
     * branches.
     */
    uint64_t
    apply(uint64_t x) const
    {
        uint64_t acc = 0;
        for (int j = 0; j < numCols(); ++j) {
            acc ^= cols_[j] & (uint64_t(0) - ((x >> j) & 1));
        }
        return acc;
    }

    /** The original scalar apply, kept as the differential oracle. */
    uint64_t
    apply_reference(uint64_t x) const
    {
        uint64_t acc = 0;
        for (int j = 0; j < numCols(); ++j) {
            if (getBit(x, j))
                acc ^= cols_[j];
        }
        return acc;
    }

    /** Matrix product this * other over F2. */
    F2Matrix multiply(const F2Matrix &other) const;

    /** Scalar multiply via apply_reference, for the differential suite. */
    F2Matrix multiply_reference(const F2Matrix &other) const;

    F2Matrix transpose() const;

    /** The original per-bit transpose, kept as the differential oracle. */
    F2Matrix transpose_reference() const;

    /** Rank via Gaussian elimination. */
    int rank() const;

    /** Rank over the scalar echelon engine. */
    int rank_reference() const;

    bool isSurjective() const { return rank() == rows_; }
    bool isInjective() const { return rank() == numCols(); }
    bool isInvertible() const;

    /** Inverse of a square invertible matrix; asserts invertibility. */
    F2Matrix inverse() const;

    /**
     * Solve M x = b with all free variables set to zero (the minimal
     * Hamming-weight convention from Section 5.4 of the paper). Returns
     * nullopt when the system is inconsistent.
     */
    std::optional<uint64_t> solve(uint64_t b) const;

    /**
     * Right inverse: an n x m matrix R with M R = I_m. Requires the map
     * to be surjective. Free variables are resolved to zero, matching
     * the paper's broadcast-promoting pseudo-inverse.
     */
    F2Matrix rightInverse() const;

    /** Scalar rightInverse over the reference echelon engine. */
    F2Matrix rightInverse_reference() const;

    /** A basis of the null space, as packed column vectors. */
    std::vector<uint64_t> kernelBasis() const;

    /** Scalar kernelBasis over the reference echelon engine. */
    std::vector<uint64_t> kernelBasis_reference() const;

    /** Scalar solve over the reference echelon engine. */
    std::optional<uint64_t> solve_reference(uint64_t b) const;

    /** Stack this on top of other: [this; other] (same column count). */
    F2Matrix stackRows(const F2Matrix &other) const;

    /** Concatenate columns: [this | other] (same row count). */
    F2Matrix concatCols(const F2Matrix &other) const;

    /** Block diagonal [this 0; 0 other] — the layout product. */
    F2Matrix blockDiagonal(const F2Matrix &other) const;

    bool
    operator==(const F2Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

    bool operator!=(const F2Matrix &other) const { return !(*this == other); }

    /** Multi-line 0/1 grid, for diagnostics. */
    std::string toString() const;

  private:
    void
    checkIndex(int i, int j) const
    {
        llAssert(i >= 0 && i < rows_ && j >= 0 && j < numCols(),
                 "index (" << i << ", " << j << ") out of range for "
                           << rows_ << "x" << numCols());
    }

    /**
     * Row-echelon engine shared by rank / solve / inverse. Rows of
     * [M | aug] are packed as (row of M in low bits, aug row above).
     * Returns pivot column per row (or -1) and the reduced rows.
     *
     * The fast engine packs [M | aug] rows with one 64x64 butterfly
     * transpose (support/bits.h transpose64) instead of the reference
     * engine's per-bit gather; elimination itself was always row-packed.
     * echelonForm dispatches to the reference engine under
     * refmode::active() so whole runs can be replayed on scalar paths.
     */
    struct Echelon
    {
        std::vector<uint64_t> rows;   // packed [M | aug] rows, reduced
        std::vector<int> pivotCol;    // pivot column index per stored row
    };
    Echelon echelonForm(const std::vector<uint64_t> &augCols) const;
    Echelon echelonFormReference(const std::vector<uint64_t> &augCols)
        const;
    Echelon eliminate(std::vector<uint64_t> rows, int n) const;
    F2Matrix rightInverseFromEchelon(const Echelon &ech) const;
    std::vector<uint64_t> kernelBasisFromEchelon(const Echelon &ech) const;

    int rows_;
    std::vector<uint64_t> cols_;
};

} // namespace f2
} // namespace ll

#endif // LL_F2_MATRIX_H
