#include "f2/subspace.h"

#include <algorithm>
#include <bit>

#include "support/bits.h"
#include "support/diagnostics.h"
#include "support/refmode.h"

namespace ll {
namespace f2 {

// ---------------------------------------------------------------------------
// Pivot-table echelon basis (fast path).
//
// The reference reduce scans the value-sorted basis and XORs whenever the
// running leading bit matches a pivot; because the leading bit only ever
// decreases and each pivot is held by exactly one vector, that scan is
// equivalent to "while the leading bit of v is a pivot, XOR that pivot's
// vector" — a direct table lookup. Insert back-reduces only vectors whose
// pivot lies above the new leading bit (lower pivots cannot have the bit
// set), so pivots never move and the table write is O(1).
// ---------------------------------------------------------------------------

EchelonBasis::EchelonBasis(const std::vector<uint64_t> &generators)
{
    for (uint64_t g : generators)
        insert(g);
}

uint64_t
EchelonBasis::reduce(uint64_t v) const
{
    while (v != 0) {
        int lb = leadingBit(v);
        if (!getBit(pivotMask_, lb))
            break;
        v ^= table_[lb];
    }
    return v;
}

bool
EchelonBasis::contains(uint64_t v) const
{
    return reduce(v) == 0;
}

bool
EchelonBasis::insert(uint64_t v)
{
    v = reduce(v);
    if (v == 0)
        return false;
    const int lb = leadingBit(v);
    for (uint64_t m = pivotMask_; m != 0;) {
        int p = leadingBit(m);
        m ^= uint64_t(1) << p;
        if (getBit(table_[p], lb))
            table_[p] ^= v;
    }
    table_[lb] = v;
    pivotMask_ |= uint64_t(1) << lb;
    // Descending pivot order equals the reference's descending value sort:
    // with distinct leading bits, the leading bit dominates the comparison.
    basis_.clear();
    for (uint64_t m = pivotMask_; m != 0;) {
        int p = leadingBit(m);
        m ^= uint64_t(1) << p;
        basis_.push_back(table_[p]);
    }
    return true;
}

// ---------------------------------------------------------------------------
// Sorted-vector echelon basis (reference oracle, original code).
// ---------------------------------------------------------------------------

EchelonBasisReference::EchelonBasisReference(
    const std::vector<uint64_t> &generators)
{
    for (uint64_t g : generators)
        insert(g);
}

uint64_t
EchelonBasisReference::reduce(uint64_t v) const
{
    for (uint64_t b : basis_) {
        if (v == 0)
            break;
        if (leadingBit(v) == leadingBit(b))
            v ^= b;
    }
    return v;
}

bool
EchelonBasisReference::contains(uint64_t v) const
{
    return reduce(v) == 0;
}

bool
EchelonBasisReference::insert(uint64_t v)
{
    v = reduce(v);
    if (v == 0)
        return false;
    // Back-reduce existing vectors so the basis stays reduced.
    for (uint64_t &b : basis_) {
        if (getBit(b, leadingBit(v)))
            b ^= v;
    }
    basis_.push_back(v);
    std::sort(basis_.begin(), basis_.end(),
              [](uint64_t a, uint64_t b) { return a > b; });
    return true;
}

// ---------------------------------------------------------------------------
// Free functions. Each fast version dispatches to its scalar reference
// under refmode::active() so whole runs can replay on the original paths.
// ---------------------------------------------------------------------------

std::vector<uint64_t>
reduceToBasis(const std::vector<uint64_t> &vectors)
{
    if (refmode::active())
        return reduceToBasis_reference(vectors);
    EchelonBasis ech;
    std::vector<uint64_t> out;
    for (uint64_t v : vectors) {
        if (ech.insert(v))
            out.push_back(v);
    }
    return out;
}

std::vector<uint64_t>
reduceToBasis_reference(const std::vector<uint64_t> &vectors)
{
    EchelonBasisReference ech;
    std::vector<uint64_t> out;
    for (uint64_t v : vectors) {
        if (ech.insert(v))
            out.push_back(v);
    }
    return out;
}

int
rankOfVectors(const std::vector<uint64_t> &vectors)
{
    if (refmode::active())
        return rankOfVectors_reference(vectors);
    return EchelonBasis(vectors).dimension();
}

int
rankOfVectors_reference(const std::vector<uint64_t> &vectors)
{
    return EchelonBasisReference(vectors).dimension();
}

bool
spanContains(const std::vector<uint64_t> &basis, uint64_t v)
{
    if (refmode::active())
        return spanContains_reference(basis, v);
    return EchelonBasis(basis).contains(v);
}

bool
spanContains_reference(const std::vector<uint64_t> &basis, uint64_t v)
{
    return EchelonBasisReference(basis).contains(v);
}

std::vector<uint64_t>
complementBasis(const std::vector<uint64_t> &basis, int dim)
{
    if (refmode::active())
        return complementBasis_reference(basis, dim);
    llAssert(dim >= 0 && dim <= 64, "dimension out of range");
    EchelonBasis ech(basis);
    std::vector<uint64_t> added;
    for (int i = 0; i < dim; ++i) {
        uint64_t e = uint64_t(1) << i;
        if (ech.insert(e))
            added.push_back(e);
    }
    return added;
}

std::vector<uint64_t>
complementBasis_reference(const std::vector<uint64_t> &basis, int dim)
{
    llAssert(dim >= 0 && dim <= 64, "dimension out of range");
    EchelonBasisReference ech(basis);
    std::vector<uint64_t> added;
    for (int i = 0; i < dim; ++i) {
        uint64_t e = uint64_t(1) << i;
        if (ech.insert(e))
            added.push_back(e);
    }
    return added;
}

std::vector<uint64_t>
completeBasis(const std::vector<uint64_t> &basis, int dim)
{
    std::vector<uint64_t> out = reduceToBasis(basis);
    llAssert(out.size() == reduceToBasis(basis).size(),
             "completeBasis expects an independent set");
    std::vector<uint64_t> extra = complementBasis(basis, dim);
    out.insert(out.end(), extra.begin(), extra.end());
    return out;
}

std::vector<uint64_t>
completeBasis_reference(const std::vector<uint64_t> &basis, int dim)
{
    std::vector<uint64_t> out = reduceToBasis_reference(basis);
    llAssert(out.size() == reduceToBasis_reference(basis).size(),
             "completeBasis expects an independent set");
    std::vector<uint64_t> extra = complementBasis_reference(basis, dim);
    out.insert(out.end(), extra.begin(), extra.end());
    return out;
}

std::vector<uint64_t>
intersectSpans(const std::vector<uint64_t> &u, const std::vector<uint64_t> &v,
               int dim)
{
    if (refmode::active())
        return intersectSpans_reference(u, v, dim);
    llAssert(dim >= 0 && dim <= 32,
             "intersectSpans supports dimensions up to 32");
    // Zassenhaus on packed (hi << dim) | lo pairs, with the reduced row
    // set held in a pivot table instead of a re-sorted vector. Forward
    // reduction by leading bit is forced (see EchelonBasis above), so the
    // surviving packed values — and therefore the collected intersection
    // vectors and their order — match the reference exactly.
    const uint64_t loMask =
        (dim < 64) ? ((uint64_t(1) << dim) - 1) : ~uint64_t(0);
    uint64_t row[64] = {0};
    uint64_t rowMask = 0;
    std::vector<uint64_t> intersection;
    EchelonBasis interEch;
    auto feed = [&](uint64_t packed) {
        while (packed != 0) {
            int lb = leadingBit(packed);
            if (!getBit(rowMask, lb))
                break;
            packed ^= row[lb];
        }
        if (packed == 0)
            return;
        int lb = leadingBit(packed);
        row[lb] = packed;
        rowMask |= uint64_t(1) << lb;
        uint64_t hi = packed >> dim;
        uint64_t lo = packed & loMask;
        if (hi == 0 && lo != 0 && interEch.insert(lo))
            intersection.push_back(lo);
    };
    for (uint64_t x : u)
        feed((x << dim) | x);
    for (uint64_t y : v)
        feed(y << dim);
    return intersection;
}

std::vector<uint64_t>
intersectSpans_reference(const std::vector<uint64_t> &u,
                         const std::vector<uint64_t> &v, int dim)
{
    llAssert(dim >= 0 && dim <= 32,
             "intersectSpans supports dimensions up to 32");
    // Zassenhaus: row-reduce pairs (x, x) for x in U and (y, 0) for y in V.
    // Rows whose first component reduces to zero have second components
    // spanning the intersection.
    struct Pair
    {
        uint64_t hi; // component in the "first copy" of F2^dim
        uint64_t lo; // shadow component
    };
    std::vector<Pair> rows;
    for (uint64_t x : u)
        rows.push_back({x, x});
    for (uint64_t y : v)
        rows.push_back({y, 0});

    std::vector<Pair> reduced; // echelon by leading bit of packed (hi, lo)
    std::vector<uint64_t> intersection;
    EchelonBasisReference interEch;
    auto pack = [dim](const Pair &p) {
        return (p.hi << dim) | p.lo;
    };
    for (Pair p : rows) {
        uint64_t packed = pack(p);
        for (const Pair &r : reduced) {
            if (packed == 0)
                break;
            uint64_t rp = pack(r);
            if (leadingBit(packed) == leadingBit(rp))
                packed ^= rp;
        }
        if (packed == 0)
            continue;
        Pair np{packed >> dim, packed & ((dim < 64)
                                             ? ((uint64_t(1) << dim) - 1)
                                             : ~uint64_t(0))};
        reduced.push_back(np);
        std::sort(reduced.begin(), reduced.end(),
                  [&](const Pair &a, const Pair &b) {
                      return pack(a) > pack(b);
                  });
        if (np.hi == 0 && np.lo != 0 && interEch.insert(np.lo))
            intersection.push_back(np.lo);
    }
    return intersection;
}

std::vector<uint64_t>
enumerateSpan(const std::vector<uint64_t> &basis)
{
    if (refmode::active())
        return enumerateSpan_reference(basis);
    llAssert(basis.size() <= 20, "span too large to enumerate");
    // Prefix recurrence: clearing the lowest set bit of i leaves an index
    // already computed, so element i is one XOR instead of popcount(i).
    const size_t total = size_t(1) << basis.size();
    std::vector<uint64_t> out(total);
    out[0] = 0;
    for (size_t i = 1; i < total; ++i)
        out[i] = out[i & (i - 1)] ^ basis[std::countr_zero(i)];
    return out;
}

std::vector<uint64_t>
enumerateSpan_reference(const std::vector<uint64_t> &basis)
{
    llAssert(basis.size() <= 20, "span too large to enumerate");
    std::vector<uint64_t> out;
    out.reserve(size_t(1) << basis.size());
    for (uint64_t i = 0; i < (uint64_t(1) << basis.size()); ++i) {
        uint64_t acc = 0;
        for (size_t k = 0; k < basis.size(); ++k) {
            if (getBit(i, static_cast<int>(k)))
                acc ^= basis[k];
        }
        out.push_back(acc);
    }
    return out;
}

} // namespace f2
} // namespace ll
