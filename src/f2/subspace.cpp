#include "f2/subspace.h"

#include <algorithm>

#include "support/bits.h"
#include "support/diagnostics.h"

namespace ll {
namespace f2 {

namespace {

/** Index of the highest set bit; vectors here are nonzero. */
int
leadingBit(uint64_t v)
{
    return 63 - std::countl_zero(v);
}

} // namespace

EchelonBasis::EchelonBasis(const std::vector<uint64_t> &generators)
{
    for (uint64_t g : generators)
        insert(g);
}

uint64_t
EchelonBasis::reduce(uint64_t v) const
{
    for (uint64_t b : basis_) {
        if (v == 0)
            break;
        if (leadingBit(v) == leadingBit(b))
            v ^= b;
    }
    return v;
}

bool
EchelonBasis::contains(uint64_t v) const
{
    return reduce(v) == 0;
}

bool
EchelonBasis::insert(uint64_t v)
{
    v = reduce(v);
    if (v == 0)
        return false;
    // Back-reduce existing vectors so the basis stays fully reduced.
    for (uint64_t &b : basis_) {
        if (getBit(b, leadingBit(v)))
            b ^= v;
    }
    basis_.push_back(v);
    std::sort(basis_.begin(), basis_.end(),
              [](uint64_t a, uint64_t b) { return a > b; });
    return true;
}

std::vector<uint64_t>
reduceToBasis(const std::vector<uint64_t> &vectors)
{
    EchelonBasis ech;
    std::vector<uint64_t> out;
    for (uint64_t v : vectors) {
        if (ech.insert(v))
            out.push_back(v);
    }
    return out;
}

int
rankOfVectors(const std::vector<uint64_t> &vectors)
{
    return EchelonBasis(vectors).dimension();
}

bool
spanContains(const std::vector<uint64_t> &basis, uint64_t v)
{
    return EchelonBasis(basis).contains(v);
}

std::vector<uint64_t>
complementBasis(const std::vector<uint64_t> &basis, int dim)
{
    llAssert(dim >= 0 && dim <= 64, "dimension out of range");
    EchelonBasis ech(basis);
    std::vector<uint64_t> added;
    for (int i = 0; i < dim; ++i) {
        uint64_t e = uint64_t(1) << i;
        if (ech.insert(e))
            added.push_back(e);
    }
    return added;
}

std::vector<uint64_t>
completeBasis(const std::vector<uint64_t> &basis, int dim)
{
    std::vector<uint64_t> out = reduceToBasis(basis);
    llAssert(out.size() == reduceToBasis(basis).size(),
             "completeBasis expects an independent set");
    std::vector<uint64_t> extra = complementBasis(basis, dim);
    out.insert(out.end(), extra.begin(), extra.end());
    return out;
}

std::vector<uint64_t>
intersectSpans(const std::vector<uint64_t> &u, const std::vector<uint64_t> &v,
               int dim)
{
    llAssert(dim >= 0 && dim <= 32,
             "intersectSpans supports dimensions up to 32");
    // Zassenhaus: row-reduce pairs (x, x) for x in U and (y, 0) for y in V.
    // Rows whose first component reduces to zero have second components
    // spanning the intersection.
    struct Pair
    {
        uint64_t hi; // component in the "first copy" of F2^dim
        uint64_t lo; // shadow component
    };
    std::vector<Pair> rows;
    for (uint64_t x : u)
        rows.push_back({x, x});
    for (uint64_t y : v)
        rows.push_back({y, 0});

    std::vector<Pair> reduced; // echelon by leading bit of packed (hi, lo)
    std::vector<uint64_t> intersection;
    EchelonBasis interEch;
    auto pack = [dim](const Pair &p) {
        return (p.hi << dim) | p.lo;
    };
    for (Pair p : rows) {
        uint64_t packed = pack(p);
        for (const Pair &r : reduced) {
            if (packed == 0)
                break;
            uint64_t rp = pack(r);
            if (leadingBit(packed) == leadingBit(rp))
                packed ^= rp;
        }
        if (packed == 0)
            continue;
        Pair np{packed >> dim, packed & ((dim < 64)
                                             ? ((uint64_t(1) << dim) - 1)
                                             : ~uint64_t(0))};
        reduced.push_back(np);
        std::sort(reduced.begin(), reduced.end(),
                  [&](const Pair &a, const Pair &b) {
                      return pack(a) > pack(b);
                  });
        if (np.hi == 0 && np.lo != 0 && interEch.insert(np.lo))
            intersection.push_back(np.lo);
    }
    return intersection;
}

std::vector<uint64_t>
enumerateSpan(const std::vector<uint64_t> &basis)
{
    llAssert(basis.size() <= 20, "span too large to enumerate");
    std::vector<uint64_t> out;
    out.reserve(size_t(1) << basis.size());
    for (uint64_t i = 0; i < (uint64_t(1) << basis.size()); ++i) {
        uint64_t acc = 0;
        for (size_t k = 0; k < basis.size(); ++k) {
            if (getBit(i, static_cast<int>(k)))
                acc ^= basis[k];
        }
        out.push_back(acc);
    }
    return out;
}

} // namespace f2
} // namespace ll
