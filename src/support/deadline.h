/**
 * @file
 * Cooperative per-request deadlines for the serving path.
 *
 * A compilation service that admits work under load needs every stage
 * below it to stop occupying a worker once the request's deadline has
 * passed. Preemption is off the table — the planner is a library, not a
 * process — so cancellation is cooperative: the service installs the
 * request's deadline for the worker thread with a `deadline::Scoped`,
 * and long-running stages poll `deadline::expired()` at their natural
 * checkpoints (the planner checks at fallback-ladder rung boundaries
 * and demotes to the terminal scalar rung instead of sweeping the
 * expensive shared-memory candidates; see codegen/conversion.cpp).
 *
 * The token is thread-local, so a worker's deadline never leaks into
 * concurrently planning requests, and scopes nest (an inner, tighter
 * deadline wins while it lives; the outer one is restored on exit).
 * When no deadline is installed every query is a single thread-local
 * load — the planner pays nothing on the non-serving paths.
 *
 * Plans whose shape was bent by an expired deadline carry a
 * DiagCode::DeadlineExceeded note, which the plan cache treats exactly
 * like a failpoint-shaped plan: never cached (the demotion reflects
 * load, not the inputs).
 */

#ifndef LL_SUPPORT_DEADLINE_H
#define LL_SUPPORT_DEADLINE_H

#include <chrono>

namespace ll {
namespace deadline {

using Clock = std::chrono::steady_clock;

/** True when the calling thread has a deadline installed. */
bool active();

/** True when the calling thread's deadline has passed. Always false
 *  when none is installed. */
bool expired();

/** Microseconds until the calling thread's deadline; a large positive
 *  sentinel (> 1e15) when none is installed, <= 0 once expired. */
double remainingUs();

/** The installed deadline; Clock::time_point::max() when none. */
Clock::time_point current();

/**
 * RAII installation of a deadline for the calling thread. Nesting
 * keeps the *earlier* of the two deadlines effective — an outer
 * request budget cannot be extended by an inner scope.
 */
class Scoped
{
  public:
    explicit Scoped(Clock::time_point deadline);
    ~Scoped();
    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;

  private:
    Clock::time_point previous_;
    bool hadPrevious_;
};

} // namespace deadline
} // namespace ll

#endif // LL_SUPPORT_DEADLINE_H
