#include "support/refmode.h"

#include <cstdlib>

namespace ll {
namespace refmode {

namespace detail {
std::atomic<bool> gReferenceMode{false};
} // namespace detail

void
set(bool on)
{
    detail::gReferenceMode.store(on, std::memory_order_relaxed);
}

namespace {

// Reads LL_F2_REFERENCE once at startup for any binary linking support.
struct EnvInit
{
    EnvInit()
    {
        const char *p = std::getenv("LL_F2_REFERENCE");
        if (p != nullptr && *p != '\0' && *p != '0')
            set(true);
    }
};
EnvInit gEnvInit;

} // namespace

} // namespace refmode
} // namespace ll
