/**
 * @file
 * A process-wide work pool for embarrassingly-parallel planning fans.
 *
 * The shared-memory planner prices whole families of independent
 * candidates — notably the (padInterval, padElems) pairs of the padded
 * rung, each of which costs two full enumerateWavefronts sweeps — and
 * the compilation service drains request batches. Both fan out through
 * this module so the process holds exactly one set of worker threads
 * instead of every layer spawning its own.
 *
 * parallelFor is safe to call from inside a pool worker (the service's
 * workers plan conversions whose padded rung fans out again): the
 * calling thread always participates in draining its own batch, so
 * completion never waits on a pool slot that could be occupied by the
 * caller itself — no nesting deadlock by construction.
 *
 * Determinism: tasks write results only into their own index; callers
 * reduce in index order after the join, so the outcome is identical to
 * the serial loop no matter how tasks interleave. Set LL_PARALLEL=0 to
 * force serial execution (or LL_PARALLEL=<n> to cap the workers).
 */

#ifndef LL_SUPPORT_PARALLEL_H
#define LL_SUPPORT_PARALLEL_H

#include <functional>

namespace ll {
namespace support {

/** Worker threads the shared pool runs (0 = serial execution). */
int parallelWorkers();

/**
 * Run fn(i) for i in [0, n) across the shared pool, blocking until all
 * complete. fn must confine writes to per-index state. Exceptions
 * escape to the caller (the first one thrown, after all tasks finish).
 */
void parallelFor(int n, const std::function<void(int)> &fn);

} // namespace support
} // namespace ll

#endif // LL_SUPPORT_PARALLEL_H
