#include "support/metrics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/diagnostics.h"

namespace ll {
namespace metrics {

namespace {

/** Prometheus metric names allow [a-zA-Z0-9_:]; our dotted/hyphenated
 *  internal names map '.' and '-' (and anything else) to '_'. */
std::string sanitizeName(const std::string &name)
{
    std::string out = "ll_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)), buckets_(bounds_.size() + 1)
{
    llAssert(std::is_sorted(bounds_.begin(), bounds_.end()),
             "histogram bucket bounds must be ascending");
}

void Histogram::observe(double value)
{
    size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                 bounds_.begin();
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed))
        ;
}

double Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::bucketCounts() const
{
    std::vector<int64_t> out(buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

void Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> exponentialBounds(double start, double factor,
                                      int count)
{
    llAssert(start > 0.0 && factor > 1.0 && count >= 1,
             "exponential histogram bounds need start > 0, factor > 1, "
             "count >= 1");
    std::vector<double> bounds;
    bounds.reserve(static_cast<size_t>(count));
    double bound = start;
    for (int i = 0; i < count; ++i) {
        bounds.push_back(bound);
        bound *= factor;
    }
    return bounds;
}

Registry &Registry::instance()
{
    static Registry r;
    return r;
}

Counter &Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    return *it->second;
}

Histogram &Registry::histogram(const std::string &name,
                               std::vector<double> upperBounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(name,
                          std::make_unique<Histogram>(std::move(upperBounds)))
                 .first;
    return *it->second;
}

std::map<std::string, int64_t> Registry::counterSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, int64_t> out;
    for (const auto &[name, c] : counters_)
        out[name] = c->value();
    return out;
}

void Registry::writeText(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_) {
        const std::string n = sanitizeName(name);
        os << "# TYPE " << n << " counter\n";
        os << n << " " << c->value() << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        const std::string n = sanitizeName(name);
        os << "# TYPE " << n << " histogram\n";
        const auto bounds = h->upperBounds();
        const auto counts = h->bucketCounts();
        int64_t cumulative = 0;
        for (size_t i = 0; i < bounds.size(); ++i) {
            cumulative += counts[i];
            os << n << "_bucket{le=\"" << formatDouble(bounds[i]) << "\"} "
               << cumulative << "\n";
        }
        cumulative += counts.back();
        os << n << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        os << n << "_sum " << formatDouble(h->sum()) << "\n";
        os << n << "_count " << h->count() << "\n";
    }
}

void Registry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":" << c->value();
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":{\"count\":" << h->count()
           << ",\"sum\":" << formatDouble(h->sum()) << ",\"buckets\":[";
        const auto bounds = h->upperBounds();
        const auto counts = h->bucketCounts();
        for (size_t i = 0; i < counts.size(); ++i) {
            if (i > 0)
                os << ",";
            os << "{\"le\":";
            if (i < bounds.size())
                os << formatDouble(bounds[i]);
            else
                os << "\"+Inf\"";
            os << ",\"count\":" << counts[i] << "}";
        }
        os << "]}";
    }
    os << "}}";
}

void Registry::resetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace metrics
} // namespace ll
