/**
 * @file
 * Structured error propagation for the planning pipeline.
 *
 * The planner stack (codegen/conversion and the stages below it) is a
 * *total* function: for any pair of valid layouts some rung of the
 * fallback ladder must produce a correct plan. Stages therefore report
 * "this rung does not apply here" as data — a Diagnostic with a stable
 * code and the stage that raised it — instead of throwing. Exceptions
 * remain reserved for invalid caller input (UserError at the public
 * boundary) and genuine internal bugs that escaped conversion.
 */

#ifndef LL_SUPPORT_RESULT_H
#define LL_SUPPORT_RESULT_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/diagnostics.h"

namespace ll {

/** Stable identifiers for why a planning stage declined or failed. */
enum class DiagCode
{
    InvalidInput,            ///< caller precondition violated
    NonPow2Bridgeable,       ///< well-formed but non-pow2: needs the
                             ///< cute admission path, not a rejection
    ShuffleNotApplicable,    ///< conversion is not intra-warp/injective
    ShuffleDegenerate,       ///< exchange structure unprovable
    SwizzleBasisIncomplete,  ///< optimal-swizzle basis construction failed
    LegacySwizzleUnavailable,///< mma-parameter candidate not constructible
    TileMismatch,            ///< ldmatrix/stmatrix tile does not divide
    PaddedUnavailable,       ///< padded shared rung failed
    ScalarUnavailable,       ///< scalar shared rung failed (terminal)
    CtaBudgetExceeded,       ///< allocation exceeds the CTA shared budget
    FailpointInjected,       ///< a failpoint forced this stage off
    DeadlineExceeded,        ///< the request's deadline cut this stage off
    ExecutionFailed,         ///< a built plan failed while executing
    PlannerInternalError,    ///< unexpected exception inside a stage
};

std::string toString(DiagCode code);

/** One structured note: what failed, where, and why. */
struct Diagnostic
{
    DiagCode code = DiagCode::PlannerInternalError;
    /** Stage/failpoint site that raised it ("plan.warp-shuffle", ...). */
    std::string stage;
    std::string message;

    std::string toString() const;
};

inline Diagnostic
makeDiag(DiagCode code, std::string stage, std::string message)
{
    return Diagnostic{code, std::move(stage), std::move(message)};
}

/**
 * Stable identifiers for why an *executor* failed at runtime. Planning
 * codes (DiagCode) describe why a rung was not built; these describe
 * why a built plan could not be run — a different failure domain with
 * a different consumer (the engine's execution-triggered demotion).
 */
enum class ExecError
{
    PlanShapeMismatch,     ///< register file shape disagrees with the plan
    LaneOutOfRange,        ///< shuffle/gather source lane outside the warp
    RegisterOutOfRange,    ///< register index outside the file
    NonInvertibleStep,     ///< a layout inversion the plan relied on failed
    CrossWarpSource,       ///< intra-warp plan asked for another warp's data
    SharedWindowOverflow,  ///< shared offset outside the allocated window
    BankBudgetExceeded,    ///< measured wavefronts blew the conflict budget
    UnfilledSlot,          ///< a destination slot was never written
    FailpointInjected,     ///< a failpoint forced this execution site off
    ExecInternalError,     ///< unexpected exception inside an executor
};

std::string toString(ExecError code);

/** One structured execution-failure note: what failed, where, and why. */
struct ExecDiagnostic
{
    ExecError code = ExecError::ExecInternalError;
    /** Executor stage/failpoint site ("exec.shuffle.lane-range", ...). */
    std::string stage;
    std::string message;

    std::string toString() const;
    /** Bridge into planner diagnostics (DiagCode::ExecutionFailed). */
    Diagnostic toDiagnostic() const;
};

inline ExecDiagnostic
makeExecDiag(ExecError code, std::string stage, std::string message)
{
    return ExecDiagnostic{code, std::move(stage), std::move(message)};
}

/**
 * Value-or-error. Deliberately exposes the std::optional accessor
 * surface (has_value / operator bool / * / ->) so call sites written
 * against the old optional-returning planner APIs compile unchanged.
 * The error type defaults to Diagnostic (planning); executors return
 * Result<T, ExecDiagnostic>.
 */
template <typename T, typename E = Diagnostic>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {} // NOLINT(implicit)
    Result(E diag) : diag_(std::move(diag)) {} // NOLINT(implicit)

    bool ok() const { return value_.has_value(); }
    bool has_value() const { return value_.has_value(); }
    explicit operator bool() const { return value_.has_value(); }

    T &value()
    {
        llAssert(value_.has_value(),
                 "Result::value() on failure: " << diag_.toString());
        return *value_;
    }
    const T &value() const
    {
        llAssert(value_.has_value(),
                 "Result::value() on failure: " << diag_.toString());
        return *value_;
    }
    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** The failure note; meaningful only when !ok(). */
    const E &diag() const { return diag_; }

  private:
    std::optional<T> value_;
    E diag_;
};

/** Accumulated per-stage notes explaining how a plan was reached. */
struct PlanDiagnostics
{
    std::vector<Diagnostic> notes;

    void
    note(DiagCode code, std::string stage, std::string message)
    {
        notes.push_back(
            makeDiag(code, std::move(stage), std::move(message)));
    }
    void note(Diagnostic d) { notes.push_back(std::move(d)); }

    bool empty() const { return notes.empty(); }

    /** All notes joined with "; " (empty string when clean). */
    std::string toString() const;
};

} // namespace ll

#endif // LL_SUPPORT_RESULT_H
