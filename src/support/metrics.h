/**
 * @file
 * Process-global metrics registry: counters and fixed-bucket histograms
 * with Prometheus-style text and JSON exposition.
 *
 * Metric names are dotted paths ("engine.converts_planned",
 * "exec.shuffle.rounds") and form a stable contract documented in
 * DESIGN.md "Observability" — tools (llstat, the bench JSON emitter)
 * and tests key off them. The Prometheus text writer rewrites the
 * separators to underscores ("ll_engine_converts_planned"); the JSON
 * writer keeps the dotted names verbatim.
 *
 * Registry entries are created on first use and never deleted
 * (resetAll() zeroes values in place), so hot sites may cache the
 * returned reference in a function-local static:
 *
 *     static auto &c = metrics::Registry::instance()
 *                          .counter("exec.shuffle.runs");
 *     c.inc();
 *
 * Counter/Histogram updates are lock-free atomics; only name lookup
 * takes the registry mutex.
 */

#ifndef LL_SUPPORT_METRICS_H
#define LL_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ll {
namespace metrics {

class Counter
{
  public:
    void add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
    void inc() { add(1); }
    int64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Buckets are defined by explicit inclusive
 * upper bounds (ascending); one implicit overflow bucket catches
 * everything above the last bound. bucketCounts() returns per-bucket
 * (non-cumulative) counts; the text writer renders the cumulative
 * Prometheus `le` form.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upperBounds);

    void observe(double value);

    int64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const;
    const std::vector<double> &upperBounds() const { return bounds_; }
    /** Size bounds.size() + 1; the last entry is the overflow bucket. */
    std::vector<int64_t> bucketCounts() const;
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<int64_t>> buckets_;
    std::atomic<int64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

class Registry
{
  public:
    static Registry &instance();

    /** Find-or-create. The returned reference is valid for the process
     *  lifetime — entries are never deleted. */
    Counter &counter(const std::string &name);

    /** Find-or-create; `upperBounds` is consulted only when the
     *  histogram is first created. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upperBounds);

    /** name -> value for every registered counter. */
    std::map<std::string, int64_t> counterSnapshot() const;

    /** Prometheus-style text exposition (names sanitized, ll_ prefix). */
    void writeText(std::ostream &os) const;

    /** JSON object: {"counters": {...}, "histograms": {...}}. */
    void writeJson(std::ostream &os) const;

    /** Zero every counter and histogram in place. Entry addresses are
     *  preserved, so cached references stay valid. */
    void resetAll();

  private:
    Registry() = default;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Shorthand: find-or-create a counter in the global registry. */
inline Counter &counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

/**
 * Exponential histogram bounds: `count` upper bounds starting at
 * `start` and growing by `factor` (start, start*factor, ...). The
 * constructor of choice for ratio- and latency-shaped families — e.g.
 * the prediction-error-ratio histogram "plan.calib.error_ratio" uses
 * exponentialBounds(0.125, 2.0, 11) to cover 1/8x .. 128x around a
 * perfectly priced 1.0. Requires start > 0, factor > 1, count >= 1.
 */
std::vector<double> exponentialBounds(double start, double factor,
                                      int count);

} // namespace metrics
} // namespace ll

#endif // LL_SUPPORT_METRICS_H
