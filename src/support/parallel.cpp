#include "support/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ll {
namespace support {

namespace {

/** One parallelFor call in flight. Indices are claimed atomically; the
 *  submitting thread and any pool worker drain the same counter. */
struct Batch
{
    int n = 0;
    const std::function<void(int)> *fn = nullptr;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;

    /** Claim-and-run one task. Returns false when nothing is left. */
    bool
    runOne()
    {
        int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            return false;
        try {
            (*fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu);
            if (!error)
                error = std::current_exception();
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            std::lock_guard<std::mutex> lock(mu);
            cv.notify_all();
        }
        return true;
    }
};

struct Pool
{
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Batch>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;

    Pool()
    {
        const int n = configuredWorkers();
        for (int w = 0; w < n; ++w)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            stopping = true;
            cv.notify_all();
        }
        for (auto &t : workers)
            t.join();
    }

    static int
    configuredWorkers()
    {
        int hw = static_cast<int>(std::thread::hardware_concurrency());
        int n = std::max(1, std::min(hw - 1, 8));
        if (const char *env = std::getenv("LL_PARALLEL")) {
            int v = std::atoi(env);
            n = std::max(0, std::min(v, 64));
        }
        return n;
    }

    void
    workerLoop()
    {
        while (true) {
            std::shared_ptr<Batch> batch;
            {
                std::unique_lock<std::mutex> lock(mu);
                cv.wait(lock,
                        [this] { return stopping || !queue.empty(); });
                if (queue.empty())
                    return; // stopping with nothing queued
                batch = queue.front();
            }
            if (!batch->runOne()) {
                std::lock_guard<std::mutex> lock(mu);
                if (!queue.empty() && queue.front() == batch)
                    queue.pop_front();
            }
        }
    }

    void
    submit(const std::shared_ptr<Batch> &batch)
    {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(batch);
        cv.notify_all();
    }
};

Pool &
pool()
{
    // Function-local static: built on first fan-out, joined after main.
    // No parallelFor runs during static destruction, so tearing the
    // workers down at exit is safe (and keeps LeakSanitizer quiet).
    static Pool p;
    return p;
}

} // namespace

int
parallelWorkers()
{
    return Pool::configuredWorkers();
}

void
parallelFor(int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    if (n == 1 || parallelWorkers() == 0) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }
    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;
    pool().submit(batch);
    // The caller drains its own batch too, so completion never depends
    // on a free pool slot — recursive parallelFor cannot deadlock.
    while (batch->runOne()) {
    }
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->cv.wait(lock, [&] {
        return batch->done.load(std::memory_order_acquire) == n;
    });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace support
} // namespace ll
