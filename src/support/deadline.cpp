#include "support/deadline.h"

namespace ll {
namespace deadline {

namespace {

struct ThreadDeadline
{
    Clock::time_point at = Clock::time_point::max();
    bool installed = false;
};

ThreadDeadline &
slot()
{
    thread_local ThreadDeadline td;
    return td;
}

} // namespace

bool
active()
{
    return slot().installed;
}

bool
expired()
{
    const ThreadDeadline &td = slot();
    if (!td.installed)
        return false;
    return Clock::now() >= td.at;
}

double
remainingUs()
{
    const ThreadDeadline &td = slot();
    if (!td.installed)
        return 1e18;
    return std::chrono::duration<double, std::micro>(td.at -
                                                     Clock::now())
        .count();
}

Clock::time_point
current()
{
    const ThreadDeadline &td = slot();
    return td.installed ? td.at : Clock::time_point::max();
}

Scoped::Scoped(Clock::time_point deadline)
{
    ThreadDeadline &td = slot();
    previous_ = td.at;
    hadPrevious_ = td.installed;
    // The earlier deadline stays effective: an inner scope can only
    // tighten the budget, never extend it.
    if (!td.installed || deadline < td.at)
        td.at = deadline;
    td.installed = true;
}

Scoped::~Scoped()
{
    ThreadDeadline &td = slot();
    td.at = previous_;
    td.installed = hadPrevious_;
}

} // namespace deadline
} // namespace ll
