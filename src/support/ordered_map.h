/**
 * @file
 * An insertion-ordered associative container.
 *
 * Linear layouts have *labeled* input and output dimensions whose order is
 * semantically meaningful (it determines which dimension is the
 * fastest-moving one), so the layout core needs a map that iterates in
 * insertion order. The expected number of dimensions is tiny (2-6), so a
 * vector with linear search beats any tree or hash structure and keeps
 * iteration deterministic.
 */

#ifndef LL_SUPPORT_ORDERED_MAP_H
#define LL_SUPPORT_ORDERED_MAP_H

#include <algorithm>
#include <utility>
#include <vector>

#include "support/diagnostics.h"

namespace ll {

template <typename K, typename V>
class OrderedMap
{
  public:
    using value_type = std::pair<K, V>;
    using iterator = typename std::vector<value_type>::iterator;
    using const_iterator = typename std::vector<value_type>::const_iterator;

    OrderedMap() = default;

    OrderedMap(std::initializer_list<value_type> init)
    {
        for (const auto &kv : init)
            insert(kv.first, kv.second);
    }

    bool
    contains(const K &key) const
    {
        return find(key) != end();
    }

    const_iterator
    find(const K &key) const
    {
        return std::find_if(entries_.begin(), entries_.end(),
                            [&](const value_type &kv) {
                                return kv.first == key;
                            });
    }

    iterator
    find(const K &key)
    {
        return std::find_if(entries_.begin(), entries_.end(),
                            [&](const value_type &kv) {
                                return kv.first == key;
                            });
    }

    /** Insert a new key; asserts the key is not already present. */
    V &
    insert(const K &key, V value)
    {
        llAssert(!contains(key), "duplicate key in OrderedMap");
        entries_.emplace_back(key, std::move(value));
        return entries_.back().second;
    }

    /** Access an existing key; asserts presence. */
    const V &
    at(const K &key) const
    {
        auto it = find(key);
        llAssert(it != end(), "OrderedMap: missing key");
        return it->second;
    }

    V &
    at(const K &key)
    {
        auto it = find(key);
        llAssert(it != end(), "OrderedMap: missing key");
        return it->second;
    }

    /** Access, inserting a default-constructed value if absent. */
    V &
    operator[](const K &key)
    {
        auto it = find(key);
        if (it != end())
            return it->second;
        entries_.emplace_back(key, V{});
        return entries_.back().second;
    }

    void
    erase(const K &key)
    {
        auto it = find(key);
        llAssert(it != end(), "OrderedMap: erase of missing key");
        entries_.erase(it);
    }

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }

    iterator begin() { return entries_.begin(); }
    iterator end() { return entries_.end(); }
    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }

    /** Keys in insertion order. */
    std::vector<K>
    keys() const
    {
        std::vector<K> out;
        out.reserve(entries_.size());
        for (const auto &kv : entries_)
            out.push_back(kv.first);
        return out;
    }

    bool
    operator==(const OrderedMap &other) const
    {
        return entries_ == other.entries_;
    }

  private:
    std::vector<value_type> entries_;
};

} // namespace ll

#endif // LL_SUPPORT_ORDERED_MAP_H
