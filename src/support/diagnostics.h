/**
 * @file
 * Error reporting primitives for the linear-layouts library.
 *
 * Follows the gem5 convention of distinguishing internal invariant
 * violations (panic-like, thrown as LogicError) from user errors such as
 * invalid layout parameters (thrown as UserError). Both carry a formatted
 * message with the source location of the failure.
 */

#ifndef LL_SUPPORT_DIAGNOSTICS_H
#define LL_SUPPORT_DIAGNOSTICS_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace ll {

/** Internal invariant violation: a bug in this library. */
class LogicError : public std::logic_error
{
  public:
    explicit LogicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Invalid input from the caller: bad parameters, shapes, etc. */
class UserError : public std::runtime_error
{
  public:
    explicit UserError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

std::string formatLocation(const char *file, int line, const char *cond);

[[noreturn]] void throwLogicError(const char *file, int line,
                                  const char *cond, const std::string &msg);

[[noreturn]] void throwUserError(const std::string &msg);

} // namespace detail

} // namespace ll

/**
 * Assert an internal invariant. Unlike the C assert macro this is always
 * enabled: layout algebra bugs produce silently wrong GPU code, so we
 * always pay the (tiny) cost of the check.
 */
#define llAssert(cond, ...)                                                  \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream llAssertOss_;                                 \
            llAssertOss_ << "" __VA_ARGS__;                                  \
            ::ll::detail::throwLogicError(__FILE__, __LINE__, #cond,         \
                                          llAssertOss_.str());               \
        }                                                                    \
    } while (false)

/** Report an unrecoverable internal error unconditionally. */
#define llPanic(...)                                                         \
    do {                                                                     \
        std::ostringstream llPanicOss_;                                      \
        llPanicOss_ << "" __VA_ARGS__;                                       \
        ::ll::detail::throwLogicError(__FILE__, __LINE__, "panic",           \
                                      llPanicOss_.str());                    \
    } while (false)

/** Report a user (caller) error: invalid parameters, shapes, etc. */
#define llUserCheck(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream llUserOss_;                                   \
            llUserOss_ << "" __VA_ARGS__;                                    \
            ::ll::detail::throwUserError(llUserOss_.str());                  \
        }                                                                    \
    } while (false)

#endif // LL_SUPPORT_DIAGNOSTICS_H
