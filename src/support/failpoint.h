/**
 * @file
 * Deterministic fault-injection registry (failpoints).
 *
 * Every planner stage guards itself with LL_FAILPOINT("site"): normally
 * the guard just increments the site's hit counter, but when a test (or
 * the LL_FAILPOINTS environment variable) activates the site, the guard
 * fires and the stage reports failure through its normal Result path.
 * This is how the fallback ladder's lower rungs are reached on demand:
 * forcing "plan.optimal-swizzle" off, say, proves the padded rung is
 * live and oracle-clean, without hand-crafting pathological layouts.
 *
 * Activation is process-global; the site map is guarded by a mutex so
 * concurrent register/hit/clear calls are safe (a prerequisite for the
 * multi-threaded engine work on the roadmap). Shot limits are one
 * global budget: a site activated with limit N fires for exactly N
 * evaluations process-wide no matter how many threads reach the guard
 * concurrently. Sites are plain strings so adding one requires no
 * central registration; `hitCount` lets tests assert a guard is
 * actually wired into the code path they think it is.
 *
 * A second, *thread-local* activation overlay exists for callers that
 * must disable sites for their own call stack without perturbing other
 * threads: the engine's execution-triggered demotion re-plans under a
 * knockout set, and under the compile service's thread pool a global
 * activation would leak that knockout into every concurrently planning
 * request. Thread-local activations fire for the owning thread only,
 * are unlimited while scoped, and never touch the global shot budget.
 *
 * Environment syntax: LL_FAILPOINTS="site-a,site-b:3" activates site-a
 * until deactivated and site-b for its next 3 guard evaluations.
 */

#ifndef LL_SUPPORT_FAILPOINT_H
#define LL_SUPPORT_FAILPOINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ll {
namespace failpoint {

/**
 * The guard: increments the site's deterministic hit counter and
 * returns true when the site is active (consuming one shot from a
 * limited activation). Call through LL_FAILPOINT for grep-ability.
 */
bool shouldFail(const std::string &site);

/** Activate a site; limit < 0 means "until deactivated", otherwise the
 *  site fires for its next `limit` evaluations only. */
void activate(const std::string &site, int64_t limit = -1);

void deactivate(const std::string &site);

/** Deactivate everything, including LL_FAILPOINTS activations, and
 *  forget all hit counters. */
void clearAll();

/** Times `shouldFail(site)` has been evaluated (active or not). */
int64_t hitCount(const std::string &site);

/** Currently active site names, sorted. */
std::vector<std::string> activeSites();

/** Sites active via the calling thread's local overlay, sorted. */
std::vector<std::string> threadLocalActiveSites();

/** True when any site is active for the calling thread — globally or
 *  through its thread-local overlay. The plan cache consults this to
 *  enforce "failures (and failpoint-shaped plans) are never cached". */
bool anyActive();

/** RAII activation for test scopes. */
class Scoped
{
  public:
    explicit Scoped(std::string site, int64_t limit = -1)
        : site_(std::move(site))
    {
        activate(site_, limit);
    }
    ~Scoped() { deactivate(site_); }
    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;

  private:
    std::string site_;
};

/** RAII activation of a whole site list (e.g. ConversionCase::failpoints). */
class ScopedSet
{
  public:
    explicit ScopedSet(std::vector<std::string> sites)
        : sites_(std::move(sites))
    {
        for (const auto &s : sites_)
            activate(s);
    }
    ~ScopedSet()
    {
        for (const auto &s : sites_)
            deactivate(s);
    }
    ScopedSet(const ScopedSet &) = delete;
    ScopedSet &operator=(const ScopedSet &) = delete;

  private:
    std::vector<std::string> sites_;
};

/**
 * RAII *thread-local* activation of a site list. Sites fire only for
 * evaluations on the constructing thread and are unlimited while the
 * scope lives; the global registry (and its shot budgets) is untouched.
 * Scopes nest: destruction removes exactly the sites this scope added.
 */
class ScopedThreadLocal
{
  public:
    explicit ScopedThreadLocal(std::vector<std::string> sites);
    ~ScopedThreadLocal();
    ScopedThreadLocal(const ScopedThreadLocal &) = delete;
    ScopedThreadLocal &operator=(const ScopedThreadLocal &) = delete;

  private:
    size_t restoreSize_;
};

} // namespace failpoint
} // namespace ll

#define LL_FAILPOINT(site) (::ll::failpoint::shouldFail(site))

#endif // LL_SUPPORT_FAILPOINT_H
