/**
 * @file
 * RAII span tracer with Chrome trace-event JSON export.
 *
 * Spans record wall-clock intervals (steady clock) with a name, a
 * category, and optional key/value args, and nest naturally because
 * they are scoped objects. Tracing is runtime-gated: setting the
 * LL_TRACE environment variable to a file path enables recording and
 * registers an atexit flush to that path; when unset, constructing a
 * Span costs exactly one relaxed atomic load and one branch, touches
 * no other state, and performs no allocation (tests assert this).
 *
 * The recorded buffer is process-global behind a mutex; each thread
 * gets a dense tid from an atomic counter the first time it completes
 * a span. Export is the Chrome trace-event "complete event" ("ph":"X")
 * format, loadable in Perfetto (https://ui.perfetto.dev) or
 * chrome://tracing. See DESIGN.md "Observability" for the span
 * taxonomy the pipeline emits.
 */

#ifndef LL_SUPPORT_TRACE_H
#define LL_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ll {
namespace trace {

namespace detail {
extern std::atomic<bool> gEnabled;
int64_t nowNs();
} // namespace detail

/** True when spans are being recorded. One relaxed load — this is the
 *  whole cost of a disabled Span construction. */
inline bool enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/** One key/value pair attached to a span. The value is pre-rendered;
 *  `quoted` distinguishes JSON strings from bare numbers. */
struct Arg
{
    const char *key;
    std::string value;
    bool quoted;
};

/** A completed span in the event buffer (snapshot/test surface). */
struct Event
{
    std::string name;
    std::string cat;
    double tsUs;  ///< start, microseconds since the trace epoch
    double durUs; ///< duration in microseconds
    int tid;      ///< dense per-thread id (not the OS tid)
    std::vector<Arg> args;
};

/**
 * An RAII span. Construct at the top of the scope you want timed;
 * destruction records the completed event. `name` and `cat` must be
 * string literals (or otherwise outlive the span).
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = "ll")
    {
        if (!enabled())
            return;
        begin(name, cat);
    }
    ~Span()
    {
        if (active_)
            end();
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach an arg. No-ops (and does not allocate for numeric /
     *  C-string values) when the span is inactive. */
    void arg(const char *key, int64_t value);
    void arg(const char *key, int value)
    {
        arg(key, static_cast<int64_t>(value));
    }
    void arg(const char *key, double value);
    void arg(const char *key, const char *value);
    void arg(const char *key, const std::string &value);

    bool active() const { return active_; }

    /** Record the span now instead of at scope exit. */
    void finish()
    {
        if (active_)
            end();
    }

  private:
    void begin(const char *name, const char *cat);
    void end();

    bool active_ = false;
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    int64_t startNs_ = 0;
    std::vector<Arg> args_;
};

/// Control / snapshot surface (used by llstat and the tests) ----------

/** Enable or disable recording. LL_TRACE in the environment enables it
 *  at startup; tests flip it directly. */
void setEnabled(bool on);

/** Where flushToConfiguredPath / the atexit hook write the trace. */
void setOutputPath(const std::string &path);
std::string outputPath();

/** Drop all recorded events and the dropped-event counter. */
void clear();

int64_t eventCount();

/** Events discarded because the buffer hit its soft cap. */
int64_t droppedCount();

std::vector<Event> snapshotEvents();

/** Write the whole buffer as Chrome trace-event JSON. */
void writeChromeTrace(std::ostream &os);

/** Write the buffer to outputPath(), if one is set. Returns false when
 *  no path is configured or the file cannot be opened. */
bool flushToConfiguredPath();

/**
 * Flush-and-clear for long-running multi-engine processes that want
 * per-run traces: write whatever the buffer holds to outputPath() (a
 * no-op when no path is configured or the buffer is empty), then drop
 * every recorded event *and* the dropped-event counter, so the next
 * run starts from an empty recorder with its full soft cap available.
 * Exposed on the CLI as `llstat --trace-reset`. Returns true when a
 * non-empty buffer was successfully written before clearing.
 */
bool flushAndClear();

} // namespace trace
} // namespace ll

#endif // LL_SUPPORT_TRACE_H
