#include "support/diagnostics.h"

namespace ll {
namespace detail {

std::string
formatLocation(const char *file, int line, const char *cond)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": check failed: " << cond;
    return oss.str();
}

void
throwLogicError(const char *file, int line, const char *cond,
                const std::string &msg)
{
    std::string full = formatLocation(file, line, cond);
    if (!msg.empty())
        full += ": " + msg;
    throw LogicError(full);
}

void
throwUserError(const std::string &msg)
{
    throw UserError(msg);
}

} // namespace detail
} // namespace ll
