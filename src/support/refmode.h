/**
 * @file
 * Global reference-mode switch for the word-parallel F2 core.
 *
 * Every hot bit-level loop in the library (F2Matrix application and
 * elimination, LinearLayout::applyFlat, wavefront counting and
 * enumeration) keeps its original scalar implementation as a
 * `*_reference` function and grew a 64-lane word-parallel rewrite. The
 * two must be bit-identical; this switch lets a whole process run on
 * the reference path so the differential suite, the `llfuzz --diff-f2`
 * fuzzer, and the fig9 speedup-guard benchmark can compare entire
 * planning runs — plans, checksums, and wall time — across the two
 * implementations.
 *
 * The mode is a process-wide atomic read at full-seq-cst only on the
 * slow path; hot loops read it once per call with relaxed ordering.
 * Setting LL_F2_REFERENCE=1 in the environment turns the mode on at
 * startup for any binary that links this file.
 */

#ifndef LL_SUPPORT_REFMODE_H
#define LL_SUPPORT_REFMODE_H

#include <atomic>

namespace ll {
namespace refmode {

namespace detail {
extern std::atomic<bool> gReferenceMode;
} // namespace detail

/** True when the process should take the scalar reference paths. */
inline bool
active()
{
    return detail::gReferenceMode.load(std::memory_order_relaxed);
}

/** Flip the mode (tests and tools; not thread-safe vs. running work). */
void set(bool on);

/** RAII scope for tests: reference mode inside, restored on exit. */
class Scoped
{
  public:
    explicit Scoped(bool on = true) : prev_(active()) { set(on); }
    ~Scoped() { set(prev_); }
    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;

  private:
    bool prev_;
};

} // namespace refmode
} // namespace ll

#endif // LL_SUPPORT_REFMODE_H
