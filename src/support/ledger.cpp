#include "support/ledger.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "support/failpoint.h"
#include "support/metrics.h"

namespace ll {
namespace ledger {

namespace detail {

std::atomic<bool> gEnabled{false};

} // namespace detail

namespace {

void
atexitFlush()
{
    Ledger &l = Ledger::instance();
    if (l.recordCount() > 0)
        l.flushToConfiguredPath();
}

// Reads LL_LEDGER once at startup for any binary that links this file,
// mirroring the tracer's LL_TRACE contract.
struct EnvInit
{
    EnvInit()
    {
        const char *p = std::getenv("LL_LEDGER");
        if (p != nullptr && *p != '\0') {
            Ledger::instance().setOutputPath(p);
            Ledger::instance().setEnabled(true);
            std::atexit(atexitFlush);
        }
    }
};
EnvInit gEnvInit;

std::string
hex64(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** FNV-1a over the dedup key fields. */
uint64_t
dedupKey(uint64_t srcHash, uint64_t dstHash, int elemBytes,
         uint64_t specId, const std::string &startRung)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
        h ^= h >> 29;
    };
    mix(srcHash);
    mix(dstHash);
    mix(static_cast<uint64_t>(elemBytes));
    mix(specId);
    for (char c : startRung)
        mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    return h;
}

} // namespace

std::string
CalibrationRecord::toJsonl() const
{
    std::string out = "{\"src\":\"" + hex64(srcHash) + "\",\"dst\":\"" +
                      hex64(dstHash) + "\",\"spec\":\"" + hex64(specId) +
                      "\",\"elem\":" + std::to_string(elemBytes) +
                      ",\"start_rung\":";
    appendJsonString(out, startRung);
    out += ",\"rung\":";
    appendJsonString(out, rung);
    out += ",\"outcome\":";
    appendJsonString(out, outcome);
    out += ",\"reason\":";
    appendJsonString(out, reason);
    out += std::string(",\"terminal\":") + (terminal ? "true" : "false");
    out += ",\"predicted_cycles\":" + formatDouble(predictedCycles);
    out += ",\"measured_cycles\":" + formatDouble(measuredCycles);
    out += ",\"store_wf\":" + std::to_string(storeWavefronts);
    out += ",\"load_wf\":" + std::to_string(loadWavefronts);
    out += ",\"window_elems\":" + std::to_string(windowElems);
    out += ",\"pad_interval\":" + std::to_string(padInterval);
    out += ",\"pad_elems\":" + std::to_string(padElems);
    out += ",\"vec_bits\":" + std::to_string(vecBits);
    out += std::string(",\"demoted\":") + (demoted ? "true" : "false");
    out += std::string(",\"deadline\":") +
           (deadlineShaped ? "true" : "false");
    out += "}";
    return out;
}

Ledger &
Ledger::instance()
{
    static Ledger l;
    return l;
}

void
Ledger::setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

void
Ledger::setOutputPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    path_ = path;
}

std::string
Ledger::outputPath() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return path_;
}

bool
Ledger::beginConversion(uint64_t srcHash, uint64_t dstHash, int elemBytes,
                        uint64_t specId, const std::string &startRung)
{
    if (!enabled())
        return false;
    // Same hygiene as the plan cache's insert policy: a fault-injected
    // planning run is not a calibration sample.
    if (failpoint::anyActive())
        return false;
    const uint64_t key =
        dedupKey(srcHash, dstHash, elemBytes, specId, startRung);
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!seen_.insert(key).second) {
            static auto &skips =
                metrics::counter("plan.calib.dedup_skips");
            skips.inc();
            return false;
        }
        ++conversions_;
    }
    static auto &conversions =
        metrics::counter("plan.calib.conversions");
    conversions.inc();
    return true;
}

void
Ledger::append(CalibrationRecord record)
{
    static auto &records = metrics::counter("plan.calib.records");
    records.inc();
    if (record.terminal) {
        static auto &terminals =
            metrics::counter("plan.calib.terminal_records");
        terminals.inc();
    }
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(std::move(record));
}

int64_t
Ledger::recordCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(records_.size());
}

int64_t
Ledger::conversionCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return conversions_;
}

std::vector<std::string>
Ledger::sortedLines() const
{
    std::vector<std::string> lines;
    {
        std::lock_guard<std::mutex> lock(mu_);
        lines.reserve(records_.size());
        for (const auto &r : records_)
            lines.push_back(r.toJsonl());
    }
    std::sort(lines.begin(), lines.end());
    return lines;
}

void
Ledger::writeJsonl(std::ostream &os) const
{
    for (const auto &line : sortedLines())
        os << line << "\n";
}

bool
Ledger::flushToConfiguredPath() const
{
    const std::string path = outputPath();
    if (path.empty())
        return false;
    std::ofstream os(path);
    if (!os.good())
        return false;
    writeJsonl(os);
    return os.good();
}

void
Ledger::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    seen_.clear();
    conversions_ = 0;
}

} // namespace ledger
} // namespace ll
