/**
 * @file
 * Small string helpers for diagnostics and layout pretty-printing.
 */

#ifndef LL_SUPPORT_STRING_UTILS_H
#define LL_SUPPORT_STRING_UTILS_H

#include <sstream>
#include <string>
#include <vector>

namespace ll {

/** Join the string form of each element with a separator. */
template <typename Range>
std::string
join(const Range &range, const std::string &sep)
{
    std::ostringstream oss;
    bool first = true;
    for (const auto &item : range) {
        if (!first)
            oss << sep;
        oss << item;
        first = false;
    }
    return oss.str();
}

/** Render a vector like [a, b, c]. */
template <typename T>
std::string
toString(const std::vector<T> &v)
{
    return "[" + join(v, ", ") + "]";
}

} // namespace ll

#endif // LL_SUPPORT_STRING_UTILS_H
