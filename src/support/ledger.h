/**
 * @file
 * Plan-provenance ledger: the calibration corpus for the cost model.
 *
 * Every rung the conversion planner evaluates appends a
 * CalibrationRecord — (layout-pair structural hashes, GpuSpec
 * fingerprint, rung, accept/reject outcome, predicted *selection* cost,
 * measured enumerated wavefront totals and the *reporting* cost they
 * imply, and the chosen plan parameters: window size,
 * padInterval/padElems, vectorization width, demotion / deadline
 * shaping flags) — into a process-global, thread-safe ledger. This is
 * the predicted-vs-measured corpus the profile-guided cost model
 * (ROADMAP item 1) trains on, and what `tools/llprof` reports over.
 *
 * Recording is runtime-gated exactly like the span tracer: set
 * `LL_LEDGER=/path/to/ledger.jsonl` and any binary in the repo records
 * and flushes that file at exit; unset, the per-conversion cost is one
 * relaxed atomic load. Drivers (llserve --ledger, ledger_test, the
 * bench harness) can also enable it programmatically.
 *
 * Determinism contract (enforced by `ledger_test`): records carry no
 * timestamps, thread ids or sequence numbers — a record is a pure
 * function of the conversion inputs — and the JSONL export is sorted,
 * so the same corpus produces byte-identical ledgers no matter how
 * planning work was threaded.
 *
 * Attribution contract: beginConversion() deduplicates on
 * (src, dst, elemBytes, spec, startRung) — the planning function's
 * exact input — so each planned conversion contributes its records
 * exactly once per run even when many CompileService workers race on
 * the same key (the singleflight leader is the only planner, and even
 * cache-disabled batch runs cannot double count). Repeat plannings of
 * a key add no information: planning is deterministic, their records
 * would be byte-identical. Demotion re-plans enter with a different
 * startRung and are recorded as their own conversion with the demoted
 * flag set.
 *
 * Fault-injection hygiene mirrors the plan cache: while any failpoint
 * is active (globally or on this thread's overlay), beginConversion()
 * refuses — a fuzzing run can never pollute a calibration corpus.
 */

#ifndef LL_SUPPORT_LEDGER_H
#define LL_SUPPORT_LEDGER_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace ll {
namespace ledger {

namespace detail {
extern std::atomic<bool> gEnabled;
} // namespace detail

/** True when records are being kept. One relaxed load — the whole cost
 *  of a disabled conversion. */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/**
 * One evaluated rung of one planned conversion. `rung` and `startRung`
 * use the span-taxonomy rung names (noop, register-permute,
 * warp-shuffle, shared-memory, shared-padded, shared-scalar); exactly
 * one record per conversion is `terminal` (the accepted rung, or the
 * last rejected rung when every rung failed under injection).
 */
struct CalibrationRecord
{
    uint64_t srcHash = 0;  ///< LinearLayout::structuralHash of the source
    uint64_t dstHash = 0;  ///< ... and of the destination
    uint64_t specId = 0;   ///< sim::GpuSpec::fingerprint
    int elemBytes = 0;
    std::string startRung; ///< rung planning resumed at (demotions)
    std::string rung;      ///< rung this record describes
    std::string outcome;   ///< accept | reject
    std::string reason;    ///< rejection rendering; empty on accept
    bool terminal = false;
    /** Selection cost: estimateCycles, monotone in the rung order by
     *  construction (worst-case bounds on the fallback rungs). */
    double predictedCycles = 0.0;
    /** Reporting cost: the cycles the measured enumerated wavefront
     *  totals imply (ConversionPlan::reportingCycles). 0 when the rung
     *  has no shared accounting. */
    double measuredCycles = 0.0;
    int64_t storeWavefronts = 0; ///< enumerated whole-pass totals
    int64_t loadWavefronts = 0;
    /** Chosen plan parameters (0 where the rung has none). */
    int64_t windowElems = 0;
    int64_t padInterval = 0;
    int64_t padElems = 0;
    int vecBits = 0;
    bool demoted = false;        ///< planning resumed below the top rung
    bool deadlineShaped = false; ///< deadline expiry shaped this plan

    /** One JSONL line (no trailing newline); deterministic field
     *  order, hashes rendered as fixed-width hex. */
    std::string toJsonl() const;
};

/**
 * The process-global ledger. Thread-safe: append and dedup share one
 * mutex; conversions are coarse enough (one lock per evaluated rung)
 * that this never shows up next to the planning work itself.
 */
class Ledger
{
  public:
    static Ledger &instance();

    void setEnabled(bool on);

    /** Where flushToConfiguredPath / the atexit hook write the JSONL. */
    void setOutputPath(const std::string &path);
    std::string outputPath() const;

    /**
     * Claim recording rights for one planning run. Returns true exactly
     * once per (src, dst, elemBytes, spec, startRung) per process run
     * (until clear()); false when recording is disabled, the key was
     * already recorded, or any failpoint is active (see file comment).
     */
    bool beginConversion(uint64_t srcHash, uint64_t dstHash,
                         int elemBytes, uint64_t specId,
                         const std::string &startRung);

    void append(CalibrationRecord record);

    int64_t recordCount() const;
    /** Conversions that claimed recording rights (terminal records). */
    int64_t conversionCount() const;

    /** Every record rendered to JSONL, sorted (the export order). */
    std::vector<std::string> sortedLines() const;

    /** Write the sorted JSONL document (one record per line). */
    void writeJsonl(std::ostream &os) const;

    /** Write to outputPath(); false when unset or unopenable. */
    bool flushToConfiguredPath() const;

    /** Drop every record and the dedup set (tests, per-bench carving). */
    void clear();

  private:
    Ledger() = default;

    mutable std::mutex mu_;
    std::vector<CalibrationRecord> records_;
    std::unordered_set<uint64_t> seen_;
    int64_t conversions_ = 0;
    std::string path_;
};

} // namespace ledger
} // namespace ll

#endif // LL_SUPPORT_LEDGER_H
