#include "support/result.h"

#include <sstream>

namespace ll {

std::string
toString(DiagCode code)
{
    switch (code) {
      case DiagCode::InvalidInput:
        return "invalid-input";
      case DiagCode::NonPow2Bridgeable:
        return "non-pow2-bridgeable";
      case DiagCode::ShuffleNotApplicable:
        return "shuffle-not-applicable";
      case DiagCode::ShuffleDegenerate:
        return "shuffle-degenerate";
      case DiagCode::SwizzleBasisIncomplete:
        return "swizzle-basis-incomplete";
      case DiagCode::LegacySwizzleUnavailable:
        return "legacy-swizzle-unavailable";
      case DiagCode::TileMismatch:
        return "tile-mismatch";
      case DiagCode::PaddedUnavailable:
        return "padded-unavailable";
      case DiagCode::ScalarUnavailable:
        return "scalar-unavailable";
      case DiagCode::CtaBudgetExceeded:
        return "cta-budget-exceeded";
      case DiagCode::FailpointInjected:
        return "failpoint-injected";
      case DiagCode::DeadlineExceeded:
        return "deadline-exceeded";
      case DiagCode::ExecutionFailed:
        return "execution-failed";
      case DiagCode::PlannerInternalError:
        return "planner-internal-error";
    }
    return "unknown";
}

std::string
toString(ExecError code)
{
    switch (code) {
      case ExecError::PlanShapeMismatch:
        return "plan-shape-mismatch";
      case ExecError::LaneOutOfRange:
        return "lane-out-of-range";
      case ExecError::RegisterOutOfRange:
        return "register-out-of-range";
      case ExecError::NonInvertibleStep:
        return "non-invertible-step";
      case ExecError::CrossWarpSource:
        return "cross-warp-source";
      case ExecError::SharedWindowOverflow:
        return "shared-window-overflow";
      case ExecError::BankBudgetExceeded:
        return "bank-budget-exceeded";
      case ExecError::UnfilledSlot:
        return "unfilled-slot";
      case ExecError::FailpointInjected:
        return "failpoint-injected";
      case ExecError::ExecInternalError:
        return "exec-internal-error";
    }
    return "unknown";
}

std::string
ExecDiagnostic::toString() const
{
    std::ostringstream os;
    os << "[" << stage << "] " << ll::toString(code);
    if (!message.empty())
        os << ": " << message;
    return os.str();
}

Diagnostic
ExecDiagnostic::toDiagnostic() const
{
    return makeDiag(DiagCode::ExecutionFailed, stage,
                    ll::toString(code) +
                        (message.empty() ? "" : ": " + message));
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << "[" << stage << "] " << ll::toString(code);
    if (!message.empty())
        os << ": " << message;
    return os.str();
}

std::string
PlanDiagnostics::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < notes.size(); ++i)
        os << (i ? "; " : "") << notes[i].toString();
    return os.str();
}

} // namespace ll
