#include "support/result.h"

#include <sstream>

namespace ll {

std::string
toString(DiagCode code)
{
    switch (code) {
      case DiagCode::InvalidInput:
        return "invalid-input";
      case DiagCode::ShuffleNotApplicable:
        return "shuffle-not-applicable";
      case DiagCode::ShuffleDegenerate:
        return "shuffle-degenerate";
      case DiagCode::SwizzleBasisIncomplete:
        return "swizzle-basis-incomplete";
      case DiagCode::LegacySwizzleUnavailable:
        return "legacy-swizzle-unavailable";
      case DiagCode::TileMismatch:
        return "tile-mismatch";
      case DiagCode::PaddedUnavailable:
        return "padded-unavailable";
      case DiagCode::ScalarUnavailable:
        return "scalar-unavailable";
      case DiagCode::FailpointInjected:
        return "failpoint-injected";
      case DiagCode::PlannerInternalError:
        return "planner-internal-error";
    }
    return "unknown";
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << "[" << stage << "] " << ll::toString(code);
    if (!message.empty())
        os << ": " << message;
    return os.str();
}

std::string
PlanDiagnostics::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < notes.size(); ++i)
        os << (i ? "; " : "") << notes[i].toString();
    return os.str();
}

} // namespace ll
