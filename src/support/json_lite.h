/**
 * @file
 * A minimal recursive-descent JSON parser for tooling and tests.
 *
 * This is deliberately not a serialization framework: the repo emits
 * JSON (Chrome traces, metrics exposition, BENCH_*.json reports) with
 * hand-written writers, and the only consumers that *read* JSON back
 * are validators — llstat --validate-bench-json and the trace
 * golden-file test. Those need strict well-formedness checking and
 * simple structural lookups, nothing more.
 *
 * Strictness: the full input must be one JSON value (trailing garbage
 * is an error), objects/arrays must be properly closed, strings must
 * use valid escapes, and numbers must parse. Parse failures return
 * std::nullopt from parse(); there are no exceptions and no partial
 * results.
 */

#ifndef LL_SUPPORT_JSON_LITE_H
#define LL_SUPPORT_JSON_LITE_H

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ll {
namespace jsonlite {

struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> items;                ///< Kind::Array
    std::map<std::string, Value> members;    ///< Kind::Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        auto it = members.find(key);
        return it == members.end() ? nullptr : &it->second;
    }
};

namespace detail {

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    std::optional<Value> run()
    {
        skipWs();
        Value v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != s_.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool parseValue(Value &out)
    {
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        switch (c) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"':
            out.kind = Value::Kind::String;
            return parseString(out.str);
        case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
        default:
            return parseNumber(out);
        }
    }

    bool parseObject(Value &out)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"' || !parseString(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.members[key] = std::move(v);
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool parseArray(Value &out)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // '"'
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= s_.size())
                    return false;
                char e = s_[pos_ + 1];
                switch (e) {
                case '"':
                    out += '"';
                    break;
                case '\\':
                    out += '\\';
                    break;
                case '/':
                    out += '/';
                    break;
                case 'b':
                    out += '\b';
                    break;
                case 'f':
                    out += '\f';
                    break;
                case 'n':
                    out += '\n';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'u': {
                    if (pos_ + 5 >= s_.size())
                        return false;
                    for (int i = 2; i < 6; ++i) {
                        if (!std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + static_cast<size_t>(i)])))
                            return false;
                    }
                    // Validators never need the decoded code point;
                    // keep the escape verbatim.
                    out.append(s_, pos_, 6);
                    pos_ += 4;
                    break;
                }
                default:
                    return false;
                }
                pos_ += 2;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char inside a string
            out += c;
            ++pos_;
        }
        return false; // unterminated
    }

    bool parseNumber(Value &out)
    {
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            size_t before = pos_;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])))
                ++pos_;
            return pos_ > before;
        };
        if (!digits())
            return false;
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return false;
        }
        out.kind = Value::Kind::Number;
        out.number = std::strtod(s_.c_str() + start, nullptr);
        return true;
    }

    const std::string &s_;
    size_t pos_ = 0;
};

} // namespace detail

/** Parse one complete JSON document; nullopt on any malformation. */
inline std::optional<Value>
parse(const std::string &text)
{
    return detail::Parser(text).run();
}

} // namespace jsonlite
} // namespace ll

#endif // LL_SUPPORT_JSON_LITE_H
