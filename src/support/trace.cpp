#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>

namespace ll {
namespace trace {

namespace detail {

std::atomic<bool> gEnabled{false};

int64_t nowNs()
{
    using namespace std::chrono;
    return duration_cast<nanoseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

} // namespace detail

namespace {

// Soft cap on the buffer: a runaway loop should not OOM the process.
// Past the cap, completed spans are counted as dropped instead.
constexpr size_t kMaxEvents = size_t(1) << 20;

struct State
{
    std::mutex mu;
    std::vector<Event> events;
    int64_t dropped = 0;
    int64_t epochNs;
    std::string path;

    State() : epochNs(detail::nowNs()) {}
};

State &state()
{
    static State s;
    return s;
}

int threadTid()
{
    static std::atomic<int> next{0};
    thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void atexitFlush()
{
    if (eventCount() > 0)
        flushToConfiguredPath();
}

// Reads LL_TRACE once at startup for any binary that links the tracer.
struct EnvInit
{
    EnvInit()
    {
        const char *p = std::getenv("LL_TRACE");
        if (p != nullptr && *p != '\0') {
            setOutputPath(p);
            detail::gEnabled.store(true, std::memory_order_relaxed);
            std::atexit(atexitFlush);
        }
    }
};
EnvInit gEnvInit;

void jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // namespace

void Span::begin(const char *name, const char *cat)
{
    active_ = true;
    name_ = name;
    cat_ = cat;
    startNs_ = detail::nowNs();
}

void Span::end()
{
    const int64_t endNs = detail::nowNs();
    active_ = false;

    State &s = state();
    Event ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.tsUs = double(startNs_ - s.epochNs) / 1e3;
    ev.durUs = double(endNs - startNs_) / 1e3;
    ev.tid = threadTid();
    ev.args = std::move(args_);

    std::lock_guard<std::mutex> lock(s.mu);
    if (s.events.size() >= kMaxEvents) {
        ++s.dropped;
        return;
    }
    s.events.push_back(std::move(ev));
}

void Span::arg(const char *key, int64_t value)
{
    if (!active_)
        return;
    args_.push_back(Arg{key, std::to_string(value), false});
}

void Span::arg(const char *key, double value)
{
    if (!active_)
        return;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    args_.push_back(Arg{key, buf, false});
}

void Span::arg(const char *key, const char *value)
{
    if (!active_)
        return;
    args_.push_back(Arg{key, value, true});
}

void Span::arg(const char *key, const std::string &value)
{
    if (!active_)
        return;
    args_.push_back(Arg{key, value, true});
}

void setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

void setOutputPath(const std::string &path)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.path = path;
}

std::string outputPath()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.path;
}

void clear()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.events.clear();
    s.dropped = 0;
}

int64_t eventCount()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return static_cast<int64_t>(s.events.size());
}

int64_t droppedCount()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.dropped;
}

std::vector<Event> snapshotEvents()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.events;
}

void writeChromeTrace(std::ostream &os)
{
    const std::vector<Event> events = snapshotEvents();
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const Event &ev : events) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"";
        jsonEscape(os, ev.name);
        os << "\",\"cat\":\"";
        jsonEscape(os, ev.cat);
        os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3f", ev.tsUs);
        os << ",\"ts\":" << buf;
        std::snprintf(buf, sizeof(buf), "%.3f", ev.durUs);
        os << ",\"dur\":" << buf;
        if (!ev.args.empty()) {
            os << ",\"args\":{";
            bool firstArg = true;
            for (const Arg &a : ev.args) {
                if (!firstArg)
                    os << ",";
                firstArg = false;
                os << "\"";
                jsonEscape(os, a.key);
                os << "\":";
                if (a.quoted) {
                    os << "\"";
                    jsonEscape(os, a.value);
                    os << "\"";
                } else {
                    os << a.value;
                }
            }
            os << "}";
        }
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ns\"}\n";
}

bool flushToConfiguredPath()
{
    const std::string path = outputPath();
    if (path.empty())
        return false;
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return out.good();
}

bool flushAndClear()
{
    const bool flushed = eventCount() > 0 && flushToConfiguredPath();
    clear();
    return flushed;
}

} // namespace trace
} // namespace ll
