/**
 * @file
 * Bit-manipulation helpers used throughout the F2 algebra and layout code.
 *
 * All layout math in this library operates on power-of-two sized spaces,
 * so "log2 of an exact power of two" and "is this a power of two" come up
 * constantly. These wrappers add the assertions that the <bit> intrinsics
 * omit.
 */

#ifndef LL_SUPPORT_BITS_H
#define LL_SUPPORT_BITS_H

#include <bit>
#include <cstdint>

#include "support/diagnostics.h"

namespace ll {

/** True iff x is a (positive) power of two. */
constexpr bool
isPowerOf2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of an exact power of two; asserts on other inputs. */
inline int
log2Exact(uint64_t x)
{
    llAssert(isPowerOf2(x), "log2Exact(" << x << "): not a power of two");
    return std::countr_zero(x);
}

/** Ceiling of log2; log2Ceil(0) and log2Ceil(1) are both 0. */
constexpr int
log2Ceil(uint64_t x)
{
    if (x <= 1)
        return 0;
    return 64 - std::countl_zero(x - 1);
}

/** Floor of log2 for x >= 1. */
inline int
log2Floor(uint64_t x)
{
    llAssert(x >= 1, "log2Floor(0) undefined");
    return 63 - std::countl_zero(x);
}

/** Number of set bits. */
constexpr int
popcount(uint64_t x)
{
    return std::popcount(x);
}

/** Extract bit i of x as 0 or 1. */
constexpr uint64_t
getBit(uint64_t x, int i)
{
    return (x >> i) & 1;
}

/** Return x with bit i set to v (v must be 0 or 1). */
constexpr uint64_t
setBit(uint64_t x, int i, uint64_t v)
{
    return (x & ~(uint64_t(1) << i)) | (v << i);
}

/** Smallest power of two >= x. */
constexpr uint64_t
nextPowerOf2(uint64_t x)
{
    return uint64_t(1) << log2Ceil(x);
}

/** Index of the highest set bit; x must be nonzero. */
inline int
leadingBit(uint64_t x)
{
    llAssert(x != 0, "leadingBit(0) undefined");
    return 63 - std::countl_zero(x);
}

/**
 * In-place 64x64 bit-matrix transpose by recursive block swaps (the
 * classic Hacker's Delight butterfly): after the call, bit i of m[j] is
 * the old bit j of m[i]. Six rounds of masked swap-XORs replace the
 * 4096 single-bit get/set operations of the naive transpose — this is
 * what makes building echelon rows from column-packed storage
 * word-parallel.
 */
inline void
transpose64(uint64_t a[64])
{
    // LSB-first variant: bit 0 is row/column 0. (Hacker's Delight prints
    // the MSB-first form, whose result is the transpose of the
    // bit-reversed matrix under this convention.)
    uint64_t m = 0x00000000ffffffffull;
    for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (int k = 0; k < 64; k = ((k | j) + 1) & ~j) {
            uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
        }
    }
}

} // namespace ll

#endif // LL_SUPPORT_BITS_H
