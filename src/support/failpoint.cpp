#include "support/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

namespace ll {
namespace failpoint {

namespace {

struct SiteState
{
    bool active = false;
    int64_t remaining = -1; ///< shots left; < 0 means unlimited
    int64_t hits = 0;
};

/**
 * One mutex guards every registry entry point so multi-threaded engine
 * work (and the concurrency smoke test) cannot race the site map. The
 * lock is taken once per public function; the *Locked helpers below
 * assume it is already held, which keeps ensureEnvParsedLocked's calls
 * into activation non-recursive.
 */
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, SiteState> &
registry()
{
    static std::map<std::string, SiteState> sites;
    return sites;
}

void
activateLocked(const std::string &site, int64_t limit)
{
    SiteState &s = registry()[site];
    s.active = true;
    s.remaining = limit;
}

/** Parse LL_FAILPOINTS once, on first registry use. clearAll() does not
 *  re-trigger parsing — tests own the registry after touching it. */
void
ensureEnvParsedLocked()
{
    static bool parsed = false;
    if (parsed)
        return;
    parsed = true;
    const char *env = std::getenv("LL_FAILPOINTS");
    if (!env)
        return;
    std::istringstream is(env);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty())
            continue;
        int64_t limit = -1;
        auto colon = tok.find(':');
        if (colon != std::string::npos) {
            limit = std::strtoll(tok.c_str() + colon + 1, nullptr, 10);
            tok.resize(colon);
        }
        if (!tok.empty())
            activateLocked(tok, limit);
    }
}

/** The calling thread's activation overlay (a stack: ScopedThreadLocal
 *  pushes on entry and truncates back on exit). */
std::vector<std::string> &
threadLocalSites()
{
    thread_local std::vector<std::string> sites;
    return sites;
}

} // namespace

bool
shouldFail(const std::string &site)
{
    bool localHit;
    {
        const auto &local = threadLocalSites();
        localHit =
            std::find(local.begin(), local.end(), site) != local.end();
    }
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureEnvParsedLocked();
    SiteState &s = registry()[site];
    ++s.hits;
    // Global activations win so their shot budget drains exactly as
    // configured even when a thread-local overlay names the same site.
    if (s.active && s.remaining != 0) {
        if (s.remaining > 0)
            --s.remaining;
        return true;
    }
    return localHit;
}

void
activate(const std::string &site, int64_t limit)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureEnvParsedLocked();
    activateLocked(site, limit);
}

void
deactivate(const std::string &site)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureEnvParsedLocked();
    SiteState &s = registry()[site];
    s.active = false;
    s.remaining = -1;
}

void
clearAll()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureEnvParsedLocked();
    registry().clear();
}

int64_t
hitCount(const std::string &site)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureEnvParsedLocked();
    auto it = registry().find(site);
    return it == registry().end() ? 0 : it->second.hits;
}

std::vector<std::string>
activeSites()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureEnvParsedLocked();
    std::vector<std::string> out;
    for (const auto &[name, state] : registry()) {
        if (state.active && state.remaining != 0)
            out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
threadLocalActiveSites()
{
    std::vector<std::string> out = threadLocalSites();
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool
anyActive()
{
    if (!threadLocalSites().empty())
        return true;
    std::lock_guard<std::mutex> lock(registryMutex());
    ensureEnvParsedLocked();
    for (const auto &[name, state] : registry()) {
        if (state.active && state.remaining != 0)
            return true;
    }
    return false;
}

ScopedThreadLocal::ScopedThreadLocal(std::vector<std::string> sites)
    : restoreSize_(threadLocalSites().size())
{
    auto &local = threadLocalSites();
    for (auto &s : sites)
        local.push_back(std::move(s));
}

ScopedThreadLocal::~ScopedThreadLocal()
{
    threadLocalSites().resize(restoreSize_);
}

} // namespace failpoint
} // namespace ll
