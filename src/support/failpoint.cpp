#include "support/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

namespace ll {
namespace failpoint {

namespace {

struct SiteState
{
    bool active = false;
    int64_t remaining = -1; ///< shots left; < 0 means unlimited
    int64_t hits = 0;
};

std::map<std::string, SiteState> &
registry()
{
    static std::map<std::string, SiteState> sites;
    return sites;
}

/** Parse LL_FAILPOINTS once, on first registry use. clearAll() does not
 *  re-trigger parsing — tests own the registry after touching it. */
void
ensureEnvParsed()
{
    static bool parsed = false;
    if (parsed)
        return;
    parsed = true;
    const char *env = std::getenv("LL_FAILPOINTS");
    if (!env)
        return;
    std::istringstream is(env);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty())
            continue;
        int64_t limit = -1;
        auto colon = tok.find(':');
        if (colon != std::string::npos) {
            limit = std::strtoll(tok.c_str() + colon + 1, nullptr, 10);
            tok.resize(colon);
        }
        if (!tok.empty())
            activate(tok, limit);
    }
}

} // namespace

bool
shouldFail(const std::string &site)
{
    ensureEnvParsed();
    SiteState &s = registry()[site];
    ++s.hits;
    if (!s.active)
        return false;
    if (s.remaining == 0)
        return false;
    if (s.remaining > 0)
        --s.remaining;
    return true;
}

void
activate(const std::string &site, int64_t limit)
{
    ensureEnvParsed();
    SiteState &s = registry()[site];
    s.active = true;
    s.remaining = limit;
}

void
deactivate(const std::string &site)
{
    ensureEnvParsed();
    SiteState &s = registry()[site];
    s.active = false;
    s.remaining = -1;
}

void
clearAll()
{
    ensureEnvParsed();
    registry().clear();
}

int64_t
hitCount(const std::string &site)
{
    ensureEnvParsed();
    auto it = registry().find(site);
    return it == registry().end() ? 0 : it->second.hits;
}

std::vector<std::string>
activeSites()
{
    ensureEnvParsed();
    std::vector<std::string> out;
    for (const auto &[name, state] : registry()) {
        if (state.active && state.remaining != 0)
            out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace failpoint
} // namespace ll
