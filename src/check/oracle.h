/**
 * @file
 * Differential correctness oracle for conversion plans.
 *
 * The planner of Section 5.4 claims every lowering it emits — no-op,
 * register permute, warp shuffle, swizzled shared memory — moves every
 * tensor element to exactly the register the destination layout demands.
 * This module checks that claim the slow, trusted way: enumerate every
 * (register, lane, warp) index of the source layout, tag it with its
 * flattened tensor element (dense F2 matrix application, no simulator
 * shortcuts), execute the plan on that register file, and compare the
 * result element-for-element against the destination layout's demands.
 *
 * Shared-memory plans are additionally audited for bank conflicts: the
 * wavefronts the simulator measures while executing must equal the
 * analytic Lemma 9.4 numbers the plan was priced with. Any divergence is
 * a bug in either the cost model or the simulator, and fails the check.
 */

#ifndef LL_CHECK_ORACLE_H
#define LL_CHECK_ORACLE_H

#include <functional>
#include <string>

#include "check/generators.h"
#include "codegen/conversion.h"
#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"

namespace ll {
namespace check {

/** Everything one oracle run learned about one plan. */
struct OracleReport
{
    codegen::ConversionKind kind = codegen::ConversionKind::NoOp;

    /** Plan shape matched the layouts (register counts, warp sizes). */
    bool structureOk = true;
    int64_t elementsChecked = 0;
    /** Destination registers holding the wrong element. */
    int64_t mismatches = 0;
    /** Data movements that broke the plan kind's locality promise
     *  (register permutes leaving the thread, etc.). */
    int64_t localityViolations = 0;

    // Per-access bank-conflict audit (unpadded shared plans: the
    // Lemma 9.4 analytic numbers must match what the simulator measures
    // on every access).
    bool audited = false;
    int64_t analyticStorePerAccess = 0;
    int64_t analyticLoadPerAccess = 0;
    int64_t storeInstructions = 0;
    int64_t loadInstructions = 0;
    int64_t measuredStoreWavefronts = 0;
    int64_t measuredLoadWavefronts = 0;

    // Whole-pass totals audit (every shared kind; the only valid audit
    // for SharedPadded, where padding breaks Lemma 9.4's per-access
    // uniformity): the enumerated totals the plan was priced with must
    // equal the wavefronts the simulator measured.
    bool totalsAudited = false;
    int64_t plannedStoreTotal = 0;
    int64_t plannedLoadTotal = 0;

    /** Human-readable description of the first failure, if any. */
    std::string detail;

    bool
    wavefrontsDiverge() const
    {
        return audited &&
               (measuredStoreWavefronts !=
                    analyticStorePerAccess * storeInstructions ||
                measuredLoadWavefronts !=
                    analyticLoadPerAccess * loadInstructions);
    }

    bool
    totalsDiverge() const
    {
        return totalsAudited &&
               (measuredStoreWavefronts != plannedStoreTotal ||
                measuredLoadWavefronts != plannedLoadTotal);
    }

    bool
    ok() const
    {
        return structureOk && mismatches == 0 &&
               localityViolations == 0 && !wavefrontsDiverge() &&
               !totalsDiverge();
    }

    std::string toString() const;
};

/**
 * Verify one already-planned conversion. Layouts must be surjective
 * distributed-style layouts with register/lane/warp input dims over the
 * same output space.
 */
OracleReport checkPlan(const codegen::ConversionPlan &plan,
                       const LinearLayout &src, const LinearLayout &dst,
                       int elemBytes, const sim::GpuSpec &spec);

/** Hook to corrupt a plan between planning and checking (bug-injection
 *  self tests and shrinking of injected failures). */
using PlanMutator = std::function<void(codegen::ConversionPlan &)>;

/** Plan the case's conversion, optionally mutate the plan, then check.
 *  The case's failpoint set is active for the duration of planning and
 *  checking. Exceptions from planning/execution propagate to the
 *  caller. */
OracleReport checkConversionCase(const ConversionCase &c,
                                 const PlanMutator &mutate = nullptr);

/** A demotion-aware oracle run: what happened on the way down. */
struct DemotionReport
{
    /** The rung the planner picked before any execution failure. */
    codegen::ConversionKind initialKind = codegen::ConversionKind::NoOp;
    /** The rung whose execution finally succeeded (== the checked
     *  plan's kind). */
    codegen::ConversionKind finalKind = codegen::ConversionKind::NoOp;
    /** Execution-triggered demotion steps taken. */
    int demotions = 0;
    /** False when execution failed on the terminal rung or a demoted
     *  re-plan could not be built; `report` is then default-initialized
     *  and must not be trusted. */
    bool survived = true;
    /** The full oracle verdict on the finally-executed plan. */
    OracleReport report;
    /** ExecDiagnostics and re-plan failures accumulated on the way. */
    std::vector<std::string> notes;
};

/**
 * Mirror the engine's execution-triggered demotion on one conversion
 * case, then audit the surviving plan with the full oracle: plan the
 * case (under its failpoint set), smoke-execute, and on an
 * ExecDiagnostic re-plan one rung down via
 * codegen::demotionSitesFor until execution succeeds. This is how the
 * exec-fallback tests prove a demoted re-plan still round-trips
 * bit-exactly. Planning failures propagate as exceptions, like
 * checkConversionCase.
 */
DemotionReport checkCaseWithDemotion(const ConversionCase &c);

/**
 * The canonical injected bug: zero the first nonzero basis vector of the
 * plan's tensor->offset map, aliasing two tensor elements onto one
 * shared-memory address — the classic dropped-swizzle-bit codegen bug.
 * Returns false (and leaves the plan alone) for non-shared plans.
 */
bool injectSwizzleAliasBug(codegen::ConversionPlan &plan);

} // namespace check
} // namespace ll

#endif // LL_CHECK_ORACLE_H
