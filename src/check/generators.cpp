#include "check/generators.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "layout/dims.h"
#include "support/diagnostics.h"

namespace ll {
namespace check {

namespace {

/** Distribute a power-of-two `budget` over `rank` dims as random
 *  power-of-two factors whose product is exactly `budget`. */
std::vector<int32_t>
splitBudget(std::mt19937 &rng, int rank, int32_t budget)
{
    std::vector<int32_t> out(static_cast<size_t>(rank), 1);
    while (budget > 1) {
        size_t d = std::uniform_int_distribution<size_t>(
            0, static_cast<size_t>(rank) - 1)(rng);
        out[d] *= 2;
        budget /= 2;
    }
    return out;
}

std::string
shapeString(const triton::Shape &shape)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape.size(); ++i)
        os << (i ? "x" : "") << shape[i];
    os << "]";
    return os.str();
}

} // namespace

triton::Shape
randomShape(std::mt19937 &rng, int rank, int64_t maxElements)
{
    llUserCheck(rank >= 1, "shape rank must be positive");
    triton::Shape shape(static_cast<size_t>(rank), 1);
    // Random total size, then distribute it like a resource budget.
    int maxLog = 0;
    while ((int64_t(1) << (maxLog + 1)) <= maxElements)
        ++maxLog;
    int totalLog =
        std::uniform_int_distribution<int>(std::min(rank, maxLog),
                                           maxLog)(rng);
    auto factors = splitBudget(rng, rank, int32_t(1) << totalLog);
    for (int d = 0; d < rank; ++d)
        shape[static_cast<size_t>(d)] = factors[static_cast<size_t>(d)];
    return shape;
}

triton::BlockedEncoding
randomBlocked(std::mt19937 &rng, int rank, const GenOptions &opt)
{
    triton::BlockedEncoding enc;
    enc.order.resize(static_cast<size_t>(rank));
    std::iota(enc.order.begin(), enc.order.end(), 0);
    std::shuffle(enc.order.begin(), enc.order.end(), rng);

    enc.sizePerThread.assign(static_cast<size_t>(rank), 1);
    for (int d = 0; d < rank; ++d)
        enc.sizePerThread[static_cast<size_t>(d)] =
            pickOne<int32_t>(rng, {1, 1, 2, 4});
    enc.threadsPerWarp =
        splitBudget(rng, rank, static_cast<int32_t>(opt.warpSize));
    enc.warpsPerCta =
        splitBudget(rng, rank, static_cast<int32_t>(opt.numWarps));
    return enc;
}

triton::MmaEncoding
randomMma(std::mt19937 &rng, const GenOptions &opt)
{
    triton::MmaEncoding enc;
    enc.version = pickOne<int>(rng, {2, 2, 3});
    auto warps = splitBudget(rng, 2, static_cast<int32_t>(opt.numWarps));
    if (enc.version == 3) {
        // wgmma: the four warps of a warp group stack along dim0.
        warps = {static_cast<int32_t>(opt.numWarps), 1};
    }
    enc.warpsPerCta = warps;
    enc.instrN = enc.version == 3 ? pickOne<int32_t>(rng, {8, 16, 32}) : 8;
    return enc;
}

triton::MfmaEncoding
randomMfma(std::mt19937 &rng, const GenOptions &opt)
{
    triton::MfmaEncoding enc;
    enc.warpsPerCta = splitBudget(rng, 2,
                                  static_cast<int32_t>(opt.numWarps));
    return enc;
}

triton::DotOperandEncoding
randomDotOperand(std::mt19937 &rng, const GenOptions &opt)
{
    triton::DotOperandEncoding enc;
    enc.parent.version = 2;
    enc.parent.warpsPerCta =
        splitBudget(rng, 2, static_cast<int32_t>(opt.numWarps));
    enc.opIdx = pickOne<int>(rng, {0, 1});
    enc.bitwidth = pickOne<int>(rng, {8, 16, 32});
    return enc;
}

LinearLayout
randomDistributed(std::mt19937 &rng, const triton::Shape &shape,
                  const GenOptions &opt, std::string *descOut)
{
    const int rank = static_cast<int>(shape.size());
    enum Family { Blocked, Mma, Dot, Mfma, Sliced };
    std::vector<Family> families = {Blocked, Blocked, Sliced};
    if (rank == 2 && opt.warpSize == 32) {
        families.push_back(Mma);
        families.push_back(Dot);
    }
    if (rank == 2 && opt.warpSize == 64)
        families.push_back(Mfma);

    switch (pickOne(rng, families)) {
      case Mma: {
        auto enc = randomMma(rng, opt);
        if (descOut)
            *descOut = "mma.v" + std::to_string(enc.version) +
                       shapeString(shape);
        return enc.toLinearLayout(shape);
      }
      case Dot: {
        auto enc = randomDotOperand(rng, opt);
        if (descOut)
            *descOut = "dot_operand.op" + std::to_string(enc.opIdx) +
                       ".b" + std::to_string(enc.bitwidth) +
                       shapeString(shape);
        return enc.toLinearLayout(shape);
      }
      case Mfma: {
        auto enc = randomMfma(rng, opt);
        if (descOut)
            *descOut = "mfma" + shapeString(shape);
        return enc.toLinearLayout(shape);
      }
      case Sliced: {
        // Slice a random axis out of a rank+1 blocked parent whose
        // remaining dims equal `shape`.
        int axis = std::uniform_int_distribution<int>(0, rank)(rng);
        triton::Shape parentShape;
        for (int d = 0; d <= rank; ++d) {
            if (d == axis) {
                parentShape.push_back(pickOne<int32_t>(rng, {2, 4}));
            } else {
                size_t from = static_cast<size_t>(d < axis ? d : d - 1);
                parentShape.push_back(shape[from]);
            }
        }
        auto parent = randomBlocked(rng, rank + 1, opt)
                          .toLinearLayout(parentShape);
        if (descOut)
            *descOut = "sliced.axis" + std::to_string(axis) +
                       shapeString(shape);
        return triton::sliceLayout(parent, axis);
      }
      case Blocked:
      default: {
        auto enc = randomBlocked(rng, rank, opt);
        if (descOut)
            *descOut = "blocked" + shapeString(shape);
        return enc.toLinearLayout(shape);
      }
    }
}

LinearLayout
randomSharedMemoryLayout(std::mt19937 &rng, const triton::Shape &shape,
                         std::string *descOut)
{
    const int rank = static_cast<int>(shape.size());
    std::vector<int32_t> order(static_cast<size_t>(rank));
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);

    if (rank == 2 && pickOne<int>(rng, {0, 1}) == 1) {
        int elemBytes = pickOne<int>(rng, {1, 2, 4});
        auto params = triton::chooseMmaSwizzleParams(
            elemBytes, shape[static_cast<size_t>(order[0])]);
        if (descOut) {
            *descOut = "mma_swizzled.vec" + std::to_string(params.vec) +
                       shapeString(shape);
        }
        return triton::mmaSwizzledSharedLayout(
            shape, params.vec, params.perPhase, params.maxPhase, order);
    }
    if (descOut)
        *descOut = "unswizzled" + shapeString(shape);
    return triton::unswizzledSharedLayout(shape, order);
}

sim::GpuSpec
specByName(const std::string &name)
{
    if (name == "rtx4090")
        return sim::GpuSpec::rtx4090();
    if (name == "gh200")
        return sim::GpuSpec::gh200();
    if (name == "mi250")
        return sim::GpuSpec::mi250();
    llUserCheck(false, "unknown GPU spec '" << name << "'");
    return {};
}

sim::GpuSpec
ConversionCase::spec() const
{
    return specByName(specName);
}

ConversionCase
randomConversionCase(std::mt19937 &rng, const GenOptions &opt)
{
    ConversionCase c;
    c.specName = pickOne<std::string>(rng, {"gh200", "rtx4090", "mi250"});
    GenOptions local = opt;
    local.warpSize = specByName(c.specName).warpSize;

    const int rank =
        std::uniform_int_distribution<int>(1, opt.maxRank)(rng);
    auto shape = randomShape(rng, rank, opt.maxElements);
    c.elemBytes = pickOne<int>(rng, {1, 2, 2, 4});

    std::string srcDesc, dstDesc;
    c.src = randomDistributed(rng, shape, local, &srcDesc);
    c.dst = randomDistributed(rng, shape, local, &dstDesc);
    c.summary = srcDesc + " -> " + dstDesc + " @" + c.specName + " b" +
                std::to_string(c.elemBytes);
    return c;
}

std::vector<ShapeOp>
randomShapeOpChain(std::mt19937 &rng, const triton::Shape &shape,
                   int length)
{
    std::vector<ShapeOp> chain;
    triton::Shape cur = shape;
    for (int step = 0; step < length; ++step) {
        ShapeOp op;
        const int rank = static_cast<int>(cur.size());
        if (pickOne<int>(rng, {0, 1}) == 0 && rank > 1) {
            op.kind = ShapeOp::Transpose;
            op.order.resize(static_cast<size_t>(rank));
            std::iota(op.order.begin(), op.order.end(), 0);
            std::shuffle(op.order.begin(), op.order.end(), rng);
            triton::Shape next(cur.size());
            for (int j = 0; j < rank; ++j) {
                next[static_cast<size_t>(j)] =
                    cur[static_cast<size_t>(op.order[j])];
            }
            cur = next;
        } else {
            op.kind = ShapeOp::Reshape;
            int64_t total = 1;
            for (int32_t s : cur)
                total *= s;
            int newRank = std::uniform_int_distribution<int>(1, 3)(rng);
            triton::Shape next(static_cast<size_t>(newRank), 1);
            int64_t budget = total;
            while (budget > 1) {
                size_t d = std::uniform_int_distribution<size_t>(
                    0, static_cast<size_t>(newRank) - 1)(rng);
                next[d] *= 2;
                budget /= 2;
            }
            op.newShape = next;
            cur = next;
        }
        chain.push_back(std::move(op));
    }
    return chain;
}

} // namespace check
} // namespace ll
