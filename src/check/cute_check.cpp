#include "check/cute_check.h"

#include <fstream>
#include <sstream>

#include "support/diagnostics.h"

namespace ll {
namespace check {

namespace {

int64_t
floorPow2(int64_t v)
{
    int64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

int64_t
randRange(std::mt19937 &rng, int64_t lo, int64_t hi)
{
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
}

int64_t
randomExtent(std::mt19937 &rng, const CuteGenOptions &opt,
             int64_t elemsSoFar)
{
    if (randRange(rng, 0, 5) == 0)
        return 1; // size-1 modes are a corner worth hitting often
    int64_t cap = opt.maxElements / std::max<int64_t>(elemsSoFar, 1);
    if (cap < 2)
        return 1;
    return randRange(rng, 2, std::min(opt.maxExtent, cap));
}

int64_t
randomStride(std::mt19937 &rng, const CuteGenOptions &opt)
{
    if (opt.allowZeroStride && randRange(rng, 0, 5) == 0)
        return 0; // degenerate broadcast stride
    // Mix of small strides (overlap-prone), powers of two, and
    // pow2-minus-one (multi-bit images) to stress both bridge verdicts.
    static const int64_t pool[] = {1, 2, 3, 4, 5, 7, 8, 12, 15, 16, 32};
    if (randRange(rng, 0, 2) == 0)
        return randRange(rng, 1, 48);
    return pool[randRange(rng, 0, std::size(pool) - 1)];
}

} // namespace

cute::CuteLayout
randomCuteLayout(std::mt19937 &rng, const CuteGenOptions &opt)
{
    int modes = static_cast<int>(randRange(rng, 1, opt.maxModes));
    std::vector<cute::IntTuple> shapeKids, strideKids;
    int64_t elems = 1;
    for (int m = 0; m < modes; ++m) {
        bool nested = opt.allowNested && randRange(rng, 0, 3) == 0;
        int leaves = nested ? 2 : 1;
        std::vector<cute::IntTuple> ss, ds;
        for (int l = 0; l < leaves; ++l) {
            int64_t e = randomExtent(rng, opt, elems);
            elems *= e;
            ss.emplace_back(e);
            ds.emplace_back(randomStride(rng, opt));
        }
        if (nested) {
            shapeKids.push_back(cute::IntTuple::node(std::move(ss)));
            strideKids.push_back(cute::IntTuple::node(std::move(ds)));
        } else {
            shapeKids.push_back(ss[0]);
            strideKids.push_back(ds[0]);
        }
    }
    return cute::CuteLayout(cute::IntTuple::node(std::move(shapeKids)),
                            cute::IntTuple::node(std::move(strideKids)));
}

sim::GpuSpec
CuteCase::spec() const
{
    return specByName(specName);
}

CuteCase
randomCuteCase(std::mt19937 &rng, const CuteGenOptions &opt)
{
    int rank = static_cast<int>(randRange(rng, 1, 3));
    static const int64_t extentPool[] = {2, 3, 4, 5, 6, 7, 8, 10, 12, 16};
    std::vector<int64_t> shape;
    int64_t elems = 1;
    for (int k = 0; k < rank; ++k) {
        int64_t e =
            extentPool[randRange(rng, 0, std::size(extentPool) - 1)];
        if (elems * e > opt.maxElements)
            e = 2;
        shape.push_back(e);
        elems *= e;
    }
    // Each side: compact in a random permuted order, with optional
    // padding gaps so storage is a strict (but not dense) tiling.
    auto makeSide = [&](std::string &desc) {
        std::vector<int> perm(shape.size());
        for (size_t i = 0; i < perm.size(); ++i)
            perm[i] = static_cast<int>(i);
        std::shuffle(perm.begin(), perm.end(), rng);
        std::vector<int64_t> stride(shape.size());
        int64_t run = 1;
        std::ostringstream os;
        for (size_t k = 0; k < perm.size(); ++k) {
            stride[perm[k]] = run;
            int64_t pad = randRange(rng, 0, 2) == 0 ? 1 : 0;
            run *= shape[perm[k]] + pad;
            os << (k ? "." : "") << perm[k] << (pad ? "+" : "");
        }
        desc = os.str();
        return cute::CuteLayout::fromFlat(shape, stride);
    };
    CuteCase c;
    std::string srcDesc, dstDesc;
    c.request.src = makeSide(srcDesc);
    c.request.dst = makeSide(dstDesc);
    static const int widths[] = {1, 2, 4};
    c.request.elemBytes =
        widths[randRange(rng, 0, std::size(widths) - 1)];
    c.request.numWarps = 4;
    static const char *specs[] = {"gh200", "rtx4090", "mi250"};
    c.specName = specs[randRange(rng, 0, 2)];
    std::ostringstream os;
    for (size_t k = 0; k < shape.size(); ++k)
        os << (k ? "x" : "") << shape[k];
    os << " cute " << srcDesc << "->" << dstDesc << " @" << c.specName
       << " b" << c.request.elemBytes;
    c.summary = os.str();
    return c;
}

std::string
CuteOracleReport::toString() const
{
    std::ostringstream os;
    os << (ok() ? "OK" : "FAIL") << " elements=" << elementsChecked
       << " mismatches=" << mismatches << " core=" << coreElems
       << " remainder=" << remainderElems << " windows=" << windows;
    if (!planned)
        os << " (not planned)";
    if (!structureOk)
        os << " (structure)";
    if (coreAudited && !coreReport.ok())
        os << " (core: " << coreReport.toString() << ")";
    if (!detail.empty())
        os << " :: " << detail;
    return os.str();
}

CuteOracleReport
checkCutePlan(const cute::CutePlan &plan,
              const cute::CuteConversionRequest &req,
              const sim::GpuSpec &spec)
{
    CuteOracleReport report;
    report.planned = true;

    constexpr uint64_t kUnset = ~uint64_t(0);
    std::vector<uint64_t> srcBuf(
        static_cast<size_t>(req.src.cosize()), kUnset);
    // Tag each storage slot that carries an element. Reading the
    // buffer back (rather than trusting the loop tag) keeps the oracle
    // honest when src is non-injective: the last writer wins on both
    // sides of the comparison.
    for (int64_t i = 0; i < req.src.size(); ++i)
        srcBuf[static_cast<size_t>(req.src(i))] =
            static_cast<uint64_t>(i) + 1;
    std::vector<uint64_t> dstBuf(
        static_cast<size_t>(req.dst.cosize()), kUnset);

    auto stats = cute::executeCutePlan(plan, req, srcBuf, dstBuf);
    report.coreElems = stats.coreElems;
    report.remainderElems = stats.remainderElems;
    report.windows = stats.windows;
    if (stats.coreElems != plan.coreElems ||
        stats.remainderElems != plan.remainderElems) {
        report.structureOk = false;
        report.detail = "execution stats disagree with the plan's "
                        "core/remainder split";
    }

    for (int64_t i = 0; i < req.src.size(); ++i) {
        ++report.elementsChecked;
        uint64_t want = srcBuf[static_cast<size_t>(req.src(i))];
        uint64_t got = dstBuf[static_cast<size_t>(req.dst(i))];
        if (want != got) {
            ++report.mismatches;
            if (report.detail.empty()) {
                std::ostringstream os;
                os << "logical " << i << ": dst slot " << req.dst(i)
                   << " holds " << got << ", wanted " << want;
                report.detail = os.str();
            }
        }
    }

    if (plan.hasCorePlan) {
        report.coreAudited = true;
        report.coreReport = checkPlan(plan.corePlan, plan.coreSrc,
                                      plan.coreDst, req.elemBytes, spec);
        if (!report.coreReport.ok() && report.detail.empty())
            report.detail = "core plan audit: " +
                            report.coreReport.toString();
    }
    return report;
}

CuteOracleReport
checkCuteCase(const CuteCase &c)
{
    auto spec = c.spec();
    auto plan = cute::tryPlanCuteConversion(c.request, spec);
    if (!plan) {
        CuteOracleReport report;
        report.detail = plan.diag().toString();
        return report;
    }
    return checkCutePlan(*plan, c.request, spec);
}

CuteDemotionReport
checkCuteCaseWithDemotion(const CuteCase &c)
{
    CuteDemotionReport out;
    auto spec = c.spec();
    auto planned = cute::tryPlanCuteConversion(c.request, spec);
    if (!planned) {
        out.survived = false;
        out.report.detail = planned.diag().toString();
        out.notes.push_back(planned.diag().toString());
        return out;
    }
    cute::CutePlan plan = *planned;
    if (plan.hasCorePlan) {
        out.initialKind = plan.corePlan.kind;
        // Mirror the engine: execution failures demote the core's
        // distributed plan one rung at a time until one survives.
        while (true) {
            auto fail = codegen::smokeExecutePlan(
                plan.corePlan, plan.coreSrc, plan.coreDst,
                c.request.elemBytes, spec);
            if (!fail.has_value())
                break;
            out.notes.push_back(fail->toString());
            auto lower = codegen::tryReplanBelow(
                plan.corePlan.kind, plan.coreSrc, plan.coreDst,
                c.request.elemBytes, spec);
            if (!lower) {
                out.notes.push_back(lower.diag().toString());
                out.survived = false;
                return out;
            }
            plan.corePlan = *lower;
            ++out.demotions;
        }
        out.finalKind = plan.corePlan.kind;
    }
    out.report = checkCutePlan(plan, c.request, spec);
    return out;
}

// ---------------------------------------------------------------------
// Corpus IO
// ---------------------------------------------------------------------

void
writeCuteCase(std::ostream &os, const CuteCase &c)
{
    os << "# cute conversion case\n";
    os << "spec " << c.specName << "\n";
    os << "elemBytes " << c.request.elemBytes << "\n";
    os << "numWarps " << c.request.numWarps << "\n";
    if (!c.summary.empty())
        os << "summary " << c.summary << "\n";
    os << "src " << c.request.src.toString() << "\n";
    os << "dst " << c.request.dst.toString() << "\n";
}

CuteCase
readCuteCase(std::istream &is)
{
    CuteCase c;
    bool haveSrc = false, haveDst = false;
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key) || key[0] == '#')
            continue;
        std::string rest;
        std::getline(ls, rest);
        size_t start = rest.find_first_not_of(" \t");
        rest = start == std::string::npos ? "" : rest.substr(start);
        if (key == "spec") {
            c.specName = rest;
        } else if (key == "elemBytes") {
            c.request.elemBytes = std::stoi(rest);
        } else if (key == "numWarps") {
            c.request.numWarps = std::stoi(rest);
        } else if (key == "summary") {
            c.summary = rest;
        } else if (key == "src") {
            c.request.src = cute::CuteLayout::parse(rest);
            haveSrc = true;
        } else if (key == "dst") {
            c.request.dst = cute::CuteLayout::parse(rest);
            haveDst = true;
        } else {
            llUserCheck(false,
                        "cute case: unknown key \"" << key << "\"");
        }
    }
    llUserCheck(haveSrc && haveDst,
                "cute case: missing src or dst layout");
    return c;
}

void
writeCuteCaseFile(const std::string &path, const CuteCase &c)
{
    std::ofstream os(path);
    llUserCheck(os.good(), "cannot open " << path << " for writing");
    writeCuteCase(os, c);
}

CuteCase
readCuteCaseFile(const std::string &path)
{
    std::ifstream is(path);
    llUserCheck(is.good(), "cannot open " << path);
    return readCuteCase(is);
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

namespace {

/** All one-step shrink candidates of a layout, flattened form. */
std::vector<cute::CuteLayout>
layoutShrinkMoves(const cute::CuteLayout &layout)
{
    std::vector<cute::CuteLayout> out;
    const auto &shape = layout.flatShape();
    const auto &stride = layout.flatStride();
    // Flatten nesting first: a strictly simpler, same-function layout.
    if (layout.shape().depth() > 1 && shape.size() > 1)
        out.push_back(cute::CuteLayout::fromFlat(shape, stride));
    for (size_t k = 0; k < shape.size(); ++k) {
        if (shape.size() > 1) { // drop mode k entirely
            auto s = shape;
            auto d = stride;
            s.erase(s.begin() + k);
            d.erase(d.begin() + k);
            out.push_back(cute::CuteLayout::fromFlat(s, d));
        }
        auto tweak = [&](int64_t e, int64_t d) {
            auto s2 = shape;
            auto d2 = stride;
            s2[k] = e;
            d2[k] = d;
            if (s2 != shape || d2 != stride)
                out.push_back(cute::CuteLayout::fromFlat(s2, d2));
        };
        if (shape[k] > 1) {
            tweak(shape[k] / 2, stride[k]);
            tweak(floorPow2(shape[k]), stride[k]);
            tweak(shape[k] - 1, stride[k]);
        }
        if (stride[k] > 0) {
            tweak(shape[k], 0);
            tweak(shape[k], stride[k] / 2);
        }
    }
    return out;
}

} // namespace

cute::CuteLayout
shrinkCuteLayout(const cute::CuteLayout &failing,
                 const CuteLayoutPredicate &stillFails, int maxChecks)
{
    cute::CuteLayout best = failing;
    int checks = 0;
    bool progressed = true;
    while (progressed && checks < maxChecks) {
        progressed = false;
        for (const auto &cand : layoutShrinkMoves(best)) {
            if (++checks > maxChecks)
                break;
            bool fails = false;
            try {
                fails = stillFails(cand);
            } catch (const std::exception &) {
                fails = true; // a crash is a failure too
            }
            if (fails) {
                best = cand;
                progressed = true;
                break;
            }
        }
    }
    return best;
}

CuteShrinkResult
shrinkCuteCase(const CuteCase &failing, const CuteCaseChecker &checker,
               int maxChecks)
{
    // Canonicalize both sides to flat, size-1-free form so logical
    // dims align index-for-index (same function on the shared domain).
    auto canonical = [](const cute::CuteLayout &l) {
        std::vector<int64_t> s, d;
        for (size_t i = 0; i < l.flatShape().size(); ++i) {
            if (l.flatShape()[i] == 1)
                continue;
            s.push_back(l.flatShape()[i]);
            d.push_back(l.flatStride()[i]);
        }
        if (s.empty()) {
            s.push_back(1);
            d.push_back(0);
        }
        return cute::CuteLayout::fromFlat(s, d);
    };
    CuteShrinkResult result;
    result.minimized = failing;
    result.minimized.request.src = canonical(failing.request.src);
    result.minimized.request.dst = canonical(failing.request.dst);

    auto accepts = [&](const CuteCase &cand) {
        try {
            auto report = checker(cand);
            if (!report.ok()) {
                result.report = report;
                result.exceptionMessage.clear();
                return true;
            }
        } catch (const std::exception &e) {
            result.exceptionMessage = e.what();
            return true;
        }
        return false;
    };

    int checks = 0;
    bool progressed = true;
    while (progressed && checks < maxChecks) {
        progressed = false;
        const auto &src = result.minimized.request.src;
        const auto &dst = result.minimized.request.dst;
        std::vector<CuteCase> cands;
        size_t rank = src.flatShape().size();
        for (size_t k = 0; k < rank; ++k) {
            auto mutate = [&](int64_t newExtent, bool drop) {
                auto ss = src.flatShape(), sd = src.flatStride();
                auto ds = dst.flatShape(), dd = dst.flatStride();
                if (drop) {
                    if (rank == 1)
                        return;
                    ss.erase(ss.begin() + k);
                    sd.erase(sd.begin() + k);
                    ds.erase(ds.begin() + k);
                    dd.erase(dd.begin() + k);
                } else {
                    if (newExtent == ss[k] || newExtent < 1)
                        return;
                    ss[k] = newExtent;
                    ds[k] = newExtent;
                }
                CuteCase cand = result.minimized;
                cand.request.src = cute::CuteLayout::fromFlat(ss, sd);
                cand.request.dst = cute::CuteLayout::fromFlat(ds, dd);
                cands.push_back(std::move(cand));
            };
            mutate(0, /*drop=*/true);
            mutate(src.flatShape()[k] / 2, false);
            mutate(floorPow2(src.flatShape()[k]), false);
            mutate(src.flatShape()[k] - 1, false);
        }
        if (result.minimized.request.elemBytes > 1) {
            CuteCase cand = result.minimized;
            cand.request.elemBytes = 1;
            cands.push_back(std::move(cand));
        }
        for (const auto &cand : cands) {
            if (++checks > maxChecks)
                break;
            if (accepts(cand)) {
                result.minimized = cand;
                ++result.steps;
                progressed = true;
                break;
            }
        }
    }
    return result;
}

} // namespace check
} // namespace ll
