/**
 * @file
 * Failing-case minimization (delta debugging for layout conversions).
 *
 * When the differential oracle flags a conversion, the raw case is
 * usually a large random layout pair that no human wants to stare at.
 * The shrinker greedily applies size-reducing moves — halving logical
 * tensor dimensions and dropping or zeroing basis vectors of either
 * layout — re-running the checker after each move and keeping it only
 * while the failure still reproduces. Moves that would break the
 * planner's preconditions (surjectivity) are skipped, so every
 * intermediate candidate is a valid input.
 *
 * The minimized case can be emitted as a ready-to-paste GoogleTest
 * regression test and as a corpus file (see case_io.h).
 */

#ifndef LL_CHECK_SHRINK_H
#define LL_CHECK_SHRINK_H

#include <functional>
#include <string>

#include "check/generators.h"
#include "check/oracle.h"

namespace ll {
namespace check {

/** Re-runs plan+check on a candidate; must return a failing report (or
 *  throw) for the original case. Shrinking preserves "checker fails". */
using CaseChecker = std::function<OracleReport(const ConversionCase &)>;

struct ShrinkResult
{
    ConversionCase minimized;
    /** Accepted shrink moves. */
    int steps = 0;
    /** Report of the minimized case (empty detail if the checker threw;
     *  then `exceptionMessage` holds what it said). */
    OracleReport report;
    std::string exceptionMessage;
};

/** Total logical tensor elements of a case. */
int64_t caseElements(const ConversionCase &c);

/**
 * Greedily minimize `failing` under `checker`. A candidate is accepted
 * when the checker reports not-ok *or* throws; the loop runs to a fixed
 * point. `maxChecks` bounds the total checker invocations.
 */
ShrinkResult shrinkCase(const ConversionCase &failing,
                        const CaseChecker &checker,
                        int maxChecks = 4000);

/** C++ source of a self-contained GoogleTest regression test
 *  reconstructing the case and asserting the oracle passes. */
std::string emitRegressionTest(const ConversionCase &c,
                               const std::string &testName);

} // namespace check
} // namespace ll

#endif // LL_CHECK_SHRINK_H
