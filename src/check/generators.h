/**
 * @file
 * Random-but-valid layout and conversion-case generators.
 *
 * CSmith-style differential testing needs a steady supply of inputs that
 * are random enough to reach odd corners of the lowering code yet always
 * satisfy the preconditions of the planner (surjective distributed
 * layouts over a shared logical tensor, Definition 4.10). This module
 * centralizes those generators — previously inlined in
 * tests/property_test.cpp — and extends them to every encoding family of
 * Section 4.3: blocked, MMA (v2/v3), MFMA, dot operands, and sliced
 * layouts, plus shared-memory layouts and random shape-op chains.
 *
 * All generators draw from a caller-owned std::mt19937 so a fuzzing run
 * is reproducible from its seed alone.
 */

#ifndef LL_CHECK_GENERATORS_H
#define LL_CHECK_GENERATORS_H

#include <random>
#include <string>
#include <vector>

#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "triton/encodings.h"

namespace ll {
namespace check {

/** Bounds shared by all generators. */
struct GenOptions
{
    int warpSize = 32; ///< lanes per warp of generated encodings
    int numWarps = 4;  ///< warps per CTA of generated encodings
    int maxRank = 3;   ///< blocked encodings range over ranks 1..maxRank
    /** Upper bound on tensor elements (keeps the oracle fast and the
     *  tensor inside shared memory for every element width). */
    int64_t maxElements = int64_t(1) << 12;
};

/** Uniform pick from a small option list. */
template <typename T>
T
pickOne(std::mt19937 &rng, const std::vector<T> &opts)
{
    return opts[std::uniform_int_distribution<size_t>(0, opts.size() - 1)(
        rng)];
}

/** A random power-of-two shape of the given rank with product capped at
 *  maxElements. */
triton::Shape randomShape(std::mt19937 &rng, int rank,
                          int64_t maxElements);

/** A random valid blocked encoding of the given rank: random order,
 *  sizePerThread in {1,2,4}, and the lane/warp budgets of `opt`
 *  distributed randomly over the dims (products stay exact). */
triton::BlockedEncoding randomBlocked(std::mt19937 &rng, int rank,
                                      const GenOptions &opt = {});

/** A random Ampere (v2) or Hopper (v3) MMA accumulator encoding whose
 *  warpsPerCta multiplies out to opt.numWarps. */
triton::MmaEncoding randomMma(std::mt19937 &rng,
                              const GenOptions &opt = {});

/** A random AMD mfma accumulator encoding (64-lane wavefronts). */
triton::MfmaEncoding randomMfma(std::mt19937 &rng,
                                const GenOptions &opt = {});

/** A random dot-operand (MMA input) encoding over a v2 parent. */
triton::DotOperandEncoding randomDotOperand(std::mt19937 &rng,
                                            const GenOptions &opt = {});

/**
 * A random distributed layout over `shape` drawn from every family that
 * supports the shape's rank (blocked always; MMA/dot-operand on 2D
 * 32-lane configs; MFMA on 2D 64-lane configs; sliced layouts built from
 * a rank+1 blocked parent). If descOut is non-null it receives a short
 * provenance string ("blocked[...]", "mma.v3", ...).
 */
LinearLayout randomDistributed(std::mt19937 &rng,
                               const triton::Shape &shape,
                               const GenOptions &opt = {},
                               std::string *descOut = nullptr);

/** A random shared-memory (offset -> tensor) layout over `shape`:
 *  unswizzled with a random order, or (2D only) mma-swizzled with random
 *  legal parameters. */
LinearLayout randomSharedMemoryLayout(std::mt19937 &rng,
                                      const triton::Shape &shape,
                                      std::string *descOut = nullptr);

/**
 * A full differential-testing case: two surjective distributed layouts
 * over one logical tensor, an element width, and the GPU spec to plan
 * against. `summary` records the provenance for failure reports.
 */
struct ConversionCase
{
    LinearLayout src;
    LinearLayout dst;
    int elemBytes = 2;
    std::string specName = "gh200";
    std::string summary;
    /** Failpoint sites active while this case is planned and checked
     *  (exercises the fallback ladder); empty for ordinary cases. */
    std::vector<std::string> failpoints;

    sim::GpuSpec spec() const;
};

/** Look up a GpuSpec by name ("rtx4090", "gh200", "mi250"). */
sim::GpuSpec specByName(const std::string &name);

/**
 * A random conversion case. Lane counts of the two sides always match
 * the chosen spec's warp size (32-lane families on NVIDIA specs, MFMA
 * and 64-lane blocked on mi250), so every lowering path is reachable.
 */
ConversionCase randomConversionCase(std::mt19937 &rng,
                                    const GenOptions &opt = {});

/** One step of a random shape-op chain (for shape-transfer testing). */
struct ShapeOp
{
    enum Kind { Transpose, Reshape } kind = Transpose;
    /** Transpose: order[j] = input dim that becomes output dim j. */
    std::vector<int32_t> order;
    /** Reshape: the new logical shape (same element count). */
    triton::Shape newShape;
};

/** A random chain of `length` transpose/reshape ops starting from
 *  `shape`; each op's parameters are valid for the shape produced by the
 *  previous one. */
std::vector<ShapeOp> randomShapeOpChain(std::mt19937 &rng,
                                        const triton::Shape &shape,
                                        int length);

} // namespace check
} // namespace ll

#endif // LL_CHECK_GENERATORS_H
