#include "check/shrink.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "support/diagnostics.h"

namespace ll {
namespace check {

namespace {

/** Rebuild a layout from edited bases; nullopt unless still surjective
 *  (the planner's precondition). */
std::optional<LinearLayout>
rebuild(LinearLayout::BasesT bases,
        std::vector<LinearLayout::DimSize> outDims)
{
    try {
        LinearLayout candidate(std::move(bases), std::move(outDims),
                               /*requireSurjective=*/false);
        if (!candidate.isSurjective())
            return std::nullopt;
        return candidate;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

/** Halve output dim `dim`, dropping every basis vector that touches its
 *  upper half. */
std::optional<LinearLayout>
halveOutDim(const LinearLayout &layout, const std::string &dim)
{
    int32_t size = layout.getOutDimSize(dim);
    if (size < 2)
        return std::nullopt;
    const int32_t half = size / 2;
    auto outNames = layout.getOutDimNames();
    size_t dimIdx = 0;
    while (outNames[dimIdx] != dim)
        ++dimIdx;

    LinearLayout::BasesT bases;
    for (const auto &inDim : layout.getInDimNames()) {
        std::vector<std::vector<int32_t>> vecs;
        for (int32_t i = 0; i < layout.getInDimSizeLog2(inDim); ++i) {
            auto basis = layout.getBasis(inDim, i);
            if (basis[dimIdx] >= half)
                continue;
            vecs.push_back(std::move(basis));
        }
        bases.insert(inDim, std::move(vecs));
    }
    auto outDims = layout.getOutDims();
    outDims[dimIdx].second = half;
    return rebuild(std::move(bases), std::move(outDims));
}

/** Remove basis vector `pos` of input dim `inDim` (halves the dim). */
std::optional<LinearLayout>
dropInBasis(const LinearLayout &layout, const std::string &inDim,
            int32_t pos)
{
    LinearLayout::BasesT bases;
    for (const auto &dim : layout.getInDimNames()) {
        std::vector<std::vector<int32_t>> vecs;
        for (int32_t i = 0; i < layout.getInDimSizeLog2(dim); ++i) {
            if (dim == inDim && i == pos)
                continue;
            vecs.push_back(layout.getBasis(dim, i));
        }
        bases.insert(dim, std::move(vecs));
    }
    return rebuild(std::move(bases), layout.getOutDims());
}

/** Zero basis vector `pos` of input dim `inDim` (keeps all sizes). */
std::optional<LinearLayout>
zeroInBasis(const LinearLayout &layout, const std::string &inDim,
            int32_t pos)
{
    auto basis = layout.getBasis(inDim, pos);
    bool alreadyZero = true;
    for (int32_t c : basis)
        alreadyZero = alreadyZero && c == 0;
    if (alreadyZero)
        return std::nullopt;

    LinearLayout::BasesT bases;
    for (const auto &dim : layout.getInDimNames()) {
        std::vector<std::vector<int32_t>> vecs;
        for (int32_t i = 0; i < layout.getInDimSizeLog2(dim); ++i) {
            auto b = layout.getBasis(dim, i);
            if (dim == inDim && i == pos)
                b.assign(b.size(), 0);
            vecs.push_back(std::move(b));
        }
        bases.insert(dim, std::move(vecs));
    }
    return rebuild(std::move(bases), layout.getOutDims());
}

} // namespace

int64_t
caseElements(const ConversionCase &c)
{
    return c.src.getTotalOutDimSize();
}

ShrinkResult
shrinkCase(const ConversionCase &failing, const CaseChecker &checker,
           int maxChecks)
{
    ShrinkResult result;
    result.minimized = failing;
    int checksLeft = maxChecks;

    // Returns the candidate's failing report, or nullopt if it passes
    // (and so must be rejected).
    auto failsWith =
        [&](const ConversionCase &c) -> std::optional<ShrinkResult> {
        if (checksLeft-- <= 0)
            return std::nullopt;
        ShrinkResult r;
        r.minimized = c;
        try {
            r.report = checker(c);
            if (r.report.ok())
                return std::nullopt;
        } catch (const std::exception &e) {
            r.exceptionMessage = e.what();
        }
        return r;
    };

    auto accept = [&](std::optional<ShrinkResult> r) {
        if (!r.has_value())
            return false;
        result.minimized = std::move(r->minimized);
        result.report = std::move(r->report);
        result.exceptionMessage = std::move(r->exceptionMessage);
        ++result.steps;
        return true;
    };

    bool improved = true;
    while (improved && checksLeft > 0) {
        improved = false;
        const ConversionCase &cur = result.minimized;

        // 1. Halve logical dims, largest first: both layouts must admit
        //    the cut for the candidate to stay a conversion pair.
        auto outNames = cur.src.getOutDimNames();
        std::sort(outNames.begin(), outNames.end(),
                  [&](const std::string &x, const std::string &y) {
                      return cur.src.getOutDimSize(x) >
                             cur.src.getOutDimSize(y);
                  });
        for (const auto &dim : outNames) {
            auto s = halveOutDim(cur.src, dim);
            auto d = halveOutDim(cur.dst, dim);
            if (!s || !d)
                continue;
            ConversionCase cand = cur;
            cand.src = *s;
            cand.dst = *d;
            if (accept(failsWith(cand))) {
                improved = true;
                break;
            }
        }
        if (improved)
            continue;

        // 2. Drop input basis vectors, highest position first.
        for (bool onSrc : {true, false}) {
            const LinearLayout &side = onSrc ? cur.src : cur.dst;
            for (const auto &inDim : side.getInDimNames()) {
                for (int32_t pos = side.getInDimSizeLog2(inDim) - 1;
                     pos >= 0 && !improved; --pos) {
                    auto shrunk = dropInBasis(side, inDim, pos);
                    if (!shrunk)
                        continue;
                    ConversionCase cand = cur;
                    (onSrc ? cand.src : cand.dst) = *shrunk;
                    improved = accept(failsWith(cand));
                }
                if (improved)
                    break;
            }
            if (improved)
                break;
        }
        if (improved)
            continue;

        // 3. Zero basis vectors (keeps sizes; simplifies the map).
        for (bool onSrc : {true, false}) {
            const LinearLayout &side = onSrc ? cur.src : cur.dst;
            for (const auto &inDim : side.getInDimNames()) {
                for (int32_t pos = side.getInDimSizeLog2(inDim) - 1;
                     pos >= 0 && !improved; --pos) {
                    auto zeroed = zeroInBasis(side, inDim, pos);
                    if (!zeroed)
                        continue;
                    ConversionCase cand = cur;
                    (onSrc ? cand.src : cand.dst) = *zeroed;
                    improved = accept(failsWith(cand));
                }
                if (improved)
                    break;
            }
            if (improved)
                break;
        }
    }
    return result;
}

namespace {

void
emitLayoutCode(std::ostream &os, const LinearLayout &layout,
               const std::string &var)
{
    os << "    LinearLayout::BasesT " << var << "Bases;\n";
    for (const auto &inDim : layout.getInDimNames()) {
        os << "    " << var << "Bases.insert(\"" << inDim << "\", {";
        for (int32_t i = 0; i < layout.getInDimSizeLog2(inDim); ++i) {
            auto basis = layout.getBasis(inDim, i);
            os << (i ? ", {" : "{");
            for (size_t j = 0; j < basis.size(); ++j)
                os << (j ? ", " : "") << basis[j];
            os << "}";
        }
        os << "});\n";
    }
    os << "    LinearLayout " << var << "(std::move(" << var
       << "Bases),\n        {";
    auto outs = layout.getOutDims();
    for (size_t j = 0; j < outs.size(); ++j) {
        os << (j ? ", " : "") << "{\"" << outs[j].first << "\", "
           << outs[j].second << "}";
    }
    os << "},\n        /*requireSurjective=*/false);\n";
}

} // namespace

std::string
emitRegressionTest(const ConversionCase &c, const std::string &testName)
{
    std::ostringstream os;
    os << "// Shrunk from: " << c.summary << "\n";
    os << "TEST(LLFuzzRegression, " << testName << ")\n{\n";
    emitLayoutCode(os, c.src, "src");
    emitLayoutCode(os, c.dst, "dst");
    os << "    check::ConversionCase c;\n"
       << "    c.src = src;\n"
       << "    c.dst = dst;\n"
       << "    c.elemBytes = " << c.elemBytes << ";\n"
       << "    c.specName = \"" << c.specName << "\";\n";
    for (const auto &site : c.failpoints)
        os << "    c.failpoints.push_back(\"" << site << "\");\n";
    os << "    auto report = check::checkConversionCase(c);\n"
       << "    EXPECT_TRUE(report.ok()) << report.toString();\n"
       << "}\n";
    return os.str();
}

} // namespace check
} // namespace ll
