#include "check/oracle.h"

#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "codegen/shared_exec.h"
#include "layout/dims.h"
#include "support/diagnostics.h"
#include "support/failpoint.h"

namespace ll {
namespace check {

namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

/** Canonicalize to (register, lane, warp) input order, adding size-1
 *  dims where missing so flat-index field extraction is uniform. */
LinearLayout
canonicalIns(const LinearLayout &layout)
{
    LinearLayout out = layout;
    for (const auto &dim : {kReg, kLane, kWarp}) {
        if (!out.hasInDim(dim))
            out = out * LinearLayout::identity1D(
                            1, dim, out.getOutDimNames().front());
    }
    return out.transposeIns({kReg, kLane, kWarp});
}

/** (register, lane, warp) fields of a flat input index. */
struct InFields
{
    uint64_t reg, lane, warp;
};

InFields
splitIn(const LinearLayout &layout, uint64_t in)
{
    const int regLog = layout.getInDimSizeLog2(kReg);
    const int laneLog = layout.getInDimSizeLog2(kLane);
    return {in & ((uint64_t(1) << regLog) - 1),
            (in >> regLog) & ((uint64_t(1) << laneLog) - 1),
            in >> (regLog + laneLog)};
}

std::string
describeIndex(const LinearLayout &layout, uint64_t in)
{
    auto f = splitIn(layout, in);
    std::ostringstream os;
    os << "(reg " << f.reg << ", lane " << f.lane << ", warp " << f.warp
       << ")";
    return os.str();
}

} // namespace

std::string
OracleReport::toString() const
{
    std::ostringstream os;
    os << "kind=" << codegen::toString(kind)
       << " checked=" << elementsChecked << " mismatches=" << mismatches
       << " localityViolations=" << localityViolations;
    if (!structureOk)
        os << " STRUCTURE-BROKEN";
    if (audited) {
        os << " store(analytic " << analyticStorePerAccess << "/access x "
           << storeInstructions << ", measured "
           << measuredStoreWavefronts << ")"
           << " load(analytic " << analyticLoadPerAccess << "/access x "
           << loadInstructions << ", measured " << measuredLoadWavefronts
           << ")";
        if (wavefrontsDiverge())
            os << " WAVEFRONT-DIVERGENCE";
    }
    if (totalsAudited) {
        os << " totals(planned " << plannedStoreTotal << "/"
           << plannedLoadTotal << ", measured "
           << measuredStoreWavefronts << "/" << measuredLoadWavefronts
           << ")";
        if (totalsDiverge())
            os << " TOTALS-DIVERGENCE";
    }
    if (!detail.empty())
        os << "\n  first failure: " << detail;
    return os.str();
}

OracleReport
checkPlan(const codegen::ConversionPlan &plan, const LinearLayout &srcIn,
          const LinearLayout &dstIn, int elemBytes,
          const sim::GpuSpec &spec)
{
    OracleReport report;
    report.kind = plan.kind;

    llUserCheck(srcIn.isSurjective() && dstIn.isSurjective(),
                "oracle inputs must be surjective layouts");
    LinearLayout src = canonicalIns(srcIn);
    LinearLayout dst =
        canonicalIns(dstIn.transposeOuts(srcIn.getOutDimNames()));

    // The trusted reference: each source register's element, and each
    // destination register's demanded element, by dense F2 application.
    const uint64_t srcSize =
        static_cast<uint64_t>(src.getTotalInDimSize());
    const uint64_t dstSize =
        static_cast<uint64_t>(dst.getTotalInDimSize());
    std::vector<uint64_t> srcFile(srcSize);
    for (uint64_t i = 0; i < srcSize; ++i)
        srcFile[i] = src.applyFlat(i);

    // Execute the plan on the tagged register file.
    constexpr uint64_t kUnwritten = ~uint64_t(0) - 1;
    std::vector<uint64_t> dstFile(dstSize, kUnwritten);
    switch (plan.kind) {
      case codegen::ConversionKind::NoOp: {
        // No data movement at all: every destination register must
        // already hold the right element in the source register file.
        // Register counts must agree exactly; lane/warp dims may differ
        // in size, in which case SPMD broadcast applies (a hardware
        // thread past a layout's in-dim holds its truncated
        // coordinate's data).
        if (src.getInDimSize(kReg) != dst.getInDimSize(kReg)) {
            report.structureOk = false;
            report.detail = "no-op between different register counts";
            return report;
        }
        const int regLog = src.getInDimSizeLog2(kReg);
        const int laneLog = src.getInDimSizeLog2(kLane);
        const uint64_t laneMask =
            static_cast<uint64_t>(src.getInDimSize(kLane)) - 1;
        const uint64_t warpMask =
            static_cast<uint64_t>(src.getInDimSize(kWarp)) - 1;
        for (uint64_t j = 0; j < dstSize; ++j) {
            auto fj = splitIn(dst, j);
            uint64_t i = fj.reg | ((fj.lane & laneMask) << regLog) |
                         ((fj.warp & warpMask) << (regLog + laneLog));
            dstFile[j] = srcFile[i];
        }
        break;
      }
      case codegen::ConversionKind::RegisterPermute: {
        // A register permute only shuffles registers within one thread,
        // so it is valid iff every destination register's element is
        // already held by SOME register of the same thread under the
        // source layout. (A pseudo-inverse route would false-alarm when
        // the source replicates an element across threads.) Lane/warp
        // dims smaller than the destination's broadcast SPMD-style: the
        // extra hardware threads hold the truncated coordinate's data.
        const uint64_t srcLanes =
            static_cast<uint64_t>(src.getInDimSize(kLane));
        const uint64_t srcWarps =
            static_cast<uint64_t>(src.getInDimSize(kWarp));
        std::map<std::pair<uint64_t, uint64_t>, uint64_t> held;
        for (uint64_t i = 0; i < srcSize; ++i) {
            auto f = splitIn(src, i);
            held.emplace(
                std::make_pair(f.warp * srcLanes + f.lane, srcFile[i]),
                i);
        }
        LinearLayout cvt = dst.invertAndCompose(src);
        for (uint64_t j = 0; j < dstSize; ++j) {
            auto fj = splitIn(dst, j);
            uint64_t thread = (fj.warp & (srcWarps - 1)) * srcLanes +
                              (fj.lane & (srcLanes - 1));
            uint64_t e = dst.applyFlat(j);
            auto it = held.find({thread, e});
            if (it != held.end()) {
                dstFile[j] = srcFile[it->second];
                continue;
            }
            ++report.localityViolations;
            uint64_t i = cvt.applyFlat(j);
            dstFile[j] = srcFile[i];
            if (report.detail.empty()) {
                std::ostringstream os;
                os << "register permute: dst " << describeIndex(dst, j)
                   << " needs element " << e
                   << " but its thread holds no copy (nearest at "
                   << describeIndex(src, i) << ")";
                report.detail = os.str();
            }
        }
        break;
      }
      case codegen::ConversionKind::WarpShuffle: {
        const auto &p = *plan.shuffle;
        const int numRegsA = src.getInDimSize(kReg);
        const int numLanes = src.getInDimSize(kLane);
        const int numWarps = src.getInDimSize(kWarp);
        if (p.numRegsA != numRegsA || p.warpSize != numLanes ||
            p.numRegsB != dst.getInDimSize(kReg) ||
            numLanes != dst.getInDimSize(kLane) ||
            numWarps != dst.getInDimSize(kWarp)) {
            report.structureOk = false;
            report.detail = "shuffle plan shape disagrees with layouts";
            return report;
        }
        for (int warp = 0; warp < numWarps; ++warp) {
            std::vector<std::vector<uint64_t>> regs(
                static_cast<size_t>(numLanes));
            for (int lane = 0; lane < numLanes; ++lane) {
                for (int reg = 0; reg < numRegsA; ++reg) {
                    uint64_t i =
                        static_cast<uint64_t>(reg) |
                        (static_cast<uint64_t>(lane)
                         << src.getInDimSizeLog2(kReg)) |
                        (static_cast<uint64_t>(warp)
                         << (src.getInDimSizeLog2(kReg) +
                             src.getInDimSizeLog2(kLane)));
                    regs[static_cast<size_t>(lane)].push_back(srcFile[i]);
                }
            }
            auto outOr = p.execute(regs);
            if (!outOr) {
                report.structureOk = false;
                report.detail = "shuffle execution failed: " +
                                outOr.diag().toString();
                return report;
            }
            auto &out = *outOr;
            for (int lane = 0; lane < numLanes; ++lane) {
                for (int reg = 0; reg < p.numRegsB; ++reg) {
                    uint64_t j =
                        static_cast<uint64_t>(reg) |
                        (static_cast<uint64_t>(lane)
                         << dst.getInDimSizeLog2(kReg)) |
                        (static_cast<uint64_t>(warp)
                         << (dst.getInDimSizeLog2(kReg) +
                             dst.getInDimSizeLog2(kLane)));
                    dstFile[j] = out[static_cast<size_t>(lane)]
                                    [static_cast<size_t>(reg)];
                }
            }
        }
        break;
      }
      case codegen::ConversionKind::SharedMemory:
      case codegen::ConversionKind::SharedPadded:
      case codegen::ConversionKind::SharedScalar: {
        if (!plan.shared.has_value()) {
            report.structureOk = false;
            report.detail = "shared-memory plan carries no layout";
            return report;
        }
        auto rtOr = codegen::runSharedRoundTrip(
            *plan.shared, src, dst, srcFile, elemBytes, spec);
        if (!rtOr) {
            report.structureOk = false;
            report.detail = "shared round trip failed: " +
                            rtOr.diag().toString();
            return report;
        }
        auto &rt = *rtOr;
        dstFile = rt.dstFile;
        if (plan.kind != codegen::ConversionKind::SharedPadded &&
            !plan.shared->windowed()) {
            // Lemma 9.4 applies only without padding, and windowing
            // splits each access across passes, breaking the per-access
            // uniformity the audit multiplies by.
            report.audited = true;
            report.analyticStorePerAccess = plan.storeWavefrontsPerAccess;
            report.analyticLoadPerAccess = plan.loadWavefrontsPerAccess;
        }
        report.storeInstructions = rt.storeStats.instructions;
        report.loadInstructions = rt.loadStats.instructions;
        report.measuredStoreWavefronts = rt.storeStats.wavefronts;
        report.measuredLoadWavefronts = rt.loadStats.wavefronts;
        report.totalsAudited = true;
        report.plannedStoreTotal = plan.storeWavefrontsTotal;
        report.plannedLoadTotal = plan.loadWavefrontsTotal;
        break;
      }
    }

    // Element-for-element comparison against the destination's demands.
    for (uint64_t j = 0; j < dstSize; ++j) {
        ++report.elementsChecked;
        uint64_t expect = dst.applyFlat(j);
        if (dstFile[j] != expect) {
            ++report.mismatches;
            if (report.detail.empty()) {
                std::ostringstream os;
                os << "dst " << describeIndex(dst, j)
                   << " expected element " << expect << ", got ";
                if (dstFile[j] == kUnwritten)
                    os << "nothing (never written)";
                else if (dstFile[j] == sim::SharedMemory::kPoison)
                    os << "poison (stale shared memory)";
                else
                    os << "element " << dstFile[j];
                report.detail = os.str();
            }
        }
    }
    if (report.detail.empty() && report.wavefrontsDiverge())
        report.detail = "measured wavefronts disagree with Lemma 9.4";
    if (report.detail.empty() && report.totalsDiverge())
        report.detail =
            "measured wavefront totals disagree with the plan's "
            "enumerated totals";
    return report;
}

OracleReport
checkConversionCase(const ConversionCase &c, const PlanMutator &mutate)
{
    auto spec = c.spec();
    failpoint::ScopedSet guard(c.failpoints);
    auto plan = codegen::planConversion(c.src, c.dst, c.elemBytes, spec);
    if (mutate)
        mutate(plan);
    return checkPlan(plan, c.src, c.dst, c.elemBytes, spec);
}

DemotionReport
checkCaseWithDemotion(const ConversionCase &c)
{
    DemotionReport out;
    auto spec = c.spec();
    failpoint::ScopedSet guard(c.failpoints);
    auto plan = codegen::planConversion(c.src, c.dst, c.elemBytes, spec);
    out.initialKind = plan.kind;
    out.finalKind = plan.kind;

    // The engine's execution-triggered demotion loop, replayed here so
    // tests can audit what the engine would have shipped.
    while (true) {
        auto fail = codegen::smokeExecutePlan(plan, c.src, c.dst,
                                              c.elemBytes, spec);
        if (!fail.has_value())
            break;
        out.notes.push_back("convert:" + codegen::toString(plan.kind) +
                            " execution failed: " + fail->toString());
        if (plan.kind == codegen::ConversionKind::SharedScalar) {
            out.survived = false;
            return out;
        }
        auto replanned = codegen::tryReplanBelow(
            plan.kind, c.src, c.dst, c.elemBytes, spec);
        if (!replanned.ok()) {
            out.notes.push_back("demoted re-plan failed: " +
                                replanned.diag().toString());
            out.survived = false;
            return out;
        }
        ++out.demotions;
        plan = std::move(*replanned);
        out.finalKind = plan.kind;
    }
    out.report = checkPlan(plan, c.src, c.dst, c.elemBytes, spec);
    return out;
}

bool
injectSwizzleAliasBug(codegen::ConversionPlan &plan)
{
    if (!plan.shared.has_value())
        return false;
    const LinearLayout &t2o = plan.shared->tensorToOffset;
    LinearLayout::BasesT bases = t2o.getBases();
    for (const auto &dim : bases.keys()) {
        auto &vecs = bases.at(dim);
        for (auto &basis : vecs) {
            bool nonzero = false;
            for (int32_t coord : basis)
                nonzero = nonzero || coord != 0;
            if (!nonzero)
                continue;
            for (auto &coord : basis)
                coord = 0;
            plan.shared->tensorToOffset =
                LinearLayout(std::move(bases), t2o.getOutDims(),
                             /*requireSurjective=*/false);
            return true;
        }
    }
    return false;
}

} // namespace check
} // namespace ll
