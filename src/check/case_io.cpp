#include "check/case_io.h"

#include <fstream>
#include <sstream>

#include "support/diagnostics.h"

namespace ll {
namespace check {

namespace {

void
writeLayout(std::ostream &os, const LinearLayout &layout,
            const std::string &name)
{
    os << "layout " << name << "\n";
    os << "outs";
    for (const auto &[dim, size] : layout.getOutDims())
        os << " " << dim << " " << size;
    os << "\n";
    for (const auto &inDim : layout.getInDimNames()) {
        os << "in " << inDim << " " << layout.getInDimSizeLog2(inDim)
           << "\n";
        for (int32_t i = 0; i < layout.getInDimSizeLog2(inDim); ++i) {
            os << "basis";
            for (int32_t coord : layout.getBasis(inDim, i))
                os << " " << coord;
            os << "\n";
        }
    }
    os << "end\n";
}

/** Next non-comment, non-empty line. */
bool
nextLine(std::istream &is, std::string &line)
{
    while (std::getline(is, line)) {
        size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos)
            continue;
        if (line[start] == '#')
            continue;
        line = line.substr(start);
        return true;
    }
    return false;
}

LinearLayout
readLayout(std::istream &is, int numOutDims,
           const std::vector<LinearLayout::DimSize> &outDims)
{
    LinearLayout::BasesT bases;
    std::string line;
    while (nextLine(is, line)) {
        std::istringstream ls(line);
        std::string tok;
        ls >> tok;
        if (tok == "end") {
            return LinearLayout(std::move(bases), outDims,
                                /*requireSurjective=*/false);
        }
        llUserCheck(tok == "in",
                    "corpus: expected 'in' or 'end', got '" << tok << "'");
        std::string inDim;
        int count = -1;
        ls >> inDim >> count;
        llUserCheck(!inDim.empty() && count >= 0 && count < 64,
                    "corpus: malformed 'in' line: " << line);
        std::vector<std::vector<int32_t>> vecs;
        for (int i = 0; i < count; ++i) {
            llUserCheck(nextLine(is, line),
                        "corpus: unexpected EOF in basis list");
            std::istringstream bs(line);
            bs >> tok;
            llUserCheck(tok == "basis",
                        "corpus: expected 'basis', got '" << tok << "'");
            std::vector<int32_t> basis;
            int32_t coord;
            while (bs >> coord)
                basis.push_back(coord);
            llUserCheck(static_cast<int>(basis.size()) == numOutDims,
                        "corpus: basis has " << basis.size()
                            << " coords, expected " << numOutDims);
            vecs.push_back(std::move(basis));
        }
        bases.insert(inDim, std::move(vecs));
    }
    llUserCheck(false, "corpus: unexpected EOF inside layout block");
    return {};
}

} // namespace

void
writeCase(std::ostream &os, const ConversionCase &c)
{
    os << "# llfuzz conversion case\n";
    os << "spec " << c.specName << "\n";
    os << "elemBytes " << c.elemBytes << "\n";
    if (!c.summary.empty())
        os << "summary " << c.summary << "\n";
    for (const auto &site : c.failpoints)
        os << "failpoint " << site << "\n";
    writeLayout(os, c.src, "src");
    writeLayout(os, c.dst, "dst");
}

ConversionCase
readCase(std::istream &is)
{
    ConversionCase c;
    bool haveSrc = false, haveDst = false;
    std::string line;
    while (nextLine(is, line)) {
        std::istringstream ls(line);
        std::string tok;
        ls >> tok;
        if (tok == "spec") {
            ls >> c.specName;
            specByName(c.specName); // validate at parse time
        } else if (tok == "elemBytes") {
            ls >> c.elemBytes;
            llUserCheck(c.elemBytes >= 1 && c.elemBytes <= 8,
                        "corpus: elemBytes out of range");
        } else if (tok == "summary") {
            std::getline(ls, c.summary);
            if (!c.summary.empty() && c.summary.front() == ' ')
                c.summary.erase(c.summary.begin());
        } else if (tok == "failpoint") {
            std::string site;
            ls >> site;
            llUserCheck(!site.empty(),
                        "corpus: 'failpoint' needs a site name");
            c.failpoints.push_back(site);
        } else if (tok == "layout") {
            std::string which;
            ls >> which;
            llUserCheck(which == "src" || which == "dst",
                        "corpus: unknown layout name '" << which << "'");
            // The outs line follows immediately.
            llUserCheck(nextLine(is, line),
                        "corpus: missing 'outs' line");
            std::istringstream os_(line);
            os_ >> tok;
            llUserCheck(tok == "outs", "corpus: expected 'outs' line");
            std::vector<LinearLayout::DimSize> outDims;
            std::string dim;
            int32_t size;
            while (os_ >> dim >> size)
                outDims.emplace_back(dim, size);
            llUserCheck(!outDims.empty(), "corpus: empty 'outs' line");
            auto layout = readLayout(
                is, static_cast<int>(outDims.size()), outDims);
            if (which == "src") {
                c.src = std::move(layout);
                haveSrc = true;
            } else {
                c.dst = std::move(layout);
                haveDst = true;
            }
        } else {
            llUserCheck(false,
                        "corpus: unknown directive '" << tok << "'");
        }
    }
    llUserCheck(haveSrc && haveDst,
                "corpus: case needs both src and dst layouts");
    return c;
}

void
writeCaseFile(const std::string &path, const ConversionCase &c)
{
    std::ofstream os(path);
    llUserCheck(os.good(), "cannot open " << path << " for writing");
    writeCase(os, c);
}

ConversionCase
readCaseFile(const std::string &path)
{
    std::ifstream is(path);
    llUserCheck(is.good(), "cannot open " << path);
    return readCase(is);
}

} // namespace check
} // namespace ll
