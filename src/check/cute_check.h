/**
 * @file
 * Differential-testing support for the cute domain: generators over
 * nested (shape,stride) layouts, a tagged-buffer oracle for the
 * admission pass, `.cute` corpus (de)serialization, and shrinkers.
 *
 * Two differential surfaces live here:
 *
 *  - *bridge level*: a random CuteLayout is evaluated by brute-force
 *    index enumeration and, when the bridge accepts it, through
 *    LinearLayout::applyFlat on the bridged layout — any divergence is
 *    a bug in the bridge or in isLinearizable's accept direction, and
 *    every isLinearizable rejection of a pow2-extent layout must be
 *    justified by an explicit XOR-linearity witness (the exactness of
 *    the reject direction);
 *
 *  - *admission level*: a random well-formed CuteConversionRequest is
 *    planned by cute::tryPlanCuteConversion, executed, and checked
 *    element-for-element against the storage-relayout semantic
 *    dstBuf[dst(i)] = srcBuf[src(i)], with the pow2 core's distributed
 *    plan additionally audited by the existing register-file oracle
 *    (check::checkPlan).
 *
 * Both surfaces are driven by llfuzz --diff-cute and replayed from the
 * committed `.cute` corpus by tests/cute_bridge_test.cpp.
 */

#ifndef LL_CHECK_CUTE_CHECK_H
#define LL_CHECK_CUTE_CHECK_H

#include <functional>
#include <iosfwd>
#include <random>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "cute/admit.h"
#include "cute/cute_layout.h"
#include "sim/gpu_spec.h"

namespace ll {
namespace check {

/** Bounds for the cute-domain generators. */
struct CuteGenOptions
{
    int maxModes = 4;          ///< top-level modes per generated layout
    int64_t maxExtent = 12;    ///< per-mode extent bound
    int64_t maxElements = int64_t(1) << 12; ///< domain-size cap
    bool allowNested = true;   ///< emit depth-2 modes sometimes
    bool allowZeroStride = true; ///< emit degenerate (broadcast) strides
};

/**
 * A random nested (shape,stride) layout: non-pow2 extents, size-1
 * modes, zero strides, and occasional depth-2 nesting, with the domain
 * capped at opt.maxElements. This is the bridge-level fuzz input; it
 * makes no injectivity promises.
 */
cute::CuteLayout randomCuteLayout(std::mt19937 &rng,
                                  const CuteGenOptions &opt = {});

/** One admission-level differential case. */
struct CuteCase
{
    cute::CuteConversionRequest request;
    std::string specName = "gh200";
    std::string summary;

    sim::GpuSpec spec() const;
};

/**
 * A random well-formed admission case: a shared logical shape mixing
 * pow2 and non-pow2 extents, and on each side an injective storage
 * layout (a compact layout in a random permuted order, with optional
 * padding gaps between tiles).
 */
CuteCase randomCuteCase(std::mt19937 &rng,
                        const CuteGenOptions &opt = {});

/** Verdict of one admission-oracle run. */
struct CuteOracleReport
{
    /** Planning succeeded (false => detail holds the Diagnostic). */
    bool planned = false;
    /** Execution stats agreed with the plan's core/remainder split. */
    bool structureOk = true;
    int64_t elementsChecked = 0;
    /** Destination slots holding the wrong element. */
    int64_t mismatches = 0;
    int64_t coreElems = 0;
    int64_t remainderElems = 0;
    int64_t windows = 0;
    /** The core's distributed plan was audited by check::checkPlan. */
    bool coreAudited = false;
    OracleReport coreReport;
    std::string detail;

    bool
    ok() const
    {
        return planned && structureOk && mismatches == 0 &&
               (!coreAudited || coreReport.ok());
    }

    std::string toString() const;
};

/** Execute an already-built plan on tagged buffers and audit it. */
CuteOracleReport checkCutePlan(const cute::CutePlan &plan,
                               const cute::CuteConversionRequest &req,
                               const sim::GpuSpec &spec);

/** Plan a case with cute::tryPlanCuteConversion, then audit. */
CuteOracleReport checkCuteCase(const CuteCase &c);

/** Demotion-aware admission audit (mirrors checkCaseWithDemotion). */
struct CuteDemotionReport
{
    codegen::ConversionKind initialKind = codegen::ConversionKind::NoOp;
    codegen::ConversionKind finalKind = codegen::ConversionKind::NoOp;
    int demotions = 0;
    /** False when the core plan ran out of rungs to demote to. */
    bool survived = true;
    CuteOracleReport report;
    std::vector<std::string> notes;
};

/**
 * Plan the case, smoke-execute the core's distributed plan, demote via
 * codegen::tryReplanBelow on execution failures until a rung survives,
 * then run the full admission oracle on the surviving plan. Cases with
 * no core plan (single-element box) skip straight to the oracle.
 */
CuteDemotionReport checkCuteCaseWithDemotion(const CuteCase &c);

// ---------------------------------------------------------------------
// `.cute` corpus format: line-oriented, '#' comments, layouts in
// CuteLayout::toString form.
//
//     spec gh200
//     elemBytes 2
//     numWarps 4
//     summary 3x5x7 col->row @gh200 b2
//     src (3,5,7):(1,3,15)
//     dst (3,5,7):(35,7,1)
// ---------------------------------------------------------------------

void writeCuteCase(std::ostream &os, const CuteCase &c);
CuteCase readCuteCase(std::istream &is);
void writeCuteCaseFile(const std::string &path, const CuteCase &c);
CuteCase readCuteCaseFile(const std::string &path);

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/** True when the failure of interest still reproduces. */
using CuteLayoutPredicate = std::function<bool(const cute::CuteLayout &)>;

/**
 * Greedily minimize a bridge-level failing layout: drop modes, shrink
 * extents (halve / floor-pow2 / decrement), zero or halve strides,
 * flatten nesting — keeping each move only while `stillFails` holds.
 */
cute::CuteLayout shrinkCuteLayout(const cute::CuteLayout &failing,
                                  const CuteLayoutPredicate &stillFails,
                                  int maxChecks = 2000);

/** Re-runs plan+audit on a candidate case (may throw). */
using CuteCaseChecker = std::function<CuteOracleReport(const CuteCase &)>;

struct CuteShrinkResult
{
    CuteCase minimized;
    int steps = 0;
    CuteOracleReport report;
    std::string exceptionMessage;
};

/**
 * Greedily minimize an admission-level failing case: drop logical
 * dims from both sides, shrink extents (keeping the sides' logical
 * shapes equal and both storage maps valid), reduce elemBytes. A
 * candidate is accepted when the checker reports not-ok or throws.
 */
CuteShrinkResult shrinkCuteCase(const CuteCase &failing,
                                const CuteCaseChecker &checker,
                                int maxChecks = 2000);

} // namespace check
} // namespace ll

#endif // LL_CHECK_CUTE_CHECK_H
