/**
 * @file
 * Textual (de)serialization of conversion cases — the corpus format.
 *
 * Every confirmed-correct random case the fuzzer runs can be written to
 * a small self-describing text file and committed under tests/corpus/,
 * where the corpus replay test re-checks it on every CI run. Shrunk
 * failures use the same format, so a reproducer is one file.
 *
 * Format (lines; '#' starts a comment):
 *
 *     spec gh200
 *     elemBytes 2
 *     summary blocked[32x64] -> mma.v2[32x64] @gh200 b2
 *     layout src
 *     outs dim0 32 dim1 64
 *     in register 2
 *     basis 1 0
 *     basis 2 0
 *     in lane 5
 *     ...
 *     end
 *     layout dst
 *     ...
 *     end
 *
 * `in <name> <k>` declares an input dim with k basis vectors, each on a
 * following `basis` line carrying one coordinate per output dim.
 */

#ifndef LL_CHECK_CASE_IO_H
#define LL_CHECK_CASE_IO_H

#include <iosfwd>
#include <string>

#include "check/generators.h"

namespace ll {
namespace check {

/** Write a case in the corpus text format. */
void writeCase(std::ostream &os, const ConversionCase &c);

/** Parse a case; throws UserError on malformed input. */
ConversionCase readCase(std::istream &is);

/** Convenience file wrappers. */
void writeCaseFile(const std::string &path, const ConversionCase &c);
ConversionCase readCaseFile(const std::string &path);

} // namespace check
} // namespace ll

#endif // LL_CHECK_CASE_IO_H
