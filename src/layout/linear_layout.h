/**
 * @file
 * LinearLayout: a linear map between labeled vector spaces over F2.
 *
 * This is the paper's central abstraction (Definition 4.1). A layout has
 * named input dimensions (hardware resources such as "register", "lane",
 * "warp", or "offset") and named output dimensions (logical tensor axes
 * "dim0", "dim1", ...). Each input dimension of size 2^k contributes k
 * basis vectors; basis vector i of an input dimension records where input
 * index 2^i lands in the output space. The image of an arbitrary input is
 * the XOR of the images of its set bits — linearity over F2.
 *
 * Dimension order matters: the first input dimension occupies the least
 * significant bits of the flattened input space, and the first output
 * dimension is the fastest-moving axis of the flattened output space,
 * matching the convention in Section 4.1 of the paper.
 *
 * The class provides the algebra of Section 4.2 — composition, the
 * product (direct sum), right inverses computed as F2 least squares, and
 * left division — plus the shape-operation support (transpose / reshape /
 * flatten of input and output spaces) that powers the layout engine of
 * Section 4.4.
 */

#ifndef LL_LAYOUT_LINEAR_LAYOUT_H
#define LL_LAYOUT_LINEAR_LAYOUT_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "f2/matrix.h"
#include "support/ordered_map.h"

namespace ll {

class LinearLayout
{
  public:
    /**
     * bases[inDim][i][j] is the coordinate in the j-th output dimension
     * (by output order) of the image of basis vector 2^i of inDim.
     */
    using BasesT =
        OrderedMap<std::string, std::vector<std::vector<int32_t>>>;

    /** A (dimension name, coordinate-or-size) pair. */
    using DimSize = std::pair<std::string, int32_t>;

    /** The empty layout: no input or output dimensions. */
    LinearLayout() = default;

    /**
     * Construct from bases with explicit output-dimension sizes (each a
     * power of two). If requireSurjective, construction asserts the map
     * covers the whole output space.
     */
    LinearLayout(BasesT bases, std::vector<DimSize> outDims,
                 bool requireSurjective = true);

    /**
     * Build from bases, inferring each output dimension size as the
     * smallest power of two containing all basis coordinates.
     */
    static LinearLayout makeWithInferredOutDims(
        BasesT bases, std::vector<std::string> outDimNames);

    /** The identity map of a 1D space of the given power-of-two size. */
    static LinearLayout identity1D(int32_t size, const std::string &inDim,
                                   const std::string &outDim);

    /**
     * A map sending all `size` input elements of inDim to zero in a
     * 1D output space of size outDimSize (broadcasting).
     */
    static LinearLayout zeros1D(int32_t size, const std::string &inDim,
                                const std::string &outDim,
                                int32_t outDimSize = 1);

    static LinearLayout empty() { return LinearLayout(); }

    // ------------------------------------------------------------------
    // Shape queries
    // ------------------------------------------------------------------

    bool hasInDim(const std::string &dim) const;
    bool hasOutDim(const std::string &dim) const;

    int getNumInDims() const { return static_cast<int>(bases_.size()); }
    int getNumOutDims() const { return static_cast<int>(outDims_.size()); }

    std::vector<std::string> getInDimNames() const { return bases_.keys(); }
    std::vector<std::string> getOutDimNames() const;

    int32_t getInDimSizeLog2(const std::string &dim) const;
    int32_t getInDimSize(const std::string &dim) const;
    int32_t getOutDimSizeLog2(const std::string &dim) const;
    int32_t getOutDimSize(const std::string &dim) const;

    int32_t getTotalInDimSizeLog2() const;
    int32_t getTotalInDimSize() const;
    int32_t getTotalOutDimSizeLog2() const;
    int32_t getTotalOutDimSize() const;

    /** Output sizes in output order, as (name, size) pairs. */
    std::vector<DimSize> getOutDims() const { return outDims_; }

    /** Position of an input dim in the flattened input bit layout. */
    int32_t getInDimOffset(const std::string &dim) const;

    /** Position of an output dim in the flattened output bit layout. */
    int32_t getOutDimOffset(const std::string &dim) const;

    const BasesT &getBases() const { return bases_; }

    /** Image of basis vector 2^pos of inDim, one coord per out dim. */
    const std::vector<int32_t> &getBasis(const std::string &inDim,
                                         int32_t pos) const;

    /** Image coordinate in outDim of basis vector 2^pos of inDim. */
    int32_t getBasis(const std::string &inDim, int32_t pos,
                     const std::string &outDim) const;

    /**
     * Images of inDim's basis vectors flattened to single integers over
     * the whole output space (first out dim = least significant bits).
     * These are the column sets L_Reg / L_Thr / L_Wrp of Section 5.4.
     */
    std::vector<uint64_t> flattenedBases(const std::string &inDim) const;

    /** Flatten per-dim output coordinates into a single index. */
    uint64_t flattenOuts(const std::vector<DimSize> &coords) const;

    /** Split a flattened output index back into per-dim coordinates. */
    std::vector<DimSize> unflattenOuts(uint64_t flat) const;

    // ------------------------------------------------------------------
    // Application and algebra
    // ------------------------------------------------------------------

    /**
     * Apply the layout to per-dimension input coordinates. Every input
     * dimension must be present exactly once. Returns per-dimension
     * output coordinates in output order.
     */
    std::vector<DimSize> apply(const std::vector<DimSize> &ins) const;

    /**
     * Apply to a flattened input index, returning a flattened output.
     * Word-parallel: folds the cached flattened basis columns (built once
     * in validate()) with branchless mask-selects, no per-call allocation.
     */
    uint64_t applyFlat(uint64_t in) const;

    /**
     * The original applyFlat — re-flattens the bases on every call —
     * kept as the differential oracle for the fast path.
     */
    uint64_t applyFlat_reference(uint64_t in) const;

    /**
     * Composition outer . this (Definition 4.2): apply this first, then
     * outer. Requires this's output dims to match outer's input dims by
     * name, with each output size not exceeding the matching input size.
     */
    LinearLayout compose(const LinearLayout &outer) const;

    /**
     * The product (Definition 4.3). Shared dimension names are combined:
     * this occupies the low bits of the shared dims, other the high bits.
     */
    LinearLayout operator*(const LinearLayout &other) const;

    /** Inverse of an invertible layout. */
    LinearLayout invert() const;

    /**
     * Right inverse of a surjective layout (Definition 4.5), computed as
     * the F2 least-squares solution with free variables set to zero —
     * the broadcast-promoting convention of Section 5.4.
     */
    LinearLayout pseudoinvert() const;

    /**
     * The conversion map outer^-1 . this of Section 5.4, taking this
     * layout's input space into outer's input space. Both layouts must
     * be surjective onto the same (named) output space.
     */
    LinearLayout invertAndCompose(const LinearLayout &outer) const;

    /**
     * Left division (Definition 4.4): find Q with *this = divisor * Q,
     * or nullopt if this does not factor. Used to match instruction
     * tiles (Theorem 5.1).
     */
    std::optional<LinearLayout> divideLeft(const LinearLayout &divisor)
        const;

    // ------------------------------------------------------------------
    // Structural transforms (the shape operators of Section 4.4)
    // ------------------------------------------------------------------

    /** Restrict to the given input dims and project onto the out dims. */
    LinearLayout sublayout(const std::vector<std::string> &inDims,
                           const std::vector<std::string> &outDims) const;

    /** True iff the selected sub-block of the matrix is all zero. */
    bool sublayoutIsZero(const std::vector<std::string> &inDims,
                         const std::vector<std::string> &outDims) const;

    /** Reorder input dimensions (names must be a permutation). */
    LinearLayout transposeIns(const std::vector<std::string> &order) const;

    /** Reorder output dimensions (names must be a permutation). */
    LinearLayout transposeOuts(const std::vector<std::string> &order) const;

    /** Regroup input bits into new named dims of the same total size. */
    LinearLayout reshapeIns(const std::vector<DimSize> &newDims) const;

    /** Regroup output bits into new named dims of the same total size. */
    LinearLayout reshapeOuts(const std::vector<DimSize> &newDims) const;

    /** Collapse all input dims into one. */
    LinearLayout flattenIns(const std::string &name = "in") const;

    /** Collapse all output dims into one. */
    LinearLayout flattenOutsToDim(const std::string &name = "out") const;

    /** Rename an input dimension. */
    LinearLayout renameInDim(const std::string &from,
                             const std::string &to) const;

    /** Rename an output dimension. */
    LinearLayout renameOutDim(const std::string &from,
                              const std::string &to) const;

    /**
     * Drop basis vectors of `inDim` that map to zero (the broadcast
     * bits), shrinking that input dimension.
     */
    LinearLayout removeZeroBasesAlongDim(const std::string &inDim) const;

    // ------------------------------------------------------------------
    // Analyses
    // ------------------------------------------------------------------

    bool isSurjective() const { return surjective_; }
    bool isInjective() const;
    bool isInvertible() const { return surjective_ && isInjective(); }

    /** True iff every basis vector of every input dim is zero. */
    bool isZero() const;

    /**
     * Per input dimension, a bit mask of "free variables": input bits
     * whose basis vector is zero or linearly dependent on earlier ones.
     * Nonzero masks identify broadcasting (Section 5.1).
     */
    OrderedMap<std::string, int32_t> getFreeVariableMasks() const;

    /**
     * The largest power of two n such that input elements 0..n-1 of the
     * *first* input dimension map to consecutive elements of the
     * flattened output. This is the vectorization width analysis of
     * Section 5.1.
     */
    int32_t getNumConsecutiveInOut() const;

    /** The whole map as one F2 matrix over the flattened spaces. */
    f2::F2Matrix toF2Matrix() const;

    /**
     * Rebuild a layout from a flattened matrix, splitting rows/columns
     * back into the given labeled dims (sizes must sum correctly).
     */
    static LinearLayout fromF2Matrix(const f2::F2Matrix &m,
                                     const std::vector<DimSize> &inDims,
                                     const std::vector<DimSize> &outDims,
                                     bool requireSurjective = false);

    bool operator==(const LinearLayout &other) const;
    bool operator!=(const LinearLayout &other) const
    {
        return !(*this == other);
    }

    /**
     * True when both layouts describe the same map modulo trivial
     * (size-1) dimensions and output-size padding.
     */
    bool equalsIgnoringOutSizes(const LinearLayout &other) const;

    /**
     * Structural hash consistent with operator==: covers the labeled
     * input dims, every F2 basis coordinate, and the named/sized output
     * dims. This is the hash-consing key of the service-layer layout
     * interner (service::LayoutInterner), where equal layouts must
     * collapse to one canonical object.
     */
    uint64_t structuralHash() const;

    std::string toString() const;

  private:
    void validate(bool requireSurjective);
    int32_t outDimIndex(const std::string &dim) const;

    BasesT bases_;
    std::vector<DimSize> outDims_;
    bool surjective_ = true;
    // Flattened basis column per input bit, in input-bit order. Derived
    // from bases_/outDims_ in validate(); never mutated afterwards, so
    // interner-shared layouts can applyFlat concurrently without locks.
    std::vector<uint64_t> flatCache_;
};

std::ostream &operator<<(std::ostream &os, const LinearLayout &layout);

} // namespace ll

#endif // LL_LAYOUT_LINEAR_LAYOUT_H
