/**
 * @file
 * Canonical dimension names for linear layouts.
 *
 * The paper labels the input space of a distributed layout as
 * Reg x Thr x Wrp and the input of a memory layout as Off; output spaces
 * are the logical-tensor dimensions. We follow Triton upstream and call
 * the hardware dims "register", "lane", "warp", "block", and "offset",
 * and the logical dims "dim0", "dim1", ... where dim0 listed *first*
 * means it is the fastest-moving (least-significant-bit) dimension of the
 * flattened space.
 */

#ifndef LL_LAYOUT_DIMS_H
#define LL_LAYOUT_DIMS_H

#include <string>

namespace ll {
namespace dims {

inline const std::string kReg = "register";
inline const std::string kLane = "lane";
inline const std::string kWarp = "warp";
inline const std::string kBlock = "block";
inline const std::string kOffset = "offset";

/** The canonical name of logical tensor dimension i. */
inline std::string
out(int i)
{
    return "dim" + std::to_string(i);
}

} // namespace dims
} // namespace ll

#endif // LL_LAYOUT_DIMS_H
