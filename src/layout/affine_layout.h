/**
 * @file
 * Affine layouts: y = A x (+) b over F2.
 *
 * Section 8 of the paper notes that flipping and slicing are not
 * expressible as linear layouts but are captured by the simple
 * extension to *affine* maps — a linear layout plus a constant offset
 * XORed into the output. This module implements that extension: an
 * AffineLayout wraps a LinearLayout with a per-output-dimension shift
 * vector and supports the operations whose affine generalizations are
 * well defined (application, composition, inversion, conversion maps).
 *
 * Affine layouts compose with everything else through their linear
 * part: the shift only relabels which logical element each resource
 * holds, so conversion planning between two affine layouts with equal
 * shifts reduces to the linear case, and a pure flip is a conversion
 * whose plan is an XOR on register/lane indices — no data movement
 * through memory at all when the flipped bits stay inside a thread.
 */

#ifndef LL_LAYOUT_AFFINE_LAYOUT_H
#define LL_LAYOUT_AFFINE_LAYOUT_H

#include "layout/linear_layout.h"

namespace ll {

class AffineLayout
{
  public:
    AffineLayout() = default;

    /** Wrap a linear layout with a zero shift. */
    explicit AffineLayout(LinearLayout linear);

    /**
     * Full constructor: shift holds one coordinate per output dim (in
     * the linear part's output order) that is XORed into every image.
     */
    AffineLayout(LinearLayout linear, std::vector<int32_t> shift);

    /**
     * The layout of a tensor flipped along `outDim`: every coordinate c
     * becomes size-1-c. Since sizes are powers of two, size-1 is the
     * all-ones mask and the flip is the XOR by it — affine, as Section
     * 8 promises.
     */
    static AffineLayout flip(const LinearLayout &linear,
                             const std::string &outDim);

    /**
     * The layout of the slice [offset, offset + newSize) of `outDim`,
     * viewed in the coordinates of the slice (element i of the slice is
     * parent element offset + i). Requires offset to be a multiple of
     * newSize (an aligned power-of-two slice), in which case addition
     * coincides with XOR and the map is affine.
     */
    static AffineLayout slice(const LinearLayout &linear,
                              const std::string &outDim, int32_t offset,
                              int32_t newSize);

    const LinearLayout &linear() const { return linear_; }
    const std::vector<int32_t> &shift() const { return shift_; }
    bool isLinear() const;

    /** Apply: linear part, then XOR the shift into each coordinate. */
    std::vector<LinearLayout::DimSize>
    apply(const std::vector<LinearLayout::DimSize> &ins) const;

    uint64_t applyFlat(uint64_t in) const;

    /**
     * Composition outer . this for an affine outer and affine inner:
     * (A2 (A1 x + b1) + b2) = (A2 A1) x + (A2 b1 + b2).
     */
    AffineLayout compose(const AffineLayout &outer) const;

    /** Inverse: x = A^-1 y + A^-1 b. Requires an invertible linear
     *  part. */
    AffineLayout invert() const;

    /**
     * The conversion map outer^-1 . this between two affine layouts
     * over the same output space: an affine map from this's input
     * space to outer's. For equal shifts it degenerates to the linear
     * conversion; for a pure flip it is the identity matrix with a
     * nonzero input-space shift — i.e. an XOR of hardware indices.
     */
    AffineLayout invertAndCompose(const AffineLayout &outer) const;

    bool operator==(const AffineLayout &other) const;
    bool operator!=(const AffineLayout &o) const { return !(*this == o); }

    std::string toString() const;

  private:
    uint64_t flatShift() const;

    LinearLayout linear_;
    std::vector<int32_t> shift_; // one entry per output dim
};

} // namespace ll

#endif // LL_LAYOUT_AFFINE_LAYOUT_H
