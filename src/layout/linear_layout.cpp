#include "layout/linear_layout.h"

#include <algorithm>
#include <sstream>

#include "f2/subspace.h"
#include "support/bits.h"
#include "support/refmode.h"
#include "support/string_utils.h"

namespace ll {

namespace {

/** Check that a dim-name list is a permutation of another. */
bool
isPermutationOf(const std::vector<std::string> &a,
                const std::vector<std::string> &b)
{
    if (a.size() != b.size())
        return false;
    auto sa = a, sb = b;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    return sa == sb;
}

} // namespace

LinearLayout::LinearLayout(BasesT bases, std::vector<DimSize> outDims,
                           bool requireSurjective)
    : bases_(std::move(bases)), outDims_(std::move(outDims))
{
    validate(requireSurjective);
}

LinearLayout
LinearLayout::makeWithInferredOutDims(BasesT bases,
                                      std::vector<std::string> outDimNames)
{
    // Infer each output size as the smallest power of two containing all
    // basis coordinates for that dimension.
    std::vector<DimSize> outDims;
    for (size_t j = 0; j < outDimNames.size(); ++j) {
        int32_t maxCoord = 0;
        for (const auto &[inDim, vecs] : bases) {
            (void)inDim;
            for (const auto &basis : vecs) {
                llAssert(basis.size() == outDimNames.size(),
                         "basis arity mismatch");
                maxCoord = std::max(maxCoord, basis[j]);
            }
        }
        int32_t size = static_cast<int32_t>(
            nextPowerOf2(static_cast<uint64_t>(maxCoord) + 1));
        outDims.emplace_back(outDimNames[j], size);
    }
    return LinearLayout(std::move(bases), std::move(outDims),
                        /*requireSurjective=*/false);
}

void
LinearLayout::validate(bool requireSurjective)
{
    for (const auto &[name, size] : outDims_) {
        llUserCheck(isPowerOf2(static_cast<uint64_t>(size)),
                    "output dim "
                        << name << " size " << size
                        << " is not a power of two (LinearLayout is "
                           "F2-only; non-pow2 extents are expressible "
                           "as cute::CuteLayout and admitted via the "
                           "cute bridge)");
    }
    for (const auto &[inDim, vecs] : bases_) {
        for (const auto &basis : vecs) {
            llUserCheck(basis.size() == outDims_.size(),
                        "basis for " << inDim << " has "
                                     << basis.size() << " coords, expected "
                                     << outDims_.size());
            for (size_t j = 0; j < basis.size(); ++j) {
                llUserCheck(basis[j] >= 0 && basis[j] < outDims_[j].second,
                            "basis coordinate " << basis[j]
                                << " out of range for dim "
                                << outDims_[j].first << " of size "
                                << outDims_[j].second);
            }
        }
    }

    // Surjectivity: the flattened columns must span the output space.
    // The same columns, in input-bit order, become the applyFlat cache.
    std::vector<uint64_t> cols;
    for (const auto &[inDim, vecs] : bases_) {
        (void)vecs;
        auto flat = flattenedBases(inDim);
        cols.insert(cols.end(), flat.begin(), flat.end());
    }
    surjective_ =
        f2::rankOfVectors(cols) == getTotalOutDimSizeLog2();
    llUserCheck(!requireSurjective || surjective_,
                "layout is not surjective onto its output space");
    flatCache_ = std::move(cols);
}

LinearLayout
LinearLayout::identity1D(int32_t size, const std::string &inDim,
                         const std::string &outDim)
{
    llUserCheck(isPowerOf2(static_cast<uint64_t>(size)),
                "identity1D size must be a power of two");
    BasesT bases;
    std::vector<std::vector<int32_t>> vecs;
    for (int32_t i = 1; i < size; i *= 2)
        vecs.push_back({i});
    bases.insert(inDim, std::move(vecs));
    return LinearLayout(std::move(bases),
                        std::vector<DimSize>{{outDim, size}}, true);
}

LinearLayout
LinearLayout::zeros1D(int32_t size, const std::string &inDim,
                      const std::string &outDim, int32_t outDimSize)
{
    llUserCheck(isPowerOf2(static_cast<uint64_t>(size)),
                "zeros1D size must be a power of two");
    BasesT bases;
    std::vector<std::vector<int32_t>> vecs(
        static_cast<size_t>(log2Exact(static_cast<uint64_t>(size))),
        std::vector<int32_t>{0});
    bases.insert(inDim, std::move(vecs));
    return LinearLayout(std::move(bases), {{outDim, outDimSize}},
                        /*requireSurjective=*/false);
}

// ---------------------------------------------------------------------
// Shape queries
// ---------------------------------------------------------------------

bool
LinearLayout::hasInDim(const std::string &dim) const
{
    return bases_.contains(dim);
}

bool
LinearLayout::hasOutDim(const std::string &dim) const
{
    for (const auto &[name, size] : outDims_) {
        (void)size;
        if (name == dim)
            return true;
    }
    return false;
}

std::vector<std::string>
LinearLayout::getOutDimNames() const
{
    std::vector<std::string> names;
    names.reserve(outDims_.size());
    for (const auto &[name, size] : outDims_) {
        (void)size;
        names.push_back(name);
    }
    return names;
}

int32_t
LinearLayout::getInDimSizeLog2(const std::string &dim) const
{
    return static_cast<int32_t>(bases_.at(dim).size());
}

int32_t
LinearLayout::getInDimSize(const std::string &dim) const
{
    return int32_t(1) << getInDimSizeLog2(dim);
}

int32_t
LinearLayout::outDimIndex(const std::string &dim) const
{
    for (size_t j = 0; j < outDims_.size(); ++j) {
        if (outDims_[j].first == dim)
            return static_cast<int32_t>(j);
    }
    llPanic("no output dim named " << dim);
}

int32_t
LinearLayout::getOutDimSizeLog2(const std::string &dim) const
{
    return log2Exact(
        static_cast<uint64_t>(outDims_[outDimIndex(dim)].second));
}

int32_t
LinearLayout::getOutDimSize(const std::string &dim) const
{
    return outDims_[outDimIndex(dim)].second;
}

int32_t
LinearLayout::getTotalInDimSizeLog2() const
{
    int32_t total = 0;
    for (const auto &[dim, vecs] : bases_) {
        (void)dim;
        total += static_cast<int32_t>(vecs.size());
    }
    return total;
}

int32_t
LinearLayout::getTotalInDimSize() const
{
    return int32_t(1) << getTotalInDimSizeLog2();
}

int32_t
LinearLayout::getTotalOutDimSizeLog2() const
{
    int32_t total = 0;
    for (const auto &[name, size] : outDims_) {
        (void)name;
        total += log2Exact(static_cast<uint64_t>(size));
    }
    return total;
}

int32_t
LinearLayout::getTotalOutDimSize() const
{
    return int32_t(1) << getTotalOutDimSizeLog2();
}

int32_t
LinearLayout::getInDimOffset(const std::string &dim) const
{
    int32_t offset = 0;
    for (const auto &[name, vecs] : bases_) {
        if (name == dim)
            return offset;
        offset += static_cast<int32_t>(vecs.size());
    }
    llPanic("no input dim named " << dim);
}

int32_t
LinearLayout::getOutDimOffset(const std::string &dim) const
{
    int32_t offset = 0;
    for (const auto &[name, size] : outDims_) {
        if (name == dim)
            return offset;
        offset += log2Exact(static_cast<uint64_t>(size));
    }
    llPanic("no output dim named " << dim);
}

const std::vector<int32_t> &
LinearLayout::getBasis(const std::string &inDim, int32_t pos) const
{
    const auto &vecs = bases_.at(inDim);
    llAssert(pos >= 0 && pos < static_cast<int32_t>(vecs.size()),
             "basis index out of range");
    return vecs[pos];
}

int32_t
LinearLayout::getBasis(const std::string &inDim, int32_t pos,
                       const std::string &outDim) const
{
    return getBasis(inDim, pos)[outDimIndex(outDim)];
}

std::vector<uint64_t>
LinearLayout::flattenedBases(const std::string &inDim) const
{
    std::vector<uint64_t> out;
    const auto &vecs = bases_.at(inDim);
    out.reserve(vecs.size());
    for (const auto &basis : vecs) {
        uint64_t flat = 0;
        int shift = 0;
        for (size_t j = 0; j < outDims_.size(); ++j) {
            flat |= static_cast<uint64_t>(basis[j]) << shift;
            shift += log2Exact(static_cast<uint64_t>(outDims_[j].second));
        }
        out.push_back(flat);
    }
    return out;
}

uint64_t
LinearLayout::flattenOuts(const std::vector<DimSize> &coords) const
{
    llAssert(coords.size() == outDims_.size(),
             "flattenOuts: coordinate arity mismatch");
    uint64_t flat = 0;
    int shift = 0;
    for (size_t j = 0; j < outDims_.size(); ++j) {
        llAssert(coords[j].first == outDims_[j].first,
                 "flattenOuts: dim order mismatch");
        llAssert(coords[j].second >= 0 &&
                     coords[j].second < outDims_[j].second,
                 "flattenOuts: coordinate out of range");
        flat |= static_cast<uint64_t>(coords[j].second) << shift;
        shift += log2Exact(static_cast<uint64_t>(outDims_[j].second));
    }
    return flat;
}

std::vector<LinearLayout::DimSize>
LinearLayout::unflattenOuts(uint64_t flat) const
{
    std::vector<DimSize> coords;
    for (const auto &[name, size] : outDims_) {
        coords.emplace_back(
            name, static_cast<int32_t>(
                      flat & (static_cast<uint64_t>(size) - 1)));
        flat >>= log2Exact(static_cast<uint64_t>(size));
    }
    llAssert(flat == 0, "unflattenOuts: index out of range");
    return coords;
}

// ---------------------------------------------------------------------
// Application and algebra
// ---------------------------------------------------------------------

std::vector<LinearLayout::DimSize>
LinearLayout::apply(const std::vector<DimSize> &ins) const
{
    llUserCheck(ins.size() == bases_.size(),
                "apply: expected " << bases_.size() << " input coords, got "
                                   << ins.size());
    std::vector<int32_t> acc(outDims_.size(), 0);
    for (const auto &[dim, coord] : ins) {
        const auto &vecs = bases_.at(dim);
        llUserCheck(coord >= 0 &&
                        coord < (int32_t(1) << vecs.size()),
                    "apply: coordinate " << coord << " out of range for "
                                         << dim);
        for (size_t i = 0; i < vecs.size(); ++i) {
            if (getBit(static_cast<uint64_t>(coord), static_cast<int>(i))) {
                for (size_t j = 0; j < acc.size(); ++j)
                    acc[j] ^= vecs[i][j];
            }
        }
    }
    std::vector<DimSize> out;
    out.reserve(outDims_.size());
    for (size_t j = 0; j < outDims_.size(); ++j)
        out.emplace_back(outDims_[j].first, acc[j]);
    return out;
}

uint64_t
LinearLayout::applyFlat(uint64_t in) const
{
    if (refmode::active())
        return applyFlat_reference(in);
    const int pos = static_cast<int>(flatCache_.size());
    llAssert((in >> pos) == 0, "applyFlat: index out of range");
    uint64_t acc = 0;
    for (int i = 0; i < pos; ++i)
        acc ^= flatCache_[i] & (uint64_t(0) - ((in >> i) & 1));
    return acc;
}

uint64_t
LinearLayout::applyFlat_reference(uint64_t in) const
{
    uint64_t acc = 0;
    int pos = 0;
    for (const auto &[dim, vecs] : bases_) {
        (void)dim;
        auto flat = flattenedBases(dim);
        for (size_t i = 0; i < vecs.size(); ++i, ++pos) {
            if (getBit(in, pos))
                acc ^= flat[i];
        }
    }
    llAssert((in >> pos) == 0, "applyFlat: index out of range");
    return acc;
}

LinearLayout
LinearLayout::compose(const LinearLayout &outer) const
{
    llUserCheck(isPermutationOf(getOutDimNames(), outer.getInDimNames()),
                "compose: output dims of inner must match input dims of "
                "outer");
    for (const auto &[name, size] : outDims_) {
        llUserCheck(size <= outer.getInDimSize(name),
                    "compose: dim " << name << " of size " << size
                        << " exceeds outer input size "
                        << outer.getInDimSize(name));
    }

    BasesT newBases;
    for (const auto &[inDim, vecs] : bases_) {
        std::vector<std::vector<int32_t>> newVecs;
        newVecs.reserve(vecs.size());
        for (const auto &basis : vecs) {
            std::vector<DimSize> coords;
            for (size_t j = 0; j < outDims_.size(); ++j)
                coords.emplace_back(outDims_[j].first, basis[j]);
            // outer.apply wants its own in-dim order.
            std::vector<DimSize> ordered;
            for (const auto &name : outer.getInDimNames()) {
                for (const auto &c : coords) {
                    if (c.first == name)
                        ordered.push_back(c);
                }
            }
            auto image = outer.apply(ordered);
            std::vector<int32_t> newBasis;
            newBasis.reserve(image.size());
            for (const auto &[od, v] : image) {
                (void)od;
                newBasis.push_back(v);
            }
            newVecs.push_back(std::move(newBasis));
        }
        newBases.insert(inDim, std::move(newVecs));
    }
    return LinearLayout(std::move(newBases), outer.getOutDims(),
                        /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::operator*(const LinearLayout &other) const
{
    // Result dimension orders: ours first, then other's new dims.
    std::vector<std::string> inNames = getInDimNames();
    for (const auto &name : other.getInDimNames()) {
        if (!hasInDim(name))
            inNames.push_back(name);
    }
    std::vector<DimSize> newOutDims = outDims_;
    for (const auto &[name, size] : other.getOutDims()) {
        bool found = false;
        for (auto &[n, s] : newOutDims) {
            if (n == name) {
                s *= size; // logs add: shared dims concatenate bit ranges
                found = true;
            }
        }
        if (!found)
            newOutDims.emplace_back(name, size);
    }

    auto outIndexIn = [&](const std::string &name) {
        for (size_t j = 0; j < newOutDims.size(); ++j)
            if (newOutDims[j].first == name)
                return j;
        llPanic("missing out dim " << name);
    };

    BasesT newBases;
    for (const auto &inName : inNames) {
        std::vector<std::vector<int32_t>> vecs;
        if (hasInDim(inName)) {
            for (const auto &basis : bases_.at(inName)) {
                std::vector<int32_t> nb(newOutDims.size(), 0);
                for (size_t j = 0; j < outDims_.size(); ++j)
                    nb[outIndexIn(outDims_[j].first)] = basis[j];
                vecs.push_back(std::move(nb));
            }
        }
        if (other.hasInDim(inName)) {
            const auto &otherOuts = other.getOutDims();
            for (const auto &basis : other.bases_.at(inName)) {
                std::vector<int32_t> nb(newOutDims.size(), 0);
                for (size_t j = 0; j < otherOuts.size(); ++j) {
                    const std::string &od = otherOuts[j].first;
                    int32_t shift =
                        hasOutDim(od) ? getOutDimSizeLog2(od) : 0;
                    nb[outIndexIn(od)] = basis[j] << shift;
                }
                vecs.push_back(std::move(nb));
            }
        }
        newBases.insert(inName, std::move(vecs));
    }
    return LinearLayout(std::move(newBases), std::move(newOutDims),
                        /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::invert() const
{
    llUserCheck(isInvertible(), "invert: layout is not invertible");
    return pseudoinvert();
}

LinearLayout
LinearLayout::pseudoinvert() const
{
    llUserCheck(isSurjective(),
                "pseudoinvert: layout must be surjective");
    f2::F2Matrix m = toF2Matrix();
    f2::F2Matrix inv = m.rightInverse();

    std::vector<DimSize> newIns = outDims_;
    std::vector<DimSize> newOuts;
    for (const auto &[dim, vecs] : bases_)
        newOuts.emplace_back(dim, int32_t(1) << vecs.size());
    return fromF2Matrix(inv, newIns, newOuts, /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::invertAndCompose(const LinearLayout &outer) const
{
    llUserCheck(isPermutationOf(getOutDimNames(), outer.getOutDimNames()),
                "invertAndCompose: output spaces must match");
    LinearLayout alignedOuter = outer.transposeOuts(getOutDimNames());
    for (const auto &[name, size] : outDims_) {
        llUserCheck(alignedOuter.getOutDimSize(name) == size,
                    "invertAndCompose: size mismatch on dim " << name);
    }
    llUserCheck(alignedOuter.isSurjective(),
                "invertAndCompose: target layout must be surjective");

    f2::F2Matrix matA = toF2Matrix();
    f2::F2Matrix matB = alignedOuter.toF2Matrix();
    f2::F2Matrix conv = matB.rightInverse().multiply(matA);

    std::vector<DimSize> newIns;
    for (const auto &[dim, vecs] : bases_)
        newIns.emplace_back(dim, int32_t(1) << vecs.size());
    std::vector<DimSize> newOuts;
    for (const auto &[dim, vecs] : alignedOuter.bases_)
        newOuts.emplace_back(dim, int32_t(1) << vecs.size());
    return fromF2Matrix(conv, newIns, newOuts,
                        /*requireSurjective=*/false);
}

std::optional<LinearLayout>
LinearLayout::divideLeft(const LinearLayout &divisor) const
{
    // Every dim of the divisor must exist here with no larger size.
    for (const auto &name : divisor.getInDimNames()) {
        if (!hasInDim(name) ||
            divisor.getInDimSizeLog2(name) > getInDimSizeLog2(name)) {
            return std::nullopt;
        }
    }
    for (const auto &name : divisor.getOutDimNames()) {
        if (!hasOutDim(name) ||
            divisor.getOutDimSizeLog2(name) > getOutDimSizeLog2(name)) {
            return std::nullopt;
        }
    }

    // The divisor occupies the low input bits of its in dims and the low
    // output bits of its out dims; check the leading bases match.
    for (const auto &name : divisor.getInDimNames()) {
        int32_t dLog = divisor.getInDimSizeLog2(name);
        for (int32_t i = 0; i < dLog; ++i) {
            for (size_t j = 0; j < outDims_.size(); ++j) {
                const std::string &od = outDims_[j].first;
                int32_t val = getBasis(name, i)[j];
                if (divisor.hasOutDim(od)) {
                    if (val != divisor.getBasis(name, i, od))
                        return std::nullopt;
                } else if (val != 0) {
                    return std::nullopt;
                }
            }
        }
    }

    // Remaining bases must avoid the divisor's low output bits; shift
    // them down to form the quotient.
    BasesT qBases;
    for (const auto &[name, vecs] : bases_) {
        int32_t skip =
            divisor.hasInDim(name) ? divisor.getInDimSizeLog2(name) : 0;
        std::vector<std::vector<int32_t>> qVecs;
        for (size_t i = skip; i < vecs.size(); ++i) {
            std::vector<int32_t> qb(outDims_.size(), 0);
            for (size_t j = 0; j < outDims_.size(); ++j) {
                const std::string &od = outDims_[j].first;
                int32_t val = vecs[i][j];
                int32_t shift = divisor.hasOutDim(od)
                                    ? divisor.getOutDimSizeLog2(od)
                                    : 0;
                if ((val & ((int32_t(1) << shift) - 1)) != 0)
                    return std::nullopt;
                qb[j] = val >> shift;
            }
            qVecs.push_back(std::move(qb));
        }
        qBases.insert(name, std::move(qVecs));
    }
    std::vector<DimSize> qOuts;
    for (const auto &[name, size] : outDims_) {
        int32_t shift =
            divisor.hasOutDim(name) ? divisor.getOutDimSizeLog2(name) : 0;
        qOuts.emplace_back(name, size >> shift);
    }
    LinearLayout quotient(std::move(qBases), std::move(qOuts),
                          /*requireSurjective=*/false);

    // Final safety net: the factorization must reproduce this layout.
    LinearLayout product = divisor * quotient;
    LinearLayout aligned = product.transposeIns(getInDimNames())
                               .transposeOuts(getOutDimNames());
    if (aligned != *this)
        return std::nullopt;
    return quotient;
}

// ---------------------------------------------------------------------
// Structural transforms
// ---------------------------------------------------------------------

LinearLayout
LinearLayout::sublayout(const std::vector<std::string> &inDims,
                        const std::vector<std::string> &outDims) const
{
    std::vector<int32_t> outIdx;
    std::vector<DimSize> newOuts;
    for (const auto &od : outDims) {
        outIdx.push_back(outDimIndex(od));
        newOuts.emplace_back(od, getOutDimSize(od));
    }
    BasesT newBases;
    for (const auto &id : inDims) {
        llUserCheck(hasInDim(id), "sublayout: no input dim " << id);
        std::vector<std::vector<int32_t>> vecs;
        for (const auto &basis : bases_.at(id)) {
            std::vector<int32_t> nb;
            nb.reserve(outIdx.size());
            for (int32_t j : outIdx)
                nb.push_back(basis[j]);
            vecs.push_back(std::move(nb));
        }
        newBases.insert(id, std::move(vecs));
    }
    return LinearLayout(std::move(newBases), std::move(newOuts),
                        /*requireSurjective=*/false);
}

bool
LinearLayout::sublayoutIsZero(const std::vector<std::string> &inDims,
                              const std::vector<std::string> &outDims) const
{
    return sublayout(inDims, outDims).isZero();
}

LinearLayout
LinearLayout::transposeIns(const std::vector<std::string> &order) const
{
    llUserCheck(isPermutationOf(order, getInDimNames()),
                "transposeIns: not a permutation of input dims");
    BasesT newBases;
    for (const auto &name : order)
        newBases.insert(name, bases_.at(name));
    return LinearLayout(std::move(newBases), outDims_,
                        /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::transposeOuts(const std::vector<std::string> &order) const
{
    llUserCheck(isPermutationOf(order, getOutDimNames()),
                "transposeOuts: not a permutation of output dims");
    std::vector<int32_t> idx;
    std::vector<DimSize> newOuts;
    for (const auto &name : order) {
        idx.push_back(outDimIndex(name));
        newOuts.emplace_back(name, getOutDimSize(name));
    }
    BasesT newBases;
    for (const auto &[name, vecs] : bases_) {
        std::vector<std::vector<int32_t>> newVecs;
        for (const auto &basis : vecs) {
            std::vector<int32_t> nb;
            nb.reserve(idx.size());
            for (int32_t j : idx)
                nb.push_back(basis[j]);
            newVecs.push_back(std::move(nb));
        }
        newBases.insert(name, std::move(newVecs));
    }
    return LinearLayout(std::move(newBases), std::move(newOuts),
                        /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::reshapeIns(const std::vector<DimSize> &newDims) const
{
    int32_t newTotal = 0;
    for (const auto &[name, size] : newDims) {
        (void)name;
        newTotal += log2Exact(static_cast<uint64_t>(size));
    }
    llUserCheck(newTotal == getTotalInDimSizeLog2(),
                "reshapeIns: total size mismatch");

    // Concatenate all bases in input order, then re-split.
    std::vector<std::vector<int32_t>> all;
    for (const auto &[name, vecs] : bases_) {
        (void)name;
        all.insert(all.end(), vecs.begin(), vecs.end());
    }
    BasesT newBases;
    size_t pos = 0;
    for (const auto &[name, size] : newDims) {
        int32_t k = log2Exact(static_cast<uint64_t>(size));
        std::vector<std::vector<int32_t>> vecs(
            all.begin() + pos, all.begin() + pos + k);
        pos += k;
        newBases.insert(name, std::move(vecs));
    }
    return LinearLayout(std::move(newBases), outDims_,
                        /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::reshapeOuts(const std::vector<DimSize> &newDims) const
{
    int32_t newTotal = 0;
    for (const auto &[name, size] : newDims) {
        (void)name;
        newTotal += log2Exact(static_cast<uint64_t>(size));
    }
    llUserCheck(newTotal == getTotalOutDimSizeLog2(),
                "reshapeOuts: total size mismatch");

    BasesT newBases;
    for (const auto &[name, vecs] : bases_) {
        (void)vecs;
        auto flat = flattenedBases(name);
        std::vector<std::vector<int32_t>> newVecs;
        for (uint64_t f : flat) {
            std::vector<int32_t> nb;
            for (const auto &[nd, size] : newDims) {
                (void)nd;
                nb.push_back(static_cast<int32_t>(
                    f & (static_cast<uint64_t>(size) - 1)));
                f >>= log2Exact(static_cast<uint64_t>(size));
            }
            newVecs.push_back(std::move(nb));
        }
        newBases.insert(name, std::move(newVecs));
    }
    return LinearLayout(std::move(newBases), newDims,
                        /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::flattenIns(const std::string &name) const
{
    return reshapeIns({{name, getTotalInDimSize()}});
}

LinearLayout
LinearLayout::flattenOutsToDim(const std::string &name) const
{
    return reshapeOuts({{name, getTotalOutDimSize()}});
}

LinearLayout
LinearLayout::renameInDim(const std::string &from,
                          const std::string &to) const
{
    BasesT newBases;
    for (const auto &[name, vecs] : bases_)
        newBases.insert(name == from ? to : name, vecs);
    return LinearLayout(std::move(newBases), outDims_,
                        /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::renameOutDim(const std::string &from,
                           const std::string &to) const
{
    std::vector<DimSize> newOuts = outDims_;
    for (auto &[name, size] : newOuts) {
        (void)size;
        if (name == from)
            name = to;
    }
    return LinearLayout(bases_, std::move(newOuts),
                        /*requireSurjective=*/false);
}

LinearLayout
LinearLayout::removeZeroBasesAlongDim(const std::string &inDim) const
{
    BasesT newBases;
    for (const auto &[name, vecs] : bases_) {
        if (name != inDim) {
            newBases.insert(name, vecs);
            continue;
        }
        std::vector<std::vector<int32_t>> kept;
        for (const auto &basis : vecs) {
            bool allZero = std::all_of(basis.begin(), basis.end(),
                                       [](int32_t v) { return v == 0; });
            if (!allZero)
                kept.push_back(basis);
        }
        newBases.insert(name, std::move(kept));
    }
    return LinearLayout(std::move(newBases), outDims_,
                        /*requireSurjective=*/false);
}

// ---------------------------------------------------------------------
// Analyses
// ---------------------------------------------------------------------

bool
LinearLayout::isInjective() const
{
    return toF2Matrix().rank() == getTotalInDimSizeLog2();
}

bool
LinearLayout::isZero() const
{
    for (const auto &[name, vecs] : bases_) {
        (void)name;
        for (const auto &basis : vecs) {
            for (int32_t v : basis) {
                if (v != 0)
                    return false;
            }
        }
    }
    return true;
}

OrderedMap<std::string, int32_t>
LinearLayout::getFreeVariableMasks() const
{
    OrderedMap<std::string, int32_t> masks;
    f2::EchelonBasis ech;
    for (const auto &[name, vecs] : bases_) {
        (void)vecs;
        int32_t mask = 0;
        auto flat = flattenedBases(name);
        for (size_t i = 0; i < flat.size(); ++i) {
            if (!ech.insert(flat[i]))
                mask |= int32_t(1) << i;
        }
        masks.insert(name, mask);
    }
    return masks;
}

int32_t
LinearLayout::getNumConsecutiveInOut() const
{
    if (bases_.empty() || outDims_.empty())
        return 1;
    const std::string firstIn = bases_.begin()->first;
    auto firstFlat = flattenedBases(firstIn);

    // Contiguity may span output dimensions (the Table 3 cases): what
    // matters is consecutiveness of the *flattened* output index, which
    // is the memory index when the tensor is stored with the same
    // minor-to-major dim order.
    int k = 0;
    while (k < static_cast<int>(firstFlat.size()) &&
           firstFlat[k] == (uint64_t(1) << k)) {
        ++k;
    }

    // No other input bit may land inside the low-k-bit window, or the
    // "consecutive" elements would be interleaved with other resources.
    auto overlaps = [&](int kk) {
        uint64_t maskLow = (uint64_t(1) << kk) - 1;
        int dimIdx = 0;
        for (const auto &[name, vecs] : bases_) {
            (void)vecs;
            auto flat = flattenedBases(name);
            for (size_t i = 0; i < flat.size(); ++i) {
                bool isPrefix = (dimIdx == 0) &&
                                (static_cast<int>(i) < kk);
                if (!isPrefix && (flat[i] & maskLow) != 0)
                    return true;
            }
            ++dimIdx;
        }
        return false;
    };
    while (k > 0 && overlaps(k))
        --k;
    return int32_t(1) << k;
}

f2::F2Matrix
LinearLayout::toF2Matrix() const
{
    f2::F2Matrix m(getTotalOutDimSizeLog2(), getTotalInDimSizeLog2());
    int col = 0;
    for (const auto &[name, vecs] : bases_) {
        (void)vecs;
        for (uint64_t f : flattenedBases(name))
            m.setCol(col++, f);
    }
    return m;
}

LinearLayout
LinearLayout::fromF2Matrix(const f2::F2Matrix &m,
                           const std::vector<DimSize> &inDims,
                           const std::vector<DimSize> &outDims,
                           bool requireSurjective)
{
    int32_t inTotal = 0;
    for (const auto &[name, size] : inDims) {
        (void)name;
        inTotal += log2Exact(static_cast<uint64_t>(size));
    }
    int32_t outTotal = 0;
    for (const auto &[name, size] : outDims) {
        (void)name;
        outTotal += log2Exact(static_cast<uint64_t>(size));
    }
    llAssert(m.numCols() == inTotal && m.numRows() == outTotal,
             "fromF2Matrix: shape mismatch");

    BasesT bases;
    int col = 0;
    for (const auto &[name, size] : inDims) {
        int32_t k = log2Exact(static_cast<uint64_t>(size));
        std::vector<std::vector<int32_t>> vecs;
        for (int32_t i = 0; i < k; ++i, ++col) {
            uint64_t flat = m.getCol(col);
            std::vector<int32_t> basis;
            for (const auto &[od, osize] : outDims) {
                (void)od;
                basis.push_back(static_cast<int32_t>(
                    flat & (static_cast<uint64_t>(osize) - 1)));
                flat >>= log2Exact(static_cast<uint64_t>(osize));
            }
            vecs.push_back(std::move(basis));
        }
        bases.insert(name, std::move(vecs));
    }
    return LinearLayout(std::move(bases), outDims, requireSurjective);
}

bool
LinearLayout::operator==(const LinearLayout &other) const
{
    return bases_ == other.bases_ && outDims_ == other.outDims_;
}

uint64_t
LinearLayout::structuralHash() const
{
    // FNV-1a over everything operator== compares: input dim names in
    // order, their basis coordinates, and the named/sized output dims.
    // Layouts that compare equal hash equal; the interner relies on it.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (8 * byte)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    auto mixString = [&h](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
        h ^= 0xff; // terminator so "ab","c" != "a","bc"
        h *= 1099511628211ull;
    };
    for (const auto &[inDim, vecs] : bases_) {
        mixString(inDim);
        mix(vecs.size());
        for (const auto &basis : vecs) {
            for (int32_t coord : basis)
                mix(static_cast<uint64_t>(static_cast<uint32_t>(coord)));
        }
    }
    for (const auto &[outDim, size] : outDims_) {
        mixString(outDim);
        mix(static_cast<uint64_t>(static_cast<uint32_t>(size)));
    }
    return h;
}

bool
LinearLayout::equalsIgnoringOutSizes(const LinearLayout &other) const
{
    return bases_ == other.bases_ &&
           getOutDimNames() == other.getOutDimNames();
}

std::string
LinearLayout::toString() const
{
    std::ostringstream oss;
    for (const auto &[name, vecs] : bases_) {
        for (size_t i = 0; i < vecs.size(); ++i) {
            oss << " - " << name << "=" << (1 << i) << " -> ("
                << join(vecs[i], ", ") << ")\n";
        }
        if (vecs.empty())
            oss << " - " << name << " is a size-1 dim\n";
    }
    oss << "where out dims are: [";
    for (size_t j = 0; j < outDims_.size(); ++j) {
        oss << outDims_[j].first << " (size " << outDims_[j].second << ")";
        if (j + 1 < outDims_.size())
            oss << ", ";
    }
    oss << "]\n";
    return oss.str();
}

std::ostream &
operator<<(std::ostream &os, const LinearLayout &layout)
{
    return os << layout.toString();
}

} // namespace ll
