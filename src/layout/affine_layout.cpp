#include "layout/affine_layout.h"

#include <sstream>

#include "support/bits.h"
#include "support/string_utils.h"

namespace ll {

AffineLayout::AffineLayout(LinearLayout linear)
    : linear_(std::move(linear)),
      shift_(static_cast<size_t>(linear_.getNumOutDims()), 0)
{
}

AffineLayout::AffineLayout(LinearLayout linear, std::vector<int32_t> shift)
    : linear_(std::move(linear)), shift_(std::move(shift))
{
    auto outs = linear_.getOutDims();
    llUserCheck(shift_.size() == outs.size(),
                "affine shift arity must match output dims");
    for (size_t j = 0; j < shift_.size(); ++j) {
        llUserCheck(shift_[j] >= 0 && shift_[j] < outs[j].second,
                    "affine shift out of range for dim "
                        << outs[j].first);
    }
}

AffineLayout
AffineLayout::flip(const LinearLayout &linear, const std::string &outDim)
{
    std::vector<int32_t> shift(
        static_cast<size_t>(linear.getNumOutDims()), 0);
    auto outs = linear.getOutDims();
    bool found = false;
    for (size_t j = 0; j < outs.size(); ++j) {
        if (outs[j].first == outDim) {
            // size is a power of two, so size-1 is the all-ones mask
            // and c -> size-1-c is exactly c ^ (size-1).
            shift[j] = outs[j].second - 1;
            found = true;
        }
    }
    llUserCheck(found, "flip: no output dim named " << outDim);
    return AffineLayout(linear, std::move(shift));
}

AffineLayout
AffineLayout::slice(const LinearLayout &linear, const std::string &outDim,
                    int32_t offset, int32_t newSize)
{
    llUserCheck(isPowerOf2(static_cast<uint64_t>(newSize)),
                "slice size must be a power of two");
    llUserCheck(offset % newSize == 0,
                "slice offset must be aligned to its size so that "
                "addition coincides with XOR");
    std::vector<int32_t> shift(
        static_cast<size_t>(linear.getNumOutDims()), 0);
    auto outs = linear.getOutDims();
    bool found = false;
    for (size_t j = 0; j < outs.size(); ++j) {
        if (outs[j].first == outDim) {
            llUserCheck(offset + newSize <= outs[j].second,
                        "slice exceeds dim " << outDim);
            shift[j] = offset;
            found = true;
        }
    }
    llUserCheck(found, "slice: no output dim named " << outDim);
    return AffineLayout(linear, std::move(shift));
}

bool
AffineLayout::isLinear() const
{
    for (int32_t s : shift_) {
        if (s != 0)
            return false;
    }
    return true;
}

std::vector<LinearLayout::DimSize>
AffineLayout::apply(const std::vector<LinearLayout::DimSize> &ins) const
{
    auto out = linear_.apply(ins);
    for (size_t j = 0; j < out.size(); ++j)
        out[j].second ^= shift_[j];
    return out;
}

uint64_t
AffineLayout::flatShift() const
{
    uint64_t flat = 0;
    int pos = 0;
    auto outs = linear_.getOutDims();
    for (size_t j = 0; j < outs.size(); ++j) {
        flat |= static_cast<uint64_t>(shift_[j]) << pos;
        pos += log2Exact(static_cast<uint64_t>(outs[j].second));
    }
    return flat;
}

uint64_t
AffineLayout::applyFlat(uint64_t in) const
{
    return linear_.applyFlat(in) ^ flatShift();
}

AffineLayout
AffineLayout::compose(const AffineLayout &outer) const
{
    LinearLayout newLinear = linear_.compose(outer.linear_);
    // (A2 (A1 x + b1) + b2): feed b1 through outer's linear part.
    std::vector<LinearLayout::DimSize> b1;
    auto outs = linear_.getOutDims();
    for (size_t j = 0; j < outs.size(); ++j)
        b1.emplace_back(outs[j].first, shift_[j]);
    // outer.linear wants its own in-dim order.
    std::vector<LinearLayout::DimSize> ordered;
    for (const auto &name : outer.linear_.getInDimNames()) {
        for (const auto &c : b1) {
            if (c.first == name)
                ordered.push_back(c);
        }
    }
    auto image = outer.linear_.apply(ordered);
    std::vector<int32_t> newShift;
    for (size_t j = 0; j < image.size(); ++j)
        newShift.push_back(image[j].second ^ outer.shift_[j]);
    return AffineLayout(std::move(newLinear), std::move(newShift));
}

AffineLayout
AffineLayout::invert() const
{
    LinearLayout inv = linear_.invert();
    // x = A^-1 y + A^-1 b.
    auto outs = linear_.getOutDims();
    std::vector<LinearLayout::DimSize> b;
    for (size_t j = 0; j < outs.size(); ++j)
        b.emplace_back(outs[j].first, shift_[j]);
    auto image = inv.apply(b);
    std::vector<int32_t> newShift;
    for (size_t j = 0; j < image.size(); ++j)
        newShift.push_back(image[j].second);
    return AffineLayout(std::move(inv), std::move(newShift));
}

AffineLayout
AffineLayout::invertAndCompose(const AffineLayout &outer) const
{
    LinearLayout conv = linear_.invertAndCompose(outer.linear_);
    // B z + b2 = A x + b1  =>  z = B^-1 A x + B^-1 (b1 + b2).
    LinearLayout aligned =
        outer.linear_.transposeOuts(linear_.getOutDimNames());
    auto outs = linear_.getOutDims();
    auto outerNames = outer.linear_.getOutDimNames();
    std::vector<LinearLayout::DimSize> diff;
    for (size_t j = 0; j < outs.size(); ++j) {
        // Align outer's shift to this's out order by name.
        int32_t other = 0;
        for (size_t k = 0; k < outerNames.size(); ++k) {
            if (outerNames[k] == outs[j].first)
                other = outer.shift_[k];
        }
        diff.emplace_back(outs[j].first, shift_[j] ^ other);
    }
    auto image = aligned.pseudoinvert().apply(diff);
    std::vector<int32_t> newShift;
    for (size_t j = 0; j < image.size(); ++j)
        newShift.push_back(image[j].second);
    return AffineLayout(std::move(conv), std::move(newShift));
}

bool
AffineLayout::operator==(const AffineLayout &other) const
{
    return linear_ == other.linear_ && shift_ == other.shift_;
}

std::string
AffineLayout::toString() const
{
    std::ostringstream oss;
    oss << linear_.toString();
    oss << "affine shift: " << ll::toString(shift_) << "\n";
    return oss.str();
}

} // namespace ll
