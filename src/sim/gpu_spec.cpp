#include "sim/gpu_spec.h"

namespace ll {
namespace sim {

GpuSpec
GpuSpec::rtx4090()
{
    GpuSpec s;
    s.name = "RTX4090";
    s.warpSize = 32;
    s.hasLdmatrix = true;
    s.hasStmatrix = false; // sm_89 has ldmatrix but no stmatrix
    s.hasWgmma = false;
    s.hasTma = false;
    s.sharedMemPerCta = 100 * 1024;
    s.mmaMacsPerCyclePerWarp = 512.0;
    s.globalSectorCycles = 2.0;
    return s;
}

GpuSpec
GpuSpec::gh200()
{
    GpuSpec s;
    s.name = "GH200";
    s.warpSize = 32;
    s.hasLdmatrix = true;
    s.hasStmatrix = true;
    s.hasWgmma = true;
    s.hasTma = true;
    s.sharedMemPerCta = 228 * 1024;
    s.mmaMacsPerCyclePerWarp = 1024.0;
    s.globalSectorCycles = 1.0;
    return s;
}

GpuSpec
GpuSpec::mi250()
{
    GpuSpec s;
    s.name = "MI250";
    s.warpSize = 64;
    s.hasLdmatrix = false;
    s.hasStmatrix = false;
    s.hasWgmma = false;
    s.hasTma = false;
    s.sharedMemPerCta = 64 * 1024;
    s.mmaMacsPerCyclePerWarp = 512.0;
    s.globalSectorCycles = 1.5;
    // CDNA2 shared memory: 64-lane wavefronts split into 32-lane halves;
    // modeled by the same bank counter with 32 banks.
    return s;
}

} // namespace sim
} // namespace ll
