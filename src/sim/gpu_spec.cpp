#include "sim/gpu_spec.h"

#include <cstring>

namespace ll {
namespace sim {

namespace {

void
mixBytes(uint64_t &h, const void *data, size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
}

void
mixDouble(uint64_t &h, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mixBytes(h, &bits, sizeof bits);
}

} // namespace

uint64_t
GpuSpec::fingerprint() const
{
    uint64_t h = 1469598103934665603ull; // FNV-1a
    mixBytes(h, name.data(), name.size());
    const int32_t ints[] = {static_cast<int32_t>(warpSize),
                            static_cast<int32_t>(numBanks),
                            static_cast<int32_t>(bankWidthBytes),
                            static_cast<int32_t>(maxVectorBits),
                            static_cast<int32_t>(wavefrontBytes),
                            static_cast<int32_t>(sharedMemPerCta),
                            hasLdmatrix,
                            hasStmatrix,
                            hasWgmma,
                            hasTma};
    mixBytes(h, ints, sizeof ints);
    for (double v : {sharedWavefrontCycles, shuffleCycles,
                     sharedRoundTripCycles, globalSectorCycles,
                     ldmatrixCyclesPerTile, mmaMacsPerCyclePerWarp,
                     aluOpsPerLanePerCycle})
        mixDouble(h, v);
    return h;
}

GpuSpec
GpuSpec::rtx4090()
{
    GpuSpec s;
    s.name = "RTX4090";
    s.warpSize = 32;
    s.hasLdmatrix = true;
    s.hasStmatrix = false; // sm_89 has ldmatrix but no stmatrix
    s.hasWgmma = false;
    s.hasTma = false;
    s.sharedMemPerCta = 100 * 1024;
    s.mmaMacsPerCyclePerWarp = 512.0;
    s.globalSectorCycles = 2.0;
    return s;
}

GpuSpec
GpuSpec::gh200()
{
    GpuSpec s;
    s.name = "GH200";
    s.warpSize = 32;
    s.hasLdmatrix = true;
    s.hasStmatrix = true;
    s.hasWgmma = true;
    s.hasTma = true;
    s.sharedMemPerCta = 228 * 1024;
    s.mmaMacsPerCyclePerWarp = 1024.0;
    s.globalSectorCycles = 1.0;
    return s;
}

GpuSpec
GpuSpec::mi250()
{
    GpuSpec s;
    s.name = "MI250";
    s.warpSize = 64;
    s.hasLdmatrix = false;
    s.hasStmatrix = false;
    s.hasWgmma = false;
    s.hasTma = false;
    s.sharedMemPerCta = 64 * 1024;
    s.mmaMacsPerCyclePerWarp = 512.0;
    s.globalSectorCycles = 1.5;
    // CDNA2 shared memory: 64-lane wavefronts split into 32-lane halves;
    // modeled by the same bank counter with 32 banks.
    return s;
}

} // namespace sim
} // namespace ll
