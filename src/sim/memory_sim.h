/**
 * @file
 * Counting models of GPU memory systems.
 *
 * SharedMemory models a banked scratchpad: a warp access is split into
 * 128-byte transactions, and within each transaction lanes that touch
 * different words of the same bank serialize into extra wavefronts —
 * exactly the quantity Lemma 9.4 of the paper reasons about. The class
 * both *carries data* (so conversion plans can be executed and checked
 * for correctness) and *counts wavefronts* (so benchmarks can report
 * costs).
 *
 * GlobalMemory models DRAM coalescing: a warp access costs one 32-byte
 * sector per distinct sector touched, which is what the Table 3
 * vectorization experiments measure.
 */

#ifndef LL_SIM_MEMORY_SIM_H
#define LL_SIM_MEMORY_SIM_H

#include <cstdint>
#include <vector>

#include "sim/gpu_spec.h"

namespace ll {
namespace sim {

/** Aggregate access counters. */
struct AccessStats
{
    int64_t instructions = 0; ///< warp-wide memory instructions issued
    int64_t transactions = 0; ///< 128-byte transaction slots
    int64_t wavefronts = 0;   ///< serialized wavefronts (>= transactions)

    AccessStats &
    operator+=(const AccessStats &o)
    {
        instructions += o.instructions;
        transactions += o.transactions;
        wavefronts += o.wavefronts;
        return *this;
    }
};

/** Inactive-lane marker for warp-wide accesses. */
inline constexpr int64_t kInactiveLane = -1;

class SharedMemory
{
  public:
    /**
     * Every cell starts holding kPoison; a load that returns it means
     * the cell was never stored — how the differential oracle detects
     * address aliasing (two elements swizzled to one offset leave some
     * other offset unwritten).
     */
    static constexpr uint64_t kPoison = ~uint64_t(0);

    SharedMemory(const GpuSpec &spec, int elemBytes, int64_t numElems);

    int64_t numElems() const { return static_cast<int64_t>(cells_.size()); }
    int elemBytes() const { return elemBytes_; }

    /**
     * One warp-wide vectorized store: lane l writes values[l] (vecElems
     * elements) at consecutive element offsets starting at
     * elemOffsets[l]. Offsets must be vecElems-aligned.
     */
    void warpStore(const std::vector<int64_t> &elemOffsets, int vecElems,
                   const std::vector<std::vector<uint64_t>> &values,
                   AccessStats &stats);

    /** One warp-wide vectorized load; inactive lanes get empty vectors. */
    std::vector<std::vector<uint64_t>>
    warpLoad(const std::vector<int64_t> &elemOffsets, int vecElems,
             AccessStats &stats);

    uint64_t peek(int64_t elemOffset) const;
    void poke(int64_t elemOffset, uint64_t value);

    /**
     * Count the wavefronts of one warp access where lane l touches
     * accessBytes consecutive bytes starting at byteAddrs[l]
     * (kInactiveLane = idle). Pure counting; no data movement.
     */
    static int64_t countWavefronts(const GpuSpec &spec,
                                   const std::vector<int64_t> &byteAddrs,
                                   int accessBytes);

    /**
     * The original node-based (map of sets) wavefront counter, kept as
     * the differential oracle for the sort-based fast path above.
     */
    static int64_t
    countWavefronts_reference(const GpuSpec &spec,
                              const std::vector<int64_t> &byteAddrs,
                              int accessBytes);

    /** Transaction count for the same access (the no-conflict floor). */
    static int64_t countTransactions(const GpuSpec &spec,
                                     const std::vector<int64_t> &byteAddrs,
                                     int accessBytes);

    /**
     * Would an allocation of numElems elements fit one CTA's shared
     * budget? The constructor enforces this; planners (notably the
     * padded fallback rung, whose padding inflates the allocation) ask
     * first instead of finding out by UserError.
     */
    static bool fits(const GpuSpec &spec, int elemBytes,
                     int64_t numElems);

  private:
    void account(const std::vector<int64_t> &elemOffsets, int vecElems,
                 AccessStats &stats) const;

    const GpuSpec &spec_;
    int elemBytes_;
    std::vector<uint64_t> cells_;
};

class GlobalMemory
{
  public:
    explicit GlobalMemory(const GpuSpec &spec) : spec_(spec) {}

    /**
     * Number of 32-byte sectors touched by a warp access where lane l
     * reads accessBytes at byteAddrs[l].
     */
    int64_t countSectors(const std::vector<int64_t> &byteAddrs,
                         int accessBytes) const;

  private:
    const GpuSpec &spec_;
};

} // namespace sim
} // namespace ll

#endif // LL_SIM_MEMORY_SIM_H
