#include "sim/memory_sim.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/diagnostics.h"
#include "support/refmode.h"

namespace ll {
namespace sim {

SharedMemory::SharedMemory(const GpuSpec &spec, int elemBytes,
                           int64_t numElems)
    : spec_(spec), elemBytes_(elemBytes),
      cells_(static_cast<size_t>(numElems), kPoison)
{
    llUserCheck(elemBytes >= 1 && elemBytes <= 8,
                "element width must be 1..8 bytes");
    llUserCheck(fits(spec, elemBytes, numElems),
                "shared allocation of " << numElems * elemBytes
                    << " bytes exceeds the " << spec.sharedMemPerCta
                    << "-byte CTA limit of " << spec.name);
}

bool
SharedMemory::fits(const GpuSpec &spec, int elemBytes, int64_t numElems)
{
    return numElems * elemBytes <= spec.sharedMemPerCta;
}

int64_t
SharedMemory::countWavefronts(const GpuSpec &spec,
                              const std::vector<int64_t> &byteAddrs,
                              int accessBytes)
{
    if (refmode::active())
        return countWavefronts_reference(spec, byteAddrs, accessBytes);
    // Same model as the reference below, but flat: a word's bank is a
    // function of the word (w % numBanks), so the per-bank sets of the
    // reference are just the residue classes of the distinct word list.
    // Sort + unique a small reused buffer instead of building a map of
    // sets per lane group — this counter runs millions of times per
    // planning sweep.
    const int wordBytes = spec.bankWidthBytes;
    const int lanesPerGroup =
        std::max(1, spec.wavefrontBytes / std::max(accessBytes, 1));
    std::vector<int64_t> words;
    words.reserve(byteAddrs.size() * 2 + 8);
    std::vector<int32_t> perBank(
        static_cast<size_t>(std::max(1, spec.numBanks)), 0);
    int64_t wavefronts = 0;
    for (size_t base = 0; base < byteAddrs.size();
         base += static_cast<size_t>(lanesPerGroup)) {
        words.clear();
        for (size_t l = base;
             l < std::min(byteAddrs.size(),
                          base + static_cast<size_t>(lanesPerGroup));
             ++l) {
            if (byteAddrs[l] == kInactiveLane)
                continue;
            int64_t first = byteAddrs[l] / wordBytes;
            int64_t last = (byteAddrs[l] + accessBytes - 1) / wordBytes;
            for (int64_t w = first; w <= last; ++w)
                words.push_back(w);
        }
        if (words.empty())
            continue;
        std::sort(words.begin(), words.end());
        words.erase(std::unique(words.begin(), words.end()), words.end());
        int64_t worst = 1;
        for (int64_t w : words) {
            auto bank = static_cast<size_t>(w % spec.numBanks);
            worst = std::max(worst, static_cast<int64_t>(++perBank[bank]));
        }
        for (int64_t w : words)
            perBank[static_cast<size_t>(w % spec.numBanks)] = 0;
        wavefronts += worst;
    }
    return wavefronts;
}

int64_t
SharedMemory::countWavefronts_reference(const GpuSpec &spec,
                                        const std::vector<int64_t> &byteAddrs,
                                        int accessBytes)
{
    // A warp request is issued in groups of lanes such that each group
    // moves at most wavefrontBytes; within a group, lanes touching
    // different words of the same bank serialize.
    const int wordBytes = spec.bankWidthBytes;
    const int lanesPerGroup =
        std::max(1, spec.wavefrontBytes / std::max(accessBytes, 1));
    int64_t wavefronts = 0;
    for (size_t base = 0; base < byteAddrs.size();
         base += static_cast<size_t>(lanesPerGroup)) {
        // bank -> set of distinct word addresses requested in this group
        std::map<int, std::set<int64_t>> wordsPerBank;
        bool anyActive = false;
        for (size_t l = base;
             l < std::min(byteAddrs.size(),
                          base + static_cast<size_t>(lanesPerGroup));
             ++l) {
            if (byteAddrs[l] == kInactiveLane)
                continue;
            anyActive = true;
            int64_t first = byteAddrs[l] / wordBytes;
            int64_t last = (byteAddrs[l] + accessBytes - 1) / wordBytes;
            for (int64_t w = first; w <= last; ++w)
                wordsPerBank[static_cast<int>(w % spec.numBanks)].insert(w);
        }
        if (!anyActive)
            continue;
        size_t worst = 1;
        for (const auto &[bank, words] : wordsPerBank) {
            (void)bank;
            worst = std::max(worst, words.size());
        }
        wavefronts += static_cast<int64_t>(worst);
    }
    return wavefronts;
}

int64_t
SharedMemory::countTransactions(const GpuSpec &spec,
                                const std::vector<int64_t> &byteAddrs,
                                int accessBytes)
{
    const int lanesPerGroup =
        std::max(1, spec.wavefrontBytes / std::max(accessBytes, 1));
    int64_t transactions = 0;
    for (size_t base = 0; base < byteAddrs.size();
         base += static_cast<size_t>(lanesPerGroup)) {
        for (size_t l = base;
             l < std::min(byteAddrs.size(),
                          base + static_cast<size_t>(lanesPerGroup));
             ++l) {
            if (byteAddrs[l] != kInactiveLane) {
                ++transactions;
                break;
            }
        }
    }
    return transactions;
}

void
SharedMemory::account(const std::vector<int64_t> &elemOffsets, int vecElems,
                      AccessStats &stats) const
{
    std::vector<int64_t> byteAddrs;
    byteAddrs.reserve(elemOffsets.size());
    for (int64_t off : elemOffsets) {
        byteAddrs.push_back(off == kInactiveLane ? kInactiveLane
                                                 : off * elemBytes_);
    }
    stats.instructions += 1;
    stats.transactions +=
        countTransactions(spec_, byteAddrs, vecElems * elemBytes_);
    stats.wavefronts +=
        countWavefronts(spec_, byteAddrs, vecElems * elemBytes_);
}

void
SharedMemory::warpStore(const std::vector<int64_t> &elemOffsets,
                        int vecElems,
                        const std::vector<std::vector<uint64_t>> &values,
                        AccessStats &stats)
{
    llAssert(values.size() == elemOffsets.size(),
             "one value vector per lane required");
    account(elemOffsets, vecElems, stats);
    for (size_t l = 0; l < elemOffsets.size(); ++l) {
        if (elemOffsets[l] == kInactiveLane)
            continue;
        llAssert(values[l].size() == static_cast<size_t>(vecElems),
                 "store width mismatch");
        for (int v = 0; v < vecElems; ++v)
            poke(elemOffsets[l] + v, values[l][static_cast<size_t>(v)]);
    }
}

std::vector<std::vector<uint64_t>>
SharedMemory::warpLoad(const std::vector<int64_t> &elemOffsets, int vecElems,
                       AccessStats &stats)
{
    account(elemOffsets, vecElems, stats);
    std::vector<std::vector<uint64_t>> out(elemOffsets.size());
    for (size_t l = 0; l < elemOffsets.size(); ++l) {
        if (elemOffsets[l] == kInactiveLane)
            continue;
        out[l].reserve(static_cast<size_t>(vecElems));
        for (int v = 0; v < vecElems; ++v)
            out[l].push_back(peek(elemOffsets[l] + v));
    }
    return out;
}

uint64_t
SharedMemory::peek(int64_t elemOffset) const
{
    llAssert(elemOffset >= 0 && elemOffset < numElems(),
             "shared memory offset " << elemOffset << " out of range");
    return cells_[static_cast<size_t>(elemOffset)];
}

void
SharedMemory::poke(int64_t elemOffset, uint64_t value)
{
    llAssert(elemOffset >= 0 && elemOffset < numElems(),
             "shared memory offset " << elemOffset << " out of range");
    cells_[static_cast<size_t>(elemOffset)] = value;
}

int64_t
GlobalMemory::countSectors(const std::vector<int64_t> &byteAddrs,
                           int accessBytes) const
{
    (void)spec_;
    constexpr int64_t kSectorBytes = 32;
    std::set<int64_t> sectors;
    for (int64_t addr : byteAddrs) {
        if (addr == kInactiveLane)
            continue;
        int64_t first = addr / kSectorBytes;
        int64_t last = (addr + accessBytes - 1) / kSectorBytes;
        for (int64_t s = first; s <= last; ++s)
            sectors.insert(s);
    }
    return static_cast<int64_t>(sectors.size());
}

} // namespace sim
} // namespace ll
