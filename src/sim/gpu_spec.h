/**
 * @file
 * Parameterized GPU model descriptions.
 *
 * The paper evaluates on NVIDIA RTX4090 (Ada), NVIDIA GH200 (Hopper), and
 * AMD MI250 (CDNA2) — Table 2. No GPU is available in this environment,
 * so every experiment runs against a counting model of the relevant
 * microarchitectural mechanisms: shared-memory banks and wavefront
 * serialization, global-memory coalescing, warp shuffles, and the
 * presence/absence of specialized instructions (ldmatrix/stmatrix/wgmma)
 * that the paper's speedups hinge on. All measured effects in the paper
 * are counted quantities (transactions, wavefronts, instructions), so the
 * model preserves the comparative shapes even though absolute times
 * differ from silicon.
 */

#ifndef LL_SIM_GPU_SPEC_H
#define LL_SIM_GPU_SPEC_H

#include <cstdint>
#include <string>

namespace ll {
namespace sim {

struct GpuSpec
{
    std::string name;

    int warpSize = 32;
    int numBanks = 32;
    int bankWidthBytes = 4;
    /** Maximum vector width of a single shared-memory access. */
    int maxVectorBits = 128;
    /** Maximum bytes a single shared-memory wavefront can service. */
    int wavefrontBytes = 128;

    bool hasLdmatrix = false;
    bool hasStmatrix = false;
    bool hasWgmma = false;
    /** Tensor memory accelerator (bulk async copies). */
    bool hasTma = false;

    /** Shared memory available to one CTA, in bytes. */
    int sharedMemPerCta = 48 * 1024;

    // --- cost model (cycles) -------------------------------------------
    /** Issue cost of one shared-memory wavefront. */
    double sharedWavefrontCycles = 1.0;
    /** Issue cost of one warp-shuffle instruction. */
    double shuffleCycles = 1.0;
    /** Extra latency of a round trip through shared memory vs registers
     *  (amortized per conversion, models the barrier + ld/st latency). */
    double sharedRoundTripCycles = 30.0;
    /** Cost of one 32-byte global-memory sector access. */
    double globalSectorCycles = 2.0;
    /** ldmatrix moves a full 8x8 tile per issue: effective discount vs
     *  plain vectorized shared loads. */
    double ldmatrixCyclesPerTile = 2.0;
    /** Tensor-core multiply-accumulates per warp per cycle (16-bit). */
    double mmaMacsPerCyclePerWarp = 512.0;
    /** Plain ALU ops per lane per cycle. */
    double aluOpsPerLanePerCycle = 1.0;

    static GpuSpec rtx4090();
    static GpuSpec gh200();
    static GpuSpec mi250();

    /**
     * Stable value-identity over every field (name, geometry, feature
     * flags, cost-model constants). Two specs with equal fingerprints
     * plan identically, so the service-layer plan cache uses this as
     * the GpuSpec component of its keys; a tweaked cost constant
     * changes the fingerprint and naturally misses the cache.
     */
    uint64_t fingerprint() const;
};

} // namespace sim
} // namespace ll

#endif // LL_SIM_GPU_SPEC_H
