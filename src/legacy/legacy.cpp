#include "legacy/legacy.h"

#include <algorithm>

#include "layout/dims.h"
#include "sim/memory_sim.h"
#include "support/bits.h"

namespace ll {
namespace legacy {

namespace {

codegen::MemoryInstruction
instructionFromBits(int bits)
{
    codegen::MemoryInstruction inst;
    if (bits <= 32) {
        inst.vecWords = 1;
        inst.wordBits = bits;
    } else {
        inst.vecWords = bits / 32;
        inst.wordBits = 32;
    }
    return inst;
}

} // namespace

codegen::MemoryInstruction
legacyMemoryInstruction(const triton::BlockedEncoding &enc,
                        const triton::Shape &shape, int elemBits,
                        int maxVectorBits)
{
    const int fast = enc.order[0];
    int64_t contig;
    if (shape[static_cast<size_t>(fast)] == 1) {
        // The fastest dim holds one element: legacy falls back to the
        // pointer-increment analysis on the next dim, which proves at
        // most a 4-element alignment (the Section 5.1 / Table 3 bug).
        contig = std::min<int64_t>(
            4, enc.sizePerThread[static_cast<size_t>(enc.order[1])]);
    } else {
        contig = std::min<int64_t>(
            enc.sizePerThread[static_cast<size_t>(fast)],
            shape[static_cast<size_t>(fast)]);
    }
    int64_t bits = std::min<int64_t>(contig * elemBits, maxVectorBits);
    bits = int64_t(1) << log2Floor(static_cast<uint64_t>(bits));
    return instructionFromBits(
        static_cast<int>(std::max<int64_t>(bits, elemBits)));
}

std::string
toString(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::Blocked:
        return "Blocked";
      case LayoutKind::Mma:
        return "MMA";
      case LayoutKind::MmaInput:
        return "MMA Input";
      case LayoutKind::SlicedBlocked:
        return "Sliced<Blocked>";
      case LayoutKind::SlicedMma:
        return "Sliced<MMA>";
      case LayoutKind::SlicedMmaInput:
        return "Sliced<MMA Input>";
      case LayoutKind::Custom:
        return "Custom";
    }
    return "?";
}

bool
legacySupportsReduction(LayoutKind kind)
{
    // Table 4: legacy reduction codegen only handles the layouts it has
    // hand-written index math for.
    switch (kind) {
      case LayoutKind::Blocked:
      case LayoutKind::Mma:
      case LayoutKind::SlicedBlocked:
        return true;
      case LayoutKind::MmaInput:
      case LayoutKind::SlicedMma:
      case LayoutKind::SlicedMmaInput:
      case LayoutKind::Custom:
        return false;
    }
    return false;
}

int64_t
legacyReductionSharedStores(const LinearLayout &layout, int axis,
                            const sim::GpuSpec &spec)
{
    (void)spec;
    // After the intra-thread tree, each thread holds one partial per
    // register position not moving along the axis; legacy stores every
    // one of them from every thread.
    const std::string axisDim = dims::out(axis);
    int regBitsAlongAxis = 0;
    for (int b = 0; b < layout.getInDimSizeLog2(dims::kReg); ++b)
        regBitsAlongAxis +=
            layout.getBasis(dims::kReg, b, axisDim) != 0;
    int64_t resultRegs =
        layout.getInDimSize(dims::kReg) >> regBitsAlongAxis;
    int64_t threads = int64_t(layout.getInDimSize(dims::kLane)) *
                      (layout.hasInDim(dims::kWarp)
                           ? layout.getInDimSize(dims::kWarp)
                           : 1);
    return threads * std::max<int64_t>(resultRegs, 1);
}

int64_t
linearReductionSharedStores(const LinearLayout &layout, int axis,
                            const sim::GpuSpec &spec)
{
    // Free variables (zero or dependent columns) identify threads and
    // warps holding duplicated data (Section 5.1); their stores are
    // skipped.
    int64_t all = legacyReductionSharedStores(layout, axis, spec);
    auto masks = layout.getFreeVariableMasks();
    int dupBits = 0;
    if (masks.contains(dims::kLane))
        dupBits += popcount(static_cast<uint64_t>(
            static_cast<uint32_t>(masks.at(dims::kLane))));
    if (masks.contains(dims::kWarp))
        dupBits += popcount(static_cast<uint64_t>(
            static_cast<uint32_t>(masks.at(dims::kWarp))));
    return std::max<int64_t>(all >> dupBits, 1);
}

PaddedConversionCost
paddedConversionCost(const LinearLayout &src, const LinearLayout &dst,
                     const triton::Shape &shape, int elemBytes,
                     const sim::GpuSpec &spec, int padElems)
{
    llUserCheck(shape.size() == 2, "padding heuristic is 2D");
    if (padElems < 0)
        padElems = std::max(1, 16 / elemBytes); // one 128-bit vector
    const int64_t rows = shape[0], cols = shape[1];
    const int64_t stride = cols + padElems;

    PaddedConversionCost cost;
    cost.sharedBytes = rows * stride * elemBytes;

    // Vectorization: padding preserves contiguity only inside a row, so
    // the usable width is the per-thread run within the fast dim.
    auto rowVec = [&](const LinearLayout &l) {
        int v = l.getNumConsecutiveInOut();
        // The layout's first out dim is its fastest; runs cannot cross
        // the padded row boundary, and one access moves <= 128 bits.
        v = std::min<int>(v, l.getOutDimSize(l.getOutDimNames()[0]));
        v = std::min<int>(v, std::max(1, 16 / elemBytes));
        return std::max(1, 1 << log2Floor(static_cast<uint64_t>(v)));
    };
    cost.storeVecElems = rowVec(src);
    cost.loadVecElems = rowVec(dst.transposeOuts(src.getOutDimNames()));

    // Padded addresses of a representative warp access on each side.
    auto addrsFor = [&](const LinearLayout &l, int vec) {
        const int regLog = l.getInDimSizeLog2(dims::kReg);
        const int warpSize = l.getInDimSize(dims::kLane);
        std::vector<int64_t> addrs;
        for (int lane = 0; lane < warpSize; ++lane) {
            uint64_t flat = l.applyFlat(static_cast<uint64_t>(lane)
                                        << regLog);
            auto coords = l.unflattenOuts(flat);
            // coords are (fast dim, slow dim) per the layout's order;
            // map names dim0/dim1 to row-major (i, j).
            int64_t i = 0, j = 0;
            for (const auto &[name, c] : coords) {
                if (name == "dim0")
                    i = c;
                else
                    j = c;
            }
            int64_t off = i * stride + j;
            addrs.push_back(off / vec * vec * elemBytes);
        }
        return addrs;
    };
    auto srcAligned = src;
    auto dstAligned = dst.transposeOuts(src.getOutDimNames());
    cost.storeWavefronts = sim::SharedMemory::countWavefronts(
        spec, addrsFor(srcAligned, cost.storeVecElems),
        cost.storeVecElems * elemBytes);
    cost.loadWavefronts = sim::SharedMemory::countWavefronts(
        spec, addrsFor(dstAligned, cost.loadVecElems),
        cost.loadVecElems * elemBytes);

    auto regsOf = [](const LinearLayout &l) {
        return l.hasInDim(dims::kReg) ? l.getInDimSize(dims::kReg) : 1;
    };
    double storeInsts =
        std::max(1, regsOf(srcAligned) / cost.storeVecElems);
    double loadInsts =
        std::max(1, regsOf(dstAligned) / cost.loadVecElems);
    cost.cycles = storeInsts * double(cost.storeWavefronts) *
                      spec.sharedWavefrontCycles +
                  loadInsts * double(cost.loadWavefronts) *
                      spec.sharedWavefrontCycles +
                  spec.sharedRoundTripCycles;
    return cost;
}

std::pair<int, int>
legacyDotPassCounts(ir::DType a, ir::DType b)
{
    using ir::DType;
    struct Entry
    {
        DType a, b;
        int passed, total;
    };
    // Verbatim from Table 5 of the paper.
    static const Entry kTable[] = {
        {DType::I16, DType::F16, 32, 64},
        {DType::I16, DType::F32, 32, 32},
        {DType::I16, DType::F64, 32, 32},
        {DType::I16, DType::F8, 36, 96},
        {DType::I32, DType::F16, 32, 32},
        {DType::I32, DType::F64, 16, 32},
        {DType::I32, DType::F8, 18, 48},
        {DType::I64, DType::F16, 32, 32},
        {DType::I64, DType::F32, 16, 32},
        {DType::I64, DType::F8, 18, 48},
        {DType::I8, DType::F16, 36, 96},
        {DType::I8, DType::F32, 18, 48},
        {DType::I8, DType::F64, 18, 48},
        {DType::I8, DType::F8, 30, 144},
    };
    for (const Entry &e : kTable) {
        if ((e.a == a && e.b == b) || (e.a == b && e.b == a))
            return {e.passed, e.total};
    }
    llPanic("dtype pair not part of the Table 5 sweep");
}

} // namespace legacy
} // namespace ll
