#include "legacy/legacy_cost.h"

#include "layout/dims.h"
#include "legacy/legacy.h"
#include "sim/memory_sim.h"
#include "support/bits.h"

namespace ll {
namespace legacy {

namespace {

using dims::kLane;
using dims::kReg;
using dims::kWarp;

int
regCount(const LinearLayout &l)
{
    return l.hasInDim(kReg) ? l.getInDimSize(kReg) : 1;
}

int
warpCount(const LinearLayout &l)
{
    return l.hasInDim(kWarp) ? l.getInDimSize(kWarp) : 1;
}

int64_t
legacyGlobalSectors(const LinearLayout &layout, int elemBits,
                    const sim::GpuSpec &spec)
{
    const int warpSize =
        layout.hasInDim(kLane) ? layout.getInDimSize(kLane) : 1;
    const int regs = regCount(layout);
    const int instElems = std::max(
        1, legacyAccessBitwidth(layout, elemBits) / elemBits);
    const int instsPerThread = std::max(1, regs / instElems);
    const int regLog =
        layout.hasInDim(kReg) ? layout.getInDimSizeLog2(kReg) : 0;
    std::vector<int64_t> addrs;
    for (int lane = 0; lane < warpSize; ++lane) {
        uint64_t flat = layout.applyFlat(static_cast<uint64_t>(lane)
                                         << regLog);
        addrs.push_back(static_cast<int64_t>(
            flat * static_cast<uint64_t>(elemBits) / 8));
    }
    sim::GlobalMemory gmem(spec);
    int64_t sectorsPerInst =
        gmem.countSectors(addrs, std::max(1, instElems * elemBits / 8));
    return sectorsPerInst * instsPerThread * warpCount(layout);
}

triton::Shape
shapeOf(const ir::TensorType &type)
{
    return type.shape;
}

} // namespace

int
legacyAccessBitwidth(const LinearLayout &layout, int elemBits,
                     int maxVectorBits)
{
    if (!layout.hasInDim(kReg) || layout.getNumOutDims() == 0)
        return elemBits;
    // Contiguity that stays inside the first (fastest) out dim only.
    auto flat = layout.flattenedBases(kReg);
    int fastLog = log2Exact(static_cast<uint64_t>(
        layout.getOutDimSize(layout.getOutDimNames()[0])));
    int k = 0;
    while (k < static_cast<int>(flat.size()) && k < fastLog &&
           flat[static_cast<size_t>(k)] == (uint64_t(1) << k)) {
        ++k;
    }
    int64_t bits =
        std::min<int64_t>((int64_t(1) << k) * elemBits, maxVectorBits);
    bits = int64_t(1) << log2Floor(static_cast<uint64_t>(bits));
    return static_cast<int>(std::max<int64_t>(bits, elemBits));
}

engine::KernelCost
estimateLegacyKernelCost(const ir::Function &f, const sim::GpuSpec &spec,
                         int numWarps)
{
    engine::KernelCost cost;
    for (int i = 0; i < f.numOps(); ++i) {
        const ir::Op &o = f.op(i);
        if (o.erased)
            continue;
        switch (o.kind) {
          case ir::OpKind::Load:
          case ir::OpKind::Store: {
            int v = o.kind == ir::OpKind::Load ? o.results[0]
                                               : o.operands[0];
            const auto &val = f.value(v);
            if (!val.layout)
                break;
            int64_t sectors = legacyGlobalSectors(
                *val.layout, bitWidth(val.type.dtype), spec);
            cost.globalSectors += sectors;
            cost.cycles +=
                static_cast<double>(sectors) * spec.globalSectorCycles;
            break;
          }
          case ir::OpKind::ConvertLayout: {
            const auto &src = f.value(o.operands[0]);
            const auto &dst = f.value(o.results[0]);
            if (!src.layout || !dst.layout)
                break;
            ++cost.converts;
            ++cost.localLoads;
            ++cost.localStores;
            ++cost.sharedConversions;
            int elemBytes = byteWidth(src.type.dtype);
            if (src.type.rank() == 2) {
                auto padded = paddedConversionCost(
                    *src.layout, *dst.layout, shapeOf(src.type),
                    elemBytes, spec);
                cost.cycles += padded.cycles;
            } else {
                // Rank != 2: flat unswizzled staging, scalar-ish access.
                int regs = regCount(*src.layout);
                cost.cycles += spec.sharedRoundTripCycles +
                               2.0 * regs * spec.sharedWavefrontCycles;
            }
            break;
          }
          case ir::OpKind::Dot: {
            const auto &ta = f.value(o.operands[0]).type;
            const auto &tacc = f.value(o.results[0]).type;
            double macs = double(tacc.shape[0]) * tacc.shape[1] *
                          ta.shape[1];
            bool fma = o.tag.find("fma") != std::string::npos;
            double throughput =
                fma ? double(numWarps) * spec.warpSize *
                          spec.aluOpsPerLanePerCycle
                    : double(numWarps) * spec.mmaMacsPerCyclePerWarp;
            cost.cycles += macs / throughput;
            break;
          }
          case ir::OpKind::Reduce: {
            const auto &src = f.value(o.operands[0]);
            if (!src.layout)
                break;
            const LinearLayout &l = *src.layout;
            const std::string axisDim = dims::out(o.axis);
            int laneBits = 0, warpBits = 0;
            if (l.hasInDim(kLane)) {
                for (int b = 0; b < l.getInDimSizeLog2(kLane); ++b)
                    laneBits += l.getBasis(kLane, b, axisDim) != 0;
            }
            if (l.hasInDim(kWarp)) {
                for (int b = 0; b < l.getInDimSizeLog2(kWarp); ++b)
                    warpBits += l.getBasis(kWarp, b, axisDim) != 0;
            }
            int resultRegs = std::max(1, regCount(l) >> laneBits);
            cost.cycles +=
                double(laneBits) * resultRegs * spec.shuffleCycles;
            if (warpBits > 0 || laneBits > 0) {
                // Legacy funnels all cross-thread traffic through
                // shared memory and stores duplicates too.
                ++cost.localStores;
                ++cost.localLoads;
                int64_t stores =
                    legacyReductionSharedStores(l, o.axis, spec);
                int64_t linear =
                    linearReductionSharedStores(l, o.axis, spec);
                cost.cycles +=
                    spec.sharedRoundTripCycles +
                    double(stores) / double(std::max<int64_t>(linear, 1)) *
                        2.0 * std::max(warpBits, 1) *
                        spec.sharedWavefrontCycles;
            }
            break;
          }
          case ir::OpKind::Gather: {
            const auto &src = f.value(o.operands[0]);
            if (!src.layout)
                break;
            ++cost.localStores;
            ++cost.localLoads;
            int regs = regCount(*src.layout);
            cost.cycles += spec.sharedRoundTripCycles +
                           2.0 * regs * spec.sharedWavefrontCycles;
            break;
          }
          case ir::OpKind::Scan: {
            const auto &src = f.value(o.operands[0]);
            if (!src.layout)
                break;
            // Legacy runs the same Hillis-Steele shuffles but, unable
            // to prove which threads hold duplicates or whether warps
            // participate, always finishes with a shared round trip of
            // every register (the buggy per-layout index math the paper
            // cites made exactly these ops conservative).
            const LinearLayout &l = *src.layout;
            const std::string axisDim = dims::out(o.axis);
            int laneBits = 0;
            if (l.hasInDim(kLane)) {
                for (int bIdx = 0; bIdx < l.getInDimSizeLog2(kLane);
                     ++bIdx)
                    laneBits += l.getBasis(kLane, bIdx, axisDim) != 0;
            }
            int regs = regCount(l);
            ++cost.localStores;
            ++cost.localLoads;
            cost.cycles += double(regs) +
                           double(laneBits) * regs * spec.shuffleCycles +
                           spec.sharedRoundTripCycles +
                           2.0 * regs * spec.sharedWavefrontCycles;
            break;
          }
          case ir::OpKind::Elementwise: {
            const auto &res = f.value(o.results[0]);
            if (!res.layout)
                break;
            cost.cycles += double(regCount(*res.layout)) /
                           spec.aluOpsPerLanePerCycle;
            break;
          }
          default:
            break;
        }
    }
    return cost;
}

} // namespace legacy
} // namespace ll
