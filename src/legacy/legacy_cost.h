/**
 * @file
 * Legacy-Triton pricing of an engine-annotated kernel.
 *
 * Reuses the same IR and layout annotations as the linear-layout cost
 * model but applies the legacy code-generation rules: every layout
 * conversion round-trips through padded shared memory (no no-op
 * detection, no register permutes, no warp shuffles, no
 * ldmatrix/stmatrix), global vectorization comes from the fastest-dim
 * heuristic, and reductions store duplicated data. The Figure 9
 * benchmarks compare this against engine::estimateKernelCost.
 */

#ifndef LL_LEGACY_LEGACY_COST_H
#define LL_LEGACY_LEGACY_COST_H

#include "engine/cost_model.h"
#include "ir/function.h"
#include "sim/gpu_spec.h"

namespace ll {
namespace legacy {

/**
 * Legacy vectorization width in bits for a layout: contiguity counted
 * only within the fastest output dimension.
 */
int legacyAccessBitwidth(const LinearLayout &layout, int elemBits,
                         int maxVectorBits = 128);

/** Price an annotated function under the legacy rules. */
engine::KernelCost estimateLegacyKernelCost(const ir::Function &f,
                                            const sim::GpuSpec &spec,
                                            int numWarps = 4);

} // namespace legacy
} // namespace ll

#endif // LL_LEGACY_LEGACY_COST_H
