/**
 * @file
 * A model of *legacy* Triton's layout system — the baseline every
 * experiment in the paper compares against.
 *
 * Legacy Triton (pre-linear-layouts) handled layouts case by case. This
 * module reproduces its documented behaviour:
 *
 *  - vectorization from a fastest-dimension heuristic that cannot see
 *    contiguity spanning dimensions and disables itself on size-1
 *    fastest dims (Section 5.1, Table 3);
 *  - layout conversions that always round-trip through shared memory
 *    using a *padding* heuristic instead of swizzling (Figure 2, 7);
 *  - a reduction/conversion support matrix with unsupported layout
 *    kinds (Table 4) and no duplicate-data detection, so every thread
 *    stores its copy;
 *  - mixed-precision dot support replayed from the published Table 5
 *    pass counts (the rule "no MMA layout with more than 32-bit
 *    consecutive elements in the tile's last dimension" plus small-shape
 *    failures). Unlike the linear-layout side — whose passes this repo
 *    *verifies* by executing conversions on the simulator — the legacy
 *    failures cannot be re-derived without the original implementation,
 *    so they are replayed as documented counts.
 */

#ifndef LL_LEGACY_LEGACY_H
#define LL_LEGACY_LEGACY_H

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/vectorize.h"
#include "ir/types.h"
#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "triton/encodings.h"

namespace ll {
namespace legacy {

/**
 * Legacy vectorization: only the fastest dimension's per-thread extent
 * counts, and a size-1 fastest dim disables vectorization entirely
 * (the [128, 1] bug of Section 5.1).
 */
codegen::MemoryInstruction
legacyMemoryInstruction(const triton::BlockedEncoding &enc,
                        const triton::Shape &shape, int elemBits,
                        int maxVectorBits = 128);

/** Layout kinds in the legacy taxonomy (Figure 3 / Table 4). */
enum class LayoutKind
{
    Blocked,
    Mma,
    MmaInput,
    SlicedBlocked,
    SlicedMma,
    SlicedMmaInput,
    Custom,
};

std::string toString(LayoutKind kind);

/** Which layout kinds legacy reduction code generation supports
 *  (the Table 4 pass/fail column). */
bool legacySupportsReduction(LayoutKind kind);

/**
 * Shared-memory store instructions legacy code generation emits for a
 * cross-resource reduction: without free-variable analysis it cannot
 * identify duplicated data, so every register of every thread is
 * stored. Linear layouts store only unique elements.
 */
int64_t legacyReductionSharedStores(const LinearLayout &layout, int axis,
                                    const sim::GpuSpec &spec);

/** Linear-layout counterpart: duplicates (free variables) skipped. */
int64_t linearReductionSharedStores(const LinearLayout &layout, int axis,
                                    const sim::GpuSpec &spec);

/**
 * The padding heuristic for shared-memory conversions: rows are padded
 * by `padElems` elements so that consecutive rows start in different
 * banks. Returns per-warp-access wavefronts measured on the simulator
 * plus the memory overhead — the Figure 2 baseline.
 */
struct PaddedConversionCost
{
    int64_t storeWavefronts = 0; ///< per representative warp access
    int64_t loadWavefronts = 0;
    int storeVecElems = 1;
    int loadVecElems = 1;
    int64_t sharedBytes = 0; ///< footprint including padding
    double cycles = 0.0;     ///< modeled conversion cost
};

PaddedConversionCost
paddedConversionCost(const LinearLayout &src, const LinearLayout &dst,
                     const triton::Shape &shape, int elemBytes,
                     const sim::GpuSpec &spec, int padElems = -1);

/**
 * Replayed Table 5 pass counts for legacy mixed-precision dot: given
 * the operand dtypes, returns (passed, total) as published. The
 * benchmark enumerates exactly `total` shape variants and marks the
 * first `total - passed` unsupported, which reproduces the published
 * rates deterministically.
 */
std::pair<int, int> legacyDotPassCounts(ir::DType a, ir::DType b);

} // namespace legacy
} // namespace ll

#endif // LL_LEGACY_LEGACY_H
